// Campaign runner: expands the [campaign] section of a deck file into a
// parameter sweep and drives it with the concurrent CampaignExecutor —
// retries, wall-time slicing with checkpoint/resume, and a crash-safe
// NDJSON result ledger (see docs/CAMPAIGNS.md).
//
//   ./run_campaign sweep.deck [--jobs=N]      # concurrent jobs (workers)
//            [--ranks=N]                      # vmpi ranks per job
//            [--pipelines=N]                  # particle pipelines per job
//            [--max-threads=N]                # cap on jobs x ranks x pipelines
//            [--retries=N]                    # failure attempts per job
//            [--backoff=seconds]              # first retry delay
//            [--timeout=seconds]              # per-attempt wall budget
//            [--max-resumes=N]                # timeout/resume cycles per job
//            [--steps=N]                      # override [campaign] steps
//            [--set=section.key=value ...]    # base-deck override (repeatable)
//            [--results=PATH]                 # ledger (default <deck>.results.ndjson)
//            [--resume]                       # skip jobs already done in the ledger
//            [--scratch=DIR]                  # per-job checkpoint directory
//            [--curve=PATH.csv]               # aggregated curve output
//            [--curve-axis=section.key]       # curve x axis (default: first axis)
//            [--curve-metric=NAME]            # default reflectivity
//            [--metrics=PATH]                 # campaign.* counters as NDJSON
//            [--flight-recorder[=events]]     # per-rank flight recorders per
//                                             # attempt; failed attempts dump
//                                             # `.fdr` files next to the ledger
//            [--list]                         # print the expanded jobs and exit
//            [--log-level=LVL]
//
// Validation mode (no deck run): `./run_campaign --validate=results.ndjson`
// parses every record against schema v1, reports each malformed line as
// `<path>: line N: <reason>`, and exits 0 iff every line parses and every
// job is done.
//
// Fault drill (CI smoke / demos): --fail-job=I --fail-attempts=M makes the
// I-th expanded job throw on its first step for its first M attempts,
// exercising the retry path end to end.
//
// Exit codes: 0 = every job done (or skipped as already done), 1 = any job
// failed or an internal error, 2 = usage.
#include <fstream>
#include <iostream>

#include "campaign/executor.hpp"
#include "campaign/results.hpp"
#include "campaign/spec.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/ndjson.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

using namespace minivpic;

namespace {

int validate(const std::string& path) {
  // Line-by-line so every malformed record is reported with its line
  // number and reason — not just the first one read_all() would throw on.
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "run_campaign: cannot open " << path << "\n";
    return 1;
  }
  std::vector<campaign::JobResult> results;
  std::string line;
  int lineno = 0, bad = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    try {
      results.push_back(
          campaign::result_from_json(telemetry::Json::parse(line)));
    } catch (const Error& e) {
      std::cout << path << ": line " << lineno << ": " << e.what() << "\n";
      ++bad;
    }
  }
  int done = 0, failed = 0;
  for (const campaign::JobResult& r : results) {
    if (r.status == "done") ++done;
    else ++failed;
  }
  std::cout << path << ": " << results.size() << " records, " << done
            << " done, " << failed << " failed";
  if (bad > 0) std::cout << ", " << bad << " malformed line(s)";
  std::cout << "\n";
  for (const campaign::JobResult& r : results) {
    if (r.status != "done")
      std::cout << "  failed: " << r.id << " (" << r.label << "): " << r.error
                << "\n";
  }
  return (failed == 0 && bad == 0) ? 0 : 1;
}

int run(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known({"jobs", "ranks", "pipelines", "max-threads", "retries",
                    "backoff", "timeout", "max-resumes", "steps", "set",
                    "results", "resume", "scratch", "curve", "curve-axis",
                    "curve-metric", "metrics", "flight-recorder", "list",
                    "validate", "fail-job", "fail-attempts", "log-level"});
  if (args.has("log-level")) {
    const std::string lvl = args.get("log-level", "info");
    set_log_level(lvl == "debug" ? LogLevel::kDebug
                  : lvl == "warn" ? LogLevel::kWarn
                  : lvl == "error" ? LogLevel::kError
                                   : LogLevel::kInfo);
  }
  if (args.has("validate")) return validate(args.get("validate", ""));
  if (args.positional().empty()) {
    std::cerr << "usage: run_campaign <deck-with-[campaign]> [--jobs=N] "
                 "[--ranks=N] [--pipelines=N]\n"
                 "       [--max-threads=N] [--retries=N] [--timeout=seconds] "
                 "[--max-resumes=N]\n"
                 "       [--steps=N] [--set=section.key=value ...] "
                 "[--results=PATH] [--resume]\n"
                 "       [--scratch=DIR] [--curve=PATH.csv] "
                 "[--curve-axis=section.key] [--curve-metric=NAME]\n"
                 "       [--metrics=PATH] [--list] | "
                 "--validate=results.ndjson\n";
    return 2;
  }
  const std::string deck_path = args.positional()[0];

  // Base deck + [campaign] section; --set patches the base (and thereby
  // every job — and every job id, since ids hash the base deck too).
  sim::DeckSource source = sim::DeckSource::from_file(deck_path);
  for (const std::string& spec_str : args.get_all("set"))
    source.apply_override(sim::parse_override(spec_str));
  campaign::CampaignSpec spec =
      campaign::CampaignSpec::from_deck_source(std::move(source));
  MV_REQUIRE(!spec.axes().empty(),
             deck_path << ": no [campaign] axes to sweep (add lines like "
                          "'laser.a0 = 0.05, 0.10')");
  if (args.has("steps")) spec.set_steps(int(args.get_int("steps", 0)));

  const std::vector<campaign::Job> jobs = spec.expand();
  if (args.get_bool("list", false)) {
    Table table({"#", "id", "label", "steps"});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      table.add_row({(long long)i, jobs[i].id, jobs[i].label,
                     (long long)jobs[i].steps});
    }
    table.print(std::cout, "campaign jobs (" + deck_path + ")");
    return 0;
  }

  campaign::ExecutorConfig config;
  config.workers = int(args.get_int("jobs", 1));
  config.ranks_per_job = int(args.get_int("ranks", 1));
  config.pipelines_per_job = int(args.get_int("pipelines", 1));
  config.max_threads = int(args.get_int("max-threads", 0));
  config.retry.max_attempts = int(args.get_int("retries", 3));
  config.retry.backoff_seconds = args.get_double("backoff", 0.1);
  config.retry.timeout_seconds = args.get_double("timeout", 0);
  config.retry.max_resumes = int(args.get_int("max-resumes", 64));
  config.scratch_dir = args.get("scratch", ".");
  telemetry::MetricsRegistry registry;
  config.metrics = &registry;

  // Fault drill: job --fail-job throws on its first step while its attempt
  // number is <= --fail-attempts, then runs clean — the retry path must
  // carry it to done.
  const long long fail_job = args.get_int("fail-job", -1);
  const int fail_attempts = int(args.get_int("fail-attempts", 1));
  if (fail_job >= 0) {
    MV_REQUIRE(std::size_t(fail_job) < jobs.size(),
               "--fail-job=" << fail_job << " but the campaign has only "
                             << jobs.size() << " jobs");
    const std::string fail_id = jobs[std::size_t(fail_job)].id;
    config.per_step_hook = [fail_id, fail_attempts](sim::Simulation& sim,
                                                    const campaign::Job& job,
                                                    int attempt) {
      if (job.id == fail_id && attempt <= fail_attempts &&
          sim.step_index() <= 1) {
        MV_REQUIRE(false, "injected campaign fault (job " << job.label
                                                          << ", attempt "
                                                          << attempt << ")");
      }
    };
  }

  const std::string results_path =
      args.get("results", deck_path + ".results.ndjson");

  // Flight recorders: failed attempts leave per-rank `.fdr` dumps in the
  // ledger's directory, ready for examples/postmortem.
  if (args.has("flight-recorder")) {
    const auto slash = results_path.find_last_of('/');
    config.recorder_dir =
        slash == std::string::npos ? "." : results_path.substr(0, slash);
    const std::string v = args.get("flight-recorder", "true");
    if (v != "true" && v != "1") {
      const long long n = args.get_int("flight-recorder", 0);
      MV_REQUIRE(n >= 2, "--flight-recorder=" << v
                             << ": event capacity must be >= 2");
      config.recorder_events = std::size_t(n);
    }
    telemetry::install_crash_handlers();
  }

  campaign::ResultStore store(results_path, args.get_bool("resume", false));
  if (!store.completed_ids().empty()) {
    std::cout << "resuming: " << store.completed_ids().size()
              << " job(s) already done in " << results_path << "\n";
  }

  campaign::CampaignExecutor executor(spec, config);
  std::cout << "campaign: " << jobs.size() << " job(s) x " << spec.steps()
            << " steps, " << executor.effective_workers() << " worker(s) x "
            << config.ranks_per_job << " rank(s) x "
            << config.pipelines_per_job << " pipeline(s)\n";
  const campaign::CampaignSummary summary = executor.run(store);

  Table table({"total", "skipped", "done", "failed", "retries", "resumes",
               "wall s", "jobs/h"});
  table.add_row({(long long)summary.total, (long long)summary.skipped,
                 (long long)summary.done, (long long)summary.failed,
                 (long long)summary.retries, (long long)summary.resumes,
                 summary.wall_seconds, summary.jobs_per_hour});
  table.print(std::cout, "campaign summary");
  std::cout << "results ledger: " << results_path << " ("
            << store.records_written() << " records)\n";

  if (args.has("curve")) {
    const std::string axis = args.get("curve-axis", spec.axes()[0].key);
    const std::string metric = args.get("curve-metric", "reflectivity");
    const auto curve = campaign::aggregate_curve(
        campaign::ResultStore::read_all(results_path), axis, metric);
    campaign::write_curve_csv(args.get("curve", ""), axis, metric, curve);
    std::cout << "curve (" << metric << " vs " << axis << "): "
              << args.get("curve", "") << " (" << curve.size()
              << " points)\n";
  }
  if (args.has("metrics")) {
    telemetry::NdjsonWriter metrics(args.get("metrics", ""));
    telemetry::Json j = telemetry::Json::object();
    j.set("type", telemetry::Json::string("campaign_metrics"));
    telemetry::Json vals = telemetry::Json::object();
    for (const telemetry::ScalarMetric& m : registry.scalars())
      vals.set(m.name, telemetry::Json::number(m.value));
    j.set("metrics", std::move(vals));
    metrics.write(j);
  }
  return summary.all_done() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::cerr << "run_campaign: error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "run_campaign: unexpected error: " << e.what() << "\n";
    return 1;
  }
}
