// Crash forensics: merges per-rank flight-recorder dumps (`.fdr`, written
// by the Recorder on crash / comm fault / request; docs/OBSERVABILITY.md)
// into one cross-rank Chrome trace plus a human-readable report:
//
//   ./postmortem run.rank0.fdr run.rank1.fdr ...
//       [--trace=merged.json] [--last=12] [--report=report.txt]
//
// All ranks of a vmpi run are threads of one process and every Recorder
// shares one steady-clock epoch, so timestamps from different dumps order
// correctly against each other without clock reconciliation. The merged
// trace puts each rank on its own pid track (tid 0); phase begin/end pairs
// become duration spans and everything else becomes instant events, so the
// output passes `telemetry_check --trace` and loads in any Chrome-trace
// viewer next to the live TraceWriter output.
//
// The report prints the last N events per rank and two verdicts:
//   - who stalled first: the rank with the earliest fault-class event
//     (comm fault, rank fault, failed health sentinel) — or, with no fault
//     events at all, the rank that went silent (stopped recording) first;
//   - the divergence point: the last step every rank completed, and which
//     ranks fell short of the furthest rank.
//
// Exits 0 on success, 1 on unreadable/invalid dumps, 2 on usage errors.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/recorder.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "vmpi/error.hpp"  // inline fault_name only; no vmpi link needed

using namespace minivpic;
using telemetry::FdrEvent;
using telemetry::FdrKind;
using telemetry::Json;
using telemetry::Recorder;

namespace {

struct RankDump {
  std::string path;
  int rank = -1;
  Recorder::Dump dump;  ///< events oldest first, sorted by timestamp
};

bool is_fault_event(const FdrEvent& e) {
  const auto kind = FdrKind(e.kind);
  return kind == FdrKind::kCommFault || kind == FdrKind::kFault ||
         (kind == FdrKind::kHealth && e.code != 0);
}

/// Kind-specific detail column for the report and the trace args.
std::string event_detail(const FdrEvent& e) {
  std::ostringstream os;
  switch (FdrKind(e.kind)) {
    case FdrKind::kPhaseBegin:
    case FdrKind::kPhaseEnd:
      os << telemetry::fdr_phase_name(e.code);
      break;
    case FdrKind::kStep:
      os << "step " << e.arg;
      break;
    case FdrKind::kCommSend:
      os << "-> rank " << e.peer << " (" << e.arg << " B)";
      break;
    case FdrKind::kCommRecv:
      os << "<- rank " << e.peer << " (" << e.arg << " B)";
      break;
    case FdrKind::kCommFault:
      os << vmpi::fault_name(vmpi::Fault(e.code));
      if (e.peer >= 0) os << " (peer " << e.peer << ")";
      break;
    case FdrKind::kCheckpoint:
      os << "saved step " << e.arg;
      break;
    case FdrKind::kRestore:
      os << "restored step " << e.arg;
      break;
    case FdrKind::kHealth:
      os << (e.code == 0 ? "ok" : "FAULT") << " @ step " << e.arg;
      break;
    case FdrKind::kFault:
      os << vmpi::fault_name(vmpi::Fault(e.code));
      break;
    case FdrKind::kRecovery:
      os << "rollback to step " << e.arg;
      break;
    case FdrKind::kAnomaly:
      os << "kind " << e.code;
      break;
    case FdrKind::kDump:
      os << telemetry::fdr_dump_reason_name(telemetry::FdrDumpReason(e.code));
      break;
    case FdrKind::kServiceAccept:
      os << "accepted (depth " << e.arg << ")";
      break;
    case FdrKind::kServiceDispatch:
      os << "dispatched";
      break;
    case FdrKind::kServiceComplete:
      os << (e.code == 0 ? "done" : "failed");
      break;
    default:
      break;
  }
  return os.str();
}

/// Rank parsed from `<prefix>.rankN.fdr`; falls back to the header field.
int rank_from_path(const std::string& path, int header_rank) {
  const auto pos = path.rfind(".rank");
  if (pos != std::string::npos) {
    const char* s = path.c_str() + pos + 5;
    char* end = nullptr;
    const long r = std::strtol(s, &end, 10);
    if (end != s && r >= 0) return int(r);
  }
  return header_rank;
}

void emit_trace(const std::vector<RankDump>& dumps, const std::string& path) {
  Json events = Json::array();
  for (const RankDump& rd : dumps) {
    // Phase stack per rank: B without E at the tail (the ring stopped
    // mid-phase — the interesting case) is closed at the rank's last
    // timestamp; E without B at the head (begin rotated out of the ring)
    // is dropped. Both keep the merged trace well formed.
    std::vector<std::pair<std::uint16_t, double>> open;  // (phase, ts_us)
    double last_us = 0;
    for (const FdrEvent& e : rd.dump.events) {
      const double ts_us = double(e.ts_ns) / 1000.0;
      last_us = std::max(last_us, ts_us);
      Json ev = Json::object();
      const auto kind = FdrKind(e.kind);
      if (kind == FdrKind::kPhaseBegin) {
        ev.set("name", Json::string(telemetry::fdr_phase_name(e.code)));
        ev.set("cat", Json::string("phase"));
        ev.set("ph", Json::string("B"));
        open.emplace_back(e.code, ts_us);
      } else if (kind == FdrKind::kPhaseEnd) {
        if (open.empty()) continue;  // begin predates the ring
        open.pop_back();
        ev.set("ph", Json::string("E"));
      } else {
        ev.set("name", Json::string(telemetry::fdr_kind_name(kind)));
        ev.set("cat", Json::string("fdr"));
        ev.set("ph", Json::string("i"));
        ev.set("s", Json::string("t"));
      }
      ev.set("ts", Json::number(ts_us));
      ev.set("pid", Json::number(std::int64_t{rd.rank}));
      ev.set("tid", Json::number(std::int64_t{0}));
      if (kind != FdrKind::kPhaseBegin && kind != FdrKind::kPhaseEnd) {
        Json args = Json::object();
        args.set("detail", Json::string(event_detail(e)));
        if (e.step >= 0) args.set("step", Json::number(e.step));
        if (e.peer >= 0) args.set("peer", Json::number(std::int64_t{e.peer}));
        ev.set("args", std::move(args));
      }
      events.push_back(std::move(ev));
    }
    // Close spans still open when the recorder stopped (crash mid-phase).
    for (auto it = open.rbegin(); it != open.rend(); ++it) {
      Json ev = Json::object();
      ev.set("ph", Json::string("E"));
      ev.set("ts", Json::number(last_us));
      ev.set("pid", Json::number(std::int64_t{rd.rank}));
      ev.set("tid", Json::number(std::int64_t{0}));
      events.push_back(std::move(ev));
    }
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", Json::string("ms"));
  std::ofstream os(path, std::ios::trunc);
  MV_REQUIRE(os.good(), "cannot open trace output file: " << path);
  os << doc.dump() << "\n";
  MV_REQUIRE(os.good(), "failed writing merged trace to " << path);
}

void print_report(const std::vector<RankDump>& dumps, int last_n,
                  std::ostream& os) {
  os << "postmortem: " << dumps.size() << " rank dump(s)\n";

  // Per-rank summaries + tail of the event log.
  for (const RankDump& rd : dumps) {
    const auto& h = rd.dump.header;
    os << "\n-- rank " << rd.rank << " (" << rd.path << ") --\n";
    os << "   events: " << h.total << " recorded, " << h.stored
       << " in dump (ring capacity " << h.capacity << ")";
    if (h.total > h.stored) os << ", " << (h.total - h.stored) << " rotated out";
    os << "\n   dump reason: "
       << telemetry::fdr_dump_reason_name(telemetry::FdrDumpReason(h.reason))
       << "\n";
    const auto& ev = rd.dump.events;
    const std::size_t n = std::min<std::size_t>(ev.size(), std::size_t(last_n));
    os << "   last " << n << " events:\n";
    for (std::size_t i = ev.size() - n; i < ev.size(); ++i) {
      const FdrEvent& e = ev[i];
      os << "     t=" << double(e.ts_ns) / 1e9 << "s";
      if (e.step >= 0) os << " step " << e.step;
      os << "  " << telemetry::fdr_kind_name(FdrKind(e.kind));
      const std::string detail = event_detail(e);
      if (!detail.empty()) os << "  " << detail;
      os << "\n";
    }
  }

  // Verdict 1: who stalled first. Earliest fault-class event wins; with no
  // fault events anywhere, the rank whose recording ends earliest (it went
  // silent while the others kept logging).
  const FdrEvent* first_fault = nullptr;
  int first_fault_rank = -1;
  const RankDump* first_silent = nullptr;
  std::uint64_t silent_ts = 0;
  for (const RankDump& rd : dumps) {
    for (const FdrEvent& e : rd.dump.events) {
      if (is_fault_event(e) &&
          (first_fault == nullptr || e.ts_ns < first_fault->ts_ns)) {
        first_fault = &e;
        first_fault_rank = rd.rank;
      }
    }
    if (!rd.dump.events.empty()) {
      const std::uint64_t last = rd.dump.events.back().ts_ns;
      if (first_silent == nullptr || last < silent_ts) {
        first_silent = &rd;
        silent_ts = last;
      }
    }
  }
  os << "\n== verdict ==\n";
  if (first_fault != nullptr) {
    os << "first stalled: rank " << first_fault_rank << " — "
       << telemetry::fdr_kind_name(FdrKind(first_fault->kind)) << " ("
       << event_detail(*first_fault) << ") at t="
       << double(first_fault->ts_ns) / 1e9 << "s";
    if (first_fault->step >= 0) os << ", step " << first_fault->step;
    os << "\n";
  } else if (first_silent != nullptr) {
    os << "no fault events recorded; rank " << first_silent->rank
       << " went silent first (last event at t=" << double(silent_ts) / 1e9
       << "s)\n";
  } else {
    os << "no events recorded on any rank\n";
  }

  // Verdict 2: divergence point. Compare the furthest step each rank
  // reached; healthy ranks agree, the victim stops short (or agrees too —
  // a post-recovery dump, where the rollback events tell the story).
  std::int64_t max_step = -1, min_step = -1;
  bool any = false;
  for (const RankDump& rd : dumps) {
    std::int64_t last_step = -1;
    for (const FdrEvent& e : rd.dump.events)
      last_step = std::max(last_step, e.step);
    if (!any) {
      max_step = min_step = last_step;
      any = true;
    } else {
      max_step = std::max(max_step, last_step);
      min_step = std::min(min_step, last_step);
    }
  }
  if (any && max_step >= 0) {
    if (min_step == max_step) {
      os << "divergence: none — every rank reached step " << max_step << "\n";
    } else {
      os << "divergence: furthest rank reached step " << max_step
         << "; behind:";
      for (const RankDump& rd : dumps) {
        std::int64_t last_step = -1;
        for (const FdrEvent& e : rd.dump.events)
          last_step = std::max(last_step, e.step);
        if (last_step < max_step)
          os << " rank " << rd.rank << " (step " << last_step << ")";
      }
      os << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args(argc, argv);
    args.check_known({"trace", "report", "last"});
    if (args.positional().empty()) {
      std::cerr << "usage: postmortem <dump.fdr> [more.fdr ...] "
                   "[--trace=merged.json] [--report=report.txt] [--last=N]\n";
      return 2;
    }
    const int last_n = int(args.get_int("last", 12));
    MV_REQUIRE(last_n > 0, "--last must be positive");

    std::vector<RankDump> dumps;
    for (const std::string& path : args.positional()) {
      RankDump rd;
      rd.path = path;
      rd.dump = Recorder::read(path);
      rd.rank = rank_from_path(path, rd.dump.header.rank);
      // Defensive: a dump torn by a concurrent writer can carry a handful
      // of out-of-order timestamps; the trace checker requires monotone
      // tracks, and the verdicts key off time order.
      std::stable_sort(rd.dump.events.begin(), rd.dump.events.end(),
                       [](const FdrEvent& a, const FdrEvent& b) {
                         return a.ts_ns < b.ts_ns;
                       });
      dumps.push_back(std::move(rd));
    }
    std::sort(dumps.begin(), dumps.end(),
              [](const RankDump& a, const RankDump& b) {
                return a.rank < b.rank;
              });

    if (args.has("trace")) {
      const std::string path = args.get("trace", "");
      emit_trace(dumps, path);
      std::cout << "merged trace: " << path << "\n";
    }
    if (args.has("report")) {
      const std::string path = args.get("report", "");
      std::ofstream os(path, std::ios::trunc);
      MV_REQUIRE(os.good(), "cannot open report output file: " << path);
      print_report(dumps, last_n, os);
      std::cout << "report: " << path << "\n";
    } else {
      print_report(dumps, last_n, std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "postmortem: error: " << e.what() << "\n";
    return 1;
  }
}
