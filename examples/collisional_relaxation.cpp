// Collisional relaxation: a temperature-anisotropic electron plasma
// isotropizes under Takizuka-Abe binary Coulomb collisions. Demonstrates
// the collision operator, the deck-level collision configuration, and the
// energy-history recorder with CSV output.
//
//   ./collisional_relaxation [--nu=3e-4] [--steps=200] [--csv=path]
#include <cmath>
#include <iostream>

#include "sim/history.hpp"
#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

using namespace minivpic;

namespace {

double anisotropy(const particles::Species& sp) {
  double tz = 0, tp = 0;
  for (const auto& p : sp.particles()) {
    tz += double(p.uz) * p.uz;
    tp += 0.5 * (double(p.ux) * p.ux + double(p.uy) * p.uy);
  }
  return tz / tp;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known({"nu", "steps", "csv"});
  const double nu = args.get_double("nu", 3e-4);
  const int steps = int(args.get_int("steps", 200));

  sim::Deck deck;
  deck.grid.nx = deck.grid.ny = deck.grid.nz = 6;
  deck.grid.dx = deck.grid.dy = deck.grid.dz = 0.5;
  sim::SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 48;
  e.load.uth3 = {0.04, 0.04, 0.16};  // Tz = 16 T_perp
  deck.species.push_back(e);
  sim::SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.load.uth3 = {0, 0, 0};
  ion.load.uth = 0.001;
  ion.mobile = false;
  deck.species.push_back(ion);

  sim::CollisionSpec cs;
  cs.species_a = cs.species_b = "electron";
  cs.nu_scale = nu;
  cs.period = 2;
  deck.collisions.push_back(cs);

  sim::Simulation sim(deck);
  sim.initialize();
  sim::EnergyHistory history(sim);
  history.sample();

  std::cout << "Takizuka-Abe relaxation, nu_scale = " << nu << "\n\n";
  Table table({"time", "Tz/Tperp", "electron KE", "collision pairs"});
  table.add_row({0.0, anisotropy(sim.species(0)),
                 sim.energies().species_kinetic[0], 0LL});
  for (int s = 1; s <= steps; ++s) {
    sim.step();
    history.sample();
    if (s % (steps / 8) == 0) {
      table.add_row({sim.time(), anisotropy(sim.species(0)),
                     sim.energies().species_kinetic[0],
                     (long long)sim.particle_stats().collision_pairs});
    }
  }
  table.print(std::cout, "anisotropy relaxation");
  std::cout << "\nworst total-energy drift over the run: "
            << 100 * history.worst_relative_drift()
            << "% (collisions conserve energy pairwise)\n";
  if (args.has("csv")) {
    const std::string path = args.get("csv", "");
    history.write_csv(path);
    std::cout << "energy history written to " << path << "\n";
  }
  return 0;
}
