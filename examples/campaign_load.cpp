// Load generator for the campaign service: N client threads each fire M
// submit requests at a running serve_campaigns daemon, with a configurable
// fraction of deliberate duplicates (exercising the cache/coalescing path)
// and of deliberately invalid requests (exercising the error path), then
// report per-source counts and client-side latency percentiles.
//
//   ./campaign_load --port=N [--clients=C] [--requests=R]
//            [--duplicate-ratio=F]   # fraction of repeats of one hot job
//            [--invalid-ratio=F]     # fraction of bad-override submits
//            [--axis=section.key]    # swept override key (unique jobs)
//            [--base=X] [--spread=X] # unique values: base + k * spread
//            [--steps=N]             # per-job steps (server default if 0)
//            [--priority=P] [--client-prefix=NAME]
//            [--json]                # machine-readable summary on stdout
//            [--metrics-json]        # also fetch the server's metrics
//            [--timeout=s]           # per-response client deadline
//
// Unique jobs vary `--axis` by thread and request index, so every
// non-duplicate submit is a distinct content hash; duplicates all submit
// the value `--base`, so they collapse onto one job server-side. The
// request mix is deterministic (index-hashed, no RNG seed to misremember),
// making CI assertions on the server's counters exact.
//
// Exit codes: 0 = every response was a well-formed protocol object (results,
// rejections and error responses all count as served), 1 = transport-level
// failure (connect, send, response timeout).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "telemetry/json.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

using namespace minivpic;
using telemetry::Json;

namespace {

struct Tally {
  int fresh = 0, cache = 0, coalesced = 0, accepted = 0, rejected = 0;
  int errors = 0, transport_failures = 0;
  std::vector<double> latencies;  ///< seconds, responses of any kind
};

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double idx = q * double(v.size() - 1);
  const std::size_t lo = std::size_t(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + (v[hi] - v[lo]) * (idx - double(lo));
}

std::string format_value(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", x);
  return buf;
}

int run(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known({"port", "clients", "requests", "duplicate-ratio",
                    "invalid-ratio", "axis", "base", "spread", "steps",
                    "priority", "client-prefix", "json", "metrics-json",
                    "timeout", "log-level"});
  if (!args.has("port")) {
    std::cerr << "usage: campaign_load --port=N [--clients=C] [--requests=R] "
                 "[--duplicate-ratio=F]\n"
                 "       [--invalid-ratio=F] [--axis=section.key] [--base=X] "
                 "[--spread=X] [--json]\n";
    return 2;
  }
  const int port = int(args.get_int("port", 0));
  const int clients = int(args.get_int("clients", 4));
  const int requests = int(args.get_int("requests", 8));
  const double dup_ratio = args.get_double("duplicate-ratio", 0.5);
  const double invalid_ratio = args.get_double("invalid-ratio", 0.0);
  const std::string axis = args.get("axis", "species beam_fwd.drift_x");
  const double base = args.get_double("base", 0.31);
  const double spread = args.get_double("spread", 0.001);
  const int steps = int(args.get_int("steps", 0));
  const double priority = args.get_double("priority", 1.0);
  const std::string prefix = args.get("client-prefix", "load");
  const double timeout = args.get_double("timeout", 120.0);

  std::mutex mu;
  Tally tally;

  auto worker = [&](int c) {
    Tally local;
    try {
      service::ServiceClient client(port, timeout);
      for (int i = 0; i < requests; ++i) {
        const int k = c * requests + i;
        // Deterministic mix: the first ceil(dup+invalid fractions) of each
        // client's requests are special, the rest unique. Index arithmetic
        // (not RNG) so the expected counter values are exact in CI.
        const bool invalid = double(i) < invalid_ratio * double(requests);
        const bool duplicate =
            !invalid &&
            double(i) < (invalid_ratio + dup_ratio) * double(requests);
        std::string value;
        if (invalid) {
          value = "not-a-number";
        } else if (duplicate) {
          value = format_value(base);  // everyone's hot job
        } else {
          value = format_value(base + double(k + 1) * spread);
        }
        Timer t;
        const Json resp = client.submit(
            "", {axis + "=" + value}, steps, prefix + std::to_string(c),
            priority, /*wait=*/true);
        const double latency = t.seconds();
        const std::string& type = resp.at("type").as_string();
        local.latencies.push_back(latency);
        if (type == "result") {
          const std::string& source = resp.at("source").as_string();
          if (source == "fresh") ++local.fresh;
          else if (source == "cache") ++local.cache;
          else ++local.coalesced;
        } else if (type == "accepted") {
          ++local.accepted;
        } else if (type == "rejected") {
          ++local.rejected;
        } else {
          ++local.errors;  // protocol `error` (expected for invalid submits)
        }
      }
    } catch (const Error& e) {
      MV_LOG_WARN << "client " << c << ": " << e.what();
      ++local.transport_failures;
    }
    std::lock_guard<std::mutex> lock(mu);
    tally.fresh += local.fresh;
    tally.cache += local.cache;
    tally.coalesced += local.coalesced;
    tally.accepted += local.accepted;
    tally.rejected += local.rejected;
    tally.errors += local.errors;
    tally.transport_failures += local.transport_failures;
    tally.latencies.insert(tally.latencies.end(), local.latencies.begin(),
                           local.latencies.end());
  };

  Timer wall;
  std::vector<std::thread> pool;
  pool.reserve(std::size_t(clients));
  for (int c = 0; c < clients; ++c) pool.emplace_back(worker, c);
  for (std::thread& t : pool) t.join();
  const double wall_s = wall.seconds();

  Json summary = Json::object();
  summary.set("type", Json::string("campaign_load"));
  summary.set("clients", Json::number(std::int64_t{clients}));
  summary.set("requests", Json::number(std::int64_t{clients * requests}));
  summary.set("fresh", Json::number(std::int64_t{tally.fresh}));
  summary.set("cache", Json::number(std::int64_t{tally.cache}));
  summary.set("coalesced", Json::number(std::int64_t{tally.coalesced}));
  summary.set("accepted", Json::number(std::int64_t{tally.accepted}));
  summary.set("rejected", Json::number(std::int64_t{tally.rejected}));
  summary.set("errors", Json::number(std::int64_t{tally.errors}));
  summary.set("transport_failures",
              Json::number(std::int64_t{tally.transport_failures}));
  summary.set("wall_seconds", Json::number(wall_s));
  summary.set("latency_p50_s",
              Json::number(percentile(tally.latencies, 0.5)));
  summary.set("latency_p99_s",
              Json::number(percentile(tally.latencies, 0.99)));
  if (args.get_bool("metrics-json", false)) {
    service::ServiceClient client(port, timeout);
    summary.set("server_metrics", client.metrics().at("values"));
  }

  if (args.get_bool("json", false)) {
    std::cout << summary.dump() << "\n";
  } else {
    std::cout << "campaign_load: " << clients << " client(s) x " << requests
              << " request(s) in " << wall_s << " s\n"
              << "  fresh " << tally.fresh << ", cache " << tally.cache
              << ", coalesced " << tally.coalesced << ", accepted "
              << tally.accepted << ", rejected " << tally.rejected
              << ", errors " << tally.errors << "\n"
              << "  latency p50 " << percentile(tally.latencies, 0.5)
              << " s, p99 " << percentile(tally.latencies, 0.99) << " s\n";
  }
  return tally.transport_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::cerr << "campaign_load: error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "campaign_load: unexpected error: " << e.what() << "\n";
    return 1;
  }
}
