// Telemetry output validator — the CI smoke gate for the observability
// layer (docs/OBSERVABILITY.md):
//
//   ./telemetry_check --metrics=m.ndjson --trace=t.json
//
// Metrics stream checks: every line parses as strict JSON; the first
// record is a `meta` record with schema/ranks/units; every `step_sample`
// carries the required metric keys (per-phase seconds, push.rate,
// push.gflops, pipeline.imbalance, ...) each with min/mean/max/sum
// satisfying min <= mean <= max. One *trailing* partial line — the
// signature a killed run leaves, since the writer flushes per line — is
// tolerated and counted instead of failing the stream.
//
// Trace checks: the file parses as a Chrome trace-event JSON object;
// every event has ph/ts/pid/tid; B/E events balance per (pid, tid) with
// timestamps that never run backwards.
//
// Exits 0 when everything holds, 1 with a diagnostic otherwise, 2 on
// usage errors. No metrics/trace flag = nothing to check = usage error.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

using namespace minivpic;
using telemetry::Json;

namespace {

/// Metric names every step_sample record must carry (subset of the
/// catalogue; see docs/OBSERVABILITY.md).
const std::vector<std::string> kRequiredMetrics = {
    "phase.interpolate.s", "phase.push.s",      "phase.migrate.s",
    "phase.sort.s",        "phase.reduce.s",    "phase.sources.s",
    "phase.field.s",       "phase.clean.s",     "phase.collide.s",
    "step.s",              "particles.pushed",  "push.rate",
    "push.gflops",         "push.gbytes_per_s", "pipeline.count",
    "pipeline.imbalance",  "push.lane_width",   "particles.local",
    "pipeline.busy.s",     "load.imbalance",
};

int check_metrics(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    std::cerr << "telemetry_check: cannot open metrics file: " << path
              << "\n";
    return 1;
  }
  // Slurp all lines up front: a run killed mid-write (the writer flushes
  // per line, so only the final line can be cut short) leaves one partial
  // trailing line, which is tolerated and counted instead of failing the
  // whole stream — every *complete* record must still validate.
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  std::int64_t lineno = 0, samples = 0, partial = 0;
  bool saw_meta = false;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    line = lines[li];
    const bool last = li + 1 == lines.size();
    ++lineno;
    if (line.empty()) {
      std::cerr << "metrics:" << lineno << ": empty line\n";
      return 1;
    }
    Json rec;
    try {
      rec = Json::parse(line);
    } catch (const Error& e) {
      if (last) {
        ++partial;
        break;
      }
      std::cerr << "metrics:" << lineno << ": " << e.what() << "\n";
      return 1;
    }
    try {
      const std::string& type = rec.at("type").as_string();
      if (lineno == 1) {
        if (type != "meta") {
          std::cerr << "metrics:1: first record must be a meta record\n";
          return 1;
        }
        saw_meta = true;
        rec.at("schema").as_number();
        rec.at("ranks").as_number();
        rec.at("kernel").as_string();
        rec.at("units").members();
        continue;
      }
      if (type != "step_sample") {
        std::cerr << "metrics:" << lineno << ": unknown record type '"
                  << type << "'\n";
        return 1;
      }
      rec.at("step").as_number();
      rec.at("t").as_number();
      const Json& metrics = rec.at("metrics");
      for (const std::string& name : kRequiredMetrics) {
        const Json* m = metrics.find(name);
        if (m == nullptr) {
          if (last) throw Error("truncated final record");
          std::cerr << "metrics:" << lineno << ": missing required metric '"
                    << name << "'\n";
          return 1;
        }
        const double mn = m->at("min").as_number();
        const double mean = m->at("mean").as_number();
        const double mx = m->at("max").as_number();
        m->at("sum").as_number();
        if (!(mn <= mean && mean <= mx)) {
          std::cerr << "metrics:" << lineno << ": metric '" << name
                    << "' violates min <= mean <= max (" << mn << ", "
                    << mean << ", " << mx << ")\n";
          return 1;
        }
      }
      ++samples;
    } catch (const Error& e) {
      // A final line that parses but fails field validation is the same
      // crash artifact as one that does not parse: the write was cut at a
      // point that still happens to be JSON. Complete lines stay strict.
      if (last) {
        ++partial;
        break;
      }
      std::cerr << "metrics:" << lineno << ": " << e.what() << "\n";
      return 1;
    }
  }
  if (!saw_meta || samples == 0) {
    std::cerr << "metrics: expected a meta record plus at least one "
                 "step_sample (got "
              << samples << " samples)\n";
    return 1;
  }
  std::cout << "metrics ok: " << path << " (" << samples << " samples";
  if (partial != 0) std::cout << ", 1 partial trailing line tolerated";
  std::cout << ")\n";
  return 0;
}

int check_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    std::cerr << "telemetry_check: cannot open trace file: " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  Json doc;
  try {
    doc = Json::parse(buf.str());
  } catch (const Error& e) {
    std::cerr << "trace: " << e.what() << "\n";
    return 1;
  }
  try {
    const Json& events = doc.at("traceEvents");
    std::map<std::pair<int, int>, std::vector<double>> open;  // B-event ts
    std::map<std::pair<int, int>, double> last_ts;
    std::int64_t spans = 0, instants = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Json& e = events.at(i);
      const std::string& ph = e.at("ph").as_string();
      const double ts = e.at("ts").as_number();
      const auto track = std::make_pair(int(e.at("pid").as_number()),
                                        int(e.at("tid").as_number()));
      if (last_ts.count(track) != 0 && ts < last_ts[track]) {
        std::cerr << "trace: event " << i << " runs backwards in time on "
                  << "pid " << track.first << " tid " << track.second
                  << "\n";
        return 1;
      }
      last_ts[track] = ts;
      if (ph == "B") {
        e.at("name").as_string();
        open[track].push_back(ts);
        ++spans;
      } else if (ph == "E") {
        if (open[track].empty()) {
          std::cerr << "trace: event " << i << ": E without matching B on "
                    << "pid " << track.first << " tid " << track.second
                    << "\n";
          return 1;
        }
        open[track].pop_back();
      } else if (ph == "i") {
        e.at("name").as_string();
        ++instants;
      } else {
        std::cerr << "trace: event " << i << ": unexpected phase '" << ph
                  << "'\n";
        return 1;
      }
    }
    for (const auto& [track, stack] : open) {
      if (!stack.empty()) {
        std::cerr << "trace: " << stack.size() << " unclosed span(s) on pid "
                  << track.first << " tid " << track.second << "\n";
        return 1;
      }
    }
    if (spans == 0) {
      std::cerr << "trace: no duration spans recorded\n";
      return 1;
    }
    std::cout << "trace ok: " << path << " (" << spans << " spans, "
              << instants << " instant events)\n";
  } catch (const Error& e) {
    std::cerr << "trace: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args(argc, argv);
    args.check_known({"metrics", "trace"});
    if (!args.has("metrics") && !args.has("trace")) {
      std::cerr << "usage: telemetry_check [--metrics=ndjson] "
                   "[--trace=json]\n";
      return 2;
    }
    int rc = 0;
    if (args.has("metrics")) rc |= check_metrics(args.get("metrics", ""));
    if (args.has("trace")) rc |= check_trace(args.get("trace", ""));
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "telemetry_check: error: " << e.what() << "\n";
    return 1;
  }
}
