// Two-stream instability: the classic kinetic benchmark. Counter-streaming
// electron beams drive an exponentially growing electrostatic wave that
// saturates by particle trapping — the same trapping physics at the heart
// of the paper's laser-reflectivity study.
//
//   ./two_stream [--cells=32] [--ppc=48] [--drift=0.5] [--steps=700]
#include <iostream>
#include <vector>

#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

using namespace minivpic;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known({"cells", "ppc", "drift", "steps"});
  const int cells = int(args.get_int("cells", 32));
  const int ppc = int(args.get_int("ppc", 48));
  const double drift = args.get_double("drift", 0.5);
  const int steps = int(args.get_int("steps", 700));

  sim::Simulation sim(sim::two_stream_deck(cells, ppc, drift));
  sim.initialize();
  std::cout << "two-stream: beams at u = +-" << drift << ", "
            << sim.global_particle_count() << " particles\n\n";

  std::vector<double> t, ex;
  Table table({"time", "E_x energy", "beam KE"});
  for (int s = 0; s < steps; ++s) {
    sim.step();
    const auto rep = sim.energies();
    t.push_back(sim.time());
    ex.push_back(rep.field.ex);
    if (s % (steps / 14) == 0) {
      table.add_row({sim.time(), rep.field.ex,
                     rep.species_kinetic[0] + rep.species_kinetic[1]});
    }
  }
  table.print(std::cout, "electrostatic field growth");

  // Fit the exponential phase: between 30x the noise floor and 10% of peak.
  const double noise = ex[5];
  const double peak = *std::max_element(ex.begin(), ex.end());
  std::size_t lo = 0, hi = 0;
  while (lo < ex.size() && ex[lo] < 30 * noise) ++lo;
  hi = lo;
  while (hi < ex.size() && ex[hi] < 0.1 * peak) ++hi;
  std::cout << "\namplification: " << peak / noise << "x\n";
  if (hi > lo + 10) {
    const auto fit = fit_exponential_growth(t, ex, lo, hi);
    std::cout << "fitted growth rate of field energy: " << fit.slope
              << " omega_pe  (wave gamma = " << fit.slope / 2
              << ", cold-beam theory gamma ~ 0.2-0.4)\n";
  }
  return 0;
}
