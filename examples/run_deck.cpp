// Deck-file runner: the "production" entry point. Loads a text deck,
// runs it, reports energies (and reflectivity if a laser is configured),
// and optionally checkpoints at the end.
//
//   ./run_deck my.deck --steps=500 [--report=10] [--probe_plane=16]
//              [--checkpoint=prefix] [--history=energies.csv]
//              [--pipelines=N]   # particle-advance threads; 0 = hardware
//
// Example deck (see sim/deck_io.hpp for the full grammar):
//
//   [grid]
//   nx = 480  ny = 1  nz = 1  dx = 0.2
//   boundary_x = absorbing  particle_bc_x = absorb
//   [species electron]
//   q = -1  m = 1  ppc = 128  uth = 0.0626  slab_x0 = 6  slab_x1 = 90
//   [species ion]
//   q = 1  m = 1836  ppc = 128  uth = 0.0008  mobile = false
//   slab_x0 = 6  slab_x1 = 90
//   [laser]
//   omega0 = 3.162  a0 = 0.15  ramp = 10
//   [control]
//   sort_period = 20  clean_period = 50
#include <iostream>
#include <memory>

#include "sim/checkpoint.hpp"
#include "sim/deck_io.hpp"
#include "sim/diagnostics.hpp"
#include "sim/history.hpp"
#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

using namespace minivpic;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known(
      {"steps", "report", "probe_plane", "checkpoint", "history", "pipelines"});
  if (args.positional().empty()) {
    std::cerr << "usage: run_deck <deck-file> [--steps=N] [--report=N]\n"
                 "       [--probe_plane=I] [--checkpoint=prefix] "
                 "[--history=csv] [--pipelines=N]\n";
    return 2;
  }
  const int steps = int(args.get_int("steps", 200));
  const int report = int(args.get_int("report", std::max(1, steps / 10)));

  sim::Deck deck = sim::load_deck_file(args.positional()[0]);
  // CLI overrides the deck's [control] pipelines; both default to
  // hardware-aware (0 = one pipeline per hardware thread).
  if (args.has("pipelines")) {
    deck.pipelines = int(args.get_int("pipelines", 0));
  }

  sim::Simulation sim(deck);
  sim.initialize();
  std::cout << "deck: " << args.positional()[0] << " — "
            << sim.global_particle_count() << " particles, dt = "
            << sim.local_grid().dt() << ", pipelines = " << sim.pipelines()
            << "\n\n";

  std::unique_ptr<sim::ReflectivityProbe> probe;
  if (args.has("probe_plane")) {
    probe = std::make_unique<sim::ReflectivityProbe>(
        sim, int(args.get_int("probe_plane", 16)));
  }
  sim::EnergyHistory history(sim);
  history.sample();

  Table table(probe ? std::vector<std::string>{"step", "time", "E_total",
                                               "reflectivity"}
                    : std::vector<std::string>{"step", "time", "E_total"});
  for (int s = 1; s <= steps; ++s) {
    sim.step();
    if (probe) probe->sample();
    history.sample();
    if (s % report == 0) {
      std::vector<Cell> row{(long long)sim.step_index(), sim.time(),
                            sim.energies().total};
      if (probe) row.push_back(probe->reflectivity());
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout, "run history");
  std::cout << "\nGauss residual: " << sim.gauss_error()
            << ", energy drift: " << 100 * history.worst_relative_drift()
            << "%, push rate: "
            << double(sim.particle_stats().pushed) /
                   sim.timings().push.total_seconds() / 1e6
            << " M particles/s\n";

  if (args.has("history")) history.write_csv(args.get("history", ""));
  if (args.has("checkpoint")) {
    sim::Checkpoint::save(sim, args.get("checkpoint", ""));
    std::cout << "checkpoint written: " << args.get("checkpoint", "")
              << ".rank0\n";
  }
  return 0;
}
