// Deck-file runner: the "production" entry point. Loads a text deck,
// runs it with periodic checkpointing and runtime health sentinels,
// reports energies (and reflectivity if a laser is configured), and can
// resume an interrupted campaign from its rotated checkpoint sets.
//
//   ./run_deck my.deck --steps=500 [--report=10] [--probe_plane=16]
//              [--checkpoint=prefix]     # snapshot set prefix
//              [--checkpoint-every=N]    # periodic cadence (deck: checkpoint_every)
//              [--resume[=prefix]]       # restore latest set, run to --steps
//              [--max-walltime=seconds]  # checkpoint + exit 3 when exceeded
//              [--history=energies.csv]
//              [--pipelines=N]   # particle-advance threads; 0 = hardware
//              [--kernel=NAME]   # scalar|sse|avx2|avx512|auto (default auto)
//              [--sort-every=N]  # particle bin-sort cadence in steps;
//                                # 0 = never (deck: sort_every, default 20;
//                                # see docs/SORTING.md for tuning)
//              [--overlap=MODE]  # comm/compute overlap: on|off|auto
//                                # (deck: overlap, default auto = on for
//                                # multi-rank runs; see docs/OVERLAP.md)
//              [--set=section.key=value] # deck override (repeatable)
//              [--metrics=PATH]  # NDJSON metrics stream (rank-reduced)
//              [--metrics-every=N]       # sample cadence (default: --report)
//              [--trace=PATH]    # Chrome trace (open in ui.perfetto.dev)
//              [--log-level=debug|info|warn|error]
//              [--ranks=N]       # multi-rank run under rollback recovery
//              [--comm-timeout=S]        # vmpi per-call deadline, seconds
//              [--inject-comm-fault=kind[:rank[:arg]]@step]  # repeatable;
//                                # kind = kill|flip|drop|dup|delay
//                                # (fault drill, docs/FAULTS.md)
//              [--flight-recorder[=events]]  # arm the per-rank flight
//                                # recorder (ring of `events` binary events,
//                                # default 4096; docs/OBSERVABILITY.md)
//              [--fdr-prefix=PATH]       # `.fdr` dump prefix (default: the
//                                # deck path); files are PATH.rank<r>.fdr
//
// Telemetry (see docs/OBSERVABILITY.md): --metrics streams one
// self-describing JSON record per sample cadence with per-phase seconds,
// achieved Gflop/s, particles/s, and pipeline load imbalance, reduced to
// min/mean/max/sum across ranks; --trace records nested per-phase spans
// plus health-sentinel and checkpoint instant events. An end-of-run
// rank-reduced summary table is always printed.
//
// SIGINT/SIGTERM finish the current step, write a final checkpoint set, and
// exit with code 3 ("interrupted but resumable"), as does --max-walltime.
// Deck or internal errors print to stderr and exit 1. The full exit-code
// table (0/1/2/3/4) and the forensic-dump paths taken on each are
// documented in README.md "Exit codes" and docs/FAULTS.md.
//
// With --flight-recorder armed, every exit path — normal completion,
// interruption, health abort, unrecoverable comm fault, SIGSEGV/SIGABRT —
// dumps the per-rank event rings to `.fdr` files for examples/postmortem
// to merge (docs/OBSERVABILITY.md "Flight recorder & postmortem").
//
// Fault-tolerant mode (--ranks > 1, --comm-timeout, or --inject-comm-fault;
// see docs/FAULTS.md): the run is supervised by sim::RecoveryCoordinator —
// detected communication faults roll the world back to the newest mutually
// agreed checkpoint set and replay. Exit codes: 0 = completed (recovered
// runs included), 4 = unrecoverable comm fault (no checkpoint to roll back
// to, or the recovery budget was exhausted). --probe_plane, --max-walltime,
// --metrics and --trace are not supported in this mode.
//
// Example deck (see sim/deck_io.hpp for the full grammar):
//
//   [grid]
//   nx = 480  ny = 1  nz = 1  dx = 0.2
//   boundary_x = absorbing  particle_bc_x = absorb
//   [species electron]
//   q = -1  m = 1  ppc = 128  uth = 0.0626  slab_x0 = 6  slab_x1 = 90
//   [species ion]
//   q = 1  m = 1836  ppc = 128  uth = 0.0008  mobile = false
//   slab_x0 = 6  slab_x1 = 90
//   [laser]
//   omega0 = 3.162  a0 = 0.15  ramp = 10
//   [control]
//   sort_every = 20  clean_period = 50
//   checkpoint_every = 500  health_period = 50  health_policy = abort
#include <chrono>
#include <csignal>
#include <iostream>
#include <memory>

#include "sim/checkpoint.hpp"
#include "sim/deck_io.hpp"
#include "sim/diagnostics.hpp"
#include "sim/health.hpp"
#include "sim/history.hpp"
#include "sim/recovery.hpp"
#include "sim/simulation.hpp"
#include "telemetry/anomaly.hpp"
#include "telemetry/ndjson.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/reduce.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"
#include "vmpi/fault.hpp"

using namespace minivpic;

namespace {

LogLevel parse_log_level(const std::string& s) {
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  MV_REQUIRE(false, "unknown --log-level '" << s
                                            << "' (debug|info|warn|error)");
}

/// End-of-run whole-run telemetry: one rank-reduced row per metric.
void print_summary(std::ostream& os, const sim::Simulation& sim,
                   double wall_seconds, const telemetry::RankReducer& reducer) {
  const telemetry::StepSample total =
      telemetry::StepSampler::derive_total(sim, wall_seconds);
  const auto reduced = reducer.reduce(total.scalars());
  if (!reducer.root()) return;
  Table table({"metric", "unit", "min", "mean", "max", "sum"});
  for (const auto& m : reduced) {
    table.add_row({m.name, m.unit, m.stats.min, m.stats.mean, m.stats.max,
                   m.stats.sum});
  }
  table.print(os, "telemetry summary (" + std::to_string(reducer.ranks()) +
                      " rank(s), min/mean/max/sum across ranks)");
}

/// Exit code for "stopped early but a final checkpoint set was written":
/// distinct from success (0), errors (1) and usage (2) so schedulers can
/// requeue the job with --resume.
constexpr int kExitInterrupted = 3;

/// Exit code for "an unrecoverable communication fault": the run died with
/// no checkpoint set to roll back to, or the recovery budget ran out.
/// Distinct from 1 so schedulers can tell a comm fault from a deck error.
constexpr int kExitCommFault = 4;

/// Flight-recorder arming, shared by both run paths: ring capacity from
/// `--flight-recorder[=events]`, dump-path prefix from `--fdr-prefix`
/// (default: the deck path). Per-rank dumps land at `<prefix>.rank<r>.fdr`.
struct RecorderOptions {
  bool enabled = false;
  std::size_t events = telemetry::Recorder::kDefaultCapacity;
  std::string prefix;
};

RecorderOptions recorder_options(const Args& args) {
  RecorderOptions opt;
  if (!args.has("flight-recorder")) return opt;
  opt.enabled = true;
  if (args.get("flight-recorder", "") != "true") {
    const std::int64_t n = args.get_int("flight-recorder", 4096);
    MV_REQUIRE(n >= 2, "--flight-recorder needs >= 2 events, got " << n);
    opt.events = std::size_t(n);
  }
  opt.prefix = args.get("fdr-prefix", args.positional()[0]);
  return opt;
}

std::string fdr_path(const RecorderOptions& opt, int rank) {
  return opt.prefix + ".rank" + std::to_string(rank) + ".fdr";
}

/// Fault-tolerant multi-rank path: the run is supervised by
/// sim::RecoveryCoordinator, which relaunches the vmpi world and rolls back
/// to the newest mutually agreed checkpoint set after a detected fault.
int run_fault_tolerant(const Args& args, sim::Deck deck, int ranks,
                       int steps, int report, const std::string& ckpt_prefix,
                       bool resume, const std::string& resume_prefix) {
  MV_REQUIRE(!args.has("probe_plane") && !args.has("max-walltime") &&
                 !args.has("metrics") && !args.has("trace"),
             "--probe_plane/--max-walltime/--metrics/--trace are not "
             "supported with --ranks/--comm-timeout/--inject-comm-fault");
  MV_REQUIRE(ranks >= 1, "--ranks must be >= 1");

  vmpi::FaultPlane plane;
  const std::vector<std::string> fault_specs =
      args.get_all("inject-comm-fault");
  for (const std::string& spec : fault_specs) plane.schedule_from_spec(spec);

  sim::RecoveryConfig rc;
  rc.ranks = ranks;
  rc.checkpoint_prefix = ckpt_prefix;
  rc.checkpoint_every = deck.checkpoint_every;
  rc.checkpoint_keep = deck.checkpoint_keep;
  rc.comm_timeout = args.get_double("comm-timeout", 0);
  // Message framing (CRC + sequence numbers) is what *detects* injected
  // corruption/loss; arm it whenever a drill is scheduled.
  rc.integrity = !fault_specs.empty();
  rc.fault_plane = fault_specs.empty() ? nullptr : &plane;
  if (resume) {
    MV_REQUIRE(resume_prefix == ckpt_prefix,
               "fault-tolerant mode resumes from the --checkpoint prefix; "
               "--resume=" << resume_prefix << " names a different set");
    rc.resume_step = sim::Checkpoint::latest_step(ckpt_prefix);
    MV_REQUIRE(rc.resume_step >= 0,
               "--resume: no complete checkpoint set under " << ckpt_prefix);
    std::cout << "resuming from " << ckpt_prefix << " at step "
              << rc.resume_step << "\n";
  }
  const bool final_save = args.has("checkpoint") || deck.checkpoint_every > 0;
  if (final_save) {
    // Collective and deterministic, so safe to repeat if a fault lands
    // between the final step and the last rank returning.
    rc.on_final = [&](sim::Simulation& sim, vmpi::Comm&) {
      sim::Checkpoint::save(sim, ckpt_prefix, deck.checkpoint_keep);
    };
  }

  // Flight recorder: one per rank, registered for crash dumps; the
  // coordinator wires rank r's simulation and comm hook to recorders[r].
  const RecorderOptions fdr = recorder_options(args);
  std::vector<std::unique_ptr<telemetry::Recorder>> recorders;
  if (fdr.enabled) {
    telemetry::install_crash_handlers();
    for (int r = 0; r < ranks; ++r)
      recorders.push_back(std::make_unique<telemetry::Recorder>(
          fdr_path(fdr, r), r, fdr.events));
    for (auto& r : recorders) rc.recorders.push_back(r.get());
  }

  sim::RecoveryCoordinator coordinator(deck, rc);
  const sim::RecoveryReport rep = coordinator.run(steps);

  Table table({"step", "time", "E_total"});
  for (const sim::HistoryRow& row : coordinator.history()) {
    if (row.step > 0 && row.step % report == 0)
      table.add_row({(long long)row.step, row.time, row.total});
  }
  table.print(std::cout, "run history (" + std::to_string(ranks) +
                             " rank(s), rollback recovery)");
  std::cout << "\nworlds: " << rep.worlds << ", rollbacks: " << rep.rollbacks
            << ", faults injected: " << rep.comm.faults_injected
            << ", detected: " << rep.comm.faults_detected
            << ", timeouts: " << rep.comm.timeouts << "\n";

  if (args.has("history"))
    coordinator.write_history_csv(args.get("history", ""));
  if (final_save && rep.completed) {
    std::cout << "checkpoint set written: "
              << sim::Checkpoint::set_path(ckpt_prefix, rep.final_step, 0)
              << "\n";
  }
  if (!rep.completed) {
    if (fdr.enabled) {
      for (auto& r : recorders)
        r->dump(telemetry::FdrDumpReason::kCommFault);
      std::cerr << "flight records dumped: " << fdr_path(fdr, 0) << " .. "
                << fdr_path(fdr, ranks - 1)
                << " (merge with examples/postmortem)\n";
    }
    std::cerr << "run_deck: unrecoverable comm fault: " << rep.last_fault
              << " (rollbacks: " << rep.rollbacks << ")\n";
    return kExitCommFault;
  }
  if (fdr.enabled) {
    for (auto& r : recorders) r->dump(telemetry::FdrDumpReason::kExit);
    std::cout << "flight records dumped: " << fdr_path(fdr, 0) << " .. "
              << fdr_path(fdr, ranks - 1) << "\n";
  }
  return 0;
}

volatile std::sig_atomic_t g_stop_signal = 0;

void handle_stop(int sig) { g_stop_signal = sig; }

int run(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known({"steps", "report", "probe_plane", "checkpoint",
                    "checkpoint-every", "resume", "max-walltime", "history",
                    "pipelines", "kernel", "sort-every", "overlap", "metrics",
                    "metrics-every", "trace", "log-level", "set", "ranks",
                    "comm-timeout", "inject-comm-fault", "flight-recorder",
                    "fdr-prefix"});
  if (args.positional().empty()) {
    std::cerr << "usage: run_deck <deck-file> [--steps=N] [--report=N]\n"
                 "       [--probe_plane=I] [--checkpoint=prefix] "
                 "[--checkpoint-every=N]\n"
                 "       [--resume[=prefix]] [--max-walltime=seconds] "
                 "[--history=csv] [--pipelines=N]\n"
                 "       [--metrics=ndjson] [--metrics-every=N] "
                 "[--trace=json] [--log-level=LVL]\n"
                 "       [--kernel=scalar|sse|avx2|avx512|auto] "
                 "[--sort-every=N] [--overlap=on|off|auto]\n"
                 "       [--set=section.key=value ...]\n"
                 "       [--ranks=N] [--comm-timeout=seconds] "
                 "[--inject-comm-fault=kind[:rank[:arg]]@step ...]\n"
                 "       [--flight-recorder[=events]] [--fdr-prefix=PATH]\n";
    return 2;
  }
  if (args.has("log-level")) {
    set_log_level(parse_log_level(args.get("log-level", "info")));
  }
  const int steps = int(args.get_int("steps", 200));
  const int report = int(args.get_int("report", std::max(1, steps / 10)));
  const int metrics_every =
      int(args.get_int("metrics-every", std::max(1, report)));
  MV_REQUIRE(metrics_every >= 1, "--metrics-every must be >= 1");
  const double max_walltime = args.get_double("max-walltime", 0);

  // --set patches individual deck keys before the deck is built; unknown
  // sections/keys are rejected with the same errors a deck file would get.
  std::vector<sim::DeckOverride> overrides;
  for (const std::string& spec : args.get_all("set"))
    overrides.push_back(sim::parse_override(spec));
  sim::Deck deck = sim::load_deck_file(args.positional()[0], overrides);
  // CLI overrides the deck's [control] settings; pipelines both default to
  // hardware-aware (0 = one pipeline per hardware thread).
  if (args.has("pipelines")) {
    deck.pipelines = int(args.get_int("pipelines", 0));
  }
  // Advance kernel follows the same convention: the deck's [control]
  // `kernel` key (default auto for deck files) overridden by --kernel.
  if (args.has("kernel")) {
    deck.kernel = particles::parse_kernel(args.get("kernel", "auto"));
  }
  // Bin-sort cadence follows the same convention: the deck's [control]
  // `sort_every` (alias `sort_period`) overridden by --sort-every; 0 turns
  // the periodic sort off entirely.
  if (args.has("sort-every")) {
    deck.sort_period = int(args.get_int("sort-every", 20));
    MV_REQUIRE(deck.sort_period >= 0, "--sort-every must be >= 0");
  }
  // Comm/compute overlap (docs/OVERLAP.md): the deck's [control] `overlap`
  // key (default auto) overridden by --overlap.
  if (args.has("overlap")) {
    const std::string mode = args.get("overlap", "auto");
    if (mode == "on") {
      deck.overlap = sim::Deck::Overlap::kOn;
    } else if (mode == "off") {
      deck.overlap = sim::Deck::Overlap::kOff;
    } else if (mode == "auto") {
      deck.overlap = sim::Deck::Overlap::kAuto;
    } else {
      MV_REQUIRE(false, "--overlap: unknown mode '" << mode
                                                    << "' (on|off|auto)");
    }
  }
  if (args.has("checkpoint-every")) {
    deck.checkpoint_every = int(args.get_int("checkpoint-every", 0));
  }
  const std::string ckpt_prefix =
      args.get("checkpoint", args.positional()[0] + ".ckpt");
  // `--resume` alone restores from the checkpoint prefix; `--resume=prefix`
  // names another campaign's sets.
  const bool resume = args.has("resume");
  const std::string resume_prefix =
      args.get("resume", "") == "true" ? ckpt_prefix : args.get("resume", "");

  // Any fault-tolerance flag routes through the rollback-recovery path.
  if (args.has("ranks") || args.has("comm-timeout") ||
      args.has("inject-comm-fault")) {
    return run_fault_tolerant(args, deck, int(args.get_int("ranks", 1)),
                              steps, report, ckpt_prefix, resume,
                              resume_prefix);
  }

  // Flight recorder first: install_crash_handlers claims SIGTERM for the
  // forensic dump, and the graceful handler below then takes precedence so
  // SIGTERM still checkpoints and exits 3 (the dump happens on that path
  // too). SIGSEGV/SIGABRT keep the recorder's handler.
  const RecorderOptions fdr = recorder_options(args);
  std::unique_ptr<telemetry::Recorder> recorder;
  if (fdr.enabled) {
    telemetry::install_crash_handlers();
    recorder =
        std::make_unique<telemetry::Recorder>(fdr_path(fdr, 0), 0, fdr.events);
  }
  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
  const auto wall_start = std::chrono::steady_clock::now();

  sim::Simulation sim(deck);
  if (recorder) sim.set_recorder(recorder.get());

  // Telemetry sinks. The trace writer must be attached before restore() so
  // the checkpoint.restore instant lands in the trace too.
  std::unique_ptr<telemetry::TraceWriter> trace;
  if (args.has("trace")) {
    trace = std::make_unique<telemetry::TraceWriter>(args.get("trace", ""),
                                                     /*pid=*/0);
    sim.set_trace(trace.get());
  }

  if (resume) {
    sim::Checkpoint::restore(sim, resume_prefix);
    std::cout << "resumed from " << resume_prefix << " at step "
              << sim.step_index() << "\n";
  } else {
    sim.initialize();
  }
  std::cout << "deck: " << args.positional()[0] << " — "
            << sim.global_particle_count() << " particles, dt = "
            << sim.local_grid().dt() << ", pipelines = " << sim.pipelines()
            << ", kernel = " << particles::kernel_name(sim.kernel()) << "\n\n";

  sim::HealthMonitor health(sim, deck.health, ckpt_prefix);

  std::unique_ptr<sim::ReflectivityProbe> probe;
  if (args.has("probe_plane")) {
    probe = std::make_unique<sim::ReflectivityProbe>(
        sim, int(args.get_int("probe_plane", 16)));
  }
  sim::EnergyHistory history(sim);
  history.sample();

  // NDJSON metrics stream: per-interval derived metrics, rank-reduced
  // (degenerate single-rank reduction here; run_deck drives one rank).
  telemetry::StepSampler sampler(sim);
  telemetry::RankReducer reducer(sim.comm());
  std::unique_ptr<telemetry::NdjsonWriter> metrics;
  if (args.has("metrics") && reducer.root()) {
    metrics = std::make_unique<telemetry::NdjsonWriter>(
        args.get("metrics", ""));
  }
  bool metrics_meta_written = false;
  // Online anomaly detection rides the metrics cadence: EWMA+MAD baselines
  // over the reduced sample flag step-rate regressions, migrate-phase
  // latency spikes, and per-rank stragglers (docs/OBSERVABILITY.md
  // "Anomaly detection").
  telemetry::AnomalyDetector detector;
  Timer sample_timer;
  const Timer loop_timer;

  Table table(probe ? std::vector<std::string>{"step", "time", "E_total",
                                               "reflectivity"}
                    : std::vector<std::string>{"step", "time", "E_total"});
  bool interrupted = false;
  // step_index, not a loop counter: a health rollback rewinds the clock and
  // the loop must replay the rewound steps.
  try {
  while (sim.step_index() < steps) {
    sim.step();
    if (probe) probe->sample();
    history.sample();
    health.check();
    const std::int64_t s = sim.step_index();
    if (deck.checkpoint_every > 0 && s % deck.checkpoint_every == 0) {
      sim::Checkpoint::save(sim, ckpt_prefix, deck.checkpoint_keep);
    }
    if (args.has("metrics") && s % metrics_every == 0) {
      const telemetry::StepSample smp = sampler.sample(sample_timer.seconds());
      sample_timer.reset();
      auto reduced = reducer.reduce(smp.scalars());
      telemetry::append_load_imbalance(&reduced);
      // Per-rank load shards in rank order (root only; degenerate {value}
      // in this single-rank path): the straggler detector's input and the
      // NDJSON "load" record the dynamic-load-balancing work needs.
      const std::vector<double> rank_particles =
          reducer.gather(double(smp.particles_local));
      const std::vector<double> rank_busy = reducer.gather(smp.busy_seconds);
      const auto anomalies =
          detector.observe(s, reduced, rank_particles, rank_busy);
      detector.publish(anomalies, nullptr, trace.get());
      // Anomaly verdicts ride the stream as synthetic reduced metrics.
      const double flagged = double(anomalies.size());
      const double flagged_total = double(detector.total_flagged());
      reduced.push_back(
          {"anomaly.count", "count", {flagged, flagged, flagged, flagged}});
      reduced.push_back({"anomaly.total",
                         "count",
                         {flagged_total, flagged_total, flagged_total,
                          flagged_total}});
      if (metrics) {
        if (!metrics_meta_written) {
          telemetry::Json extra = telemetry::Json::object();
          extra.set("deck", telemetry::Json::string(args.positional()[0]));
          extra.set("sample_every",
                    telemetry::Json::number(std::int64_t{metrics_every}));
          metrics->write(telemetry::meta_record(
              reducer.ranks(), sim.pipelines(),
              particles::kernel_name(sim.kernel()), reduced, extra));
          metrics_meta_written = true;
        }
        metrics->write(
            telemetry::sample_record(smp, reduced, rank_particles, rank_busy));
      }
    }
    if (s % report == 0) {
      std::vector<Cell> row{(long long)s, sim.time(), sim.energies().total};
      if (probe) row.push_back(probe->reflectivity());
      table.add_row(std::move(row));
    }
    if (g_stop_signal != 0) {
      std::cerr << "\nsignal " << int(g_stop_signal)
                << " received — writing final checkpoint set\n";
      interrupted = true;
      break;
    }
    if (max_walltime > 0) {
      const std::chrono::duration<double> used =
          std::chrono::steady_clock::now() - wall_start;
      if (used.count() >= max_walltime) {
        std::cerr << "\nwalltime budget (" << max_walltime
                  << " s) exhausted — writing final checkpoint set\n";
        interrupted = true;
        break;
      }
    }
  }
  } catch (...) {
    // Health abort or any other Error unwinding the loop: leave the black
    // box behind before the error propagates to main's exit-1 path.
    if (recorder) recorder->dump(telemetry::FdrDumpReason::kHealthAbort);
    throw;
  }
  if (interrupted) {
    sim::Checkpoint::save(sim, ckpt_prefix, deck.checkpoint_keep);
    std::cerr << "checkpoint set written at step " << sim.step_index()
              << "; resume with --resume"
              << (args.has("checkpoint") ? "=" + ckpt_prefix : "") << "\n";
    if (trace) trace->close();  // keep the partial trace loadable
    if (recorder) {
      recorder->dump(telemetry::FdrDumpReason::kInterrupted);
      std::cerr << "flight record dumped: " << fdr_path(fdr, 0) << "\n";
    }
    return kExitInterrupted;
  }

  table.print(std::cout, "run history");
  // The whole-run telemetry summary; the push rate below is derived by the
  // same StepSampler formula the NDJSON stream and the benches use.
  const double loop_seconds = loop_timer.seconds();
  print_summary(std::cout, sim, loop_seconds, reducer);
  const telemetry::StepSample total =
      telemetry::StepSampler::derive_total(sim, loop_seconds);
  std::cout << "\nGauss residual: " << sim.gauss_error()
            << ", energy drift: " << 100 * history.worst_relative_drift()
            << "%, push rate: " << total.particles_per_sec / 1e6
            << " M particles/s (" << total.push_gflops
            << " Gflop/s s.p. in the advance)\n";

  if (args.has("history")) history.write_csv(args.get("history", ""));
  if (args.has("checkpoint") || deck.checkpoint_every > 0) {
    sim::Checkpoint::save(sim, ckpt_prefix, deck.checkpoint_keep);
    std::cout << "checkpoint set written: "
              << sim::Checkpoint::set_path(ckpt_prefix, sim.step_index(), 0)
              << "\n";
  }
  if (trace) {
    trace->close();
    std::cout << "trace written: " << args.get("trace", "")
              << " (open in ui.perfetto.dev or chrome://tracing)\n";
  }
  if (metrics) {
    std::cout << "metrics stream written: " << args.get("metrics", "") << " ("
              << metrics->records_written() << " records)\n";
    std::cout << "anomalies flagged: " << detector.total_flagged() << "\n";
  }
  if (recorder) {
    recorder->record(telemetry::FdrKind::kExit);
    recorder->dump(telemetry::FdrDumpReason::kExit);
    std::cout << "flight record dumped: " << fdr_path(fdr, 0) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Exceptions must not escape as std::terminate: a long campaign's exit
  // code is parsed by schedulers deciding whether to requeue.
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::cerr << "run_deck: error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "run_deck: unexpected error: " << e.what() << "\n";
    return 1;
  }
}
