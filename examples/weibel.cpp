// Weibel (filamentation) instability: a temperature-anisotropic plasma
// spontaneously generates magnetic field — a fully electromagnetic kinetic
// effect no fluid code captures, and a standard validation problem for
// relativistic EM PIC codes like VPIC.
//
//   ./weibel [--cells=16] [--ppc=64] [--hot=0.3] [--cold=0.03] [--steps=500]
#include <iostream>

#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

using namespace minivpic;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known({"cells", "ppc", "hot", "cold", "steps"});
  const int cells = int(args.get_int("cells", 16));
  const int ppc = int(args.get_int("ppc", 64));
  const double hot = args.get_double("hot", 0.3);
  const double cold = args.get_double("cold", 0.03);
  const int steps = int(args.get_int("steps", 500));

  sim::Simulation sim(sim::weibel_deck(cells, ppc, hot, cold));
  sim.initialize();
  std::cout << "Weibel: electrons hot along z (u_th = " << hot
            << "), cold in plane (u_th = " << cold << ")\n\n";

  Table table({"time", "B_plane energy", "B_z energy", "anisotropy"});
  double b0 = 0;
  for (int s = 0; s < steps; ++s) {
    sim.step();
    if (s % (steps / 12) == 0) {
      const auto rep = sim.energies();
      const double bp = rep.field.bx + rep.field.by;
      if (b0 == 0 && bp > 0) b0 = bp;
      // Temperature anisotropy T_z / T_plane from the momenta.
      double uz2 = 0, up2 = 0;
      for (const auto& p : sim.species(0).particles()) {
        uz2 += double(p.uz) * p.uz;
        up2 += double(p.ux) * p.ux + double(p.uy) * p.uy;
      }
      table.add_row({sim.time(), bp, rep.field.bz, 2.0 * uz2 / up2});
    }
  }
  table.print(std::cout, "magnetic filament growth");
  const auto rep = sim.energies();
  std::cout << "\nin-plane B energy grew "
            << (rep.field.bx + rep.field.by) / b0
            << "x while the anisotropy relaxed toward 1.\n";
  return 0;
}
