// Quickstart: build a deck, run a thermal plasma, watch the energy budget.
//
//   ./quickstart [--cells=8] [--ppc=16] [--steps=100] [--uth=0.2]
//
// Demonstrates the minimal minivpic workflow: describe the problem in a
// Deck, construct a Simulation, step it, and read the global diagnostics.
#include <iostream>

#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

using namespace minivpic;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known({"cells", "ppc", "steps", "uth"});
  const int cells = int(args.get_int("cells", 8));
  const int ppc = int(args.get_int("ppc", 16));
  const int steps = int(args.get_int("steps", 100));
  const double uth = args.get_double("uth", 0.2);

  // 1. Describe the problem: a warm, charge-neutral electron/ion plasma in
  //    a periodic box. Lengths are in electron skin depths (c/omega_pe),
  //    times in 1/omega_pe.
  sim::Deck deck;
  deck.grid.nx = deck.grid.ny = deck.grid.nz = cells;
  deck.grid.dx = deck.grid.dy = deck.grid.dz = 0.35;

  sim::SpeciesConfig electrons;
  electrons.name = "electron";
  electrons.q = -1.0;
  electrons.m = 1.0;
  electrons.load.ppc = ppc;
  electrons.load.uth = uth;
  deck.species.push_back(electrons);

  sim::SpeciesConfig ions = electrons;  // same positions -> exactly neutral
  ions.name = "ion";
  ions.q = +1.0;
  ions.m = 1836.0;
  ions.load.uth = uth / 43.0;  // ~equal temperatures
  deck.species.push_back(ions);

  // 2. Run it.
  sim::Simulation sim(deck);
  sim.initialize();
  std::cout << "minivpic quickstart: " << sim.global_particle_count()
            << " particles on " << cells << "^3 cells, dt = "
            << sim.local_grid().dt() << " (1/omega_pe)\n\n";

  Table table({"step", "time", "E_field", "E_kinetic", "E_total", "drift_%"});
  const double e0 = sim.energies().total;
  for (int s = 0; s <= steps; s += steps / 10) {
    if (s > 0) sim.run(steps / 10);
    const auto rep = sim.energies();
    table.add_row({(long long)sim.step_index(), sim.time(), rep.field.total(),
                   rep.kinetic_total, rep.total,
                   100.0 * (rep.total - e0) / e0});
  }
  table.print(std::cout, "energy budget");

  // 3. Check the Gauss-law residual — the charge-conserving deposition
  //    keeps it at single-precision round-off.
  std::cout << "\nGauss residual (rms div E - rho): " << sim.gauss_error()
            << "\n";
  std::cout << "particles pushed: " << sim.particle_stats().pushed << ", in "
            << sim.timings().push.total_seconds() << " s ("
            << double(sim.particle_stats().pushed) /
                   sim.timings().push.total_seconds() / 1e6
            << " M particles/s)\n";
  return 0;
}
