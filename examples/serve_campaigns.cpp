// Campaign service daemon: a long-lived simulation server. Clients submit
// jobs (deck text or overrides against this daemon's base deck) as
// line-delimited JSON over TCP; duplicate work is answered from the result
// ledger or coalesced onto the running job; a full queue yields typed
// rejections instead of hangs (docs/SERVICE.md).
//
//   ./serve_campaigns <deck> [--port=N]        # 0 (default) = ephemeral port
//            [--port-file=PATH]                # write the bound port here
//            [--jobs=N] [--ranks=N] [--pipelines=N] [--max-threads=N]
//            [--retries=N] [--backoff=s] [--timeout=s] [--max-resumes=N]
//            [--max-queued=N]                  # admission bound (default 64)
//            [--read-deadline=s]               # per-line slow-loris deadline
//            [--results=PATH]                  # ledger (default <deck>.results.ndjson)
//            [--queue-state=PATH]              # drain persistence (default
//                                              #   <results>.queue.ndjson)
//            [--scratch=DIR]                   # per-job checkpoint directory
//            [--metrics=PATH]                  # write final counters at exit
//            [--fdr=PATH]                      # service flight recorder dump
//            [--fail-label=L --fail-attempts=M]# fault drill: job with label L
//                                              # throws on its first M attempts
//            [--log-level=LVL]
//
// The deck may carry a [campaign] section (its steps become the default
// per-job step count) or be a plain deck. The ledger is always opened in
// resume mode: results survive restarts, which is what makes the cache
// useful across daemon lifetimes.
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish (or checkpoint)
// running jobs, answer every waiting client, persist the still-pending
// queue to --queue-state — the next start reloads it, so an accepted job
// is never lost. Exit 0 on a clean drain.
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <thread>

#include "service/server.hpp"
#include "telemetry/ndjson.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

using namespace minivpic;

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

int run(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known({"port", "port-file", "jobs", "ranks", "pipelines",
                    "max-threads", "retries", "backoff", "timeout",
                    "max-resumes", "max-queued", "read-deadline", "results",
                    "queue-state", "scratch", "metrics", "fdr", "fail-label",
                    "fail-attempts", "log-level"});
  if (args.has("log-level")) {
    const std::string lvl = args.get("log-level", "info");
    set_log_level(lvl == "debug" ? LogLevel::kDebug
                  : lvl == "warn" ? LogLevel::kWarn
                  : lvl == "error" ? LogLevel::kError
                                   : LogLevel::kInfo);
  }
  if (args.positional().empty()) {
    std::cerr << "usage: serve_campaigns <deck> [--port=N] [--port-file=PATH] "
                 "[--jobs=N]\n"
                 "       [--max-queued=N] [--results=PATH] "
                 "[--queue-state=PATH] [--metrics=PATH]\n";
    return 2;
  }
  const std::string deck_path = args.positional()[0];

  // A deck with a [campaign] section contributes its steps default; a plain
  // deck serves with the spec's built-in default (overridable per submit).
  sim::DeckSource source = sim::DeckSource::from_file(deck_path);
  campaign::CampaignSpec spec =
      source.campaign_lines().empty()
          ? campaign::CampaignSpec::from_deck_source(std::move(source))
          : campaign::CampaignSpec::from_deck_file(deck_path);

  campaign::ExecutorConfig exec;
  exec.workers = int(args.get_int("jobs", 2));
  exec.ranks_per_job = int(args.get_int("ranks", 1));
  exec.pipelines_per_job = int(args.get_int("pipelines", 1));
  exec.max_threads = int(args.get_int("max-threads", 0));
  exec.retry.max_attempts = int(args.get_int("retries", 3));
  exec.retry.backoff_seconds = args.get_double("backoff", 0.1);
  exec.retry.timeout_seconds = args.get_double("timeout", 0);
  exec.retry.max_resumes = int(args.get_int("max-resumes", 64));
  exec.scratch_dir = args.get("scratch", ".");
  telemetry::MetricsRegistry registry;
  exec.metrics = &registry;

  // Fault drill: the job whose label matches --fail-label throws on its
  // first step while attempt <= --fail-attempts — with --retries=1 this
  // produces a terminal failure the CI smoke asserts on.
  const std::string fail_label = args.get("fail-label", "");
  const int fail_attempts = int(args.get_int("fail-attempts", 1));
  if (!fail_label.empty()) {
    exec.per_step_hook = [fail_label, fail_attempts](sim::Simulation& sim,
                                                     const campaign::Job& job,
                                                     int attempt) {
      if (job.label == fail_label && attempt <= fail_attempts &&
          sim.step_index() <= 1) {
        MV_REQUIRE(false, "injected service fault (job " << job.label
                                                         << ", attempt "
                                                         << attempt << ")");
      }
    };
  }

  const std::string results_path =
      args.get("results", deck_path + ".results.ndjson");
  campaign::ResultStore store(results_path, /*resume=*/true);
  if (!store.completed_ids().empty()) {
    MV_LOG_INFO << "service: " << store.completed_ids().size()
                << " cached result(s) in " << results_path;
  }

  service::ServerConfig config;
  config.port = int(args.get_int("port", 0));
  config.max_queued = int(args.get_int("max-queued", 64));
  config.read_deadline_seconds = args.get_double("read-deadline", 30);
  config.queue_state_path =
      args.get("queue-state", results_path + ".queue.ndjson");
  std::unique_ptr<telemetry::Recorder> recorder;
  if (args.has("fdr")) {
    recorder = std::make_unique<telemetry::Recorder>(args.get("fdr", ""));
    config.recorder = recorder.get();
  }

  service::ServiceServer server(spec, store, exec, config);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  server.start();
  std::cout << "serve_campaigns: listening on 127.0.0.1:" << server.port()
            << " (ledger " << results_path << ")" << std::endl;
  if (args.has("port-file")) {
    std::ofstream pf(args.get("port-file", ""), std::ios::trunc);
    pf << server.port() << "\n";
    MV_REQUIRE(pf.good(), "cannot write port file");
  }

  while (!g_stop.load(std::memory_order_relaxed))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  server.drain();

  if (args.has("metrics")) {
    telemetry::NdjsonWriter metrics(args.get("metrics", ""));
    telemetry::Json j = telemetry::Json::object();
    j.set("type", telemetry::Json::string("service_metrics"));
    telemetry::Json vals = telemetry::Json::object();
    for (const telemetry::ScalarMetric& m : registry.scalars())
      vals.set(m.name, telemetry::Json::number(m.value));
    j.set("metrics", std::move(vals));
    metrics.write(j);
  }
  if (recorder != nullptr)
    recorder->dump(telemetry::FdrDumpReason::kInterrupted);

  std::cout << "serve_campaigns: drained (" << server.persisted_jobs()
            << " pending job(s) persisted); ledger has "
            << store.records_written() << " record(s)" << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::cerr << "serve_campaigns: error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "serve_campaigns: unexpected error: " << e.what() << "\n";
    return 1;
  }
}
