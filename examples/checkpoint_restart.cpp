// Checkpoint / restart: petascale campaigns live and die by restart
// fidelity. This example runs a plasma, snapshots it mid-flight, restarts
// from the file, and verifies the continued run tracks the original
// bit-for-bit.
//
//   ./checkpoint_restart [--steps=40] [--prefix=/tmp/minivpic_demo]
#include <iostream>

#include "sim/checkpoint.hpp"
#include "sim/simulation.hpp"
#include "util/cli.hpp"

using namespace minivpic;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known({"steps", "prefix"});
  const int steps = int(args.get_int("steps", 40));
  const std::string prefix = args.get("prefix", "/tmp/minivpic_demo_ckpt");

  const sim::Deck deck = sim::two_stream_deck(16, 16, 0.5);

  sim::Simulation original(deck);
  original.initialize();
  original.run(steps / 2);
  sim::Checkpoint::save(original, prefix);
  std::cout << "checkpoint written at step " << original.step_index()
            << " -> "
            << sim::Checkpoint::set_path(prefix, original.step_index(), 0)
            << "\n";
  original.run(steps - steps / 2);

  sim::Simulation restarted(deck);
  sim::Checkpoint::restore(restarted, prefix);
  std::cout << "restored at step " << restarted.step_index() << "\n";
  restarted.run(steps - steps / 2);

  const auto a = original.energies();
  const auto b = restarted.energies();
  std::cout << "original  total energy: " << a.total << "\n";
  std::cout << "restarted total energy: " << b.total << "\n";

  // Bit-exactness check over the field arrays.
  std::int64_t mismatches = 0;
  const auto& fa = original.fields();
  const auto& fb = restarted.fields();
  for (const auto c : grid::em_components()) {
    const grid::real* pa = grid::component_data(fa, c);
    const grid::real* pb = grid::component_data(fb, c);
    for (std::int64_t v = 0; v < fa.grid().num_voxels(); ++v) {
      if (pa[v] != pb[v]) ++mismatches;
    }
  }
  std::cout << (mismatches == 0 ? "restart is bit-exact.\n"
                                : "RESTART DIVERGED!\n");
  sim::Checkpoint::remove_all(prefix);
  return mismatches == 0 ? 0 : 1;
}
