// Laser-plasma interaction — the paper's science problem at example scale.
// A laser is launched into an underdense plasma slab; the reflectivity
// probe in the vacuum gap measures the backscattered light (stimulated
// Raman scattering + kinetic trapping effects), and the electron spectrum
// shows the hot tail the trapped particles develop.
//
//   ./lpi_reflectivity [--a0=0.08] [--n_over_nc=0.09] [--te=2.5]
//                      [--time=150] [--nx=360] [--ppc=128]
#include <cmath>
#include <iostream>

#include "fft/fft.hpp"
#include "sim/diagnostics.hpp"
#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace minivpic;

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known({"a0", "n_over_nc", "te", "time", "nx", "ppc"});

  sim::LpiParams p;
  p.a0 = args.get_double("a0", 0.08);
  p.n_over_nc = args.get_double("n_over_nc", 0.09);
  p.te_kev = args.get_double("te", 2.5);
  p.nx = int(args.get_int("nx", 360));
  p.ny = p.nz = 1;  // 1D3V slab, as in LPI parameter scans
  p.dx = 0.2;
  p.ppc = int(args.get_int("ppc", 128));
  p.vacuum_cells = 30;
  const double t_end = args.get_double("time", 150.0);

  std::cout << "LPI deck: a0 = " << p.a0 << " (I ~ "
            << units::intensity_from_a0(p.a0, 0.527) << " W/cm^2 at 527 nm), "
            << "n/n_c = " << p.n_over_nc << ", Te = " << p.te_kev
            << " keV, k*lambda_De = "
            << units::srs_k_lambda_de(p.n_over_nc, p.te_kev) << "\n\n";

  sim::Simulation sim(sim::lpi_deck(p));
  sim.initialize();
  sim::ReflectivityProbe probe(sim, 16);
  const double warmup = 40.0;

  Table series({"time", "reflectivity", "forward", "backward", "hot e- KE"});
  int next_report = 1;
  while (sim.time() < t_end) {
    sim.step();
    probe.sample(warmup);
    if (sim.time() >= next_report * t_end / 10) {
      ++next_report;
      series.add_row({sim.time(), probe.reflectivity(), probe.forward_power(),
                      probe.backward_power(),
                      sim.energies().species_kinetic[0]});
    }
  }
  series.print(std::cout, "reflectivity history");

  // Electron spectrum: trapping in the driven plasma wave pulls a hot tail
  // out of the 2.5 keV bulk.
  sim::ParticleSpectrum spec(1e-4, 1.0, 24, /*log_bins=*/true);
  spec.build(sim, *sim.find_species("electron"));
  Table spectrum({"KE (m_e c^2)", "weighted count"});
  for (std::size_t b = 0; b < spec.num_bins(); ++b) {
    if (spec.count(b) > 0) spectrum.add_row({spec.bin_center(b), spec.count(b)});
  }
  std::cout << "\n";
  spectrum.print(std::cout, "electron energy spectrum");
  std::cout << "\nfraction of electrons above 5x thermal: "
            << spec.fraction_above(5.0 * 1.5 * p.te_kev /
                                   units::kElectronRestKeV)
            << "\nfinal reflectivity: " << probe.reflectivity() << "\n";

  // Backscatter spectrum: SRS light appears near omega0 - omega_pe.
  if (probe.owns_plane() && probe.backward_series().size() > 64) {
    const auto power = fft::power_spectrum(probe.backward_series());
    const auto peak = fft::peak_bin(power, 1, power.size());
    const double w = fft::bin_omega(peak, 2 * (power.size() - 1),
                                    sim.local_grid().dt());
    std::cout << "backscatter spectral peak at omega = " << w
              << " omega_pe (laser at " << sim.deck().laser->omega0
              << ", SRS daughter expected near "
              << sim.deck().laser->omega0 - 1.0 << ")\n";
  }
  return 0;
}
