// Laser-plasma interaction — the paper's science problem at example scale,
// driven as a campaign (docs/CAMPAIGNS.md): `--a0` takes a comma list of
// laser amplitudes, each becoming one job of a CampaignSpec swept over the
// "laser.a0" axis and executed (optionally concurrently) by the
// CampaignExecutor. Every job measures backscatter reflectivity with a
// probe in the vacuum gap; a completion hook attaches the hot-electron
// fraction and the FFT backscatter spectral peak, and the aggregated
// reflectivity-vs-a0 curve is printed at the end.
//
//   ./lpi_reflectivity [--a0=0.05,0.10,0.15] [--n_over_nc=0.09] [--te=2.5]
//                      [--time=150] [--nx=360] [--ppc=128]
//                      [--jobs=N] [--results=PATH]
#include <cmath>
#include <iostream>
#include <sstream>

#include "campaign/executor.hpp"
#include "campaign/results.hpp"
#include "campaign/spec.hpp"
#include "fft/fft.hpp"
#include "sim/diagnostics.hpp"
#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

using namespace minivpic;

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  MV_REQUIRE(!out.empty(), "--a0 needs at least one value");
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  Args args(argc, argv);
  args.check_known({"a0", "n_over_nc", "te", "time", "nx", "ppc", "jobs",
                    "results"});

  sim::LpiParams base;
  base.n_over_nc = args.get_double("n_over_nc", 0.09);
  base.te_kev = args.get_double("te", 2.5);
  base.nx = int(args.get_int("nx", 360));
  base.ny = base.nz = 1;  // 1D3V slab, as in LPI parameter scans
  base.dx = 0.2;
  base.ppc = int(args.get_int("ppc", 128));
  base.vacuum_cells = 30;
  const double t_end = args.get_double("time", 150.0);
  const double hot_threshold =
      5.0 * 1.5 * base.te_kev / units::kElectronRestKeV;

  std::cout << "LPI campaign: n/n_c = " << base.n_over_nc << ", Te = "
            << base.te_kev << " keV, k*lambda_De = "
            << units::srs_k_lambda_de(base.n_over_nc, base.te_kev)
            << ", run to t = " << t_end << "/omega_pe\n\n";

  // Programmatic campaign: lpi_deck() carries density-profile lambdas no
  // text deck can express, so the factory maps the "laser.a0" override onto
  // LpiParams. The fingerprint stands in for the deck text in the job ids.
  std::ostringstream fp;
  fp << "lpi_reflectivity|n=" << base.n_over_nc << "|te=" << base.te_kev
     << "|nx=" << base.nx << "|ppc=" << base.ppc << "|t=" << t_end;
  campaign::CampaignSpec spec = campaign::CampaignSpec::with_factory(
      fp.str(), [base](const std::vector<sim::DeckOverride>& overrides) {
        sim::LpiParams p = base;
        for (const sim::DeckOverride& ov : overrides) {
          MV_REQUIRE(ov.section == "laser" && ov.key == "a0",
                     "lpi_reflectivity factory only sweeps laser.a0, got "
                         << ov.spec());
        }
        for (const sim::DeckOverride& ov : overrides)
          p.a0 = std::stod(ov.value);
        return sim::lpi_deck(p);
      });
  spec.add_axis("laser.a0", split_commas(args.get("a0", "0.08")));
  {
    const sim::Deck probe_deck = sim::lpi_deck(base);
    const double dt = probe_deck.grid.dt > 0 ? probe_deck.grid.dt
                                             : probe_deck.grid.courant_dt();
    spec.set_steps(std::max(1, int(std::ceil(t_end / dt))));
  }
  spec.set_probe_plane(16);
  spec.set_warmup(40.0);

  campaign::ExecutorConfig config;
  config.workers = int(args.get_int("jobs", 1));
  // Electron spectrum + backscatter FFT while the finished simulation is
  // still alive; `result` is non-null on rank 0 only.
  config.on_complete = [hot_threshold](sim::Simulation& sim,
                                       const campaign::Job& job,
                                       const sim::ReflectivityProbe* probe,
                                       campaign::JobResult* result) {
    (void)job;
    sim::ParticleSpectrum spec(1e-4, 1.0, 32, /*log_bins=*/true);
    spec.build(sim, *sim.find_species("electron"));
    if (result == nullptr) return;
    result->extra.emplace_back("hot_fraction",
                               spec.fraction_above(hot_threshold));
    // SRS daughter light appears near omega0 - omega_pe; only the rank
    // owning the probe point has the series (this example runs one rank
    // per job, which always owns it).
    if (probe != nullptr && probe->owns_plane() &&
        probe->backward_series().size() > 64) {
      const auto power = fft::power_spectrum(probe->backward_series());
      const auto peak = fft::peak_bin(power, 1, power.size());
      result->extra.emplace_back(
          "backscatter_omega",
          fft::bin_omega(peak, 2 * (power.size() - 1),
                         sim.local_grid().dt()));
    }
  };

  const std::string results_path =
      args.get("results", "lpi_reflectivity.results.ndjson");
  campaign::ResultStore store(results_path, /*resume=*/false);
  campaign::CampaignExecutor executor(spec, config);
  const campaign::CampaignSummary summary = executor.run(store);
  MV_REQUIRE(summary.all_done(), summary.failed << " job(s) failed — see "
                                                << results_path);

  const std::vector<campaign::JobResult> results =
      campaign::ResultStore::read_all(results_path);
  const auto extra_at = [&results](double x, const std::string& metric) {
    for (const campaign::CurvePoint& p :
         campaign::aggregate_curve(results, "laser.a0", metric)) {
      if (p.x == x) return p.mean;
    }
    return 0.0;
  };
  Table table({"a0", "I (W/cm^2)", "reflectivity", "hot e- fraction",
               "backscatter omega/omega_pe"});
  for (const campaign::CurvePoint& pt :
       campaign::aggregate_curve(results, "laser.a0", "reflectivity")) {
    table.add_row({pt.x, units::intensity_from_a0(pt.x, 0.527), pt.mean,
                   extra_at(pt.x, "hot_fraction"),
                   extra_at(pt.x, "backscatter_omega")});
  }
  table.print(std::cout, "reflectivity vs laser amplitude (" +
                             std::to_string(summary.done) + " job(s), " +
                             std::to_string(summary.workers) + " worker(s))");
  std::cout << "\nexpected shape: reflectivity and hot-electron fraction "
               "rise steeply with a0 above the SRS/trapping threshold.\n"
            << "results ledger: " << results_path << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "lpi_reflectivity: error: " << e.what() << "\n";
  return 1;
}
