// T2 — whole-step cost breakdown: where the time of a full PIC step goes
// (particle advance, sort, accumulator reduction, source reduction, field
// solve, migration, cleaning) for an LPI-style deck. The paper's claim that
// the inner loop dominates (0.488 Pflop/s inner vs 0.374 Pflop/s whole-code
// ~ 77%) should reproduce as a push fraction around 70-85%.
//
// Also sweeps the intra-rank pipeline count and the advance kernel
// (docs/KERNELS.md) of the particle advance:
//   --pipelines=N   run the breakdown at exactly N pipelines
//                   (default: sweep 1, 2, 4, ..., hardware threads)
//   --kernel=NAME   run at exactly one kernel: scalar|sse|avx2|avx512|auto
//                   (default: sweep scalar plus the widest available)
//   --steps=N       timed steps per configuration (default 100)
//   --sort-every=N  override the deck's bin-sort cadence (0 = never sort;
//                   default: the LPI deck's sort_period of 20) — the "sort"
//                   row and the push rate move together (docs/SORTING.md)
//   --json=PATH     machine-readable results: one record per swept
//                   (pipelines, kernel) point carrying the full telemetry
//                   metric catalogue (see docs/OBSERVABILITY.md) plus the
//                   sort_every the point ran at
//   --flight-recorder  attach an armed flight recorder (telemetry/
//                   recorder.hpp) to the timed run — the always-on
//                   overhead measurement quoted in docs/OBSERVABILITY.md
//                   compares this against a plain run
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "perf/costs.hpp"
#include "sim/simulation.hpp"
#include "telemetry/json.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/sampler.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/pipeline.hpp"
#include "util/timer.hpp"

using namespace minivpic;

namespace {

sim::Deck breakdown_deck(int pipelines, particles::Kernel kernel,
                         int sort_every) {
  sim::LpiParams p;
  p.nx = 192;
  p.ny = p.nz = 2;
  p.dx = 0.25;
  p.ppc = 96;
  p.a0 = 0.1;
  p.vacuum_cells = 24;
  sim::Deck deck = sim::lpi_deck(p);
  deck.pipelines = pipelines;
  deck.kernel = kernel;
  if (sort_every >= 0) deck.sort_period = sort_every;
  return deck;
}

struct SweepPoint {
  int pipelines = 1;
  std::string kernel = "scalar";
  int sort_every = 20;
  double push_seconds = 0;
  double sort_seconds = 0;
  double reduce_seconds = 0;
  double step_seconds = 0;
  double push_rate = 0;  ///< particles/s inside the advance
  telemetry::StepSample sample;  ///< full derived metric set for --json
};

SweepPoint run_breakdown(int pipelines, particles::Kernel kernel,
                         int sort_every, int steps, bool print_table,
                         bool flight_recorder) {
  const int warmup = 10;
  const sim::Deck deck = breakdown_deck(pipelines, kernel, sort_every);
  {
    sim::Simulation warm(deck);
    warm.initialize();
    warm.run(warmup);  // let caches and particle lists settle
  }
  // fresh timers, same deck
  sim::Simulation timed(deck);
  // The overhead-measurement mode: an armed recorder on the timed run, the
  // dump discarded (the cost under test is record(), not dump()).
  std::unique_ptr<telemetry::Recorder> recorder;
  if (flight_recorder) {
    recorder = std::make_unique<telemetry::Recorder>("bench_breakdown.fdr");
    timed.set_recorder(recorder.get());
  }
  timed.initialize();
  const Timer wall;
  timed.run(steps);
  const double wall_seconds = wall.seconds();

  const auto& t = timed.timings();
  const double total = t.total_seconds();
  if (print_table) {
    Table table({"phase", "seconds", "% of step", "notes"});
    auto row = [&](const char* name, const Stopwatch& sw, const char* note) {
      table.add_row({std::string(name), sw.total_seconds(),
                     100.0 * sw.total_seconds() / total, std::string(note)});
    };
    const std::string sort_note =
        deck.sort_period > 0
            ? "in-place bin sort, every " + std::to_string(deck.sort_period) +
                  " steps"
            : "bin sort disabled (sort_every = 0)";
    row("particle advance", t.push, "the paper's 0.488 Pflop/s inner loop");
    row("interpolator load", t.interpolate, "per-cell field coefficients");
    row("migration", t.migrate, "inter-rank exchange (1 rank: bookkeeping)");
    row("sort", t.sort, sort_note.c_str());
    row("pipeline reduce", t.reduce, "fold per-pipeline accumulator blocks");
    row("source reduction", t.sources, "accumulator unload + halo fold");
    row("field solve", t.field, "B/E/B Yee update + ghost refresh");
    row("divergence clean", t.clean, "Marder passes, every 50 steps");
    table.add_row({std::string("TOTAL"), total, 100.0, std::string("")});
    table.print(std::cout, "T2: step cost breakdown (LPI deck, " +
                               std::to_string(steps) + " steps, " +
                               std::to_string(timed.pipelines()) +
                               " pipeline(s), " +
                               particles::kernel_name(timed.kernel()) +
                               " kernel)");

    // Rates come from the shared StepSampler derivations so this table, the
    // NDJSON stream, and run_deck agree by construction.
    const std::int64_t pushed = timed.particle_stats().pushed;
    std::cout << "\npush rate: "
              << telemetry::StepSampler::particles_per_second(
                     pushed, t.push.total_seconds()) /
                     1e6
              << " M particles/s; sustained (whole step): "
              << telemetry::StepSampler::push_gflops(pushed, total)
              << " Gflop/s s.p. on this host\n";
    std::cout << "inner-loop share of step: "
              << 100.0 * t.push.total_seconds() / total
              << "%  (paper: 0.374/0.488 = 77%)\n";
  }

  SweepPoint pt;
  pt.pipelines = timed.pipelines();
  pt.kernel = particles::kernel_name(timed.kernel());
  pt.sort_every = deck.sort_period;
  pt.push_seconds = t.push.total_seconds();
  pt.sort_seconds = t.sort.total_seconds();
  pt.reduce_seconds = t.reduce.total_seconds();
  pt.step_seconds = total;
  pt.push_rate = telemetry::StepSampler::particles_per_second(
      timed.particle_stats().pushed, t.push.total_seconds());
  pt.sample = telemetry::StepSampler::derive_total(timed, wall_seconds);
  return pt;
}

/// Machine-readable results: one record per swept pipeline count with the
/// full metric catalogue, plus enough provenance (steps, deck shape) to
/// compare runs.
void write_json(const std::string& path, int steps,
                const std::vector<SweepPoint>& sweep) {
  telemetry::Json points = telemetry::Json::array();
  for (const SweepPoint& pt : sweep) {
    telemetry::Json metrics = telemetry::Json::object();
    for (const telemetry::ScalarMetric& m : pt.sample.scalars()) {
      telemetry::Json entry = telemetry::Json::object();
      entry.set("value", telemetry::Json::number(m.value));
      entry.set("unit", telemetry::Json::string(m.unit));
      metrics.set(m.name, std::move(entry));
    }
    telemetry::Json rec = telemetry::Json::object();
    rec.set("pipelines", telemetry::Json::number(std::int64_t{pt.pipelines}));
    rec.set("kernel", telemetry::Json::string(pt.kernel));
    rec.set("sort_every", telemetry::Json::number(std::int64_t{pt.sort_every}));
    rec.set("metrics", std::move(metrics));
    points.push_back(std::move(rec));
  }
  telemetry::Json doc = telemetry::Json::object();
  doc.set("bench", telemetry::Json::string("bench_step_breakdown"));
  doc.set("steps", telemetry::Json::number(std::int64_t{steps}));
  doc.set("points", std::move(points));
  std::ofstream os(path, std::ios::trunc);
  MV_REQUIRE(os.good(), "cannot open --json file: " << path);
  os << doc.dump() << "\n";
  std::cout << "\nJSON results written: " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known(
      {"pipelines", "kernel", "steps", "sort-every", "json", "flight-recorder"});
  const bool flight_recorder = args.get_bool("flight-recorder", false);
  const int steps = int(args.get_int("steps", 100));
  // -1 = keep the deck's own cadence; 0 = never sort.
  const int sort_every = int(args.get_int("sort-every", -1));
  MV_REQUIRE(sort_every >= -1, "--sort-every must be >= 0");

  std::vector<int> counts;
  if (args.has("pipelines")) {
    counts = {Pipeline::resolve(int(args.get_int("pipelines", 0)))};
  } else {
    const int hw = Pipeline::hardware_pipelines();
    for (int n = 1; n < hw; n *= 2) counts.push_back(n);
    counts.push_back(hw);
  }

  // Kernel axis: one kernel when pinned, else the scalar baseline plus the
  // widest this host runs (when they differ).
  std::vector<particles::Kernel> kernels;
  if (args.has("kernel")) {
    kernels = {particles::resolve_kernel(
        particles::parse_kernel(args.get("kernel", "auto")))};
  } else {
    kernels = {particles::Kernel::kScalar};
    const particles::Kernel widest =
        particles::resolve_kernel(particles::Kernel::kAuto);
    if (widest != particles::Kernel::kScalar) kernels.push_back(widest);
  }

  // Detailed breakdown at the first requested point; sweep summary after.
  std::vector<SweepPoint> sweep;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    for (std::size_t k = 0; k < kernels.size(); ++k) {
      sweep.push_back(run_breakdown(counts[i], kernels[k], sort_every, steps,
                                    i == 0 && k == 0, flight_recorder));
    }
  }

  if (sweep.size() > 1) {
    std::cout << "\n";
    Table table({"pipelines", "kernel", "push s", "sort s", "reduce s",
                 "step s", "Mpart/s", "push speedup"});
    for (const SweepPoint& pt : sweep) {
      table.add_row({(long long)pt.pipelines, pt.kernel, pt.push_seconds,
                     pt.sort_seconds, pt.reduce_seconds, pt.step_seconds,
                     pt.push_rate / 1e6,
                     sweep[0].push_seconds / pt.push_seconds});
    }
    table.print(std::cout,
                "sweep: particle advance vs intra-rank pipelines x kernel "
                "(speedup vs the first row)");
  }
  if (args.has("json")) write_json(args.get("json", ""), steps, sweep);
  return 0;
}
