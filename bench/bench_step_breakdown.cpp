// T2 — whole-step cost breakdown: where the time of a full PIC step goes
// (particle advance, sort, source reduction, field solve, migration,
// cleaning) for an LPI-style deck. The paper's claim that the inner loop
// dominates (0.488 Pflop/s inner vs 0.374 Pflop/s whole-code ~ 77%) should
// reproduce as a push fraction around 70-85%.
#include <iostream>

#include "perf/costs.hpp"
#include "sim/simulation.hpp"
#include "util/csv.hpp"

using namespace minivpic;

int main() {
  sim::LpiParams p;
  p.nx = 192;
  p.ny = p.nz = 2;
  p.dx = 0.25;
  p.ppc = 96;
  p.a0 = 0.1;
  p.vacuum_cells = 24;
  sim::Simulation sim(sim::lpi_deck(p));
  sim.initialize();

  const int warmup = 10, steps = 100;
  sim.run(warmup);  // let caches and particle lists settle
  sim::Simulation timed(sim::lpi_deck(p));  // fresh timers, same deck
  timed.initialize();
  timed.run(steps);

  const auto& t = timed.timings();
  const double total = t.total_seconds();
  Table table({"phase", "seconds", "% of step", "notes"});
  auto row = [&](const char* name, const Stopwatch& sw, const char* note) {
    table.add_row({std::string(name), sw.total_seconds(),
                   100.0 * sw.total_seconds() / total, std::string(note)});
  };
  row("particle advance", t.push, "the paper's 0.488 Pflop/s inner loop");
  row("interpolator load", t.interpolate, "per-cell field coefficients");
  row("migration", t.migrate, "inter-rank exchange (1 rank: bookkeeping)");
  row("sort", t.sort, "counting sort, every 20 steps");
  row("source reduction", t.sources, "accumulator unload + halo fold");
  row("field solve", t.field, "B/E/B Yee update + ghost refresh");
  row("divergence clean", t.clean, "Marder passes, every 50 steps");
  table.add_row({std::string("TOTAL"), total, 100.0, std::string("")});
  table.print(std::cout, "T2: step cost breakdown (LPI deck, 100 steps)");

  const double pushed = double(timed.particle_stats().pushed);
  std::cout << "\npush rate: " << pushed / t.push.total_seconds() / 1e6
            << " M particles/s; sustained (whole step): "
            << pushed * perf::KernelCosts::push_flops_per_particle() / total /
                   1e9
            << " Gflop/s s.p. on this host core\n";
  std::cout << "inner-loop share of step: "
            << 100.0 * t.push.total_seconds() / total
            << "%  (paper: 0.374/0.488 = 77%)\n";
  return 0;
}
