// F4 — the paper's science result: laser reflectivity as a function of
// laser intensity under hohlraum-like conditions (n/n_c = 0.1, Te = 2 keV,
// k lambda_De ~ 0.3 — the trapping-dominated SRS regime). The reproduced
// *shape*: negligible backscatter at low intensity, onset and steep rise
// with intensity as stimulated Raman scattering beats Landau damping with
// help from particle trapping, with the backscatter spectrum peaking near
// omega0 - omega_pe.
#include <cmath>
#include <iostream>

#include "fft/fft.hpp"
#include "sim/diagnostics.hpp"
#include "sim/simulation.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace minivpic;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const double t_end = quick ? 120.0 : 400.0;
  const int ppc = quick ? 32 : 128;

  std::cout << "LPI parameter study: n/n_c = 0.1, Te = 2 keV, lambda = 527 "
               "nm, k*lambda_De = "
            << units::srs_k_lambda_de(0.1, 2.0) << ", run to t = " << t_end
            << "/omega_pe\n\n";

  Table table({"a0", "I (W/cm^2)", "reflectivity", "hot e- fraction",
               "backscatter omega/omega_pe"});
  for (double a0 : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    sim::LpiParams p;
    p.a0 = a0;
    p.n_over_nc = 0.1;
    p.te_kev = 2.0;
    p.nx = 480;
    p.ny = p.nz = 1;  // 1D3V slab, as in LPI parameter scans
    p.dx = 0.2;
    p.ppc = ppc;
    p.vacuum_cells = 30;
    sim::Simulation sim(sim::lpi_deck(p));
    sim.initialize();
    sim::ReflectivityProbe probe(sim, 16);
    while (sim.time() < t_end) {
      sim.step();
      probe.sample(/*warmup=*/40.0);
    }
    sim::ParticleSpectrum spec(1e-4, 1.0, 32, /*log=*/true);
    spec.build(sim, *sim.find_species("electron"));
    const double hot_threshold =
        5.0 * 1.5 * p.te_kev / units::kElectronRestKeV;
    double peak_w = 0;
    if (probe.owns_plane() && probe.backward_series().size() > 64) {
      const auto power = fft::power_spectrum(probe.backward_series());
      const auto peak = fft::peak_bin(power, 1, power.size());
      peak_w =
          fft::bin_omega(peak, 2 * (power.size() - 1), sim.local_grid().dt());
    }
    table.add_row({a0, units::intensity_from_a0(a0, 0.527),
                   probe.reflectivity(), spec.fraction_above(hot_threshold),
                   peak_w});
  }
  table.print(std::cout,
              "F4: reflectivity vs laser intensity (SRS daughter expected "
              "near omega = " +
                  std::to_string(units::omega0_over_omegape(0.1) - 1.0) + ")");
  std::cout << "\nexpected shape: reflectivity and hot-electron fraction "
               "rise steeply with intensity above the SRS/trapping "
               "threshold; spectral peak moves onto omega0 - omega_pe.\n";
  return 0;
}
