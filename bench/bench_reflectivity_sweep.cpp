// F4 — the paper's science result: laser reflectivity as a function of
// laser intensity under hohlraum-like conditions (n/n_c = 0.1, Te = 2 keV,
// k lambda_De ~ 0.3 — the trapping-dominated SRS regime). The reproduced
// *shape*: negligible backscatter at low intensity, onset and steep rise
// with intensity as stimulated Raman scattering beats Landau damping with
// help from particle trapping, with the backscatter spectrum peaking near
// omega0 - omega_pe.
//
//   ./bench_reflectivity_sweep [--quick]        # classic serial sweep
//   ./bench_reflectivity_sweep --campaign [--workers=N] [--quick]
//
// --campaign runs the same sweep twice through the CampaignExecutor at an
// equal thread budget of N (default 4): serial (1 worker x N pipelines per
// job) vs concurrent (N workers x 1 pipeline per job), and reports
// jobs/hour for both plus the concurrency speedup. Sweep jobs are
// embarrassingly parallel, while intra-job pipelines lose efficiency to
// the field solve and halo phases — so the concurrent layout should win
// (>= 1.5x on hardware with >= N real cores).
#include <cmath>
#include <iostream>

#include "campaign/executor.hpp"
#include "campaign/results.hpp"
#include "campaign/spec.hpp"
#include "fft/fft.hpp"
#include "sim/diagnostics.hpp"
#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace minivpic;

namespace {

sim::LpiParams study_point(int ppc) {
  sim::LpiParams p;
  p.n_over_nc = 0.1;
  p.te_kev = 2.0;
  p.nx = 480;
  p.ny = p.nz = 1;  // 1D3V slab, as in LPI parameter scans
  p.dx = 0.2;
  p.ppc = ppc;
  p.vacuum_cells = 30;
  return p;
}

/// Classic mode: one simulation per a0 on the calling thread, full science
/// table (reflectivity, hot-electron fraction, backscatter spectrum).
int run_serial_sweep(bool quick) {
  const double t_end = quick ? 120.0 : 400.0;
  const int ppc = quick ? 32 : 128;

  std::cout << "LPI parameter study: n/n_c = 0.1, Te = 2 keV, lambda = 527 "
               "nm, k*lambda_De = "
            << units::srs_k_lambda_de(0.1, 2.0) << ", run to t = " << t_end
            << "/omega_pe\n\n";

  Table table({"a0", "I (W/cm^2)", "reflectivity", "hot e- fraction",
               "backscatter omega/omega_pe"});
  for (double a0 : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    sim::LpiParams p = study_point(ppc);
    p.a0 = a0;
    sim::Simulation sim(sim::lpi_deck(p));
    sim.initialize();
    sim::ReflectivityProbe probe(sim, 16);
    while (sim.time() < t_end) {
      sim.step();
      probe.sample(/*warmup=*/40.0);
    }
    sim::ParticleSpectrum spec(1e-4, 1.0, 32, /*log=*/true);
    spec.build(sim, *sim.find_species("electron"));
    const double hot_threshold =
        5.0 * 1.5 * p.te_kev / units::kElectronRestKeV;
    double peak_w = 0;
    if (probe.owns_plane() && probe.backward_series().size() > 64) {
      const auto power = fft::power_spectrum(probe.backward_series());
      const auto peak = fft::peak_bin(power, 1, power.size());
      peak_w =
          fft::bin_omega(peak, 2 * (power.size() - 1), sim.local_grid().dt());
    }
    table.add_row({a0, units::intensity_from_a0(a0, 0.527),
                   probe.reflectivity(), spec.fraction_above(hot_threshold),
                   peak_w});
  }
  table.print(std::cout,
              "F4: reflectivity vs laser intensity (SRS daughter expected "
              "near omega = " +
                  std::to_string(units::omega0_over_omegape(0.1) - 1.0) + ")");
  std::cout << "\nexpected shape: reflectivity and hot-electron fraction "
               "rise steeply with intensity above the SRS/trapping "
               "threshold; spectral peak moves onto omega0 - omega_pe.\n";
  return 0;
}

/// Campaign mode: the same sweep through the CampaignExecutor, serial vs
/// concurrent at an equal thread budget.
int run_campaign_comparison(bool quick, int budget) {
  const double t_end = quick ? 30.0 : 120.0;
  const int ppc = quick ? 16 : 32;
  const sim::LpiParams base = study_point(ppc);

  campaign::CampaignSpec spec = campaign::CampaignSpec::with_factory(
      "bench_reflectivity_sweep",
      [base](const std::vector<sim::DeckOverride>& overrides) {
        sim::LpiParams p = base;
        for (const sim::DeckOverride& ov : overrides)
          p.a0 = std::stod(ov.value);
        return sim::lpi_deck(p);
      });
  spec.add_axis("laser.a0", {"0.05", "0.10", "0.15", "0.20"});
  const sim::Deck probe_deck = sim::lpi_deck(base);
  const double dt = probe_deck.grid.dt > 0 ? probe_deck.grid.dt
                                           : probe_deck.grid.courant_dt();
  spec.set_steps(std::max(1, int(std::ceil(t_end / dt))));
  spec.set_probe_plane(16);
  spec.set_warmup(40.0);

  std::cout << "campaign throughput: 4 jobs x " << spec.steps()
            << " steps, thread budget " << budget << "\n\n";

  const auto run_layout = [&](int workers, int pipelines,
                              const std::string& tag) {
    campaign::ExecutorConfig config;
    config.workers = workers;
    config.pipelines_per_job = pipelines;
    config.max_threads = budget;
    campaign::ResultStore store("bench_campaign_" + tag + ".ndjson",
                                /*resume=*/false);
    campaign::CampaignExecutor executor(spec, config);
    return executor.run(store);
  };

  const campaign::CampaignSummary serial = run_layout(1, budget, "serial");
  const campaign::CampaignSummary conc = run_layout(budget, 1, "concurrent");

  Table table({"layout", "workers", "pipelines/job", "done", "wall s",
               "jobs/hour"});
  table.add_row({std::string("serial"), 1LL, (long long)budget,
                 (long long)serial.done, serial.wall_seconds,
                 serial.jobs_per_hour});
  table.add_row({std::string("concurrent"), (long long)conc.workers, 1LL,
                 (long long)conc.done, conc.wall_seconds,
                 conc.jobs_per_hour});
  table.print(std::cout, "campaign layouts at a thread budget of " +
                             std::to_string(budget));
  const double speedup = serial.jobs_per_hour > 0
                             ? conc.jobs_per_hour / serial.jobs_per_hour
                             : 0.0;
  std::cout << "\nconcurrent-campaign speedup: " << speedup
            << "x jobs/hour over serial at the same thread budget\n";
  if (serial.failed + conc.failed > 0) {
    std::cerr << "bench_reflectivity_sweep: campaign jobs failed\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known({"quick", "campaign", "workers"});
  const bool quick = args.get_bool("quick", false);
  if (args.get_bool("campaign", false)) {
    return run_campaign_comparison(quick, int(args.get_int("workers", 4)));
  }
  return run_serial_sweep(quick);
}
