// F6 — the abstract's data-motion comparison: PIC "typically requires more
// data motion per computation" than the kernels usually used to demonstrate
// supercomputer performance (dense matrix, MD N-body, Monte Carlo). Each
// kernel runs on this host and reports measured Gflop/s alongside its
// analytic arithmetic intensity (flops per byte of algorithmic traffic).
#include <iostream>

#include "perf/costs.hpp"
#include "perf/datamotion.hpp"
#include "util/csv.hpp"

using namespace minivpic;
using namespace minivpic::perf;

int main() {
  std::vector<KernelReport> reports;
  reports.push_back(run_sgemm(384));
  reports.push_back(run_nbody(4096));
  reports.push_back(run_montecarlo(8'000'000));
  reports.push_back(run_pic_push(1 << 21, 64));

  Table table({"kernel", "measured Gflop/s", "flops/byte", "bytes/flop",
               "seconds"});
  for (const auto& r : reports) {
    const double fpb = r.flops_per_byte();
    table.add_row({r.name, r.gflops(), fpb > 1e5 ? -1.0 : fpb,
                   fpb > 1e5 ? 0.0 : 1.0 / fpb, r.seconds});
  }
  table.print(std::cout,
              "F6: data motion per computation (flops/byte = -1 means "
              "effectively compute-only)");

  const double pic_fpb =
      KernelCosts::push_flops_per_particle() /
      KernelCosts::push_bytes_per_particle(64);
  const double gemm_fpb =
      KernelCosts::sgemm_flops(384) / KernelCosts::sgemm_bytes(384);
  const double nbody_fpb =
      KernelCosts::nbody_flops(4096) / KernelCosts::nbody_bytes(4096);
  std::cout << "\nPIC moves " << gemm_fpb / pic_fpb
            << "x more bytes per flop than blocked SGEMM and "
            << nbody_fpb / pic_fpb
            << "x more than all-pairs N-body — sustaining 0.374 Pflop/s in "
               "a PIC code therefore exercises the memory system, not just "
               "the FPUs.\n";
  return 0;
}
