// F5 — particle trapping: electron energy spectra below and above the SRS
// threshold. The driven electron plasma wave traps electrons near its phase
// velocity and accelerates them into a hot tail — the kinetic physics
// ("particle trapping ... within a laser-driven hohlraum") the paper's
// trillion-particle fidelity was bought for.
#include <iostream>

#include "sim/diagnostics.hpp"
#include "sim/simulation.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace minivpic;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const double t_end = quick ? 120.0 : 400.0;
  const int ppc = quick ? 32 : 128;

  const double below = 0.05, above = 0.25;
  std::vector<sim::ParticleSpectrum> spectra;
  std::vector<double> hot_fraction, mean_ke;
  for (double a0 : {below, above}) {
    sim::LpiParams p;
    p.a0 = a0;
    p.n_over_nc = 0.1;
    p.te_kev = 2.0;
    p.nx = 480;
    p.ny = p.nz = 1;
    p.dx = 0.2;
    p.ppc = ppc;
    p.vacuum_cells = 30;
    sim::Simulation sim(sim::lpi_deck(p));
    sim.initialize();
    while (sim.time() < t_end) sim.step();
    sim::ParticleSpectrum spec(1e-4, 1.0, 20, /*log=*/true);
    spec.build(sim, *sim.find_species("electron"));
    spectra.push_back(spec);
    hot_fraction.push_back(
        spec.fraction_above(5.0 * 1.5 * p.te_kev / units::kElectronRestKeV));
    const auto rep = sim.energies();
    mean_ke.push_back(rep.species_kinetic[0]);
  }

  Table table({"KE (m_e c^2)", "count @ a0=0.05", "count @ a0=0.25",
               "tail ratio"});
  for (std::size_t b = 0; b < spectra[0].num_bins(); ++b) {
    const double lo = spectra[0].count(b);
    const double hi = spectra[1].count(b);
    if (lo == 0 && hi == 0) continue;
    table.add_row({spectra[0].bin_center(b), lo, hi,
                   lo > 0 ? hi / lo : 1e9});
  }
  table.print(std::cout,
              "F5: electron spectra below vs above the SRS threshold");
  std::cout << "\nhot-electron fraction (>5x thermal): " << hot_fraction[0]
            << " below threshold vs " << hot_fraction[1]
            << " above (x" << hot_fraction[1] / std::max(hot_fraction[0], 1e-12)
            << ")\n";
  std::cout << "electron kinetic energy: " << mean_ke[0] << " -> "
            << mean_ke[1]
            << " (laser heating through the trapped population)\n";
  std::cout << "expected shape: identical thermal bulk; the high-intensity "
               "run grows a multi-decade suprathermal tail.\n";
  return 0;
}
