// T1 — per-node particle-advance performance table: particles advanced per
// second, sustained Gflop/s (s.p.) using the counted flops/particle, for a
// sorted uniform plasma at several grid sizes and particle densities.
// Google-benchmark microkernel timing of VPIC's inner loop plus its
// supporting kernels (interpolator load, accumulator unload + pipeline
// reduction, sort).
//
// The particle advance is swept over intra-rank pipeline counts (the
// paper's per-node parallel layer): by default {1, 2, 4, ..., hardware},
// and over advance kernels (docs/KERNELS.md): by default every kernel the
// host can run (scalar + each compiled-in SIMD width the CPU supports).
//   --pipelines=N   pin the advance to exactly N pipelines (1 = the serial
//                   reference path; google-benchmark flags still apply)
//   --kernel=NAME   pin the advance to one kernel: scalar|sse|avx2|avx512|
//                   auto (auto = widest available)
//   --json=PATH     machine-readable results; shorthand for google-benchmark's
//                   --benchmark_out=PATH --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "particles/loader.hpp"
#include "particles/push.hpp"
#include "perf/costs.hpp"
#include "util/pipeline.hpp"
#include "util/rng.hpp"

using namespace minivpic;
using namespace minivpic::particles;

namespace {

struct PushFixture {
  PushFixture(int cells, int ppc, int pipelines = 1,
              Kernel kernel = Kernel::kScalar)
      : grid(make_grid(cells)),
        fields(grid),
        interp(grid),
        acc(grid, pipelines),
        pusher(grid, periodic_particles()),
        pipeline(pipelines),
        sp("e", -1.0, 1.0) {
    pusher.set_kernel(kernel);
    for (int k = 0; k <= cells + 1; ++k)
      for (int j = 0; j <= cells + 1; ++j)
        for (int i = 0; i <= cells + 1; ++i) {
          fields.ey(i, j, k) = 0.01f * float(std::sin(0.3 * i));
          fields.cbz(i, j, k) = 0.02f * float(std::cos(0.2 * j));
        }
    interp.load(fields);
    LoadConfig cfg;
    cfg.ppc = ppc;
    cfg.uth = 0.05;
    load_uniform(sp, grid, cfg);
    sp.sort(grid);
  }

  static grid::GlobalGrid make_grid(int cells) {
    grid::GlobalGrid g;
    g.nx = g.ny = g.nz = cells;
    g.dx = g.dy = g.dz = 0.5;
    return g;
  }

  grid::LocalGrid grid;
  grid::FieldArray fields;
  InterpolatorArray interp;
  AccumulatorArray acc;
  Pusher pusher;
  Pipeline pipeline;
  Species sp;
};

void BM_ParticleAdvance(benchmark::State& state, int cells, int ppc,
                        int pipelines, Kernel kernel) {
  PushFixture fx(cells, ppc, pipelines, kernel);
  std::int64_t pushed = 0;
  for (auto _ : state) {
    fx.acc.clear();
    const auto res = fx.pusher.advance(fx.sp, fx.interp, fx.acc, &fx.pipeline);
    fx.acc.reduce();
    pushed += res.pushed;
    benchmark::DoNotOptimize(res.pushed);
  }
  state.counters["particles/s"] =
      benchmark::Counter(double(pushed), benchmark::Counter::kIsRate);
  state.counters["Gflop/s(sp)"] = benchmark::Counter(
      double(pushed) * perf::KernelCosts::push_flops_per_particle() / 1e9,
      benchmark::Counter::kIsRate);
  state.counters["flops/particle"] =
      perf::KernelCosts::push_flops_per_particle();
  state.counters["pipelines"] = double(pipelines);
  state.counters["lane_width"] =
      double(perf::KernelCosts::push_lane_width(fx.pusher.kernel()));
}

void BM_InterpolatorLoad(benchmark::State& state) {
  PushFixture fx(int(state.range(0)), 1);
  for (auto _ : state) {
    fx.interp.load(fx.fields);
    benchmark::DoNotOptimize(fx.interp.data());
  }
  state.counters["voxels/s"] = benchmark::Counter(
      double(state.iterations()) * double(fx.grid.num_cells()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpolatorLoad)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_AccumulatorUnload(benchmark::State& state) {
  PushFixture fx(int(state.range(0)), 1);
  for (auto _ : state) {
    fx.acc.unload(fx.fields);
    benchmark::DoNotOptimize(fx.fields.jfx_span().data());
  }
  state.counters["voxels/s"] = benchmark::Counter(
      double(state.iterations()) * double(fx.grid.num_cells()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AccumulatorUnload)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_AccumulatorReduce(benchmark::State& state) {
  // The serial tax of the pipeline layer: fold N private blocks into base.
  PushFixture fx(int(state.range(0)), 1, int(state.range(1)));
  for (auto _ : state) {
    fx.acc.reduce();
    benchmark::DoNotOptimize(fx.acc.data());
  }
  state.counters["voxels/s"] = benchmark::Counter(
      double(state.iterations()) * double(fx.grid.num_cells()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AccumulatorReduce)
    ->Args({16, 2})
    ->Args({16, 8})
    ->Args({32, 2})
    ->Args({32, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_CountingSort(benchmark::State& state) {
  PushFixture fx(16, int(state.range(0)));
  Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    // Shuffle so the sort has real work (post-push disorder is mild).
    for (std::size_t n = fx.sp.size(); n > 1; --n) {
      const auto m = std::size_t(rng.uniform_u64(n));
      std::swap(fx.sp[n - 1], fx.sp[m]);
    }
    state.ResumeTiming();
    fx.sp.sort(fx.grid);
  }
  state.counters["particles/s"] = benchmark::Counter(
      double(state.iterations()) * double(fx.sp.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CountingSort)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

/// Pipeline counts to sweep: 1, 2, 4, ... up to the hardware thread count.
std::vector<int> pipeline_sweep() {
  std::vector<int> counts;
  const int hw = Pipeline::hardware_pipelines();
  for (int n = 1; n < hw; n *= 2) counts.push_back(n);
  counts.push_back(hw);
  return counts;
}

void register_advance_benchmarks(const std::vector<int>& pipeline_counts,
                                 const std::vector<Kernel>& kernels) {
  struct Case {
    int cells, ppc;
  };
  const Case cases[] = {{16, 16}, {16, 64}, {32, 16}, {32, 64}, {32, 256}};
  for (const Case& c : cases) {
    for (int np : pipeline_counts) {
      for (Kernel k : kernels) {
        const std::string name =
            "BM_ParticleAdvance/" + std::to_string(c.cells) + "/" +
            std::to_string(c.ppc) + "/pipelines:" + std::to_string(np) +
            "/kernel:" + kernel_name(k);
        // The advance is internally threaded, so rate counters must divide
        // by wall time — the default (main-thread CPU time) would credit an
        // N-pipeline run with N× throughput even when the host can't run
        // them.
        benchmark::RegisterBenchmark(name.c_str(), BM_ParticleAdvance,
                                     c.cells, c.ppc, np, k)
            ->Unit(benchmark::kMillisecond)
            ->UseRealTime();
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own --pipelines/--json flags before google-benchmark sees
  // argv. --json is rewritten into the library's own JSON reporter flags so
  // every bench shares the one --json=PATH convention.
  std::vector<int> counts;
  std::vector<Kernel> kernels;
  std::vector<std::string> extra;
  std::vector<char*> bargv;
  for (int i = 0; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--pipelines=", 12) == 0) {
      counts = {std::max(1, std::atoi(a + 12))};
    } else if (std::strcmp(a, "--pipelines") == 0 && i + 1 < argc) {
      counts = {std::max(1, std::atoi(argv[++i]))};
    } else if (std::strncmp(a, "--kernel=", 9) == 0) {
      kernels = {resolve_kernel(parse_kernel(a + 9))};
    } else if (std::strcmp(a, "--kernel") == 0 && i + 1 < argc) {
      kernels = {resolve_kernel(parse_kernel(argv[++i]))};
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      extra.push_back(std::string("--benchmark_out=") + (a + 7));
      extra.push_back("--benchmark_out_format=json");
    } else {
      bargv.push_back(argv[i]);
    }
  }
  for (std::string& s : extra) bargv.push_back(s.data());
  if (counts.empty()) counts = pipeline_sweep();
  if (kernels.empty()) kernels = available_kernels();
  {
    std::string names;
    for (Kernel k : kernels)
      names += (names.empty() ? "" : ",") + std::string(kernel_name(k));
    benchmark::AddCustomContext("kernels", names);
  }
  register_advance_benchmarks(counts, kernels);
  int bargc = int(bargv.size());
  benchmark::Initialize(&bargc, bargv.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, bargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
