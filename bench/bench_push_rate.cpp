// T1 — per-node particle-advance performance table: particles advanced per
// second, sustained Gflop/s (s.p.) using the counted flops/particle, for a
// sorted uniform plasma at several grid sizes and particle densities.
// Google-benchmark microkernel timing of VPIC's inner loop plus its
// supporting kernels (interpolator load, accumulator unload, sort).
#include <benchmark/benchmark.h>

#include <cmath>

#include "particles/loader.hpp"
#include "particles/push.hpp"
#include "perf/costs.hpp"
#include "util/rng.hpp"

using namespace minivpic;
using namespace minivpic::particles;

namespace {

struct PushFixture {
  PushFixture(int cells, int ppc)
      : grid(make_grid(cells)),
        fields(grid),
        interp(grid),
        acc(grid),
        pusher(grid, periodic_particles()),
        sp("e", -1.0, 1.0) {
    for (int k = 0; k <= cells + 1; ++k)
      for (int j = 0; j <= cells + 1; ++j)
        for (int i = 0; i <= cells + 1; ++i) {
          fields.ey(i, j, k) = 0.01f * float(std::sin(0.3 * i));
          fields.cbz(i, j, k) = 0.02f * float(std::cos(0.2 * j));
        }
    interp.load(fields);
    LoadConfig cfg;
    cfg.ppc = ppc;
    cfg.uth = 0.05;
    load_uniform(sp, grid, cfg);
    sp.sort(grid);
  }

  static grid::GlobalGrid make_grid(int cells) {
    grid::GlobalGrid g;
    g.nx = g.ny = g.nz = cells;
    g.dx = g.dy = g.dz = 0.5;
    return g;
  }

  grid::LocalGrid grid;
  grid::FieldArray fields;
  InterpolatorArray interp;
  AccumulatorArray acc;
  Pusher pusher;
  Species sp;
};

void BM_ParticleAdvance(benchmark::State& state) {
  PushFixture fx(int(state.range(0)), int(state.range(1)));
  std::int64_t pushed = 0;
  for (auto _ : state) {
    fx.acc.clear();
    const auto res = fx.pusher.advance(fx.sp, fx.interp, fx.acc);
    pushed += res.pushed;
    benchmark::DoNotOptimize(res.pushed);
  }
  state.counters["particles/s"] =
      benchmark::Counter(double(pushed), benchmark::Counter::kIsRate);
  state.counters["Gflop/s(sp)"] = benchmark::Counter(
      double(pushed) * perf::KernelCosts::push_flops_per_particle() / 1e9,
      benchmark::Counter::kIsRate);
  state.counters["flops/particle"] =
      perf::KernelCosts::push_flops_per_particle();
}
BENCHMARK(BM_ParticleAdvance)
    ->Args({16, 16})
    ->Args({16, 64})
    ->Args({32, 16})
    ->Args({32, 64})
    ->Args({32, 256})
    ->Unit(benchmark::kMillisecond);

void BM_InterpolatorLoad(benchmark::State& state) {
  PushFixture fx(int(state.range(0)), 1);
  for (auto _ : state) {
    fx.interp.load(fx.fields);
    benchmark::DoNotOptimize(fx.interp.data());
  }
  state.counters["voxels/s"] = benchmark::Counter(
      double(state.iterations()) * double(fx.grid.num_cells()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpolatorLoad)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_AccumulatorUnload(benchmark::State& state) {
  PushFixture fx(int(state.range(0)), 1);
  for (auto _ : state) {
    fx.acc.unload(fx.fields);
    benchmark::DoNotOptimize(fx.fields.jfx_span().data());
  }
  state.counters["voxels/s"] = benchmark::Counter(
      double(state.iterations()) * double(fx.grid.num_cells()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AccumulatorUnload)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_CountingSort(benchmark::State& state) {
  PushFixture fx(16, int(state.range(0)));
  Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    // Shuffle so the sort has real work (post-push disorder is mild).
    for (std::size_t n = fx.sp.size(); n > 1; --n) {
      const auto m = std::size_t(rng.uniform_u64(n));
      std::swap(fx.sp[n - 1], fx.sp[m]);
    }
    state.ResumeTiming();
    fx.sp.sort(fx.grid);
  }
  state.counters["particles/s"] = benchmark::Counter(
      double(state.iterations()) * double(fx.sp.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CountingSort)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
