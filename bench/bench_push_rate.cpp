// T1 — per-node particle-advance performance table: particles advanced per
// second, sustained Gflop/s (s.p.) using the counted flops/particle, for a
// sorted uniform plasma at several grid sizes and particle densities.
// Google-benchmark microkernel timing of VPIC's inner loop plus its
// supporting kernels (interpolator load, accumulator unload + pipeline
// reduction, sort).
//
// The particle advance is swept over intra-rank pipeline counts (the
// paper's per-node parallel layer): by default {1, 2, 4, ..., hardware},
// and over advance kernels (docs/KERNELS.md): by default every kernel the
// host can run (scalar + each compiled-in SIMD width the CPU supports).
//   --pipelines=N   pin the advance to exactly N pipelines (1 = the serial
//                   reference path; google-benchmark flags still apply)
//   --kernel=NAME   pin the advance to one kernel: scalar|sse|avx2|avx512|
//                   auto (auto = widest available)
//   --shuffle       start from a fully shuffled particle list (worst-case
//                   gather order) instead of the default voxel-sorted one
//   --sort-every=N  bin-sort the species once per N advances inside the
//                   timed region (0 = never, the default): each timed
//                   iteration then spans a whole sort period (1 sort +
//                   N advances), so the reported particles/s amortizes the
//                   sort cost exactly like the stepping loop's cadence —
//                   pair with --shuffle for the sorted-vs-unsorted
//                   experiment (docs/SORTING.md). Per-iteration times are
//                   per *period* in this mode, not per advance.
//   --json=PATH     machine-readable results; shorthand for google-benchmark's
//                   --benchmark_out=PATH --benchmark_out_format=json
// The JSON context records the kernel sweep plus `sort_every` and
// `initial_order`, and every advance benchmark reports an end-of-run
// `sortedness` counter (fraction of adjacent particles in voxel order), so
// result files are self-describing about the locality they measured.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "particles/loader.hpp"
#include "particles/push.hpp"
#include "perf/costs.hpp"
#include "util/pipeline.hpp"
#include "util/rng.hpp"

using namespace minivpic;
using namespace minivpic::particles;

namespace {

struct PushFixture {
  PushFixture(int cells, int ppc, int pipelines = 1,
              Kernel kernel = Kernel::kScalar, bool shuffle = false)
      : grid(make_grid(cells)),
        fields(grid),
        interp(grid),
        acc(grid, pipelines),
        pusher(grid, periodic_particles()),
        pipeline(pipelines),
        sp("e", -1.0, 1.0) {
    pusher.set_kernel(kernel);
    for (int k = 0; k <= cells + 1; ++k)
      for (int j = 0; j <= cells + 1; ++j)
        for (int i = 0; i <= cells + 1; ++i) {
          fields.ey(i, j, k) = 0.01f * float(std::sin(0.3 * i));
          fields.cbz(i, j, k) = 0.02f * float(std::cos(0.2 * j));
        }
    interp.load(fields);
    LoadConfig cfg;
    cfg.ppc = ppc;
    cfg.uth = 0.05;
    // load_uniform emits particles cell-by-cell in ascending voxel order,
    // so the default warm-up is already the sorted best case and no extra
    // sort pass is needed; --shuffle produces the worst case instead.
    load_uniform(sp, grid, cfg);
    if (shuffle) shuffle_particles(sp);
  }

  /// Fisher–Yates with a fixed seed: the worst-case (random) gather order,
  /// reproducible across runs.
  static void shuffle_particles(Species& s, std::uint64_t seed = 4) {
    Rng rng(seed);
    for (std::size_t n = s.size(); n > 1; --n)
      std::swap(s[n - 1], s[std::size_t(rng.uniform_u64(n))]);
  }

  static grid::GlobalGrid make_grid(int cells) {
    grid::GlobalGrid g;
    g.nx = g.ny = g.nz = cells;
    g.dx = g.dy = g.dz = 0.5;
    return g;
  }

  grid::LocalGrid grid;
  grid::FieldArray fields;
  InterpolatorArray interp;
  AccumulatorArray acc;
  Pusher pusher;
  Pipeline pipeline;
  Species sp;
};

void BM_ParticleAdvance(benchmark::State& state, int cells, int ppc,
                        int pipelines, Kernel kernel, bool shuffle,
                        int sort_every) {
  PushFixture fx(cells, ppc, pipelines, kernel, shuffle);
  std::int64_t pushed = 0;
  // With a sort cadence, one timed iteration spans a whole sort period —
  // one sort plus sort_every advances — so the reported particles/s
  // amortizes the sort exactly the way the stepping loop does, no matter
  // how few iterations the harness decides to run.
  const int advances_per_iter = sort_every > 0 ? sort_every : 1;
  for (auto _ : state) {
    if (sort_every > 0) fx.sp.sort(fx.grid, &fx.pipeline);
    for (int n = 0; n < advances_per_iter; ++n) {
      fx.acc.clear();
      const auto res =
          fx.pusher.advance(fx.sp, fx.interp, fx.acc, &fx.pipeline);
      fx.acc.reduce();
      pushed += res.pushed;
      benchmark::DoNotOptimize(res.pushed);
    }
  }
  state.counters["particles/s"] =
      benchmark::Counter(double(pushed), benchmark::Counter::kIsRate);
  state.counters["Gflop/s(sp)"] = benchmark::Counter(
      double(pushed) * perf::KernelCosts::push_flops_per_particle() / 1e9,
      benchmark::Counter::kIsRate);
  state.counters["flops/particle"] =
      perf::KernelCosts::push_flops_per_particle();
  state.counters["pipelines"] = double(pipelines);
  state.counters["lane_width"] =
      double(perf::KernelCosts::push_lane_width(fx.pusher.kernel()));
  state.counters["sort_every"] = double(sort_every);
  state.counters["sortedness"] = fx.sp.sortedness();
}

void BM_InterpolatorLoad(benchmark::State& state) {
  PushFixture fx(int(state.range(0)), 1);
  for (auto _ : state) {
    fx.interp.load(fx.fields);
    benchmark::DoNotOptimize(fx.interp.data());
  }
  state.counters["voxels/s"] = benchmark::Counter(
      double(state.iterations()) * double(fx.grid.num_cells()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpolatorLoad)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_AccumulatorUnload(benchmark::State& state) {
  PushFixture fx(int(state.range(0)), 1);
  for (auto _ : state) {
    fx.acc.unload(fx.fields);
    benchmark::DoNotOptimize(fx.fields.jfx_span().data());
  }
  state.counters["voxels/s"] = benchmark::Counter(
      double(state.iterations()) * double(fx.grid.num_cells()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AccumulatorUnload)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_AccumulatorReduce(benchmark::State& state) {
  // The serial tax of the pipeline layer: fold N private blocks into base.
  PushFixture fx(int(state.range(0)), 1, int(state.range(1)));
  for (auto _ : state) {
    fx.acc.reduce();
    benchmark::DoNotOptimize(fx.acc.data());
  }
  state.counters["voxels/s"] = benchmark::Counter(
      double(state.iterations()) * double(fx.grid.num_cells()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AccumulatorReduce)
    ->Args({16, 2})
    ->Args({16, 8})
    ->Args({32, 2})
    ->Args({32, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_CountingSort(benchmark::State& state) {
  // Worst-case input each iteration: re-shuffle (untimed) so every timed
  // sort() does a full permutation's work — post-push disorder in a real
  // run is far milder, so this is the in-place sort's cost *ceiling*.
  PushFixture fx(16, int(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    PushFixture::shuffle_particles(fx.sp);
    state.ResumeTiming();
    fx.sp.sort(fx.grid);
  }
  state.counters["particles/s"] = benchmark::Counter(
      double(state.iterations()) * double(fx.sp.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CountingSort)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

/// Pipeline counts to sweep: 1, 2, 4, ... up to the hardware thread count.
std::vector<int> pipeline_sweep() {
  std::vector<int> counts;
  const int hw = Pipeline::hardware_pipelines();
  for (int n = 1; n < hw; n *= 2) counts.push_back(n);
  counts.push_back(hw);
  return counts;
}

void register_advance_benchmarks(const std::vector<int>& pipeline_counts,
                                 const std::vector<Kernel>& kernels,
                                 bool shuffle, int sort_every) {
  struct Case {
    int cells, ppc;
  };
  const Case cases[] = {{16, 16}, {16, 64}, {32, 16}, {32, 64}, {32, 256}};
  for (const Case& c : cases) {
    for (int np : pipeline_counts) {
      for (Kernel k : kernels) {
        std::string name =
            "BM_ParticleAdvance/" + std::to_string(c.cells) + "/" +
            std::to_string(c.ppc) + "/pipelines:" + std::to_string(np) +
            "/kernel:" + kernel_name(k);
        // Non-default locality settings are part of the benchmark identity
        // (names stay unchanged for default runs so result files compare
        // across revisions).
        if (shuffle) name += "/shuffled";
        if (sort_every > 0)
          name += "/sort_every:" + std::to_string(sort_every);
        // The advance is internally threaded, so rate counters must divide
        // by wall time — the default (main-thread CPU time) would credit an
        // N-pipeline run with N× throughput even when the host can't run
        // them.
        benchmark::RegisterBenchmark(name.c_str(), BM_ParticleAdvance,
                                     c.cells, c.ppc, np, k, shuffle,
                                     sort_every)
            ->Unit(benchmark::kMillisecond)
            ->UseRealTime();
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own --pipelines/--json flags before google-benchmark sees
  // argv. --json is rewritten into the library's own JSON reporter flags so
  // every bench shares the one --json=PATH convention.
  std::vector<int> counts;
  std::vector<Kernel> kernels;
  std::vector<std::string> extra;
  std::vector<char*> bargv;
  bool shuffle = false;
  int sort_every = 0;
  for (int i = 0; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--pipelines=", 12) == 0) {
      counts = {std::max(1, std::atoi(a + 12))};
    } else if (std::strcmp(a, "--pipelines") == 0 && i + 1 < argc) {
      counts = {std::max(1, std::atoi(argv[++i]))};
    } else if (std::strncmp(a, "--kernel=", 9) == 0) {
      kernels = {resolve_kernel(parse_kernel(a + 9))};
    } else if (std::strcmp(a, "--kernel") == 0 && i + 1 < argc) {
      kernels = {resolve_kernel(parse_kernel(argv[++i]))};
    } else if (std::strcmp(a, "--shuffle") == 0) {
      shuffle = true;
    } else if (std::strncmp(a, "--sort-every=", 13) == 0) {
      sort_every = std::max(0, std::atoi(a + 13));
    } else if (std::strcmp(a, "--sort-every") == 0 && i + 1 < argc) {
      sort_every = std::max(0, std::atoi(argv[++i]));
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      extra.push_back(std::string("--benchmark_out=") + (a + 7));
      extra.push_back("--benchmark_out_format=json");
    } else {
      bargv.push_back(argv[i]);
    }
  }
  for (std::string& s : extra) bargv.push_back(s.data());
  if (counts.empty()) counts = pipeline_sweep();
  if (kernels.empty()) kernels = available_kernels();
  {
    std::string names;
    for (Kernel k : kernels)
      names += (names.empty() ? "" : ",") + std::string(kernel_name(k));
    benchmark::AddCustomContext("kernels", names);
    // Locality provenance rides in the context next to the kernel list so
    // a JSON result is self-describing about the order it measured.
    benchmark::AddCustomContext("sort_every", std::to_string(sort_every));
    benchmark::AddCustomContext("initial_order",
                                shuffle ? "shuffled" : "sorted");
  }
  register_advance_benchmarks(counts, kernels, shuffle, sort_every);
  int bargc = int(bargv.size());
  benchmark::Initialize(&bargc, bargv.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, bargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
