// F2 — strong scaling: a fixed global problem divided over more ranks.
// As slabs thin, the surface-to-volume ratio grows and the communication
// share of the step rises — the measured comm fractions here feed the same
// scaling story the paper's fixed-size runs tell.
//
// Each rank count now runs twice: with the barriered step loop
// (--overlap=off semantics: two-pass push, inline exchange) and with the
// overlapped loop (docs/OVERLAP.md: the exchange runs on a comm worker
// concurrently with the interior push). Both schedules produce bit-identical
// physics; what changes is where the exchange sits relative to the critical
// path. The quantity the overlap attacks is the *exposed* comm time — the
// part of the exchange a rank actually waits on — so the curves to compare
// are "comm s/step" (barriered: the whole exchange) against "exposed
// s/step" (overlapped: the join wait left after the interior push covered
// the rest). On a single-core host wall time serializes (every thread's
// work lands on one core), so the exposed-comm and comm-fraction curves
// carry the scaling signal, as before.
//
//   --steps=N    timed steps per configuration (default 20)
//   --json=PATH  machine-readable per-(ranks, mode) records for the
//                benchmark snapshot (BENCH_9.json)
#include <fstream>
#include <iostream>
#include <vector>

#include "sim/simulation.hpp"
#include "telemetry/json.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"
#include "vmpi/runtime.hpp"

using namespace minivpic;

namespace {

sim::Deck scaling_deck(bool overlap) {
  sim::Deck deck;
  deck.grid.nx = 32;
  deck.grid.ny = deck.grid.nz = 12;
  deck.grid.dx = deck.grid.dy = deck.grid.dz = 0.4;
  deck.overlap = overlap ? sim::Deck::Overlap::kOn : sim::Deck::Overlap::kOff;
  sim::SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 24;
  e.load.uth = 0.15;
  deck.species.push_back(e);
  sim::SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.mobile = false;
  deck.species.push_back(ion);
  return deck;
}

/// One (ranks, mode) measurement, rank-summed where meaningful.
struct Point {
  int ranks = 1;
  bool overlap = false;
  double wall_per_step = 0;     ///< rank-0 wall clock / steps
  double comm_per_step = 0;     ///< full exchange s/step (rank-summed)
  double exposed_per_step = 0;  ///< comm left on the critical path
  double hidden_per_step = 0;   ///< comm covered by the interior push
  double comm_fraction = 0;     ///< exposed share of summed phase time
  long long migrated_per_step = 0;
  long long particles_per_rank = 0;
};

Point measure(int ranks, bool overlap, int steps) {
  const sim::Deck deck = scaling_deck(overlap);
  const auto nr = static_cast<std::size_t>(ranks);
  std::vector<double> comm_s(nr), exposed_s(nr), hidden_s(nr), tot_s(nr);
  std::vector<long long> migrated(nr);
  Timer wall;
  Point pt;
  pt.ranks = ranks;
  pt.overlap = overlap;
  long long particles = 0;
  double wall_s = 0;
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    const vmpi::CartTopology topo({ranks, 1, 1}, {true, true, true});
    sim::Simulation sim(deck, &comm, &topo);
    sim.initialize();
    const long long count = sim.global_particle_count();  // collective
    comm.barrier();
    if (comm.rank() == 0) {
      wall.reset();
      particles = count;
    }
    sim.run(steps);
    comm.barrier();
    if (comm.rank() == 0) wall_s = wall.seconds();
    const auto r = std::size_t(comm.rank());
    const sim::OverlapStats& ov = sim.overlap_stats();
    // Barriered: the migrate phase is the whole exchange, all of it
    // exposed. Overlapped: the migrate phase is only the join wait; the
    // worker's wall time is the full exchange.
    comm_s[r] = ov.enabled ? ov.comm_seconds
                           : sim.timings().migrate.total_seconds();
    exposed_s[r] = ov.enabled ? ov.exposed_seconds
                              : sim.timings().migrate.total_seconds();
    hidden_s[r] = ov.hidden_seconds;
    tot_s[r] = sim.timings().total_seconds();
    migrated[r] = sim.particle_stats().migrated;
  });
  double csum = 0, esum = 0, hsum = 0, tsum = 0;
  long long msum = 0;
  for (std::size_t r = 0; r < nr; ++r) {
    csum += comm_s[r];
    esum += exposed_s[r];
    hsum += hidden_s[r];
    tsum += tot_s[r];
    msum += migrated[r];
  }
  pt.wall_per_step = wall_s / steps;
  pt.comm_per_step = csum / steps;
  pt.exposed_per_step = esum / steps;
  pt.hidden_per_step = hsum / steps;
  pt.comm_fraction = tsum > 0 ? 100.0 * esum / tsum : 0;
  pt.migrated_per_step = msum / steps;
  pt.particles_per_rank = particles / ranks;
  return pt;
}

void write_json(const std::string& path, int steps,
                const std::vector<Point>& points) {
  telemetry::Json arr = telemetry::Json::array();
  for (const Point& pt : points) {
    telemetry::Json rec = telemetry::Json::object();
    rec.set("ranks", telemetry::Json::number(std::int64_t{pt.ranks}));
    rec.set("overlap", telemetry::Json::boolean(pt.overlap));
    rec.set("wall_s_per_step", telemetry::Json::number(pt.wall_per_step));
    rec.set("comm_s_per_step", telemetry::Json::number(pt.comm_per_step));
    rec.set("exposed_s_per_step",
            telemetry::Json::number(pt.exposed_per_step));
    rec.set("hidden_s_per_step", telemetry::Json::number(pt.hidden_per_step));
    rec.set("exposed_comm_fraction_pct",
            telemetry::Json::number(pt.comm_fraction));
    rec.set("migrated_per_step",
            telemetry::Json::number(std::int64_t{pt.migrated_per_step}));
    rec.set("particles_per_rank",
            telemetry::Json::number(std::int64_t{pt.particles_per_rank}));
    arr.push_back(std::move(rec));
  }
  telemetry::Json doc = telemetry::Json::object();
  doc.set("bench", telemetry::Json::string("bench_strong_scaling"));
  doc.set("steps", telemetry::Json::number(std::int64_t{steps}));
  doc.set("grid", telemetry::Json::string("32x12x12"));
  doc.set("points", std::move(arr));
  std::ofstream os(path, std::ios::trunc);
  MV_REQUIRE(os.good(), "cannot open --json file: " << path);
  os << doc.dump() << "\n";
  std::cout << "\nJSON results written: " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  args.check_known({"steps", "json"});
  const int steps = int(args.get_int("steps", 20));
  MV_REQUIRE(steps >= 1, "--steps must be >= 1");

  std::vector<Point> points;
  Table table({"ranks", "cells/rank", "particles/rank", "schedule",
               "wall s/step", "comm s/step", "exposed s/step",
               "exposed comm %", "migrated/step"});
  for (int ranks : {1, 2, 4, 8}) {
    for (bool overlap : {false, true}) {
      const Point pt = measure(ranks, overlap, steps);
      points.push_back(pt);
      table.add_row({(long long)ranks, (long long)(32 * 12 * 12 / ranks),
                     pt.particles_per_rank,
                     std::string(overlap ? "overlapped" : "barriered"),
                     pt.wall_per_step, pt.comm_per_step, pt.exposed_per_step,
                     pt.comm_fraction, pt.migrated_per_step});
    }
  }
  table.print(std::cout,
              "F2: strong scaling of a fixed 32x12x12 problem, barriered vs "
              "overlapped step loop (single-core host: wall time serializes; "
              "the exposed-comm curves carry the overlap signal)");
  for (int ranks : {2, 4, 8}) {
    double barr = 0, over = 0;
    for (const Point& pt : points)
      if (pt.ranks == ranks) (pt.overlap ? over : barr) = pt.exposed_per_step;
    std::cout << "ranks=" << ranks << ": exposed comm " << barr * 1e3
              << " ms/step barriered -> " << over * 1e3
              << " ms/step overlapped ("
              << (over > 0 ? barr / over : 0) << "x)\n";
  }
  if (args.has("json")) write_json(args.get("json", ""), steps, points);
  return 0;
}
