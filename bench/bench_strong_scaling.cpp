// F2 — strong scaling: a fixed global problem divided over more ranks.
// As slabs thin, the surface-to-volume ratio grows and the communication
// share of the step rises — the measured comm fractions here feed the same
// scaling story the paper's fixed-size runs tell.
#include <iostream>
#include <vector>

#include "sim/simulation.hpp"
#include "util/csv.hpp"
#include "util/timer.hpp"
#include "vmpi/runtime.hpp"

using namespace minivpic;

int main() {
  sim::Deck deck;
  deck.grid.nx = 32;
  deck.grid.ny = deck.grid.nz = 12;
  deck.grid.dx = deck.grid.dy = deck.grid.dz = 0.4;
  sim::SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 24;
  e.load.uth = 0.15;
  deck.species.push_back(e);
  sim::SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.mobile = false;
  deck.species.push_back(ion);

  const int steps = 20;
  Table table({"ranks", "cells/rank", "particles/rank", "wall s/step",
               "comm fraction %", "migrated/step"});
  for (int ranks : {1, 2, 4, 8}) {
    const auto nr = static_cast<std::size_t>(ranks);
    std::vector<double> push_s(nr), comm_s(nr), tot_s(nr);
    std::vector<long long> migrated(nr);
    Timer wall;
    double wall_s = 0;
    long long particles = 0;
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      const vmpi::CartTopology topo({ranks, 1, 1}, {true, true, true});
      sim::Simulation sim(deck, &comm, &topo);
      sim.initialize();
      const long long count = sim.global_particle_count();  // collective
      comm.barrier();
      if (comm.rank() == 0) {
        wall.reset();
        particles = count;
      }
      sim.run(steps);
      comm.barrier();
      if (comm.rank() == 0) wall_s = wall.seconds();
      const auto r = std::size_t(comm.rank());
      push_s[r] = sim.timings().push.total_seconds();
      comm_s[r] = sim.timings().migrate.total_seconds() +
                  sim.timings().sources.total_seconds();
      tot_s[r] = sim.timings().total_seconds();
      migrated[r] = sim.particle_stats().migrated;
    });
    double csum = 0, tsum = 0;
    long long msum = 0;
    for (int r = 0; r < ranks; ++r) {
      csum += comm_s[std::size_t(r)];
      tsum += tot_s[std::size_t(r)];
      msum += migrated[std::size_t(r)];
    }
    table.add_row({(long long)ranks, (long long)(32 * 12 * 12 / ranks),
                   particles / ranks, wall_s / steps, 100.0 * csum / tsum,
                   msum / steps});
  }
  table.print(std::cout,
              "F2: strong scaling of a fixed 32x12x12 problem (single-core "
              "host: wall time serializes; comm fraction and migration "
              "volume carry the scaling signal)");
  return 0;
}
