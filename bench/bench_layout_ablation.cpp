// A2 — ablation: VPIC's data layout versus the conventional one.
// Same physics work, two organizations:
//   * minivpic core: 32-byte s.p. particles with cell index + offsets,
//     cached 80-byte per-cell interpolator, per-cell accumulator;
//   * baseline: 56-byte d.p. AoS particles with global coordinates, direct
//     staggered gather from the mesh per particle, CIC scatter.
// The rate gap is the paper's design argument in miniature.
#include <benchmark/benchmark.h>

#include <cmath>

#include "baseline/baseline.hpp"
#include "particles/loader.hpp"
#include "particles/push.hpp"

using namespace minivpic;

namespace {

grid::GlobalGrid make_grid(int cells) {
  grid::GlobalGrid g;
  g.nx = g.ny = g.nz = cells;
  g.dx = g.dy = g.dz = 0.5;
  return g;
}

void fill_fields(grid::FieldArray& f, int cells) {
  for (int k = 0; k <= cells + 1; ++k)
    for (int j = 0; j <= cells + 1; ++j)
      for (int i = 0; i <= cells + 1; ++i) {
        f.ey(i, j, k) = 0.01f * float(std::sin(0.3 * i));
        f.cbz(i, j, k) = 0.02f * float(std::cos(0.2 * j));
      }
}

void BM_VpicLayout(benchmark::State& state) {
  const int cells = int(state.range(0));
  const int ppc = int(state.range(1));
  const grid::LocalGrid g(make_grid(cells));
  grid::FieldArray f(g);
  fill_fields(f, cells);
  particles::InterpolatorArray interp(g);
  interp.load(f);
  particles::AccumulatorArray acc(g);
  particles::Pusher pusher(g, particles::periodic_particles());
  particles::Species sp("e", -1.0, 1.0);
  particles::LoadConfig cfg;
  cfg.ppc = ppc;
  cfg.uth = 0.05;
  particles::load_uniform(sp, g, cfg);
  sp.sort(g);

  std::int64_t pushed = 0;
  for (auto _ : state) {
    acc.clear();
    pushed += pusher.advance(sp, interp, acc).pushed;
  }
  state.counters["particles/s"] =
      benchmark::Counter(double(pushed), benchmark::Counter::kIsRate);
  state.counters["bytes/particle"] = 32.0;
}
BENCHMARK(BM_VpicLayout)->Args({24, 16})->Args({32, 32})->Unit(benchmark::kMillisecond);

void BM_ConventionalLayout(benchmark::State& state) {
  const int cells = int(state.range(0));
  const int ppc = int(state.range(1));
  const grid::LocalGrid g(make_grid(cells));
  grid::FieldArray f(g);
  fill_fields(f, cells);
  baseline::BaselinePic pic(g, -1.0, 1.0);
  pic.load_uniform(ppc, 1.0, 0.05, 7);

  std::int64_t pushed = 0;
  for (auto _ : state) {
    f.clear_sources();
    pic.push(f);
    pushed += std::int64_t(pic.size());
  }
  state.counters["particles/s"] =
      benchmark::Counter(double(pushed), benchmark::Counter::kIsRate);
  state.counters["bytes/particle"] = double(sizeof(baseline::ParticleD));
}
BENCHMARK(BM_ConventionalLayout)
    ->Args({24, 16})
    ->Args({32, 32})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
