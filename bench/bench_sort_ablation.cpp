// A1 — ablation: the particle sort. VPIC periodically counting-sorts
// particles by cell so the inner loop streams the interpolator and
// accumulator arrays instead of thrashing them. Compares the push on a
// sorted list against the same particles in shuffled (worst-case) order,
// and shows the sort's own cost for amortization.
#include <benchmark/benchmark.h>

#include <cmath>

#include "particles/loader.hpp"
#include "particles/push.hpp"
#include "util/rng.hpp"

using namespace minivpic;
using namespace minivpic::particles;

namespace {

grid::GlobalGrid make_grid(int cells) {
  grid::GlobalGrid g;
  g.nx = g.ny = g.nz = cells;
  g.dx = g.dy = g.dz = 0.5;
  return g;
}

struct Fixture {
  Fixture(int cells, int ppc, bool shuffled)
      : grid(make_grid(cells)),
        fields(grid),
        interp(grid),
        acc(grid),
        pusher(grid, periodic_particles()),
        sp("e", -1.0, 1.0) {
    for (int k = 0; k <= cells + 1; ++k)
      for (int j = 0; j <= cells + 1; ++j)
        for (int i = 0; i <= cells + 1; ++i)
          fields.ey(i, j, k) = 0.01f * float(std::sin(0.3 * i));
    interp.load(fields);
    LoadConfig cfg;
    cfg.ppc = ppc;
    cfg.uth = 0.05;
    load_uniform(sp, grid, cfg);
    if (shuffled) {
      Rng rng(11);
      for (std::size_t n = sp.size(); n > 1; --n)
        std::swap(sp[n - 1], sp[std::size_t(rng.uniform_u64(n))]);
    } else {
      sp.sort(grid);
    }
  }

  grid::LocalGrid grid;
  grid::FieldArray fields;
  InterpolatorArray interp;
  AccumulatorArray acc;
  Pusher pusher;
  Species sp;
};

void push_loop(benchmark::State& state, bool shuffled) {
  Fixture fx(int(state.range(0)), int(state.range(1)), shuffled);
  std::int64_t pushed = 0;
  for (auto _ : state) {
    fx.acc.clear();
    pushed += fx.pusher.advance(fx.sp, fx.interp, fx.acc).pushed;
  }
  state.counters["particles/s"] =
      benchmark::Counter(double(pushed), benchmark::Counter::kIsRate);
}

void BM_PushSorted(benchmark::State& state) { push_loop(state, false); }
void BM_PushShuffled(benchmark::State& state) { push_loop(state, true); }

// Grid large enough that the interpolator array falls out of cache when
// access order is random — the case the sort exists for.
BENCHMARK(BM_PushSorted)->Args({32, 8})->Args({48, 8})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PushShuffled)->Args({32, 8})->Args({48, 8})->Unit(benchmark::kMillisecond);

void BM_SortCost(benchmark::State& state) {
  Fixture fx(int(state.range(0)), 8, true);
  Rng rng(13);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t n = fx.sp.size(); n > 1; --n)
      std::swap(fx.sp[n - 1], fx.sp[std::size_t(rng.uniform_u64(n))]);
    state.ResumeTiming();
    fx.sp.sort(fx.grid);
  }
  state.counters["particles/s"] = benchmark::Counter(
      double(state.iterations()) * double(fx.sp.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SortCost)->Arg(32)->Arg(48)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
