// A1 — ablation: the particle sort. VPIC periodically counting-sorts
// particles by cell so the inner loop streams the interpolator and
// accumulator arrays instead of thrashing them. Compares the push on a
// sorted list against the same particles in shuffled (worst-case) order —
// per advance kernel, because the SIMD gathers are exactly what decays
// with disorder (docs/SORTING.md) — and shows the in-place sort's own cost
// for amortization.
//
//   --kernel=NAME   pin to one kernel: scalar|sse|avx2|avx512|auto
//                   (default: every kernel this host can run)
//   --json=PATH     machine-readable results; shorthand for
//                   --benchmark_out=PATH --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "particles/loader.hpp"
#include "particles/push.hpp"
#include "util/rng.hpp"

using namespace minivpic;
using namespace minivpic::particles;

namespace {

grid::GlobalGrid make_grid(int cells) {
  grid::GlobalGrid g;
  g.nx = g.ny = g.nz = cells;
  g.dx = g.dy = g.dz = 0.5;
  return g;
}

struct Fixture {
  Fixture(int cells, int ppc, bool shuffled, Kernel kernel = Kernel::kScalar)
      : grid(make_grid(cells)),
        fields(grid),
        interp(grid),
        acc(grid),
        pusher(grid, periodic_particles()),
        sp("e", -1.0, 1.0) {
    pusher.set_kernel(kernel);
    for (int k = 0; k <= cells + 1; ++k)
      for (int j = 0; j <= cells + 1; ++j)
        for (int i = 0; i <= cells + 1; ++i)
          fields.ey(i, j, k) = 0.01f * float(std::sin(0.3 * i));
    interp.load(fields);
    LoadConfig cfg;
    cfg.ppc = ppc;
    cfg.uth = 0.05;
    // load_uniform already emits ascending voxel order (the sorted case);
    // the shuffled variant is the worst-case order sorting exists to undo.
    load_uniform(sp, grid, cfg);
    if (shuffled) shuffle(sp);
  }

  static void shuffle(Species& s, std::uint64_t seed = 11) {
    Rng rng(seed);
    for (std::size_t n = s.size(); n > 1; --n)
      std::swap(s[n - 1], s[std::size_t(rng.uniform_u64(n))]);
  }

  grid::LocalGrid grid;
  grid::FieldArray fields;
  InterpolatorArray interp;
  AccumulatorArray acc;
  Pusher pusher;
  Species sp;
};

void push_loop(benchmark::State& state, int cells, int ppc, bool shuffled,
               Kernel kernel) {
  Fixture fx(cells, ppc, shuffled, kernel);
  std::int64_t pushed = 0;
  for (auto _ : state) {
    fx.acc.clear();
    pushed += fx.pusher.advance(fx.sp, fx.interp, fx.acc).pushed;
  }
  state.counters["particles/s"] =
      benchmark::Counter(double(pushed), benchmark::Counter::kIsRate);
  state.counters["sortedness"] = fx.sp.sortedness();
}

void BM_SortCost(benchmark::State& state) {
  Fixture fx(int(state.range(0)), 8, true);
  for (auto _ : state) {
    state.PauseTiming();
    Fixture::shuffle(fx.sp, 13);
    state.ResumeTiming();
    fx.sp.sort(fx.grid);
  }
  state.counters["particles/s"] = benchmark::Counter(
      double(state.iterations()) * double(fx.sp.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SortCost)->Arg(32)->Arg(48)->Unit(benchmark::kMillisecond);

void register_push_benchmarks(const std::vector<Kernel>& kernels) {
  struct Case {
    int cells, ppc;
  };
  // Grid large enough that the interpolator array falls out of cache when
  // access order is random — the case the sort exists for.
  const Case cases[] = {{32, 8}, {48, 8}};
  for (const Case& c : cases) {
    for (Kernel k : kernels) {
      for (const bool shuffled : {false, true}) {
        const std::string name =
            std::string(shuffled ? "BM_PushShuffled/" : "BM_PushSorted/") +
            std::to_string(c.cells) + "/" + std::to_string(c.ppc) +
            "/kernel:" + kernel_name(k);
        benchmark::RegisterBenchmark(name.c_str(), push_loop, c.cells, c.ppc,
                                     shuffled, k)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Kernel> kernels;
  std::vector<std::string> extra;
  std::vector<char*> bargv;
  for (int i = 0; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--kernel=", 9) == 0) {
      kernels = {resolve_kernel(parse_kernel(a + 9))};
    } else if (std::strcmp(a, "--kernel") == 0 && i + 1 < argc) {
      kernels = {resolve_kernel(parse_kernel(argv[++i]))};
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      extra.push_back(std::string("--benchmark_out=") + (a + 7));
      extra.push_back("--benchmark_out_format=json");
    } else {
      bargv.push_back(argv[i]);
    }
  }
  for (std::string& s : extra) bargv.push_back(s.data());
  if (kernels.empty()) kernels = available_kernels();
  {
    std::string names;
    for (Kernel k : kernels)
      names += (names.empty() ? "" : ",") + std::string(kernel_name(k));
    benchmark::AddCustomContext("kernels", names);
  }
  register_push_benchmarks(kernels);
  int bargc = int(bargv.size());
  benchmark::Initialize(&bargc, bargv.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, bargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
