// Service throughput: how fast the campaign daemon answers requests that do
// NOT cost a simulation — the cache-hit path that makes campaign-as-a-service
// worth running. An in-process ServiceServer is warmed with a handful of
// unique jobs, then swept across client counts; every client hammers the
// warm ids, so each request exercises the full wire round trip (connect is
// amortized, one JSON line each way) plus the ledger lookup, and nothing
// else. The numbers to watch:
//
//   * requests/s vs clients — how the accept/session/registry locking
//     scales with connection concurrency;
//   * cache-hit p50/p99 — the latency promise a duplicate submission gets,
//     which docs/SERVICE.md quotes;
//   * the one fresh row — the cost of an actual simulation at this size,
//     for contrast (cache hits should be ~1000x cheaper).
//
//   --steps=N     simulation steps per warm job (default 4)
//   --requests=N  cache-hit requests per client (default 200)
//   --workers=N   executor workers for the warm phase (default 2)
//   --scratch=DIR ledger + checkpoint directory (default /tmp)
//   --json=PATH   machine-readable records for the benchmark snapshot
//                 (merged into BENCH_10.json by the CI bench-snapshot job)
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/results.hpp"
#include "campaign/spec.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "telemetry/json.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

using namespace minivpic;

namespace {

// The same deliberately tiny base deck the service tests use: the bench
// measures service overhead, so the simulation behind the warm jobs should
// be as close to free as a real job can be.
const char* kBaseDeck = R"(
[grid]
nx = 12  ny = 2  nz = 2  dx = 0.5

[species electron]
q = -1  m = 1  ppc = 4  uth = 0.05  seed = 7

[species ion]
q = 1  m = 1836  ppc = 4  uth = 0.001  mobile = false
)";

const char* kAxis = "species electron.uth";
constexpr int kWarmJobs = 8;

struct Point {
  int clients = 0;
  int requests = 0;           ///< total across clients
  double wall_seconds = 0;
  double requests_per_second = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

std::string override_for(int i) {
  return std::string(kAxis) + "=0.0" + std::to_string(40 + i);
}

double percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  const double pos = q * double(sorted_ms.size() - 1);
  const std::size_t lo = std::size_t(pos);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = pos - double(lo);
  return sorted_ms[lo] + frac * (sorted_ms[hi] - sorted_ms[lo]);
}

Point hammer(int port, int clients, int per_client) {
  std::vector<std::vector<double>> lat_ms(static_cast<std::size_t>(clients));
  std::vector<std::thread> pool;
  pool.reserve(std::size_t(clients));
  Timer wall;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([port, c, per_client, &lat_ms] {
      service::ServiceClient client(port);
      std::vector<double>& out = lat_ms[std::size_t(c)];
      out.reserve(std::size_t(per_client));
      Timer t;
      for (int i = 0; i < per_client; ++i) {
        t.reset();
        const telemetry::Json resp = client.submit(
            "", {override_for((c + i) % kWarmJobs)}, /*steps=*/-1,
            "bench-" + std::to_string(c));
        out.push_back(t.seconds() * 1e3);
        MV_REQUIRE(resp.at("type").as_string() == "result",
                   "expected a cached result, got " << resp.dump());
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double seconds = wall.seconds();

  std::vector<double> all;
  for (const std::vector<double>& v : lat_ms)
    all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  Point pt;
  pt.clients = clients;
  pt.requests = clients * per_client;
  pt.wall_seconds = seconds;
  pt.requests_per_second = seconds > 0 ? double(pt.requests) / seconds : 0;
  pt.p50_ms = percentile(all, 0.50);
  pt.p99_ms = percentile(all, 0.99);
  return pt;
}

void write_json(const std::string& path, int steps, int per_client,
                double fresh_seconds, const std::vector<Point>& points) {
  telemetry::Json arr = telemetry::Json::array();
  for (const Point& pt : points) {
    telemetry::Json rec = telemetry::Json::object();
    rec.set("clients", telemetry::Json::number(std::int64_t{pt.clients}));
    rec.set("requests", telemetry::Json::number(std::int64_t{pt.requests}));
    rec.set("wall_seconds", telemetry::Json::number(pt.wall_seconds));
    rec.set("requests_per_second",
            telemetry::Json::number(pt.requests_per_second));
    rec.set("cache_hit_p50_ms", telemetry::Json::number(pt.p50_ms));
    rec.set("cache_hit_p99_ms", telemetry::Json::number(pt.p99_ms));
    arr.push_back(std::move(rec));
  }
  telemetry::Json doc = telemetry::Json::object();
  doc.set("bench", telemetry::Json::string("bench_service_throughput"));
  doc.set("steps", telemetry::Json::number(std::int64_t{steps}));
  doc.set("requests_per_client",
          telemetry::Json::number(std::int64_t{per_client}));
  doc.set("warm_jobs", telemetry::Json::number(std::int64_t{kWarmJobs}));
  doc.set("fresh_job_seconds", telemetry::Json::number(fresh_seconds));
  doc.set("points", std::move(arr));
  std::ofstream os(path, std::ios::trunc);
  MV_REQUIRE(os.good(), "cannot open --json file: " << path);
  os << doc.dump() << "\n";
  std::cout << "\nJSON results written: " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) try {
  Args args(argc, argv);
  args.check_known({"steps", "requests", "workers", "scratch", "json"});
  const int steps = int(args.get_int("steps", 4));
  const int per_client = int(args.get_int("requests", 200));
  const int workers = int(args.get_int("workers", 2));
  const std::string scratch = args.get("scratch", "/tmp");
  MV_REQUIRE(steps >= 1, "--steps must be >= 1");
  MV_REQUIRE(per_client >= 1, "--requests must be >= 1");
  MV_REQUIRE(workers >= 1, "--workers must be >= 1");
  set_log_level(LogLevel::kError);  // the daemon narrates; the bench times

  campaign::CampaignSpec spec = campaign::CampaignSpec::from_deck_source(
      sim::DeckSource::from_text(kBaseDeck));
  spec.set_steps(steps);
  // The ledger lives on disk as in production, but cache hits only touch
  // its in-memory index — the file is written once per warm job.
  campaign::ResultStore results(scratch + "/bench_service_ledger.ndjson",
                                /*resume=*/false);

  campaign::ExecutorConfig exec;
  exec.workers = workers;
  exec.scratch_dir = scratch;
  service::ServerConfig config;
  config.max_queued = 2 * kWarmJobs;
  service::ServiceServer server(spec, results, exec, config);
  server.start();

  // Warm phase: one fresh simulation per warm id, timed for the contrast
  // row. Everything after this is answered from the ledger.
  Timer fresh_timer;
  {
    service::ServiceClient client(server.port());
    for (int i = 0; i < kWarmJobs; ++i) {
      const telemetry::Json resp =
          client.submit("", {override_for(i)}, -1, "warm");
      MV_REQUIRE(resp.at("type").as_string() == "result",
                 "warm submit failed: " << resp.dump());
    }
  }
  const double fresh_seconds = fresh_timer.seconds() / kWarmJobs;

  std::vector<Point> points;
  Table table({"clients", "requests", "wall s", "requests/s",
               "cache p50 ms", "cache p99 ms"});
  for (int clients : {1, 2, 4, 8}) {
    const Point pt = hammer(server.port(), clients, per_client);
    points.push_back(pt);
    table.add_row({(long long)pt.clients, (long long)pt.requests,
                   pt.wall_seconds, pt.requests_per_second, pt.p50_ms,
                   pt.p99_ms});
  }
  server.drain();

  table.print(std::cout,
              "Service cache-hit throughput vs client count (every request "
              "is a duplicate submission answered from the ledger)");
  std::cout << "fresh job for contrast: " << fresh_seconds * 1e3
            << " ms simulated (" << steps << " steps); a cache hit costs "
            << points.front().p50_ms << " ms\n";
  if (args.has("json"))
    write_json(args.get("json", ""), steps, per_client, fresh_seconds,
               points);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "bench_service_throughput: " << e.what() << "\n";
  return 1;
}
