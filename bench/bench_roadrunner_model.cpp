// F3 — the headline: the Roadrunner machine model applied to the paper's
// workload (1.0e12 particles on 136e6 voxels across 12,240 PowerXCell 8i),
// predicting the sustained and inner-loop flop rates the paper measured.
// The roofline decomposition shows *why* the number is what it is: the
// particle advance saturates the Cell memory bandwidth — the data-motion
// point the abstract makes against GEMM/MD/MC demo kernels.
#include <iostream>

#include "perf/costs.hpp"
#include "perf/datamotion.hpp"
#include "perf/roadrunner.hpp"
#include "util/csv.hpp"

using namespace minivpic;
using perf::RoadrunnerModel;

int main() {
  const RoadrunnerModel model;
  const auto& cfg = model.config();

  Table machine({"quantity", "value"});
  machine.add_row({std::string("connected units"), (long long)cfg.connected_units});
  machine.add_row({std::string("triblades"),
                   (long long)(cfg.connected_units * cfg.triblades_per_cu)});
  machine.add_row({std::string("PowerXCell 8i chips"), (long long)model.total_cells()});
  machine.add_row({std::string("SPEs"), (long long)model.total_spes()});
  machine.add_row({std::string("SP peak (Pflop/s)"), model.peak_sp_flops() / 1e15});
  machine.add_row({std::string("memory BW per Cell (GB/s)"), cfg.mem_bw_per_cell / 1e9});
  machine.add_row({std::string("particle pipelines per chip"),
                   (long long)cfg.pipelines_per_chip});
  machine.print(std::cout, "Roadrunner (as modeled)");

  const double particles = 1.0e12;
  const double voxels = 136.0e6;
  const auto p = model.predict(particles, voxels);

  std::cout << "\n";
  Table roofline({"phase", "s/step", "% of step"});
  roofline.add_row({std::string("particle advance"), p.t_push, 100 * p.t_push / p.t_step});
  roofline.add_row({std::string("pipeline reduce"), p.t_reduce, 100 * p.t_reduce / p.t_step});
  roofline.add_row({std::string("sort (amortized)"), p.t_sort, 100 * p.t_sort / p.t_step});
  roofline.add_row({std::string("field solve"), p.t_field, 100 * p.t_field / p.t_step});
  roofline.add_row({std::string("IB exchange"), p.t_comm, 100 * p.t_comm / p.t_step});
  roofline.add_row({std::string("DaCS/PCIe staging"), p.t_host, 100 * p.t_host / p.t_step});
  roofline.add_row({std::string("TOTAL"), p.t_step, 100.0});
  roofline.print(std::cout, "modeled step decomposition (trillion-particle run)");

  // The sort-vs-gather tradeoff, modeled: sweeping the sort cadence trades
  // amortized sort time against the gather-disorder penalty on the push.
  // The minimum of this curve is the tuning guidance docs/SORTING.md gives
  // for [control] sort_every.
  Table sortsweep({"sort_every", "disorder", "B/particle eff", "t_sort/step",
                   "t_push/step", "sustained Pflop/s"});
  for (const int period : {1, 5, 10, 20, 50, 100, 400}) {
    perf::RoadrunnerConfig swept = cfg;
    swept.sort_period = period;
    const auto sp = RoadrunnerModel(swept).predict(particles, voxels);
    sortsweep.add_row({(long long)period, sp.gather_disorder,
                       sp.bytes_per_particle_eff, sp.t_sort, sp.t_push,
                       sp.sustained_flops / 1e15});
  }
  sortsweep.print(std::cout,
                  "sort cadence tradeoff (amortized sort vs gather decay)");

  std::cout << "\ninner loop is "
            << (p.memory_bound ? "MEMORY-BANDWIDTH bound" : "compute bound")
            << " — " << cfg.bytes_per_particle << " B/particle at "
            << cfg.flops_per_particle << " flops/particle = "
            << cfg.flops_per_particle / cfg.bytes_per_particle
            << " flops/byte (vs SPE machine balance "
            << cfg.spes_per_cell * cfg.clock_hz * cfg.sp_flops_per_spe_clock() /
                   cfg.mem_bw_per_cell
            << " flops/byte)\n\n";

  Table headline({"metric", "paper", "model", "ratio"});
  headline.add_row({std::string("inner loop Pflop/s (s.p.)"), 0.488,
                    p.inner_loop_flops / 1e15,
                    p.inner_loop_flops / 1e15 / 0.488});
  headline.add_row({std::string("sustained Pflop/s (s.p.)"), 0.374,
                    p.sustained_flops / 1e15,
                    p.sustained_flops / 1e15 / 0.374});
  headline.add_row({std::string("particles (x1e12)"), 1.0, particles / 1e12, 1.0});
  headline.add_row({std::string("voxels (x1e6)"), 136.0, voxels / 1e6, 1.0});
  headline.print(std::cout, "F3: headline reproduction");

  std::cout << "\nstep time " << p.t_step << " s -> "
            << p.particles_per_second / 1e12
            << " trillion particle-advances per second\n";

  // Anchor the flop-counting convention against this host's measured rate.
  const auto host = perf::run_pic_push(1 << 20, 64);
  std::cout << "\nhost kernel sanity: " << host.flops / host.seconds / 1e9
            << " Gflop/s s.p. on one x86 core (" << host.flops_per_byte()
            << " flops/byte algorithmic)\n";
  return 0;
}
