// F1 — weak scaling: fixed work per rank, growing rank count.
//
// Two parts:
//  (a) measured: the deck runs on 1..8 vmpi ranks (threads) with a fixed
//      per-rank slab; we report aggregate particle throughput and — the
//      number that actually predicts scalability — the fraction of each
//      rank's time spent in communication-side phases (migration + source
//      reduction) versus the particle advance. NOTE: this host is a single
//      core, so wall-clock does not speed up with ranks here; the comm
//      fraction and the per-rank work balance are the transferable signal.
//  (b) modeled: the Roadrunner model extrapolates the same per-chip load
//      from 1 connected unit to the full 17-CU machine — the paper's
//      near-linear curve ending at 0.374 Pflop/s sustained.
#include <iostream>
#include <vector>

#include "perf/costs.hpp"
#include "perf/roadrunner.hpp"
#include "sim/simulation.hpp"
#include "util/csv.hpp"
#include "util/timer.hpp"
#include "vmpi/runtime.hpp"

using namespace minivpic;

namespace {

struct RankResult {
  double push_s = 0, comm_s = 0, total_s = 0;
  long long pushed = 0;
};

sim::Deck weak_deck(int ranks) {
  sim::Deck d;
  d.grid.nx = 12 * ranks;  // 12^3 cells per rank along x
  d.grid.ny = d.grid.nz = 12;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.4;
  sim::SpeciesConfig e;
  e.name = "electron";
  e.q = -1;
  e.m = 1;
  e.load.ppc = 24;
  e.load.uth = 0.15;
  d.species.push_back(e);
  sim::SpeciesConfig ion = e;
  ion.name = "ion";
  ion.q = +1;
  ion.m = 1836;
  ion.mobile = false;
  d.species.push_back(ion);
  return d;
}

}  // namespace

int main() {
  const int steps = 20;
  Table measured({"ranks", "global particles", "wall s/step",
                  "aggregate Mpart/s", "comm fraction %", "imbalance %"});

  for (int ranks : {1, 2, 4, 8}) {
    const sim::Deck deck = weak_deck(ranks);
    std::vector<RankResult> results(static_cast<std::size_t>(ranks));
    Timer wall;
    double wall_s = 0;
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      const vmpi::CartTopology topo({ranks, 1, 1}, {true, true, true});
      sim::Simulation sim(deck, &comm, &topo);
      sim.initialize();
      comm.barrier();
      if (comm.rank() == 0) wall.reset();
      sim.run(steps);
      comm.barrier();
      if (comm.rank() == 0) wall_s = wall.seconds();
      RankResult r;
      r.push_s = sim.timings().push.total_seconds();
      r.comm_s = sim.timings().migrate.total_seconds() +
                 sim.timings().sources.total_seconds();
      r.total_s = sim.timings().total_seconds();
      r.pushed = sim.particle_stats().pushed;
      results[std::size_t(comm.rank())] = r;  // distinct slots: no race
    });

    long long pushed = 0;
    double push_s = 0, comm_s = 0, total_s = 0, max_total = 0;
    for (const auto& r : results) {
      pushed += r.pushed;
      push_s += r.push_s;
      comm_s += r.comm_s;
      total_s += r.total_s;
      max_total = std::max(max_total, r.total_s);
    }
    const double imbalance =
        100.0 * (max_total * ranks - total_s) / (max_total * ranks);
    measured.add_row({(long long)ranks, pushed / steps, wall_s / steps,
                      double(pushed) / wall_s / 1e6,
                      100.0 * comm_s / total_s, imbalance});
  }
  measured.print(std::cout,
                 "F1a: measured weak scaling over vmpi ranks (single core "
                 "host: wall time serializes; watch the comm fraction)");

  // Model extrapolation to Roadrunner CU counts.
  const perf::RoadrunnerModel model;
  const double per_chip_particles = 1.0e12 / model.total_cells();
  const double per_chip_voxels = 136.0e6 / model.total_cells();
  Table projected({"CUs", "Cell chips", "particles", "inner Pflop/s",
                   "sustained Pflop/s", "parallel eff %"});
  double base_rate = 0;
  for (int cu : {1, 2, 4, 8, 12, 17}) {
    const int chips = cu * 180 * 4;
    const auto p = model.predict(per_chip_particles * chips,
                                 per_chip_voxels * chips, chips);
    if (cu == 1) base_rate = p.sustained_flops / chips;
    projected.add_row({(long long)cu, (long long)chips,
                       per_chip_particles * chips, p.inner_loop_flops / 1e15,
                       p.sustained_flops / 1e15,
                       100.0 * (p.sustained_flops / chips) / base_rate});
  }
  std::cout << "\n";
  projected.print(std::cout,
                  "F1b: Roadrunner model weak scaling (paper: near-linear to "
                  "0.374 Pflop/s at 17 CUs)");
  return 0;
}
