// JobQueue: the thread-safe heart of the campaign executor. Jobs move
// through pending -> running -> done | failed, with two distinct re-entry
// paths back to pending:
//
//  * fail(): an attempt threw. Retried with exponential backoff until the
//    retry budget (max_attempts) is exhausted, then the job is failed.
//  * yield_resume(): an attempt hit its wall-time budget after writing a
//    checkpoint. Requeued immediately (no backoff — nothing is wrong with
//    the job) carrying the checkpoint prefix and step so the next attempt
//    restores instead of reinitializing. Bounded by max_resumes so a job
//    that cannot make progress inside its budget eventually fails instead
//    of cycling forever; a resume is NOT a retry (it made progress).
//
// acquire() blocks until a job is runnable, the earliest backoff deadline
// passes, or every job is terminal (returns nullopt -> worker exits). All
// timing uses steady_clock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "campaign/spec.hpp"

namespace minivpic::campaign {

/// Failure/timeout handling knobs shared by the queue and the executor.
struct RetryPolicy {
  int max_attempts = 3;         ///< failure attempts per job (>= 1)
  double backoff_seconds = 0.1; ///< delay before retry #2
  double backoff_factor = 2.0;  ///< multiplier per further retry
  double timeout_seconds = 0;   ///< per-attempt wall budget; 0 = unlimited
  int max_resumes = 64;         ///< timeout->checkpoint->resume cycles per job
};

enum class JobState { kPending, kRunning, kDone, kFailed };
const char* job_state_name(JobState s);

/// A job handed to a worker, with everything the attempt needs to know.
struct Lease {
  Job job;
  int attempt = 1;               ///< 1-based failure-attempt number
  int resumes = 0;               ///< resume cycles consumed so far
  std::int64_t resume_step = -1; ///< restore from this step; < 0 = fresh
  std::string resume_prefix;     ///< checkpoint prefix when resuming
};

class JobQueue {
 public:
  JobQueue(std::vector<Job> jobs, RetryPolicy policy);

  /// An *open* queue for the service executor: starts empty, accepts push()
  /// until close(), and acquire() blocks while the queue is open even when
  /// nothing is currently runnable.
  explicit JobQueue(RetryPolicy policy);

  const RetryPolicy& policy() const { return policy_; }

  /// Adds a job to an open queue (external service submissions). A terminal
  /// entry with the same id is replaced — resubmitting a failed job re-runs
  /// it — while a live duplicate throws (the service coalesces those before
  /// they reach the queue). A non-negative `resume_step` seeds a
  /// checkpoint-resume lease: how a drained daemon restarts sliced jobs.
  void push(Job job, std::int64_t resume_step = -1,
            std::string resume_prefix = {});

  /// Stops handing out leases: acquire() returns nullopt immediately, while
  /// running attempts may still complete/fail/yield (their entries stay for
  /// pending_leases()). The first half of a graceful drain.
  void freeze();

  /// No more push(); acquire() returns nullopt once nothing is runnable.
  void close();

  /// Blocks until a job is runnable and leases it, or returns nullopt once
  /// every job is terminal (and the queue is closed and not frozen). Safe
  /// to call from many worker threads.
  std::optional<Lease> acquire();

  /// Removes a terminal (done/failed) entry so a long-lived service queue
  /// does not grow without bound; the cumulative done/failed counts()
  /// survive the removal. No-op when the id is absent or still live.
  void erase_terminal(const std::string& id);

  /// Pending (leasable, not running, not terminal) jobs with their resume
  /// state — what a draining service persists for restart.
  std::vector<Lease> pending_leases() const;

  /// Terminal success for a leased job.
  void complete(const std::string& id);

  /// Attempt failed: requeues with backoff and returns true, or — when the
  /// retry budget is exhausted — marks the job failed and returns false.
  bool fail(const std::string& id, const std::string& error);

  /// Attempt hit its wall budget after checkpointing at `step` under
  /// `prefix`: requeues for resume and returns true, or — when the resume
  /// budget is exhausted — marks the job failed and returns false.
  bool yield_resume(const std::string& id, const std::string& prefix,
                    std::int64_t step);

  struct Counts {
    int pending = 0, running = 0, done = 0, failed = 0;
    int retries = 0;  ///< failure re-runs handed out
    int resumes = 0;  ///< resume re-runs handed out
    int total() const { return pending + running + done + failed; }
    bool finished() const { return pending == 0 && running == 0; }
  };
  Counts counts() const;

  /// Terminal per-job state (id, state, attempts, last error) snapshot.
  struct JobStatus {
    std::string id;
    std::string label;
    JobState state = JobState::kPending;
    int attempts = 0;
    int resumes = 0;
    std::string last_error;
  };
  std::vector<JobStatus> snapshot() const;

 private:
  using SteadyTime = std::chrono::steady_clock::time_point;

  struct Entry {
    Job job;
    JobState state = JobState::kPending;
    int attempts = 0;  ///< leases handed out minus resume leases
    int resumes = 0;
    SteadyTime not_before{};  ///< backoff gate while pending
    std::int64_t resume_step = -1;
    std::string resume_prefix;
    std::string last_error;
  };

  Entry* find(const std::string& id);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  RetryPolicy policy_;
  bool open_ = false;    ///< service mode: push() allowed, acquire() waits
  bool frozen_ = false;  ///< drain: no further leases
  int done_ = 0;         ///< cumulative, survives erase_terminal()
  int failed_ = 0;       ///< cumulative, survives erase_terminal()
  int retries_handed_ = 0;
  int resumes_handed_ = 0;
};

}  // namespace minivpic::campaign
