#include "campaign/queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace minivpic::campaign {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kPending: return "pending";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

JobQueue::JobQueue(std::vector<Job> jobs, RetryPolicy policy)
    : policy_(policy) {
  MV_REQUIRE(policy_.max_attempts >= 1, "retry policy needs max_attempts >= 1");
  MV_REQUIRE(policy_.max_resumes >= 0, "retry policy needs max_resumes >= 0");
  MV_REQUIRE(policy_.timeout_seconds >= 0,
             "retry policy needs timeout_seconds >= 0");
  entries_.reserve(jobs.size());
  for (Job& j : jobs) {
    for (const Entry& e : entries_)
      MV_REQUIRE(e.job.id != j.id,
                 "duplicate campaign job id " << j.id << " (" << j.label
                                              << ")");
    Entry e;
    e.job = std::move(j);
    entries_.push_back(std::move(e));
  }
}

JobQueue::JobQueue(RetryPolicy policy) : JobQueue({}, policy) { open_ = true; }

void JobQueue::push(Job job, std::int64_t resume_step,
                    std::string resume_prefix) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MV_REQUIRE(open_, "push() on a closed campaign queue");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].job.id != job.id) continue;
      const JobState s = entries_[i].state;
      MV_REQUIRE(s == JobState::kDone || s == JobState::kFailed,
                 "push() of live campaign job id " << job.id
                                                   << " (coalesce upstream)");
      entries_.erase(entries_.begin() + std::ptrdiff_t(i));
      break;
    }
    Entry e;
    e.job = std::move(job);
    e.resume_step = resume_step;
    e.resume_prefix = std::move(resume_prefix);
    entries_.push_back(std::move(e));
  }
  cv_.notify_all();
}

void JobQueue::freeze() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    frozen_ = true;
  }
  cv_.notify_all();
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = false;
  }
  cv_.notify_all();
}

void JobQueue::erase_terminal(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].job.id != id) continue;
    if (entries_[i].state == JobState::kDone ||
        entries_[i].state == JobState::kFailed) {
      entries_.erase(entries_.begin() + std::ptrdiff_t(i));
    }
    return;
  }
}

std::vector<Lease> JobQueue::pending_leases() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Lease> out;
  for (const Entry& e : entries_) {
    if (e.state != JobState::kPending) continue;
    Lease lease;
    lease.job = e.job;
    lease.attempt = std::max(1, e.attempts);
    lease.resumes = e.resumes;
    lease.resume_step = e.resume_step;
    lease.resume_prefix = e.resume_prefix;
    out.push_back(std::move(lease));
  }
  return out;
}

JobQueue::Entry* JobQueue::find(const std::string& id) {
  for (Entry& e : entries_)
    if (e.job.id == id) return &e;
  MV_REQUIRE(false, "unknown campaign job id " << id);
  return nullptr;
}

std::optional<Lease> JobQueue::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (frozen_) return std::nullopt;
    const auto now = std::chrono::steady_clock::now();
    Entry* ready = nullptr;
    std::optional<SteadyTime> earliest;
    bool any_pending_or_running = false;
    for (Entry& e : entries_) {
      if (e.state == JobState::kRunning) {
        any_pending_or_running = true;
        continue;
      }
      if (e.state != JobState::kPending) continue;
      any_pending_or_running = true;
      if (e.not_before <= now) {
        ready = &e;
        break;
      }
      if (!earliest || e.not_before < *earliest) earliest = e.not_before;
    }
    if (ready != nullptr) {
      ready->state = JobState::kRunning;
      const bool resuming = ready->resume_step >= 0;
      if (!resuming) ++ready->attempts;
      Lease lease;
      lease.job = ready->job;
      lease.attempt = std::max(1, ready->attempts);
      lease.resumes = ready->resumes;
      lease.resume_step = ready->resume_step;
      lease.resume_prefix = ready->resume_prefix;
      return lease;
    }
    if (!any_pending_or_running && !open_) return std::nullopt;
    // Nothing runnable right now: wait for a state change (complete/fail/
    // yield — or push/freeze/close on an open queue — wake us) or for the
    // earliest backoff gate to open.
    if (earliest) {
      cv_.wait_until(lock, *earliest);
    } else {
      cv_.wait(lock);
    }
  }
}

void JobQueue::complete(const std::string& id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* e = find(id);
    MV_REQUIRE(e->state == JobState::kRunning,
               "complete() on a job that is not running: " << id);
    e->state = JobState::kDone;
    e->last_error.clear();
    ++done_;
  }
  cv_.notify_all();
}

bool JobQueue::fail(const std::string& id, const std::string& error) {
  bool will_retry = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* e = find(id);
    MV_REQUIRE(e->state == JobState::kRunning,
               "fail() on a job that is not running: " << id);
    e->last_error = error;
    // A failed attempt restarts the job from scratch — a checkpoint written
    // before a later crash is not trusted.
    e->resume_step = -1;
    e->resume_prefix.clear();
    if (e->attempts >= policy_.max_attempts) {
      e->state = JobState::kFailed;
      ++failed_;
    } else {
      e->state = JobState::kPending;
      double delay = policy_.backoff_seconds;
      for (int i = 1; i < e->attempts; ++i) delay *= policy_.backoff_factor;
      e->not_before = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<SteadyTime::duration>(
                          std::chrono::duration<double>(delay));
      ++retries_handed_;
      will_retry = true;
    }
  }
  cv_.notify_all();
  return will_retry;
}

bool JobQueue::yield_resume(const std::string& id, const std::string& prefix,
                            std::int64_t step) {
  bool accepted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* e = find(id);
    MV_REQUIRE(e->state == JobState::kRunning,
               "yield_resume() on a job that is not running: " << id);
    if (e->resumes >= policy_.max_resumes) {
      e->state = JobState::kFailed;
      ++failed_;
      e->last_error = "resume budget exhausted (" +
                      std::to_string(policy_.max_resumes) +
                      " wall-time yields)";
    } else {
      ++e->resumes;
      ++resumes_handed_;
      e->state = JobState::kPending;
      e->not_before = {};  // no backoff: the attempt made progress
      e->resume_step = step;
      e->resume_prefix = prefix;
      accepted = true;
    }
  }
  cv_.notify_all();
  return accepted;
}

JobQueue::Counts JobQueue::counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counts c;
  for (const Entry& e : entries_) {
    switch (e.state) {
      case JobState::kPending: ++c.pending; break;
      case JobState::kRunning: ++c.running; break;
      case JobState::kDone: break;   // cumulative below
      case JobState::kFailed: break; // cumulative below
    }
  }
  // Cumulative so erase_terminal() (service garbage collection) does not
  // make finished work disappear from the tallies. In batch mode nothing
  // is ever erased and these equal the entry scan.
  c.done = done_;
  c.failed = failed_;
  c.retries = retries_handed_;
  c.resumes = resumes_handed_;
  return c;
}

std::vector<JobQueue::JobStatus> JobQueue::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    out.push_back({e.job.id, e.job.label, e.state, e.attempts, e.resumes,
                   e.last_error});
  }
  return out;
}

}  // namespace minivpic::campaign
