// CampaignExecutor: a worker pool that drives a CampaignSpec's jobs to
// completion. Each job runs as an isolated Simulation inside its own
// in-process vmpi world (vmpi::run), so N jobs execute concurrently from N
// worker threads with no shared simulation state — the concurrency audit
// in tests/vmpi/test_stress.cpp pins down that worlds compose this way.
//
// Thread budget: a campaign's total concurrency is workers x ranks_per_job
// x pipelines_per_job. The executor clamps the worker count so that product
// never exceeds max_threads (default: the hardware thread count) — the
// campaign-level analogue of the paper's "one pipeline per SPE" discipline:
// oversubscription makes every job slower instead of any job faster.
//
// Failure handling (see queue.hpp): a throwing attempt is retried with
// exponential backoff up to the retry budget; an attempt that exceeds its
// wall-time budget checkpoints (v2 checksummed format, sim/checkpoint.hpp),
// yields its worker, and is requeued to resume from that checkpoint —
// long jobs make progress in bounded slices without starving the queue.
//
// Telemetry: pass a MetricsRegistry to get the campaign.* counters and the
// queue-depth gauge of docs/OBSERVABILITY.md.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/queue.hpp"
#include "campaign/results.hpp"
#include "campaign/spec.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"

namespace minivpic::sim {
class Simulation;
class ReflectivityProbe;
}

namespace minivpic::campaign {

struct ExecutorConfig {
  int workers = 1;           ///< concurrent jobs
  int ranks_per_job = 1;     ///< vmpi world size per job
  int pipelines_per_job = 1; ///< Deck::pipelines per job (>= 1; no "auto")
  /// Cap on workers x ranks_per_job x pipelines_per_job; 0 = one per
  /// hardware thread. Workers are clamped to fit.
  int max_threads = 0;
  RetryPolicy retry;
  /// Directory for per-job checkpoint sets (timeout/resume); must exist.
  std::string scratch_dir = ".";
  /// Per-call deadline (seconds) for every blocking vmpi call inside a
  /// job's world; 0 = wait forever (the pre-fault-tolerance default). A
  /// wedged or dead rank then surfaces as vmpi::CommError within one
  /// deadline and the job takes the retry path instead of hanging its
  /// worker. See docs/FAULTS.md.
  double comm_timeout_seconds = 0;
  /// CRC32-frame + sequence-number every vmpi message inside job worlds
  /// (detects corruption, duplication and loss; payloads untouched).
  bool comm_integrity = false;
  /// Optional campaign.* counters + queue-depth gauge sink. Must outlive
  /// run(). Updated under an internal mutex (registries are not
  /// thread-safe).
  telemetry::MetricsRegistry* metrics = nullptr;
  /// External guard for `metrics`: when the registry is shared with another
  /// concurrent producer/reader (the service layer's service.* metrics and
  /// its metrics endpoint), every party must serialize on ONE mutex —
  /// point this at it. Null = the executor's internal mutex (batch mode).
  std::mutex* metrics_mutex = nullptr;

  /// When non-empty, every attempt runs with per-rank flight recorders
  /// (telemetry/recorder.hpp) wired into the job's world; a failed attempt
  /// dumps `<recorder_dir>/<job-id>.attempt<k>.rank<r>.fdr` so the
  /// forensics of a flaky job land next to the result ledger and feed the
  /// postmortem tool. Successful attempts leave no dumps behind. The
  /// directory must exist.
  std::string recorder_dir;
  /// Ring capacity (events per rank) for campaign flight recorders.
  std::size_t recorder_events = telemetry::Recorder::kDefaultCapacity;

  // -- hooks (tests, fault drills, science diagnostics) --------------------
  /// Called on every rank after every step; a throw fails the attempt and
  /// takes the retry path (sim::FaultInjector composes here).
  std::function<void(sim::Simulation&, const Job&, int attempt)> per_step_hook;
  /// Called on every rank when a job's final step completes, while the
  /// simulation is still alive — collectives are safe. `probe` is the job's
  /// reflectivity probe (null when the job has none); `result` is non-null
  /// on rank 0 only, and hooks attach science extras there.
  std::function<void(sim::Simulation&, const Job&,
                     const sim::ReflectivityProbe* probe, JobResult* result)>
      on_complete;
  /// Called (from a worker thread) after every terminal job's record has
  /// been appended to the ResultStore — done and failed alike. The service
  /// front door resolves waiting clients here. Fires in both batch and
  /// service mode.
  std::function<void(const JobResult&)> on_result;
};

struct CampaignSummary {
  int total = 0;    ///< expanded jobs
  int skipped = 0;  ///< already done in the ResultStore (resume)
  int done = 0;
  int failed = 0;
  int retries = 0;
  int resumes = 0;
  int workers = 0;  ///< effective (post-clamp) worker count
  double wall_seconds = 0;
  double jobs_per_hour = 0;  ///< done / wall hours
  bool all_done() const { return failed == 0 && done + skipped == total; }
};

class CampaignExecutor {
 public:
  CampaignExecutor(const CampaignSpec& spec, ExecutorConfig config);

  /// Worker count after the thread-budget clamp.
  int effective_workers() const { return workers_; }

  /// Expands the spec, skips jobs the store already holds as done, runs
  /// everything else to a terminal state, and appends one record per
  /// executed job. Blocks until the queue drains.
  CampaignSummary run(ResultStore& results);

  // -- service mode (external submission; see docs/SERVICE.md) -------------
  /// Starts the worker pool against an open queue that submit() feeds.
  /// Results land in `results` exactly as in run(); the spec contributes
  /// the base deck and defaults, while submitted jobs may carry their own
  /// deck text (Job::deck_text). Mutually exclusive with run().
  void start(ResultStore& results);

  /// Enqueues one externally built job (id from campaign::job_id). A
  /// non-negative `resume_step` restarts a drained checkpoint-sliced job
  /// from its checkpoint under `resume_prefix`.
  void submit(const Job& job, std::int64_t resume_step = -1,
              const std::string& resume_prefix = {});

  /// Pending/running totals of the service queue (dispatch gating).
  JobQueue::Counts queue_counts() const;

  /// Graceful drain: stop handing out leases, let in-flight attempts reach
  /// their natural end (a wall-time-sliced attempt checkpoints as usual),
  /// join the pool, and return the still-pending jobs — with any resume
  /// state — for the caller to persist and resubmit after restart.
  std::vector<Lease> stop();

 private:
  struct AttemptOutcome {
    JobResult result;
    bool timed_out = false;
    std::int64_t ckpt_step = -1;
    bool failed = false;
    std::string error;
    double seconds = 0;
    std::int64_t steps_advanced = 0;
  };

  AttemptOutcome run_attempt(const Lease& lease);
  void worker_loop(JobQueue& queue, ResultStore& results);
  void finish_terminal(JobQueue& queue, const JobResult& r);
  std::string scratch_prefix(const Job& job) const;
  void count(const char* counter, double d = 1.0);
  void set_queue_gauge(const JobQueue& queue);
  std::mutex& metrics_lock();

  const CampaignSpec* spec_;
  ExecutorConfig config_;
  int workers_ = 1;

  std::mutex metrics_mu_;           ///< guards config_.metrics (no override)
  std::mutex seconds_mu_;           ///< guards seconds_acc_
  std::map<std::string, double> seconds_acc_;  ///< wall seconds per job id

  // Service mode (start/submit/stop).
  bool service_ = false;
  std::unique_ptr<JobQueue> service_queue_;
  ResultStore* service_results_ = nullptr;
  std::vector<std::thread> service_pool_;
};

}  // namespace minivpic::campaign
