#include "campaign/results.hpp"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace minivpic::campaign {

namespace {

/// Built-in numeric result fields addressable as curve metrics.
bool builtin_metric(const JobResult& r, const std::string& name, double* out) {
  if (name == "reflectivity") {
    if (r.reflectivity < 0) return false;
    *out = r.reflectivity;
    return true;
  }
  if (name == "energy_total") { *out = r.energy_total; return true; }
  if (name == "kinetic_total") { *out = r.kinetic_total; return true; }
  if (name == "particles_per_sec") { *out = r.particles_per_sec; return true; }
  if (name == "seconds") { *out = r.seconds; return true; }
  return false;
}

}  // namespace

telemetry::Json result_to_json(const JobResult& r) {
  using telemetry::Json;
  Json j = Json::object();
  j.set("type", Json::string("job_result"));
  j.set("schema", Json::number(std::int64_t{kResultSchemaVersion}));
  j.set("id", Json::string(r.id));
  j.set("label", Json::string(r.label));
  Json ovs = Json::object();
  for (const sim::DeckOverride& ov : r.overrides)
    ovs.set(ov.section + "." + ov.key, Json::string(ov.value));
  j.set("overrides", std::move(ovs));
  j.set("status", Json::string(r.status));
  j.set("attempts", Json::number(std::int64_t{r.attempts}));
  j.set("resumes", Json::number(std::int64_t{r.resumes}));
  j.set("steps", Json::number(r.steps));
  j.set("seconds", Json::number(r.seconds));
  Json metrics = Json::object();
  if (r.reflectivity >= 0)
    metrics.set("reflectivity", Json::number(r.reflectivity));
  metrics.set("energy_total", Json::number(r.energy_total));
  metrics.set("kinetic_total", Json::number(r.kinetic_total));
  metrics.set("particles", Json::number(r.particles));
  metrics.set("particles_per_sec", Json::number(r.particles_per_sec));
  j.set("metrics", std::move(metrics));
  if (!r.extra.empty()) {
    Json extra = Json::object();
    for (const auto& [k, v] : r.extra) extra.set(k, Json::number(v));
    j.set("extra", std::move(extra));
  }
  if (!r.error.empty()) j.set("error", Json::string(r.error));
  return j;
}

JobResult result_from_json(const telemetry::Json& j) {
  MV_REQUIRE(j.is_object() && j.at("type").as_string() == "job_result",
             "campaign result record: not a job_result object");
  MV_REQUIRE(std::int64_t(j.at("schema").as_number()) == kResultSchemaVersion,
             "campaign result record: unsupported schema "
                 << j.at("schema").as_number());
  JobResult r;
  r.id = j.at("id").as_string();
  r.label = j.at("label").as_string();
  for (const auto& [key, value] : j.at("overrides").members()) {
    r.overrides.push_back(sim::parse_override(key + "=" + value.as_string()));
  }
  r.status = j.at("status").as_string();
  MV_REQUIRE(r.status == "done" || r.status == "failed",
             "campaign result record: unknown status '" << r.status << "'");
  r.attempts = int(j.at("attempts").as_number());
  r.resumes = int(j.at("resumes").as_number());
  r.steps = std::int64_t(j.at("steps").as_number());
  r.seconds = j.at("seconds").as_number();
  const telemetry::Json& m = j.at("metrics");
  if (const auto* v = m.find("reflectivity")) r.reflectivity = v->as_number();
  r.energy_total = m.at("energy_total").as_number();
  r.kinetic_total = m.at("kinetic_total").as_number();
  r.particles = std::int64_t(m.at("particles").as_number());
  r.particles_per_sec = m.at("particles_per_sec").as_number();
  if (const auto* extra = j.find("extra")) {
    for (const auto& [k, v] : extra->members())
      r.extra.emplace_back(k, v.as_number());
  }
  if (const auto* err = j.find("error")) r.error = err->as_string();
  return r;
}

ResultStore::ResultStore(std::string path, bool resume)
    : path_(std::move(path)) {
  if (resume) {
    for (JobResult& r : read_all(path_)) {
      ++records_;
      if (r.status == "done") completed_.insert(r.id);
      // File order = append order, so the last record per id wins — the
      // index answers find() without ever rescanning the ledger.
      index_[r.id] = std::move(r);
    }
  } else {
    std::ofstream out(path_, std::ios::trunc);
    MV_REQUIRE(out.good(), "cannot open results file: " << path_);
  }
}

void ResultStore::append(const JobResult& r) {
  const std::string line = result_to_json(r).dump();
  std::lock_guard<std::mutex> lock(mu_);
  // Reopened per record: append + flush + close is the simplest sequence
  // that leaves at most one (trailing, tolerated) partial line on a crash.
  std::ofstream out(path_, std::ios::app);
  MV_REQUIRE(out.good(), "cannot append to results file: " << path_);
  out << line << "\n";
  out.flush();
  MV_REQUIRE(out.good(), "write to results file failed: " << path_);
  ++records_;
  index_[r.id] = r;
}

std::optional<JobResult> ResultStore::find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::int64_t ResultStore::records_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::vector<JobResult> ResultStore::read_all(const std::string& path) {
  std::vector<JobResult> out;
  std::ifstream in(path);
  if (!in.good()) return out;  // no file yet: an empty (fresh) campaign
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    try {
      out.push_back(result_from_json(telemetry::Json::parse(lines[i])));
    } catch (const Error& e) {
      // A crash mid-append leaves at most one partial trailing line; that
      // job simply reruns. Corruption anywhere else is a real problem.
      MV_REQUIRE(i + 1 == lines.size(),
                 "results file " << path << " line " << (i + 1)
                                 << ": " << e.what());
      MV_LOG_WARN << "results file " << path
                  << ": dropping partial trailing line (" << e.what() << ")";
    }
  }
  return out;
}

std::vector<CurvePoint> aggregate_curve(const std::vector<JobResult>& results,
                                        const std::string& axis_key,
                                        const std::string& metric) {
  std::map<double, std::vector<double>> by_x;
  for (const JobResult& r : results) {
    if (r.status != "done") continue;
    const sim::DeckOverride* axis = nullptr;
    for (const sim::DeckOverride& ov : r.overrides)
      if (ov.section + "." + ov.key == axis_key) axis = &ov;
    if (axis == nullptr) continue;
    char* end = nullptr;
    const double x = std::strtod(axis->value.c_str(), &end);
    if (end == nullptr || *end != '\0') continue;  // non-numeric axis value
    double y = 0;
    bool have = builtin_metric(r, metric, &y);
    if (!have) {
      for (const auto& [k, v] : r.extra)
        if (k == metric) { y = v; have = true; }
    }
    if (!have) continue;
    by_x[x].push_back(y);
  }
  std::vector<CurvePoint> curve;
  curve.reserve(by_x.size());
  for (const auto& [x, ys] : by_x) {
    CurvePoint p;
    p.x = x;
    p.n = int(ys.size());
    p.min = p.max = ys.front();
    double sum = 0;
    for (const double y : ys) {
      sum += y;
      p.min = std::min(p.min, y);
      p.max = std::max(p.max, y);
    }
    p.mean = sum / double(ys.size());
    curve.push_back(p);
  }
  return curve;
}

void write_curve_csv(const std::string& path, const std::string& axis_key,
                     const std::string& metric,
                     const std::vector<CurvePoint>& curve) {
  std::ofstream out(path, std::ios::trunc);
  MV_REQUIRE(out.good(), "cannot open curve file: " << path);
  out << axis_key << "," << metric << "_mean," << metric << "_min,"
      << metric << "_max,jobs\n";
  out.precision(17);
  for (const CurvePoint& p : curve) {
    out << p.x << "," << p.mean << "," << p.min << "," << p.max << "," << p.n
        << "\n";
  }
  MV_REQUIRE(out.good(), "write to curve file failed: " << path);
}

telemetry::Json curve_to_json(const std::string& axis_key,
                              const std::string& metric,
                              const std::vector<CurvePoint>& curve) {
  using telemetry::Json;
  Json j = Json::object();
  j.set("type", Json::string("campaign_curve"));
  j.set("schema", Json::number(std::int64_t{kResultSchemaVersion}));
  j.set("axis", Json::string(axis_key));
  j.set("metric", Json::string(metric));
  Json points = Json::array();
  for (const CurvePoint& p : curve) {
    Json pt = Json::object();
    pt.set("x", Json::number(p.x));
    pt.set("mean", Json::number(p.mean));
    pt.set("min", Json::number(p.min));
    pt.set("max", Json::number(p.max));
    pt.set("jobs", Json::number(std::int64_t{p.n}));
    points.push_back(std::move(pt));
  }
  j.set("points", std::move(points));
  return j;
}

}  // namespace minivpic::campaign
