// ResultStore: the campaign's crash-safe ledger. One NDJSON line per
// terminal job (schema v1, see docs/CAMPAIGNS.md), appended and flushed as
// each job finishes, so a killed campaign keeps every result written so far
// — and a restarted campaign scans the file to skip jobs already done,
// which composes with the stable content-hashed job ids of CampaignSpec.
//
// Record shape:
//   {"type":"job_result","schema":1,"id":"<16hex>","label":"laser.a0=0.10",
//    "overrides":{"laser.a0":"0.10"},"status":"done","attempts":1,
//    "resumes":0,"steps":2000,"seconds":3.2,
//    "metrics":{"reflectivity":0.18,"energy_total":...,"kinetic_total":...,
//               "particles":123456,"particles_per_sec":1.2e7},
//    "extra":{...},"error":"..."}   # extra/error only when present
//
// Aggregation: aggregate_curve() folds done jobs into the paper's science
// output — the observable (reflectivity by default) as a function of one
// axis value, with min/mean/max over jobs sharing an x (seeds, duplicate
// runs) — written as CSV or JSON.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "telemetry/json.hpp"

namespace minivpic::campaign {

inline constexpr int kResultSchemaVersion = 1;

/// Terminal outcome of one job.
struct JobResult {
  std::string id;
  std::string label;
  std::vector<sim::DeckOverride> overrides;
  std::string status = "done";  ///< "done" | "failed"
  int attempts = 1;
  int resumes = 0;
  std::int64_t steps = 0;
  double seconds = 0;           ///< summed wall seconds across attempts
  double reflectivity = -1;     ///< < 0 = no probe configured
  double energy_total = 0;
  double kinetic_total = 0;
  std::int64_t particles = 0;
  double particles_per_sec = 0; ///< StepSampler formula (push-phase rate)
  std::string error;            ///< failed jobs: the last attempt's error
  /// Science extras a completion hook attached (spectrum fractions, ...).
  std::vector<std::pair<std::string, double>> extra;
};

telemetry::Json result_to_json(const JobResult& r);
JobResult result_from_json(const telemetry::Json& j);

class ResultStore {
 public:
  /// Opens `path` for appending. With resume = false any existing file is
  /// truncated; with resume = true existing records are loaded first and
  /// their done-job ids become completed_ids(). A trailing partial line
  /// (crash mid-append) is tolerated and dropped; any other malformed line
  /// throws.
  ResultStore(std::string path, bool resume);

  const std::string& path() const { return path_; }

  /// Ids recorded as done before this store was opened (resume mode).
  const std::set<std::string>& completed_ids() const { return completed_; }

  /// Appends one record and flushes (thread-safe).
  void append(const JobResult& r);

  /// O(1) id -> latest-record lookup against the in-memory index built at
  /// open (resume mode) and maintained by append() — the service cache-hit
  /// path, which must not rescan the NDJSON ledger per query. Returns the
  /// *latest* record for the id (a failed rerun shadows an older failure);
  /// nullopt when the id has never been ledgered. Thread-safe.
  std::optional<JobResult> find(const std::string& id) const;

  std::int64_t records_written() const;

  /// Parses every record of a results file (same tolerance as resume).
  static std::vector<JobResult> read_all(const std::string& path);

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::int64_t records_ = 0;
  std::set<std::string> completed_;
  std::map<std::string, JobResult> index_;  ///< id -> latest record
};

/// One point of an aggregated campaign curve.
struct CurvePoint {
  double x = 0;     ///< numeric axis value
  double mean = 0;  ///< mean observable over jobs at this x
  double min = 0;
  double max = 0;
  int n = 0;        ///< jobs folded into this point
};

/// Folds done jobs into observable-vs-axis points, sorted by x. `axis_key`
/// is the dotted override key ("laser.a0"); `metric` is "reflectivity",
/// a built-in result field, or an extra key. Jobs missing the axis or the
/// metric are skipped.
std::vector<CurvePoint> aggregate_curve(const std::vector<JobResult>& results,
                                        const std::string& axis_key,
                                        const std::string& metric =
                                            "reflectivity");

/// Writes an aggregated curve as CSV (header: axis, mean, min, max, n).
void write_curve_csv(const std::string& path, const std::string& axis_key,
                     const std::string& metric,
                     const std::vector<CurvePoint>& curve);

/// The same curve as a JSON object (schema v1).
telemetry::Json curve_to_json(const std::string& axis_key,
                              const std::string& metric,
                              const std::vector<CurvePoint>& curve);

}  // namespace minivpic::campaign
