#include "campaign/executor.hpp"

#include <algorithm>
#include <optional>
#include <thread>
#include <vector>

#include "sim/checkpoint.hpp"
#include "sim/diagnostics.hpp"
#include "sim/simulation.hpp"
#include "telemetry/sampler.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/pipeline.hpp"
#include "util/timer.hpp"
#include "vmpi/cart.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::campaign {

CampaignExecutor::CampaignExecutor(const CampaignSpec& spec,
                                   ExecutorConfig config)
    : spec_(&spec), config_(std::move(config)) {
  MV_REQUIRE(config_.workers >= 1, "campaign needs at least one worker");
  MV_REQUIRE(config_.ranks_per_job >= 1, "campaign needs >= 1 rank per job");
  MV_REQUIRE(config_.pipelines_per_job >= 1,
             "campaign needs an explicit pipelines_per_job >= 1 (the thread "
             "budget cannot resolve 'auto' per job)");
  const int budget = config_.max_threads > 0 ? config_.max_threads
                                             : Pipeline::hardware_pipelines();
  const int per_job = config_.ranks_per_job * config_.pipelines_per_job;
  MV_REQUIRE(per_job <= budget || config_.workers == 1,
             "one job already needs " << per_job << " threads but the budget "
                                      << "is " << budget);
  workers_ = std::min(config_.workers, std::max(1, budget / per_job));
  if (workers_ < config_.workers) {
    MV_LOG_WARN << "campaign: clamping " << config_.workers << " workers to "
                << workers_ << " (thread budget " << budget << " = workers x "
                << config_.ranks_per_job << " rank(s) x "
                << config_.pipelines_per_job << " pipeline(s))";
  }
  // Pre-register every campaign metric on the caller's thread: registry
  // lookup/creation is not thread-safe, so workers only touch existing
  // Counter/Gauge objects (under metrics_mu_).
  if (config_.metrics != nullptr) {
    auto& m = *config_.metrics;
    m.counter("campaign.jobs.done", "count");
    m.counter("campaign.jobs.failed", "count");
    m.counter("campaign.jobs.skipped", "count");
    m.counter("campaign.failures", "count");
    m.counter("campaign.retries", "count");
    m.counter("campaign.resumes", "count");
    m.counter("campaign.steps", "count");
    m.gauge("campaign.queue.depth", "count");
    m.gauge("campaign.workers", "count");
  }
}

std::string CampaignExecutor::scratch_prefix(const Job& job) const {
  return config_.scratch_dir + "/campaign_" + job.id + ".ckpt";
}

std::mutex& CampaignExecutor::metrics_lock() {
  return config_.metrics_mutex != nullptr ? *config_.metrics_mutex
                                          : metrics_mu_;
}

void CampaignExecutor::count(const char* counter, double d) {
  if (config_.metrics == nullptr) return;
  std::lock_guard<std::mutex> lock(metrics_lock());
  config_.metrics->counter(counter).add(d);
}

void CampaignExecutor::set_queue_gauge(const JobQueue& queue) {
  if (config_.metrics == nullptr) return;
  const JobQueue::Counts c = queue.counts();
  std::lock_guard<std::mutex> lock(metrics_lock());
  config_.metrics->gauge("campaign.queue.depth")
      .set(double(c.pending + c.running));
}

CampaignExecutor::AttemptOutcome CampaignExecutor::run_attempt(
    const Lease& lease) {
  AttemptOutcome out;
  Timer wall;
  const std::string prefix = scratch_prefix(lease.job);

  // Per-attempt flight recorders: one ring per rank, dumped only when the
  // attempt fails (the success path leaves no `.fdr` files behind).
  std::vector<std::unique_ptr<telemetry::Recorder>> recorders;
  std::vector<telemetry::Recorder*> recorder_ptrs;
  telemetry::RecorderSet recorder_set;
  if (!config_.recorder_dir.empty()) {
    for (int r = 0; r < config_.ranks_per_job; ++r) {
      recorders.push_back(std::make_unique<telemetry::Recorder>(
          config_.recorder_dir + "/" + lease.job.id + ".attempt" +
              std::to_string(lease.attempt) + ".rank" + std::to_string(r) +
              ".fdr",
          r, config_.recorder_events));
      recorder_ptrs.push_back(recorders.back().get());
    }
    recorder_set = {recorder_ptrs.data(), config_.ranks_per_job};
  }
  const auto dump_recorders = [&](telemetry::FdrDumpReason reason) {
    for (const auto& rec : recorders) rec->dump(reason);
  };

  try {
    sim::Deck deck = spec_->make_deck(lease.job);
    deck.pipelines = config_.pipelines_per_job;
    const int ranks = config_.ranks_per_job;
    const double timeout = config_.retry.timeout_seconds;
    const auto& hook = config_.per_step_hook;
    const auto& done_hook = config_.on_complete;

    vmpi::WorldConfig wc;
    wc.timeout_seconds = config_.comm_timeout_seconds;
    wc.checksum = config_.comm_integrity;
    wc.sequencing = config_.comm_integrity;
    if (!recorders.empty()) {
      wc.comm_hook = telemetry::vmpi_comm_hook;
      wc.comm_hook_ctx = &recorder_set;
    }

    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      // x-only decomposition: every canned/LPI deck is longest along x, and
      // a 1-D split keeps the smallest surface for these job sizes.
      const vmpi::CartTopology topo(
          {ranks, 1, 1},
          {deck.grid.boundary[0] == grid::BoundaryKind::kPeriodic,
           deck.grid.boundary[2] == grid::BoundaryKind::kPeriodic,
           deck.grid.boundary[4] == grid::BoundaryKind::kPeriodic});
      sim::Simulation sim(deck, ranks > 1 ? &comm : nullptr,
                          ranks > 1 ? &topo : nullptr);
      if (!recorders.empty())
        sim.set_recorder(recorders[std::size_t(comm.rank())].get());
      if (lease.resume_step >= 0) {
        sim::Checkpoint::restore(sim, lease.resume_prefix);
      } else {
        sim.initialize();
      }
      std::optional<sim::ReflectivityProbe> probe;
      if (lease.job.probe_plane >= 0)
        probe.emplace(sim, lease.job.probe_plane);

      Timer attempt_timer;
      const std::int64_t start_step = sim.step_index();
      bool yielded = false;
      while (sim.step_index() < lease.job.steps) {
        sim.step();
        if (probe) probe->sample(lease.job.warmup);
        if (hook) hook(sim, lease.job, lease.attempt);
        if (timeout > 0 && sim.step_index() < lease.job.steps) {
          // Rank 0's clock decides; the decision is broadcast so every rank
          // takes the same branch (a split would deadlock the collectives).
          int stop = (comm.rank() == 0 &&
                      attempt_timer.seconds() >= timeout)
                         ? 1
                         : 0;
          if (ranks > 1) stop = comm.allreduce_value(stop, vmpi::Op::kMax);
          if (stop != 0) {
            sim::Checkpoint::save(sim, prefix, /*keep=*/2);
            if (comm.rank() == 0) {
              out.timed_out = true;
              out.ckpt_step = sim.step_index();
            }
            yielded = true;
            break;
          }
        }
      }
      if (comm.rank() == 0)
        out.steps_advanced = sim.step_index() - start_step;
      if (yielded) return;

      // Terminal success: gather the result (collectives — all ranks).
      const sim::EnergyReport energies = sim.energies();
      const std::int64_t particles = sim.global_particle_count();
      const double refl = probe ? probe->reflectivity() : -1.0;
      if (done_hook) {
        done_hook(sim, lease.job, probe ? &*probe : nullptr,
                  comm.rank() == 0 ? &out.result : nullptr);
      }
      if (comm.rank() == 0) {
        JobResult& r = out.result;
        r.id = lease.job.id;
        r.label = lease.job.label;
        r.overrides = lease.job.overrides;
        r.status = "done";
        r.steps = sim.step_index();
        r.reflectivity = refl;
        r.energy_total = energies.total;
        r.kinetic_total = energies.kinetic_total;
        r.particles = particles;
        const telemetry::StepSample total = telemetry::StepSampler::
            derive_total(sim, attempt_timer.seconds());
        r.particles_per_sec = total.particles_per_sec;
      }
    }, wc);
  } catch (const vmpi::CommError& e) {
    // A dead world: a comm-layer fault (timeout, corruption, dead peer) or
    // a poisoned world whose reason now carries the failing rank's root
    // cause. The typed prefix keeps the fault class greppable in the
    // result ledger.
    out.failed = true;
    out.error = std::string("comm fault [") + vmpi::fault_name(e.fault()) +
                "]: " + e.what();
    dump_recorders(telemetry::FdrDumpReason::kCommFault);
  } catch (const std::exception& e) {
    out.failed = true;
    out.error = e.what();
    dump_recorders(telemetry::FdrDumpReason::kHealthAbort);
  }
  out.seconds = wall.seconds();
  return out;
}

void CampaignExecutor::worker_loop(JobQueue& queue, ResultStore& results) {
  while (std::optional<Lease> lease = queue.acquire()) {
    const std::string& id = lease->job.id;
    AttemptOutcome out = run_attempt(*lease);
    count("campaign.steps", double(out.steps_advanced));
    double total_seconds = 0;
    {
      std::lock_guard<std::mutex> lock(seconds_mu_);
      total_seconds = (seconds_acc_[id] += out.seconds);
    }
    if (out.timed_out) {
      if (queue.yield_resume(id, scratch_prefix(lease->job), out.ckpt_step)) {
        count("campaign.resumes");
      } else {
        JobResult r;
        r.id = id;
        r.label = lease->job.label;
        r.overrides = lease->job.overrides;
        r.status = "failed";
        r.attempts = lease->attempt;
        r.resumes = lease->resumes;
        r.steps = out.ckpt_step;
        r.seconds = total_seconds;
        r.error = "resume budget exhausted";
        results.append(r);
        count("campaign.jobs.failed");
        finish_terminal(queue, r);
      }
    } else if (out.failed) {
      MV_LOG_WARN << "campaign job " << id << " (" << lease->job.label
                  << ") attempt " << lease->attempt << " failed: "
                  << out.error;
      count("campaign.failures");  // every failed attempt, retried or not
      if (queue.fail(id, out.error)) {
        count("campaign.retries");
      } else {
        JobResult r;
        r.id = id;
        r.label = lease->job.label;
        r.overrides = lease->job.overrides;
        r.status = "failed";
        r.attempts = lease->attempt;
        r.resumes = lease->resumes;
        r.seconds = total_seconds;
        r.error = out.error;
        results.append(r);
        count("campaign.jobs.failed");
        finish_terminal(queue, r);
      }
    } else {
      queue.complete(id);
      out.result.attempts = lease->attempt;
      out.result.resumes = lease->resumes;
      out.result.seconds = total_seconds;
      results.append(out.result);
      count("campaign.jobs.done");
      // Scratch checkpoints of a finished job are dead weight.
      try {
        sim::Checkpoint::remove_all(scratch_prefix(lease->job),
                                    config_.ranks_per_job);
      } catch (const std::exception& e) {
        MV_LOG_WARN << "campaign: could not clean checkpoints of job " << id
                    << ": " << e.what();
      }
      finish_terminal(queue, out.result);
    }
    set_queue_gauge(queue);
  }
}

void CampaignExecutor::finish_terminal(JobQueue& queue, const JobResult& r) {
  if (config_.on_result) config_.on_result(r);
  if (service_) {
    // A long-lived service queue garbage-collects terminal entries (the
    // cumulative counts survive); the ledger + its index keep the record.
    queue.erase_terminal(r.id);
    std::lock_guard<std::mutex> lock(seconds_mu_);
    seconds_acc_.erase(r.id);
  }
}

void CampaignExecutor::start(ResultStore& results) {
  MV_REQUIRE(!service_, "campaign executor already started");
  service_ = true;
  service_results_ = &results;
  service_queue_ = std::make_unique<JobQueue>(config_.retry);
  if (config_.metrics != nullptr) {
    std::lock_guard<std::mutex> lock(metrics_lock());
    config_.metrics->gauge("campaign.workers").set(double(workers_));
  }
  service_pool_.reserve(std::size_t(workers_));
  for (int w = 0; w < workers_; ++w) {
    service_pool_.emplace_back(
        [this] { worker_loop(*service_queue_, *service_results_); });
  }
}

void CampaignExecutor::submit(const Job& job, std::int64_t resume_step,
                              const std::string& resume_prefix) {
  MV_REQUIRE(service_ && service_queue_ != nullptr,
             "submit() needs a start()ed executor");
  service_queue_->push(job, resume_step, resume_prefix);
  set_queue_gauge(*service_queue_);
}

JobQueue::Counts CampaignExecutor::queue_counts() const {
  MV_REQUIRE(service_queue_ != nullptr, "queue_counts() needs service mode");
  return service_queue_->counts();
}

std::vector<Lease> CampaignExecutor::stop() {
  MV_REQUIRE(service_, "stop() without start()");
  // Freeze first so no further leases go out, then close so workers exit
  // once their in-flight attempt reaches a terminal or yield state.
  service_queue_->freeze();
  service_queue_->close();
  for (std::thread& t : service_pool_) t.join();
  service_pool_.clear();
  std::vector<Lease> pending = service_queue_->pending_leases();
  service_ = false;
  return pending;
}

CampaignSummary CampaignExecutor::run(ResultStore& results) {
  MV_REQUIRE(!service_, "run() on a service-mode executor");
  Timer wall;
  std::vector<Job> jobs = spec_->expand();
  CampaignSummary summary;
  summary.total = int(jobs.size());

  // Resume: jobs the ledger already holds as done never reach the queue.
  std::vector<Job> todo;
  todo.reserve(jobs.size());
  for (Job& j : jobs) {
    if (results.completed_ids().count(j.id) != 0) {
      ++summary.skipped;
    } else {
      todo.push_back(std::move(j));
    }
  }
  count("campaign.jobs.skipped", double(summary.skipped));

  JobQueue queue(std::move(todo), config_.retry);
  const int nworkers =
      std::max(1, std::min(workers_, queue.counts().total()));
  summary.workers = nworkers;
  if (config_.metrics != nullptr) {
    std::lock_guard<std::mutex> lock(metrics_lock());
    config_.metrics->gauge("campaign.workers").set(double(nworkers));
  }
  set_queue_gauge(queue);

  std::vector<std::thread> pool;
  pool.reserve(std::size_t(nworkers - 1));
  for (int w = 1; w < nworkers; ++w)
    pool.emplace_back([&] { worker_loop(queue, results); });
  worker_loop(queue, results);
  for (std::thread& t : pool) t.join();

  const JobQueue::Counts c = queue.counts();
  summary.done = c.done;
  summary.failed = c.failed;
  summary.retries = c.retries;
  summary.resumes = c.resumes;
  summary.wall_seconds = wall.seconds();
  summary.jobs_per_hour = summary.wall_seconds > 0
                              ? double(summary.done) * 3600.0 /
                                    summary.wall_seconds
                              : 0.0;
  return summary;
}

}  // namespace minivpic::campaign
