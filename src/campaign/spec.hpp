// CampaignSpec: a base deck plus parameter axes, expanded into a fleet of
// jobs with stable content-hashed ids — the paper's parameter study
// (reflectivity vs laser intensity) as a first-class object instead of a
// hand-rolled loop.
//
// Deck-file form (see docs/CAMPAIGNS.md for the full grammar): a
// `[campaign]` section whose dotted keys are sweep axes and whose plain
// keys are batch controls, e.g.
//
//   [campaign]
//   laser.a0 = 0.05, 0.10, 0.15, 0.20   # axis: comma list of overrides
//   grid.nx = 240, 480                  # second axis -> cartesian product
//   steps = 2000                        # per-job step count
//   probe_plane = 16                    # reflectivity probe x-plane
//   warmup = 40                         # probe warmup time (1/omega_pe)
//
// Each axis is an explicit list of `section.key` override values; multiple
// axes expand as their cartesian product (first axis slowest). Every job
// carries its override list and an id hashed from the base deck's canonical
// text plus the sorted overrides and step count — ids are stable across
// reruns, axis reordering, and unrelated campaign edits, which is what lets
// a resumed campaign skip jobs its ResultStore already holds.
//
// Programmatic form: with_factory() swaps the deck text for a callback
// producing a Deck from a job's overrides (canned decks like sim::lpi_deck
// carry density-profile lambdas no text deck can express); the caller
// supplies the fingerprint string the ids hash instead.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/deck_io.hpp"

namespace minivpic::campaign {

/// One sweep axis: every value of `key` ("section.key" dotted form) to run.
struct Axis {
  std::string key;
  std::vector<std::string> values;
};

/// One expanded unit of work.
struct Job {
  std::string id;     ///< 16 hex digits, content-hashed (stable)
  std::string label;  ///< human fragment, e.g. "laser.a0=0.10,grid.nx=480"
  std::vector<sim::DeckOverride> overrides;
  int steps = 0;
  int probe_plane = -1;  ///< reflectivity probe x-plane; < 0 = no probe
  double warmup = 0;     ///< probe warmup time
  /// Per-job base deck text (service submissions that ship their own deck);
  /// empty = the owning spec's base deck. Hashed into the id through the
  /// fingerprint argument of job_id().
  std::string deck_text;
};

/// FNV-1a 64-bit over a string: the job-id content hash.
std::uint64_t fnv1a64(const std::string& s);

/// The canonical 16-hex job id: FNV-1a over the base-deck fingerprint
/// (DeckSource::canonical_text or a factory label), the step count, and the
/// sorted override specs. Single source of truth shared by CampaignSpec::
/// expand() and the service front door, so a job submitted over the wire
/// hashes identically to the same point of a run_campaign sweep.
std::string job_id(const std::string& fingerprint,
                   const std::vector<sim::DeckOverride>& overrides, int steps);

class CampaignSpec {
 public:
  CampaignSpec() = default;

  /// Parses the [campaign] section of a deck file/text; the remaining
  /// sections become the base deck. Throws when the deck has no [campaign]
  /// section or the section has an unknown control key.
  static CampaignSpec from_deck_file(const std::string& path);
  static CampaignSpec from_deck_text(const std::string& text);

  /// Base deck without a [campaign] section (axes added programmatically).
  static CampaignSpec from_deck_source(sim::DeckSource base);

  /// Programmatic base deck: `factory` maps a job's overrides to a Deck.
  /// `fingerprint` stands in for the canonical deck text in the job ids —
  /// callers must change it when the factory's baseline changes.
  static CampaignSpec with_factory(
      std::string fingerprint,
      std::function<sim::Deck(const std::vector<sim::DeckOverride>&)> factory);

  // -- axes and controls ---------------------------------------------------
  void add_axis(const std::string& dotted_key, std::vector<std::string> values);
  void set_steps(int steps) { steps_ = steps; }
  void set_probe_plane(int plane) { probe_plane_ = plane; }
  void set_warmup(double t) { warmup_ = t; }

  int steps() const { return steps_; }
  int probe_plane() const { return probe_plane_; }
  double warmup() const { return warmup_; }
  const std::vector<Axis>& axes() const { return axes_; }
  /// The job-id content-hash base (canonical base-deck text or the factory
  /// label) — what the service hashes for submissions against this spec.
  const std::string& fingerprint() const { return fingerprint_; }

  /// Expands the cartesian product of the axes into jobs (one job with no
  /// overrides when there are no axes) and validates every job's deck —
  /// an unknown `section.key` throws here, before any work starts.
  std::vector<Job> expand() const;

  /// Builds the (validated) deck of one job.
  sim::Deck make_deck(const Job& job) const;

 private:
  sim::DeckSource base_;
  std::function<sim::Deck(const std::vector<sim::DeckOverride>&)> factory_;
  std::string fingerprint_;  ///< canonical base text or factory label
  std::vector<Axis> axes_;
  int steps_ = 100;
  int probe_plane_ = -1;
  double warmup_ = 0;
};

}  // namespace minivpic::campaign
