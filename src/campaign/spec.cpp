#include "campaign/spec.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace minivpic::campaign {

namespace {

std::string trim(const std::string& s) {
  const auto a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  const auto b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    const auto end = comma == std::string::npos ? s.size() : comma;
    const std::string item = trim(s.substr(start, end - start));
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int control_int(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  MV_REQUIRE(end != nullptr && *end == '\0',
             "[campaign] " << key << ": expected an integer, got '" << value
                           << "'");
  return int(v);
}

double control_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  MV_REQUIRE(end != nullptr && *end == '\0',
             "[campaign] " << key << ": expected a number, got '" << value
                           << "'");
  return v;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= std::uint64_t(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string job_id(const std::string& fingerprint,
                   const std::vector<sim::DeckOverride>& overrides, int steps) {
  // Content hash: base deck fingerprint + step count + sorted overrides,
  // so ids survive axis/override reordering and unrelated edits but change
  // with anything that changes the physics of the job.
  std::vector<std::string> specs;
  specs.reserve(overrides.size());
  for (const sim::DeckOverride& ov : overrides) specs.push_back(ov.spec());
  std::sort(specs.begin(), specs.end());
  std::string blob = fingerprint + "|steps=" + std::to_string(steps);
  for (const std::string& s : specs) blob += "|" + s;
  std::ostringstream id;
  id << std::hex;
  id.width(16);
  id.fill('0');
  id << fnv1a64(blob);
  return id.str();
}

CampaignSpec CampaignSpec::from_deck_text(const std::string& text) {
  return from_deck_source(sim::DeckSource::from_text(text));
}

CampaignSpec CampaignSpec::from_deck_file(const std::string& path) {
  return from_deck_source(sim::DeckSource::from_file(path));
}

CampaignSpec CampaignSpec::from_deck_source(sim::DeckSource base) {
  CampaignSpec spec;
  spec.fingerprint_ = base.canonical_text();
  // One `key = value-list` pair per [campaign] line (values are comma
  // lists, so the multi-pair-per-line deck shorthand does not apply here).
  for (const std::string& line : base.campaign_lines()) {
    const auto eq = line.find('=');
    MV_REQUIRE(eq != std::string::npos && eq > 0,
               "[campaign] line '" << line << "': expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    MV_REQUIRE(!key.empty() && !value.empty(),
               "[campaign] line '" << line << "': expected key = value");
    if (key.find('.') != std::string::npos) {
      spec.add_axis(key, split_commas(value));
    } else if (key == "steps") {
      spec.steps_ = control_int(key, value);
      MV_REQUIRE(spec.steps_ >= 1, "[campaign] steps must be >= 1");
    } else if (key == "probe_plane") {
      spec.probe_plane_ = control_int(key, value);
    } else if (key == "warmup") {
      spec.warmup_ = control_double(key, value);
    } else {
      MV_REQUIRE(false, "[campaign]: unknown control key '"
                            << key
                            << "' (axes are dotted section.key names; "
                               "controls are steps, probe_plane, warmup)");
    }
  }
  spec.base_ = std::move(base);
  return spec;
}

CampaignSpec CampaignSpec::with_factory(
    std::string fingerprint,
    std::function<sim::Deck(const std::vector<sim::DeckOverride>&)> factory) {
  MV_REQUIRE(factory != nullptr, "campaign factory must be callable");
  CampaignSpec spec;
  spec.fingerprint_ = std::move(fingerprint);
  spec.factory_ = std::move(factory);
  return spec;
}

void CampaignSpec::add_axis(const std::string& dotted_key,
                            std::vector<std::string> values) {
  MV_REQUIRE(!values.empty(),
             "campaign axis '" << dotted_key << "' needs at least one value");
  // Validate the dotted shape once here; parse_override also rejects
  // malformed keys but with a less helpful message.
  const auto dot = dotted_key.rfind('.');
  MV_REQUIRE(dot != std::string::npos && dot > 0 && dot + 1 < dotted_key.size(),
             "campaign axis '" << dotted_key
                               << "': expected a dotted section.key name");
  for (const Axis& a : axes_)
    MV_REQUIRE(a.key != dotted_key,
               "campaign axis '" << dotted_key << "' given twice");
  axes_.push_back({dotted_key, std::move(values)});
}

std::vector<Job> CampaignSpec::expand() const {
  std::size_t count = 1;
  for (const Axis& a : axes_) count *= a.values.size();
  std::vector<Job> jobs;
  jobs.reserve(count);
  // Cartesian product, first axis slowest (row-major over the axes).
  for (std::size_t flat = 0; flat < count; ++flat) {
    Job job;
    job.steps = steps_;
    job.probe_plane = probe_plane_;
    job.warmup = warmup_;
    std::size_t rem = flat;
    std::size_t stride = count;
    for (const Axis& a : axes_) {
      stride /= a.values.size();
      const std::size_t pick = rem / stride;
      rem %= stride;
      const std::string& value = a.values[pick];
      job.overrides.push_back(sim::parse_override(a.key + "=" + value));
      if (!job.label.empty()) job.label += ",";
      job.label += a.key + "=" + value;
    }
    job.id = job_id(fingerprint_, job.overrides, job.steps);
    jobs.push_back(std::move(job));
  }
  // Fail on typos before any compute: building a Deck is cheap (no
  // particles are loaded), so validate every job up front.
  for (const Job& job : jobs) (void)make_deck(job);
  return jobs;
}

sim::Deck CampaignSpec::make_deck(const Job& job) const {
  if (!job.deck_text.empty()) {
    // Service submissions may ship their own base deck; the spec then only
    // contributes execution defaults, not the physics.
    sim::DeckSource src = sim::DeckSource::from_text(job.deck_text);
    for (const sim::DeckOverride& ov : job.overrides) src.apply_override(ov);
    return src.build();
  }
  if (factory_) return factory_(job.overrides);
  sim::DeckSource src = base_;
  for (const sim::DeckOverride& ov : job.overrides) src.apply_override(ov);
  return src.build();
}

}  // namespace minivpic::campaign
