#include "grid/geometry.hpp"

#include <cmath>

#include "util/error.hpp"

namespace minivpic::grid {

double GlobalGrid::courant_dt() const {
  const double inv2 =
      1.0 / (dx * dx) + 1.0 / (dy * dy) + 1.0 / (dz * dz);
  return cfl / std::sqrt(inv2);
}

namespace {

/// Even split of n cells over p slabs: slab r gets base + (r < rem).
void split(int n, int p, int r, int* count, int* offset) {
  const int base = n / p;
  const int rem = n % p;
  *count = base + (r < rem ? 1 : 0);
  *offset = r * base + std::min(r, rem);
}

}  // namespace

LocalGrid::LocalGrid(const GlobalGrid& global, const vmpi::CartTopology& topo,
                     int rank) {
  MV_REQUIRE(global.nx >= 1 && global.ny >= 1 && global.nz >= 1,
             "grid must have at least one cell per axis");
  MV_REQUIRE(global.dx > 0 && global.dy > 0 && global.dz > 0,
             "cell sizes must be positive");
  MV_REQUIRE(global.cfl > 0 && global.cfl < 1.0,
             "Courant fraction must be in (0,1), got " << global.cfl);

  gnx_ = global.nx;
  gny_ = global.ny;
  gnz_ = global.nz;
  x0_ = global.x0;
  y0_ = global.y0;
  z0_ = global.z0;
  dx_ = global.dx;
  dy_ = global.dy;
  dz_ = global.dz;
  dt_ = global.dt > 0 ? global.dt : global.courant_dt();
  MV_REQUIRE(dt_ < global.courant_dt() / global.cfl,
             "timestep " << dt_ << " exceeds the Courant limit");
  boundary_ = global.boundary;
  rank_ = rank;
  nranks_ = topo.nranks();

  const auto coords = topo.coords_of(rank);
  const auto dims = topo.dims();
  MV_REQUIRE(dims[0] <= global.nx && dims[1] <= global.ny &&
                 dims[2] <= global.nz,
             "more ranks than cells along an axis");
  split(global.nx, dims[0], coords[0], &nx_, &ox_);
  split(global.ny, dims[1], coords[1], &ny_, &oy_);
  split(global.nz, dims[2], coords[2], &nz_, &oz_);

  // Periodicity of an axis follows from its two global boundary kinds; a
  // periodic spec must be periodic on both faces of the axis.
  for (int axis = 0; axis < 3; ++axis) {
    const bool lo =
        global.boundary[2 * axis] == BoundaryKind::kPeriodic;
    const bool hi =
        global.boundary[2 * axis + 1] == BoundaryKind::kPeriodic;
    MV_REQUIRE(lo == hi, "periodic boundary must apply to both faces of axis "
                             << axis);
  }

  init_neighbors(global, topo);
}

LocalGrid::LocalGrid(const GlobalGrid& global)
    : LocalGrid(global,
                vmpi::CartTopology(
                    {1, 1, 1},
                    {global.boundary[0] == BoundaryKind::kPeriodic,
                     global.boundary[2] == BoundaryKind::kPeriodic,
                     global.boundary[4] == BoundaryKind::kPeriodic}),
                0) {}

void LocalGrid::init_neighbors(const GlobalGrid& global,
                               const vmpi::CartTopology& topo) {
  const auto coords = topo.coords_of(rank_);
  const auto dims = topo.dims();
  for (int axis = 0; axis < 3; ++axis) {
    for (int dir : {-1, +1}) {
      const Face face = face_of(axis, dir);
      const bool at_edge =
          dir < 0 ? coords[axis] == 0 : coords[axis] == dims[axis] - 1;
      on_global_[face] = at_edge;
      const bool periodic =
          global.boundary[face] == BoundaryKind::kPeriodic;
      if (at_edge && !periodic) {
        neighbor_[face] = kNoNeighbor;
      } else {
        auto c = coords;
        c[axis] += dir;
        // Wrap for periodic axes regardless of the topology's own flags.
        c[axis] = (c[axis] + dims[axis]) % dims[axis];
        neighbor_[face] = topo.rank_of(c);
      }
    }
  }
}

std::array<int, 3> LocalGrid::voxel_coords(std::int32_t v) const {
  MV_ASSERT(v >= 0 && v < num_voxels());
  const int sx = nx_ + 2;
  const int sy = ny_ + 2;
  return {int(v % sx), int((v / sx) % sy), int(v / (sx * sy))};
}

int LocalGrid::cell_of_x(double x) const {
  const int i = 1 + int(std::floor((x - node_x(1)) / dx_));
  return (i >= 1 && i <= nx_) ? i : -1;
}

int LocalGrid::cell_of_y(double y) const {
  const int j = 1 + int(std::floor((y - node_y(1)) / dy_));
  return (j >= 1 && j <= ny_) ? j : -1;
}

int LocalGrid::cell_of_z(double z) const {
  const int k = 1 + int(std::floor((z - node_z(1)) / dz_));
  return (k >= 1 && k <= nz_) ? k : -1;
}

}  // namespace minivpic::grid
