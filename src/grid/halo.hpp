// Ghost-cell operations: refresh (copy neighbor interior planes into my
// ghost layer, for E/B before interpolation and curl stencils) and source
// reduction (fold ghost-deposited J/rho back into the owning interior,
// after particle deposition).
//
// Axes are processed sequentially (x, then y, then z) with full padded
// planes, which makes edge- and corner-ghost values consistent without any
// dedicated diagonal exchange — the standard halo trick.
//
// Works in two modes sharing one code path:
//  * single-rank / periodic-local: plane copies inside this rank's arrays;
//  * multi-rank: vmpi sends/recvs with the neighbor ranks of the LocalGrid.
#pragma once

#include <initializer_list>
#include <vector>

#include "grid/fields.hpp"
#include "vmpi/comm.hpp"

namespace minivpic::grid {

/// Field components addressable by the halo machinery.
enum class Component {
  kEx, kEy, kEz,
  kCbx, kCby, kCbz,
  kJfx, kJfy, kJfz,
  kRhof,
};

/// All electromagnetic components (the usual refresh set).
std::vector<Component> em_components();

/// All source components (the reduce set).
std::vector<Component> source_components();

class Halo {
 public:
  /// `comm` may be null only when the grid spans a single rank.
  Halo(const LocalGrid& grid, vmpi::Comm* comm);

  /// Fills ghost planes (index 0 and n+1) of the listed components from the
  /// adjacent interiors. Ghosts on global non-periodic faces are left
  /// untouched (boundary ops own them).
  void refresh(FieldArray& f, const std::vector<Component>& comps);

  /// Folds ghost-deposited source contributions (high-side ghost plane
  /// n+1, the only side deposition reaches) into the owning neighbor's first
  /// interior plane, then zeroes all source ghosts.
  void reduce_sources(FieldArray& f);

 private:
  /// Plane length for an axis (full padded extent of the two other axes).
  std::size_t plane_size(int axis) const;

  void pack_plane(const FieldArray& f, Component c, int axis, int index,
                  real* out) const;
  void unpack_plane(FieldArray& f, Component c, int axis, int index,
                    const real* in, bool add) const;

  void exchange_axis_refresh(FieldArray& f, const std::vector<Component>& comps,
                             int axis);
  void exchange_axis_reduce(FieldArray& f, const std::vector<Component>& comps,
                            int axis);

  void zero_source_ghosts(FieldArray& f) const;

  const LocalGrid* grid_;
  vmpi::Comm* comm_;
  std::vector<real> sendbuf_lo_, sendbuf_hi_, recvbuf_;
};

/// Raw pointer to a component's flat array (shared by halo and checkpoint).
real* component_data(FieldArray& f, Component c);
const real* component_data(const FieldArray& f, Component c);

}  // namespace minivpic::grid
