// Yee-mesh geometry: global extents, the local slab owned by this rank, and
// the voxel indexing used by every field and particle kernel.
//
// Conventions (identical to VPIC):
//  * Local arrays span (nx+2) x (ny+2) x (nz+2) voxels; interior cells are
//    1..nx (1-based), index 0 and nx+1 are one-deep ghost layers.
//  * Voxel index: v = ix + (nx+2) * (iy + (ny+2) * iz)  — x fastest.
//  * Node (i,j,k) is the lower corner of cell (i,j,k); Yee staggering:
//      Ex(i,j,k) at (i+1/2, j,     k    )   x-edge
//      Ey(i,j,k) at (i,     j+1/2, k    )   y-edge
//      Ez(i,j,k) at (i,     j,     k+1/2)   z-edge
//      cBx(i,j,k) at (i,    j+1/2, k+1/2)   x-face
//      cBy(i,j,k) at (i+1/2, j,    k+1/2)   y-face
//      cBz(i,j,k) at (i+1/2, j+1/2, k   )   z-face
//  * Units: c = eps0 = mu0 = 1; dt, dx in 1/omega_pe and c/omega_pe.
#pragma once

#include <array>
#include <cstdint>

#include "grid/boundary.hpp"
#include "vmpi/cart.hpp"

namespace minivpic::grid {

/// Global problem description, identical on every rank.
struct GlobalGrid {
  int nx = 1, ny = 1, nz = 1;          ///< global cell counts
  double x0 = 0, y0 = 0, z0 = 0;       ///< global lower corner
  double dx = 1, dy = 1, dz = 1;       ///< cell sizes (skin depths)
  double dt = 0;                       ///< timestep; 0 = derive from CFL
  double cfl = 0.99;                   ///< Courant fraction when dt == 0
  BoundarySpec boundary = periodic_boundaries();

  double lx() const { return nx * dx; }
  double ly() const { return ny * dy; }
  double lz() const { return nz * dz; }

  /// Courant-limited timestep for the 3-D Yee scheme.
  double courant_dt() const;
};

/// This rank's slab of the global grid plus everything kernels need to index
/// it. Immutable after construction.
class LocalGrid {
 public:
  /// Decomposes `global` over `topo`, taking the slab of `rank`.
  /// Cells are split as evenly as possible; earlier ranks get the remainder.
  LocalGrid(const GlobalGrid& global, const vmpi::CartTopology& topo, int rank);

  /// Single-rank convenience.
  explicit LocalGrid(const GlobalGrid& global);

  // -- sizes -------------------------------------------------------------
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  /// Stride helpers for the padded (ghosted) array.
  int sx() const { return 1; }
  int sy() const { return nx_ + 2; }
  int sz() const { return (nx_ + 2) * (ny_ + 2); }
  /// Total padded voxel count = (nx+2)(ny+2)(nz+2).
  std::int64_t num_voxels() const {
    return std::int64_t(nx_ + 2) * (ny_ + 2) * (nz_ + 2);
  }
  std::int64_t num_cells() const { return std::int64_t(nx_) * ny_ * nz_; }

  /// Voxel index of (ix, iy, iz), each in [0, n+1].
  std::int32_t voxel(int ix, int iy, int iz) const {
    return std::int32_t(ix + (nx_ + 2) * (iy + std::int64_t(ny_ + 2) * iz));
  }
  /// Inverse of voxel().
  std::array<int, 3> voxel_coords(std::int32_t v) const;

  /// True if voxel coordinates refer to an interior (owned) cell.
  bool is_interior(int ix, int iy, int iz) const {
    return ix >= 1 && ix <= nx_ && iy >= 1 && iy <= ny_ && iz >= 1 && iz <= nz_;
  }

  // -- spacing / time ----------------------------------------------------
  double dx() const { return dx_; }
  double dy() const { return dy_; }
  double dz() const { return dz_; }
  double dt() const { return dt_; }
  double cell_volume() const { return dx_ * dy_ * dz_; }

  // -- position of this slab in the global grid ---------------------------
  /// Global index of local interior cell 1 (per axis).
  int offset_x() const { return ox_; }
  int offset_y() const { return oy_; }
  int offset_z() const { return oz_; }
  int global_nx() const { return gnx_; }
  int global_ny() const { return gny_; }
  int global_nz() const { return gnz_; }

  /// Physical coordinate of node (ix, iy, iz) (lower corner of that cell).
  double node_x(int ix) const { return x0_ + (ox_ + ix - 1) * dx_; }
  double node_y(int iy) const { return y0_ + (oy_ + iy - 1) * dy_; }
  double node_z(int iz) const { return z0_ + (oz_ + iz - 1) * dz_; }

  /// Local interior cell containing global position, or -1 if outside.
  int cell_of_x(double x) const;
  int cell_of_y(double y) const;
  int cell_of_z(double z) const;

  // -- neighbours / boundaries --------------------------------------------
  /// Rank owning the slab across `face`, or kNoNeighbor if that face is a
  /// global non-periodic boundary. For single-rank periodic axes this is the
  /// rank itself.
  int neighbor(Face face) const { return neighbor_[face]; }
  static constexpr int kNoNeighbor = vmpi::CartTopology::kNoRank;

  /// Boundary kind applying at `face` of this *local* slab: faces interior
  /// to the decomposition report kPeriodic-like exchange via neighbor();
  /// this returns the *global* spec only when the face touches the global
  /// domain edge.
  bool on_global_boundary(Face face) const { return on_global_[face]; }
  BoundaryKind boundary(Face face) const { return boundary_[face]; }

  int rank() const { return rank_; }
  int nranks() const { return nranks_; }

 private:
  void init_neighbors(const GlobalGrid& global, const vmpi::CartTopology& topo);

  int nx_, ny_, nz_;
  int gnx_, gny_, gnz_;
  int ox_, oy_, oz_;
  double x0_, y0_, z0_;
  double dx_, dy_, dz_, dt_;
  int rank_ = 0;
  int nranks_ = 1;
  std::array<int, 6> neighbor_{};
  std::array<bool, 6> on_global_{};
  BoundarySpec boundary_{};
};

}  // namespace minivpic::grid
