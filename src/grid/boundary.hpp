// Boundary condition descriptors for the six faces of a simulation domain.
#pragma once

#include <array>

namespace minivpic::grid {

/// What happens at a *global* domain face. Faces interior to the rank
/// decomposition are always handled by ghost exchange, regardless of these.
enum class BoundaryKind {
  kPeriodic,   ///< wraps to the opposite face
  kPec,        ///< perfect electric conductor: tangential E = 0 on the wall
  kAbsorbing,  ///< first-order Mur outgoing-wave boundary
};

/// Face order used throughout: (-x, +x, -y, +y, -z, +z).
enum Face : int {
  kFaceXLo = 0,
  kFaceXHi = 1,
  kFaceYLo = 2,
  kFaceYHi = 3,
  kFaceZLo = 4,
  kFaceZHi = 5,
};

using BoundarySpec = std::array<BoundaryKind, 6>;

/// All-periodic boundary, the default for physics test problems.
constexpr BoundarySpec periodic_boundaries() {
  return {BoundaryKind::kPeriodic, BoundaryKind::kPeriodic,
          BoundaryKind::kPeriodic, BoundaryKind::kPeriodic,
          BoundaryKind::kPeriodic, BoundaryKind::kPeriodic};
}

/// Laser-plasma slab: absorbing in x (laser axis), periodic transversely.
constexpr BoundarySpec lpi_boundaries() {
  return {BoundaryKind::kAbsorbing, BoundaryKind::kAbsorbing,
          BoundaryKind::kPeriodic,  BoundaryKind::kPeriodic,
          BoundaryKind::kPeriodic,  BoundaryKind::kPeriodic};
}

constexpr int face_axis(Face f) { return static_cast<int>(f) / 2; }
constexpr int face_dir(Face f) { return (static_cast<int>(f) % 2) ? +1 : -1; }
constexpr Face face_of(int axis, int dir) {
  return static_cast<Face>(2 * axis + (dir > 0 ? 1 : 0));
}

}  // namespace minivpic::grid
