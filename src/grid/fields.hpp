// Field state on the local Yee mesh: E, cB, free current J and bound charge
// density rho, stored as aligned structure-of-arrays in single precision
// (the paper's s.p. claim is about exactly these arrays).
#pragma once

#include <cstdint>

#include "grid/geometry.hpp"
#include "util/aligned.hpp"

namespace minivpic::grid {

/// Single-precision field real type, as in VPIC.
using real = float;

/// All field components on one rank's padded mesh. Component (i,j,k)
/// accessors take voxel coordinates in [0, n+1]; see geometry.hpp for the
/// staggering conventions.
class FieldArray {
 public:
  explicit FieldArray(const LocalGrid& grid);

  const LocalGrid& grid() const { return *grid_; }

  // Component accessors (mutable + const).
  real& ex(int i, int j, int k) { return ex_[idx(i, j, k)]; }
  real& ey(int i, int j, int k) { return ey_[idx(i, j, k)]; }
  real& ez(int i, int j, int k) { return ez_[idx(i, j, k)]; }
  real& cbx(int i, int j, int k) { return cbx_[idx(i, j, k)]; }
  real& cby(int i, int j, int k) { return cby_[idx(i, j, k)]; }
  real& cbz(int i, int j, int k) { return cbz_[idx(i, j, k)]; }
  real& jfx(int i, int j, int k) { return jfx_[idx(i, j, k)]; }
  real& jfy(int i, int j, int k) { return jfy_[idx(i, j, k)]; }
  real& jfz(int i, int j, int k) { return jfz_[idx(i, j, k)]; }
  real& rhof(int i, int j, int k) { return rhof_[idx(i, j, k)]; }

  real ex(int i, int j, int k) const { return ex_[idx(i, j, k)]; }
  real ey(int i, int j, int k) const { return ey_[idx(i, j, k)]; }
  real ez(int i, int j, int k) const { return ez_[idx(i, j, k)]; }
  real cbx(int i, int j, int k) const { return cbx_[idx(i, j, k)]; }
  real cby(int i, int j, int k) const { return cby_[idx(i, j, k)]; }
  real cbz(int i, int j, int k) const { return cbz_[idx(i, j, k)]; }
  real jfx(int i, int j, int k) const { return jfx_[idx(i, j, k)]; }
  real jfy(int i, int j, int k) const { return jfy_[idx(i, j, k)]; }
  real jfz(int i, int j, int k) const { return jfz_[idx(i, j, k)]; }
  real rhof(int i, int j, int k) const { return rhof_[idx(i, j, k)]; }

  // Flat-array views, for kernels that stream whole components.
  std::span<real> ex_span() { return ex_.span(); }
  std::span<real> ey_span() { return ey_.span(); }
  std::span<real> ez_span() { return ez_.span(); }
  std::span<real> cbx_span() { return cbx_.span(); }
  std::span<real> cby_span() { return cby_.span(); }
  std::span<real> cbz_span() { return cbz_.span(); }
  std::span<real> jfx_span() { return jfx_.span(); }
  std::span<real> jfy_span() { return jfy_.span(); }
  std::span<real> jfz_span() { return jfz_.span(); }
  std::span<real> rhof_span() { return rhof_.span(); }
  std::span<const real> ex_span() const { return ex_.span(); }
  std::span<const real> ey_span() const { return ey_.span(); }
  std::span<const real> ez_span() const { return ez_.span(); }
  std::span<const real> cbx_span() const { return cbx_.span(); }
  std::span<const real> cby_span() const { return cby_.span(); }
  std::span<const real> cbz_span() const { return cbz_.span(); }

  /// Flat voxel index from padded coordinates.
  std::int32_t idx(int i, int j, int k) const {
    return std::int32_t(i) + sy_ * j + sz_ * k;
  }

  /// Clears the current and charge accumulation arrays (start of a step).
  void clear_sources();

  /// Clears every component.
  void clear_all();

  /// Bytes of field state per rank (for the data-motion accounting).
  std::int64_t bytes() const;

 private:
  const LocalGrid* grid_;
  std::int32_t sy_, sz_;
  AlignedBuffer<real> ex_, ey_, ez_;
  AlignedBuffer<real> cbx_, cby_, cbz_;
  AlignedBuffer<real> jfx_, jfy_, jfz_;
  AlignedBuffer<real> rhof_;
};

}  // namespace minivpic::grid
