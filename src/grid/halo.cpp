#include "grid/halo.hpp"

namespace minivpic::grid {

namespace {

/// Tag layout for halo traffic: disambiguates axis and message kind so the
/// two faces of an axis cannot cross even when both neighbors are the same
/// rank (2-rank periodic axes).
constexpr int kHaloTagBase = 1 << 20;
enum Kind : int { kFillLoGhost = 0, kFillHiGhost = 1, kReduceHi = 2 };

int halo_tag(int axis, Kind kind) { return kHaloTagBase + axis * 4 + kind; }

}  // namespace

std::vector<Component> em_components() {
  return {Component::kEx,  Component::kEy,  Component::kEz,
          Component::kCbx, Component::kCby, Component::kCbz};
}

std::vector<Component> source_components() {
  return {Component::kJfx, Component::kJfy, Component::kJfz, Component::kRhof};
}

real* component_data(FieldArray& f, Component c) {
  switch (c) {
    case Component::kEx: return f.ex_span().data();
    case Component::kEy: return f.ey_span().data();
    case Component::kEz: return f.ez_span().data();
    case Component::kCbx: return f.cbx_span().data();
    case Component::kCby: return f.cby_span().data();
    case Component::kCbz: return f.cbz_span().data();
    case Component::kJfx: return f.jfx_span().data();
    case Component::kJfy: return f.jfy_span().data();
    case Component::kJfz: return f.jfz_span().data();
    case Component::kRhof: return f.rhof_span().data();
  }
  MV_ASSERT(false);
  return nullptr;
}

const real* component_data(const FieldArray& f, Component c) {
  return component_data(const_cast<FieldArray&>(f), c);
}

Halo::Halo(const LocalGrid& grid, vmpi::Comm* comm)
    : grid_(&grid), comm_(comm) {
  if (comm_ == nullptr) {
    MV_REQUIRE(grid.nranks() == 1,
               "multi-rank grid requires a communicator for halo exchange");
  } else {
    MV_REQUIRE(comm_->size() == grid.nranks(),
               "communicator size " << comm_->size()
                                    << " does not match grid rank count "
                                    << grid.nranks());
  }
}

std::size_t Halo::plane_size(int axis) const {
  const int px = grid_->nx() + 2;
  const int py = grid_->ny() + 2;
  const int pz = grid_->nz() + 2;
  switch (axis) {
    case 0: return std::size_t(py) * pz;
    case 1: return std::size_t(px) * pz;
    default: return std::size_t(px) * py;
  }
}

void Halo::pack_plane(const FieldArray& f, Component c, int axis, int index,
                      real* out) const {
  const real* data = component_data(f, c);
  const int px = grid_->nx() + 2;
  const int py = grid_->ny() + 2;
  const int pz = grid_->nz() + 2;
  std::size_t m = 0;
  switch (axis) {
    case 0:
      for (int k = 0; k < pz; ++k)
        for (int j = 0; j < py; ++j) out[m++] = data[f.idx(index, j, k)];
      break;
    case 1:
      for (int k = 0; k < pz; ++k)
        for (int i = 0; i < px; ++i) out[m++] = data[f.idx(i, index, k)];
      break;
    default:
      for (int j = 0; j < py; ++j)
        for (int i = 0; i < px; ++i) out[m++] = data[f.idx(i, j, index)];
      break;
  }
}

void Halo::unpack_plane(FieldArray& f, Component c, int axis, int index,
                        const real* in, bool add) const {
  real* data = component_data(f, c);
  const int px = grid_->nx() + 2;
  const int py = grid_->ny() + 2;
  const int pz = grid_->nz() + 2;
  std::size_t m = 0;
  auto apply = [&](std::int32_t v) {
    if (add) {
      data[v] += in[m++];
    } else {
      data[v] = in[m++];
    }
  };
  switch (axis) {
    case 0:
      for (int k = 0; k < pz; ++k)
        for (int j = 0; j < py; ++j) apply(f.idx(index, j, k));
      break;
    case 1:
      for (int k = 0; k < pz; ++k)
        for (int i = 0; i < px; ++i) apply(f.idx(i, index, k));
      break;
    default:
      for (int j = 0; j < py; ++j)
        for (int i = 0; i < px; ++i) apply(f.idx(i, j, index));
      break;
  }
}

void Halo::exchange_axis_refresh(FieldArray& f,
                                 const std::vector<Component>& comps,
                                 int axis) {
  const int n = axis == 0 ? grid_->nx() : axis == 1 ? grid_->ny() : grid_->nz();
  const int lo = grid_->neighbor(face_of(axis, -1));
  const int hi = grid_->neighbor(face_of(axis, +1));
  const int self = grid_->rank();
  const std::size_t plane = plane_size(axis);
  const std::size_t msg = plane * comps.size();
  sendbuf_lo_.resize(msg);
  sendbuf_hi_.resize(msg);
  recvbuf_.resize(msg);

  // Local periodic wrap (neighbor is this rank itself).
  if (hi == self) {
    MV_ASSERT(lo == self);
    for (std::size_t c = 0; c < comps.size(); ++c) {
      pack_plane(f, comps[c], axis, n, sendbuf_lo_.data() + c * plane);
      unpack_plane(f, comps[c], axis, 0, sendbuf_lo_.data() + c * plane, false);
      pack_plane(f, comps[c], axis, 1, sendbuf_hi_.data() + c * plane);
      unpack_plane(f, comps[c], axis, n + 1, sendbuf_hi_.data() + c * plane,
                   false);
    }
    return;
  }

  // Post both buffered sends first, then receive — cannot deadlock.
  if (hi != LocalGrid::kNoNeighbor) {
    for (std::size_t c = 0; c < comps.size(); ++c)
      pack_plane(f, comps[c], axis, n, sendbuf_hi_.data() + c * plane);
    comm_->send(hi, halo_tag(axis, kFillLoGhost),
                std::span<const real>(sendbuf_hi_.data(), msg));
  }
  if (lo != LocalGrid::kNoNeighbor) {
    for (std::size_t c = 0; c < comps.size(); ++c)
      pack_plane(f, comps[c], axis, 1, sendbuf_lo_.data() + c * plane);
    comm_->send(lo, halo_tag(axis, kFillHiGhost),
                std::span<const real>(sendbuf_lo_.data(), msg));
  }
  if (lo != LocalGrid::kNoNeighbor) {
    comm_->recv(lo, halo_tag(axis, kFillLoGhost),
                std::span<real>(recvbuf_.data(), msg));
    for (std::size_t c = 0; c < comps.size(); ++c)
      unpack_plane(f, comps[c], axis, 0, recvbuf_.data() + c * plane, false);
  }
  if (hi != LocalGrid::kNoNeighbor) {
    comm_->recv(hi, halo_tag(axis, kFillHiGhost),
                std::span<real>(recvbuf_.data(), msg));
    for (std::size_t c = 0; c < comps.size(); ++c)
      unpack_plane(f, comps[c], axis, n + 1, recvbuf_.data() + c * plane,
                   false);
  }
}

void Halo::exchange_axis_reduce(FieldArray& f,
                                const std::vector<Component>& comps, int axis) {
  const int n = axis == 0 ? grid_->nx() : axis == 1 ? grid_->ny() : grid_->nz();
  const int lo = grid_->neighbor(face_of(axis, -1));
  const int hi = grid_->neighbor(face_of(axis, +1));
  const int self = grid_->rank();
  const std::size_t plane = plane_size(axis);
  const std::size_t msg = plane * comps.size();
  sendbuf_hi_.resize(msg);
  recvbuf_.resize(msg);

  // Deposition only reaches the high-side ghost plane (index n+1); fold it
  // into the hi neighbor's first interior plane.
  if (hi == self) {
    MV_ASSERT(lo == self);
    for (std::size_t c = 0; c < comps.size(); ++c) {
      pack_plane(f, comps[c], axis, n + 1, sendbuf_hi_.data() + c * plane);
      unpack_plane(f, comps[c], axis, 1, sendbuf_hi_.data() + c * plane, true);
    }
    return;
  }

  if (hi != LocalGrid::kNoNeighbor) {
    for (std::size_t c = 0; c < comps.size(); ++c)
      pack_plane(f, comps[c], axis, n + 1, sendbuf_hi_.data() + c * plane);
    comm_->send(hi, halo_tag(axis, kReduceHi),
                std::span<const real>(sendbuf_hi_.data(), msg));
  }
  if (lo != LocalGrid::kNoNeighbor) {
    comm_->recv(lo, halo_tag(axis, kReduceHi),
                std::span<real>(recvbuf_.data(), msg));
    for (std::size_t c = 0; c < comps.size(); ++c)
      unpack_plane(f, comps[c], axis, 1, recvbuf_.data() + c * plane, true);
  }
}

void Halo::refresh(FieldArray& f, const std::vector<Component>& comps) {
  for (int axis = 0; axis < 3; ++axis) exchange_axis_refresh(f, comps, axis);
}

void Halo::reduce_sources(FieldArray& f) {
  const auto comps = source_components();
  for (int axis = 0; axis < 3; ++axis) exchange_axis_reduce(f, comps, axis);
  zero_source_ghosts(f);
}

void Halo::zero_source_ghosts(FieldArray& f) const {
  const int nx = grid_->nx(), ny = grid_->ny(), nz = grid_->nz();
  for (Component c : source_components()) {
    real* data = component_data(f, c);
    for (int k = 0; k <= nz + 1; ++k) {
      for (int j = 0; j <= ny + 1; ++j) {
        for (int i = 0; i <= nx + 1; ++i) {
          const bool ghost = i == 0 || i == nx + 1 || j == 0 || j == ny + 1 ||
                             k == 0 || k == nz + 1;
          if (ghost) data[f.idx(i, j, k)] = 0;
        }
      }
    }
  }
}

}  // namespace minivpic::grid
