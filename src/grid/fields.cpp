#include "grid/fields.hpp"

namespace minivpic::grid {

FieldArray::FieldArray(const LocalGrid& grid)
    : grid_(&grid),
      sy_(grid.sy()),
      sz_(grid.sz()),
      ex_(std::size_t(grid.num_voxels())),
      ey_(std::size_t(grid.num_voxels())),
      ez_(std::size_t(grid.num_voxels())),
      cbx_(std::size_t(grid.num_voxels())),
      cby_(std::size_t(grid.num_voxels())),
      cbz_(std::size_t(grid.num_voxels())),
      jfx_(std::size_t(grid.num_voxels())),
      jfy_(std::size_t(grid.num_voxels())),
      jfz_(std::size_t(grid.num_voxels())),
      rhof_(std::size_t(grid.num_voxels())) {}

void FieldArray::clear_sources() {
  jfx_.zero();
  jfy_.zero();
  jfz_.zero();
  rhof_.zero();
}

void FieldArray::clear_all() {
  ex_.zero();
  ey_.zero();
  ez_.zero();
  cbx_.zero();
  cby_.zero();
  cbz_.zero();
  clear_sources();
}

std::int64_t FieldArray::bytes() const {
  return std::int64_t(sizeof(real)) * grid_->num_voxels() * 10;
}

}  // namespace minivpic::grid
