#include "field/energy.hpp"

namespace minivpic::field {

FieldEnergy field_energy(const grid::FieldArray& f) {
  const auto& g = f.grid();
  FieldEnergy e;
  for (int k = 1; k <= g.nz(); ++k) {
    for (int j = 1; j <= g.ny(); ++j) {
      for (int i = 1; i <= g.nx(); ++i) {
        e.ex += double(f.ex(i, j, k)) * f.ex(i, j, k);
        e.ey += double(f.ey(i, j, k)) * f.ey(i, j, k);
        e.ez += double(f.ez(i, j, k)) * f.ez(i, j, k);
        e.bx += double(f.cbx(i, j, k)) * f.cbx(i, j, k);
        e.by += double(f.cby(i, j, k)) * f.cby(i, j, k);
        e.bz += double(f.cbz(i, j, k)) * f.cbz(i, j, k);
      }
    }
  }
  const double half_dv = 0.5 * g.cell_volume();
  e.ex *= half_dv;
  e.ey *= half_dv;
  e.ez *= half_dv;
  e.bx *= half_dv;
  e.by *= half_dv;
  e.bz *= half_dv;
  return e;
}

double poynting_flux_x(const grid::FieldArray& f, int i) {
  const auto& g = f.grid();
  MV_REQUIRE(i >= 1 && i <= g.nx(), "plane index out of interior range");
  double s = 0;
  for (int k = 1; k <= g.nz(); ++k) {
    for (int j = 1; j <= g.ny(); ++j) {
      // Co-locate the x-staggered B components at the E positions; without
      // this the half-cell phase offset contaminates the flux at short
      // wavelengths.
      const double cbz = 0.5 * (double(f.cbz(i - 1, j, k)) + f.cbz(i, j, k));
      const double cby = 0.5 * (double(f.cby(i - 1, j, k)) + f.cby(i, j, k));
      s += double(f.ey(i, j, k)) * cbz - double(f.ez(i, j, k)) * cby;
    }
  }
  return s * g.dy() * g.dz();
}

std::pair<double, double> wave_power_x(const grid::FieldArray& f, int i) {
  const auto& g = f.grid();
  MV_REQUIRE(i >= 1 && i <= g.nx(), "plane index out of interior range");
  double fwd = 0, bwd = 0;
  for (int k = 1; k <= g.nz(); ++k) {
    for (int j = 1; j <= g.ny(); ++j) {
      const double ey = f.ey(i, j, k), ez = f.ez(i, j, k);
      // x-average co-locates cB at the E positions (see poynting_flux_x).
      const double cbz = 0.5 * (double(f.cbz(i - 1, j, k)) + f.cbz(i, j, k));
      const double cby = 0.5 * (double(f.cby(i - 1, j, k)) + f.cby(i, j, k));
      const double af1 = 0.5 * (ey + cbz), ab1 = 0.5 * (ey - cbz);
      const double af2 = 0.5 * (ez - cby), ab2 = 0.5 * (ez + cby);
      fwd += af1 * af1 + af2 * af2;
      bwd += ab1 * ab1 + ab2 * ab2;
    }
  }
  const double norm = 1.0 / (double(g.ny()) * g.nz());
  return {fwd * norm, bwd * norm};
}

}  // namespace minivpic::field
