// Marder divergence cleaning, as used by VPIC to control the slow
// accumulation of div E - rho and div B errors from single-precision
// round-off. One pass applies a diffusion step
//     E += d * grad(div E - rho),      B += d * grad(div B)
// with d chosen at the explicit-diffusion stability limit.
#pragma once

#include "grid/fields.hpp"
#include "grid/halo.hpp"
#include "util/aligned.hpp"

namespace minivpic::field {

class DivergenceCleaner {
 public:
  DivergenceCleaner(const grid::LocalGrid& grid, grid::Halo* halo);

  /// Marder passes on E. Requires fresh E ghosts and reduced rho;
  /// refreshes E ghosts afterwards.
  void clean_e(grid::FieldArray& f, int passes = 1);

  /// Marder passes on B. Requires fresh B ghosts; refreshes B afterwards.
  void clean_b(grid::FieldArray& f, int passes = 1);

  /// RMS of (div E - rho) over this rank's interior nodes.
  double div_e_error_rms(const grid::FieldArray& f) const;

  /// RMS of div B over this rank's interior cells.
  double div_b_error_rms(const grid::FieldArray& f) const;

 private:
  void compute_e_error(const grid::FieldArray& f);
  void compute_b_error(const grid::FieldArray& f);

  const grid::LocalGrid* grid_;
  grid::Halo* halo_;
  double diff_;  ///< Marder diffusion coefficient
  AlignedBuffer<grid::real> err_;
};

}  // namespace minivpic::field
