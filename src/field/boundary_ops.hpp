// Wall boundary conditions for the tangential electric field on global
// domain faces: PEC (tangential E = 0) and first-order Mur absorbing
// boundaries. Periodic faces and rank-interior faces are handled by the
// halo exchange, not here.
//
// Geometry reminder: the low wall of an axis passes through interior plane
// index 1 (tangential E components with that plane index sit exactly on the
// wall); the high wall passes through ghost plane index n+1.
#pragma once

#include <array>
#include <vector>

#include "grid/fields.hpp"
#include "grid/halo.hpp"

namespace minivpic::field {

class FieldBoundary {
 public:
  explicit FieldBoundary(const grid::LocalGrid& grid);

  /// Captures the current wall-region field values as the "previous step"
  /// state the Mur update needs. Call once after field initialization and
  /// after checkpoint restore.
  void capture(const grid::FieldArray& f);

  /// Applies wall conditions to tangential E on every global face this rank
  /// touches. Call immediately after the interior E update of a step.
  void apply(grid::FieldArray& f);

 private:
  struct MurFace {
    grid::Face face;
    int axis;              ///< face normal axis
    int wall, inner;       ///< plane indices along the normal axis
    double coef;           ///< (dt - h) / (dt + h)
    // Saved previous-step planes for the two tangential components:
    // [comp][0] = wall plane, [comp][1] = inner plane.
    std::array<std::array<std::vector<grid::real>, 2>, 2> saved;
  };

  void pec_face(grid::FieldArray& f, int axis, int wall) const;
  void mur_face(grid::FieldArray& f, MurFace& mf) const;
  void save_face(const grid::FieldArray& f, MurFace& mf) const;

  /// The two tangential E components for a face of given normal axis.
  static std::array<grid::Component, 2> tangential_components(int axis);

  const grid::LocalGrid* grid_;
  std::vector<MurFace> mur_faces_;
  std::vector<std::pair<int, int>> pec_faces_;  ///< (axis, wall plane)
  bool captured_ = false;
};

}  // namespace minivpic::field
