// Laser injection: a soft current-sheet antenna on an x-plane.
//
// A surface current K_y(t) on a plane radiates plane waves of amplitude
// E = -K/2 symmetrically toward +x and -x (code units, impedance 1). With
// the global -x wall absorbing, the backward half leaves the box and the
// antenna launches a clean wave of amplitude `a0` toward +x — while
// backscattered light passes through the (transparent) source plane and is
// absorbed behind it. This is how VPIC-style LPI decks light their lasers.
#pragma once

#include "grid/fields.hpp"

namespace minivpic::field {

struct LaserConfig {
  double omega0 = 3.0;    ///< laser frequency in units of omega_pe
  double a0 = 0.01;       ///< normalized field amplitude eE/(m c omega0)...
                          ///< stored here as the E amplitude in code units
  double ramp = 10.0;     ///< sin^2 turn-on time (1/omega_pe)
  double duration = -1;   ///< pulse length; < 0 = run forever
  int global_plane = 2;   ///< global x cell index of the source plane
  bool polarize_z = false;  ///< drive Ez instead of Ey
};

/// Temporal profile a0 * env(t) * sin(omega0 t); exposed for tests.
double laser_waveform(const LaserConfig& cfg, double t);

class LaserAntenna {
 public:
  LaserAntenna(const grid::LocalGrid& grid, const LaserConfig& cfg);

  /// Deposits the antenna's sheet current into J for the step ending at
  /// time t + dt (call after clearing sources, before advance_e; `t` is the
  /// time at the start of the step). No-op on ranks not owning the plane.
  void deposit(grid::FieldArray& f, double t) const;

  const LaserConfig& config() const { return cfg_; }

  /// Local interior x index of the source plane, or -1 if not on this rank.
  int local_plane() const { return local_i_; }

 private:
  const grid::LocalGrid* grid_;
  LaserConfig cfg_;
  int local_i_ = -1;
};

}  // namespace minivpic::field
