#include "field/clean.hpp"

#include <cmath>

namespace minivpic::field {

using grid::real;

DivergenceCleaner::DivergenceCleaner(const grid::LocalGrid& grid,
                                     grid::Halo* halo)
    : grid_(&grid), halo_(halo), err_(std::size_t(grid.num_voxels())) {
  MV_REQUIRE(halo != nullptr, "divergence cleaner needs a halo exchanger");
  const double inv2 = 1.0 / (grid.dx() * grid.dx()) +
                      1.0 / (grid.dy() * grid.dy()) +
                      1.0 / (grid.dz() * grid.dz());
  // Explicit diffusion stability bound is 1/(2*inv2); stay at half of it.
  diff_ = 0.25 / inv2;
}

void DivergenceCleaner::compute_e_error(const grid::FieldArray& f) {
  const auto& g = *grid_;
  const real rx = real(1.0 / g.dx());
  const real ry = real(1.0 / g.dy());
  const real rz = real(1.0 / g.dz());
  err_.zero();
  // div E - rho on nodes [1..n+1]^3 (reads reach ghost index 0 only).
  for (int k = 1; k <= g.nz() + 1; ++k) {
    for (int j = 1; j <= g.ny() + 1; ++j) {
      for (int i = 1; i <= g.nx() + 1; ++i) {
        err_[std::size_t(f.idx(i, j, k))] =
            rx * (f.ex(i, j, k) - f.ex(i - 1, j, k)) +
            ry * (f.ey(i, j, k) - f.ey(i, j - 1, k)) +
            rz * (f.ez(i, j, k) - f.ez(i, j, k - 1)) - f.rhof(i, j, k);
      }
    }
  }
}

void DivergenceCleaner::compute_b_error(const grid::FieldArray& f) {
  const auto& g = *grid_;
  const real rx = real(1.0 / g.dx());
  const real ry = real(1.0 / g.dy());
  const real rz = real(1.0 / g.dz());
  err_.zero();
  // div B on cells [0..n]^3 (reads reach ghost index n+1 only).
  for (int k = 0; k <= g.nz(); ++k) {
    for (int j = 0; j <= g.ny(); ++j) {
      for (int i = 0; i <= g.nx(); ++i) {
        err_[std::size_t(f.idx(i, j, k))] =
            rx * (f.cbx(i + 1, j, k) - f.cbx(i, j, k)) +
            ry * (f.cby(i, j + 1, k) - f.cby(i, j, k)) +
            rz * (f.cbz(i, j, k + 1) - f.cbz(i, j, k));
      }
    }
  }
}

void DivergenceCleaner::clean_e(grid::FieldArray& f, int passes) {
  const auto& g = *grid_;
  const real cx = real(diff_ / g.dx());
  const real cy = real(diff_ / g.dy());
  const real cz = real(diff_ / g.dz());
  for (int pass = 0; pass < passes; ++pass) {
    compute_e_error(f);
    for (int k = 1; k <= g.nz(); ++k) {
      for (int j = 1; j <= g.ny(); ++j) {
        for (int i = 1; i <= g.nx(); ++i) {
          const auto e = [&](int a, int b, int c) {
            return err_[std::size_t(f.idx(a, b, c))];
          };
          f.ex(i, j, k) += cx * (e(i + 1, j, k) - e(i, j, k));
          f.ey(i, j, k) += cy * (e(i, j + 1, k) - e(i, j, k));
          f.ez(i, j, k) += cz * (e(i, j, k + 1) - e(i, j, k));
        }
      }
    }
    halo_->refresh(
        f, {grid::Component::kEx, grid::Component::kEy, grid::Component::kEz});
  }
}

void DivergenceCleaner::clean_b(grid::FieldArray& f, int passes) {
  const auto& g = *grid_;
  const real cx = real(diff_ / g.dx());
  const real cy = real(diff_ / g.dy());
  const real cz = real(diff_ / g.dz());
  for (int pass = 0; pass < passes; ++pass) {
    compute_b_error(f);
    for (int k = 1; k <= g.nz(); ++k) {
      for (int j = 1; j <= g.ny(); ++j) {
        for (int i = 1; i <= g.nx(); ++i) {
          const auto e = [&](int a, int b, int c) {
            return err_[std::size_t(f.idx(a, b, c))];
          };
          f.cbx(i, j, k) += cx * (e(i, j, k) - e(i - 1, j, k));
          f.cby(i, j, k) += cy * (e(i, j, k) - e(i, j - 1, k));
          f.cbz(i, j, k) += cz * (e(i, j, k) - e(i, j, k - 1));
        }
      }
    }
    halo_->refresh(f, {grid::Component::kCbx, grid::Component::kCby,
                       grid::Component::kCbz});
  }
}

double DivergenceCleaner::div_e_error_rms(const grid::FieldArray& f) const {
  const auto& g = *grid_;
  const real rx = real(1.0 / g.dx());
  const real ry = real(1.0 / g.dy());
  const real rz = real(1.0 / g.dz());
  double sum2 = 0;
  std::int64_t n = 0;
  for (int k = 1; k <= g.nz(); ++k) {
    for (int j = 1; j <= g.ny(); ++j) {
      for (int i = 1; i <= g.nx(); ++i) {
        const double err = rx * (f.ex(i, j, k) - f.ex(i - 1, j, k)) +
                           ry * (f.ey(i, j, k) - f.ey(i, j - 1, k)) +
                           rz * (f.ez(i, j, k) - f.ez(i, j, k - 1)) -
                           f.rhof(i, j, k);
        sum2 += err * err;
        ++n;
      }
    }
  }
  return std::sqrt(sum2 / double(n));
}

double DivergenceCleaner::div_b_error_rms(const grid::FieldArray& f) const {
  const auto& g = *grid_;
  const real rx = real(1.0 / g.dx());
  const real ry = real(1.0 / g.dy());
  const real rz = real(1.0 / g.dz());
  double sum2 = 0;
  std::int64_t n = 0;
  for (int k = 1; k <= g.nz(); ++k) {
    for (int j = 1; j <= g.ny(); ++j) {
      for (int i = 1; i <= g.nx(); ++i) {
        const double err = rx * (f.cbx(i + 1, j, k) - f.cbx(i, j, k)) +
                           ry * (f.cby(i, j + 1, k) - f.cby(i, j, k)) +
                           rz * (f.cbz(i, j, k + 1) - f.cbz(i, j, k));
        sum2 += err * err;
        ++n;
      }
    }
  }
  return std::sqrt(sum2 / double(n));
}

}  // namespace minivpic::field
