#include "field/boundary_ops.hpp"

#include "grid/halo.hpp"

namespace minivpic::field {

namespace {

/// Maps (plane-along-normal-axis, u, v) to voxel coordinates, where u and v
/// run over the two non-normal axes in ascending axis order.
std::array<int, 3> face_coords(int axis, int plane, int u, int v) {
  switch (axis) {
    case 0: return {plane, u, v};
    case 1: return {u, plane, v};
    default: return {u, v, plane};
  }
}

/// Padded extents of the two non-normal axes.
std::array<int, 2> face_extents(const grid::LocalGrid& g, int axis) {
  switch (axis) {
    case 0: return {g.ny() + 2, g.nz() + 2};
    case 1: return {g.nx() + 2, g.nz() + 2};
    default: return {g.nx() + 2, g.ny() + 2};
  }
}

}  // namespace

std::array<grid::Component, 2> FieldBoundary::tangential_components(int axis) {
  using grid::Component;
  switch (axis) {
    case 0: return {Component::kEy, Component::kEz};
    case 1: return {Component::kEx, Component::kEz};
    default: return {Component::kEx, Component::kEy};
  }
}

FieldBoundary::FieldBoundary(const grid::LocalGrid& grid) : grid_(&grid) {
  using grid::BoundaryKind;
  for (int face_i = 0; face_i < 6; ++face_i) {
    const auto face = static_cast<grid::Face>(face_i);
    if (!grid.on_global_boundary(face)) continue;
    const BoundaryKind kind = grid.boundary(face);
    if (kind == BoundaryKind::kPeriodic) continue;

    const int axis = grid::face_axis(face);
    const int n = axis == 0 ? grid.nx() : axis == 1 ? grid.ny() : grid.nz();
    const bool low = grid::face_dir(face) < 0;
    const int wall = low ? 1 : n + 1;

    if (kind == BoundaryKind::kPec) {
      pec_faces_.emplace_back(axis, wall);
      continue;
    }

    // Absorbing (first-order Mur).
    MV_REQUIRE(n >= 2, "Mur boundary needs at least two cells along axis "
                           << axis);
    MurFace mf;
    mf.face = face;
    mf.axis = axis;
    mf.wall = wall;
    mf.inner = low ? 2 : n;
    const double h = axis == 0 ? grid.dx() : axis == 1 ? grid.dy() : grid.dz();
    mf.coef = (grid.dt() - h) / (grid.dt() + h);
    const auto ext = face_extents(grid, axis);
    const std::size_t plane = std::size_t(ext[0]) * ext[1];
    for (auto& comp_planes : mf.saved)
      for (auto& p : comp_planes) p.assign(plane, 0);
    mur_faces_.push_back(std::move(mf));
  }
}

void FieldBoundary::save_face(const grid::FieldArray& f, MurFace& mf) const {
  const auto comps = tangential_components(mf.axis);
  const auto ext = face_extents(*grid_, mf.axis);
  for (int c = 0; c < 2; ++c) {
    const grid::real* data = grid::component_data(f, comps[std::size_t(c)]);
    std::size_t m = 0;
    for (int v = 0; v < ext[1]; ++v) {
      for (int u = 0; u < ext[0]; ++u, ++m) {
        const auto wall_c = face_coords(mf.axis, mf.wall, u, v);
        const auto in_c = face_coords(mf.axis, mf.inner, u, v);
        mf.saved[std::size_t(c)][0][m] = data[f.idx(wall_c[0], wall_c[1], wall_c[2])];
        mf.saved[std::size_t(c)][1][m] = data[f.idx(in_c[0], in_c[1], in_c[2])];
      }
    }
  }
}

void FieldBoundary::mur_face(grid::FieldArray& f, MurFace& mf) const {
  const auto comps = tangential_components(mf.axis);
  const auto ext = face_extents(*grid_, mf.axis);
  for (int c = 0; c < 2; ++c) {
    grid::real* data = grid::component_data(f, comps[std::size_t(c)]);
    std::size_t m = 0;
    for (int v = 0; v < ext[1]; ++v) {
      for (int u = 0; u < ext[0]; ++u, ++m) {
        const auto wall_c = face_coords(mf.axis, mf.wall, u, v);
        const auto in_c = face_coords(mf.axis, mf.inner, u, v);
        const auto wall_i = f.idx(wall_c[0], wall_c[1], wall_c[2]);
        const auto in_i = f.idx(in_c[0], in_c[1], in_c[2]);
        // First-order Mur: Ew^{n+1} = Ei^n + coef (Ei^{n+1} - Ew^n).
        data[wall_i] = grid::real(mf.saved[std::size_t(c)][1][m] +
                                  mf.coef * (data[in_i] -
                                             mf.saved[std::size_t(c)][0][m]));
      }
    }
  }
  save_face(f, mf);
}

void FieldBoundary::pec_face(grid::FieldArray& f, int axis, int wall) const {
  const auto comps = tangential_components(axis);
  const auto ext = face_extents(*grid_, axis);
  for (const auto comp : comps) {
    grid::real* data = grid::component_data(f, comp);
    for (int v = 0; v < ext[1]; ++v) {
      for (int u = 0; u < ext[0]; ++u) {
        const auto c = face_coords(axis, wall, u, v);
        data[f.idx(c[0], c[1], c[2])] = 0;
      }
    }
  }
}

void FieldBoundary::capture(const grid::FieldArray& f) {
  for (auto& mf : mur_faces_) save_face(f, mf);
  captured_ = true;
}

void FieldBoundary::apply(grid::FieldArray& f) {
  MV_REQUIRE(mur_faces_.empty() || captured_,
             "FieldBoundary::capture() must be called before the first step "
             "when absorbing boundaries are present");
  for (const auto& [axis, wall] : pec_faces_) pec_face(f, axis, wall);
  for (auto& mf : mur_faces_) mur_face(f, mf);
}

}  // namespace minivpic::field
