// Field energy accounting and Poynting-flux diagnostics, including the
// forward/backward wave decomposition the reflectivity measurement uses.
#pragma once

#include <utility>

#include "grid/fields.hpp"

namespace minivpic::field {

/// Per-component field energy on this rank's interior, in code units
/// (energy density E^2/2 + B^2/2 integrated over volume). Doubles: these
/// are diagnostics accumulated across many single-precision voxels.
struct FieldEnergy {
  double ex = 0, ey = 0, ez = 0;
  double bx = 0, by = 0, bz = 0;

  double electric() const { return ex + ey + ez; }
  double magnetic() const { return bx + by + bz; }
  double total() const { return electric() + magnetic(); }
};

/// Computes this rank's field energy (reduce over ranks for the global sum).
FieldEnergy field_energy(const grid::FieldArray& f);

/// Poynting flux S_x integrated over the local part of x-plane `i`
/// (positive = energy flowing toward +x). Staggered components are read at
/// the plane without interpolation — a diagnostic-grade approximation.
double poynting_flux_x(const grid::FieldArray& f, int i);

/// Forward/backward electromagnetic wave power (plane-averaged a^2) at
/// x-plane `i`, for light propagating along x with (Ey, cBz) + (Ez, -cBy)
/// polarizations combined:
///   forward amplitude^2  = ((Ey + cBz)/2)^2 + ((Ez - cBy)/2)^2
///   backward amplitude^2 = ((Ey - cBz)/2)^2 + ((Ez + cBy)/2)^2
/// The reflectivity diagnostic time-averages backward/forward at a plane
/// between the antenna and the plasma.
std::pair<double, double> wave_power_x(const grid::FieldArray& f, int i);

}  // namespace minivpic::field
