#include "field/solver.hpp"

namespace minivpic::field {

using grid::real;

FieldSolver::FieldSolver(const grid::LocalGrid& grid, grid::Halo* halo)
    : grid_(&grid), halo_(halo), boundary_(grid) {
  MV_REQUIRE(halo != nullptr, "field solver needs a halo exchanger");
}

void FieldSolver::advance_b(grid::FieldArray& f, double frac) {
  const int nx = grid_->nx(), ny = grid_->ny(), nz = grid_->nz();
  const real px = real(frac * grid_->dt() / grid_->dx());
  const real py = real(frac * grid_->dt() / grid_->dy());
  const real pz = real(frac * grid_->dt() / grid_->dz());

  for (int k = 1; k <= nz; ++k) {
    for (int j = 1; j <= ny; ++j) {
      for (int i = 1; i <= nx; ++i) {
        // dB/dt = -curl E on the Yee faces (fields store cB; c = 1).
        f.cbx(i, j, k) -= py * (f.ez(i, j + 1, k) - f.ez(i, j, k)) -
                          pz * (f.ey(i, j, k + 1) - f.ey(i, j, k));
        f.cby(i, j, k) -= pz * (f.ex(i, j, k + 1) - f.ex(i, j, k)) -
                          px * (f.ez(i + 1, j, k) - f.ez(i, j, k));
        f.cbz(i, j, k) -= px * (f.ey(i + 1, j, k) - f.ey(i, j, k)) -
                          py * (f.ex(i, j + 1, k) - f.ex(i, j, k));
      }
    }
  }
  halo_->refresh(f, {grid::Component::kCbx, grid::Component::kCby,
                     grid::Component::kCbz});
}

void FieldSolver::advance_e(grid::FieldArray& f) {
  const int nx = grid_->nx(), ny = grid_->ny(), nz = grid_->nz();
  const real dt = real(grid_->dt());
  const real px = real(grid_->dt() / grid_->dx());
  const real py = real(grid_->dt() / grid_->dy());
  const real pz = real(grid_->dt() / grid_->dz());

  for (int k = 1; k <= nz; ++k) {
    for (int j = 1; j <= ny; ++j) {
      for (int i = 1; i <= nx; ++i) {
        // dE/dt = curl cB - J (eps0 = 1).
        f.ex(i, j, k) += py * (f.cbz(i, j, k) - f.cbz(i, j - 1, k)) -
                         pz * (f.cby(i, j, k) - f.cby(i, j, k - 1)) -
                         dt * f.jfx(i, j, k);
        f.ey(i, j, k) += pz * (f.cbx(i, j, k) - f.cbx(i, j, k - 1)) -
                         px * (f.cbz(i, j, k) - f.cbz(i - 1, j, k)) -
                         dt * f.jfy(i, j, k);
        f.ez(i, j, k) += px * (f.cby(i, j, k) - f.cby(i - 1, j, k)) -
                         py * (f.cbx(i, j, k) - f.cbx(i, j - 1, k)) -
                         dt * f.jfz(i, j, k);
      }
    }
  }
  boundary_.apply(f);
  halo_->refresh(
      f, {grid::Component::kEx, grid::Component::kEy, grid::Component::kEz});
}

void FieldSolver::refresh_all(grid::FieldArray& f) {
  halo_->refresh(f, grid::em_components());
}

}  // namespace minivpic::field
