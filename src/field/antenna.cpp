#include "field/antenna.hpp"

#include <cmath>
#include <numbers>

namespace minivpic::field {

double laser_waveform(const LaserConfig& cfg, double t) {
  if (t < 0) return 0.0;
  if (cfg.duration >= 0 && t > cfg.duration) return 0.0;
  double env = 1.0;
  if (t < cfg.ramp) {
    const double s = std::sin(0.5 * std::numbers::pi * t / cfg.ramp);
    env = s * s;
  }
  return cfg.a0 * env * std::sin(cfg.omega0 * t);
}

LaserAntenna::LaserAntenna(const grid::LocalGrid& grid, const LaserConfig& cfg)
    : grid_(&grid), cfg_(cfg) {
  MV_REQUIRE(cfg.omega0 > 0, "laser frequency must be positive");
  MV_REQUIRE(cfg.a0 >= 0, "laser amplitude must be non-negative");
  MV_REQUIRE(cfg.ramp > 0, "laser ramp must be positive");
  MV_REQUIRE(cfg.global_plane >= 1 && cfg.global_plane <= grid.global_nx(),
             "laser source plane outside the global grid");
  const int li = cfg.global_plane - grid.offset_x();
  if (li >= 1 && li <= grid.nx()) local_i_ = li;
}

void LaserAntenna::deposit(grid::FieldArray& f, double t) const {
  if (local_i_ < 0) return;
  // Surface current K = -2 E0 f(t); as a volume current density in the
  // source cells, J = K / dx. Sample the waveform at the step midpoint,
  // where the leapfrog scheme wants J.
  const double w = laser_waveform(cfg_, t + 0.5 * grid_->dt());
  const grid::real j = grid::real(-2.0 * w / grid_->dx());
  if (j == 0) return;
  for (int k = 1; k <= grid_->nz(); ++k) {
    for (int jy = 1; jy <= grid_->ny(); ++jy) {
      if (cfg_.polarize_z) {
        f.jfz(local_i_, jy, k) += j;
      } else {
        f.jfy(local_i_, jy, k) += j;
      }
    }
  }
}

}  // namespace minivpic::field
