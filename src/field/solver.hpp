// Explicit FDTD field advance on the Yee mesh (the VPIC field solver).
//
// Leapfrog schedule used by the simulation loop (E, B at integer steps;
// particle momenta at half steps):
//   1. particles: interpolate E,B(t), push, deposit J(t+dt/2)
//   2. advance_b(0.5)   — B to t+dt/2 using E(t)
//   3. advance_e()      — E to t+dt using B(t+dt/2) and J(t+dt/2)
//   4. advance_b(0.5)   — B to t+dt using E(t+dt)
// Each advance refreshes the ghost planes it invalidated, so on entry to
// every stage the stencils may read ghosts freely.
#pragma once

#include "field/boundary_ops.hpp"
#include "grid/fields.hpp"
#include "grid/halo.hpp"

namespace minivpic::field {

class FieldSolver {
 public:
  /// `halo` must outlive the solver.
  FieldSolver(const grid::LocalGrid& grid, grid::Halo* halo);

  /// cB -= frac*dt * curl E over the interior; refreshes B ghosts.
  void advance_b(grid::FieldArray& f, double frac);

  /// E += dt * (curl cB - J) over the interior, applies wall boundary
  /// conditions (PEC / Mur) on global faces, refreshes E ghosts.
  void advance_e(grid::FieldArray& f);

  /// Ghost refresh for both E and B — call once after initializing fields
  /// (and after checkpoint restore) so stencils see consistent ghosts.
  void refresh_all(grid::FieldArray& f);

  FieldBoundary& boundary() { return boundary_; }

  /// Flop count per interior voxel of one advance_b(frac) + advance_e()
  /// + advance_b(frac) field update (for the performance model).
  static constexpr double flops_per_voxel() {
    // advance_b: 3 comps x (2 diff + 2 scale + 1 fma) x 2 half steps,
    // advance_e: 3 comps x (2 diff + 2 scale + 1 J term + 1 add).
    return 2 * 3 * 7 + 3 * 8;
  }

 private:
  const grid::LocalGrid* grid_;
  grid::Halo* halo_;
  FieldBoundary boundary_;
};

}  // namespace minivpic::field
