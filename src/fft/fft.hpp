// Radix-2 FFT for diagnostics (backscatter spectra, mode analysis).
//
// Scope is deliberately small: power-of-two complex transforms plus the
// helpers the spectra diagnostics need. This is a diagnostic substrate, not
// a performance kernel.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace minivpic::fft {

/// In-place complex FFT. `data.size()` must be a power of two.
/// `inverse` applies the conjugate transform *and* the 1/N normalization,
/// so forward followed by inverse is the identity.
void transform(std::span<std::complex<double>> data, bool inverse = false);

/// Forward FFT of a real series (zero imaginary part); returns the full
/// complex spectrum of length next_pow2(n) with the input zero-padded.
std::vector<std::complex<double>> real_spectrum(std::span<const double> data);

/// One-sided power spectrum |X_k|^2 for k = 0..N/2 of a real series,
/// zero-padded to the next power of two. The frequency of bin k is
/// k / (N * dt) cycles per unit time (N = padded length).
std::vector<double> power_spectrum(std::span<const double> data);

/// Index of the largest bin in spectrum[lo, hi) — used to find the dominant
/// mode; returns lo if the window is empty of power.
std::size_t peak_bin(std::span<const double> spectrum, std::size_t lo,
                     std::size_t hi);

/// Angular frequency of bin k for a series sampled at interval dt and padded
/// length n: omega_k = 2*pi*k / (n*dt).
double bin_omega(std::size_t k, std::size_t padded_n, double dt);

}  // namespace minivpic::fft
