#include "fft/fft.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/math.hpp"

namespace minivpic::fft {

void transform(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  MV_REQUIRE(n > 0 && is_pow2(n), "FFT length must be a power of two, got " << n);
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Iterative Cooley–Tukey butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

std::vector<std::complex<double>> real_spectrum(std::span<const double> data) {
  MV_REQUIRE(!data.empty(), "cannot transform an empty series");
  const std::size_t n = next_pow2(data.size());
  std::vector<std::complex<double>> buf(n, {0.0, 0.0});
  for (std::size_t i = 0; i < data.size(); ++i) buf[i] = {data[i], 0.0};
  transform(buf);
  return buf;
}

std::vector<double> power_spectrum(std::span<const double> data) {
  const auto spec = real_spectrum(data);
  std::vector<double> power(spec.size() / 2 + 1);
  for (std::size_t k = 0; k < power.size(); ++k) power[k] = std::norm(spec[k]);
  return power;
}

std::size_t peak_bin(std::span<const double> spectrum, std::size_t lo,
                     std::size_t hi) {
  MV_REQUIRE(lo < hi && hi <= spectrum.size(), "bad peak window");
  std::size_t best = lo;
  for (std::size_t k = lo; k < hi; ++k) {
    if (spectrum[k] > spectrum[best]) best = k;
  }
  return best;
}

double bin_omega(std::size_t k, std::size_t padded_n, double dt) {
  MV_REQUIRE(padded_n > 0 && dt > 0.0, "bad spectrum parameters");
  return 2.0 * std::numbers::pi * static_cast<double>(k) /
         (static_cast<double>(padded_n) * dt);
}

}  // namespace minivpic::fft
