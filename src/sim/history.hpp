// Time-series recorders: the energy history every production PIC campaign
// logs, and point field probes for spectral analysis, with CSV output for
// plotting.
#pragma once

#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "util/csv.hpp"

namespace minivpic::sim {

/// Records the global energy budget over time. Collective: every rank must
/// call sample() each time.
class EnergyHistory {
 public:
  explicit EnergyHistory(Simulation& sim);

  /// Appends the current energies. Call at whatever cadence you like.
  void sample();

  std::size_t size() const { return time_.size(); }
  const std::vector<double>& time() const { return time_; }
  const std::vector<double>& field_energy() const { return field_; }
  const std::vector<double>& kinetic_energy() const { return kinetic_; }
  const std::vector<double>& total_energy() const { return total_; }
  /// Kinetic energy history of one species (deck order).
  const std::vector<double>& species_kinetic(std::size_t s) const;

  /// Maximum |total(t) - total(0)| / total(0) over the recorded history.
  double worst_relative_drift() const;

  /// Full history as a table (one row per sample).
  Table to_table() const;
  void write_csv(const std::string& path) const;

 private:
  Simulation* sim_;
  std::vector<double> time_, field_, kinetic_, total_;
  std::vector<std::vector<double>> per_species_;
};

/// Records one field component at a fixed global cell each sample — feed
/// the series to fft::power_spectrum to identify mode frequencies. Works
/// on any rank layout; series() is non-empty only on the owning rank.
class FieldProbe {
 public:
  FieldProbe(Simulation& sim, grid::Component component, int gi, int gj,
             int gk);

  void sample();

  bool owns_point() const { return local_[0] > 0; }
  const std::vector<double>& series() const { return series_; }
  const std::vector<double>& time() const { return time_; }

 private:
  Simulation* sim_;
  grid::Component component_;
  std::array<int, 3> local_{-1, -1, -1};
  std::vector<double> series_, time_;
};

}  // namespace minivpic::sim
