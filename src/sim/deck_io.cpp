#include "sim/deck_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace minivpic::sim {

namespace {

std::string trim(const std::string& s) {
  const auto a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  const auto b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

std::vector<DeckSection> tokenize(std::istream& in) {
  std::vector<DeckSection> sections;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      MV_REQUIRE(line.back() == ']',
                 "deck line " << lineno << ": unterminated section header");
      sections.push_back({trim(line.substr(1, line.size() - 2)), {}, {}, lineno});
      MV_REQUIRE(!sections.back().header.empty(),
                 "deck line " << lineno << ": empty section header");
      continue;
    }
    MV_REQUIRE(!sections.empty(),
               "deck line " << lineno << ": key before any [section]");
    // [campaign] values are comma lists ("laser.a0 = 0.05, 0.10") that the
    // whitespace tokenizer below would mangle; keep the raw lines and let
    // campaign::CampaignSpec parse them with its own grammar.
    if (sections.back().header == "campaign") {
      sections.back().raw_lines.push_back(line);
      continue;
    }
    // Multiple `key = value` pairs per line: split on '=' with the key
    // being the last token before it and the value the first after it.
    std::istringstream ss(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ss >> tok) {
      // Normalize "k=v", "k =v", "k= v" into separate tokens.
      std::string cur;
      for (char c : tok) {
        if (c == '=') {
          if (!cur.empty()) tokens.push_back(cur);
          tokens.push_back("=");
          cur.clear();
        } else {
          cur += c;
        }
      }
      if (!cur.empty()) tokens.push_back(cur);
    }
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      if (tokens[t] != "=") continue;
      MV_REQUIRE(t > 0 && t + 1 < tokens.size() && tokens[t - 1] != "=" &&
                     tokens[t + 1] != "=",
                 "deck line " << lineno << ": malformed key = value");
      sections.back().values[tokens[t - 1]] = tokens[t + 1];
    }
  }
  return sections;
}

double to_double(const DeckSection& s, const std::string& key, double fallback,
                 bool* used = nullptr) {
  const auto it = s.values.find(key);
  if (it == s.values.end()) return fallback;
  if (used != nullptr) *used = true;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  MV_REQUIRE(end != nullptr && *end == '\0',
             "deck [" << s.header << "] " << key << ": not a number: "
                      << it->second);
  return v;
}

int to_int(const DeckSection& s, const std::string& key, int fallback) {
  const double v = to_double(s, key, fallback);
  MV_REQUIRE(v == std::int64_t(v),
             "deck [" << s.header << "] " << key << ": expected an integer");
  return int(v);
}

bool to_bool(const DeckSection& s, const std::string& key, bool fallback) {
  const auto it = s.values.find(key);
  if (it == s.values.end()) return fallback;
  if (it->second == "true" || it->second == "1" || it->second == "yes")
    return true;
  if (it->second == "false" || it->second == "0" || it->second == "no")
    return false;
  MV_REQUIRE(false, "deck [" << s.header << "] " << key
                             << ": not a boolean: " << it->second);
  return fallback;
}

grid::BoundaryKind field_bc(const DeckSection& s, const std::string& key) {
  const auto it = s.values.find(key);
  if (it == s.values.end()) return grid::BoundaryKind::kPeriodic;
  if (it->second == "periodic") return grid::BoundaryKind::kPeriodic;
  if (it->second == "pec") return grid::BoundaryKind::kPec;
  if (it->second == "absorbing") return grid::BoundaryKind::kAbsorbing;
  MV_REQUIRE(false, "deck [grid] " << key << ": unknown boundary '"
                                   << it->second << "'");
  return grid::BoundaryKind::kPeriodic;
}

particles::ParticleBc particle_bc(const DeckSection& s,
                                  const std::string& key) {
  const auto it = s.values.find(key);
  if (it == s.values.end()) return particles::ParticleBc::kPeriodic;
  if (it->second == "periodic") return particles::ParticleBc::kPeriodic;
  if (it->second == "reflect") return particles::ParticleBc::kReflect;
  if (it->second == "absorb") return particles::ParticleBc::kAbsorb;
  if (it->second == "reflux") return particles::ParticleBc::kReflux;
  MV_REQUIRE(false, "deck [grid] " << key << ": unknown particle BC '"
                                   << it->second << "'");
  return particles::ParticleBc::kPeriodic;
}

void check_known(const DeckSection& s,
                 std::initializer_list<const char*> keys) {
  for (const auto& [key, value] : s.values) {
    (void)value;
    bool ok = false;
    for (const char* k : keys) ok |= (key == k);
    MV_REQUIRE(ok, "deck [" << s.header << "]: unknown key '" << key << "'");
  }
}

}  // namespace

DeckOverride parse_override(const std::string& spec) {
  const auto eq = spec.find('=');
  MV_REQUIRE(eq != std::string::npos && eq > 0,
             "override '" << spec << "': expected section.key=value");
  const std::string dotted = trim(spec.substr(0, eq));
  const std::string value = trim(spec.substr(eq + 1));
  // The last dot splits section from key, so multi-word headers work:
  // "species electron.uth" -> section "species electron", key "uth".
  const auto dot = dotted.rfind('.');
  MV_REQUIRE(dot != std::string::npos && dot > 0 && dot + 1 < dotted.size(),
             "override '" << spec << "': expected section.key=value");
  MV_REQUIRE(!value.empty(), "override '" << spec << "': empty value");
  return {trim(dotted.substr(0, dot)), trim(dotted.substr(dot + 1)), value};
}

DeckSource DeckSource::from_stream(std::istream& in) {
  DeckSource src;
  src.sections_ = tokenize(in);
  return src;
}

DeckSource DeckSource::from_text(const std::string& text) {
  std::istringstream in(text);
  return from_stream(in);
}

DeckSource DeckSource::from_file(const std::string& path) {
  std::ifstream in(path);
  MV_REQUIRE(in.good(), "cannot open deck file: " << path);
  return from_stream(in);
}

void DeckSource::apply_override(const DeckOverride& ov) {
  MV_REQUIRE(!ov.key.empty() && !ov.section.empty() && !ov.value.empty(),
             "deck override needs section, key and value");
  for (DeckSection& s : sections_) {
    if (s.header == ov.section) {
      s.values[ov.key] = ov.value;
      return;
    }
  }
  // Singleton sections may be created on demand ("control.sort_period = 10"
  // on a deck with no [control] block); a species or collision section must
  // exist — an override cannot invent one.
  const std::string kind = ov.section.substr(0, ov.section.find(' '));
  MV_REQUIRE(kind == "grid" || kind == "control" || kind == "laser",
             "deck override '" << ov.spec() << "': no section ["
                               << ov.section << "] in the deck");
  MV_REQUIRE(kind == ov.section, "deck override '"
                                     << ov.spec() << "': malformed section ["
                                     << ov.section << "]");
  sections_.push_back({ov.section, {{ov.key, ov.value}}, {}, 0});
}

void DeckSource::apply_override(const std::string& dotted_key,
                                const std::string& value) {
  apply_override(parse_override(dotted_key + "=" + value));
}

std::vector<std::string> DeckSource::campaign_lines() const {
  std::vector<std::string> lines;
  for (const DeckSection& s : sections_) {
    if (s.header != "campaign") continue;
    lines.insert(lines.end(), s.raw_lines.begin(), s.raw_lines.end());
  }
  return lines;
}

std::string DeckSource::canonical_text() const {
  std::string out;
  for (const DeckSection& s : sections_) {
    if (s.header == "campaign") continue;
    out += "[" + s.header + "]\n";
    for (const auto& [key, value] : s.values)  // std::map: sorted by key
      out += key + " = " + value + "\n";
  }
  return out;
}

Deck DeckSource::build() const {
  Deck deck;
  bool have_grid = false;
  for (const DeckSection& s : sections_) {
    std::istringstream hs(s.header);
    std::string kind;
    hs >> kind;
    if (kind == "campaign") {
      // Batch-orchestration axes (campaign/spec.hpp); not part of a single
      // simulation's configuration.
      continue;
    }
    if (kind == "grid") {
      check_known(s, {"nx", "ny", "nz", "dx", "dy", "dz", "x0", "y0", "z0",
                      "dt", "cfl", "boundary_x", "boundary_y", "boundary_z",
                      "particle_bc_x", "particle_bc_y", "particle_bc_z"});
      have_grid = true;
      deck.grid.nx = to_int(s, "nx", 1);
      deck.grid.ny = to_int(s, "ny", 1);
      deck.grid.nz = to_int(s, "nz", 1);
      deck.grid.dx = to_double(s, "dx", 1.0);
      deck.grid.dy = to_double(s, "dy", deck.grid.dx);
      deck.grid.dz = to_double(s, "dz", deck.grid.dx);
      deck.grid.x0 = to_double(s, "x0", 0.0);
      deck.grid.y0 = to_double(s, "y0", 0.0);
      deck.grid.z0 = to_double(s, "z0", 0.0);
      deck.grid.dt = to_double(s, "dt", 0.0);
      deck.grid.cfl = to_double(s, "cfl", 0.99);
      for (int axis = 0; axis < 3; ++axis) {
        const std::string suffix(1, char('x' + axis));
        const auto kind_bc = field_bc(s, "boundary_" + suffix);
        deck.grid.boundary[std::size_t(2 * axis)] = kind_bc;
        deck.grid.boundary[std::size_t(2 * axis + 1)] = kind_bc;
        const auto pbc = particle_bc(s, "particle_bc_" + suffix);
        deck.particle_bc[std::size_t(2 * axis)] = pbc;
        deck.particle_bc[std::size_t(2 * axis + 1)] = pbc;
      }
    } else if (kind == "species") {
      check_known(s, {"q", "m", "ppc", "density", "uth", "uth_x", "uth_y",
                      "uth_z", "drift_x", "drift_y", "drift_z", "seed",
                      "mobile", "reflux_uth", "slab_x0", "slab_x1"});
      SpeciesConfig sc;
      hs >> sc.name;
      MV_REQUIRE(!sc.name.empty(),
                 "deck line " << s.line << ": species needs a name");
      sc.q = to_double(s, "q", -1.0);
      sc.m = to_double(s, "m", 1.0);
      sc.load.ppc = to_int(s, "ppc", 8);
      sc.load.density = to_double(s, "density", 1.0);
      sc.load.uth = to_double(s, "uth", 0.0);
      sc.load.uth3 = {to_double(s, "uth_x", 0.0), to_double(s, "uth_y", 0.0),
                      to_double(s, "uth_z", 0.0)};
      sc.load.drift = {to_double(s, "drift_x", 0.0),
                       to_double(s, "drift_y", 0.0),
                       to_double(s, "drift_z", 0.0)};
      sc.load.seed = std::uint64_t(to_double(s, "seed", 12345));
      sc.mobile = to_bool(s, "mobile", true);
      sc.reflux_uth = to_double(s, "reflux_uth", -1.0);
      bool has_slab = false;
      const double x0 = to_double(s, "slab_x0", 0.0, &has_slab);
      const double x1 = to_double(s, "slab_x1", 0.0, &has_slab);
      if (has_slab) {
        MV_REQUIRE(x1 > x0, "deck species " << sc.name
                                            << ": slab_x1 must exceed slab_x0");
        sc.load.profile = [x0, x1](double x, double, double) {
          return (x >= x0 && x < x1) ? 1.0 : 0.0;
        };
      }
      deck.species.push_back(std::move(sc));
    } else if (kind == "laser") {
      check_known(s, {"omega0", "a0", "ramp", "duration", "plane",
                      "polarize_z"});
      field::LaserConfig lc;
      lc.omega0 = to_double(s, "omega0", 3.0);
      lc.a0 = to_double(s, "a0", 0.01);
      lc.ramp = to_double(s, "ramp", 10.0);
      lc.duration = to_double(s, "duration", -1.0);
      lc.global_plane = to_int(s, "plane", 2);
      lc.polarize_z = to_bool(s, "polarize_z", false);
      deck.laser = lc;
    } else if (kind == "control") {
      check_known(s, {"sort_period", "sort_every", "clean_period",
                      "clean_passes",
                      "init_settle_passes", "collision_seed", "pipelines",
                      "kernel", "overlap",
                      "checkpoint_every", "checkpoint_keep", "health_period",
                      "health_policy", "health_max_energy_growth",
                      "health_max_particle_loss", "health_rollback_window"});
      // `sort_every` is the documented name (docs/SORTING.md); `sort_period`
      // is the original spelling and still accepted. When both appear,
      // sort_every wins. 0 = never sort; the deck-file default stays 20
      // (the seed behavior every measured rate in the docs assumes).
      deck.sort_period = to_int(s, "sort_every",
                                to_int(s, "sort_period", 20));
      // Deck files are the production front end: default to hardware-aware
      // (0 = one pipeline per hardware thread). Programmatic decks keep the
      // serial default of the Deck struct.
      deck.pipelines = to_int(s, "pipelines", 0);
      // Same production-front-end convention for the advance kernel: deck
      // files default to the widest kernel the host supports; programmatic
      // decks keep the Deck struct's scalar default. Unknown names throw
      // with the valid set (particles::parse_kernel).
      if (const auto it = s.values.find("kernel"); it != s.values.end()) {
        deck.kernel = particles::parse_kernel(it->second);
      } else {
        deck.kernel = particles::Kernel::kAuto;
      }
      // Comm/compute overlap (docs/OVERLAP.md): on | off | auto. The
      // default stays kAuto (on for multi-rank runs, off otherwise).
      if (const auto it = s.values.find("overlap"); it != s.values.end()) {
        if (it->second == "on") {
          deck.overlap = Deck::Overlap::kOn;
        } else if (it->second == "off") {
          deck.overlap = Deck::Overlap::kOff;
        } else if (it->second == "auto") {
          deck.overlap = Deck::Overlap::kAuto;
        } else {
          MV_REQUIRE(false, "deck [control] overlap: unknown mode '"
                                << it->second << "' (on|off|auto)");
        }
      }
      deck.clean_period = to_int(s, "clean_period", 0);
      deck.clean_passes = to_int(s, "clean_passes", 2);
      deck.init_settle_passes = to_int(s, "init_settle_passes", 0);
      deck.collision_seed = std::uint64_t(to_double(s, "collision_seed", 777));
      deck.checkpoint_every = to_int(s, "checkpoint_every", 0);
      deck.checkpoint_keep = to_int(s, "checkpoint_keep", 2);
      MV_REQUIRE(deck.checkpoint_every >= 0 && deck.checkpoint_keep >= 1,
                 "deck [control]: invalid checkpoint cadence");
      deck.health.period = to_int(s, "health_period", 0);
      MV_REQUIRE(deck.health.period >= 0,
                 "deck [control]: health_period must be >= 0");
      deck.health.max_energy_growth =
          to_double(s, "health_max_energy_growth",
                    deck.health.max_energy_growth);
      deck.health.max_particle_loss =
          to_double(s, "health_max_particle_loss",
                    deck.health.max_particle_loss);
      deck.health.rollback_window =
          to_int(s, "health_rollback_window", deck.health.rollback_window);
      if (const auto it = s.values.find("health_policy");
          it != s.values.end()) {
        if (it->second == "abort") {
          deck.health.policy = HealthPolicy::kAbort;
        } else if (it->second == "rollback") {
          deck.health.policy = HealthPolicy::kRollback;
        } else if (it->second == "warn") {
          deck.health.policy = HealthPolicy::kWarn;
        } else {
          MV_REQUIRE(false, "deck [control] health_policy: unknown policy '"
                                << it->second << "'");
        }
      }
    } else if (kind == "collision") {
      check_known(s, {"nu_scale", "period"});
      CollisionSpec cs;
      hs >> cs.species_a >> cs.species_b;
      MV_REQUIRE(!cs.species_a.empty() && !cs.species_b.empty(),
                 "deck line " << s.line
                              << ": [collision <a> <b>] needs two species");
      cs.nu_scale = to_double(s, "nu_scale", 0.0);
      cs.period = to_int(s, "period", 10);
      deck.collisions.push_back(std::move(cs));
    } else {
      MV_REQUIRE(false, "deck line " << s.line << ": unknown section ["
                                     << s.header << "]");
    }
  }
  MV_REQUIRE(have_grid, "deck has no [grid] section");
  MV_REQUIRE(!deck.species.empty(), "deck has no [species ...] sections");
  return deck;
}

Deck parse_deck(std::istream& in) { return DeckSource::from_stream(in).build(); }

Deck load_deck_file(const std::string& path) {
  return DeckSource::from_file(path).build();
}

Deck load_deck_file(const std::string& path,
                    const std::vector<DeckOverride>& overrides) {
  DeckSource src = DeckSource::from_file(path);
  for (const DeckOverride& ov : overrides) src.apply_override(ov);
  return src.build();
}

}  // namespace minivpic::sim
