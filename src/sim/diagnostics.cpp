#include "sim/diagnostics.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace minivpic::sim {

ReflectivityProbe::ReflectivityProbe(Simulation& sim, int global_plane)
    : sim_(&sim) {
  const auto& g = sim.local_grid();
  MV_REQUIRE(global_plane >= 1 && global_plane <= g.global_nx(),
             "probe plane outside the global grid");
  const int li = global_plane - g.offset_x();
  if (li >= 1 && li <= g.nx()) {
    local_plane_ = li;
    area_weight_ = double(g.ny()) * g.nz() /
                   (double(g.global_ny()) * g.global_nz());
  }
}

void ReflectivityProbe::sample(double warmup_time) {
  if (local_plane_ > 0) {
    const auto& f = sim_->fields();
    const auto [fwd, bwd] = field::wave_power_x(f, local_plane_);
    if (sim_->time() >= warmup_time) {
      fwd_sum_ += fwd * area_weight_;
      bwd_sum_ += bwd * area_weight_;
    }
    // Backward field amplitude at the first owned transverse point
    // (co-located cBz as in wave_power_x).
    const double cbz =
        0.5 * (double(f.cbz(local_plane_ - 1, 1, 1)) + f.cbz(local_plane_, 1, 1));
    series_.push_back(0.5 * (double(f.ey(local_plane_, 1, 1)) - cbz));
  }
  if (sim_->time() >= warmup_time) ++samples_;
}

double ReflectivityProbe::forward_power() const {
  double v = samples_ > 0 ? fwd_sum_ / double(samples_) : 0.0;
  if (sim_->comm() != nullptr) v = sim_->comm()->allreduce_value(v, vmpi::Op::kSum);
  return v;
}

double ReflectivityProbe::backward_power() const {
  double v = samples_ > 0 ? bwd_sum_ / double(samples_) : 0.0;
  if (sim_->comm() != nullptr) v = sim_->comm()->allreduce_value(v, vmpi::Op::kSum);
  return v;
}

double ReflectivityProbe::reflectivity() const {
  const double fwd = forward_power();
  const double bwd = backward_power();
  return fwd > 0 ? bwd / fwd : 0.0;
}

ParticleSpectrum::ParticleSpectrum(double e_min, double e_max,
                                   std::size_t bins, bool log_bins)
    : e_min_(e_min), e_max_(e_max), log_(log_bins), counts_(bins, 0.0) {
  MV_REQUIRE(bins > 0, "spectrum needs at least one bin");
  MV_REQUIRE(e_max > e_min, "empty energy range");
  if (log_) MV_REQUIRE(e_min > 0, "log-binned spectrum needs e_min > 0");
}

void ParticleSpectrum::build(Simulation& sim, const particles::Species& sp) {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  total_ = 0;
  const double lo = log_ ? std::log(e_min_) : e_min_;
  const double hi = log_ ? std::log(e_max_) : e_max_;
  for (const particles::Particle& p : sp.particles()) {
    const double e = (gamma_of_u(p.ux, p.uy, p.uz) - 1.0) * sp.m();
    total_ += p.w;
    double x = log_ ? (e > 0 ? std::log(e) : lo - 1) : e;
    const double f = (x - lo) / (hi - lo) * double(counts_.size());
    const long long b = (long long)std::floor(f);
    if (b >= 0 && b < (long long)counts_.size())
      counts_[std::size_t(b)] += p.w;
  }
  if (sim.comm() != nullptr) {
    sim.comm()->allreduce(std::span<double>(counts_), vmpi::Op::kSum);
    total_ = sim.comm()->allreduce_value(total_, vmpi::Op::kSum);
  }
}

double ParticleSpectrum::bin_center(std::size_t b) const {
  const double lo = log_ ? std::log(e_min_) : e_min_;
  const double hi = log_ ? std::log(e_max_) : e_max_;
  const double x = lo + (hi - lo) * (double(b) + 0.5) / double(counts_.size());
  return log_ ? std::exp(x) : x;
}

double ParticleSpectrum::fraction_above(double energy) const {
  if (total_ <= 0) return 0.0;
  double above = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (bin_center(b) >= energy) above += counts_[b];
  }
  return above / total_;
}

}  // namespace minivpic::sim
