// Text deck files: run parameter studies without recompiling, VPIC-deck
// style. The format is INI-like sections of `key = value` lines:
//
//   # LPI slab, comments start with '#'
//   [grid]
//   nx = 480          ny = 1            nz = 1
//   dx = 0.2          cfl = 0.99
//   boundary_x = absorbing      # periodic | pec | absorbing
//   boundary_y = periodic
//   boundary_z = periodic
//   particle_bc_x = absorb      # periodic | reflect | absorb | reflux
//
//   [species electron]
//   q = -1            m = 1
//   ppc = 128         uth = 0.0626
//   drift_x = 0       mobile = true
//   slab_x0 = 6.0     slab_x1 = 90.0    # optional density slab along x
//
//   [laser]
//   omega0 = 3.162    a0 = 0.1          ramp = 10     plane = 2
//
//   [control]
//   sort_period = 20  clean_period = 50
//
//   [collision electron electron]
//   nu_scale = 1e-4   period = 10
//
// One `key = value` pair per whitespace-separated token group; multiple
// pairs may share a line. Unknown keys are errors (catch typos early).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/deck.hpp"

namespace minivpic::sim {

/// Parses a deck from a stream; throws minivpic::Error with a line number
/// on malformed input.
Deck parse_deck(std::istream& in);

/// Loads a deck file from disk.
Deck load_deck_file(const std::string& path);

}  // namespace minivpic::sim
