// Text deck files: run parameter studies without recompiling, VPIC-deck
// style. The format is INI-like sections of `key = value` lines:
//
//   # LPI slab, comments start with '#'
//   [grid]
//   nx = 480          ny = 1            nz = 1
//   dx = 0.2          cfl = 0.99
//   boundary_x = absorbing      # periodic | pec | absorbing
//   boundary_y = periodic
//   boundary_z = periodic
//   particle_bc_x = absorb      # periodic | reflect | absorb | reflux
//
//   [species electron]
//   q = -1            m = 1
//   ppc = 128         uth = 0.0626
//   drift_x = 0       mobile = true
//   slab_x0 = 6.0     slab_x1 = 90.0    # optional density slab along x
//
//   [laser]
//   omega0 = 3.162    a0 = 0.1          ramp = 10     plane = 2
//
//   [control]
//   sort_period = 20  clean_period = 50
//
//   [collision electron electron]
//   nu_scale = 1e-4   period = 10
//
// One `key = value` pair per whitespace-separated token group; multiple
// pairs may share a line. Unknown keys are errors (catch typos early).
//
// A `[campaign]` section (parameter-sweep axes and batch controls, see
// campaign/spec.hpp and docs/CAMPAIGNS.md) may also be present; it is
// carried verbatim by DeckSource and ignored when building a single Deck,
// so `run_deck` can execute one point of a campaign deck unchanged.
//
// Overrides: any `section.key` of the deck grammar can be overridden after
// parsing and before building — the shared mechanism behind `run_deck
// --set section.key=value` and the campaign expander. The section part is
// the full header ("grid", "control", "species electron"); the key part is
// the final dot-separated component. Unknown keys are rejected when the
// Deck is built, with the same diagnostics as a key typed in the file.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/deck.hpp"

namespace minivpic::sim {

/// One parsed "section.key = value" deck override.
struct DeckOverride {
  std::string section;  ///< full section header, e.g. "grid", "species electron"
  std::string key;
  std::string value;

  /// Canonical "section.key=value" form (the hash/serialization shape).
  std::string spec() const { return section + "." + key + "=" + value; }
};

/// Parses "section.key=value" (the --set argument shape). The section is
/// everything before the *last* dot of the key part, so multi-word headers
/// work: "species electron.uth=0.07". Throws on a missing '=' or dot.
DeckOverride parse_override(const std::string& spec);

/// One tokenized deck section: ordered key/value pairs plus — for the
/// [campaign] section only, whose values are comma lists the generic
/// tokenizer must not split — the raw comment-stripped lines.
struct DeckSection {
  std::string header;  ///< e.g. "grid", "species electron", "campaign"
  std::map<std::string, std::string> values;
  std::vector<std::string> raw_lines;  ///< campaign sections only
  int line = 0;
};

/// A tokenized deck held between parse and build, so overrides can be
/// applied with full deck-grammar validation. This is the substrate of both
/// `run_deck --set` and the campaign job expander: parse once, clone per
/// job, override, build.
class DeckSource {
 public:
  DeckSource() = default;

  /// Parses deck text; throws minivpic::Error with a line number on
  /// malformed input. Does not validate keys (build() does).
  static DeckSource from_stream(std::istream& in);
  static DeckSource from_text(const std::string& text);
  static DeckSource from_file(const std::string& path);

  /// Sets `ov.key` in the section whose header is exactly `ov.section`.
  /// Singleton sections (grid, control, laser) are created when absent;
  /// species/collision sections must already exist (an override cannot
  /// invent a species). Key validity is checked by build().
  void apply_override(const DeckOverride& ov);

  /// Convenience: apply_override(parse_override(dotted_key + "=" + value)).
  void apply_override(const std::string& dotted_key, const std::string& value);

  /// Builds and fully validates the Deck (unknown keys/sections throw).
  /// The [campaign] section, if any, is skipped.
  Deck build() const;

  /// The [campaign] section's raw lines (comment-stripped, trimmed);
  /// empty when the deck has none. Consumed by campaign::CampaignSpec.
  std::vector<std::string> campaign_lines() const;

  /// Deterministic serialization of every non-campaign section — sections
  /// in file order, keys sorted — used as the content-hash base for
  /// campaign job ids. Two decks with equal canonical text build equal
  /// Decks.
  std::string canonical_text() const;

  const std::vector<DeckSection>& sections() const { return sections_; }

 private:
  std::vector<DeckSection> sections_;
};

/// Parses a deck from a stream; throws minivpic::Error with a line number
/// on malformed input.
Deck parse_deck(std::istream& in);

/// Loads a deck file from disk, optionally applying overrides (in order)
/// before validation.
Deck load_deck_file(const std::string& path);
Deck load_deck_file(const std::string& path,
                    const std::vector<DeckOverride>& overrides);

}  // namespace minivpic::sim
