#include "sim/deck.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/units.hpp"

namespace minivpic::sim {

Deck plasma_oscillation_deck(int cells, int ppc, double perturbation) {
  Deck d;
  d.grid.nx = cells;
  d.grid.ny = d.grid.nz = 4;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.5;

  const double lx = d.grid.lx();
  const double k = 2.0 * std::numbers::pi / lx;

  SpeciesConfig electrons;
  electrons.name = "electron";
  electrons.q = -1.0;
  electrons.m = 1.0;
  electrons.load.ppc = ppc;
  electrons.load.uth = 0.0;  // cold: oscillates at exactly omega_pe
  electrons.load.drift_profile = [k, perturbation](double x, double, double) {
    return std::array<double, 3>{perturbation * std::sin(k * x), 0, 0};
  };
  d.species.push_back(electrons);

  SpeciesConfig ions;
  ions.name = "ion";
  ions.q = +1.0;
  ions.m = 1836.0;
  ions.load.ppc = ppc;
  ions.mobile = false;
  d.species.push_back(ions);
  return d;
}

Deck two_stream_deck(int cells, int ppc, double u_drift) {
  Deck d;
  d.grid.nx = cells;
  d.grid.ny = d.grid.nz = 4;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.5;

  for (int s = 0; s < 2; ++s) {
    SpeciesConfig beam;
    beam.name = s == 0 ? "beam_fwd" : "beam_bwd";
    beam.q = -1.0;
    beam.m = 1.0;
    beam.load.ppc = ppc;
    beam.load.density = 0.5;  // two half-density beams
    beam.load.uth = 0.002;    // tiny spread to seed the instability
    beam.load.drift = {s == 0 ? u_drift : -u_drift, 0, 0};
    beam.load.seed = 100 + std::uint64_t(s);
    d.species.push_back(beam);
  }

  SpeciesConfig ions;
  ions.name = "ion";
  ions.q = +1.0;
  ions.m = 1836.0;
  ions.load.ppc = ppc;
  ions.load.density = 1.0;
  ions.mobile = false;
  d.species.push_back(ions);
  return d;
}

Deck weibel_deck(int cells, int ppc, double uth_hot, double uth_cold) {
  Deck d;
  d.grid.nx = cells;
  d.grid.ny = cells;
  d.grid.nz = 4;
  d.grid.dx = d.grid.dy = d.grid.dz = 0.5;

  SpeciesConfig electrons;
  electrons.name = "electron";
  electrons.q = -1.0;
  electrons.m = 1.0;
  electrons.load.ppc = ppc;
  // Hot along z, cold in the simulation plane: B_z filaments grow in (x,y).
  electrons.load.uth3 = {uth_cold, uth_cold, uth_hot};
  d.species.push_back(electrons);

  SpeciesConfig ions;
  ions.name = "ion";
  ions.q = +1.0;
  ions.m = 1836.0;
  ions.load.ppc = ppc;
  ions.mobile = false;
  d.species.push_back(ions);
  return d;
}

Deck lpi_deck(const LpiParams& p) {
  MV_REQUIRE(p.n_over_nc > 0 && p.n_over_nc < 0.25,
             "SRS study needs underdense plasma (n/n_c < 1/4)");
  MV_REQUIRE(p.vacuum_cells * 2 < p.nx, "vacuum gaps exceed the box");

  Deck d;
  d.grid.nx = p.nx;
  d.grid.ny = p.ny;
  d.grid.nz = p.nz;
  d.grid.dx = d.grid.dy = d.grid.dz = p.dx;
  d.grid.boundary = grid::lpi_boundaries();
  d.particle_bc = particles::lpi_particles();
  d.sort_period = 20;
  d.clean_period = 50;

  const double x_lo = p.vacuum_cells * p.dx;
  const double x_hi = (p.nx - p.vacuum_cells) * p.dx;
  const auto slab = [x_lo, x_hi](double x, double, double) {
    return (x >= x_lo && x < x_hi) ? 1.0 : 0.0;
  };

  SpeciesConfig electrons;
  electrons.name = "electron";
  electrons.q = -1.0;
  electrons.m = 1.0;
  electrons.load.ppc = p.ppc;
  electrons.load.uth = units::uth_from_te_kev(p.te_kev);
  electrons.load.profile = slab;
  electrons.load.seed = p.seed;
  d.species.push_back(electrons);

  SpeciesConfig ions;
  ions.name = "ion";
  ions.q = +1.0;
  ions.m = p.ion_mass;
  ions.load.ppc = p.ppc;
  // Roughly Ti = Te/3, a typical hohlraum ratio.
  ions.load.uth = units::uth_from_te_kev(p.te_kev / 3.0) / std::sqrt(p.ion_mass);
  ions.load.profile = slab;
  ions.load.seed = p.seed;
  ions.mobile = p.mobile_ions;
  d.species.push_back(ions);

  field::LaserConfig laser;
  laser.omega0 = units::omega0_over_omegape(p.n_over_nc);
  laser.a0 = p.a0;
  laser.ramp = p.laser_ramp;
  laser.global_plane = 2;
  d.laser = laser;
  return d;
}

}  // namespace minivpic::sim
