// Test-only fault injection: the proof harness for the resilience layer.
//
// Two families of fault, matching the two defenses under test:
//  * Runtime state corruption — plant a NaN in a field component or a
//    particle momentum at a scheduled step, and verify sim::HealthMonitor
//    catches it within its scan period and applies the configured policy.
//  * Stored-checkpoint corruption — truncate a file or flip a bit inside a
//    chosen section of a written set, and verify Checkpoint::restore rejects
//    it by checksum and falls back to an older rotation.
//
// Linked into the library so the `resilience` test binary and ad-hoc drills
// can use it, but nothing in the production path calls it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/halo.hpp"
#include "sim/simulation.hpp"

namespace minivpic::sim {

class FaultInjector {
 public:
  // -- runtime faults -----------------------------------------------------

  /// Writes a quiet NaN into `component` at `voxel` (default: the rank's
  /// first interior voxel).
  static void poison_field(Simulation& sim, grid::Component component,
                           std::int32_t voxel = -1);

  /// Sets particle `index` of species `species_index` to NaN momentum.
  static void poison_particle(Simulation& sim, std::size_t species_index,
                              std::size_t index = 0);

  /// Schedules a field NaN to be planted when apply_due() sees `step`.
  void schedule_field_nan(std::int64_t step, grid::Component component,
                          std::int32_t voxel = -1);

  /// Schedules a particle-momentum NaN likewise.
  void schedule_particle_nan(std::int64_t step, std::size_t species_index,
                             std::size_t index = 0);

  /// Call once per loop iteration: plants every fault scheduled for the
  /// simulation's current step. Returns how many fired. Faults stay
  /// scheduled (a rolled-back run re-encounters them — exactly the
  /// recurrence the rollback window must catch).
  int apply_due(Simulation& sim) const;

  // -- stored-checkpoint corruption ---------------------------------------

  /// Truncates `path` to its first `keep_bytes` bytes.
  static void truncate_file(const std::string& path,
                            std::uint64_t keep_bytes);

  /// Flips one bit of the byte at `offset`.
  static void flip_bit(const std::string& path, std::uint64_t offset,
                       int bit = 0);

  /// Flips a bit in the middle of the payload of the first section matching
  /// (kind, index) — see Checkpoint::kFieldSection / kSpeciesSection.
  /// Throws if the file has no such section.
  static void corrupt_section(const std::string& path, std::uint32_t kind,
                              std::uint32_t index);

 private:
  struct ScheduledFault {
    std::int64_t step = 0;
    bool field = true;
    grid::Component component{};
    std::int32_t voxel = -1;
    std::size_t species_index = 0;
    std::size_t particle_index = 0;
  };
  std::vector<ScheduledFault> scheduled_;
};

}  // namespace minivpic::sim
