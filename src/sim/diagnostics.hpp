// Science diagnostics: the laser reflectivity probe (the paper's parameter
// -study observable), particle energy spectra (trapping / hot-electron
// diagnostics) and field probes for spectral analysis.
#pragma once

#include <vector>

#include "sim/simulation.hpp"
#include "util/stats.hpp"

namespace minivpic::sim {

/// Measures laser reflectivity at a fixed x-plane: time-averaged
/// backward-going wave power over forward-going wave power. Place the plane
/// in the vacuum gap between the antenna and the plasma. Collective across
/// ranks (every rank calls sample()/reflectivity(), including ranks not
/// owning the plane).
class ReflectivityProbe {
 public:
  ReflectivityProbe(Simulation& sim, int global_plane);

  /// Samples the current fields; call once per step (after sim.step()).
  /// Samples taken before `warmup_time` are excluded from the averages.
  void sample(double warmup_time = 0.0);

  /// Backward/forward time-averaged power ratio (globally reduced).
  double reflectivity() const;
  double forward_power() const;   ///< time-averaged, globally reduced
  double backward_power() const;

  /// Time series of the backward-going field amplitude (Ey - cBz)/2 at one
  /// point of the plane — FFT it to find the backscatter spectrum. Only
  /// meaningful on the rank owning the probe point (empty elsewhere).
  const std::vector<double>& backward_series() const { return series_; }
  bool owns_plane() const { return local_plane_ > 0; }

 private:
  Simulation* sim_;
  int local_plane_ = -1;
  double area_weight_ = 0;  ///< local transverse cells / global
  double fwd_sum_ = 0, bwd_sum_ = 0;
  std::int64_t samples_ = 0;
  std::vector<double> series_;
};

/// Kinetic-energy spectrum of a species, globally reduced. Energies in
/// units of m_e c^2 (i.e. gamma - 1).
class ParticleSpectrum {
 public:
  ParticleSpectrum(double e_min, double e_max, std::size_t bins,
                   bool log_bins = false);

  /// Builds the (weighted) spectrum for one species, reduced over ranks.
  void build(Simulation& sim, const particles::Species& sp);

  std::size_t num_bins() const { return counts_.size(); }
  double bin_center(std::size_t b) const;
  double count(std::size_t b) const { return counts_[b]; }
  const std::vector<double>& counts() const { return counts_; }

  /// Fraction of particles above an energy threshold (weighted).
  double fraction_above(double energy) const;

 private:
  double e_min_, e_max_;
  bool log_;
  std::vector<double> counts_;
  double total_ = 0;
};

}  // namespace minivpic::sim
