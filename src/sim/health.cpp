#include "sim/health.hpp"

#include <cmath>
#include <sstream>

#include "grid/halo.hpp"
#include "sim/checkpoint.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace minivpic::sim {

namespace {

/// Instant trace event for a sentinel verdict, visible in Perfetto next to
/// the step spans. No-op when the simulation has no trace sink attached.
void trace_health_event(const Simulation& sim, const char* name,
                        const HealthReport& r) {
  // The flight recorder gets the compact form: code 0 = ok-ish verdict
  // (warn/rollback survived), 1 = fault; arg = the sentinel's step.
  if (telemetry::Recorder* rec = sim.recorder())
    rec->record(telemetry::FdrKind::kHealth, r.ok() ? 0 : 1, -1,
                static_cast<std::uint64_t>(r.step));
  telemetry::TraceWriter* t = sim.trace();
  if (t == nullptr) return;
  // A NaN fault means energy_total itself may be non-finite, which strict
  // JSON cannot carry — encode those as null.
  auto finite_or_null = [](double v) {
    return std::isfinite(v) ? telemetry::Json::number(v)
                            : telemetry::Json::null();
  };
  telemetry::Json args = telemetry::Json::object();
  args.set("step", telemetry::Json::number(r.step));
  args.set("nan_field_values", telemetry::Json::number(r.nan_field_values));
  args.set("nan_particles", telemetry::Json::number(r.nan_particles));
  args.set("energy_total", finite_or_null(r.energy_total));
  args.set("energy_ref", finite_or_null(r.energy_ref));
  args.set("particles", telemetry::Json::number(r.particles));
  args.set("summary", telemetry::Json::string(r.describe()));
  t->instant(name, "health", std::move(args));
}

const std::vector<grid::Component>& all_components() {
  static const std::vector<grid::Component> comps = [] {
    auto c = grid::em_components();
    const auto src = grid::source_components();
    c.insert(c.end(), src.begin(), src.end());
    return c;
  }();
  return comps;
}

std::int64_t count_nonfinite_fields(const Simulation& sim) {
  const std::int64_t nvox = sim.local_grid().num_voxels();
  std::int64_t bad = 0;
  for (const grid::Component c : all_components()) {
    const grid::real* data = grid::component_data(sim.fields(), c);
    for (std::int64_t v = 0; v < nvox; ++v)
      if (!std::isfinite(data[v])) ++bad;
  }
  return bad;
}

std::int64_t count_nonfinite_particles(const Simulation& sim) {
  std::int64_t bad = 0;
  for (std::size_t s = 0; s < sim.num_species(); ++s) {
    for (const auto& p : sim.species(s).particles())
      if (!std::isfinite(p.ux) || !std::isfinite(p.uy) ||
          !std::isfinite(p.uz))
        ++bad;
  }
  return bad;
}

}  // namespace

std::string HealthReport::describe() const {
  std::ostringstream os;
  os << "health@step " << step << ": " << (ok() ? "OK" : "FAULT");
  if (nan_fault)
    os << " [non-finite: " << nan_field_values << " field values, "
       << nan_particles << " particle momenta]";
  if (energy_fault)
    os << " [energy " << energy_total << " vs reference " << energy_ref
       << "]";
  if (particle_fault)
    os << " [particles " << particles << " vs reference " << particles_ref
       << "]";
  if (ok())
    os << " (energy " << energy_total << ", particles " << particles << ")";
  return os.str();
}

HealthMonitor::HealthMonitor(Simulation& sim, const HealthConfig& config,
                             std::string checkpoint_prefix)
    : sim_(&sim),
      config_(config),
      checkpoint_prefix_(std::move(checkpoint_prefix)) {
  MV_REQUIRE(config_.period >= 0, "health period must be >= 0");
  if (config_.period > 0) {
    energy_ref_ = sim.energies().total;
    particles_ref_ = sim.global_particle_count();
  }
}

bool HealthMonitor::due() const {
  return config_.period > 0 && sim_->step_index() > 0 &&
         sim_->step_index() % config_.period == 0;
}

const HealthReport& HealthMonitor::scan() {
  HealthReport r;
  r.step = sim_->step_index();

  // Local non-finite scans, then one global verdict per quantity so every
  // rank agrees on the outcome (a NaN near a rank boundary may be visible
  // to only one rank until the next halo exchange).
  std::int64_t counts[2] = {count_nonfinite_fields(*sim_),
                            count_nonfinite_particles(*sim_)};
  if (auto* comm = sim_->comm()) {
    comm->allreduce(std::span<std::int64_t>(counts, 2), vmpi::Op::kSum);
  }
  r.nan_field_values = counts[0];
  r.nan_particles = counts[1];
  r.nan_fault = counts[0] > 0 || counts[1] > 0;

  // energies() and global_particle_count() are themselves collective.
  r.energy_total = sim_->energies().total;
  r.energy_ref = energy_ref_;
  r.particles = sim_->global_particle_count();
  r.particles_ref = particles_ref_;
  if (!std::isfinite(r.energy_total)) r.nan_fault = true;
  if (config_.max_energy_growth > 0 && energy_ref_ > 0 &&
      r.energy_total > config_.max_energy_growth * energy_ref_)
    r.energy_fault = true;
  if (config_.max_particle_loss < 1.0 && particles_ref_ > 0 &&
      double(r.particles) <
          (1.0 - config_.max_particle_loss) * double(particles_ref_))
    r.particle_fault = true;

  report_ = r;
  return report_;
}

void HealthMonitor::abort_run(const std::string& why) {
  // Final diagnostic dump: everything a post-mortem needs to locate the
  // fault without re-running the campaign.
  trace_health_event(*sim_, "health.abort", report_);
  MV_LOG_ERROR << "health monitor aborting: " << why;
  MV_LOG_ERROR << report_.describe();
  MV_LOG_ERROR << "step " << sim_->step_index() << ", time " << sim_->time()
               << ", last good checkpoint step "
               << (checkpoint_prefix_.empty()
                       ? -1
                       : Checkpoint::latest_step(checkpoint_prefix_));
  MV_REQUIRE(false, "health fault: " << why << " — " << report_.describe());
}

HealthMonitor::Action HealthMonitor::check() {
  if (!due()) return Action::kSkipped;
  const HealthReport& r = scan();
  if (r.ok()) return Action::kHealthy;

  trace_health_event(*sim_, "health.fault", r);
  switch (config_.policy) {
    case HealthPolicy::kWarn:
      MV_LOG_WARN << r.describe();
      return Action::kWarned;

    case HealthPolicy::kAbort:
      abort_run("policy=abort");

    case HealthPolicy::kRollback: {
      const std::int64_t fault_step = r.step;
      if (checkpoint_prefix_.empty() ||
          Checkpoint::latest_step(checkpoint_prefix_) < 0)
        abort_run("policy=rollback but no checkpoint set is available");
      if (rolled_back_ &&
          fault_step <= rollback_fault_step_ + config_.rollback_window)
        abort_run("fault recurred within " +
                  std::to_string(config_.rollback_window) +
                  " steps of the previous rollback");
      MV_LOG_WARN << r.describe();
      Checkpoint::rollback(*sim_, checkpoint_prefix_);
      MV_LOG_WARN << "health monitor rolled back to checkpoint step "
                  << sim_->step_index();
      trace_health_event(*sim_, "health.rollback", report_);
      rolled_back_ = true;
      rollback_fault_step_ = fault_step;
      return Action::kRolledBack;
    }
  }
  return Action::kHealthy;  // unreachable
}

}  // namespace minivpic::sim
