#include "sim/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "particles/collisions.hpp"
#include "particles/rho.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"

namespace minivpic::sim {

namespace {

grid::LocalGrid make_local(const Deck& deck, vmpi::Comm* comm,
                           const vmpi::CartTopology* topo) {
  if (comm == nullptr) {
    MV_REQUIRE(topo == nullptr || topo->nranks() == 1,
               "multi-rank topology without a communicator");
    return grid::LocalGrid(deck.grid);
  }
  MV_REQUIRE(topo != nullptr, "multi-rank simulation needs a topology");
  MV_REQUIRE(topo->nranks() == comm->size(),
             "topology rank count " << topo->nranks()
                                    << " != communicator size "
                                    << comm->size());
  return grid::LocalGrid(deck.grid, *topo, comm->rank());
}

}  // namespace

Simulation::Simulation(const Deck& deck, vmpi::Comm* comm,
                       const vmpi::CartTopology* topo)
    : deck_(deck),
      comm_(comm),
      grid_(make_local(deck, comm, topo)),
      fields_(grid_),
      halo_(grid_, comm),
      solver_(grid_, &halo_),
      cleaner_(grid_, &halo_),
      pipeline_(Pipeline::resolve(deck.pipelines)),
      interp_(grid_),
      // Multi-rank runs get one extra accumulator block — the migration
      // block — so the (possibly asynchronous) exchange never deposits into
      // a pipeline's block. Single-rank runs keep the historical layout
      // (their exchange is a no-op), which keeps reduce() bit-identical.
      acc_(grid_, pipeline_.size() +
                      (comm != nullptr && comm->size() > 1 ? 1 : 0)),
      pusher_(grid_, deck.particle_bc) {
  // Resolves kAuto to the widest kernel this host supports and validates
  // explicit choices (an explicitly requested unavailable kernel throws
  // here, before any particles are loaded).
  pusher_.set_kernel(deck.kernel);
  // Overlap resolution (docs/OVERLAP.md): kAuto follows the skin — overlap
  // pays off exactly when there is a remote neighbor to exchange with. kOn
  // also degrades to barriered on single-rank grids (nothing to hide).
  overlap_ = deck.overlap != Deck::Overlap::kOff && comm != nullptr &&
             comm->size() > 1;
  if (overlap_) comm_worker_ = std::make_unique<util::Worker>();
  overlap_stats_.enabled = overlap_;
  MV_REQUIRE(!deck.species.empty(), "deck has no species");
  MV_REQUIRE(deck.sort_period >= 0 && deck.clean_period >= 0 &&
                 deck.clean_passes >= 1,
             "invalid cadence settings");
  for (const SpeciesConfig& sc : deck.species) {
    species_.push_back(
        std::make_unique<particles::Species>(sc.name, sc.q, sc.m));
    mobile_.push_back(sc.mobile);
  }
  if (deck.laser) {
    antenna_ = std::make_unique<field::LaserAntenna>(grid_, *deck.laser);
  }
  for (const CollisionSpec& cs : deck.collisions) {
    MV_REQUIRE(cs.nu_scale >= 0 && cs.period >= 1,
               "invalid collision spec for " << cs.species_a);
    ResolvedCollision rc;
    rc.nu_scale = cs.nu_scale;
    rc.period = cs.period;
    bool found_a = false, found_b = false;
    for (std::size_t s = 0; s < species_.size(); ++s) {
      if (species_[s]->name() == cs.species_a) {
        rc.a = s;
        found_a = true;
      }
      if (species_[s]->name() == cs.species_b) {
        rc.b = s;
        found_b = true;
      }
    }
    MV_REQUIRE(found_a && found_b, "collision spec names unknown species '"
                                       << cs.species_a << "'/'"
                                       << cs.species_b << "'");
    collisions_.push_back(rc);
  }
}

particles::Species* Simulation::find_species(const std::string& name) {
  for (auto& sp : species_) {
    if (sp->name() == name) return sp.get();
  }
  return nullptr;
}

void Simulation::initialize() {
  MV_REQUIRE(!initialized_, "initialize() called twice");
  for (std::size_t s = 0; s < species_.size(); ++s) {
    particles::load_uniform(*species_[s], grid_, deck_.species[s].load);
  }
  solver_.refresh_all(fields_);
  if (deck_.init_settle_passes > 0) {
    // Relax E toward the sampled rho (cheap Poisson substitute): removes
    // the E = 0 vs noisy-rho startup transient.
    auto rho = fields_.rhof_span();
    std::fill(rho.begin(), rho.end(), grid::real{0});
    for (auto& sp : species_) particles::accumulate_rho(*sp, fields_);
    halo_.reduce_sources(fields_);
    cleaner_.clean_e(fields_, deck_.init_settle_passes);
  }
  solver_.boundary().capture(fields_);
  // Leapfrog setup: momenta loaded at t=0 are pulled back to t=-dt/2 using
  // the initial fields (zero here unless a restart seeded them).
  interp_.load(fields_);
  for (std::size_t s = 0; s < species_.size(); ++s) {
    if (mobile_[s]) particles::uncenter_p(*species_[s], interp_, grid_);
  }
  initialized_ = true;
}

void Simulation::step() {
  MV_REQUIRE(initialized_, "initialize() must be called before step()");

  // Every phase below is timed into timings_ AND mirrored as a nested
  // Chrome-trace span when a TraceWriter is attached (telemetry::PhaseSpan
  // degrades to a plain ScopedLap plus one pointer test when trace_ is
  // null — the disabled-sink overhead the OBSERVABILITY doc quantifies).
  telemetry::ScopedSpan step_span(trace_, "step");
  // The flight recorder gets the same timeline: a step-boundary event plus
  // begin/end pairs for every phase below (ride in the same PhaseSpan).
  if (recorder_ != nullptr) {
    recorder_->set_step(step_);
    recorder_->record(telemetry::FdrKind::kStep, 0, -1,
                      static_cast<std::uint64_t>(step_));
  }
  telemetry::RecordedPhase step_record(recorder_, telemetry::kFdrPhaseStep);

  {
    telemetry::PhaseSpan lap(timings_.interpolate, trace_, "interpolate", recorder_, telemetry::kFdrPhaseInterpolate);
    interp_.load(fields_);
  }

  acc_.clear();
  fields_.clear_sources();
  if (antenna_) antenna_->deposit(fields_, time_);

  const bool clean_now =
      deck_.clean_period > 0 && (step_ + 1) % deck_.clean_period == 0;
  const bool sort_now =
      deck_.sort_period > 0 && (step_ + 1) % deck_.sort_period == 0;

  // The migration exchange deposits into the dedicated last block on
  // multi-rank grids (see acc_'s constructor comment), block 0 otherwise.
  particles::CellAccum* const migrate_block =
      acc_.blocks() > pipeline_.size() ? acc_.block(pipeline_.size())
                                       : acc_.data();

  for (std::size_t s = 0; s < species_.size(); ++s) {
    if (!mobile_[s]) continue;
    particles::Species& sp = *species_[s];
    const double ruth = deck_.species[s].reflux_uth >= 0
                            ? deck_.species[s].reflux_uth
                            : deck_.species[s].load.uth;
    pusher_.set_reflux_uth(ruth);

    // Two-pass advance (docs/OVERLAP.md): pass S (skin cells) runs first in
    // BOTH modes, so arithmetic order, RNG draws, and emigrant order are
    // mode-independent; the overlapped loop merely runs the exchange on the
    // comm worker while pass I advances the interior. Removals are deferred
    // until the exchange has drained, then immigrants are appended —
    // exactly the array layout the barriered schedule produces.
    particles::Pusher::Pass skin, interior;
    particles::MigrateStats mig;
    std::vector<particles::Particle> immigrants;
    double comm_dt = 0;  // async exchange wall time (worker writes, we
                         // read after the join)
    {
      telemetry::PhaseSpan lap(timings_.push, trace_, "push", recorder_, telemetry::kFdrPhasePush);
      {
        telemetry::ScopedSpan span(trace_, "push.skin");
        telemetry::RecordedPhase rec(recorder_, telemetry::kFdrPhasePushSkin);
        const Timer t;
        skin = pusher_.advance_skin(sp, interp_, acc_, &pipeline_);
        if (overlap_) overlap_stats_.skin_seconds += t.seconds();
      }
      if (overlap_) {
        comm_worker_->submit([&, this] {
          // TraceWriter and Recorder are thread-safe; the span lands on the
          // worker's own trace row, bracketing push.interior below.
          telemetry::ScopedSpan span(trace_, "migrate.async");
          telemetry::RecordedPhase rec(recorder_,
                                       telemetry::kFdrPhaseMigrateAsync);
          const Timer t;
          mig = particles::exchange_particles(std::move(skin.res.emigrants),
                                              sp, pusher_, migrate_block,
                                              grid_, comm_, &immigrants);
          comm_dt = t.seconds();
        });
      }
      try {
        telemetry::ScopedSpan span(trace_, "push.interior");
        telemetry::RecordedPhase rec(recorder_,
                                     telemetry::kFdrPhasePushInterior);
        const Timer t;
        interior = pusher_.advance_interior(sp, interp_, acc_, &pipeline_);
        if (overlap_) overlap_stats_.interior_seconds += t.seconds();
      } catch (...) {
        // Join the comm worker before unwinding (the interior failure is
        // primary; a concurrent exchange error is dropped) so it never
        // outlives the state it touches.
        if (overlap_) {
          try {
            comm_worker_->wait();
          } catch (...) {
          }
        }
        throw;
      }
    }
    stats_.pushed += skin.res.pushed + interior.res.pushed;
    stats_.crossings += skin.res.crossings + interior.res.crossings;
    stats_.absorbed += skin.res.absorbed + interior.res.absorbed;
    stats_.reflected += skin.res.reflected + interior.res.reflected;
    stats_.refluxed += skin.res.refluxed + interior.res.refluxed;
    const std::size_t lanes = std::max(skin.res.pipeline_seconds.size(),
                                       interior.res.pipeline_seconds.size());
    if (pipeline_busy_.size() < lanes) pipeline_busy_.resize(lanes, 0.0);
    for (std::size_t p = 0; p < skin.res.pipeline_seconds.size(); ++p)
      pipeline_busy_[p] += skin.res.pipeline_seconds[p];
    for (std::size_t p = 0; p < interior.res.pipeline_seconds.size(); ++p)
      pipeline_busy_[p] += interior.res.pipeline_seconds[p];
    {
      // In overlapped mode this phase records only the *exposed* join wait,
      // so phase totals keep summing to step wall time; the hidden comm
      // lives in overlap_stats().
      telemetry::PhaseSpan lap(timings_.migrate, trace_, "migrate", recorder_, telemetry::kFdrPhaseMigrate);
      if (overlap_) {
        const Timer t;
        comm_worker_->wait();  // rethrows a CommError from the exchange
        const double exposed = t.seconds();
        overlap_stats_.comm_seconds += comm_dt;
        overlap_stats_.exposed_seconds += exposed;
        overlap_stats_.hidden_seconds += std::max(0.0, comm_dt - exposed);
        ++overlap_stats_.overlapped_steps;
      } else {
        mig = particles::exchange_particles(std::move(skin.res.emigrants),
                                            sp, pusher_, migrate_block,
                                            grid_, comm_, &immigrants);
      }
      // Interior emigrants exist only past the CFL limit; both modes drain
      // them with the same follow-up exchange (one allreduce, normally 0
      // rounds).
      const particles::MigrateStats tail = particles::exchange_particles(
          std::move(interior.res.emigrants), sp, pusher_, migrate_block,
          grid_, comm_, &immigrants);

      // Deferred compaction: merge the two ascending dead lists, remove
      // descending, then append settled immigrants.
      std::vector<std::size_t> dead;
      dead.reserve(skin.dead.size() + interior.dead.size());
      std::merge(skin.dead.begin(), skin.dead.end(), interior.dead.begin(),
                 interior.dead.end(), std::back_inserter(dead));
      for (auto it = dead.rbegin(); it != dead.rend(); ++it) sp.remove(*it);
      for (const particles::Particle& p : immigrants) sp.add(p);

      stats_.migrated += mig.sent + tail.sent;
      stats_.immigrated += mig.received + tail.received;
      stats_.absorbed += mig.absorbed + tail.absorbed;
    }
  }

  bool collide_now = false;
  for (const auto& rc : collisions_) {
    if ((step_ + 1) % rc.period == 0) collide_now = true;
  }

  if (sort_now || collide_now) {
    // Periodic bin sort: restores the near-cell particle order the SIMD
    // gathers decay away from as migration shuffles the list
    // (docs/SORTING.md). The histogram pass parallelizes on the same
    // pipeline pool as the advance; collisions also require sorted lists.
    telemetry::PhaseSpan lap(timings_.sort, trace_, "sort", recorder_, telemetry::kFdrPhaseSort);
    for (std::size_t s = 0; s < species_.size(); ++s) {
      if (!mobile_[s]) continue;
      species_[s]->sort(grid_, &pipeline_);
      stats_.sorted += std::int64_t(species_[s]->size());
    }
  }

  if (collide_now) {
    telemetry::PhaseSpan lap(timings_.collide, trace_, "collide", recorder_, telemetry::kFdrPhaseCollide);
    for (const auto& rc : collisions_) {
      if ((step_ + 1) % rc.period != 0) continue;
      const double dt_coll = rc.period * grid_.dt();
      particles::CollisionStats cs;
      if (rc.a == rc.b) {
        // Immobile species are never sorted above; sort on demand.
        if (!mobile_[rc.a]) species_[rc.a]->sort(grid_, &pipeline_);
        cs = particles::collide_intraspecies(*species_[rc.a], grid_,
                                             rc.nu_scale, dt_coll,
                                             deck_.collision_seed, step_);
      } else {
        if (!mobile_[rc.a]) species_[rc.a]->sort(grid_, &pipeline_);
        if (!mobile_[rc.b]) species_[rc.b]->sort(grid_, &pipeline_);
        cs = particles::collide_interspecies(*species_[rc.a], *species_[rc.b],
                                             grid_, rc.nu_scale, dt_coll,
                                             deck_.collision_seed, step_);
      }
      stats_.collision_pairs += cs.pairs;
    }
  }

  {
    // Fold the per-pipeline accumulator blocks into block 0 (deterministic
    // block order; see AccumulatorArray::reduce). Timed separately: this is
    // the serial cost the pipeline layer pays per step.
    telemetry::PhaseSpan lap(timings_.reduce, trace_, "reduce", recorder_, telemetry::kFdrPhaseReduce);
    acc_.reduce();
  }

  {
    telemetry::PhaseSpan lap(timings_.sources, trace_, "sources", recorder_, telemetry::kFdrPhaseSources);
    acc_.unload(fields_);
    if (clean_now) {
      for (auto& sp : species_) particles::accumulate_rho(*sp, fields_);
    }
    halo_.reduce_sources(fields_);
  }

  {
    telemetry::PhaseSpan lap(timings_.field, trace_, "field", recorder_, telemetry::kFdrPhaseField);
    solver_.advance_b(fields_, 0.5);
    solver_.advance_e(fields_);
    solver_.advance_b(fields_, 0.5);
  }

  if (clean_now) {
    telemetry::PhaseSpan lap(timings_.clean, trace_, "clean", recorder_, telemetry::kFdrPhaseClean);
    cleaner_.clean_e(fields_, deck_.clean_passes);
    cleaner_.clean_b(fields_, 1);
  }

  ++step_;
  time_ += grid_.dt();
}

void Simulation::run(int nsteps) {
  for (int s = 0; s < nsteps; ++s) step();
}

template <typename T>
T Simulation::reduce_sum(T v) const {
  if (comm_ == nullptr) return v;
  return comm_->allreduce_value(v, vmpi::Op::kSum);
}

EnergyReport Simulation::energies() const {
  EnergyReport rep;
  rep.field = field::field_energy(fields_);
  rep.field.ex = reduce_sum(rep.field.ex);
  rep.field.ey = reduce_sum(rep.field.ey);
  rep.field.ez = reduce_sum(rep.field.ez);
  rep.field.bx = reduce_sum(rep.field.bx);
  rep.field.by = reduce_sum(rep.field.by);
  rep.field.bz = reduce_sum(rep.field.bz);
  for (const auto& sp : species_) {
    rep.species_kinetic.push_back(reduce_sum(sp->kinetic_energy()));
    rep.kinetic_total += rep.species_kinetic.back();
  }
  rep.total = rep.field.total() + rep.kinetic_total;
  return rep;
}

std::int64_t Simulation::global_particle_count() const {
  std::int64_t n = 0;
  for (const auto& sp : species_) n += std::int64_t(sp->size());
  return reduce_sum(n);
}

void Simulation::deposit_rho() {
  auto rho = fields_.rhof_span();
  std::fill(rho.begin(), rho.end(), grid::real{0});
  for (auto& sp : species_) particles::accumulate_rho(*sp, fields_);
  // Fold ghost deposits. reduce_sources also folds J ghosts, which are
  // empty outside the step, so this is safe mid-diagnostic.
  halo_.reduce_sources(fields_);
}

double Simulation::gauss_error() {
  deposit_rho();
  const double local = cleaner_.div_e_error_rms(fields_);
  if (comm_ == nullptr) return local;
  // Combine RMS across ranks (weighted by node counts, all equal enough).
  const double sum2 = reduce_sum(local * local * double(grid_.num_cells()));
  const double n = reduce_sum(double(grid_.num_cells()));
  return std::sqrt(sum2 / n);
}

}  // namespace minivpic::sim
