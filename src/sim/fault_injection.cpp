#include "sim/fault_injection.hpp"

#include <fstream>
#include <limits>

#include "sim/checkpoint.hpp"
#include "util/error.hpp"

namespace minivpic::sim {

void FaultInjector::poison_field(Simulation& sim, grid::Component component,
                                 std::int32_t voxel) {
  const auto& g = sim.local_grid();
  if (voxel < 0) voxel = g.voxel(1, 1, 1);
  MV_REQUIRE(voxel < g.num_voxels(), "fault voxel out of range");
  grid::component_data(sim.fields(), component)[voxel] =
      std::numeric_limits<grid::real>::quiet_NaN();
}

void FaultInjector::poison_particle(Simulation& sim,
                                    std::size_t species_index,
                                    std::size_t index) {
  MV_REQUIRE(species_index < sim.num_species(),
             "fault species index out of range");
  auto& sp = sim.species(species_index);
  MV_REQUIRE(index < sp.size(), "fault particle index out of range");
  sp[index].ux = std::numeric_limits<float>::quiet_NaN();
}

void FaultInjector::schedule_field_nan(std::int64_t step,
                                       grid::Component component,
                                       std::int32_t voxel) {
  ScheduledFault f;
  f.step = step;
  f.field = true;
  f.component = component;
  f.voxel = voxel;
  scheduled_.push_back(f);
}

void FaultInjector::schedule_particle_nan(std::int64_t step,
                                          std::size_t species_index,
                                          std::size_t index) {
  ScheduledFault f;
  f.step = step;
  f.field = false;
  f.species_index = species_index;
  f.particle_index = index;
  scheduled_.push_back(f);
}

int FaultInjector::apply_due(Simulation& sim) const {
  int fired = 0;
  for (const ScheduledFault& f : scheduled_) {
    if (f.step != sim.step_index()) continue;
    if (f.field) {
      poison_field(sim, f.component, f.voxel);
    } else {
      poison_particle(sim, f.species_index, f.particle_index);
    }
    ++fired;
  }
  return fired;
}

void FaultInjector::truncate_file(const std::string& path,
                                  std::uint64_t keep_bytes) {
  std::ifstream in(path, std::ios::binary);
  MV_REQUIRE(in.good(), "cannot open file to truncate: " << path);
  std::vector<char> head(keep_bytes);
  in.read(head.data(), std::streamsize(keep_bytes));
  MV_REQUIRE(in.gcount() == std::streamsize(keep_bytes),
             "file shorter than requested truncation: " << path);
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(head.data(), std::streamsize(keep_bytes));
  MV_REQUIRE(out.good(), "truncate rewrite failed: " << path);
}

void FaultInjector::flip_bit(const std::string& path, std::uint64_t offset,
                             int bit) {
  MV_REQUIRE(bit >= 0 && bit < 8, "bit index must be in [0, 8)");
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  MV_REQUIRE(f.good(), "cannot open file to corrupt: " << path);
  f.seekg(std::streamoff(offset));
  char byte = 0;
  f.read(&byte, 1);
  MV_REQUIRE(f.good(), "corruption offset beyond end of file: " << path);
  byte = char(byte ^ (1 << bit));
  f.seekp(std::streamoff(offset));
  f.write(&byte, 1);
  MV_REQUIRE(f.good(), "bit-flip write failed: " << path);
}

void FaultInjector::corrupt_section(const std::string& path,
                                    std::uint32_t kind, std::uint32_t index) {
  for (const auto& s : Checkpoint::sections(path)) {
    if (s.kind != kind || s.index != index) continue;
    MV_REQUIRE(s.bytes > 0, "cannot corrupt an empty section");
    flip_bit(path, s.offset + s.bytes / 2, 3);
    return;
  }
  MV_REQUIRE(false, "no section kind " << kind << " index " << index
                                       << " in " << path);
}

}  // namespace minivpic::sim
