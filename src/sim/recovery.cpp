#include "sim/recovery.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/checkpoint.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/trace.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "vmpi/cart.hpp"
#include "vmpi/error.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::sim {

namespace {

/// Sentinel for "no rank reached the agreement round this world".
constexpr std::int64_t kNoAgreement = std::numeric_limits<std::int64_t>::max();

}  // namespace

RecoveryCoordinator::RecoveryCoordinator(const Deck& deck,
                                         RecoveryConfig config)
    : deck_(deck), config_(std::move(config)) {
  MV_REQUIRE(config_.ranks >= 1, "recovery needs at least one rank, got "
                                     << config_.ranks);
  MV_REQUIRE(config_.checkpoint_every <= 0 || !config_.checkpoint_prefix.empty(),
             "checkpoint_every > 0 requires a checkpoint_prefix");
  MV_REQUIRE(config_.max_recoveries >= 0, "max_recoveries must be >= 0");
  MV_REQUIRE(config_.recorders.empty() ||
                 static_cast<int>(config_.recorders.size()) == config_.ranks,
             "recorders must be empty or one per rank");
}

void RecoveryCoordinator::record_history_row(Simulation& sim,
                                             vmpi::Comm& comm) {
  if (!config_.record_history) return;
  // energies() is collective — every rank must get here; only rank 0 keeps
  // the row.
  const EnergyReport e = sim.energies();
  if (comm.rank() != 0) return;
  HistoryRow row;
  row.step = sim.step_index();
  row.time = sim.time();
  row.field = e.field.total();
  row.kinetic = e.kinetic_total;
  row.total = e.total;
  std::lock_guard<std::mutex> lock(history_mu_);
  history_.push_back(row);
}

void RecoveryCoordinator::push_metric_deltas(
    vmpi::CommStats::Snapshot* last) {
  if (config_.metrics == nullptr) return;
  const vmpi::CommStats::Snapshot now = stats_.snapshot();
  auto& m = *config_.metrics;
  m.counter("comm.faults_injected", "count")
      .add(static_cast<double>(now.faults_injected - last->faults_injected));
  m.counter("comm.faults_detected", "count")
      .add(static_cast<double>(now.faults_detected - last->faults_detected));
  m.counter("comm.timeouts", "count")
      .add(static_cast<double>(now.timeouts - last->timeouts));
  m.counter("comm.peer_deaths", "count")
      .add(static_cast<double>(now.peer_deaths - last->peer_deaths));
  *last = now;
}

RecoveryReport RecoveryCoordinator::run(std::int64_t steps) {
  MV_REQUIRE(steps >= 0, "step count must be >= 0, got " << steps);

  // Register every metric up front (the registry is not thread-safe; all
  // mutation below happens on this thread between worlds).
  if (config_.metrics != nullptr) {
    config_.metrics->counter("comm.faults_injected", "count");
    config_.metrics->counter("comm.faults_detected", "count");
    config_.metrics->counter("comm.timeouts", "count");
    config_.metrics->counter("comm.peer_deaths", "count");
    config_.metrics->counter("recovery.rollbacks", "count");
    config_.metrics->counter("recovery.worlds", "count");
  }

  RecoveryReport report;
  vmpi::CommStats::Snapshot last = stats_.snapshot();
  std::int64_t start_from = config_.resume_step;

  const bool px = deck_.grid.boundary[0] == grid::BoundaryKind::kPeriodic;
  const bool py = deck_.grid.boundary[2] == grid::BoundaryKind::kPeriodic;
  const bool pz = deck_.grid.boundary[4] == grid::BoundaryKind::kPeriodic;

  for (;;) {
    // Per-world shared state, written by rank threads under attempt_mu.
    std::mutex attempt_mu;
    bool fault = false;          // a recoverable comm fault was detected
    bool fatal = false;          // the world was poisoned (non-comm error)
    std::string fault_reason;
    std::int64_t agreed = kNoAgreement;  // min over agreement participants
    int completed = 0;
    std::int64_t final_step = -1;

    vmpi::WorldConfig wc;
    wc.timeout_seconds = config_.comm_timeout;
    wc.checksum = config_.integrity;
    wc.sequencing = config_.integrity;
    wc.fault_plane = config_.fault_plane;
    wc.stats = &stats_;
    telemetry::RecorderSet recorder_set{config_.recorders.data(),
                                        config_.ranks};
    if (!config_.recorders.empty()) {
      wc.comm_hook = telemetry::vmpi_comm_hook;
      wc.comm_hook_ctx = &recorder_set;
    }

    auto rank_fn = [&](vmpi::Comm& comm) {
      telemetry::Recorder* recorder =
          config_.recorders.empty()
              ? nullptr
              : config_.recorders[static_cast<std::size_t>(comm.rank())];
      try {
        // Same x-only decomposition as campaign::CampaignExecutor: the
        // canned decks are longest along x.
        const vmpi::CartTopology topo({config_.ranks, 1, 1}, {px, py, pz});
        Simulation sim(deck_, config_.ranks > 1 ? &comm : nullptr,
                       config_.ranks > 1 ? &topo : nullptr);
        sim.set_recorder(recorder);
        if (start_from >= 0) {
          Checkpoint::restore_step(sim, config_.checkpoint_prefix,
                                   start_from);
          if (recorder != nullptr)
            recorder->record(telemetry::FdrKind::kRestore, 0, -1,
                             static_cast<std::uint64_t>(start_from));
        } else {
          sim.initialize();
          record_history_row(sim, comm);  // the step-0 row
        }
        while (sim.step_index() < steps) {
          if (config_.fault_plane != nullptr)
            config_.fault_plane->on_step(comm.rank(), sim.step_index());
          sim.step();
          if (config_.per_step) config_.per_step(sim, comm);
          record_history_row(sim, comm);
          if (config_.checkpoint_every > 0 &&
              sim.step_index() % config_.checkpoint_every == 0 &&
              sim.step_index() < steps) {
            Checkpoint::save(sim, config_.checkpoint_prefix,
                             config_.checkpoint_keep);
            if (recorder != nullptr)
              recorder->record(telemetry::FdrKind::kCheckpoint, 0, -1,
                               static_cast<std::uint64_t>(sim.step_index()));
          }
        }
        if (config_.on_final) config_.on_final(sim, comm);
        if (recorder != nullptr) recorder->record(telemetry::FdrKind::kExit);
        {
          std::lock_guard<std::mutex> lock(attempt_mu);
          ++completed;
          if (comm.rank() == 0) final_step = sim.step_index();
        }
      } catch (const vmpi::CommError& e) {
        // The black box sees the typed fault before any recovery reaction,
        // so the postmortem's first-stalled verdict keys off this ordering
        // (the killed rank records its kKilled strictly before survivors
        // record the timeouts/revocations it causes).
        if (recorder != nullptr)
          recorder->record(telemetry::FdrKind::kFault,
                           static_cast<std::uint16_t>(e.fault()));
        switch (e.fault()) {
          case vmpi::Fault::kKilled:
            // A scheduled kill: this rank cooperatively dies. Marking the
            // liveness epoch is the in-process stand-in for an external
            // failure detector — peers blocked on this rank fail fast. The
            // dead rank does NOT revoke (a dead node can't); a survivor
            // detecting the death does.
            {
              std::lock_guard<std::mutex> lock(attempt_mu);
              fault = true;
              if (fault_reason.empty()) fault_reason = e.what();
            }
            // Kills fire out of FaultPlane::on_step, not the send path, so
            // the world's counters never see them — account for it here.
            stats_.faults_injected.fetch_add(1);
            comm.mark_self_dead(e.what());
            return;
          case vmpi::Fault::kPoisoned:
            // Another rank threw a non-comm error; vmpi::run will rethrow
            // it. Nothing to recover from here.
            {
              std::lock_guard<std::mutex> lock(attempt_mu);
              fatal = true;
              if (fault_reason.empty()) fault_reason = e.what();
            }
            return;
          default: {
            // Detected failure (timeout, corruption, loss, dead peer,
            // revoked world): revoke so every survivor converges within one
            // blocking call, then agree on the newest mutually restorable
            // checkpoint step. The values fed into the agreement all come
            // from the shared manifest, so the no-collector fallback inside
            // agree_min still converges.
            {
              std::lock_guard<std::mutex> lock(attempt_mu);
              fault = true;
              if (fault_reason.empty()) fault_reason = e.what();
            }
            comm.revoke(e.what());
            std::int64_t local =
                config_.checkpoint_prefix.empty()
                    ? -1
                    : Checkpoint::latest_step(config_.checkpoint_prefix);
            // The agreement deadline must always be finite: ranks that
            // already completed never join the round.
            const double agree_timeout =
                config_.comm_timeout > 0 ? config_.comm_timeout : 5.0;
            std::int64_t got = local;
            try {
              got = comm.agree_min(local, agree_timeout);
            } catch (...) {
              got = local;
            }
            std::lock_guard<std::mutex> lock(attempt_mu);
            agreed = std::min(agreed, got);
            return;
          }
        }
      }
    };

    ++report.worlds;
    if (config_.metrics != nullptr)
      config_.metrics->counter("recovery.worlds", "count").add(1);

    try {
      vmpi::run(config_.ranks, rank_fn, wc);
    } catch (...) {
      // A rank failed with a non-communication error (physics fault, I/O
      // failure, bug). That is not recoverable by rollback — surface it.
      push_metric_deltas(&last);
      report.comm = stats_.snapshot();
      throw;
    }
    push_metric_deltas(&last);

    if (completed == config_.ranks) {
      report.completed = true;
      report.final_step = final_step;
      break;
    }
    report.last_fault = fault_reason;
    if (fatal && !fault) break;  // poisoned but nothing thrown: give up

    // Rollback decision.
    if (report.rollbacks >= config_.max_recoveries) break;
    std::int64_t target = agreed;
    if (target == kNoAgreement) {
      // No survivor reached the agreement round (e.g. the fault hit after
      // the last communication). Fall back to the manifest directly.
      target = config_.checkpoint_prefix.empty()
                   ? -1
                   : Checkpoint::latest_step(config_.checkpoint_prefix);
    }
    if (target < 0) break;  // nothing to roll back to

    ++report.rollbacks;
    for (telemetry::Recorder* r : config_.recorders)
      if (r != nullptr)
        r->record(telemetry::FdrKind::kRecovery, 0, -1,
                  static_cast<std::uint64_t>(target));
    if (config_.metrics != nullptr)
      config_.metrics->counter("recovery.rollbacks", "count").add(1);
    if (config_.trace != nullptr) {
      telemetry::Json args = telemetry::Json::object();
      args.set("rollback_to_step", telemetry::Json::number(target));
      args.set("world", telemetry::Json::number(
                            static_cast<std::int64_t>(report.worlds)));
      args.set("fault", telemetry::Json::string(fault_reason));
      config_.trace->instant("recovery.rollback", "recovery",
                             std::move(args));
    }

    // Drop history rows the rollback will replay, so the final history is
    // row-for-row what a fault-free run records.
    {
      std::lock_guard<std::mutex> lock(history_mu_);
      while (!history_.empty() && history_.back().step > target)
        history_.pop_back();
    }
    start_from = target;
  }

  report.comm = stats_.snapshot();
  return report;
}

void RecoveryCoordinator::write_history_csv(const std::string& path) const {
  Table table({"step", "time", "field_energy", "kinetic_energy",
               "total_energy"});
  for (const HistoryRow& r : history_) {
    table.add_row({static_cast<long long>(r.step), r.time, r.field, r.kinetic,
                   r.total});
  }
  table.write_csv_file(path);
}

}  // namespace minivpic::sim
