// Checkpoint / restart: durable, checksummed per-rank snapshots of the full
// simulation state (fields, particles, step counter), with rotation of the
// last K snapshot sets and automatic fallback to an older set on corruption.
//
// Format v2 (see docs/ARCHITECTURE.md "Resilience" for the layout diagram):
//   <prefix>.step<N>.rank<R>   one file per rank per snapshot step
//   <prefix>.manifest          text file naming every *complete* set
//
// Each rank file is a CRC-checked header followed by length-prefixed,
// CRC-closed sections (one per field component, one per species). Files are
// written to a temp name, flushed, and atomically renamed; the manifest is
// only updated — by rank 0, after a cross-rank agreement that every rank's
// file landed — once the whole set is durable. A crash at any point leaves
// the previous manifest (and the sets it names) intact.
//
// Restore contract: construct a Simulation from the same deck and rank
// decomposition, then call Checkpoint::restore() *instead of* initialize().
// restore() verifies every checksum before touching the simulation, and
// walks the manifest newest-to-oldest (all ranks agreeing on the step) until
// a fully valid set is found. Mur boundary history is re-captured from the
// restored fields (a one-step transient at absorbing walls, documented and
// negligible in practice).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace minivpic::sim {

class Checkpoint {
 public:
  /// Writes this rank's `<prefix>.step<N>.rank<R>` (N = current step) via
  /// temp-file + atomic rename, then — once every rank has succeeded —
  /// updates the manifest and prunes rotations beyond `keep`. Collective
  /// over the simulation's communicator; throws on every rank if any rank's
  /// write failed.
  static void save(const Simulation& sim, const std::string& prefix,
                   int keep = 2);

  /// Restores this rank's state from the newest complete set under `prefix`,
  /// falling back to older rotations (in cross-rank agreement) when a file
  /// is corrupt, truncated, or missing. The simulation must be freshly
  /// constructed (not initialized). Validates grid shape, rank layout and
  /// species identity against the deck; throws when no set is restorable.
  static void restore(Simulation& sim, const std::string& prefix);

  /// Restores one specific snapshot step, no fallback.
  static void restore_step(Simulation& sim, const std::string& prefix,
                           std::int64_t step);

  /// Restore into a *running* simulation: the rollback path of
  /// sim::HealthMonitor. Same fallback walk as restore(), but permitted on
  /// an initialized simulation (all state is overwritten).
  static void rollback(Simulation& sim, const std::string& prefix);

  // -- set / manifest introspection ----------------------------------------

  /// Path of one rank file: `<prefix>.step<N>.rank<R>`.
  static std::string set_path(const std::string& prefix, std::int64_t step,
                              int rank);
  static std::string manifest_path(const std::string& prefix);

  /// Steps of the complete sets named by the manifest, oldest first.
  /// Empty when there is no manifest.
  static std::vector<std::int64_t> manifest_steps(const std::string& prefix);

  /// Newest complete step, or -1 when none exists.
  static std::int64_t latest_step(const std::string& prefix);

  /// Deletes the manifest and every rank file of every set it names.
  static void remove_all(const std::string& prefix, int nranks = 1);

  /// One section of a rank file, for integrity tools and fault injection.
  struct SectionInfo {
    std::uint32_t kind = 0;       ///< kFieldSection or kSpeciesSection
    std::uint32_t index = 0;      ///< component enum value / species index
    std::uint64_t offset = 0;     ///< file offset of the payload
    std::uint64_t bytes = 0;      ///< payload length
  };
  static constexpr std::uint32_t kFieldSection = 1;
  static constexpr std::uint32_t kSpeciesSection = 2;

  /// Walks the section table of one rank file (header must be intact;
  /// payload checksums are NOT verified here).
  static std::vector<SectionInfo> sections(const std::string& path);

  /// Implementation detail (public so the file-local loader in
  /// checkpoint.cpp can produce it): one rank file's fully verified
  /// contents, held off to the side until commit.
  struct Staged;

 private:
  /// Installs verified state into the simulation and re-derives solver state.
  static void commit(Simulation& sim, Staged&& staged);
};

}  // namespace minivpic::sim
