// Checkpoint / restart: binary per-rank snapshots of the full simulation
// state (fields, particles, step counter).
//
// Restore contract: construct a Simulation from the same deck and rank
// decomposition, then call Checkpoint::restore() *instead of* initialize().
// Mur boundary history is re-captured from the restored fields (a one-step
// transient at absorbing walls, documented and negligible in practice).
#pragma once

#include <string>

#include "sim/simulation.hpp"

namespace minivpic::sim {

class Checkpoint {
 public:
  /// Writes `<prefix>.rank<R>` for this rank.
  static void save(const Simulation& sim, const std::string& prefix);

  /// Restores this rank's state from `<prefix>.rank<R>`. The simulation
  /// must be freshly constructed (not initialized). Validates grid shape,
  /// rank layout and species identity against the deck; throws on mismatch
  /// or a corrupt/truncated file.
  static void restore(Simulation& sim, const std::string& prefix);
};

}  // namespace minivpic::sim
