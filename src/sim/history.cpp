#include "sim/history.hpp"

#include <cmath>

#include "util/error.hpp"

namespace minivpic::sim {

EnergyHistory::EnergyHistory(Simulation& sim) : sim_(&sim) {
  per_species_.resize(sim.num_species());
}

void EnergyHistory::sample() {
  const auto rep = sim_->energies();
  time_.push_back(sim_->time());
  field_.push_back(rep.field.total());
  kinetic_.push_back(rep.kinetic_total);
  total_.push_back(rep.total);
  for (std::size_t s = 0; s < per_species_.size(); ++s)
    per_species_[s].push_back(rep.species_kinetic[s]);
}

const std::vector<double>& EnergyHistory::species_kinetic(std::size_t s) const {
  MV_REQUIRE(s < per_species_.size(), "species index out of range");
  return per_species_[s];
}

double EnergyHistory::worst_relative_drift() const {
  if (total_.empty() || total_[0] == 0) return 0.0;
  double worst = 0;
  for (double t : total_)
    worst = std::max(worst, std::abs(t - total_[0]) / std::abs(total_[0]));
  return worst;
}

Table EnergyHistory::to_table() const {
  std::vector<std::string> cols{"time", "field", "kinetic", "total"};
  for (std::size_t s = 0; s < per_species_.size(); ++s)
    cols.push_back("KE[" + sim_->species(s).name() + "]");
  Table table(cols);
  for (std::size_t n = 0; n < time_.size(); ++n) {
    std::vector<Cell> row{time_[n], field_[n], kinetic_[n], total_[n]};
    for (const auto& sk : per_species_) row.push_back(sk[n]);
    table.add_row(std::move(row));
  }
  return table;
}

void EnergyHistory::write_csv(const std::string& path) const {
  to_table().write_csv_file(path);
}

FieldProbe::FieldProbe(Simulation& sim, grid::Component component, int gi,
                       int gj, int gk)
    : sim_(&sim), component_(component) {
  const auto& g = sim.local_grid();
  MV_REQUIRE(gi >= 1 && gi <= g.global_nx() && gj >= 1 &&
                 gj <= g.global_ny() && gk >= 1 && gk <= g.global_nz(),
             "probe point (" << gi << "," << gj << "," << gk
                             << ") outside the global grid");
  const int li = gi - g.offset_x();
  const int lj = gj - g.offset_y();
  const int lk = gk - g.offset_z();
  if (g.is_interior(li, lj, lk)) local_ = {li, lj, lk};
}

void FieldProbe::sample() {
  if (!owns_point()) return;
  const auto& f = sim_->fields();
  const grid::real* data = grid::component_data(f, component_);
  series_.push_back(data[f.idx(local_[0], local_[1], local_[2])]);
  time_.push_back(sim_->time());
}

}  // namespace minivpic::sim
