// Runtime health sentinels for long campaigns: the classic PIC failure mode
// is a NaN or an energy blow-up at step N silently poisoning every step
// after it, discovered only when the multi-day run ends. HealthMonitor
// scans fields and particle momenta for non-finite values and checks the
// global energy budget and particle count against deck-configured
// thresholds every `period` steps, then applies the deck-selected policy:
// abort (log a final diagnostic dump, throw), rollback (restore the last
// good checkpoint once, abort if the fault recurs within a window), or
// warn. All verdicts are global: counts and energies are reduced across
// ranks, so every rank takes the same action on the same step.
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulation.hpp"

namespace minivpic::sim {

/// One scan's findings (globally reduced).
struct HealthReport {
  std::int64_t step = 0;
  std::int64_t nan_field_values = 0;  ///< non-finite field array entries
  std::int64_t nan_particles = 0;     ///< particles with non-finite momentum
  double energy_total = 0;
  double energy_ref = 0;       ///< reference captured at the first scan
  std::int64_t particles = 0;
  std::int64_t particles_ref = 0;
  bool nan_fault = false;
  bool energy_fault = false;
  bool particle_fault = false;

  bool ok() const { return !nan_fault && !energy_fault && !particle_fault; }
  /// Human-readable one-line summary for logs and error messages.
  std::string describe() const;
};

class HealthMonitor {
 public:
  /// What check() did. kAbort never returns — it throws minivpic::Error.
  enum class Action { kSkipped, kHealthy, kWarned, kRolledBack };

  /// Captures the reference energy and particle count from the current
  /// (initialized or restored) state. `checkpoint_prefix` names the
  /// rotation set the kRollback policy restores from; may be empty for
  /// abort/warn policies (rollback without a prefix escalates to abort).
  HealthMonitor(Simulation& sim, const HealthConfig& config,
                std::string checkpoint_prefix = "");

  /// True when the monitor is enabled and the current step is a scan step.
  bool due() const;

  /// Scans unconditionally (collective when multi-rank) and records the
  /// report; applies no policy.
  const HealthReport& scan();

  /// If due(): scan and apply the configured policy. Collective. Returns
  /// what happened; throws minivpic::Error on abort (including a rollback
  /// that found no checkpoint or a fault recurring within the window).
  Action check();

  const HealthReport& last_report() const { return report_; }
  const HealthConfig& config() const { return config_; }

 private:
  [[noreturn]] void abort_run(const std::string& why);

  Simulation* sim_;
  HealthConfig config_;
  std::string checkpoint_prefix_;
  HealthReport report_;
  double energy_ref_ = 0;
  std::int64_t particles_ref_ = 0;
  bool rolled_back_ = false;
  std::int64_t rollback_fault_step_ = 0;  ///< step of the fault we rolled back
};

}  // namespace minivpic::sim
