// Input decks: the complete description of a simulation, plus the canned
// decks used by the examples, tests and paper-reproduction benches.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "field/antenna.hpp"
#include "grid/geometry.hpp"
#include "particles/kernel.hpp"
#include "particles/loader.hpp"
#include "particles/particle.hpp"

namespace minivpic::sim {

struct SpeciesConfig {
  std::string name;
  double q = -1.0;
  double m = 1.0;
  particles::LoadConfig load;
  bool mobile = true;  ///< immobile species contribute rho but are not pushed
  /// Wall reservoir temperature for kReflux particle boundaries; < 0 means
  /// "use load.uth".
  double reflux_uth = -1.0;
};

/// Binary Coulomb collisions between two species (equal names =
/// intra-species). Applied every `period` steps with the accumulated
/// collision interval period*dt; see particles/collisions.hpp for the
/// meaning of nu_scale.
struct CollisionSpec {
  std::string species_a;
  std::string species_b;
  double nu_scale = 0;
  int period = 10;
};

/// What sim::HealthMonitor does when a fault (NaN/Inf state, energy
/// blow-up, particle-loss anomaly) is detected.
enum class HealthPolicy {
  kAbort,     ///< log a final diagnostic dump and throw minivpic::Error
  kRollback,  ///< restore the last good checkpoint once; abort if the fault
              ///< recurs within `rollback_window` steps
  kWarn,      ///< log and keep running
};

/// Runtime health-sentinel configuration (see sim/health.hpp). All
/// thresholds are global (reduced across ranks).
struct HealthConfig {
  int period = 0;  ///< steps between scans; 0 disables the monitor
  /// Fault when global total energy exceeds this multiple of the reference
  /// energy captured at the first scan. <= 0 disables the energy check.
  double max_energy_growth = 100.0;
  /// Fault when the global particle count drops below (1 - this fraction)
  /// of the reference count. Absorbing walls lose particles legitimately;
  /// tune per deck. >= 1 disables the check.
  double max_particle_loss = 0.5;
  HealthPolicy policy = HealthPolicy::kAbort;
  /// After a rollback, a fault recurring within this many steps aborts.
  int rollback_window = 100;
};

struct Deck {
  grid::GlobalGrid grid;
  particles::ParticleBcSpec particle_bc = particles::periodic_particles();
  std::vector<SpeciesConfig> species;
  std::optional<field::LaserConfig> laser;
  std::vector<CollisionSpec> collisions;

  /// Intra-rank particle pipelines (threads) for the particle advance.
  /// 1 = the serial reference path; 0 or negative = one per hardware
  /// thread (util::Pipeline::resolve). The library default stays 1 so
  /// single-rank decks are deterministic without configuration; the CLI
  /// front ends (`--pipelines`) default to hardware-aware.
  int pipelines = 1;

  /// Particle-advance kernel (see particles/kernel.hpp and docs/KERNELS.md).
  /// Mirrors the `pipelines` convention: the library default is the scalar
  /// reference kernel so programmatic decks are conservative without
  /// configuration; the deck-file and CLI front ends (`kernel = auto`,
  /// `--kernel`) default to the widest kernel the host supports. kAuto is
  /// resolved at Simulation construction.
  particles::Kernel kernel = particles::Kernel::kScalar;

  /// Comm/compute overlap in the step loop (docs/OVERLAP.md): kOn runs the
  /// migration exchange on a comm worker thread concurrently with the
  /// interior push; kOff runs the same two-pass schedule inline (the
  /// barriered reference — bit-identical results, serialized phases).
  /// kAuto resolves to on for multi-rank runs and off otherwise (a
  /// single-rank grid has no skin, so there is nothing to hide).
  enum class Overlap { kOff, kOn, kAuto };
  Overlap overlap = Overlap::kAuto;

  int sort_period = 20;   ///< steps between particle sorts (0 = never)
  int clean_period = 0;   ///< steps between Marder cleanings (0 = never)
  /// Steps between periodic checkpoint sets (0 = only on demand). The
  /// front ends honor this; the library never checkpoints on its own.
  int checkpoint_every = 0;
  int checkpoint_keep = 2;  ///< rotated snapshot sets retained on disk
  HealthConfig health;      ///< runtime health sentinels (default: off)
  int clean_passes = 2;   ///< Marder passes per cleaning
  /// Marder relaxation passes applied at initialization to settle E toward
  /// the sampled charge density (a cheap Poisson-solve substitute that
  /// removes the E=0-vs-noisy-rho startup transient). 0 disables.
  int init_settle_passes = 0;
  std::uint64_t collision_seed = 777;
};

// -- canned physics decks ----------------------------------------------------

/// Cold plasma (Langmuir) oscillation: a neutral e/ion plasma with a small
/// sinusoidal electron velocity perturbation along x; oscillates at omega_pe.
Deck plasma_oscillation_deck(int cells = 16, int ppc = 32,
                             double perturbation = 0.01);

/// Two-stream instability: counter-streaming electron beams (+-u_drift along
/// x) over a neutralizing ion background.
Deck two_stream_deck(int cells = 32, int ppc = 32, double u_drift = 0.2);

/// Weibel instability: temperature-anisotropic electrons (hot along z, cold
/// in the plane) over neutralizing ions; magnetic filaments grow.
Deck weibel_deck(int cells = 16, int ppc = 64, double uth_hot = 0.3,
                 double uth_cold = 0.03);

/// Laser-plasma interaction slab (the paper's science problem): a laser of
/// normalized amplitude a0 and frequency omega0/omega_pe = 1/sqrt(n/n_c)
/// launched along x into a uniform plasma slab at temperature te_kev, with
/// absorbing x walls and a vacuum gap on each side of the plasma.
struct LpiParams {
  double a0 = 0.05;
  double n_over_nc = 0.1;
  double te_kev = 2.6;
  int nx = 192, ny = 4, nz = 4;
  double dx = 0.25;        ///< cell size (c/omega_pe)
  int ppc = 64;
  double vacuum_cells = 24;  ///< vacuum gap at each x end
  double laser_ramp = 10.0;
  double ion_mass = 1836.0;
  bool mobile_ions = false;  ///< SRS timescales: ions usually frozen
  std::uint64_t seed = 2008;
};
Deck lpi_deck(const LpiParams& p);

}  // namespace minivpic::sim
