// The simulation driver: owns the per-rank state of one deck and advances
// it with the VPIC main-loop schedule.
//
// Per step (fields E,B at integer time t; particle momenta at t - dt/2):
//   1. rebuild the interpolator from E,B(t)
//   2. laser antenna deposits its sheet current
//   3. particle advance (momenta -> t+dt/2, positions -> t+dt, current into
//      the accumulators), inter-rank migration, optional sort
//   4. accumulator unload + halo source reduction
//   5. B half-advance, E advance, B half-advance (+ optional Marder clean)
#pragma once

#include <memory>
#include <vector>

#include "field/antenna.hpp"
#include "field/clean.hpp"
#include "field/energy.hpp"
#include "field/solver.hpp"
#include "particles/accumulator.hpp"
#include "particles/interpolator.hpp"
#include "particles/migrate.hpp"
#include "particles/push.hpp"
#include "sim/deck.hpp"
#include "util/pipeline.hpp"
#include "util/timer.hpp"
#include "util/worker.hpp"
#include "vmpi/cart.hpp"
#include "vmpi/comm.hpp"

namespace minivpic::telemetry {
class TraceWriter;  // telemetry/trace.hpp; sim depends on telemetry, not
                    // vice versa (the sampler reads sim through inline
                    // accessors only)
class Recorder;     // telemetry/recorder.hpp; same layering
}  // namespace minivpic::telemetry

namespace minivpic::sim {

/// Wall-clock cost of each phase of the steps taken so far.
struct StepTimings {
  Stopwatch interpolate;  ///< interpolator load
  Stopwatch push;         ///< particle advance (the paper's inner loop)
  Stopwatch migrate;      ///< inter-rank particle exchange
  Stopwatch sort;         ///< particle sorts
  Stopwatch reduce;       ///< pipeline accumulator-block reduction
  Stopwatch sources;      ///< accumulator unload + halo source reduction
  Stopwatch field;        ///< B/E advances incl. halo refresh
  Stopwatch clean;        ///< Marder passes
  Stopwatch collide;      ///< binary collision operator

  double total_seconds() const {
    return interpolate.total_seconds() + push.total_seconds() +
           migrate.total_seconds() + sort.total_seconds() +
           reduce.total_seconds() + sources.total_seconds() +
           field.total_seconds() + clean.total_seconds() +
           collide.total_seconds();
  }
};

/// Per-step particle statistics (summed since construction).
struct ParticleStats {
  std::int64_t pushed = 0;
  std::int64_t crossings = 0;
  std::int64_t absorbed = 0;
  std::int64_t reflected = 0;
  std::int64_t migrated = 0;    ///< emigrants shipped to neighbor ranks
  std::int64_t immigrated = 0;  ///< immigrants settled from neighbor ranks
  std::int64_t refluxed = 0;
  std::int64_t collision_pairs = 0;
  std::int64_t sorted = 0;  ///< particles passed through the bin sort
};

/// Comm/compute overlap telemetry (docs/OVERLAP.md), cumulative since
/// construction. Only the overlapped loop fills the second group; the
/// `migrate` phase stopwatch then records just the *exposed* join wait, so
/// phase totals keep summing to the step wall time.
struct OverlapStats {
  bool enabled = false;              ///< resolved overlap mode
  std::int64_t overlapped_steps = 0; ///< species-advances run overlapped
  double skin_seconds = 0;           ///< pass S wall time
  double interior_seconds = 0;       ///< pass I wall time
  double comm_seconds = 0;           ///< async exchange wall (worker busy)
  double hidden_seconds = 0;         ///< comm time covered by pass I
  double exposed_seconds = 0;        ///< join wait after pass I
};

/// Globally reduced energy accounting.
struct EnergyReport {
  field::FieldEnergy field;            ///< global field energies
  std::vector<double> species_kinetic; ///< per species, deck order
  double kinetic_total = 0;
  double total = 0;
};

class Simulation {
 public:
  /// Multi-rank: `comm` and `topo` describe the decomposition (the topology
  /// must match comm->size()). Single-rank: pass nullptr for both.
  Simulation(const Deck& deck, vmpi::Comm* comm = nullptr,
             const vmpi::CartTopology* topo = nullptr);

  /// Loads particles, zeroes fields, sets up leapfrog centering. Must be
  /// called exactly once before step().
  void initialize();

  /// Advances one step.
  void step();

  /// Convenience: run n steps.
  void run(int nsteps);

  std::int64_t step_index() const { return step_; }
  double time() const { return time_; }

  // -- state access -----------------------------------------------------
  const grid::LocalGrid& local_grid() const { return grid_; }
  grid::FieldArray& fields() { return fields_; }
  const grid::FieldArray& fields() const { return fields_; }
  std::size_t num_species() const { return species_.size(); }
  particles::Species& species(std::size_t s) { return *species_[s]; }
  const particles::Species& species(std::size_t s) const { return *species_[s]; }
  particles::Species* find_species(const std::string& name);
  const Deck& deck() const { return deck_; }
  vmpi::Comm* comm() { return comm_; }

  // -- diagnostics --------------------------------------------------------
  EnergyReport energies() const;          ///< globally reduced
  std::int64_t global_particle_count() const;
  const StepTimings& timings() const { return timings_; }
  /// Resolved intra-rank pipeline count used by the particle advance.
  int pipelines() const { return pipeline_.size(); }
  /// Resolved particle-advance kernel (never kAuto; see particles/kernel.hpp).
  particles::Kernel kernel() const { return pusher_.kernel(); }
  const ParticleStats& particle_stats() const { return stats_; }
  /// True when the step loop runs the overlapped schedule (Deck::overlap
  /// resolved against the communicator at construction).
  bool overlap() const { return overlap_; }
  const OverlapStats& overlap_stats() const { return overlap_stats_; }
  /// Cumulative busy wall seconds per pipeline inside the particle advance
  /// (index = pipeline id; empty before the first step). The spread across
  /// entries is the per-pipeline load imbalance telemetry reports.
  const std::vector<double>& pipeline_busy_seconds() const {
    return pipeline_busy_;
  }

  // -- telemetry -----------------------------------------------------------
  /// Attaches (or detaches, with nullptr) a Chrome-trace sink: every step
  /// phase is emitted as a nested span, and health/checkpoint events as
  /// instants. The writer must outlive the simulation or be detached
  /// first. Null pointer = zero-overhead disabled path.
  void set_trace(telemetry::TraceWriter* trace) { trace_ = trace; }
  telemetry::TraceWriter* trace() const { return trace_; }
  /// Attaches (or detaches, with nullptr) this rank's flight recorder: the
  /// step loop records step boundaries and phase begin/end events into it
  /// (telemetry/recorder.hpp). Same lifetime/null contract as set_trace.
  void set_recorder(telemetry::Recorder* recorder) { recorder_ = recorder; }
  telemetry::Recorder* recorder() const { return recorder_; }
  /// Deposits rho for the current particle positions (into fields().rhof).
  void deposit_rho();
  /// RMS Gauss-law residual (div E - rho) over the global interior; calls
  /// deposit_rho() internally.
  double gauss_error();

  // -- checkpointing (see checkpoint.hpp) ----------------------------------
  friend class Checkpoint;

 private:
  template <typename T>
  T reduce_sum(T v) const;

  Deck deck_;
  vmpi::Comm* comm_;
  grid::LocalGrid grid_;
  grid::FieldArray fields_;
  grid::Halo halo_;
  field::FieldSolver solver_;
  field::DivergenceCleaner cleaner_;
  Pipeline pipeline_;  ///< intra-rank particle pipelines
  particles::InterpolatorArray interp_;
  /// One block per pipeline plus a dedicated migration block (the last):
  /// the async exchange deposits there so it never races a pipeline's
  /// interior deposits; reduce() folds it in fixed block order.
  particles::AccumulatorArray acc_;
  particles::Pusher pusher_;
  std::unique_ptr<field::LaserAntenna> antenna_;
  std::vector<std::unique_ptr<particles::Species>> species_;
  std::vector<bool> mobile_;
  /// Resolved collision pairs: indices into species_ (a == b allowed).
  struct ResolvedCollision {
    std::size_t a, b;
    double nu_scale;
    int period;
  };
  std::vector<ResolvedCollision> collisions_;

  std::int64_t step_ = 0;
  double time_ = 0;
  bool initialized_ = false;
  bool overlap_ = false;  ///< resolved Deck::overlap
  std::unique_ptr<util::Worker> comm_worker_;  ///< exists when overlap_
  StepTimings timings_;
  ParticleStats stats_;
  OverlapStats overlap_stats_;
  std::vector<double> pipeline_busy_;  ///< per-pipeline advance seconds
  telemetry::TraceWriter* trace_ = nullptr;  ///< optional span/event sink
  telemetry::Recorder* recorder_ = nullptr;  ///< optional flight recorder
};

}  // namespace minivpic::sim
