// Coordinated rollback recovery: the bridge between the vmpi fault-tolerance
// plane (vmpi/error.hpp, vmpi/fault.hpp) and the checkpoint subsystem.
//
// A RecoveryCoordinator supervises a multi-rank simulation run as a sequence
// of vmpi worlds. Inside each world every rank steps its domain, takes
// periodic collective checkpoints, and — when any rank detects a typed
// CommError (timeout, CRC corruption, lost message, dead peer) — the
// detecting rank *revokes* the world so every survivor fails fast, the
// survivors run an agreement round over the checkpoint-manifest steps, and
// all ranks return. The coordinator then tears the world down, relaunches a
// full-size replacement, and resumes every rank from the newest *mutually
// agreed* checkpoint set. Because stepping and checkpoint restore are
// bit-deterministic (docs/FAULTS.md "Determinism after rollback"), a
// recovered run finishes with state bit-identical to a fault-free run.
//
// A rank killed by a scheduled FaultPlane kill marks itself dead (the
// in-process stand-in for a failure detector) and returns; peers learn of
// the death through the liveness epoch the moment they block on it.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sim/deck.hpp"
#include "sim/simulation.hpp"
#include "vmpi/config.hpp"

namespace minivpic::telemetry {
class MetricsRegistry;
class Recorder;
class TraceWriter;
}  // namespace minivpic::telemetry

namespace minivpic::sim {

struct RecoveryConfig {
  /// World size; the domain is split along x (the long axis of every canned
  /// deck), periodicity taken from the deck boundaries.
  int ranks = 2;

  /// Checkpoint set prefix; required when checkpoint_every > 0 (rollback
  /// needs a set to return to).
  std::string checkpoint_prefix;
  int checkpoint_every = 0;  ///< steps between collective saves; 0 = never
  int checkpoint_keep = 2;   ///< rotation depth passed to Checkpoint::save

  /// Rollback budget: recovery fails once a run needs more than this many
  /// world relaunches after faults.
  int max_recoveries = 8;

  /// Per-call deadline (seconds) for every blocking vmpi call inside the
  /// world; 0 = wait forever. This bounds failure detection: a wedged peer
  /// surfaces as Fault::kTimeout within one deadline.
  double comm_timeout = 10.0;

  /// CRC32-frame + sequence-number every message (detects corruption,
  /// duplication and loss at the receiver).
  bool integrity = true;

  /// Optional injection schedule; outlives the coordinator. Scheduled
  /// faults fire once across all relaunches, so replays are clean.
  vmpi::FaultPlane* fault_plane = nullptr;

  telemetry::MetricsRegistry* metrics = nullptr;  ///< comm.* / recovery.*
  telemetry::TraceWriter* trace = nullptr;        ///< spans + rollback instants

  /// Per-rank flight recorders (index = rank), empty or size == ranks. Each
  /// world wires rank r's Simulation and comm hook to recorders[r]:
  /// checkpoint/restore/fault/recovery events land in the black box, and
  /// the caller dumps the `.fdr` files on an unrecoverable exit. Not owned;
  /// must outlive run().
  std::vector<telemetry::Recorder*> recorders;

  /// Record a step-keyed energy history on rank 0 (collective: every rank
  /// samples energies each step). Rolled-back rows are truncated, so the
  /// final history matches a fault-free run row for row.
  bool record_history = true;

  /// Resume support: restore this manifest step before the first step
  /// (from checkpoint_prefix); -1 starts fresh via initialize().
  std::int64_t resume_step = -1;

  /// Called on every rank after each step (collective code only — every
  /// rank must make the same vmpi calls).
  std::function<void(Simulation&, vmpi::Comm&)> per_step;

  /// Called on every rank after the final step of a world that completed
  /// (collective). May run more than once if a fault lands after it but
  /// before every rank returned — it must be idempotent.
  std::function<void(Simulation&, vmpi::Comm&)> on_final;
};

struct RecoveryReport {
  bool completed = false;     ///< the run reached `steps` on every rank
  int rollbacks = 0;          ///< worlds relaunched after a fault
  int worlds = 0;             ///< worlds launched in total (>= 1)
  std::int64_t final_step = -1;
  std::string last_fault;     ///< description of the most recent fault
  vmpi::CommStats::Snapshot comm;  ///< final comm fault-tolerance counters
};

/// One step-keyed row of the rank-0 energy history.
struct HistoryRow {
  std::int64_t step = 0;
  double time = 0;
  double field = 0;
  double kinetic = 0;
  double total = 0;
};

class RecoveryCoordinator {
 public:
  RecoveryCoordinator(const Deck& deck, RecoveryConfig config);

  /// Runs the deck to `steps` steps under fault-tolerant supervision.
  /// Returns a report; report.completed == false means the recovery budget
  /// was exhausted or no mutually agreed checkpoint existed to roll back
  /// to. Rethrows non-communication rank errors (a poisoned world) —
  /// those are bugs or physics faults, not recoverable comm failures.
  RecoveryReport run(std::int64_t steps);

  const std::vector<HistoryRow>& history() const { return history_; }
  void write_history_csv(const std::string& path) const;

  /// Cumulative comm fault-tolerance counters across all worlds launched.
  const vmpi::CommStats& comm_stats() const { return stats_; }

 private:
  void record_history_row(Simulation& sim, vmpi::Comm& comm);
  void push_metric_deltas(vmpi::CommStats::Snapshot* last);

  Deck deck_;
  RecoveryConfig config_;
  vmpi::CommStats stats_;
  std::mutex history_mu_;
  std::vector<HistoryRow> history_;
};

}  // namespace minivpic::sim
