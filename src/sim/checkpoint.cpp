#include "sim/checkpoint.hpp"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>

#include "grid/halo.hpp"
#include "telemetry/trace.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace minivpic::sim {

namespace {

/// Instant trace event for checkpoint activity (write / restore /
/// rollback), visible in Perfetto next to the step spans. No-op without an
/// attached trace sink.
void trace_checkpoint_event(const Simulation& sim, const char* name,
                            std::int64_t step) {
  telemetry::TraceWriter* t = sim.trace();
  if (t == nullptr) return;
  telemetry::Json args = telemetry::Json::object();
  args.set("step", telemetry::Json::number(step));
  t->instant(name, "checkpoint", std::move(args));
}

constexpr std::uint32_t kMagic = 0x4D56434Bu;  // "MVCK"
constexpr std::uint32_t kVersion = 2;

// 52 checksummed bytes + the checksum itself. No implicit padding: every
// field is naturally aligned.
struct FileHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::int32_t rank = 0, nranks = 0;
  std::int32_t nx = 0, ny = 0, nz = 0;
  std::int32_t num_species = 0;
  std::int64_t step = 0;
  double time = 0;
  std::uint32_t num_sections = 0;
  std::uint32_t header_crc = 0;  ///< CRC of all preceding bytes
};
static_assert(sizeof(FileHeader) == 56, "packed header layout");

struct SectionHeader {
  std::uint32_t kind = 0;   ///< Checkpoint::kFieldSection / kSpeciesSection
  std::uint32_t index = 0;  ///< component enum value / species index
  std::uint64_t bytes = 0;  ///< payload length
  std::uint32_t payload_crc = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(SectionHeader) == 24, "packed section header layout");

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof *v);
  MV_REQUIRE(is.good(), "checkpoint truncated while reading "
                            << sizeof *v << " bytes");
}

void write_bytes(std::ostream& os, const void* data, std::size_t bytes) {
  os.write(reinterpret_cast<const char*>(data), std::streamsize(bytes));
}

void read_bytes(std::istream& is, void* data, std::size_t bytes) {
  is.read(reinterpret_cast<char*>(data), std::streamsize(bytes));
  MV_REQUIRE(is.good(), "checkpoint truncated while reading " << bytes
                                                              << " bytes");
}

std::uint32_t header_checksum(const FileHeader& h) {
  return Crc32::of(&h, offsetof(FileHeader, header_crc));
}

const std::vector<grid::Component>& all_components() {
  static const std::vector<grid::Component> comps = [] {
    auto c = grid::em_components();
    const auto src = grid::source_components();
    c.insert(c.end(), src.begin(), src.end());
    return c;
  }();
  return comps;
}

// -- manifest -----------------------------------------------------------------
//
// Text format, one token pair per line:
//   minivpic-checkpoint-manifest 2
//   nranks <R>
//   step <N>            (repeated, oldest first; each names a complete set)

bool read_manifest(const std::string& path, int* nranks,
                   std::vector<std::int64_t>* steps) {
  std::ifstream is(path);
  if (!is.good()) return false;
  std::string tag;
  int version = 0;
  is >> tag >> version;
  if (tag != "minivpic-checkpoint-manifest" || version != 2) return false;
  is >> tag >> *nranks;
  if (tag != "nranks" || *nranks < 1) return false;
  steps->clear();
  std::int64_t n = 0;
  while (is >> tag >> n) {
    if (tag != "step") return false;
    steps->push_back(n);
  }
  return true;
}

void write_manifest(const std::string& path, int nranks,
                    const std::vector<std::int64_t>& steps) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    MV_REQUIRE(os.good(), "cannot open checkpoint manifest for writing: "
                              << tmp);
    os << "minivpic-checkpoint-manifest 2\n";
    os << "nranks " << nranks << "\n";
    for (const std::int64_t s : steps) os << "step " << s << "\n";
    os.flush();
    MV_REQUIRE(os.good(), "checkpoint manifest write failed: " << tmp);
  }
  MV_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
             "cannot publish checkpoint manifest: " << path);
}

// -- staged (validate-before-commit) load -------------------------------------

struct StagedSpecies {
  std::string name;
  double q = 0, m = 0;
  std::vector<particles::Particle> parts;
};

}  // namespace

/// Everything in one rank file, fully checksum-verified, held off to the
/// side so a corrupt file can never leave a half-restored simulation.
struct Checkpoint::Staged {
  FileHeader h;
  std::vector<std::vector<grid::real>> fields;  ///< all_components() order
  std::vector<StagedSpecies> species;
};

namespace {

void read_section_header(std::istream& is, std::uint32_t want_kind,
                         std::uint32_t want_index, SectionHeader* sh) {
  read_pod(is, sh);
  MV_REQUIRE(sh->kind == want_kind && sh->index == want_index,
             "checkpoint section out of order: expected kind "
                 << want_kind << " index " << want_index << ", found kind "
                 << sh->kind << " index " << sh->index);
}

/// Parses and checksum-verifies one rank file against the simulation's grid
/// shape, rank layout and species table. Throws minivpic::Error on any
/// corruption or mismatch; on success the returned state is complete.
Checkpoint::Staged load_staged(const std::string& path,
                               const grid::LocalGrid& g,
                               const Simulation& sim) {
  std::ifstream is(path, std::ios::binary);
  MV_REQUIRE(is.good(), "cannot open checkpoint: " << path);

  Checkpoint::Staged st;
  FileHeader& h = st.h;
  read_pod(is, &h);
  MV_REQUIRE(h.magic == kMagic, "not a minivpic checkpoint: " << path);
  MV_REQUIRE(h.header_crc == header_checksum(h),
             "checkpoint header checksum mismatch: " << path);
  MV_REQUIRE(h.version == kVersion, "unsupported checkpoint version "
                                        << h.version << ": " << path);
  MV_REQUIRE(h.rank == g.rank() && h.nranks == g.nranks(),
             "checkpoint rank layout mismatch: " << path);
  MV_REQUIRE(h.nx == g.nx() && h.ny == g.ny() && h.nz == g.nz(),
             "checkpoint grid shape mismatch: " << path);
  MV_REQUIRE(h.num_species == std::int32_t(sim.num_species()),
             "checkpoint species count mismatch: " << path);
  MV_REQUIRE(h.num_sections ==
                 all_components().size() + std::size_t(h.num_species),
             "checkpoint section count mismatch: " << path);

  const std::size_t nvox = std::size_t(g.num_voxels());
  st.fields.resize(all_components().size());
  for (std::size_t c = 0; c < all_components().size(); ++c) {
    SectionHeader sh;
    read_section_header(is, Checkpoint::kFieldSection,
                        std::uint32_t(all_components()[c]), &sh);
    MV_REQUIRE(sh.bytes == nvox * sizeof(grid::real),
               "checkpoint field section has wrong length: " << path);
    st.fields[c].resize(nvox);
    read_bytes(is, st.fields[c].data(), sh.bytes);
    MV_REQUIRE(Crc32::of(st.fields[c].data(), sh.bytes) == sh.payload_crc,
               "checkpoint field section " << c << " checksum mismatch: "
                                           << path);
  }

  for (std::int32_t s = 0; s < h.num_species; ++s) {
    SectionHeader sh;
    read_section_header(is, Checkpoint::kSpeciesSection, std::uint32_t(s),
                        &sh);
    std::vector<char> payload(sh.bytes);
    read_bytes(is, payload.data(), sh.bytes);
    MV_REQUIRE(Crc32::of(payload.data(), sh.bytes) == sh.payload_crc,
               "checkpoint species section " << s << " checksum mismatch: "
                                             << path);
    // Parse the verified payload: name_len, name, q, m, np, particles.
    std::istringstream ps(std::string(payload.data(), payload.size()),
                          std::ios::binary);
    StagedSpecies sp;
    std::uint32_t name_len = 0;
    read_pod(ps, &name_len);
    MV_REQUIRE(name_len < 4096, "implausible species name length: " << path);
    sp.name.assign(name_len, '\0');
    read_bytes(ps, sp.name.data(), name_len);
    read_pod(ps, &sp.q);
    read_pod(ps, &sp.m);
    std::uint64_t np = 0;
    read_pod(ps, &np);
    const auto& deck_sp = sim.species(std::size_t(s));
    MV_REQUIRE(sp.name == deck_sp.name() && sp.q == deck_sp.q() &&
                   sp.m == deck_sp.m(),
               "checkpoint species '" << sp.name
                                      << "' does not match deck species '"
                                      << deck_sp.name() << "'");
    MV_REQUIRE(sh.bytes == 4u + name_len + 8u + 8u + 8u +
                               np * sizeof(particles::Particle),
               "checkpoint species section length inconsistent: " << path);
    sp.parts.resize(np);
    read_bytes(ps, sp.parts.data(), np * sizeof(particles::Particle));
    for (const auto& p : sp.parts) {
      const auto c = g.voxel_coords(p.i);
      MV_REQUIRE(g.is_interior(c[0], c[1], c[2]),
                 "checkpoint particle in non-interior voxel " << p.i);
    }
    st.species.push_back(std::move(sp));
  }
  return st;
}

/// Writes one rank file to `<final>.tmp`, flushes, and atomically renames it
/// into place. Throws on any I/O failure (the temp file is removed).
void write_rank_file(const Simulation& sim, const std::string& final_path) {
  const auto& g = sim.local_grid();
  const std::string tmp = final_path + ".tmp";
  try {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    MV_REQUIRE(os.good(), "cannot open checkpoint for writing: " << tmp);

    FileHeader h;
    h.rank = g.rank();
    h.nranks = g.nranks();
    h.nx = g.nx();
    h.ny = g.ny();
    h.nz = g.nz();
    h.num_species = std::int32_t(sim.num_species());
    h.step = sim.step_index();
    h.time = sim.time();
    h.num_sections =
        std::uint32_t(all_components().size() + sim.num_species());
    h.header_crc = header_checksum(h);
    write_pod(os, h);

    const std::size_t nvox = std::size_t(g.num_voxels());
    for (const grid::Component c : all_components()) {
      const grid::real* data = grid::component_data(sim.fields(), c);
      SectionHeader sh;
      sh.kind = Checkpoint::kFieldSection;
      sh.index = std::uint32_t(c);
      sh.bytes = nvox * sizeof(grid::real);
      sh.payload_crc = Crc32::of(data, sh.bytes);
      write_pod(os, sh);
      write_bytes(os, data, sh.bytes);
    }

    for (std::size_t s = 0; s < sim.num_species(); ++s) {
      const auto& sp = sim.species(s);
      const std::uint32_t name_len = std::uint32_t(sp.name().size());
      const double q = sp.q(), m = sp.m();
      const std::uint64_t np = sp.size();
      const std::uint64_t part_bytes = np * sizeof(particles::Particle);

      SectionHeader sh;
      sh.kind = Checkpoint::kSpeciesSection;
      sh.index = std::uint32_t(s);
      sh.bytes = 4u + name_len + 8u + 8u + 8u + part_bytes;
      Crc32 crc;  // streamed: no assembled copy of the particle list
      crc.update(&name_len, sizeof name_len);
      crc.update(sp.name().data(), name_len);
      crc.update(&q, sizeof q);
      crc.update(&m, sizeof m);
      crc.update(&np, sizeof np);
      crc.update(sp.data(), part_bytes);
      sh.payload_crc = crc.value();
      write_pod(os, sh);
      write_pod(os, name_len);
      write_bytes(os, sp.name().data(), name_len);
      write_pod(os, q);
      write_pod(os, m);
      write_pod(os, np);
      write_bytes(os, sp.data(), part_bytes);
    }
    os.flush();
    MV_REQUIRE(os.good(), "checkpoint write failed: " << tmp);
    os.close();
    MV_REQUIRE(std::rename(tmp.c_str(), final_path.c_str()) == 0,
               "cannot publish checkpoint file: " << final_path);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

}  // namespace

std::string Checkpoint::set_path(const std::string& prefix, std::int64_t step,
                                 int rank) {
  return prefix + ".step" + std::to_string(step) + ".rank" +
         std::to_string(rank);
}

std::string Checkpoint::manifest_path(const std::string& prefix) {
  return prefix + ".manifest";
}

std::vector<std::int64_t> Checkpoint::manifest_steps(
    const std::string& prefix) {
  int nranks = 0;
  std::vector<std::int64_t> steps;
  if (!read_manifest(manifest_path(prefix), &nranks, &steps)) return {};
  return steps;
}

std::int64_t Checkpoint::latest_step(const std::string& prefix) {
  const auto steps = manifest_steps(prefix);
  return steps.empty() ? -1 : steps.back();
}

void Checkpoint::remove_all(const std::string& prefix, int nranks) {
  int manifest_nranks = nranks;
  std::vector<std::int64_t> steps;
  read_manifest(manifest_path(prefix), &manifest_nranks, &steps);
  for (const std::int64_t s : steps)
    for (int r = 0; r < std::max(nranks, manifest_nranks); ++r)
      std::remove(set_path(prefix, s, r).c_str());
  std::remove(manifest_path(prefix).c_str());
}

std::vector<Checkpoint::SectionInfo> Checkpoint::sections(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  MV_REQUIRE(is.good(), "cannot open checkpoint: " << path);
  FileHeader h;
  read_pod(is, &h);
  MV_REQUIRE(h.magic == kMagic, "not a minivpic checkpoint: " << path);
  MV_REQUIRE(h.header_crc == header_checksum(h),
             "checkpoint header checksum mismatch: " << path);
  std::vector<SectionInfo> out;
  for (std::uint32_t i = 0; i < h.num_sections; ++i) {
    SectionHeader sh;
    read_pod(is, &sh);
    SectionInfo info;
    info.kind = sh.kind;
    info.index = sh.index;
    info.offset = std::uint64_t(is.tellg());
    info.bytes = sh.bytes;
    out.push_back(info);
    is.seekg(std::streamoff(sh.bytes), std::ios::cur);
    MV_REQUIRE(is.good(), "checkpoint truncated in section table: " << path);
  }
  return out;
}

void Checkpoint::save(const Simulation& sim, const std::string& prefix,
                      int keep) {
  MV_REQUIRE(keep >= 1, "checkpoint rotation must keep at least one set");
  const auto& g = sim.local_grid();
  const std::int64_t step = sim.step_index();

  // Phase 1: every rank writes its own file durably (temp + atomic rename).
  int ok = 1;
  std::exception_ptr local_failure;
  try {
    write_rank_file(sim, set_path(prefix, step, g.rank()));
  } catch (...) {
    ok = 0;
    local_failure = std::current_exception();
  }

  // Phase 2: cross-rank agreement — the set exists only if every rank's
  // file landed. The manifest is untouched on failure, so the previous
  // complete set remains the restore target.
  vmpi::Comm* comm = sim.comm_;
  if (comm != nullptr) ok = comm->allreduce_value(ok, vmpi::Op::kMin);
  if (ok != 1) {
    std::remove(set_path(prefix, step, g.rank()).c_str());
    if (local_failure) std::rethrow_exception(local_failure);
    MV_REQUIRE(false, "checkpoint set at step "
                          << step << " failed on another rank");
  }

  // Phase 3: rank 0 publishes the set in the manifest and prunes rotations
  // beyond `keep`; everyone else waits so no rank races ahead into the next
  // save while the manifest is mid-update.
  if (g.rank() == 0) {
    int manifest_nranks = g.nranks();
    std::vector<std::int64_t> steps;
    read_manifest(manifest_path(prefix), &manifest_nranks, &steps);
    std::erase(steps, step);  // re-saving a step replaces it
    steps.push_back(step);
    while (steps.size() > std::size_t(keep)) {
      const std::int64_t dropped = steps.front();
      steps.erase(steps.begin());
      for (int r = 0; r < g.nranks(); ++r)
        std::remove(set_path(prefix, dropped, r).c_str());
    }
    write_manifest(manifest_path(prefix), g.nranks(), steps);
  }
  if (comm != nullptr) comm->barrier();
  trace_checkpoint_event(sim, "checkpoint.save", step);
}

void Checkpoint::commit(Simulation& sim, Staged&& st) {
  const std::size_t nvox = std::size_t(sim.grid_.num_voxels());
  for (std::size_t c = 0; c < all_components().size(); ++c)
    std::memcpy(grid::component_data(sim.fields_, all_components()[c]),
                st.fields[c].data(), nvox * sizeof(grid::real));
  for (std::size_t s = 0; s < sim.species_.size(); ++s)
    sim.species_[s]->assign(st.species[s].parts);
  sim.step_ = st.h.step;
  sim.time_ = st.h.time;
  sim.solver_.refresh_all(sim.fields_);
  sim.solver_.boundary().capture(sim.fields_);
  sim.initialized_ = true;
}

void Checkpoint::restore_step(Simulation& sim, const std::string& prefix,
                              std::int64_t step) {
  MV_REQUIRE(!sim.initialized_, "restore into an initialized simulation");
  commit(sim,
         load_staged(set_path(prefix, step, sim.grid_.rank()), sim.grid_, sim));
}

void Checkpoint::restore(Simulation& sim, const std::string& prefix) {
  MV_REQUIRE(!sim.initialized_, "restore into an initialized simulation");
  auto steps = manifest_steps(prefix);
  MV_REQUIRE(!steps.empty(),
             "no checkpoint manifest for prefix: " << prefix);

  // Newest to oldest; a set is used only when *every* rank validated its
  // file, so all ranks fall back together on a partially corrupt set.
  std::string last_error;
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    int ok = 1;
    Staged st;
    try {
      st = load_staged(set_path(prefix, *it, sim.grid_.rank()), sim.grid_,
                       sim);
    } catch (const Error& e) {
      ok = 0;
      last_error = e.what();
    }
    if (sim.comm_ != nullptr)
      ok = sim.comm_->allreduce_value(ok, vmpi::Op::kMin);
    if (ok == 1) {
      commit(sim, std::move(st));
      trace_checkpoint_event(sim, "checkpoint.restore", sim.step_index());
      return;
    }
    MV_LOG_WARN << "checkpoint set at step " << *it
                << " rejected, falling back to an older rotation"
                << (last_error.empty() ? "" : ": ") << last_error;
  }
  MV_REQUIRE(false, "no restorable checkpoint set under prefix '"
                        << prefix << "' — last failure: " << last_error);
}

void Checkpoint::rollback(Simulation& sim, const std::string& prefix) {
  // Rollback overwrites every piece of state restore() touches, so an
  // initialized simulation is a legal target; drop the guard flag and run
  // the same manifest walk.
  sim.initialized_ = false;
  restore(sim, prefix);
  trace_checkpoint_event(sim, "checkpoint.rollback", sim.step_index());
}

}  // namespace minivpic::sim
