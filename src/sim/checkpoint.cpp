#include "sim/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "grid/halo.hpp"
#include "util/error.hpp"

namespace minivpic::sim {

namespace {

constexpr std::uint32_t kMagic = 0x4D56434Bu;  // "MVCK"
constexpr std::uint32_t kVersion = 1;

struct Header {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::int32_t rank = 0, nranks = 0;
  std::int32_t nx = 0, ny = 0, nz = 0;
  std::int32_t num_species = 0;
  std::int64_t step = 0;
  double time = 0;
};

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof *v);
  MV_REQUIRE(is.good(), "checkpoint truncated while reading "
                            << sizeof *v << " bytes");
}

void write_bytes(std::ostream& os, const void* data, std::size_t bytes) {
  os.write(reinterpret_cast<const char*>(data), std::streamsize(bytes));
}

void read_bytes(std::istream& is, void* data, std::size_t bytes) {
  is.read(reinterpret_cast<char*>(data), std::streamsize(bytes));
  MV_REQUIRE(is.good(), "checkpoint truncated while reading " << bytes
                                                              << " bytes");
}

std::string rank_path(const std::string& prefix, int rank) {
  return prefix + ".rank" + std::to_string(rank);
}

const std::vector<grid::Component>& all_components() {
  static const std::vector<grid::Component> comps = [] {
    auto c = grid::em_components();
    const auto src = grid::source_components();
    c.insert(c.end(), src.begin(), src.end());
    return c;
  }();
  return comps;
}

}  // namespace

void Checkpoint::save(const Simulation& sim, const std::string& prefix) {
  const auto& g = sim.grid_;
  std::ofstream os(rank_path(prefix, g.rank()), std::ios::binary);
  MV_REQUIRE(os.good(), "cannot open checkpoint for writing: "
                            << rank_path(prefix, g.rank()));
  Header h;
  h.rank = g.rank();
  h.nranks = g.nranks();
  h.nx = g.nx();
  h.ny = g.ny();
  h.nz = g.nz();
  h.num_species = std::int32_t(sim.species_.size());
  h.step = sim.step_;
  h.time = sim.time_;
  write_pod(os, h);

  const std::size_t nvox = std::size_t(g.num_voxels());
  for (const grid::Component c : all_components()) {
    write_bytes(os, grid::component_data(sim.fields_, c),
                nvox * sizeof(grid::real));
  }

  for (const auto& sp : sim.species_) {
    const std::uint32_t name_len = std::uint32_t(sp->name().size());
    write_pod(os, name_len);
    write_bytes(os, sp->name().data(), name_len);
    write_pod(os, sp->q());
    write_pod(os, sp->m());
    const std::uint64_t np = sp->size();
    write_pod(os, np);
    write_bytes(os, sp->data(), np * sizeof(particles::Particle));
  }
  MV_REQUIRE(os.good(), "checkpoint write failed");
}

void Checkpoint::restore(Simulation& sim, const std::string& prefix) {
  MV_REQUIRE(!sim.initialized_, "restore into an initialized simulation");
  const auto& g = sim.grid_;
  std::ifstream is(rank_path(prefix, g.rank()), std::ios::binary);
  MV_REQUIRE(is.good(), "cannot open checkpoint: "
                            << rank_path(prefix, g.rank()));
  Header h;
  read_pod(is, &h);
  MV_REQUIRE(h.magic == kMagic, "not a minivpic checkpoint");
  MV_REQUIRE(h.version == kVersion, "unsupported checkpoint version "
                                        << h.version);
  MV_REQUIRE(h.rank == g.rank() && h.nranks == g.nranks(),
             "checkpoint rank layout mismatch");
  MV_REQUIRE(h.nx == g.nx() && h.ny == g.ny() && h.nz == g.nz(),
             "checkpoint grid shape mismatch");
  MV_REQUIRE(h.num_species == std::int32_t(sim.species_.size()),
             "checkpoint species count mismatch");

  const std::size_t nvox = std::size_t(g.num_voxels());
  for (const grid::Component c : all_components()) {
    read_bytes(is, grid::component_data(sim.fields_, c),
               nvox * sizeof(grid::real));
  }

  for (auto& sp : sim.species_) {
    std::uint32_t name_len = 0;
    read_pod(is, &name_len);
    MV_REQUIRE(name_len < 4096, "implausible species name length");
    std::string name(name_len, '\0');
    read_bytes(is, name.data(), name_len);
    double q = 0, m = 0;
    read_pod(is, &q);
    read_pod(is, &m);
    MV_REQUIRE(name == sp->name() && q == sp->q() && m == sp->m(),
               "checkpoint species '" << name
                                      << "' does not match deck species '"
                                      << sp->name() << "'");
    std::uint64_t np = 0;
    read_pod(is, &np);
    sp->clear();
    sp->reserve(np);
    std::vector<particles::Particle> buf(np);
    read_bytes(is, buf.data(), np * sizeof(particles::Particle));
    for (const auto& p : buf) {
      const auto c = g.voxel_coords(p.i);
      MV_REQUIRE(g.is_interior(c[0], c[1], c[2]),
                 "checkpoint particle in non-interior voxel " << p.i);
      sp->add(p);
    }
  }

  sim.step_ = h.step;
  sim.time_ = h.time;
  sim.solver_.refresh_all(sim.fields_);
  sim.solver_.boundary().capture(sim.fields_);
  sim.initialized_ = true;
}

}  // namespace minivpic::sim
