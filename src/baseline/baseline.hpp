// Conventional-PIC comparator for the ablation studies (DESIGN.md A2).
//
// This is the "textbook" organization VPIC's design is measured against:
//   * array-of-structures particles in double precision (56 B/particle,
//     global coordinates instead of cell + offset),
//   * direct staggered field gather from the Yee mesh per particle
//     (18 scattered loads) instead of the cached per-cell interpolator,
//   * classic Boris rotation (no angle correction),
//   * non-split CIC current deposition (not charge-conserving; documented —
//     conventional codes pair this with a Poisson/Boris correction step).
// Single-rank, fully periodic domains only: it exists to quantify the cost
// of the conventional data layout, not to replace the core library.
#pragma once

#include <vector>

#include "grid/fields.hpp"
#include "util/rng.hpp"

namespace minivpic::baseline {

struct ParticleD {
  double x = 0, y = 0, z = 0;     ///< global position
  double ux = 0, uy = 0, uz = 0;  ///< gamma v / c
  double w = 0;
};

class BaselinePic {
 public:
  /// `grid` must be single-rank and fully periodic.
  BaselinePic(const grid::LocalGrid& grid, double q, double m);

  void add(const ParticleD& p);
  std::size_t size() const { return parts_.size(); }
  const std::vector<ParticleD>& particles() const { return parts_; }
  std::vector<ParticleD>& particles() { return parts_; }

  /// Loads a uniform Maxwellian (density in code units).
  void load_uniform(int ppc, double density, double uth, std::uint64_t seed);

  /// One particle step against the fields: direct gather, Boris push,
  /// position update with periodic wrap, CIC current deposit into f's J
  /// arrays. E/B ghosts of `f` must be fresh.
  void push(grid::FieldArray& f);

  double kinetic_energy() const;

  /// Gathered fields at a position (exposed for the equivalence tests).
  struct Fields {
    double ex, ey, ez, cbx, cby, cbz;
  };
  Fields gather(const grid::FieldArray& f, double x, double y, double z) const;

  /// Flops per particle push (documented count; see baseline.cpp).
  static constexpr double flops_per_particle() { return 230.0; }

 private:
  const grid::LocalGrid* grid_;
  double q_, m_;
  std::vector<ParticleD> parts_;
};

}  // namespace minivpic::baseline
