#include "baseline/baseline.hpp"

#include <cmath>

#include "util/error.hpp"

namespace minivpic::baseline {

BaselinePic::BaselinePic(const grid::LocalGrid& grid, double q, double m)
    : grid_(&grid), q_(q), m_(m) {
  MV_REQUIRE(grid.nranks() == 1, "baseline PIC is single-rank only");
  for (int face = 0; face < 6; ++face) {
    MV_REQUIRE(grid.boundary(static_cast<grid::Face>(face)) ==
                   grid::BoundaryKind::kPeriodic,
               "baseline PIC supports periodic domains only");
  }
  MV_REQUIRE(m > 0, "mass must be positive");
}

void BaselinePic::add(const ParticleD& p) { parts_.push_back(p); }

void BaselinePic::load_uniform(int ppc, double density, double uth,
                               std::uint64_t seed) {
  MV_REQUIRE(ppc > 0 && density > 0 && uth >= 0, "bad load parameters");
  const auto& g = *grid_;
  const double w = density * g.cell_volume() / ppc;
  Rng rng(seed);
  parts_.reserve(parts_.size() +
                 std::size_t(ppc) * std::size_t(g.num_cells()));
  for (int k = 1; k <= g.nz(); ++k)
    for (int j = 1; j <= g.ny(); ++j)
      for (int i = 1; i <= g.nx(); ++i)
        for (int n = 0; n < ppc; ++n) {
          ParticleD p;
          p.x = g.node_x(i) + rng.uniform() * g.dx();
          p.y = g.node_y(j) + rng.uniform() * g.dy();
          p.z = g.node_z(k) + rng.uniform() * g.dz();
          p.ux = rng.maxwellian(uth);
          p.uy = rng.maxwellian(uth);
          p.uz = rng.maxwellian(uth);
          p.w = w;
          parts_.push_back(p);
        }
}

namespace {

struct CellPos {
  int i, j, k;          ///< containing cell
  double fx, fy, fz;    ///< fractional position in [0,1)
};

CellPos locate(const grid::LocalGrid& g, double x, double y, double z) {
  CellPos c;
  const double rx = (x - g.node_x(1)) / g.dx();
  const double ry = (y - g.node_y(1)) / g.dy();
  const double rz = (z - g.node_z(1)) / g.dz();
  c.i = 1 + int(std::floor(rx));
  c.j = 1 + int(std::floor(ry));
  c.k = 1 + int(std::floor(rz));
  c.fx = rx - std::floor(rx);
  c.fy = ry - std::floor(ry);
  c.fz = rz - std::floor(rz);
  return c;
}

double wrap(double v, double lo, double len) {
  double r = std::fmod(v - lo, len);
  if (r < 0) r += len;
  return lo + r;
}

}  // namespace

BaselinePic::Fields BaselinePic::gather(const grid::FieldArray& f, double x,
                                        double y, double z) const {
  const auto& g = *grid_;
  const CellPos c = locate(g, x, y, z);
  MV_ASSERT(g.is_interior(c.i, c.j, c.k));
  // Staggered gather equivalent to the interpolator scheme: E bilinear over
  // its 4 edges, B linear between its 2 faces — but re-fetched from the
  // mesh for every particle (the conventional organization).
  auto bilin = [](double w00, double w10, double w01, double w11, double a,
                  double b) {
    return (1 - a) * (1 - b) * w00 + a * (1 - b) * w10 + (1 - a) * b * w01 +
           a * b * w11;
  };
  Fields out;
  out.ex = bilin(f.ex(c.i, c.j, c.k), f.ex(c.i, c.j + 1, c.k),
                 f.ex(c.i, c.j, c.k + 1), f.ex(c.i, c.j + 1, c.k + 1), c.fy,
                 c.fz);
  out.ey = bilin(f.ey(c.i, c.j, c.k), f.ey(c.i, c.j, c.k + 1),
                 f.ey(c.i + 1, c.j, c.k), f.ey(c.i + 1, c.j, c.k + 1), c.fz,
                 c.fx);
  out.ez = bilin(f.ez(c.i, c.j, c.k), f.ez(c.i + 1, c.j, c.k),
                 f.ez(c.i, c.j + 1, c.k), f.ez(c.i + 1, c.j + 1, c.k), c.fx,
                 c.fy);
  out.cbx = (1 - c.fx) * f.cbx(c.i, c.j, c.k) + c.fx * f.cbx(c.i + 1, c.j, c.k);
  out.cby = (1 - c.fy) * f.cby(c.i, c.j, c.k) + c.fy * f.cby(c.i, c.j + 1, c.k);
  out.cbz = (1 - c.fz) * f.cbz(c.i, c.j, c.k) + c.fz * f.cbz(c.i, c.j, c.k + 1);
  return out;
}

void BaselinePic::push(grid::FieldArray& f) {
  const auto& g = *grid_;
  const double qdt_2m = q_ * g.dt() / (2.0 * m_);
  const double dt = g.dt();
  const double x0 = g.node_x(1), y0 = g.node_y(1), z0 = g.node_z(1);
  const double lx = g.global_nx() * g.dx();
  const double ly = g.global_ny() * g.dy();
  const double lz = g.global_nz() * g.dz();

  for (ParticleD& p : parts_) {
    const Fields fld = gather(f, p.x, p.y, p.z);

    // Classic Boris (no angle correction).
    const double hx = qdt_2m * fld.ex, hy = qdt_2m * fld.ey,
                 hz = qdt_2m * fld.ez;
    double ux = p.ux + hx, uy = p.uy + hy, uz = p.uz + hz;
    const double rg =
        1.0 / std::sqrt(1.0 + ux * ux + uy * uy + uz * uz);
    const double tx = qdt_2m * fld.cbx * rg;
    const double ty = qdt_2m * fld.cby * rg;
    const double tz = qdt_2m * fld.cbz * rg;
    const double t2 = tx * tx + ty * ty + tz * tz;
    const double sx = 2 * tx / (1 + t2), sy = 2 * ty / (1 + t2),
                 sz = 2 * tz / (1 + t2);
    const double px = ux + (uy * tz - uz * ty);
    const double py = uy + (uz * tx - ux * tz);
    const double pz = uz + (ux * ty - uy * tx);
    ux += py * sz - pz * sy;
    uy += pz * sx - px * sz;
    uz += px * sy - py * sx;
    p.ux = ux + hx;
    p.uy = uy + hy;
    p.uz = uz + hz;

    // Position update with periodic wrap in global coordinates.
    const double rg2 =
        1.0 / std::sqrt(1.0 + p.ux * p.ux + p.uy * p.uy + p.uz * p.uz);
    p.x = wrap(p.x + p.ux * rg2 * dt, x0, lx);
    p.y = wrap(p.y + p.uy * rg2 * dt, y0, ly);
    p.z = wrap(p.z + p.uz * rg2 * dt, z0, lz);

    // Non-split CIC current deposit at the new position.
    const CellPos c = locate(g, p.x, p.y, p.z);
    const double qw = q_ * p.w / g.cell_volume();
    const double jx = qw * p.ux * rg2, jy = qw * p.uy * rg2,
                 jz = qw * p.uz * rg2;
    const double w000 = (1 - c.fx) * (1 - c.fy) * (1 - c.fz);
    const double w100 = c.fx * (1 - c.fy) * (1 - c.fz);
    const double w010 = (1 - c.fx) * c.fy * (1 - c.fz);
    const double w110 = c.fx * c.fy * (1 - c.fz);
    const double w001 = (1 - c.fx) * (1 - c.fy) * c.fz;
    const double w101 = c.fx * (1 - c.fy) * c.fz;
    const double w011 = (1 - c.fx) * c.fy * c.fz;
    const double w111 = c.fx * c.fy * c.fz;
    auto dep = [&](auto&& comp, double j) {
      comp(c.i, c.j, c.k) += grid::real(j * w000);
      comp(c.i + 1, c.j, c.k) += grid::real(j * w100);
      comp(c.i, c.j + 1, c.k) += grid::real(j * w010);
      comp(c.i + 1, c.j + 1, c.k) += grid::real(j * w110);
      comp(c.i, c.j, c.k + 1) += grid::real(j * w001);
      comp(c.i + 1, c.j, c.k + 1) += grid::real(j * w101);
      comp(c.i, c.j + 1, c.k + 1) += grid::real(j * w011);
      comp(c.i + 1, c.j + 1, c.k + 1) += grid::real(j * w111);
    };
    dep([&f](int a, int b, int cc) -> grid::real& { return f.jfx(a, b, cc); },
        jx);
    dep([&f](int a, int b, int cc) -> grid::real& { return f.jfy(a, b, cc); },
        jy);
    dep([&f](int a, int b, int cc) -> grid::real& { return f.jfz(a, b, cc); },
        jz);
  }
}

double BaselinePic::kinetic_energy() const {
  double e = 0;
  for (const ParticleD& p : parts_) {
    e += p.w * (std::sqrt(1.0 + p.ux * p.ux + p.uy * p.uy + p.uz * p.uz) - 1.0);
  }
  return e * m_;
}

}  // namespace minivpic::baseline
