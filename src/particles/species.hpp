// A plasma species: charge, mass, and its particle list.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "grid/geometry.hpp"
#include "particles/particle.hpp"
#include "util/aligned.hpp"

namespace minivpic {
class Pipeline;  // util/pipeline.hpp; sort() parallelizes its histogram
}  // namespace minivpic

namespace minivpic::particles {

class Species {
 public:
  /// `q` and `m` are per *physical* particle in code units (electron:
  /// q = -1, m = 1); a macroparticle carries q*w charge and m*w mass.
  Species(std::string name, double q, double m, std::size_t capacity = 1024);

  const std::string& name() const { return name_; }
  double q() const { return q_; }
  double m() const { return m_; }

  std::size_t size() const { return np_; }
  std::size_t capacity() const { return storage_.size(); }
  bool empty() const { return np_ == 0; }

  Particle* data() { return storage_.data(); }
  const Particle* data() const { return storage_.data(); }
  std::span<Particle> particles() { return {storage_.data(), np_}; }
  std::span<const Particle> particles() const { return {storage_.data(), np_}; }

  Particle& operator[](std::size_t i) { return storage_[i]; }
  const Particle& operator[](std::size_t i) const { return storage_[i]; }

  /// Appends a particle, growing storage if needed.
  void add(const Particle& p);

  /// Replaces the whole particle list with `src` in one copy. This is the
  /// restart path: a per-particle add() loop is O(n) calls on
  /// trillion-particle-scale restores, a bulk assign is one memcpy.
  void assign(std::span<const Particle> src);

  /// Removes particle `idx` by swapping the last one into its slot.
  void remove(std::size_t idx);

  void clear() { np_ = 0; }

  /// Ensures room for at least n particles.
  void reserve(std::size_t n);

  // -- diagnostics ---------------------------------------------------------
  /// Total kinetic energy: sum of w m (gamma - 1) (c = 1).
  double kinetic_energy() const;

  /// Total momentum: sum of w m u.
  std::array<double, 3> momentum() const;

  /// Total charge: sum of q w.
  double charge() const;

  /// Bytes of particle storage in use (for data-motion accounting).
  std::int64_t bytes() const { return std::int64_t(np_) * sizeof(Particle); }

  /// In-place O(N) counting sort by voxel index — the locality optimization
  /// the paper's inner-loop rate depends on (docs/SORTING.md). The histogram
  /// pass runs one slice per pipeline when a pool is supplied; the cycle-
  /// chasing permutation is serial and touches each particle at most twice.
  /// No particle-sized scratch buffer is allocated (the previous double-
  /// buffer scheme cost 32 B/particle of extra resident memory).
  ///
  /// NOT stable: particles sharing a voxel land in cycle order, not arrival
  /// order. The permutation is a pure function of the particle array — the
  /// same input sorts identically for every pipeline count, so determinism
  /// per (kernel, pipelines) is preserved (contract delta: docs/SORTING.md).
  void sort(const grid::LocalGrid& grid, Pipeline* pipeline = nullptr);

  /// Fraction of adjacent particle pairs in non-decreasing voxel order:
  /// 1.0 immediately after sort(), ~0.5 for a fully shuffled list. This is
  /// the cache-locality proxy the benches report alongside push rates.
  double sortedness() const;

 private:
  std::string name_;
  double q_, m_;
  std::size_t np_ = 0;
  AlignedBuffer<Particle> storage_;
  // sort() workspace, kept across calls so a periodic sort allocates only
  // on the first call (and when the pipeline count or grid size changes).
  std::vector<std::int32_t> sort_counts_;  ///< per-pipeline voxel histograms
  std::vector<std::int64_t> sort_next_;    ///< per-voxel write cursors
  std::vector<std::int64_t> sort_end_;     ///< per-voxel bucket ends
};

}  // namespace minivpic::particles
