// AVX2 translation unit: compiled with -mavx2 when the compiler supports it
// (particles/CMakeLists.txt), baseline flags otherwise. The TU self-gates
// on the resulting predefines, so no build-system feature macro is needed:
// without __AVX2__ the 8-wide kernel simply is not compiled and the entry
// is null. The instantiation lives in util/simd.hpp's arch inline
// namespace, so this TU's pack<8> types never ODR-collide with another
// TU's fallback pack<8>.
#include "particles/push_simd.hpp"

#if defined(__AVX2__)
#include "particles/push_simd_impl.hpp"
#endif

namespace minivpic::particles::detail {

SimdAdvanceFn advance_entry_avx2() {
#if defined(__AVX2__)
  return &advance_range_simd<8>;
#else
  return nullptr;
#endif
}

}  // namespace minivpic::particles::detail
