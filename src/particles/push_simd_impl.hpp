// The width-templated SIMD particle advance (VPIC's advance_p quad kernel,
// generalized over lane width W).
//
// Included ONLY by the per-ISA translation units (push_simd*.cpp), each of
// which instantiates exactly one width inside util/simd.hpp's arch inline
// namespace — never include this from ordinary code; use push_simd.hpp.
//
// Batch structure (docs/KERNELS.md has the diagrams):
//   1. load_tr: transposed AoS->SoA load of W 32-byte particles — the 8
//      interleaved columns {dx,dy,dz,i,ux,uy,uz,w} become 8 packs. The
//      int32 voxel and the weight ride through as raw bits (transposes are
//      bit-preserving; no arithmetic ever touches the voxel column).
//   2. load_tr keyed by voxel: gathered transpose of the 80-byte
//      Interpolator (18 coefficient columns at stride 20 floats). The
//      4-wide kernel reads 20 columns so every 4x4 transpose block is full
//      — the pad0/pad1 floats exist precisely to make the stride
//      block-friendly (interpolator.hpp); gather-based widths read 18.
//   3. Boris rotation + position update in registers, as the *same
//      operation sequence* as the scalar loop in push.cpp: IEEE
//      correctly-rounded add/sub/mul/div/sqrt only, no FMA, so every lane
//      rounds bit-identically to the scalar reference.
//   4. store_tr back: momenta for all lanes; positions blended so lanes
//      that leave their cell keep the pre-move offsets move_p starts from.
//   5. Deposit/spill in lane order (= particle order): in-cell lanes add
//      their precomputed quadrant currents to the accumulator; minority
//      crossing/boundary lanes spill to the scalar move_p — same RNG
//      stream, same draw order, same emigrant and dead ordering as scalar.
//   6. The slice remainder (count % W) runs the scalar reference loop.
#pragma once

#include <cstddef>
#include <cstdint>

#include "particles/push_simd.hpp"
#include "util/simd.hpp"

namespace minivpic::particles {
inline namespace MV_SIMD_ARCH_NS {

template <int W>
void advance_range_simd(const Pusher& pusher, Species& sp,
                        const InterpolatorArray& interp, CellAccum* acc_block,
                        std::size_t begin, std::size_t end, Rng& reflux_rng,
                        Pusher::Result& res, std::vector<std::size_t>& dead) {
  using P = simd::pack<W>;
  using M = simd::mask<W>;

  const grid::LocalGrid& g = SimdKernelAccess::grid(pusher);
  const float qdt_2mc = float(sp.q() * g.dt() / (2.0 * sp.m()));
  const Interpolator* f0 = interp.data();
  const float* fbase = &f0->ex;
  CellAccum* a0 = acc_block;
  Particle* parts = sp.data();

  const P one = P::broadcast(1.0f);
  const P third = P::broadcast(1.0f / 3.0f);
  const P two_fifteenths = P::broadcast(2.0f / 15.0f);
  const P vqdt_2mc = P::broadcast(qdt_2mc);
  const P vcdt_dx = P::broadcast(float(g.dt() / g.dx()));
  const P vcdt_dy = P::broadcast(float(g.dt() / g.dy()));
  const P vcdt_dz = P::broadcast(float(g.dt() / g.dz()));
  const P vqsp = P::broadcast(float(sp.q()));

  // Transpose row offsets: particle columns at stride 8 floats, per-lane
  // deposit rows at stride 12 floats.
  alignas(64) std::int32_t poff[W];
  alignas(64) std::int32_t doff[W];
  for (int w = 0; w < W; ++w) {
    poff[w] = w * 8;
    doff[w] = w * 12;
  }
  alignas(64) std::int32_t ioff[W];

  // Interpolator columns to fetch: the 4-wide transpose reads the two pads
  // too so every 4x4 block is full; gathers fetch exactly the 18 used.
  constexpr int kFCols = (W == 4) ? 20 : 18;
  enum : int {
    kEx, kDexdy, kDexdz, kD2exdydz,
    kEy, kDeydz, kDeydx, kD2eydzdx,
    kEz, kDezdx, kDezdy, kD2ezdxdy,
    kCbx, kDcbxdx, kCby, kDcbydy, kCbz, kDcbzdz,
  };

  alignas(64) float dep[std::size_t(W) * 12];  // quadrant addends, per lane
  alignas(64) float lx[W], ly[W], lz[W], lq[W];  // crossing-lane spill

  const std::size_t vend = begin + (end - begin) / W * W;

  for (std::size_t n = begin; n < vend; n += W) {
    P cols[8];
    simd::load_tr<W>(&parts[n].dx, poff, 8, cols);
    const P dx = cols[0], dy = cols[1], dz = cols[2];

    for (int w = 0; w < W; ++w) ioff[w] = parts[n + w].i * 20;
    P f[kFCols];
    simd::load_tr<W>(fbase, ioff, kFCols, f);

    // Field gather (same association as the scalar source).
    const P hax = vqdt_2mc * ((f[kEx] + dy * f[kDexdy]) +
                              dz * (f[kDexdz] + dy * f[kD2exdydz]));
    const P hay = vqdt_2mc * ((f[kEy] + dz * f[kDeydz]) +
                              dx * (f[kDeydx] + dz * f[kD2eydzdx]));
    const P haz = vqdt_2mc * ((f[kEz] + dx * f[kDezdx]) +
                              dy * (f[kDezdy] + dx * f[kD2ezdxdy]));
    const P cbx = f[kCbx] + dx * f[kDcbxdx];
    const P cby = f[kCby] + dy * f[kDcbydy];
    const P cbz = f[kCbz] + dz * f[kDcbzdz];

    // Half E acceleration.
    P ux = cols[4] + hax, uy = cols[5] + hay, uz = cols[6] + haz;

    // Boris rotation with the 7th-order tan correction.
    P v0 = vqdt_2mc / simd::sqrt(one + (ux * ux + (uy * uy + uz * uz)));
    const P v1 = cbx * cbx + (cby * cby + cbz * cbz);
    const P v2 = (v0 * v0) * v1;
    const P v3 = v0 * (one + v2 * (third + v2 * two_fifteenths));
    P v4 = v3 / (one + v1 * (v3 * v3));
    v4 = v4 + v4;
    v0 = ux + v3 * (uy * cbz - uz * cby);
    const P w1 = uy + v3 * (uz * cbx - ux * cbz);
    const P w2 = uz + v3 * (ux * cby - uy * cbx);
    ux = ux + v4 * (w1 * cbz - w2 * cby);
    uy = uy + v4 * (w2 * cbx - v0 * cbz);
    uz = uz + v4 * (v0 * cby - w1 * cbx);

    // Second half E acceleration.
    ux = ux + hax;
    uy = uy + hay;
    uz = uz + haz;

    // Displacement in cell units; offsets advance by twice that.
    v0 = one / simd::sqrt(one + (ux * ux + (uy * uy + uz * uz)));
    const P dispx = ux * v0 * vcdt_dx;
    const P dispy = uy * v0 * vcdt_dy;
    const P dispz = uz * v0 * vcdt_dz;
    const P mx = dx + dispx, my = dy + dispy, mz = dz + dispz;
    const P nx = mx + dispx, ny = my + dispy, nz = mz + dispz;

    const P q = vqsp * cols[7];

    const M in_cell = simd::cmp_le(nx, one) & simd::cmp_le(ny, one) &
                      simd::cmp_le(nz, one) & simd::cmp_le(-nx, one) &
                      simd::cmp_le(-ny, one) & simd::cmp_le(-nz, one);
    const unsigned in_bits = in_cell.bits();
    const unsigned all = simd::all_lanes<W>();

    // Store back. Momenta/voxel/weight for every lane; positions blended so
    // crossing lanes keep the offsets move_p integrates from (the scalar
    // path only writes p.d* in the in-cell branch).
    P out[8];
    out[0] = simd::select(in_cell, nx, dx);
    out[1] = simd::select(in_cell, ny, dy);
    out[2] = simd::select(in_cell, nz, dz);
    out[3] = cols[3];
    out[4] = ux;
    out[5] = uy;
    out[6] = uz;
    out[7] = cols[7];
    simd::store_tr<W>(out, 8, &parts[n].dx, poff);

    res.pushed += W;

    if (in_bits != 0) {
      // Vectorized accumulate_segment: compute each quadrant *addend* for
      // all lanes (the accumulator add itself happens per lane, in particle
      // order, below — one IEEE add per entry, exactly like scalar).
      const P v5 = q * dispx * dispy * dispz * third;
      P d[12];
      const auto quadrant = [&one, v5](P* out4, P qd, P da, P db) {
        const P t1 = qd * da;
        P t0 = qd - t1;
        P s1 = t1 + qd;
        const P hi = one + db;
        const P t2 = t0 * hi;
        const P t3 = s1 * hi;
        const P lo = one - db;
        t0 = t0 * lo;
        s1 = s1 * lo;
        out4[0] = t0 + v5;
        out4[1] = s1 - v5;
        out4[2] = t2 - v5;
        out4[3] = t3 + v5;
      };
      quadrant(d + 0, q * dispx, my, mz);
      quadrant(d + 4, q * dispy, mz, mx);
      quadrant(d + 8, q * dispz, mx, my);
      simd::store_tr<W>(d, 12, dep, doff);  // lane-major: 12 addends/lane
    }
    if (in_bits != all) {
      dispx.storeu(lx);
      dispy.storeu(ly);
      dispz.storeu(lz);
      q.storeu(lq);
    }

    // Lane loop in particle order: scatter-add the in-cell deposits, spill
    // crossing/boundary lanes to the scalar segment splitter.
    for (int w = 0; w < W; ++w) {
      Particle& p = parts[n + w];
      if (in_bits >> w & 1u) {
        using Q = simd::pack<4>;
        CellAccum& a = a0[p.i];
        const float* dl = dep + w * 12;
        (Q::loadu(a.jx) + Q::loadu(dl + 0)).storeu(a.jx);
        (Q::loadu(a.jy) + Q::loadu(dl + 4)).storeu(a.jy);
        (Q::loadu(a.jz) + Q::loadu(dl + 8)).storeu(a.jz);
      } else {
        Mover m{lx[w], ly[w], lz[w]};
        Emigrant out_e;
        switch (SimdKernelAccess::move_p(pusher, p, m, lq[w], a0, &out_e,
                                         &res, reflux_rng)) {
          case Pusher::MoveStatus::kDone:
            break;
          case Pusher::MoveStatus::kEmigrated:
            res.emigrants.push_back(out_e);
            dead.push_back(n + w);
            break;
          case Pusher::MoveStatus::kAbsorbed:
            dead.push_back(n + w);
            break;
        }
      }
    }
  }

  // Remainder batch: the scalar reference finishes the slice.
  if (vend < end)
    SimdKernelAccess::advance_scalar(pusher, sp, interp, acc_block, vend, end,
                                     reflux_rng, res, dead);
}

}  // inline namespace MV_SIMD_ARCH_NS
}  // namespace minivpic::particles
