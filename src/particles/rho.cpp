#include "particles/rho.hpp"

namespace minivpic::particles {

void accumulate_rho(const Species& sp, grid::FieldArray& f) {
  const auto& g = f.grid();
  const float r8v = float(sp.q() / (8.0 * g.cell_volume()));
  const int sy = g.sy(), sz = g.sz();
  grid::real* rho = f.rhof_span().data();
  for (const Particle& p : sp.particles()) {
    const float q = r8v * p.w;
    // Trilinear node weights from offsets in [-1, 1].
    const float lx = 1.0f - p.dx, hx = 1.0f + p.dx;
    const float ly = 1.0f - p.dy, hy = 1.0f + p.dy;
    const float lz = 1.0f - p.dz, hz = 1.0f + p.dz;
    grid::real* n000 = rho + p.i;
    n000[0] += q * lx * ly * lz;
    n000[1] += q * hx * ly * lz;
    n000[sy] += q * lx * hy * lz;
    n000[sy + 1] += q * hx * hy * lz;
    n000[sz] += q * lx * ly * hz;
    n000[sz + 1] += q * hx * ly * hz;
    n000[sz + sy] += q * lx * hy * hz;
    n000[sz + sy + 1] += q * hx * hy * hz;
  }
}

}  // namespace minivpic::particles
