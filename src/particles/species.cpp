#include "particles/species.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"
#include "util/pipeline.hpp"

namespace minivpic::particles {

Species::Species(std::string name, double q, double m, std::size_t capacity)
    : name_(std::move(name)), q_(q), m_(m), storage_(std::max<std::size_t>(capacity, 1)) {
  MV_REQUIRE(m > 0, "species mass must be positive");
  MV_REQUIRE(!name_.empty(), "species needs a name");
}

void Species::reserve(std::size_t n) {
  if (n <= storage_.size()) return;
  AlignedBuffer<Particle> grown(std::max(n, storage_.size() * 2));
  std::copy_n(storage_.data(), np_, grown.data());
  storage_ = std::move(grown);
}

void Species::add(const Particle& p) {
  if (np_ == storage_.size()) reserve(np_ + 1);
  storage_[np_++] = p;
}

void Species::assign(std::span<const Particle> src) {
  reserve(src.size());
  std::copy_n(src.data(), src.size(), storage_.data());
  np_ = src.size();
}

void Species::remove(std::size_t idx) {
  MV_ASSERT(idx < np_);
  storage_[idx] = storage_[--np_];
}

double Species::kinetic_energy() const {
  double e = 0;
  for (std::size_t n = 0; n < np_; ++n) {
    const Particle& p = storage_[n];
    e += double(p.w) * (gamma_of_u(p.ux, p.uy, p.uz) - 1.0);
  }
  return e * m_;
}

std::array<double, 3> Species::momentum() const {
  std::array<double, 3> mom{0, 0, 0};
  for (std::size_t n = 0; n < np_; ++n) {
    const Particle& p = storage_[n];
    mom[0] += double(p.w) * p.ux;
    mom[1] += double(p.w) * p.uy;
    mom[2] += double(p.w) * p.uz;
  }
  mom[0] *= m_;
  mom[1] *= m_;
  mom[2] *= m_;
  return mom;
}

double Species::charge() const {
  double c = 0;
  for (std::size_t n = 0; n < np_; ++n) c += storage_[n].w;
  return c * q_;
}

void Species::sort(const grid::LocalGrid& grid, Pipeline* pipeline) {
  if (np_ < 2) return;
  const std::size_t nv = std::size_t(grid.num_voxels());
  const int npipe = pipeline != nullptr ? pipeline->size() : 1;

  // Phase 1 — histogram. Each pipeline counts its static slice of the
  // particle array into a private row, so the O(N) read of the list (the
  // dominant cost at production particle counts) scales with the pool.
  // The row sum is order-independent, which is what keeps the final
  // permutation identical for every pipeline count.
  sort_counts_.assign(std::size_t(npipe) * nv, 0);
  const auto count_slice = [&](int p) {
    std::int32_t* row = sort_counts_.data() + std::size_t(p) * nv;
    const auto r = Pipeline::partition(np_, npipe, p);
    for (std::size_t n = r.begin; n < r.end; ++n) {
      const std::int32_t v = storage_[n].i;
      MV_ASSERT_MSG(v >= 0 && std::size_t(v) < nv,
                    "particle " << n << " has invalid voxel " << v);
      ++row[std::size_t(v)];
    }
  };
  if (npipe > 1) {
    pipeline->dispatch(count_slice);
    // Fold the private rows into row 0, each pipeline owning a voxel range.
    pipeline->dispatch([&](int p) {
      const auto r = Pipeline::partition(nv, npipe, p);
      for (int q = 1; q < npipe; ++q) {
        const std::int32_t* row = sort_counts_.data() + std::size_t(q) * nv;
        for (std::size_t v = r.begin; v < r.end; ++v)
          sort_counts_[v] += row[v];
      }
    });
  } else {
    count_slice(0);
  }

  // Phase 2 — exclusive prefix sum: bucket start cursors and fixed ends.
  sort_next_.resize(nv);
  sort_end_.resize(nv);
  std::int64_t run = 0;
  for (std::size_t v = 0; v < nv; ++v) {
    sort_next_[v] = run;
    run += sort_counts_[v];
    sort_end_[v] = run;
  }

  // Phase 3 — in-place cycle-chasing permutation. Every swap retires one
  // particle into its final bucket slot, so the loop is O(N) swaps total;
  // buckets below v are complete when bucket v starts draining. No
  // particle-sized scratch: this is what replaced the old stable
  // double-buffer scatter (32 B/particle of extra memory and a full copy).
  for (std::size_t v = 0; v < nv; ++v) {
    std::int64_t i = sort_next_[v];
    while (i < sort_end_[v]) {
      const std::size_t k = std::size_t(storage_[std::size_t(i)].i);
      if (k == v) {
        ++i;
      } else {
        std::swap(storage_[std::size_t(i)],
                  storage_[std::size_t(sort_next_[k]++)]);
      }
    }
  }
}

double Species::sortedness() const {
  if (np_ < 2) return 1.0;
  std::size_t ordered = 0;
  for (std::size_t n = 1; n < np_; ++n)
    ordered += storage_[n - 1].i <= storage_[n].i ? 1 : 0;
  return double(ordered) / double(np_ - 1);
}

}  // namespace minivpic::particles
