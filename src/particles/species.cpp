#include "particles/species.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"

namespace minivpic::particles {

Species::Species(std::string name, double q, double m, std::size_t capacity)
    : name_(std::move(name)), q_(q), m_(m), storage_(std::max<std::size_t>(capacity, 1)) {
  MV_REQUIRE(m > 0, "species mass must be positive");
  MV_REQUIRE(!name_.empty(), "species needs a name");
}

void Species::reserve(std::size_t n) {
  if (n <= storage_.size()) return;
  AlignedBuffer<Particle> grown(std::max(n, storage_.size() * 2));
  std::copy_n(storage_.data(), np_, grown.data());
  storage_ = std::move(grown);
  scratch_ = AlignedBuffer<Particle>();  // re-sized lazily by sort()
}

void Species::add(const Particle& p) {
  if (np_ == storage_.size()) reserve(np_ + 1);
  storage_[np_++] = p;
}

void Species::assign(std::span<const Particle> src) {
  reserve(src.size());
  std::copy_n(src.data(), src.size(), storage_.data());
  np_ = src.size();
}

void Species::remove(std::size_t idx) {
  MV_ASSERT(idx < np_);
  storage_[idx] = storage_[--np_];
}

double Species::kinetic_energy() const {
  double e = 0;
  for (std::size_t n = 0; n < np_; ++n) {
    const Particle& p = storage_[n];
    e += double(p.w) * (gamma_of_u(p.ux, p.uy, p.uz) - 1.0);
  }
  return e * m_;
}

std::array<double, 3> Species::momentum() const {
  std::array<double, 3> mom{0, 0, 0};
  for (std::size_t n = 0; n < np_; ++n) {
    const Particle& p = storage_[n];
    mom[0] += double(p.w) * p.ux;
    mom[1] += double(p.w) * p.uy;
    mom[2] += double(p.w) * p.uz;
  }
  mom[0] *= m_;
  mom[1] *= m_;
  mom[2] *= m_;
  return mom;
}

double Species::charge() const {
  double c = 0;
  for (std::size_t n = 0; n < np_; ++n) c += storage_[n].w;
  return c * q_;
}

void Species::sort(const grid::LocalGrid& grid) {
  if (np_ < 2) return;
  const std::size_t nv = std::size_t(grid.num_voxels());
  std::vector<std::int32_t> count(nv + 1, 0);
  for (std::size_t n = 0; n < np_; ++n) {
    const std::int32_t v = storage_[n].i;
    MV_ASSERT_MSG(v >= 0 && std::size_t(v) < nv,
                  "particle " << n << " has invalid voxel " << v);
    ++count[std::size_t(v) + 1];
  }
  for (std::size_t v = 1; v <= nv; ++v) count[v] += count[v - 1];
  if (scratch_.size() < storage_.size())
    scratch_ = AlignedBuffer<Particle>(storage_.size());
  for (std::size_t n = 0; n < np_; ++n)
    scratch_[std::size_t(count[std::size_t(storage_[n].i)]++)] = storage_[n];
  storage_.swap(scratch_);
}

}  // namespace minivpic::particles
