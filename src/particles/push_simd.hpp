// SIMD particle-advance kernels: dispatch interface.
//
// The vector kernels live in three translation units so each can carry its
// own ISA flags (particles/CMakeLists.txt):
//   push_simd.cpp        baseline build  -> 4-wide kernel (SSE2/NEON) +
//                                           the registry and dispatcher
//   push_simd_avx2.cpp   -mavx2          -> 8-wide kernel
//   push_simd_avx512.cpp -mavx512f       -> 16-wide kernel
// Every width-dependent symbol sits inside util/simd.hpp's arch inline
// namespace, so the differently-flagged TUs never ODR-merge incompatible
// codegen. A TU whose ISA the compiler cannot target (or a non-x86 build)
// returns a null entry; kernel_available() folds that together with
// runtime CPU detection (__builtin_cpu_supports).
//
// All kernels share one signature — the scalar advance_range_scalar's,
// with the Pusher passed explicitly — so Pusher::advance_range can swap
// them freely per slice. See docs/KERNELS.md for the kernel walk-through
// and the determinism contract.
#pragma once

#include <cstddef>
#include <vector>

#include "particles/kernel.hpp"
#include "particles/push.hpp"

namespace minivpic::particles {

/// One pipeline-slice advance: particles [begin, end) of `sp`, deposits
/// into `acc_block`, dead indices appended ascending. Matches
/// Pusher::advance_range_scalar semantics exactly.
using SimdAdvanceFn = void (*)(const Pusher&, Species& sp,
                               const InterpolatorArray& interp,
                               CellAccum* acc_block, std::size_t begin,
                               std::size_t end, Rng& reflux_rng,
                               Pusher::Result& res,
                               std::vector<std::size_t>& dead);

/// The SIMD kernels are compiled in their own TUs but need three private
/// pieces of Pusher: the grid, move_p for spilled cell-crossing lanes, and
/// the scalar loop for the remainder batch. This friend shim is their only
/// doorway, so the private surface the kernels depend on stays explicit.
struct SimdKernelAccess {
  static const grid::LocalGrid& grid(const Pusher& pu) { return *pu.grid_; }

  static Pusher::MoveStatus move_p(const Pusher& pu, Particle& p, Mover& m,
                                   float macro_charge, CellAccum* acc,
                                   Emigrant* out, Pusher::Result* stats,
                                   Rng& reflux_rng) {
    return pu.move_p(p, m, macro_charge, acc, out, stats, reflux_rng);
  }

  static void advance_scalar(const Pusher& pu, Species& sp,
                             const InterpolatorArray& interp,
                             CellAccum* acc_block, std::size_t begin,
                             std::size_t end, Rng& reflux_rng,
                             Pusher::Result& res,
                             std::vector<std::size_t>& dead) {
    pu.advance_range_scalar(sp, interp, acc_block, begin, end, reflux_rng,
                            res, dead);
  }
};

namespace detail {
/// Per-TU kernel entries; null when the TU's ISA was not compiled in.
SimdAdvanceFn advance_entry_w4();      // push_simd.cpp (SSE2/NEON/portable)
SimdAdvanceFn advance_entry_avx2();    // push_simd_avx2.cpp
SimdAdvanceFn advance_entry_avx512();  // push_simd_avx512.cpp
}  // namespace detail

/// Kernel entry for a *resolved* kernel; null for kScalar (the caller runs
/// its own scalar loop) and for kernels this build did not compile.
SimdAdvanceFn simd_advance_entry(Kernel k);

}  // namespace minivpic::particles
