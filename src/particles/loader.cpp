#include "particles/loader.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace minivpic::particles {

namespace {

std::uint64_t name_key(const std::string& name) {
  std::uint64_t h = 0;
  for (char c : name) h = hash_combine(h, std::uint64_t(std::uint8_t(c)));
  return h;
}

}  // namespace

std::size_t load_uniform(Species& sp, const grid::LocalGrid& g,
                         const LoadConfig& cfg) {
  MV_REQUIRE(cfg.ppc > 0, "particles per cell must be positive");
  MV_REQUIRE(cfg.density > 0, "density must be positive");
  MV_REQUIRE(cfg.uth >= 0, "thermal spread must be non-negative");
  const bool aniso =
      cfg.uth3[0] != 0 || cfg.uth3[1] != 0 || cfg.uth3[2] != 0;
  std::array<double, 3> uth{cfg.uth, cfg.uth, cfg.uth};
  if (aniso) {
    for (int a = 0; a < 3; ++a) {
      MV_REQUIRE(cfg.uth3[std::size_t(a)] >= 0,
                 "thermal spread must be non-negative");
      uth[std::size_t(a)] = cfg.uth3[std::size_t(a)];
    }
  }

  const double base_w = cfg.density * g.cell_volume() / cfg.ppc;
  const std::uint64_t species_key = name_key(sp.name());
  sp.reserve(sp.size() + std::size_t(cfg.ppc) * std::size_t(g.num_cells()));

  std::size_t loaded = 0;
  for (int k = 1; k <= g.nz(); ++k) {
    for (int j = 1; j <= g.ny(); ++j) {
      for (int i = 1; i <= g.nx(); ++i) {
        const std::uint64_t gcell =
            (std::uint64_t(g.offset_z() + k - 1) * g.global_ny() +
             std::uint64_t(g.offset_y() + j - 1)) *
                g.global_nx() +
            std::uint64_t(g.offset_x() + i - 1);
        // Positions keyed by cell only (species share them); momenta keyed
        // by cell and species.
        Rng pos_rng(cfg.seed, hash_combine(gcell, 0x706F73 /*'pos'*/));
        Rng mom_rng(cfg.seed, hash_combine(gcell, species_key));
        const std::int32_t voxel = g.voxel(i, j, k);
        for (int n = 0; n < cfg.ppc; ++n) {
          // Fixed draw budget per particle keeps streams aligned no matter
          // what downstream options consume.
          pos_rng.seek(std::uint64_t(n) * 4);
          mom_rng.seek(std::uint64_t(n) * 8);
          Particle p;
          p.dx = float(pos_rng.uniform(-1.0, 1.0));
          p.dy = float(pos_rng.uniform(-1.0, 1.0));
          p.dz = float(pos_rng.uniform(-1.0, 1.0));
          p.i = voxel;
          p.ux = float(cfg.drift[0] + mom_rng.maxwellian(uth[0]));
          p.uy = float(cfg.drift[1] + mom_rng.maxwellian(uth[1]));
          p.uz = float(cfg.drift[2] + mom_rng.maxwellian(uth[2]));
          double w = base_w;
          const double x = g.node_x(i) + 0.5 * (1.0 + p.dx) * g.dx();
          const double y = g.node_y(j) + 0.5 * (1.0 + p.dy) * g.dy();
          const double z = g.node_z(k) + 0.5 * (1.0 + p.dz) * g.dz();
          if (cfg.profile) {
            const double scale = cfg.profile(x, y, z);
            MV_REQUIRE(scale >= 0, "density profile must be non-negative");
            if (scale == 0) continue;
            w *= scale;
          }
          if (cfg.drift_profile) {
            const auto du = cfg.drift_profile(x, y, z);
            p.ux += float(du[0]);
            p.uy += float(du[1]);
            p.uz += float(du[2]);
          }
          p.w = float(w);
          sp.add(p);
          ++loaded;
        }
      }
    }
  }
  return loaded;
}

}  // namespace minivpic::particles
