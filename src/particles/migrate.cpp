#include "particles/migrate.hpp"

#include <array>

#include "util/error.hpp"

namespace minivpic::particles {

namespace {

constexpr int kMigrateTagBase = (1 << 20) + 64;

/// On-the-wire emigrant: sender-side voxel indices are meaningless on the
/// receiver (strides differ), so cell coordinates travel explicitly.
struct WireEmigrant {
  float dx, dy, dz;        ///< offsets; the crossed axis sits exactly at +-1
  float ux, uy, uz, w;
  float rdx, rdy, rdz;     ///< remaining displacement (cell units)
  std::int32_t cx, cy, cz; ///< sender-local cell coordinates
  std::int32_t face;       ///< grid::Face crossed (sender's perspective)
};
static_assert(std::is_trivially_copyable_v<WireEmigrant>);

grid::Face opposite(grid::Face f) {
  return static_cast<grid::Face>(static_cast<int>(f) ^ 1);
}

}  // namespace

MigrateStats migrate_particles(std::vector<Emigrant> emigrants, Species& sp,
                               const Pusher& pusher, AccumulatorArray& acc,
                               const grid::LocalGrid& g, vmpi::Comm* comm) {
  MigrateStats stats;
  if (comm == nullptr) {
    MV_REQUIRE(emigrants.empty(),
               "emigrants on a single-rank grid without a communicator");
    return stats;
  }

  const float qsp = float(sp.q());
  Pusher::Result move_stats;  // crossing counters from continued moves

  for (;;) {
    long long remaining = static_cast<long long>(emigrants.size());
    remaining = comm->allreduce_value(remaining, vmpi::Op::kSum);
    if (remaining == 0) break;
    ++stats.rounds;

    // Bucket by departure face.
    std::array<std::vector<WireEmigrant>, 6> out;
    for (const Emigrant& e : emigrants) {
      const auto c = g.voxel_coords(e.p.i);
      WireEmigrant w;
      w.dx = e.p.dx;
      w.dy = e.p.dy;
      w.dz = e.p.dz;
      w.ux = e.p.ux;
      w.uy = e.p.uy;
      w.uz = e.p.uz;
      w.w = e.p.w;
      w.rdx = e.rem.dispx;
      w.rdy = e.rem.dispy;
      w.rdz = e.rem.dispz;
      w.cx = c[0];
      w.cy = c[1];
      w.cz = c[2];
      w.face = e.face;
      out[std::size_t(e.face)].push_back(w);
    }
    stats.sent += static_cast<std::int64_t>(emigrants.size());
    emigrants.clear();

    // Send on every rank-adjacent face (empty messages keep the pattern
    // fixed); then receive from each.
    for (int face = 0; face < 6; ++face) {
      const int nbr = g.neighbor(static_cast<grid::Face>(face));
      if (nbr == grid::LocalGrid::kNoNeighbor || nbr == g.rank()) {
        MV_ASSERT_MSG(out[std::size_t(face)].empty(),
                      "emigrant bound for a non-rank face " << face);
        continue;
      }
      comm->send(nbr, kMigrateTagBase + face,
                 std::span<const WireEmigrant>(out[std::size_t(face)]));
    }
    for (int face = 0; face < 6; ++face) {
      const auto myface = static_cast<grid::Face>(face);
      const int nbr = g.neighbor(myface);
      if (nbr == grid::LocalGrid::kNoNeighbor || nbr == g.rank()) continue;
      // The sender tagged with the face it crossed — the opposite of mine.
      const int tag = kMigrateTagBase + static_cast<int>(opposite(myface));
      const auto incoming = comm->recv_any<WireEmigrant>(nbr, tag);
      for (const WireEmigrant& w : incoming) {
        const auto face_in = static_cast<grid::Face>(w.face);
        const int axis = grid::face_axis(face_in);
        const int dir = grid::face_dir(face_in);
        // Entry cell: first interior plane on my side of the face;
        // transverse coordinates carry over (splits match across a face).
        std::array<int, 3> c{w.cx, w.cy, w.cz};
        const int n = axis == 0 ? g.nx() : axis == 1 ? g.ny() : g.nz();
        c[std::size_t(axis)] = dir > 0 ? 1 : n;
        MV_REQUIRE(c[0] >= 1 && c[0] <= g.nx() && c[1] >= 1 &&
                       c[1] <= g.ny() && c[2] >= 1 && c[2] <= g.nz(),
                   "immigrant cell (" << c[0] << "," << c[1] << "," << c[2]
                                      << ") outside receiver slab");
        Particle p;
        p.dx = w.dx;
        p.dy = w.dy;
        p.dz = w.dz;
        (&p.dx)[axis] = float(-dir);  // flipped to my side of the face
        p.i = g.voxel(c[0], c[1], c[2]);
        p.ux = w.ux;
        p.uy = w.uy;
        p.uz = w.uz;
        p.w = w.w;
        Mover m{w.rdx, w.rdy, w.rdz};
        Emigrant next;
        switch (pusher.continue_move(p, m, qsp * p.w, acc, &next,
                                     &move_stats)) {
          case Pusher::MoveStatus::kDone:
            sp.add(p);
            ++stats.received;
            break;
          case Pusher::MoveStatus::kEmigrated:
            emigrants.push_back(next);
            break;
          case Pusher::MoveStatus::kAbsorbed:
            ++stats.absorbed;
            break;
        }
      }
    }
  }
  return stats;
}

}  // namespace minivpic::particles
