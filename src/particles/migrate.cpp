#include "particles/migrate.hpp"

#include <array>

#include "util/error.hpp"

namespace minivpic::particles {

namespace {

constexpr int kMigrateTagBase = (1 << 20) + 64;

/// On-the-wire emigrant: sender-side voxel indices are meaningless on the
/// receiver (strides differ), so cell coordinates travel explicitly.
struct WireEmigrant {
  float dx, dy, dz;        ///< offsets; the crossed axis sits exactly at +-1
  float ux, uy, uz, w;
  float rdx, rdy, rdz;     ///< remaining displacement (cell units)
  std::int32_t cx, cy, cz; ///< sender-local cell coordinates
  std::int32_t face;       ///< grid::Face crossed (sender's perspective)
};
static_assert(std::is_trivially_copyable_v<WireEmigrant>);

grid::Face opposite(grid::Face f) {
  return static_cast<grid::Face>(static_cast<int>(f) ^ 1);
}

}  // namespace

MigrateStats exchange_particles(std::vector<Emigrant> emigrants,
                                const Species& sp, const Pusher& pusher,
                                CellAccum* acc_block,
                                const grid::LocalGrid& g, vmpi::Comm* comm,
                                std::vector<Particle>* immigrants) {
  MigrateStats stats;
  if (comm == nullptr) {
    MV_REQUIRE(emigrants.empty(),
               "emigrants on a single-rank grid without a communicator");
    return stats;
  }

  const float qsp = float(sp.q());
  Pusher::Result move_stats;  // crossing counters from continued moves

  for (;;) {
    long long remaining = static_cast<long long>(emigrants.size());
    remaining = comm->allreduce_value(remaining, vmpi::Op::kSum);
    if (remaining == 0) break;
    ++stats.rounds;

    // Bucket by departure face.
    std::array<std::vector<WireEmigrant>, 6> out;
    for (const Emigrant& e : emigrants) {
      const auto c = g.voxel_coords(e.p.i);
      WireEmigrant w;
      w.dx = e.p.dx;
      w.dy = e.p.dy;
      w.dz = e.p.dz;
      w.ux = e.p.ux;
      w.uy = e.p.uy;
      w.uz = e.p.uz;
      w.w = e.p.w;
      w.rdx = e.rem.dispx;
      w.rdy = e.rem.dispy;
      w.rdz = e.rem.dispz;
      w.cx = c[0];
      w.cy = c[1];
      w.cz = c[2];
      w.face = e.face;
      out[std::size_t(e.face)].push_back(w);
    }
    stats.sent += static_cast<std::int64_t>(emigrants.size());
    emigrants.clear();

    // Post a receive for every rank-adjacent face *before* sending, so a
    // neighbor's payload completes at delivery time instead of queueing;
    // then send on every such face (empty messages keep the pattern fixed).
    // Completion order is up to the transport, but faces are *processed* in
    // fixed face order below, so results are independent of timing.
    std::array<vmpi::Request, 6> rx;
    for (int face = 0; face < 6; ++face) {
      const auto myface = static_cast<grid::Face>(face);
      const int nbr = g.neighbor(myface);
      if (nbr == grid::LocalGrid::kNoNeighbor || nbr == g.rank()) continue;
      const int tag = kMigrateTagBase + static_cast<int>(opposite(myface));
      rx[std::size_t(face)] = comm->ipost(nbr, tag);
    }
    for (int face = 0; face < 6; ++face) {
      const int nbr = g.neighbor(static_cast<grid::Face>(face));
      if (nbr == grid::LocalGrid::kNoNeighbor || nbr == g.rank()) {
        MV_ASSERT_MSG(out[std::size_t(face)].empty(),
                      "emigrant bound for a non-rank face " << face);
        continue;
      }
      comm->send(nbr, kMigrateTagBase + face,
                 std::span<const WireEmigrant>(out[std::size_t(face)]));
    }
    for (int face = 0; face < 6; ++face) {
      vmpi::Request& req = rx[std::size_t(face)];
      if (!req.valid()) continue;
      std::vector<WireEmigrant> incoming;
      try {
        comm->wait(req);
        incoming = req.take<WireEmigrant>();
      } catch (...) {
        // A fault on this face: drop the remaining posted receives so no
        // orphaned entry can swallow a later send, then let the recovery
        // machinery see the typed error.
        for (int f = face + 1; f < 6; ++f)
          if (rx[std::size_t(f)].valid()) comm->cancel(rx[std::size_t(f)]);
        throw;
      }
      for (const WireEmigrant& w : incoming) {
        const auto face_in = static_cast<grid::Face>(w.face);
        const int axis = grid::face_axis(face_in);
        const int dir = grid::face_dir(face_in);
        // Entry cell: first interior plane on my side of the face;
        // transverse coordinates carry over (splits match across a face).
        std::array<int, 3> c{w.cx, w.cy, w.cz};
        const int n = axis == 0 ? g.nx() : axis == 1 ? g.ny() : g.nz();
        c[std::size_t(axis)] = dir > 0 ? 1 : n;
        MV_REQUIRE(c[0] >= 1 && c[0] <= g.nx() && c[1] >= 1 &&
                       c[1] <= g.ny() && c[2] >= 1 && c[2] <= g.nz(),
                   "immigrant cell (" << c[0] << "," << c[1] << "," << c[2]
                                      << ") outside receiver slab");
        Particle p;
        p.dx = w.dx;
        p.dy = w.dy;
        p.dz = w.dz;
        (&p.dx)[axis] = float(-dir);  // flipped to my side of the face
        p.i = g.voxel(c[0], c[1], c[2]);
        p.ux = w.ux;
        p.uy = w.uy;
        p.uz = w.uz;
        p.w = w.w;
        Mover m{w.rdx, w.rdy, w.rdz};
        Emigrant next;
        switch (pusher.continue_move(p, m, qsp * p.w, acc_block, &next,
                                     &move_stats)) {
          case Pusher::MoveStatus::kDone:
            immigrants->push_back(p);
            ++stats.received;
            break;
          case Pusher::MoveStatus::kEmigrated:
            emigrants.push_back(next);
            break;
          case Pusher::MoveStatus::kAbsorbed:
            ++stats.absorbed;
            break;
        }
      }
    }
  }
  return stats;
}

MigrateStats migrate_particles(std::vector<Emigrant> emigrants, Species& sp,
                               const Pusher& pusher, AccumulatorArray& acc,
                               const grid::LocalGrid& g, vmpi::Comm* comm) {
  std::vector<Particle> immigrants;
  const MigrateStats stats = exchange_particles(
      std::move(emigrants), sp, pusher, acc.data(), g, comm, &immigrants);
  for (const Particle& p : immigrants) sp.add(p);
  return stats;
}

}  // namespace minivpic::particles
