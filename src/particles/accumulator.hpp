// Per-cell current accumulator (VPIC's accumulator array).
//
// The push deposits each particle's current into the accumulator of its
// cell — a compact, cache-resident write target — and the accumulated
// quadrant fluxes are unloaded onto the Yee J mesh once per step. Each
// entry stores, per component, 4 x the physical charge that crossed the
// corresponding edge quadrant during the step (VPIC's convention):
//   jx[0] edge (i, j,   k  ),  jx[1] edge (i, j+1, k  ),
//   jx[2] edge (i, j,   k+1), jx[3] edge (i, j+1, k+1)
// and cyclically for jy (k, i offsets) and jz (i, j offsets).
//
// For the multi-pipeline particle advance the array holds one block of
// num_voxels entries per pipeline: each pipeline deposits into its private
// block race-free, and reduce() folds blocks 1..B-1 into block 0 in block
// order before unload(). Block 0 is also the target for serial depositors
// (migration move completion, the 1-pipeline reference path), so data()
// keeps its historical meaning.
#pragma once

#include <span>

#include "grid/fields.hpp"
#include "util/aligned.hpp"

namespace minivpic::particles {

struct CellAccum {
  float jx[4] = {0, 0, 0, 0};
  float jy[4] = {0, 0, 0, 0};
  float jz[4] = {0, 0, 0, 0};
  float pad[4] = {0, 0, 0, 0};  ///< pad to 64 bytes (one cache line)
};
static_assert(sizeof(CellAccum) == 64, "accumulator layout");

class AccumulatorArray {
 public:
  /// `blocks` private deposit blocks (>= 1): one per particle pipeline.
  explicit AccumulatorArray(const grid::LocalGrid& grid, int blocks = 1);

  CellAccum* data() { return data_.data(); }
  const CellAccum* data() const { return data_.data(); }

  /// Entries of one pipeline's private block (b in [0, blocks())).
  CellAccum* block(int b) { return data_.data() + std::size_t(b) * voxels_; }
  const CellAccum* block(int b) const {
    return data_.data() + std::size_t(b) * voxels_;
  }

  int blocks() const { return blocks_; }
  std::size_t size() const { return voxels_; }  ///< voxels per block

  void clear() { data_.zero(); }

  /// Folds pipeline blocks 1..blocks()-1 into block 0, in ascending block
  /// order. The fold order is fixed and the particle partition is
  /// contiguous, so the result is bit-wise reproducible run to run for a
  /// given block count, and bit-identical to the serial deposit whenever
  /// each cell receives at most one deposit per block. Cells hit several
  /// times from the same later block see a different float rounding *order*
  /// than the serial running sum, so dense decks agree with serial to
  /// rounding (ULPs), not bit-for-bit. A flat vectorizable stream: 16
  /// floats per voxel per block.
  void reduce();

  /// Adds the accumulated quadrant charges of block 0 onto the mesh
  /// free-current arrays (jfx += ...). Deposits reach voxel index n+1 along
  /// each axis; run the halo source reduction afterwards. Call reduce()
  /// first when more than one block was deposited into. Does not clear.
  void unload(grid::FieldArray& f) const;

 private:
  std::size_t voxels_;
  int blocks_;
  AlignedBuffer<CellAccum> data_;  ///< blocks_ consecutive voxel blocks
};

}  // namespace minivpic::particles
