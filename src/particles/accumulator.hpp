// Per-cell current accumulator (VPIC's accumulator array).
//
// The push deposits each particle's current into the accumulator of its
// cell — a compact, cache-resident write target — and the accumulated
// quadrant fluxes are unloaded onto the Yee J mesh once per step. Each
// entry stores, per component, 4 x the physical charge that crossed the
// corresponding edge quadrant during the step (VPIC's convention):
//   jx[0] edge (i, j,   k  ),  jx[1] edge (i, j+1, k  ),
//   jx[2] edge (i, j,   k+1), jx[3] edge (i, j+1, k+1)
// and cyclically for jy (k, i offsets) and jz (i, j offsets).
#pragma once

#include <span>

#include "grid/fields.hpp"
#include "util/aligned.hpp"

namespace minivpic::particles {

struct CellAccum {
  float jx[4] = {0, 0, 0, 0};
  float jy[4] = {0, 0, 0, 0};
  float jz[4] = {0, 0, 0, 0};
  float pad[4] = {0, 0, 0, 0};  ///< pad to 64 bytes (one cache line)
};
static_assert(sizeof(CellAccum) == 64, "accumulator layout");

class AccumulatorArray {
 public:
  explicit AccumulatorArray(const grid::LocalGrid& grid)
      : data_(std::size_t(grid.num_voxels())) {}

  CellAccum* data() { return data_.data(); }
  const CellAccum* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }

  void clear() { data_.zero(); }

  /// Adds the accumulated quadrant charges onto the mesh free-current
  /// arrays (jfx += ...). Deposits reach voxel index n+1 along each axis;
  /// run the halo source reduction afterwards. Does not clear.
  void unload(grid::FieldArray& f) const;

 private:
  AlignedBuffer<CellAccum> data_;
};

}  // namespace minivpic::particles
