// Per-cell cached field interpolation coefficients (VPIC's interpolator
// array). Loaded once per cell per step from the Yee mesh, it turns the
// per-particle field gather into a single 80-byte streaming load plus a few
// fused multiply-adds — the key data-motion optimization behind the paper's
// sustained inner-loop rate.
//
// Within cell i with offsets (dx, dy, dz) in [-1, 1]:
//   Ex = ex + dy*dexdy + dz*(dexdz + dy*d2exdydz)     (bilinear in y,z)
//   Ey = ey + dz*deydz + dx*(deydx + dz*d2eydzdx)     (bilinear in z,x)
//   Ez = ez + dx*dezdx + dy*(dezdy + dx*d2ezdxdy)     (bilinear in x,y)
//   cBx = cbx + dx*dcbxdx                              (linear in x)
//   cBy = cby + dy*dcbydy                              (linear in y)
//   cBz = cbz + dz*dcbzdz                              (linear in z)
#pragma once

#include <span>

#include "grid/fields.hpp"
#include "util/aligned.hpp"

namespace minivpic::particles {

struct alignas(16) Interpolator {
  float ex = 0, dexdy = 0, dexdz = 0, d2exdydz = 0;
  float ey = 0, deydz = 0, deydx = 0, d2eydzdx = 0;
  float ez = 0, dezdx = 0, dezdy = 0, d2ezdxdy = 0;
  float cbx = 0, dcbxdx = 0;
  float cby = 0, dcbydy = 0;
  float cbz = 0, dcbzdz = 0;
  /// VPIC's padding, not waste: it rounds the 18 coefficients up to an
  /// 80-byte (= 5 x 16 B) element, so the per-particle gather is a fixed
  /// vector-friendly stride and the SIMD kernels' 4-wide transpose can read
  /// columns in full 16-byte blocks — the final block covers {cbz, dcbzdz,
  /// pad0, pad1} without stepping outside the element (util/simd.hpp).
  float pad0 = 0, pad1 = 0;
};
static_assert(sizeof(Interpolator) == 80, "interpolator layout");
// The SIMD gather loads 16-byte column blocks; keep elements 16-aligned so
// those loads never split across elements (the backing store is 64-aligned
// via util::AlignedBuffer, see below).
static_assert(alignof(Interpolator) >= 16, "interpolator alignment");
static_assert(sizeof(Interpolator) % alignof(Interpolator) == 0,
              "array elements must preserve the alignment");

/// Interpolator array for one rank's voxels.
class InterpolatorArray {
 public:
  explicit InterpolatorArray(const grid::LocalGrid& grid)
      : data_(std::size_t(grid.num_voxels())) {}

  Interpolator* data() { return data_.data(); }
  const Interpolator* data() const { return data_.data(); }
  std::span<const Interpolator> span() const { return data_.span(); }
  std::size_t size() const { return data_.size(); }

  /// Rebuilds coefficients for every interior cell from the mesh fields.
  /// E and B ghosts must be fresh.
  void load(const grid::FieldArray& f);

  /// Evaluated fields at a given offset inside a cell (diagnostic/test
  /// helper; the push inlines this arithmetic).
  struct Fields {
    float ex, ey, ez, cbx, cby, cbz;
  };
  Fields evaluate(std::int32_t voxel, float dx, float dy, float dz) const;

 private:
  AlignedBuffer<Interpolator> data_;
};

}  // namespace minivpic::particles
