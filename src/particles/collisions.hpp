// Binary Coulomb collisions: the Takizuka–Abe (J. Comput. Phys. 25, 205
// (1977)) Monte-Carlo pairing operator, as shipped with production VPIC.
// Hohlraum plasmas are weakly collisional; collisionality sets the Landau
// damping recovery time of the SRS daughter wave, so LPI studies toggle
// this operator on for the longest runs.
//
// Each collision step, particles within one cell are randomly paired and
// each pair's relative velocity is rotated by a random angle whose variance
// follows the Coulomb collision integral:
//     <delta^2> = nu_scale * n_cell * dt / |u_rel|^3,
// with delta = tan(theta/2). The rotation conserves momentum exactly and
// kinetic energy exactly (non-relativistic scatter on u = gamma v ~ v;
// valid for the thermal bulks this is applied to — documented limitation).
//
// `nu_scale` absorbs the physical prefactor q_a^2 q_b^2 ln(Lambda) /
// (8 pi eps0^2 m_ab^2): in normalized PIC units the Coulomb logarithm and
// the number of particles per Debye cube are not independently meaningful,
// so the collisionality is an input knob, exactly as in VPIC decks.
//
// Odd particle counts use Takizuka & Abe's triple: the first three
// particles form pairs (1,2), (2,3), (3,1), each colliding for dt/2.
// Unequal weights are handled with Nanbu-style rejection: each partner is
// scattered with probability w_other / max(w_a, w_b).
#pragma once

#include <cstdint>

#include "grid/geometry.hpp"
#include "particles/species.hpp"

namespace minivpic::particles {

struct CollisionStats {
  std::int64_t pairs = 0;
  std::int64_t scattered = 0;  ///< individual particles whose u changed
};

/// Intra-species collisions (e.g. electron-electron). The species MUST be
/// sorted by voxel (Species::sort) before the call.
CollisionStats collide_intraspecies(Species& sp, const grid::LocalGrid& grid,
                                    double nu_scale, double dt,
                                    std::uint64_t seed, std::int64_t step);

/// Inter-species collisions (e.g. electron-ion). Both species MUST be
/// sorted by voxel. Particles of `a` are paired with randomly chosen
/// particles of `b` in the same cell (the standard unequal-count pairing).
CollisionStats collide_interspecies(Species& a, Species& b,
                                    const grid::LocalGrid& grid,
                                    double nu_scale, double dt,
                                    std::uint64_t seed, std::int64_t step);

}  // namespace minivpic::particles
