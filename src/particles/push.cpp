#include "particles/push.hpp"

#include <cmath>

#include "particles/push_simd.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace minivpic::particles {

namespace {

constexpr float kOne = 1.0f;
constexpr float kOneThird = 1.0f / 3.0f;
constexpr float kTwoFifteenths = 2.0f / 15.0f;

/// Reflux stream ids: pipeline p uses hash(rank, p); migration completion
/// uses a stream id no pipeline can collide with.
constexpr std::uint64_t kMigrateStream = ~std::uint64_t{0};

/// Deposits the current of one straight trajectory segment into a cell's
/// accumulator. `disp*` is the segment displacement in cell units, `mid*`
/// the segment midpoint in cell offsets. Entries get 4x the charge through
/// each edge quadrant (VPIC convention; see accumulator.hpp).
inline void accumulate_segment(CellAccum& a, float q, float dispx, float dispy,
                               float dispz, float midx, float midy,
                               float midz) {
  const float v5 = q * dispx * dispy * dispz * kOneThird;

  auto quadrant = [v5](float* out, float qd, float da, float db) {
    const float v1 = qd * da;
    float v0 = qd - v1;        // q d (1-da)
    float w1 = v1 + qd;        // q d (1+da)
    const float hi = kOne + db;
    float v2 = v0 * hi;        // q d (1-da)(1+db)
    float v3 = w1 * hi;        // q d (1+da)(1+db)
    const float lo = kOne - db;
    v0 *= lo;                  // q d (1-da)(1-db)
    w1 *= lo;                  // q d (1+da)(1-db)
    out[0] += v0 + v5;
    out[1] += w1 - v5;
    out[2] += v2 - v5;
    out[3] += v3 + v5;
  };

  quadrant(a.jx, q * dispx, midy, midz);
  quadrant(a.jy, q * dispy, midz, midx);
  quadrant(a.jz, q * dispz, midx, midy);
}

}  // namespace

Pusher::Pusher(const grid::LocalGrid& grid, const ParticleBcSpec& bc,
               double reflux_uth, std::uint64_t reflux_seed)
    : grid_(&grid),
      bc_(bc),
      reflux_uth_(reflux_uth),
      reflux_seed_(reflux_seed),
      migrate_reflux_rng_(reflux_seed,
                          hash_combine(std::uint64_t(grid.rank()),
                                       kMigrateStream)) {
  for (int face = 0; face < 6; ++face) {
    const auto gface = static_cast<grid::Face>(face);
    const bool axis_open =
        grid.on_global_boundary(gface) &&
        grid.neighbor(gface) == grid::LocalGrid::kNoNeighbor;
    if (bc[std::size_t(face)] == ParticleBc::kPeriodic) {
      MV_REQUIRE(!axis_open, "periodic particle BC on face "
                                 << face
                                 << " requires a periodic field boundary");
    } else {
      // Reflect/absorb must sit on a closed global face (otherwise the
      // particle would simply cross to the neighbor rank first).
      MV_REQUIRE(grid.boundary(gface) != grid::BoundaryKind::kPeriodic,
                 "reflect/absorb particle BC on periodic face " << face);
    }
  }

  // Skin map for the two-pass advance: a cell is skin iff it touches a face
  // whose neighbor is a *remote* rank (kNoNeighbor faces are walls and
  // self-neighbors are single-rank periodic wraps — neither can emigrate).
  // Under the CFL limit (< 1 cell per axis per step) only skin-cell
  // particles can leave the rank, which is what lets the scheduler start
  // migration right after pass S.
  bool remote[6];
  for (int face = 0; face < 6; ++face) {
    const int nbr = grid.neighbor(static_cast<grid::Face>(face));
    remote[face] = nbr != grid::LocalGrid::kNoNeighbor && nbr != grid.rank();
    has_skin_ = has_skin_ || remote[face];
  }
  if (has_skin_) {
    skin_voxel_.assign(std::size_t(grid.num_voxels()), 0);
    for (int iz = 1; iz <= grid.nz(); ++iz) {
      for (int iy = 1; iy <= grid.ny(); ++iy) {
        for (int ix = 1; ix <= grid.nx(); ++ix) {
          const bool skin = (ix == 1 && remote[grid::kFaceXLo]) ||
                            (ix == grid.nx() && remote[grid::kFaceXHi]) ||
                            (iy == 1 && remote[grid::kFaceYLo]) ||
                            (iy == grid.ny() && remote[grid::kFaceYHi]) ||
                            (iz == 1 && remote[grid::kFaceZLo]) ||
                            (iz == grid.nz() && remote[grid::kFaceZHi]);
          if (skin) skin_voxel_[std::size_t(grid.voxel(ix, iy, iz))] = 1;
        }
      }
    }
  }
}

void Pusher::ensure_reflux_streams(int n) {
  while (int(reflux_streams_.size()) < n) {
    const auto p = std::uint64_t(reflux_streams_.size());
    reflux_streams_.emplace_back(
        reflux_seed_, hash_combine(std::uint64_t(grid_->rank()), p));
  }
}

Pusher::MoveStatus Pusher::move_p(Particle& p, Mover& m, float macro_charge,
                                  CellAccum* acc, Emigrant* out,
                                  Result* stats, Rng& reflux_rng) const {
  const auto& g = *grid_;
  for (;;) {
    const float midx = p.dx, midy = p.dy, midz = p.dz;
    const float dispx = m.dispx, dispy = m.dispy, dispz = m.dispz;
    const float dirx = dispx > 0 ? 1.0f : -1.0f;
    const float diry = dispy > 0 ? 1.0f : -1.0f;
    const float dirz = dispz > 0 ? 1.0f : -1.0f;

    // Twice the fraction of the remaining move at which each face would be
    // hit (offsets advance by 2*disp, faces sit at +-1).
    const float fx = dispx == 0 ? 3.4e38f : (dirx - midx) / dispx;
    const float fy = dispy == 0 ? 3.4e38f : (diry - midy) / dispy;
    const float fz = dispz == 0 ? 3.4e38f : (dirz - midz) / dispz;

    float frac2 = 2.0f;
    int axis = 3;  // 3 = no face hit: the move completes in this cell
    if (fx < frac2) { frac2 = fx; axis = 0; }
    if (fy < frac2) { frac2 = fy; axis = 1; }
    if (fz < frac2) { frac2 = fz; axis = 2; }
    const float frac = 0.5f * frac2;

    const float sx = dispx * frac, sy = dispy * frac, sz = dispz * frac;
    accumulate_segment(acc[p.i], macro_charge, sx, sy, sz, midx + sx,
                       midy + sy, midz + sz);
    m.dispx -= sx;
    m.dispy -= sy;
    m.dispz -= sz;
    p.dx += sx + sx;
    p.dy += sy + sy;
    p.dz += sz + sz;

    if (axis == 3) return MoveStatus::kDone;
    ++stats->crossings;

    // Put the particle exactly on the face it hit (avoid round-off drift).
    const float dir = axis == 0 ? dirx : axis == 1 ? diry : dirz;
    (&p.dx)[axis] = dir;

    // Which cell lies across the face?
    auto coords = g.voxel_coords(p.i);
    const int step = dir > 0 ? 1 : -1;
    const int target = coords[std::size_t(axis)] + step;
    const int n = axis == 0 ? g.nx() : axis == 1 ? g.ny() : g.nz();
    if (target >= 1 && target <= n) {
      coords[std::size_t(axis)] = target;
      p.i = g.voxel(coords[0], coords[1], coords[2]);
      (&p.dx)[axis] = -dir;
      continue;
    }

    const grid::Face face = grid::face_of(axis, step);
    const int neighbor = g.neighbor(face);
    if (neighbor == g.rank()) {
      // Single-rank periodic axis: wrap locally.
      coords[std::size_t(axis)] = dir > 0 ? 1 : n;
      p.i = g.voxel(coords[0], coords[1], coords[2]);
      (&p.dx)[axis] = -dir;
      continue;
    }
    if (neighbor != grid::LocalGrid::kNoNeighbor) {
      // Leaves this rank: freeze state for the migration exchange.
      MV_ASSERT(out != nullptr);
      out->p = p;
      out->rem = m;
      out->face = static_cast<std::int32_t>(face);
      return MoveStatus::kEmigrated;
    }

    // Global wall.
    switch (bc_[std::size_t(face)]) {
      case ParticleBc::kReflect:
        (&p.ux)[axis] = -(&p.ux)[axis];
        (&m.dispx)[axis] = -(&m.dispx)[axis];
        ++stats->reflected;
        continue;
      case ParticleBc::kAbsorb:
        ++stats->absorbed;
        return MoveStatus::kAbsorbed;
      case ParticleBc::kReflux: {
        MV_REQUIRE(reflux_uth_ > 0,
                   "reflux wall hit with no wall temperature set "
                   "(Pusher::set_reflux_uth)");
        // Re-emit from the wall reservoir: tangential components are
        // Maxwellian, the inward normal component is flux-weighted
        // (Rayleigh: the distribution of particles *crossing* a surface).
        const float u_norm = float(
            reflux_uth_ *
            std::sqrt(-2.0 * std::log(1.0 - reflux_rng.uniform() + 1e-12)));
        float u3[3] = {float(reflux_rng.normal(0.0, reflux_uth_)),
                       float(reflux_rng.normal(0.0, reflux_uth_)),
                       float(reflux_rng.normal(0.0, reflux_uth_))};
        u3[axis] = dir > 0 ? -u_norm : u_norm;  // back into the domain
        p.ux = u3[0];
        p.uy = u3[1];
        p.uz = u3[2];
        // Spend the rest of the step travelling at the new velocity: scale
        // the remaining move onto the new direction. The remaining path
        // fraction is approximated by the remaining displacement magnitude
        // relative to a full step at the old speed — cheap and adequate;
        // refluxed particles re-thermalize anyway.
        const float rg = 1.0f / std::sqrt(1.0f + u3[0] * u3[0] +
                                          u3[1] * u3[1] + u3[2] * u3[2]);
        const float frac = 0.5f;  // re-emitted mid-step on average
        m.dispx = frac * u3[0] * rg * float(grid_->dt() / grid_->dx());
        m.dispy = frac * u3[1] * rg * float(grid_->dt() / grid_->dy());
        m.dispz = frac * u3[2] * rg * float(grid_->dt() / grid_->dz());
        ++stats->refluxed;
        continue;
      }
      case ParticleBc::kPeriodic:
        break;  // validated impossible in the constructor
    }
    MV_ASSERT(false);
  }
}

Pusher::MoveStatus Pusher::continue_move(Particle& p, Mover& m,
                                         float macro_charge,
                                         CellAccum* acc_block, Emigrant* out,
                                         Result* stats) const {
  return move_p(p, m, macro_charge, acc_block, out, stats,
                migrate_reflux_rng_);
}

void Pusher::set_kernel(Kernel k) { kernel_ = resolve_kernel(k); }

void Pusher::advance_range(Species& sp, const InterpolatorArray& interp,
                           CellAccum* acc_block, std::size_t begin,
                           std::size_t end, Rng& reflux_rng, Result& res,
                           std::vector<std::size_t>& dead) const {
  if (kernel_ != Kernel::kScalar) {
    if (const SimdAdvanceFn fn = simd_advance_entry(kernel_)) {
      fn(*this, sp, interp, acc_block, begin, end, reflux_rng, res, dead);
      return;
    }
  }
  advance_range_scalar(sp, interp, acc_block, begin, end, reflux_rng, res,
                       dead);
}

void Pusher::advance_range_scalar(Species& sp, const InterpolatorArray& interp,
                                  CellAccum* acc_block, std::size_t begin,
                                  std::size_t end, Rng& reflux_rng,
                                  Result& res,
                                  std::vector<std::size_t>& dead) const {
  const auto& g = *grid_;
  const float qdt_2mc = float(sp.q() * g.dt() / (2.0 * sp.m()));
  const float cdt_dx = float(g.dt() / g.dx());
  const float cdt_dy = float(g.dt() / g.dy());
  const float cdt_dz = float(g.dt() / g.dz());
  const float qsp = float(sp.q());
  const Interpolator* f0 = interp.data();
  CellAccum* a0 = acc_block;

  Particle* parts = sp.data();

  for (std::size_t n = begin; n < end; ++n) {
    Particle& p = parts[n];
    float dx = p.dx, dy = p.dy, dz = p.dz;
    const Interpolator& f = f0[p.i];

    // Field gather from the cached interpolator.            [flops: 27]
    const float hax =
        qdt_2mc * ((f.ex + dy * f.dexdy) + dz * (f.dexdz + dy * f.d2exdydz));
    const float hay =
        qdt_2mc * ((f.ey + dz * f.deydz) + dx * (f.deydx + dz * f.d2eydzdx));
    const float haz =
        qdt_2mc * ((f.ez + dx * f.dezdx) + dy * (f.dezdy + dx * f.d2ezdxdy));
    const float cbx = f.cbx + dx * f.dcbxdx;
    const float cby = f.cby + dy * f.dcbydy;
    const float cbz = f.cbz + dz * f.dcbzdz;

    // Half E acceleration.                                   [flops: 6]
    float ux = p.ux + hax, uy = p.uy + hay, uz = p.uz + haz;

    // Boris rotation, with VPIC's Pade-style correction giving the exact
    // rotation angle to 7th order.                           [flops: ~46]
    float v0 = qdt_2mc / std::sqrt(kOne + (ux * ux + (uy * uy + uz * uz)));
    const float v1 = cbx * cbx + (cby * cby + cbz * cbz);
    const float v2 = (v0 * v0) * v1;
    const float v3 = v0 * (kOne + v2 * (kOneThird + v2 * kTwoFifteenths));
    float v4 = v3 / (kOne + v1 * (v3 * v3));
    v4 += v4;
    v0 = ux + v3 * (uy * cbz - uz * cby);
    const float w1 = uy + v3 * (uz * cbx - ux * cbz);
    const float w2 = uz + v3 * (ux * cby - uy * cbx);
    ux += v4 * (w1 * cbz - w2 * cby);
    uy += v4 * (w2 * cbx - v0 * cbz);
    uz += v4 * (v0 * cby - w1 * cbx);

    // Second half E acceleration.                            [flops: 6]
    ux += hax;
    uy += hay;
    uz += haz;
    p.ux = ux;
    p.uy = uy;
    p.uz = uz;

    // Displacement in cell units.                            [flops: ~15]
    v0 = kOne / std::sqrt(kOne + (ux * ux + (uy * uy + uz * uz)));
    const float dispx = ux * v0 * cdt_dx;
    const float dispy = uy * v0 * cdt_dy;
    const float dispz = uz * v0 * cdt_dz;

    // Offsets advance by twice the cell-unit displacement.   [flops: 12]
    const float mx = dx + dispx, my = dy + dispy, mz = dz + dispz;  // midpoint
    const float nx = mx + dispx, ny = my + dispy, nz = mz + dispz;  // endpoint

    const float q = qsp * p.w;
    ++res.pushed;
    if (nx <= kOne && ny <= kOne && nz <= kOne && -nx <= kOne && -ny <= kOne &&
        -nz <= kOne) {
      // Common in-cell case.                                 [flops: ~70]
      p.dx = nx;
      p.dy = ny;
      p.dz = nz;
      accumulate_segment(a0[p.i], q, dispx, dispy, dispz, mx, my, mz);
      continue;
    }

    // Cell-crossing case: split the move against cell faces.
    Mover m{dispx, dispy, dispz};
    Emigrant out;
    switch (move_p(p, m, q, a0, &out, &res, reflux_rng)) {
      case MoveStatus::kDone:
        break;
      case MoveStatus::kEmigrated:
        res.emigrants.push_back(out);
        dead.push_back(n);
        break;
      case MoveStatus::kAbsorbed:
        dead.push_back(n);
        break;
    }
  }
}

void Pusher::advance_runs(Species& sp, const InterpolatorArray& interp,
                          CellAccum* acc_block, std::size_t begin,
                          std::size_t end, std::uint8_t want, Rng& reflux_rng,
                          Result& res, std::vector<std::size_t>& dead) const {
  std::size_t n = begin;
  while (n < end) {
    if (cls_[n] != want) {
      ++n;
      continue;
    }
    std::size_t m = n + 1;
    while (m < end && cls_[m] == want) ++m;
    advance_range(sp, interp, acc_block, n, m, reflux_rng, res, dead);
    n = m;
  }
}

Pusher::Pass Pusher::advance_pass(Species& sp, const InterpolatorArray& interp,
                                  AccumulatorArray& acc, Pipeline* pipeline,
                                  PassKind kind) {
  const int n_pipe = pipeline == nullptr ? 1 : pipeline->size();
  MV_REQUIRE(acc.blocks() >= n_pipe,
             "accumulator has " << acc.blocks() << " blocks but the advance "
                                << "runs on " << n_pipe << " pipelines");
  ensure_reflux_streams(n_pipe);

  // With an empty skin the two passes degenerate: S advances nothing (and
  // draws nothing), I advances full slices — bit-identical to kAll.
  if (!has_skin_ && kind == PassKind::kSkin) {
    Pass pass;
    pass.res.pipeline_seconds.assign(std::size_t(n_pipe), 0.0);
    return pass;
  }
  const bool full = kind == PassKind::kAll ||
                    (!has_skin_ && kind == PassKind::kInterior);

  if (kind == PassKind::kSkin) cls_.resize(sp.size());

  // Per-pipeline private state; spliced in pipeline order after the
  // barrier so all outputs keep serial particle order.
  struct Lane {
    Result res;
    std::vector<std::size_t> dead;
    double seconds = 0;  ///< busy wall time of this pipeline's slice
  };
  std::vector<Lane> lanes(static_cast<std::size_t>(n_pipe));

  auto run = [&](int p) {
    const Timer lane_timer;
    const auto r = Pipeline::partition(sp.size(), n_pipe, p);
    Lane& lane = lanes[std::size_t(p)];
    Rng& rng = reflux_streams_[std::size_t(p)];
    if (full) {
      advance_range(sp, interp, acc.block(p), r.begin, r.end, rng, lane.res,
                    lane.dead);
    } else if (kind == PassKind::kSkin) {
      // Classify before anything moves: pass I must push exactly the
      // complement of what this pass pushes, and a skin particle may land
      // in an interior cell.
      const Particle* parts = sp.data();
      for (std::size_t n = r.begin; n < r.end; ++n)
        cls_[n] = skin_voxel_[std::size_t(parts[n].i)];
      advance_runs(sp, interp, acc.block(p), r.begin, r.end, 1, rng, lane.res,
                   lane.dead);
    } else {
      advance_runs(sp, interp, acc.block(p), r.begin, r.end, 0, rng, lane.res,
                   lane.dead);
    }
    lane.seconds = lane_timer.seconds();
  };
  if (pipeline == nullptr) {
    run(0);
  } else {
    pipeline->dispatch(run);
  }

  Pass pass;
  pass.res = std::move(lanes[0].res);
  pass.dead = std::move(lanes[0].dead);
  pass.res.pipeline_seconds.reserve(std::size_t(n_pipe));
  for (const Lane& lane : lanes)
    pass.res.pipeline_seconds.push_back(lane.seconds);
  for (int p = 1; p < n_pipe; ++p) {
    Lane& lane = lanes[std::size_t(p)];
    pass.res.pushed += lane.res.pushed;
    pass.res.crossings += lane.res.crossings;
    pass.res.absorbed += lane.res.absorbed;
    pass.res.reflected += lane.res.reflected;
    pass.res.refluxed += lane.res.refluxed;
    pass.res.emigrants.insert(pass.res.emigrants.end(),
                              lane.res.emigrants.begin(),
                              lane.res.emigrants.end());
    pass.dead.insert(pass.dead.end(), lane.dead.begin(), lane.dead.end());
  }
  return pass;
}

Pusher::Pass Pusher::advance_skin(Species& sp, const InterpolatorArray& interp,
                                  AccumulatorArray& acc, Pipeline* pipeline) {
  return advance_pass(sp, interp, acc, pipeline, PassKind::kSkin);
}

Pusher::Pass Pusher::advance_interior(Species& sp,
                                      const InterpolatorArray& interp,
                                      AccumulatorArray& acc,
                                      Pipeline* pipeline) {
  return advance_pass(sp, interp, acc, pipeline, PassKind::kInterior);
}

Pusher::Result Pusher::advance(Species& sp, const InterpolatorArray& interp,
                               AccumulatorArray& acc, Pipeline* pipeline) {
  Pass pass = advance_pass(sp, interp, acc, pipeline, PassKind::kAll);

  // Compact out emigrated/absorbed particles. `dead` is ascending (each
  // slice is ascending and slices are concatenated in partition order);
  // descending removal keeps the swap-with-last from invalidating pending
  // indices.
  for (auto it = pass.dead.rbegin(); it != pass.dead.rend(); ++it)
    sp.remove(*it);
  return std::move(pass.res);
}

namespace {

/// Shared half-step momentum adjustment used by (un)center_p. `sign` +1
/// advances u by half a step (quarter kick + half rotation), -1 exactly
/// undoes that.
void half_adjust(Species& sp, const InterpolatorArray& interp,
                 const grid::LocalGrid& g, float sign) {
  const float qdt_2mc = float(sp.q() * g.dt() / (2.0 * sp.m()));
  const float qdt_4mc = 0.5f * qdt_2mc;  // half of the half-step kick
  for (Particle& p : sp.particles()) {
    const auto fld = interp.evaluate(p.i, p.dx, p.dy, p.dz);
    const float hax = qdt_4mc * fld.ex;
    const float hay = qdt_4mc * fld.ey;
    const float haz = qdt_4mc * fld.ez;
    float ux = p.ux, uy = p.uy, uz = p.uz;
    if (sign > 0) {  // quarter kick then half rotation
      ux += hax;
      uy += hay;
      uz += haz;
    }
    float v0 =
        qdt_4mc / std::sqrt(kOne + (ux * ux + (uy * uy + uz * uz)));
    const float v1 =
        fld.cbx * fld.cbx + (fld.cby * fld.cby + fld.cbz * fld.cbz);
    const float v2 = (v0 * v0) * v1;
    const float v3 =
        sign * v0 * (kOne + v2 * (kOneThird + v2 * kTwoFifteenths));
    float v4 = v3 / (kOne + v1 * (v3 * v3));
    v4 += v4;
    v0 = ux + v3 * (uy * fld.cbz - uz * fld.cby);
    const float w1 = uy + v3 * (uz * fld.cbx - ux * fld.cbz);
    const float w2 = uz + v3 * (ux * fld.cby - uy * fld.cbx);
    ux += v4 * (w1 * fld.cbz - w2 * fld.cby);
    uy += v4 * (w2 * fld.cbx - v0 * fld.cbz);
    uz += v4 * (v0 * fld.cby - w1 * fld.cbx);
    if (sign < 0) {  // half rotation (reversed) then remove the kick
      ux -= hax;
      uy -= hay;
      uz -= haz;
    }
    p.ux = ux;
    p.uy = uy;
    p.uz = uz;
  }
}

}  // namespace

void uncenter_p(Species& sp, const InterpolatorArray& interp,
                const grid::LocalGrid& grid) {
  half_adjust(sp, interp, grid, -1.0f);
}

void center_p(Species& sp, const InterpolatorArray& interp,
              const grid::LocalGrid& grid) {
  half_adjust(sp, interp, grid, +1.0f);
}

}  // namespace minivpic::particles
