// Particle loading: reproducible Maxwellian plasmas with optional drift and
// density profiles.
//
// Loading is keyed by *global* cell id, so a deck loads bit-identically
// regardless of the rank decomposition — the property that makes multi-rank
// versus single-rank regression tests meaningful. Two species loaded with
// the same seed get identical positions (momenta differ), which makes the
// initial plasma exactly charge-neutral node-by-node.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "grid/geometry.hpp"
#include "particles/species.hpp"

namespace minivpic::particles {

struct LoadConfig {
  int ppc = 8;              ///< macroparticles per cell
  double density = 1.0;     ///< number density in code units (1 = n0)
  double uth = 0.0;         ///< isotropic thermal momentum spread per axis
  /// Anisotropic spread: if any component is nonzero, uth3 is used verbatim
  /// (per axis) instead of the isotropic uth.
  std::array<double, 3> uth3{0, 0, 0};
  std::array<double, 3> drift{0, 0, 0};  ///< drift momentum added to u
  std::uint64_t seed = 12345;
  /// Optional density profile multiplier evaluated at the particle position
  /// (code-unit coordinates); the result scales the particle weight.
  std::function<double(double x, double y, double z)> profile;
  /// Optional position-dependent drift added to u (e.g. a sinusoidal
  /// velocity perturbation for wave decks).
  std::function<std::array<double, 3>(double x, double y, double z)>
      drift_profile;
};

/// Loads `cfg.ppc` particles into every interior cell of this rank's slab.
/// Returns the number loaded locally.
std::size_t load_uniform(Species& sp, const grid::LocalGrid& grid,
                         const LoadConfig& cfg);

}  // namespace minivpic::particles
