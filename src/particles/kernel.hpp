// Particle-advance kernel registry.
//
// The advance has one scalar reference kernel and a family of SIMD kernels
// (see push_simd.hpp and docs/KERNELS.md). Which one runs is a runtime
// choice: decks say `[control] kernel = auto`, the CLI says `--kernel=...`,
// and `auto` resolves to the widest kernel this build compiled *and* this
// CPU can execute. The enum below is the registry key; names are the
// user-facing spellings accepted everywhere a kernel can be named.
//
// Naming note: `sse` is the 4-wide kernel. On x86-64 it maps to SSE2 (part
// of the baseline, so it is always available); on AArch64 the same 4-wide
// kernel is backed by NEON, and on anything else by the portable scalar
// fallback of util/simd.hpp — the name stays `sse` so decks and scripts are
// portable across hosts.
#pragma once

#include <string>
#include <vector>

namespace minivpic::particles {

enum class Kernel {
  kScalar,  ///< the reference loop in push.cpp
  kSse,     ///< 4-wide (SSE2 on x86, NEON on AArch64, portable elsewhere)
  kAvx2,    ///< 8-wide AVX2
  kAvx512,  ///< 16-wide AVX-512F
  kAuto,    ///< resolve at runtime to the widest available kernel
};

/// Parses a user-facing kernel name ("scalar", "sse", "avx2", "avx512",
/// "auto"); throws util::Error on anything else.
Kernel parse_kernel(const std::string& name);

/// The user-facing name ("scalar", ..., "auto").
const char* kernel_name(Kernel k);

/// SIMD lane width of a resolved kernel (scalar 1, sse 4, avx2 8,
/// avx512 16). Requires k != kAuto — resolve first.
int kernel_lane_width(Kernel k);

/// True when this build compiled the kernel and the host CPU can run it.
/// kScalar and kAuto are always available; kSse always has at least the
/// portable fallback.
bool kernel_available(Kernel k);

/// kAuto -> the widest available kernel (kScalar if no SIMD kernel is
/// usable). An explicitly requested kernel is validated: throws util::Error
/// when this build/host cannot run it. Never returns kAuto.
Kernel resolve_kernel(Kernel k);

/// Every kernel available on this build/host, scalar first, then by
/// ascending lane width. What benches sweep.
std::vector<Kernel> available_kernels();

}  // namespace minivpic::particles
