#include "particles/accumulator.hpp"

namespace minivpic::particles {

void AccumulatorArray::unload(grid::FieldArray& f) const {
  const auto& g = f.grid();
  // Quadrant charge -> current density: each accumulator entry is 4x the
  // charge through a quadrant of the edge's dual face; divide by 4, the
  // dual-face area and dt.
  const float cx = float(0.25 / (g.dy() * g.dz() * g.dt()));
  const float cy = float(0.25 / (g.dz() * g.dx() * g.dt()));
  const float cz = float(0.25 / (g.dx() * g.dy() * g.dt()));
  for (int k = 1; k <= g.nz(); ++k) {
    for (int j = 1; j <= g.ny(); ++j) {
      for (int i = 1; i <= g.nx(); ++i) {
        const CellAccum& a = data_[std::size_t(f.idx(i, j, k))];
        f.jfx(i, j, k) += cx * a.jx[0];
        f.jfx(i, j + 1, k) += cx * a.jx[1];
        f.jfx(i, j, k + 1) += cx * a.jx[2];
        f.jfx(i, j + 1, k + 1) += cx * a.jx[3];
        f.jfy(i, j, k) += cy * a.jy[0];
        f.jfy(i, j, k + 1) += cy * a.jy[1];
        f.jfy(i + 1, j, k) += cy * a.jy[2];
        f.jfy(i + 1, j, k + 1) += cy * a.jy[3];
        f.jfz(i, j, k) += cz * a.jz[0];
        f.jfz(i + 1, j, k) += cz * a.jz[1];
        f.jfz(i, j + 1, k) += cz * a.jz[2];
        f.jfz(i + 1, j + 1, k) += cz * a.jz[3];
      }
    }
  }
}

}  // namespace minivpic::particles
