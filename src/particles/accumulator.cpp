#include "particles/accumulator.hpp"

#include "util/error.hpp"

namespace minivpic::particles {

AccumulatorArray::AccumulatorArray(const grid::LocalGrid& grid, int blocks)
    : voxels_(std::size_t(grid.num_voxels())),
      blocks_(blocks),
      data_(voxels_ * std::size_t(blocks)) {
  MV_REQUIRE(blocks >= 1, "accumulator needs >= 1 block, got " << blocks);
}

void AccumulatorArray::reduce() {
  // Flat float streams: 16 floats per CellAccum, contiguous and aligned, so
  // the compiler can vectorize the += loop. Ascending block order keeps the
  // per-cell addition sequence identical to the serial deposit order.
  const std::size_t floats = voxels_ * (sizeof(CellAccum) / sizeof(float));
  float* dst = reinterpret_cast<float*>(data_.data());
  for (int b = 1; b < blocks_; ++b) {
    const float* src = reinterpret_cast<const float*>(block(b));
    for (std::size_t i = 0; i < floats; ++i) dst[i] += src[i];
  }
}

void AccumulatorArray::unload(grid::FieldArray& f) const {
  const auto& g = f.grid();
  // Quadrant charge -> current density: each accumulator entry is 4x the
  // charge through a quadrant of the edge's dual face; divide by 4, the
  // dual-face area and dt.
  const float cx = float(0.25 / (g.dy() * g.dz() * g.dt()));
  const float cy = float(0.25 / (g.dz() * g.dx() * g.dt()));
  const float cz = float(0.25 / (g.dx() * g.dy() * g.dt()));
  for (int k = 1; k <= g.nz(); ++k) {
    for (int j = 1; j <= g.ny(); ++j) {
      for (int i = 1; i <= g.nx(); ++i) {
        const CellAccum& a = data_[std::size_t(f.idx(i, j, k))];
        f.jfx(i, j, k) += cx * a.jx[0];
        f.jfx(i, j + 1, k) += cx * a.jx[1];
        f.jfx(i, j, k + 1) += cx * a.jx[2];
        f.jfx(i, j + 1, k + 1) += cx * a.jx[3];
        f.jfy(i, j, k) += cy * a.jy[0];
        f.jfy(i, j, k + 1) += cy * a.jy[1];
        f.jfy(i + 1, j, k) += cy * a.jy[2];
        f.jfy(i + 1, j, k + 1) += cy * a.jy[3];
        f.jfz(i, j, k) += cz * a.jz[0];
        f.jfz(i + 1, j, k) += cz * a.jz[1];
        f.jfz(i, j + 1, k) += cz * a.jz[2];
        f.jfz(i + 1, j + 1, k) += cz * a.jz[3];
      }
    }
  }
}

}  // namespace minivpic::particles
