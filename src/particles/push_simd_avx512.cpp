// AVX-512F translation unit: compiled with -mavx512f when the compiler
// supports it (particles/CMakeLists.txt), baseline flags otherwise; the TU
// self-gates on __AVX512F__ exactly like the AVX2 one. Only AVX-512F
// intrinsics are used (gather/scatter/mask-blend), so plain -mavx512f is
// sufficient — no VL/DQ/BW subsets.
#include "particles/push_simd.hpp"

#if defined(__AVX512F__)
#include "particles/push_simd_impl.hpp"
#endif

namespace minivpic::particles::detail {

SimdAdvanceFn advance_entry_avx512() {
#if defined(__AVX512F__)
  return &advance_range_simd<16>;
#else
  return nullptr;
#endif
}

}  // namespace minivpic::particles::detail
