#include "particles/collisions.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace minivpic::particles {

namespace {

/// Scatters the pair (a, b) through a Takizuka–Abe random angle. `dt_eff`
/// is the effective collision interval; `n_field` the density of the field
/// population in code units. Returns how many particles changed.
int scatter_pair(Particle& a, double ma, Particle& b, double mb,
                 double nu_scale, double n_field, double dt_eff, Rng& rng) {
  // Relative velocity (non-relativistic: u ~ v for the thermal bulk).
  const double ux = double(a.ux) - b.ux;
  const double uy = double(a.uy) - b.uy;
  const double uz = double(a.uz) - b.uz;
  const double u2 = ux * ux + uy * uy + uz * uz;
  if (u2 == 0.0) return 0;
  const double u = std::sqrt(u2);
  const double uperp = std::sqrt(ux * ux + uy * uy);

  // tan(theta/2) ~ Normal(0, sigma); theta from the TA half-angle form.
  const double sigma2 = nu_scale * n_field * dt_eff / (u2 * u);
  const double delta = rng.normal(0.0, std::sqrt(sigma2));
  const double denom = 1.0 + delta * delta;
  const double sin_t = 2.0 * delta / denom;
  const double one_minus_cos = 2.0 * delta * delta / denom;
  const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double sp = std::sin(phi), cp = std::cos(phi);

  // Change of the relative velocity (Takizuka & Abe eq. (4)).
  double dx, dy, dz;
  if (uperp > 1e-12 * u) {
    dx = (ux / uperp) * uz * sin_t * cp - (uy / uperp) * u * sin_t * sp -
         ux * one_minus_cos;
    dy = (uy / uperp) * uz * sin_t * cp + (ux / uperp) * u * sin_t * sp -
         uy * one_minus_cos;
    dz = -uperp * sin_t * cp - uz * one_minus_cos;
  } else {
    // u along z: the perpendicular frame is degenerate.
    dx = u * sin_t * cp;
    dy = u * sin_t * sp;
    dz = -uz * one_minus_cos;
  }

  // Momentum-conserving split by reduced mass; Nanbu rejection keeps
  // unequal-weight pairs statistically correct.
  const double mr = ma * mb / (ma + mb);
  const double wmax = std::max(double(a.w), double(b.w));
  int changed = 0;
  if (rng.uniform() * wmax <= double(b.w)) {
    a.ux = float(a.ux + (mr / ma) * dx);
    a.uy = float(a.uy + (mr / ma) * dy);
    a.uz = float(a.uz + (mr / ma) * dz);
    ++changed;
  }
  if (rng.uniform() * wmax <= double(a.w)) {
    b.ux = float(b.ux - (mr / mb) * dx);
    b.uy = float(b.uy - (mr / mb) * dy);
    b.uz = float(b.uz - (mr / mb) * dz);
    ++changed;
  }
  return changed;
}

/// Finds [begin, end) index ranges per voxel in a sorted species.
struct CellRange {
  std::int32_t voxel;
  std::size_t begin, end;
};

std::vector<CellRange> cell_ranges(const Species& sp) {
  std::vector<CellRange> out;
  const auto parts = sp.particles();
  std::size_t i = 0;
  while (i < parts.size()) {
    std::size_t j = i + 1;
    while (j < parts.size() && parts[j].i == parts[i].i) {
      MV_ASSERT_MSG(parts[j].i >= parts[i].i,
                    "species must be sorted before collisions");
      ++j;
    }
    out.push_back({parts[i].i, i, j});
    i = j;
  }
  return out;
}

double cell_density(const Species& sp, const CellRange& r, double inv_dv) {
  double w = 0;
  for (std::size_t n = r.begin; n < r.end; ++n) w += sp[n].w;
  return w * inv_dv;
}

}  // namespace

CollisionStats collide_intraspecies(Species& sp, const grid::LocalGrid& grid,
                                    double nu_scale, double dt,
                                    std::uint64_t seed, std::int64_t step) {
  MV_REQUIRE(nu_scale >= 0 && dt > 0, "bad collision parameters");
  CollisionStats stats;
  if (nu_scale == 0 || sp.size() < 2) return stats;

  const double inv_dv = 1.0 / grid.cell_volume();
  const auto ranges = cell_ranges(sp);
  std::vector<std::size_t> idx;
  for (const auto& r : ranges) {
    const std::size_t n = r.end - r.begin;
    if (n < 2) continue;
    Rng rng(seed, hash_combine(std::uint64_t(r.voxel),
                               std::uint64_t(step) * 2 + 0));
    idx.resize(n);
    for (std::size_t k = 0; k < n; ++k) idx[k] = r.begin + k;
    for (std::size_t k = n; k > 1; --k)
      std::swap(idx[k - 1], idx[std::size_t(rng.uniform_u64(k))]);

    const double density = cell_density(sp, r, inv_dv);
    std::size_t first = 0;
    if (n % 2 == 1) {
      // Odd count: TA triple, each pair for dt/2.
      Particle& p0 = sp[idx[0]];
      Particle& p1 = sp[idx[1]];
      Particle& p2 = sp[idx[2]];
      stats.scattered += scatter_pair(p0, sp.m(), p1, sp.m(), nu_scale,
                                      density, 0.5 * dt, rng);
      stats.scattered += scatter_pair(p1, sp.m(), p2, sp.m(), nu_scale,
                                      density, 0.5 * dt, rng);
      stats.scattered += scatter_pair(p2, sp.m(), p0, sp.m(), nu_scale,
                                      density, 0.5 * dt, rng);
      stats.pairs += 3;
      first = 3;
    }
    for (std::size_t k = first; k + 1 < n; k += 2) {
      stats.scattered += scatter_pair(sp[idx[k]], sp.m(), sp[idx[k + 1]],
                                      sp.m(), nu_scale, density, dt, rng);
      ++stats.pairs;
    }
  }
  return stats;
}

CollisionStats collide_interspecies(Species& a, Species& b,
                                    const grid::LocalGrid& grid,
                                    double nu_scale, double dt,
                                    std::uint64_t seed, std::int64_t step) {
  MV_REQUIRE(nu_scale >= 0 && dt > 0, "bad collision parameters");
  MV_REQUIRE(&a != &b, "use collide_intraspecies for self-collisions");
  CollisionStats stats;
  if (nu_scale == 0 || a.empty() || b.empty()) return stats;

  const double inv_dv = 1.0 / grid.cell_volume();
  const auto ra = cell_ranges(a);
  const auto rb = cell_ranges(b);
  // Walk the two sorted range lists in lockstep.
  std::size_t ib = 0;
  for (const auto& range_a : ra) {
    while (ib < rb.size() && rb[ib].voxel < range_a.voxel) ++ib;
    if (ib == rb.size()) break;
    if (rb[ib].voxel != range_a.voxel) continue;
    const auto& range_b = rb[ib];
    Rng rng(seed, hash_combine(std::uint64_t(range_a.voxel),
                               std::uint64_t(step) * 2 + 1));
    const double density_b = cell_density(b, range_b, inv_dv);
    const std::size_t nb = range_b.end - range_b.begin;
    for (std::size_t k = range_a.begin; k < range_a.end; ++k) {
      const std::size_t partner =
          range_b.begin + std::size_t(rng.uniform_u64(nb));
      stats.scattered += scatter_pair(a[k], a.m(), b[partner], b.m(),
                                      nu_scale, density_b, dt, rng);
      ++stats.pairs;
    }
  }
  return stats;
}

}  // namespace minivpic::particles
