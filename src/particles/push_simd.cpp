// Baseline-ISA translation unit: the 4-wide kernel (SSE2 on x86-64, where
// it is part of the baseline; NEON on AArch64; the portable pack fallback
// elsewhere) plus the kernel registry and runtime dispatch.
#include "particles/push_simd.hpp"

#include "particles/push_simd_impl.hpp"
#include "util/error.hpp"

namespace minivpic::particles {

namespace detail {

SimdAdvanceFn advance_entry_w4() { return &advance_range_simd<4>; }

}  // namespace detail

namespace {

/// Runtime CPU support for a kernel's ISA (independent of what this build
/// compiled — kernel_available() intersects the two).
bool cpu_supports(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
    case Kernel::kAuto:
      return true;
    case Kernel::kSse:
      // 4-wide needs nothing beyond the baseline on any supported host
      // (SSE2 is x86-64 baseline; the NEON/portable backends always run).
      return true;
    case Kernel::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Kernel::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

Kernel parse_kernel(const std::string& name) {
  if (name == "scalar") return Kernel::kScalar;
  if (name == "sse") return Kernel::kSse;
  if (name == "avx2") return Kernel::kAvx2;
  if (name == "avx512") return Kernel::kAvx512;
  if (name == "auto") return Kernel::kAuto;
  MV_REQUIRE(false, "unknown kernel '"
                        << name << "' (scalar | sse | avx2 | avx512 | auto)");
  return Kernel::kScalar;  // unreachable
}

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kScalar: return "scalar";
    case Kernel::kSse: return "sse";
    case Kernel::kAvx2: return "avx2";
    case Kernel::kAvx512: return "avx512";
    case Kernel::kAuto: return "auto";
  }
  return "?";
}

int kernel_lane_width(Kernel k) {
  switch (k) {
    case Kernel::kScalar: return 1;
    case Kernel::kSse: return 4;
    case Kernel::kAvx2: return 8;
    case Kernel::kAvx512: return 16;
    case Kernel::kAuto: break;
  }
  MV_REQUIRE(false, "kernel_lane_width needs a resolved kernel, not 'auto'");
  return 1;  // unreachable
}

bool kernel_available(Kernel k) {
  if (k == Kernel::kScalar || k == Kernel::kAuto) return true;
  return simd_advance_entry(k) != nullptr && cpu_supports(k);
}

Kernel resolve_kernel(Kernel k) {
  if (k == Kernel::kAuto) {
    for (Kernel c : {Kernel::kAvx512, Kernel::kAvx2, Kernel::kSse})
      if (kernel_available(c)) return c;
    return Kernel::kScalar;
  }
  MV_REQUIRE(kernel_available(k),
             "kernel '" << kernel_name(k)
                        << "' is not available on this build/host");
  return k;
}

std::vector<Kernel> available_kernels() {
  std::vector<Kernel> out{Kernel::kScalar};
  for (Kernel c : {Kernel::kSse, Kernel::kAvx2, Kernel::kAvx512})
    if (kernel_available(c)) out.push_back(c);
  return out;
}

SimdAdvanceFn simd_advance_entry(Kernel k) {
  switch (k) {
    case Kernel::kSse: return detail::advance_entry_w4();
    case Kernel::kAvx2: return detail::advance_entry_avx2();
    case Kernel::kAvx512: return detail::advance_entry_avx512();
    case Kernel::kScalar:
    case Kernel::kAuto:
      break;
  }
  return nullptr;
}

}  // namespace minivpic::particles
