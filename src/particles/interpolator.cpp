#include "particles/interpolator.hpp"

namespace minivpic::particles {

void InterpolatorArray::load(const grid::FieldArray& f) {
  const auto& g = f.grid();
  constexpr float fourth = 0.25f;
  constexpr float half = 0.5f;
  for (int k = 1; k <= g.nz(); ++k) {
    for (int j = 1; j <= g.ny(); ++j) {
      for (int i = 1; i <= g.nx(); ++i) {
        Interpolator& ip = data_[std::size_t(f.idx(i, j, k))];

        // Ex on the four x-edges of the cell (varying in y, z).
        {
          const float w0 = f.ex(i, j, k);
          const float w1 = f.ex(i, j + 1, k);
          const float w2 = f.ex(i, j, k + 1);
          const float w3 = f.ex(i, j + 1, k + 1);
          ip.ex = fourth * (w3 + w0 + w1 + w2);
          ip.dexdy = fourth * ((w3 + w1) - (w0 + w2));
          ip.dexdz = fourth * ((w3 + w2) - (w0 + w1));
          ip.d2exdydz = fourth * ((w3 + w0) - (w1 + w2));
        }
        // Ey on the four y-edges (varying in z, x).
        {
          const float w0 = f.ey(i, j, k);
          const float w1 = f.ey(i, j, k + 1);
          const float w2 = f.ey(i + 1, j, k);
          const float w3 = f.ey(i + 1, j, k + 1);
          ip.ey = fourth * (w3 + w0 + w1 + w2);
          ip.deydz = fourth * ((w3 + w1) - (w0 + w2));
          ip.deydx = fourth * ((w3 + w2) - (w0 + w1));
          ip.d2eydzdx = fourth * ((w3 + w0) - (w1 + w2));
        }
        // Ez on the four z-edges (varying in x, y).
        {
          const float w0 = f.ez(i, j, k);
          const float w1 = f.ez(i + 1, j, k);
          const float w2 = f.ez(i, j + 1, k);
          const float w3 = f.ez(i + 1, j + 1, k);
          ip.ez = fourth * (w3 + w0 + w1 + w2);
          ip.dezdx = fourth * ((w3 + w1) - (w0 + w2));
          ip.dezdy = fourth * ((w3 + w2) - (w0 + w1));
          ip.d2ezdxdy = fourth * ((w3 + w0) - (w1 + w2));
        }
        // cB on opposing face pairs (linear along the face normal).
        ip.cbx = half * (f.cbx(i + 1, j, k) + f.cbx(i, j, k));
        ip.dcbxdx = half * (f.cbx(i + 1, j, k) - f.cbx(i, j, k));
        ip.cby = half * (f.cby(i, j + 1, k) + f.cby(i, j, k));
        ip.dcbydy = half * (f.cby(i, j + 1, k) - f.cby(i, j, k));
        ip.cbz = half * (f.cbz(i, j, k + 1) + f.cbz(i, j, k));
        ip.dcbzdz = half * (f.cbz(i, j, k + 1) - f.cbz(i, j, k));
      }
    }
  }
}

InterpolatorArray::Fields InterpolatorArray::evaluate(std::int32_t voxel,
                                                      float dx, float dy,
                                                      float dz) const {
  const Interpolator& ip = data_[std::size_t(voxel)];
  Fields out;
  out.ex = (ip.ex + dy * ip.dexdy) + dz * (ip.dexdz + dy * ip.d2exdydz);
  out.ey = (ip.ey + dz * ip.deydz) + dx * (ip.deydx + dz * ip.d2eydzdx);
  out.ez = (ip.ez + dx * ip.dezdx) + dy * (ip.dezdy + dx * ip.d2ezdxdy);
  out.cbx = ip.cbx + dx * ip.dcbxdx;
  out.cby = ip.cby + dy * ip.dcbydy;
  out.cbz = ip.cbz + dz * ip.dcbzdz;
  return out;
}

}  // namespace minivpic::particles
