// Inter-rank particle migration (VPIC's boundary_p): particles that leave a
// rank mid-move are shipped to the neighbor across the face they crossed,
// which finishes their move (depositing the remaining current locally).
// Corner trajectories can hop ranks more than once per step, so exchange
// rounds repeat until no rank holds emigrants.
//
// Two entry points share the implementation. exchange_particles is the
// overlap-scheduler core (docs/OVERLAP.md): it uses posted receives
// (vmpi::Comm::ipost) so payloads complete at delivery time, deposits into a
// caller-chosen accumulator block, and buffers settled immigrants instead of
// appending to the species — the three properties that make it safe to run
// on a comm worker thread concurrently with the interior push. The classic
// migrate_particles wrapper keeps the historical synchronous signature
// (append to sp, deposit into block 0) for callers outside the step loop.
#pragma once

#include <cstdint>
#include <vector>

#include "particles/push.hpp"
#include "vmpi/comm.hpp"

namespace minivpic::particles {

struct MigrateStats {
  std::int64_t sent = 0;      ///< emigrants shipped off this rank
  std::int64_t received = 0;  ///< immigrants that settled on this rank
  std::int64_t absorbed = 0;  ///< absorbed at walls while completing moves
  int rounds = 0;
};

/// Ships `emigrants` to their destination ranks, receives immigrants, and
/// completes their moves on this rank: survivors are appended to
/// *immigrants (NOT to the species — the caller appends after its deferred
/// removals), currents go into `acc_block`. Collective: every rank must
/// call it each round-trip, even with no emigrants; single-rank grids
/// accept an empty list without a communicator. Touches only `comm`,
/// `acc_block`, `*immigrants`, and the pusher's migration RNG stream, and
/// reads `sp` — the overlap scheduler's contract for running this on a
/// worker thread while the interior pass advances particles.
MigrateStats exchange_particles(std::vector<Emigrant> emigrants,
                                const Species& sp, const Pusher& pusher,
                                CellAccum* acc_block,
                                const grid::LocalGrid& grid, vmpi::Comm* comm,
                                std::vector<Particle>* immigrants);

/// Classic synchronous wrapper: exchanges, then appends settled immigrants
/// to `sp` immediately, depositing into accumulator block 0.
MigrateStats migrate_particles(std::vector<Emigrant> emigrants, Species& sp,
                               const Pusher& pusher, AccumulatorArray& acc,
                               const grid::LocalGrid& grid, vmpi::Comm* comm);

}  // namespace minivpic::particles
