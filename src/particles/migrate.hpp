// Inter-rank particle migration (VPIC's boundary_p): particles that leave a
// rank mid-move are shipped to the neighbor across the face they crossed,
// which finishes their move (depositing the remaining current locally).
// Corner trajectories can hop ranks more than once per step, so exchange
// rounds repeat until no rank holds emigrants.
#pragma once

#include <cstdint>
#include <vector>

#include "particles/push.hpp"
#include "vmpi/comm.hpp"

namespace minivpic::particles {

struct MigrateStats {
  std::int64_t sent = 0;
  std::int64_t received = 0;
  std::int64_t absorbed = 0;  ///< absorbed at walls while completing moves
  int rounds = 0;
};

/// Ships `emigrants` (from Pusher::advance) to their destination ranks,
/// receives immigrants, and completes their moves on this rank (appending
/// survivors to `sp`, depositing into `acc`). Collective: every rank must
/// call it each step, even with no emigrants. Single-rank grids accept an
/// empty emigrant list without a communicator.
MigrateStats migrate_particles(std::vector<Emigrant> emigrants, Species& sp,
                               const Pusher& pusher, AccumulatorArray& acc,
                               const grid::LocalGrid& grid, vmpi::Comm* comm);

}  // namespace minivpic::particles
