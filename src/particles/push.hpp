// The particle advance — VPIC's inner loop, the kernel behind the paper's
// 0.488 Pflop/s claim.
//
// One advance per particle per step:
//   1. gather E, cB from the cached per-cell interpolator,
//   2. relativistic Boris momentum update (half E kick, B rotation with the
//      7th-order tan(theta/2)/(theta/2) correction, half E kick),
//   3. position update by v*dt,
//   4. charge-conserving current deposition into the per-cell accumulator;
//      cell crossings split the trajectory segment-by-segment (move_p).
//
// Displacements are handled in "cell units" (physical displacement divided
// by the cell size); cell *offsets* span [-1, 1] and therefore advance by
// twice the cell-unit displacement.
//
// Intra-rank pipelines (the paper's per-node parallel layer): advance() can
// run on N pipelines from a util Pipeline pool. The particle array is
// statically partitioned into N contiguous slices; pipeline p advances its
// slice, deposits into accumulator block p, draws reflux momenta from its
// own counter-based RNG stream, and records its emigrants/dead particles
// privately. After the barrier the per-pipeline results are spliced in
// pipeline order, which — because the partition is contiguous — reproduces
// the serial particle order exactly: counters, emigrant order, and removal
// order are identical to the 1-pipeline reference on decks without reflux
// walls, and every trajectory is bit-identical (each particle reads only
// its own state and the shared read-only interpolator). The reduced J
// (AccumulatorArray::reduce()) is bit-identical to serial when no cell
// collects more than one deposit per block, and agrees to float rounding
// (ULPs per cell) on dense decks — the per-cell addition *order* inside a
// later block differs from the serial running sum. For a fixed pipeline
// count every run is bit-wise reproducible. Reflux draws come from
// per-pipeline streams, so refluxed momenta differ *statistically* (not
// physically) across pipeline counts.
//
// SIMD kernels (push_simd.hpp, docs/KERNELS.md): set_kernel() swaps the
// per-slice advance for a W-wide vector kernel that mirrors the scalar
// operation sequence exactly — same IEEE correctly-rounded add/mul/div/
// sqrt, no FMA contraction, deposits and move_p spills executed in particle
// order. The SIMD kernels are therefore designed to be bit-identical to
// the scalar reference (trajectories, counters, emigrant order, reflux
// draws, and J alike); the *documented* contract the tests assert is the
// same one as the pipeline layer's — exact counters, trajectories to
// <= 4 ULP, bit-exact J at <= 1 deposit per cell per block — so a future
// kernel with a weaker guarantee (e.g. an FMA variant) has room to exist
// without rewording every test. Kernel choice composes with pipelines:
// each pipeline runs the selected kernel over its own contiguous slice.
#pragma once

#include <cstdint>
#include <vector>

#include "particles/accumulator.hpp"
#include "particles/interpolator.hpp"
#include "particles/kernel.hpp"
#include "particles/species.hpp"
#include "util/pipeline.hpp"
#include "util/rng.hpp"

namespace minivpic::particles {

struct SimdKernelAccess;

class Pusher {
 public:
  /// `reflux_uth` is the thermal momentum spread of the wall reservoir for
  /// kReflux faces (must be > 0 when a reflux face is actually hit).
  /// Refluxed momenta are drawn from a flux-weighted Maxwellian pointing
  /// into the domain. The spread is species-specific: set it before each
  /// species' advance with set_reflux_uth().
  Pusher(const grid::LocalGrid& grid, const ParticleBcSpec& bc,
         double reflux_uth = 0.0, std::uint64_t reflux_seed = 31415);

  /// Wall reservoir temperature for the next advance() (per species).
  void set_reflux_uth(double uth) { reflux_uth_ = uth; }

  struct Result {
    std::int64_t pushed = 0;      ///< particles advanced
    std::int64_t crossings = 0;   ///< cell-face crossings handled by move_p
    std::int64_t absorbed = 0;    ///< particles removed at absorbing walls
    std::int64_t reflected = 0;   ///< wall reflections
    std::int64_t refluxed = 0;    ///< wall thermal re-emissions
    std::vector<Emigrant> emigrants;  ///< particles leaving this rank
    /// Wall seconds each pipeline spent in its advance_range slice (size =
    /// pipeline count). The spread is the telemetry layer's load-imbalance
    /// signal (max/mean across pipelines).
    std::vector<double> pipeline_seconds;
  };

  /// Advances every particle of `sp` one step, depositing current into
  /// `acc`. Emigrants and absorbed particles are removed from `sp`.
  ///
  /// With a `pipeline` pool of N > 1, `acc` must have at least N blocks;
  /// each pipeline deposits into its own block and the caller must fold
  /// them with acc.reduce() before unload(). Without a pool (or with a
  /// 1-pipeline pool) this is the serial reference path depositing into
  /// block 0 on the calling thread.
  Result advance(Species& sp, const InterpolatorArray& interp,
                 AccumulatorArray& acc, Pipeline* pipeline = nullptr);

  // -- two-pass (skin, then interior) advance ------------------------------
  //
  // The overlap scheduler (docs/OVERLAP.md) splits the advance into two
  // passes over the same particle list: pass S advances only particles in
  // *skin* cells — cells bordering a remote rank, the only ones that can
  // emit emigrants under the CFL limit — so migration can start while
  // pass I advances the interior complement. Both the barriered and the
  // overlapped step loop run the same S-then-I sequence, so the per-stream
  // arithmetic order, RNG draw order, emigrant order, and dead-index sets
  // are identical by construction; the modes differ only in *when* the
  // migration exchange executes. Removals are deferred to the caller:
  // merge the two ascending dead lists and remove descending after the
  // exchange completes. On a single-rank grid the skin set is empty and
  // pass I alone is bit-identical to advance().

  struct Pass {
    Result res;
    /// Dead (emigrated/absorbed) particle indices, ascending. Valid until
    /// the particle list is modified.
    std::vector<std::size_t> dead;
  };

  /// Pass S: classifies every particle of `sp` (the classification is
  /// cached for the matching advance_interior call) and advances the
  /// skin-cell subset.
  Pass advance_skin(Species& sp, const InterpolatorArray& interp,
                    AccumulatorArray& acc, Pipeline* pipeline = nullptr);

  /// Pass I: advances the interior complement. Must directly follow an
  /// advance_skin on the same, unmodified particle list.
  Pass advance_interior(Species& sp, const InterpolatorArray& interp,
                        AccumulatorArray& acc, Pipeline* pipeline = nullptr);

  /// True when some local cell borders a remote rank (the skin is
  /// non-empty); false on single-rank grids, where pass S is a no-op.
  bool has_skin() const { return has_skin_; }

  enum class MoveStatus { kDone, kEmigrated, kAbsorbed };

  /// Completes the move of an immigrant received from a neighbor rank
  /// (momentum already updated by the sender). `p.i` must already be this
  /// rank's voxel. On kEmigrated, `*out` describes the next hop. Deposits
  /// into `acc_block` — the overlap scheduler passes a dedicated migration
  /// block so the exchange can deposit concurrently with the interior
  /// pass; the AccumulatorArray overload keeps the old block-0 behavior.
  MoveStatus continue_move(Particle& p, Mover& m, float macro_charge,
                           CellAccum* acc_block, Emigrant* out,
                           Result* stats) const;
  MoveStatus continue_move(Particle& p, Mover& m, float macro_charge,
                           AccumulatorArray& acc, Emigrant* out,
                           Result* stats) const {
    return continue_move(p, m, macro_charge, acc.data(), out, stats);
  }

  const ParticleBcSpec& bc() const { return bc_; }

  /// Selects the advance kernel. kAuto resolves immediately to the widest
  /// kernel this build/host supports; an explicitly named kernel throws
  /// util::Error when unavailable. Default is the scalar reference.
  void set_kernel(Kernel k);

  /// The resolved kernel the next advance() will run (never kAuto).
  Kernel kernel() const { return kernel_; }

  /// Floating-point operations per particle advance for the common in-cell
  /// case, counted from the kernel source (see push.cpp); used by the
  /// performance model and benches.
  static constexpr double flops_per_particle() { return 182.0; }

 private:
  /// Back door for the SIMD kernels (push_simd.hpp): they live in separate
  /// per-ISA translation units but need move_p, the scalar remainder path,
  /// and the grid.
  friend struct SimdKernelAccess;

  MoveStatus move_p(Particle& p, Mover& m, float macro_charge, CellAccum* acc,
                    Emigrant* out, Result* stats, Rng& reflux_rng) const;

  /// Advances particles [begin, end) of `sp` with the selected kernel,
  /// depositing into `acc_block`. Removals are deferred: dead (emigrated/
  /// absorbed) indices are appended to `dead` in ascending order for the
  /// caller to splice and remove.
  void advance_range(Species& sp, const InterpolatorArray& interp,
                     CellAccum* acc_block, std::size_t begin, std::size_t end,
                     Rng& reflux_rng, Result& res,
                     std::vector<std::size_t>& dead) const;

  /// The scalar reference loop (also the remainder path of every SIMD
  /// kernel: the last size % W particles of a slice run here).
  void advance_range_scalar(Species& sp, const InterpolatorArray& interp,
                            CellAccum* acc_block, std::size_t begin,
                            std::size_t end, Rng& reflux_rng, Result& res,
                            std::vector<std::size_t>& dead) const;

  /// Per-pipeline reflux streams exist for pipelines [0, n); streams are
  /// persistent across steps so draw sequences stay reproducible.
  void ensure_reflux_streams(int n);

  /// Shared machinery of advance / advance_skin / advance_interior: one
  /// pass over the static pipeline partition, restricted to the requested
  /// particle class (kAll advances every particle, exactly the historical
  /// single-pass advance).
  enum class PassKind { kAll, kSkin, kInterior };
  Pass advance_pass(Species& sp, const InterpolatorArray& interp,
                    AccumulatorArray& acc, Pipeline* pipeline, PassKind kind);

  /// Advances the maximal runs of [begin, end) whose cached class equals
  /// `want`, preserving index order (each run goes through advance_range,
  /// so kernels see contiguous slices exactly as in the one-pass advance).
  void advance_runs(Species& sp, const InterpolatorArray& interp,
                    CellAccum* acc_block, std::size_t begin, std::size_t end,
                    std::uint8_t want, Rng& reflux_rng, Result& res,
                    std::vector<std::size_t>& dead) const;

  const grid::LocalGrid* grid_;
  ParticleBcSpec bc_;
  Kernel kernel_ = Kernel::kScalar;
  double reflux_uth_;
  std::uint64_t reflux_seed_;
  /// One independent counter-based stream per pipeline: stream p is
  /// Rng(seed, hash(rank, p)), so draws are reproducible per (rank,
  /// pipeline) and pipelines never share RNG state (the old single shared
  /// `mutable` stream was a data race under a threaded advance).
  std::vector<Rng> reflux_streams_;
  /// Stream for moves completed during migration (continue_move). Mutable
  /// because migration keeps its const Pusher interface; safe because
  /// migration is single-threaded per rank (in the overlapped loop, the
  /// comm worker is that one thread; nothing else draws from this stream
  /// until the scheduler joins it).
  mutable Rng migrate_reflux_rng_;
  /// Per-voxel skin flag (1 = the cell borders a remote rank) and its
  /// summary; built once in the constructor from the grid's neighbor map.
  std::vector<std::uint8_t> skin_voxel_;
  bool has_skin_ = false;
  /// Per-particle class (skin_voxel_ of the particle's cell) captured by
  /// advance_skin *before* any particle moves, so advance_interior pushes
  /// exactly the complement even after skin particles changed cells.
  std::vector<std::uint8_t> cls_;
};

/// Sets up leapfrog time-centering: pulls momenta back from t to t-dt/2
/// using the fields at t. Call once after loading, before the first step.
void uncenter_p(Species& sp, const InterpolatorArray& interp,
                const grid::LocalGrid& grid);

/// Inverse of uncenter_p (momenta from t-dt/2 to t), for diagnostics and
/// checkpointing that want time-centered momenta.
void center_p(Species& sp, const InterpolatorArray& interp,
              const grid::LocalGrid& grid);

}  // namespace minivpic::particles
