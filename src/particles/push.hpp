// The particle advance — VPIC's inner loop, the kernel behind the paper's
// 0.488 Pflop/s claim.
//
// One advance per particle per step:
//   1. gather E, cB from the cached per-cell interpolator,
//   2. relativistic Boris momentum update (half E kick, B rotation with the
//      7th-order tan(theta/2)/(theta/2) correction, half E kick),
//   3. position update by v*dt,
//   4. charge-conserving current deposition into the per-cell accumulator;
//      cell crossings split the trajectory segment-by-segment (move_p).
//
// Displacements are handled in "cell units" (physical displacement divided
// by the cell size); cell *offsets* span [-1, 1] and therefore advance by
// twice the cell-unit displacement.
#pragma once

#include <cstdint>
#include <vector>

#include "particles/accumulator.hpp"
#include "particles/interpolator.hpp"
#include "particles/species.hpp"
#include "util/rng.hpp"

namespace minivpic::particles {

class Pusher {
 public:
  /// `reflux_uth` is the thermal momentum spread of the wall reservoir for
  /// kReflux faces (must be > 0 when a reflux face is actually hit).
  /// Refluxed momenta are drawn from a flux-weighted Maxwellian pointing
  /// into the domain. The spread is species-specific: set it before each
  /// species' advance with set_reflux_uth().
  Pusher(const grid::LocalGrid& grid, const ParticleBcSpec& bc,
         double reflux_uth = 0.0, std::uint64_t reflux_seed = 31415);

  /// Wall reservoir temperature for the next advance() (per species).
  void set_reflux_uth(double uth) { reflux_uth_ = uth; }

  struct Result {
    std::int64_t pushed = 0;      ///< particles advanced
    std::int64_t crossings = 0;   ///< cell-face crossings handled by move_p
    std::int64_t absorbed = 0;    ///< particles removed at absorbing walls
    std::int64_t reflected = 0;   ///< wall reflections
    std::int64_t refluxed = 0;    ///< wall thermal re-emissions
    std::vector<Emigrant> emigrants;  ///< particles leaving this rank
  };

  /// Advances every particle of `sp` one step, depositing current into
  /// `acc`. Emigrants and absorbed particles are removed from `sp`.
  Result advance(Species& sp, const InterpolatorArray& interp,
                 AccumulatorArray& acc) const;

  enum class MoveStatus { kDone, kEmigrated, kAbsorbed };

  /// Completes the move of an immigrant received from a neighbor rank
  /// (momentum already updated by the sender). `p.i` must already be this
  /// rank's voxel. On kEmigrated, `*out` describes the next hop.
  MoveStatus continue_move(Particle& p, Mover& m, float macro_charge,
                           AccumulatorArray& acc, Emigrant* out,
                           Result* stats) const;

  const ParticleBcSpec& bc() const { return bc_; }

  /// Floating-point operations per particle advance for the common in-cell
  /// case, counted from the kernel source (see push.cpp); used by the
  /// performance model and benches.
  static constexpr double flops_per_particle() { return 182.0; }

 private:
  MoveStatus move_p(Particle& p, Mover& m, float macro_charge, CellAccum* acc,
                    Emigrant* out, Result* stats) const;

  const grid::LocalGrid* grid_;
  ParticleBcSpec bc_;
  double reflux_uth_;
  mutable Rng reflux_rng_;  ///< wall-reservoir draws (one rank = one thread)
};

/// Sets up leapfrog time-centering: pulls momenta back from t to t-dt/2
/// using the fields at t. Call once after loading, before the first step.
void uncenter_p(Species& sp, const InterpolatorArray& interp,
                const grid::LocalGrid& grid);

/// Inverse of uncenter_p (momenta from t-dt/2 to t), for diagnostics and
/// checkpointing that want time-centered momenta.
void center_p(Species& sp, const InterpolatorArray& interp,
              const grid::LocalGrid& grid);

}  // namespace minivpic::particles
