// Charge-density deposition (trilinear to mesh nodes), used by the Marder
// divergence cleaner and the charge-conservation diagnostics.
#pragma once

#include "grid/fields.hpp"
#include "particles/species.hpp"

namespace minivpic::particles {

/// Adds this species' charge density to f.rhof (node-centered, units of
/// charge / volume so that div E = rho with eps0 = 1). Deposits reach the
/// high ghost planes; run the halo source reduction afterwards.
void accumulate_rho(const Species& sp, grid::FieldArray& f);

}  // namespace minivpic::particles
