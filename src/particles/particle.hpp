// Particle data types, in VPIC's exact 32-byte layout.
//
// A particle stores the voxel index of its cell and *offsets* within that
// cell in [-1, 1] (so offset 0 is the cell center and the offset coordinate
// advances by 2 per cell). Momentum is u = gamma v / c. This layout is the
// basis of the paper's performance numbers: position/momentum fit one
// 32-byte slot, and the cell index makes field gathers a single
// interpolator load instead of a 3-D stencil gather.
#pragma once

#include <array>
#include <cstdint>

#include "grid/boundary.hpp"

namespace minivpic::particles {

struct Particle {
  float dx = 0, dy = 0, dz = 0;  ///< cell offsets in [-1, 1]
  std::int32_t i = 0;            ///< voxel index of the containing cell
  float ux = 0, uy = 0, uz = 0;  ///< normalized momentum gamma*v/c
  float w = 0;                   ///< statistical weight (particles per macro)
};
static_assert(sizeof(Particle) == 32, "VPIC particle layout must be 32 bytes");

/// Remaining displacement of a particle mid-move, in cell units
/// (displacement/cell-size; the cell *offset* advances by twice this).
struct Mover {
  float dispx = 0, dispy = 0, dispz = 0;
};

/// A particle leaving this rank mid-move: its state frozen exactly on the
/// departing face, the unfinished displacement, and the face it left by.
struct Emigrant {
  Particle p;  ///< p.i is the *sender's* voxel index of the cell it left
  Mover rem;
  std::int32_t face = 0;  ///< grid::Face it crossed
};

/// What happens to particles at a *global* domain face.
enum class ParticleBc {
  kPeriodic,
  kReflect,  ///< specular: normal momentum and displacement flip
  kAbsorb,   ///< particle is removed at the wall
  kReflux,   ///< re-emitted from the wall with a fresh thermal momentum
             ///< (VPIC's maxwellian_reflux: models contact with a thermal
             ///< reservoir so bounded plasmas do not drain)
};

using ParticleBcSpec = std::array<ParticleBc, 6>;

constexpr ParticleBcSpec periodic_particles() {
  return {ParticleBc::kPeriodic, ParticleBc::kPeriodic, ParticleBc::kPeriodic,
          ParticleBc::kPeriodic, ParticleBc::kPeriodic, ParticleBc::kPeriodic};
}

/// LPI slab: absorb along the laser axis, periodic transversely.
constexpr ParticleBcSpec lpi_particles() {
  return {ParticleBc::kAbsorb,   ParticleBc::kAbsorb,
          ParticleBc::kPeriodic, ParticleBc::kPeriodic,
          ParticleBc::kPeriodic, ParticleBc::kPeriodic};
}

}  // namespace minivpic::particles
