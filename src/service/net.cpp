#include "service/net.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "util/error.hpp"

namespace minivpic::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Poll slice between stop-flag checks; short enough that drain feels
/// immediate, long enough that an idle session costs nothing measurable.
constexpr int kSliceMs = 50;

double seconds_until(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

}  // namespace

TcpListener::TcpListener(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MV_REQUIRE(fd >= 0, "socket(): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(std::uint16_t(port));
  MV_REQUIRE(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
             "bind(127.0.0.1:" << port << "): " << std::strerror(errno));
  MV_REQUIRE(::listen(fd, 64) == 0, "listen(): " << std::strerror(errno));
  socklen_t len = sizeof(addr);
  MV_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
             "getsockname(): " << std::strerror(errno));
  port_ = int(ntohs(addr.sin_port));
  fd_.store(fd, std::memory_order_release);
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  // exchange: exactly one closer even if drain and the destructor race.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

int TcpListener::accept_fd(double timeout_seconds) {
  const int fd = fd_.load(std::memory_order_acquire);
  MV_REQUIRE(fd >= 0, "accept on a closed listener");
  pollfd p{fd, POLLIN, 0};
  const int rc = ::poll(&p, 1, int(timeout_seconds * 1000));
  if (rc == 0) return -1;
  MV_REQUIRE(rc > 0 || errno == EINTR, "poll(): " << std::strerror(errno));
  if (rc < 0) return -1;  // EINTR: let the caller re-check its stop flag
  // A concurrent close() makes poll/accept fail (POLLNVAL/EBADF), which the
  // requires below turn into the Error the accept loop treats as "drain".
  const int afd = ::accept(fd, nullptr, nullptr);
  if (afd < 0 && (errno == EAGAIN || errno == ECONNABORTED)) return -1;
  MV_REQUIRE(afd >= 0, "accept(): " << std::strerror(errno));
  return afd;
}

const char* read_status_name(ReadStatus s) {
  switch (s) {
    case ReadStatus::kLine: return "line";
    case ReadStatus::kEof: return "eof";
    case ReadStatus::kTimeout: return "timeout";
    case ReadStatus::kOverflow: return "overflow";
    case ReadStatus::kStopped: return "stopped";
    case ReadStatus::kError: return "error";
  }
  return "?";
}

TcpConn::~TcpConn() {
  if (fd_ >= 0) ::close(fd_);
}

bool TcpConn::send_line(const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  std::size_t sent = 0;
  while (sent < out.size()) {
    // MSG_NOSIGNAL: a vanished peer yields EPIPE here instead of SIGPIPE
    // killing the whole daemon.
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // includes EAGAIN/EWOULDBLOCK from SO_SNDTIMEO
    }
    sent += std::size_t(n);
  }
  return true;
}

void TcpConn::set_send_timeout(double seconds) {
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = time_t(seconds);
    tv.tv_usec = suseconds_t((seconds - double(tv.tv_sec)) * 1e6);
  }
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

ReadStatus TcpConn::read_line(std::string* line, double deadline_seconds,
                              std::size_t max_bytes,
                              const std::atomic<bool>* stop) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(deadline_seconds));
  for (;;) {
    // Deliver a buffered line first — a previous read may have pulled in
    // more than one line (pipelined client).
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return ReadStatus::kLine;
    }
    if (buf_.size() > max_bytes) return ReadStatus::kOverflow;
    if (stop != nullptr && stop->load(std::memory_order_relaxed))
      return ReadStatus::kStopped;
    const double remain = seconds_until(deadline);
    if (remain <= 0) return ReadStatus::kTimeout;
    pollfd p{fd_, POLLIN, 0};
    const int wait_ms = std::min(kSliceMs, int(remain * 1000) + 1);
    const int rc = ::poll(&p, 1, wait_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
    if (rc == 0) continue;  // slice elapsed: re-check stop flag and deadline
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadStatus::kEof;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return ReadStatus::kError;
    }
    buf_.append(chunk, std::size_t(n));
  }
}

int connect_fd(int port, double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MV_REQUIRE(fd >= 0, "socket(): " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(std::uint16_t(port));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      const int err = errno;
      ::close(fd);
      MV_REQUIRE(false, "connect(127.0.0.1:" << port
                                             << "): " << std::strerror(err));
    }
    pollfd p{fd, POLLOUT, 0};
    const int prc = ::poll(&p, 1, int(timeout_seconds * 1000));
    if (prc <= 0) {
      ::close(fd);
      MV_REQUIRE(false, "connect(127.0.0.1:" << port << "): timeout");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      MV_REQUIRE(false, "connect(127.0.0.1:" << port
                                             << "): " << std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace minivpic::service
