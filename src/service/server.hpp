// ServiceServer: the campaign-as-a-service front door. A long-lived daemon
// core that accepts line-delimited JSON jobs over TCP (protocol.hpp),
// multiplexes many concurrent clients onto one shared CampaignExecutor
// worker pool, and answers duplicate work without recomputing it:
//
//   submit --> validate --> ledger cache?  --> serve the stored record
//                       --> in flight?     --> coalesce onto the running job
//                       --> queue full?    --> typed rejection + retry hint
//                       --> else           --> fair-queue, dispatch, wait
//
// Threads: one accept loop (which also reaps finished session threads), one
// session thread per client connection, one dispatcher that moves jobs from
// the FairScheduler into the executor only when a worker is free (so
// scheduling order stays the scheduler's call), plus the executor's own
// workers. All shared state — scheduler, in-flight map, drain flags — lives
// under one mutex `mu_`; the metrics registry, which the executor's workers
// also touch, is guarded by the separate `registry_mu_` that
// ExecutorConfig::metrics_mutex shares with them. No thread ever writes to
// a socket while holding `mu_`: send() can block indefinitely on a peer
// that stops reading, and a blocked send under the global lock would wedge
// the dispatcher, every other session, and drain() itself. Responses are
// built under the lock and sent after unlocking; a send timeout bounds even
// the unlocked writes so a stalled peer costs one session, not the daemon.
//
// Drain (SIGTERM): stop accepting, stop dispatching, let running attempts
// finish or checkpoint (CampaignExecutor::stop), answer every waiting
// client (finished jobs with their result, unstarted ones with a typed
// rejection), and persist the still-pending jobs — scheduler backlog plus
// checkpoint-sliced leases — as queued_job NDJSON that the next start()
// reloads. An accepted job is therefore never lost: it either completes,
// or survives the restart with its resume checkpoint.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/results.hpp"
#include "campaign/spec.hpp"
#include "service/net.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "util/timer.hpp"

namespace minivpic::service {

struct ServerConfig {
  int port = 0;                        ///< 0 = ephemeral; see port()
  int max_queued = 64;                 ///< admission bound (scheduler depth)
  double read_deadline_seconds = 30;   ///< per-line slow-loris deadline
  double send_timeout_seconds = 30;    ///< SO_SNDTIMEO on session sockets
  std::size_t max_line_bytes = 1 << 20;
  double drr_quantum = 256;            ///< FairScheduler quantum (steps)
  /// Drain persistence: queued_job NDJSON written at drain(). start() moves
  /// the file aside to `<path>.consumed` before re-queuing it (so a crash
  /// after restart still has the backlog on disk) and drain() removes the
  /// marker once the backlog is re-persisted. Empty = no persistence.
  std::string queue_state_path;
  /// Optional service flight recorder (accept/dispatch/complete events).
  telemetry::Recorder* recorder = nullptr;
};

class ServiceServer {
 public:
  /// `spec` contributes the base deck, default step count and probe config;
  /// `results` is the shared ledger (cache source of truth); `exec` is the
  /// worker-pool shape — its metrics registry (if any) gains the service.*
  /// instruments and is shared TSan-cleanly via metrics_mutex. The socket
  /// binds in the constructor so port() is valid immediately; no thread
  /// runs until start().
  ServiceServer(const campaign::CampaignSpec& spec,
                campaign::ResultStore& results,
                campaign::ExecutorConfig exec, ServerConfig config);
  ~ServiceServer();

  int port() const { return listener_->port(); }

  /// Reloads persisted queue state, starts the executor pool, the
  /// dispatcher, and the accept loop.
  void start();

  /// Graceful drain (idempotent): see the file comment. Blocks until every
  /// session thread has exited and pending work is persisted.
  void drain();

  /// Jobs persisted by the last drain() (for the daemon's exit report).
  int persisted_jobs() const { return persisted_jobs_; }

 private:
  struct Inflight {
    bool terminal = false;
    campaign::JobResult result;   ///< valid when terminal
    double accept_seconds = 0;    ///< server-epoch accept timestamp
    std::string client = "anon";  ///< for drain persistence
    double priority = 1.0;
    /// Sessions blocked in handle_submit on this id. A terminal entry is
    /// erased by whoever brings the count to zero (handle_result when
    /// nobody waits, else the last waiter) — the ledger answers later
    /// duplicates, so inflight_ stays bounded by actual in-flight work.
    int waiters = 0;
  };

  /// One session thread plus its self-reported completion flag, so
  /// accept_loop can reap finished sessions instead of accumulating
  /// terminated-but-joinable handles for the daemon's lifetime.
  struct SessionSlot {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void reap_sessions();
  void session(int fd);
  void dispatch_loop();
  void handle_request(TcpConn& conn, const std::string& line);
  void handle_submit(TcpConn& conn, const SubmitRequest& req);
  void handle_result(const campaign::JobResult& r);
  telemetry::Json status_json();
  telemetry::Json metrics_json();
  void persist_queue_state(const std::vector<QueuedJob>& queued);
  void load_queue_state();
  void count(const char* name, double d = 1.0);
  void observe_latency(const char* histogram, double seconds);
  void fdr(telemetry::FdrKind kind, std::uint16_t code = 0,
           std::uint64_t arg = 0);

  const campaign::CampaignSpec* spec_;
  campaign::ResultStore* results_;
  ServerConfig config_;
  telemetry::MetricsRegistry* metrics_ = nullptr;

  /// Shared guard for `metrics_` — ExecutorConfig::metrics_mutex points
  /// here, so executor workers and server threads serialize on one lock.
  std::mutex registry_mu_;

  std::unique_ptr<campaign::CampaignExecutor> executor_;
  std::unique_ptr<TcpListener> listener_;
  Timer epoch_;  ///< server-relative timestamps (latency accounting)

  std::mutex mu_;  ///< scheduler_, inflight_, drain flags, ewma
  std::condition_variable cv_;
  FairScheduler scheduler_;
  std::map<std::string, Inflight> inflight_;
  bool draining_ = false;        ///< dispatcher must stop handing out work
  bool drain_complete_ = false;  ///< executor stopped; waiters may give up
  double ewma_job_seconds_ = 1.0;

  std::atomic<bool> stopping_{false};  ///< accept/read loops observe this
  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::mutex sessions_mu_;
  std::vector<SessionSlot> sessions_;
  bool started_ = false;
  bool drained_ = false;
  int persisted_jobs_ = 0;
};

}  // namespace minivpic::service
