// FairScheduler: deficit-weighted round-robin over per-client queues, plus
// the admission bound. This is the policy half of the service's dispatch
// path — the server holds jobs here (not in the executor's queue) until a
// worker frees up, so ordering decisions stay revisable and one chatty
// client cannot starve the others.
//
// Deficit round robin (Shreedhar & Varghese): each client queue carries a
// deficit counter; a round visits clients in arrival order, tops each
// visited deficit up by quantum x priority, and serves the head job when
// the deficit covers its cost (cost = step count, the honest proxy for
// worker seconds). Served cost is subtracted, so over time each client's
// share of worker-steps converges to priority / sum(priorities) regardless
// of how its jobs are sized — a client submitting 10x-longer jobs gets
// served 10x less often, not 10x more compute.
//
// Admission: enqueue() refuses beyond `max_queued` total jobs; the server
// turns that refusal into a typed `rejected` response with a retry hint.
// Bounding the queue bounds both memory and the worst-case latency promise.
//
// Not thread-safe — the server serializes access under its own mutex (the
// scheduler is always touched together with the in-flight map, so a second
// lock would just add a lock-order hazard).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "campaign/spec.hpp"

namespace minivpic::service {

/// One job waiting for a worker, with its fair-queuing identity.
struct ScheduledJob {
  campaign::Job job;
  std::string client = "anon";
  double priority = 1.0;
  std::int64_t resume_step = -1;
  std::string resume_prefix;
};

class FairScheduler {
 public:
  /// `max_queued` bounds the total jobs held; `quantum` is the DRR top-up
  /// in cost units (steps) per visit — small enough that short jobs
  /// interleave, large enough that a typical job is served within a few
  /// rounds.
  explicit FairScheduler(int max_queued, double quantum = 256.0);

  /// Admits one job, or returns false when the queue is full.
  bool enqueue(ScheduledJob j);

  /// The next job under DRR, or nullopt when empty.
  std::optional<ScheduledJob> next();

  int depth() const { return depth_; }
  int max_queued() const { return max_queued_; }

  /// Live client flows. Emptied flows are erased (a flow exists only while
  /// it has queued jobs), so this is bounded by depth(), not by how many
  /// distinct client names the daemon has ever seen.
  int flows() const { return int(clients_.size()); }

  /// Removes and returns every queued job (client arrival order, FIFO
  /// within a client) — the drain path.
  std::vector<ScheduledJob> drain();

 private:
  struct ClientQueue {
    std::string client;
    double priority = 1.0;
    double deficit = 0.0;
    std::deque<ScheduledJob> jobs;
  };

  int max_queued_;
  double quantum_;
  int depth_ = 0;
  std::vector<ClientQueue> clients_;  ///< client arrival order
  std::size_t cursor_ = 0;            ///< client currently being served
  bool fresh_visit_ = true;           ///< top the deficit up on arrival only
};

}  // namespace minivpic::service
