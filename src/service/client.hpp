// ServiceClient: a thin synchronous client for the campaign service wire
// protocol — connect, send one JSON request line, read one JSON response
// line. Shared by the load generator (examples/campaign_load), the
// throughput bench, and the end-to-end tests, so they all speak exactly
// the grammar of docs/SERVICE.md instead of three hand-rolled copies.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "service/net.hpp"
#include "sim/deck_io.hpp"
#include "telemetry/json.hpp"

namespace minivpic::service {

class ServiceClient {
 public:
  /// Connects to 127.0.0.1:`port`; throws minivpic::Error on failure.
  /// `timeout_seconds` bounds the connect AND each response read — a
  /// response slower than this throws rather than hanging the caller.
  explicit ServiceClient(int port, double timeout_seconds = 60.0);

  /// Sends one request object and returns the parsed response object.
  /// Throws minivpic::Error on a dead connection, a response timeout, or
  /// a malformed response line.
  telemetry::Json request(const telemetry::Json& req);

  /// Convenience: builds and sends a submit request. Empty `deck_text`
  /// uses the server's base deck; `steps` <= 0 uses the server default.
  telemetry::Json submit(const std::string& deck_text,
                         const std::vector<std::string>& override_specs,
                         int steps, const std::string& client_name = "anon",
                         double priority = 1.0, bool wait = true);

  telemetry::Json status();
  telemetry::Json metrics();
  bool ping();

  /// The raw connection — protocol-abuse tests (oversized lines, truncated
  /// JSON, slow loris) write through this directly.
  TcpConn& conn() { return *conn_; }
  double timeout_seconds() const { return timeout_; }

 private:
  std::unique_ptr<TcpConn> conn_;
  double timeout_;
};

}  // namespace minivpic::service
