#include "service/scheduler.hpp"

#include <algorithm>
#include <cstddef>

#include "util/error.hpp"

namespace minivpic::service {

FairScheduler::FairScheduler(int max_queued, double quantum)
    : max_queued_(max_queued), quantum_(quantum) {
  MV_REQUIRE(max_queued_ >= 1, "scheduler needs max_queued >= 1");
  MV_REQUIRE(quantum_ > 0, "scheduler needs a positive quantum");
}

bool FairScheduler::enqueue(ScheduledJob j) {
  if (depth_ >= max_queued_) return false;
  ClientQueue* cq = nullptr;
  for (ClientQueue& c : clients_)
    if (c.client == j.client) cq = &c;
  if (cq == nullptr) {
    ClientQueue c;
    c.client = j.client;
    clients_.push_back(std::move(c));
    cq = &clients_.back();
  }
  // Latest submission's weight wins for the whole per-client queue — one
  // client is one flow, not one flow per priority value. The clamp bounds
  // next()'s rounds-until-affordable even if a caller skips protocol-level
  // validation (e.g. restart backlog from a hand-edited state file).
  cq->priority = std::clamp(j.priority, 0.01, 100.0);
  cq->jobs.push_back(std::move(j));
  ++depth_;
  return true;
}

std::optional<ScheduledJob> FairScheduler::next() {
  if (depth_ == 0) return std::nullopt;
  // One-job-per-call DRR: the deficit tops up ONCE per arrival at a client
  // (fresh_visit_), and the cursor stays on that client while it can still
  // afford its head job — otherwise a client would bank quantum x priority
  // on every call and high-priority flows would accumulate unbounded
  // credit. Termination: every full pass tops every backlogged client up
  // by a positive amount, so some head job becomes affordable within
  // O(max job cost / quantum) passes.
  for (;;) {
    if (cursor_ >= clients_.size()) cursor_ = 0;
    ClientQueue& c = clients_[cursor_];
    if (c.jobs.empty()) {
      // Emptied flows are erased eagerly below; this is the defensive path.
      clients_.erase(clients_.begin() + std::ptrdiff_t(cursor_));
      fresh_visit_ = true;
      continue;
    }
    if (fresh_visit_) {
      c.deficit += quantum_ * c.priority;
      fresh_visit_ = false;
    }
    const double cost = double(std::max(1, c.jobs.front().job.steps));
    if (c.deficit < cost) {
      ++cursor_;
      fresh_visit_ = true;
      continue;
    }
    c.deficit -= cost;
    ScheduledJob out = std::move(c.jobs.front());
    c.jobs.pop_front();
    --depth_;
    if (c.jobs.empty()) {
      // An emptied flow is forgotten entirely (it banked no credit anyway),
      // so a long-lived daemon does not accumulate one ClientQueue per
      // client name ever seen. The erase leaves cursor_ on the next flow.
      clients_.erase(clients_.begin() + std::ptrdiff_t(cursor_));
      fresh_visit_ = true;
    }
    return out;
  }
}

std::vector<ScheduledJob> FairScheduler::drain() {
  std::vector<ScheduledJob> out;
  out.reserve(std::size_t(depth_));
  for (ClientQueue& c : clients_)
    for (ScheduledJob& j : c.jobs) out.push_back(std::move(j));
  clients_.clear();
  depth_ = 0;
  cursor_ = 0;
  fresh_visit_ = true;
  return out;
}

}  // namespace minivpic::service
