// Minimal POSIX TCP plumbing for the campaign service: a listener with a
// poll-based accept timeout (so the accept loop can observe a stop flag),
// and a connection wrapper whose line reader enforces the three protocol
// guards of docs/SERVICE.md — a per-line read deadline (slow-loris),
// a maximum line length (memory bound), and a cooperative stop flag (drain).
//
// Everything here is blocking-with-deadline, not event-driven: the service
// runs one session thread per client, which is the right shape for the
// tens-of-clients regime a simulation daemon serves (the expensive resource
// is the worker pool, not the sockets).
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

namespace minivpic::service {

/// Listening socket on 127.0.0.1. Port 0 binds an ephemeral port; port()
/// reports the actual one (tests and --port-file depend on this).
class TcpListener {
 public:
  explicit TcpListener(int port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  int port() const { return port_; }

  /// Waits up to `timeout_seconds` for one connection. Returns the accepted
  /// fd, or -1 on timeout (poll again) — errors throw minivpic::Error.
  int accept_fd(double timeout_seconds);

  /// Idempotent; callable from a thread other than the accept loop's (the
  /// drain path closes the listener under a poller, which then throws out
  /// of accept_fd) — hence the atomic fd.
  void close();

 private:
  std::atomic<int> fd_{-1};
  int port_ = 0;
};

/// Outcome of TcpConn::read_line.
enum class ReadStatus {
  kLine,      ///< one complete line delivered (newline stripped)
  kEof,       ///< peer closed cleanly with no buffered partial line
  kTimeout,   ///< deadline elapsed before a newline arrived (slow loris)
  kOverflow,  ///< line exceeded the maximum length
  kStopped,   ///< the stop flag was raised mid-read (drain)
  kError,     ///< socket error
};
const char* read_status_name(ReadStatus s);

/// One accepted (or connected) socket. Owns the fd.
class TcpConn {
 public:
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn();
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  int fd() const { return fd_; }

  /// Writes `line` plus a trailing newline, looping over partial sends.
  /// Returns false on any send error (peer gone) instead of throwing — a
  /// dead client must not take the session thread down.
  bool send_line(const std::string& line);

  /// Sets SO_SNDTIMEO: a peer that stops reading (full socket buffer) makes
  /// send_line fail after `seconds` instead of blocking the session thread
  /// forever. <= 0 restores the blocking default.
  void set_send_timeout(double seconds);

  /// Reads up to and including the next newline. The wall-clock deadline
  /// covers the WHOLE line, not each byte — a client trickling one byte per
  /// poll slice still times out (the slow-loris guard). Lines longer than
  /// `max_bytes` return kOverflow with the connection left unusable (the
  /// caller should report and close). `stop`, when non-null, is polled
  /// between slices so a draining server can interrupt idle readers.
  ReadStatus read_line(std::string* line, double deadline_seconds,
                       std::size_t max_bytes,
                       const std::atomic<bool>* stop = nullptr);

 private:
  int fd_;
  std::string buf_;  ///< bytes received past the last delivered line
};

/// Connects to 127.0.0.1:`port` with a deadline. Returns the fd; throws
/// minivpic::Error on refusal or timeout.
int connect_fd(int port, double timeout_seconds);

}  // namespace minivpic::service
