#include "service/server.hpp"

#include <algorithm>
#include <fstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace minivpic::service {

using campaign::JobResult;
using telemetry::FdrKind;
using telemetry::Json;

ServiceServer::ServiceServer(const campaign::CampaignSpec& spec,
                             campaign::ResultStore& results,
                             campaign::ExecutorConfig exec,
                             ServerConfig config)
    : spec_(&spec),
      results_(&results),
      config_(std::move(config)),
      metrics_(exec.metrics),
      scheduler_(config_.max_queued, config_.drr_quantum) {
  // Pre-register every service.* instrument before any thread exists —
  // MetricsRegistry is not thread-safe for registration, so all lookups
  // after this point hit existing entries under registry_mu_.
  if (metrics_ != nullptr) {
    metrics_->counter("service.submissions", "count");
    metrics_->counter("service.cache_hits", "count");
    metrics_->counter("service.coalesced", "count");
    metrics_->counter("service.rejections", "count");
    metrics_->counter("service.invalid", "count");
    metrics_->counter("service.completed", "count");
    metrics_->counter("service.failed", "count");
    metrics_->counter("service.disconnects", "count");
    metrics_->gauge("service.queue_depth", "count");
    metrics_->gauge("service.inflight", "count");
    metrics_->histogram("service.latency.cache", 0.0, 1.0, 100, "s");
    metrics_->histogram("service.latency.job", 0.0, 120.0, 240, "s");
  }
  exec.metrics_mutex = &registry_mu_;
  exec.on_result = [this](const JobResult& r) { handle_result(r); };
  executor_ = std::make_unique<campaign::CampaignExecutor>(spec, exec);
  listener_ = std::make_unique<TcpListener>(config_.port);
}

ServiceServer::~ServiceServer() {
  if (started_ && !drained_) drain();
}

void ServiceServer::count(const char* name, double d) {
  if (metrics_ == nullptr) return;
  std::lock_guard<std::mutex> lock(registry_mu_);
  metrics_->counter(name).add(d);
}

void ServiceServer::observe_latency(const char* histogram, double seconds) {
  if (metrics_ == nullptr) return;
  std::lock_guard<std::mutex> lock(registry_mu_);
  metrics_->histogram(histogram, 0.0, 1.0, 1).add(seconds);
}

void ServiceServer::fdr(FdrKind kind, std::uint16_t code, std::uint64_t arg) {
  if (config_.recorder != nullptr) config_.recorder->record(kind, code, -1, arg);
}

void ServiceServer::start() {
  MV_REQUIRE(!started_, "service server already started");
  started_ = true;
  load_queue_state();
  executor_->start(*results_);
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  MV_LOG_INFO << "service: listening on 127.0.0.1:" << port() << " ("
              << executor_->effective_workers() << " workers, queue bound "
              << config_.max_queued << ")";
}

// -- accept / session --------------------------------------------------------

void ServiceServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = -1;
    try {
      fd = listener_->accept_fd(0.2);
    } catch (const Error&) {
      break;  // listener closed under us: drain in progress
    }
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.emplace_back([this, fd] { session(fd); });
  }
}

void ServiceServer::session(int fd) {
  TcpConn conn(fd);
  for (;;) {
    std::string line;
    const ReadStatus rs = conn.read_line(&line, config_.read_deadline_seconds,
                                         config_.max_line_bytes, &stopping_);
    switch (rs) {
      case ReadStatus::kLine:
        break;
      case ReadStatus::kEof:
        return;
      case ReadStatus::kTimeout:
        conn.send_line(make_error_response("read deadline exceeded").dump());
        count("service.disconnects");
        return;
      case ReadStatus::kOverflow:
        conn.send_line(
            make_error_response("request line exceeds " +
                                std::to_string(config_.max_line_bytes) +
                                " bytes")
                .dump());
        count("service.disconnects");
        return;
      case ReadStatus::kStopped:
      case ReadStatus::kError:
        return;
    }
    if (line.empty()) continue;
    handle_request(conn, line);
  }
}

void ServiceServer::handle_request(TcpConn& conn, const std::string& line) {
  Request req;
  try {
    req = parse_request(line);
  } catch (const Error& e) {
    count("service.invalid");
    conn.send_line(make_error_response(e.what()).dump());
    return;
  }
  switch (req.type) {
    case Request::Type::kPing:
      conn.send_line(make_pong_response().dump());
      return;
    case Request::Type::kStatus:
      conn.send_line(status_json().dump());
      return;
    case Request::Type::kMetrics:
      conn.send_line(metrics_json().dump());
      return;
    case Request::Type::kSubmit:
      handle_submit(conn, req.submit);
      return;
  }
}

// -- submit: cache -> coalesce -> admit -> wait -------------------------------

void ServiceServer::handle_submit(TcpConn& conn, const SubmitRequest& req) {
  const double t0 = epoch_.seconds();
  count("service.submissions");

  // Build and validate the job before touching any shared state, so a bad
  // deck costs one error line, not a queue slot.
  campaign::Job job;
  job.overrides = req.overrides;
  job.steps = req.steps > 0 ? req.steps : spec_->steps();
  job.probe_plane = spec_->probe_plane();
  job.warmup = spec_->warmup();
  job.deck_text = req.deck_text;
  try {
    const std::string fingerprint =
        req.deck_text.empty()
            ? spec_->fingerprint()
            : sim::DeckSource::from_text(req.deck_text).canonical_text();
    job.id = campaign::job_id(fingerprint, job.overrides, job.steps);
    std::string label;
    for (const sim::DeckOverride& ov : job.overrides) {
      if (!label.empty()) label += ",";
      label += ov.spec();
    }
    job.label = label.empty() ? "base" : label;
    (void)spec_->make_deck(job);  // full validation: unknown keys throw here
  } catch (const Error& e) {
    count("service.invalid");
    conn.send_line(make_error_response(e.what()).dump());
    return;
  }

  // Ledger cache: a done record with this content hash answers instantly.
  if (const auto cached = results_->find(job.id);
      cached && cached->status == "done") {
    count("service.cache_hits");
    observe_latency("service.latency.cache", epoch_.seconds() - t0);
    conn.send_line(make_result_response(*cached, "cache").dump());
    return;
  }

  bool fresh = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = inflight_.find(job.id);
    if (it != inflight_.end() && !it->second.terminal) {
      // Duplicate of an accepted-but-unfinished job: attach, don't re-run.
      count("service.coalesced");
    } else if (draining_) {
      conn.send_line(
          make_rejected_response(job.id, "server draining", 5.0).dump());
      count("service.rejections");
      return;
    } else {
      ScheduledJob sj;
      sj.job = job;
      sj.client = req.client;
      sj.priority = req.priority;
      if (!scheduler_.enqueue(std::move(sj))) {
        const double retry = std::max(
            1.0, ewma_job_seconds_ * double(scheduler_.depth()) /
                     double(std::max(1, executor_->effective_workers())));
        count("service.rejections");
        conn.send_line(
            make_rejected_response(job.id, "queue full", retry).dump());
        return;
      }
      fresh = true;
      Inflight inf;
      inf.accept_seconds = t0;
      inf.client = req.client;
      inf.priority = req.priority;
      inflight_[job.id] = std::move(inf);
      if (metrics_ != nullptr) {
        std::lock_guard<std::mutex> mlock(registry_mu_);
        metrics_->gauge("service.queue_depth").set(double(scheduler_.depth()));
        metrics_->gauge("service.inflight").set(double(inflight_.size()));
      }
      fdr(FdrKind::kServiceAccept, 0, std::uint64_t(scheduler_.depth()));
      cv_.notify_all();  // wake the dispatcher
    }

    if (!req.wait) {
      conn.send_line(
          make_accepted_response(job.id, scheduler_.depth()).dump());
      return;
    }

    // Block until the job reaches a terminal state (result arrives via
    // handle_result) or the drain finishes without it having started.
    cv_.wait(lock, [&] {
      const auto w = inflight_.find(job.id);
      return (w != inflight_.end() && w->second.terminal) || drain_complete_;
    });
    const auto done = inflight_.find(job.id);
    if (done != inflight_.end() && done->second.terminal) {
      const JobResult r = done->second.result;
      lock.unlock();
      conn.send_line(
          make_result_response(r, fresh ? "fresh" : "coalesced").dump());
      return;
    }
  }
  // Drained before the job ran: it is persisted, not lost — tell the client
  // to come back after the restart.
  conn.send_line(make_rejected_response(
                     job.id, "server draining; job persisted for restart", 5.0)
                     .dump());
}

// -- dispatcher ---------------------------------------------------------------

void ServiceServer::dispatch_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // A worker is free when the executor's queue holds fewer live jobs
    // than it has workers — only then does handing over the next job start
    // it immediately, keeping ordering decisions in the FairScheduler.
    auto free_workers = [&] {
      const auto c = executor_->queue_counts();
      return executor_->effective_workers() - (c.pending + c.running);
    };
    cv_.wait(lock, [&] {
      return draining_ || (scheduler_.depth() > 0 && free_workers() > 0);
    });
    if (draining_) return;
    auto next = scheduler_.next();
    if (!next) continue;
    fdr(FdrKind::kServiceDispatch);
    if (metrics_ != nullptr) {
      std::lock_guard<std::mutex> mlock(registry_mu_);
      metrics_->gauge("service.queue_depth").set(double(scheduler_.depth()));
    }
    executor_->submit(next->job, next->resume_step, next->resume_prefix);
  }
}

// Runs on the worker thread that finished the job (ExecutorConfig::
// on_result). Every terminal job both resolves its waiters and frees a
// worker slot, so one notify_all serves the session threads and the
// dispatcher alike.
void ServiceServer::handle_result(const JobResult& r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Inflight& inf = inflight_[r.id];
    inf.terminal = true;
    inf.result = r;
    const double latency = epoch_.seconds() - inf.accept_seconds;
    ewma_job_seconds_ = 0.8 * ewma_job_seconds_ + 0.2 * std::max(r.seconds, 1e-3);
    if (metrics_ != nullptr) {
      std::lock_guard<std::mutex> mlock(registry_mu_);
      metrics_->counter(r.status == "done" ? "service.completed"
                                           : "service.failed")
          .add(1.0);
      metrics_->histogram("service.latency.job", 0, 1, 1).add(latency);
    }
    fdr(FdrKind::kServiceComplete, r.status == "done" ? 0 : 1);
  }
  cv_.notify_all();
}

// -- status / metrics ---------------------------------------------------------

telemetry::Json ServiceServer::status_json() {
  Json j = Json::object();
  j.set("type", Json::string("status"));
  const auto c = executor_->queue_counts();
  std::lock_guard<std::mutex> lock(mu_);
  j.set("queued", Json::number(std::int64_t{scheduler_.depth()}));
  j.set("dispatched_pending", Json::number(std::int64_t{c.pending}));
  j.set("running", Json::number(std::int64_t{c.running}));
  j.set("done", Json::number(std::int64_t{c.done}));
  j.set("failed", Json::number(std::int64_t{c.failed}));
  j.set("inflight", Json::number(std::int64_t(inflight_.size())));
  j.set("workers", Json::number(std::int64_t{executor_->effective_workers()}));
  j.set("draining", Json::boolean(draining_));
  return j;
}

telemetry::Json ServiceServer::metrics_json() {
  Json j = Json::object();
  j.set("type", Json::string("metrics"));
  Json vals = Json::object();
  if (metrics_ != nullptr) {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const telemetry::ScalarMetric& m : metrics_->scalars())
      vals.set(m.name, Json::number(m.value));
    for (const char* h : {"service.latency.cache", "service.latency.job"}) {
      if (const auto* hist = metrics_->find_histogram(h);
          hist != nullptr && hist->total_count() > 0) {
        vals.set(std::string(h) + ".p50", Json::number(hist->quantile(0.5)));
        vals.set(std::string(h) + ".p99", Json::number(hist->quantile(0.99)));
      }
    }
  }
  j.set("values", std::move(vals));
  return j;
}

// -- drain / persistence ------------------------------------------------------

void ServiceServer::drain() {
  if (!started_ || drained_) return;
  drained_ = true;
  MV_LOG_INFO << "service: draining";
  stopping_.store(true, std::memory_order_relaxed);
  listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();

  // Let in-flight attempts reach their natural end (checkpoint-sliced ones
  // land back as pending leases with resume state).
  std::vector<campaign::Lease> pending = executor_->stop();

  std::vector<QueuedJob> queued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ScheduledJob& sj : scheduler_.drain()) {
      QueuedJob q;
      q.job = std::move(sj.job);
      q.client = std::move(sj.client);
      q.priority = sj.priority;
      q.resume_step = sj.resume_step;
      q.resume_prefix = std::move(sj.resume_prefix);
      queued.push_back(std::move(q));
    }
    for (campaign::Lease& lease : pending) {
      QueuedJob q;
      q.job = std::move(lease.job);
      q.resume_step = lease.resume_step;
      q.resume_prefix = std::move(lease.resume_prefix);
      if (const auto it = inflight_.find(q.job.id); it != inflight_.end()) {
        q.client = it->second.client;
        q.priority = it->second.priority;
      }
      queued.push_back(std::move(q));
    }
    drain_complete_ = true;
  }
  cv_.notify_all();  // waiters for unfinished jobs give up with `rejected`

  persist_queue_state(queued);
  persisted_jobs_ = int(queued.size());

  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (std::thread& t : sessions)
    if (t.joinable()) t.join();
  MV_LOG_INFO << "service: drained (" << queued.size()
              << " pending jobs persisted)";
}

void ServiceServer::persist_queue_state(const std::vector<QueuedJob>& queued) {
  if (config_.queue_state_path.empty()) return;
  std::ofstream out(config_.queue_state_path, std::ios::trunc);
  MV_REQUIRE(out.good(),
             "cannot write queue state: " << config_.queue_state_path);
  for (const QueuedJob& q : queued) out << queued_job_to_json(q).dump() << "\n";
  out.flush();
  MV_REQUIRE(out.good(),
             "queue state write failed: " << config_.queue_state_path);
}

void ServiceServer::load_queue_state() {
  if (config_.queue_state_path.empty()) return;
  std::ifstream in(config_.queue_state_path);
  if (!in.good()) return;  // first boot: nothing persisted yet
  std::string line;
  int loaded = 0;
  std::lock_guard<std::mutex> lock(mu_);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    QueuedJob q = queued_job_from_json(Json::parse(line));
    ScheduledJob sj;
    Inflight inf;
    inf.accept_seconds = epoch_.seconds();
    inf.client = q.client;
    inf.priority = q.priority;
    inflight_[q.job.id] = std::move(inf);
    sj.job = std::move(q.job);
    sj.client = std::move(q.client);
    sj.priority = q.priority;
    sj.resume_step = q.resume_step;
    sj.resume_prefix = std::move(q.resume_prefix);
    if (!scheduler_.enqueue(std::move(sj))) {
      // Cannot happen when max_queued matches the previous run's bound,
      // but a shrunk bound must not silently drop accepted work.
      MV_LOG_WARN << "service: queue state overflows max_queued; job "
                  << "dropped from restart backlog";
      continue;
    }
    ++loaded;
  }
  in.close();
  std::ofstream(config_.queue_state_path, std::ios::trunc);  // consumed
  if (loaded > 0)
    MV_LOG_INFO << "service: reloaded " << loaded
                << " persisted jobs from " << config_.queue_state_path;
}

}  // namespace minivpic::service
