#include "service/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace minivpic::service {

using campaign::JobResult;
using telemetry::FdrKind;
using telemetry::Json;

ServiceServer::ServiceServer(const campaign::CampaignSpec& spec,
                             campaign::ResultStore& results,
                             campaign::ExecutorConfig exec,
                             ServerConfig config)
    : spec_(&spec),
      results_(&results),
      config_(std::move(config)),
      metrics_(exec.metrics),
      scheduler_(config_.max_queued, config_.drr_quantum) {
  // Pre-register every service.* instrument before any thread exists —
  // MetricsRegistry is not thread-safe for registration, so all lookups
  // after this point hit existing entries under registry_mu_.
  if (metrics_ != nullptr) {
    metrics_->counter("service.submissions", "count");
    metrics_->counter("service.cache_hits", "count");
    metrics_->counter("service.coalesced", "count");
    metrics_->counter("service.rejections", "count");
    metrics_->counter("service.invalid", "count");
    metrics_->counter("service.completed", "count");
    metrics_->counter("service.failed", "count");
    metrics_->counter("service.disconnects", "count");
    metrics_->gauge("service.queue_depth", "count");
    metrics_->gauge("service.inflight", "count");
    metrics_->histogram("service.latency.cache", 0.0, 1.0, 100, "s");
    metrics_->histogram("service.latency.job", 0.0, 120.0, 240, "s");
  }
  exec.metrics_mutex = &registry_mu_;
  exec.on_result = [this](const JobResult& r) { handle_result(r); };
  executor_ = std::make_unique<campaign::CampaignExecutor>(spec, exec);
  listener_ = std::make_unique<TcpListener>(config_.port);
}

ServiceServer::~ServiceServer() {
  if (started_ && !drained_) drain();
}

void ServiceServer::count(const char* name, double d) {
  if (metrics_ == nullptr) return;
  std::lock_guard<std::mutex> lock(registry_mu_);
  metrics_->counter(name).add(d);
}

void ServiceServer::observe_latency(const char* histogram, double seconds) {
  if (metrics_ == nullptr) return;
  std::lock_guard<std::mutex> lock(registry_mu_);
  metrics_->histogram(histogram, 0.0, 1.0, 1).add(seconds);
}

void ServiceServer::fdr(FdrKind kind, std::uint16_t code, std::uint64_t arg) {
  if (config_.recorder != nullptr) config_.recorder->record(kind, code, -1, arg);
}

void ServiceServer::start() {
  MV_REQUIRE(!started_, "service server already started");
  started_ = true;
  load_queue_state();
  executor_->start(*results_);
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  MV_LOG_INFO << "service: listening on 127.0.0.1:" << port() << " ("
              << executor_->effective_workers() << " workers, queue bound "
              << config_.max_queued << ")";
}

// -- accept / session --------------------------------------------------------

void ServiceServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = -1;
    try {
      fd = listener_->accept_fd(0.2);
    } catch (const Error&) {
      break;  // listener closed under us: drain in progress
    }
    reap_sessions();  // every ~200ms tick, so churn cannot accumulate
    if (fd < 0) continue;
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    SessionSlot slot;
    slot.done = done;
    slot.thread = std::thread([this, fd, done] {
      session(fd);
      done->store(true, std::memory_order_release);
    });
    sessions_.push_back(std::move(slot));
  }
}

// Joins and drops every session thread that has finished — a
// connection-churning workload must not grow the sessions_ vector (and its
// dead thread handles) for the daemon's lifetime. The joins happen outside
// sessions_mu_ so a (briefly) still-exiting thread never stalls accept.
void ServiceServer::reap_sessions() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.begin();
    while (it != sessions_.end()) {
      if (it->done->load(std::memory_order_acquire)) {
        finished.push_back(std::move(it->thread));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : finished)
    if (t.joinable()) t.join();
}

void ServiceServer::session(int fd) {
  TcpConn conn(fd);
  conn.set_send_timeout(config_.send_timeout_seconds);
  for (;;) {
    std::string line;
    const ReadStatus rs = conn.read_line(&line, config_.read_deadline_seconds,
                                         config_.max_line_bytes, &stopping_);
    switch (rs) {
      case ReadStatus::kLine:
        break;
      case ReadStatus::kEof:
        return;
      case ReadStatus::kTimeout:
        conn.send_line(make_error_response("read deadline exceeded").dump());
        count("service.disconnects");
        return;
      case ReadStatus::kOverflow:
        conn.send_line(
            make_error_response("request line exceeds " +
                                std::to_string(config_.max_line_bytes) +
                                " bytes")
                .dump());
        count("service.disconnects");
        return;
      case ReadStatus::kStopped:
      case ReadStatus::kError:
        return;
    }
    if (line.empty()) continue;
    handle_request(conn, line);
  }
}

void ServiceServer::handle_request(TcpConn& conn, const std::string& line) {
  Request req;
  try {
    req = parse_request(line);
  } catch (const Error& e) {
    count("service.invalid");
    conn.send_line(make_error_response(e.what()).dump());
    return;
  }
  switch (req.type) {
    case Request::Type::kPing:
      conn.send_line(make_pong_response().dump());
      return;
    case Request::Type::kStatus:
      conn.send_line(status_json().dump());
      return;
    case Request::Type::kMetrics:
      conn.send_line(metrics_json().dump());
      return;
    case Request::Type::kSubmit:
      handle_submit(conn, req.submit);
      return;
  }
}

// -- submit: cache -> coalesce -> admit -> wait -------------------------------

void ServiceServer::handle_submit(TcpConn& conn, const SubmitRequest& req) {
  const double t0 = epoch_.seconds();
  count("service.submissions");

  // Build and validate the job before touching any shared state, so a bad
  // deck costs one error line, not a queue slot.
  campaign::Job job;
  job.overrides = req.overrides;
  job.steps = req.steps > 0 ? req.steps : spec_->steps();
  job.probe_plane = spec_->probe_plane();
  job.warmup = spec_->warmup();
  job.deck_text = req.deck_text;
  try {
    const std::string fingerprint =
        req.deck_text.empty()
            ? spec_->fingerprint()
            : sim::DeckSource::from_text(req.deck_text).canonical_text();
    job.id = campaign::job_id(fingerprint, job.overrides, job.steps);
    std::string label;
    for (const sim::DeckOverride& ov : job.overrides) {
      if (!label.empty()) label += ",";
      label += ov.spec();
    }
    job.label = label.empty() ? "base" : label;
    (void)spec_->make_deck(job);  // full validation: unknown keys throw here
  } catch (const Error& e) {
    count("service.invalid");
    conn.send_line(make_error_response(e.what()).dump());
    return;
  }

  // Ledger cache: a done record with this content hash answers instantly.
  if (const auto cached = results_->find(job.id);
      cached && cached->status == "done") {
    count("service.cache_hits");
    observe_latency("service.latency.cache", epoch_.seconds() - t0);
    conn.send_line(make_result_response(*cached, "cache").dump());
    return;
  }

  // Every reply below is BUILT under mu_ but SENT after unlocking: send()
  // blocks without bound on a peer that stops reading, and a blocked send
  // under the global lock would wedge the dispatcher, every other session,
  // the executor's result path, and drain() itself.
  bool fresh = false;
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = inflight_.find(job.id);
  if (it != inflight_.end() && !it->second.terminal) {
    // Duplicate of an accepted-but-unfinished job: attach, don't re-run.
    count("service.coalesced");
  } else if (draining_) {
    lock.unlock();
    count("service.rejections");
    conn.send_line(
        make_rejected_response(job.id, "server draining", 5.0).dump());
    return;
  } else {
    ScheduledJob sj;
    sj.job = job;
    sj.client = req.client;
    sj.priority = req.priority;
    if (!scheduler_.enqueue(std::move(sj))) {
      const double retry = std::max(
          1.0, ewma_job_seconds_ * double(scheduler_.depth()) /
                   double(std::max(1, executor_->effective_workers())));
      lock.unlock();
      count("service.rejections");
      conn.send_line(
          make_rejected_response(job.id, "queue full", retry).dump());
      return;
    }
    fresh = true;
    // find-or-create rather than overwrite: a resubmit of a just-failed id
    // may race waiters still waking on the old terminal entry, and their
    // registration count must survive into the new run.
    Inflight& inf = inflight_[job.id];
    inf.terminal = false;
    inf.result = JobResult{};
    inf.accept_seconds = t0;
    inf.client = req.client;
    inf.priority = req.priority;
    if (metrics_ != nullptr) {
      std::lock_guard<std::mutex> mlock(registry_mu_);
      metrics_->gauge("service.queue_depth").set(double(scheduler_.depth()));
      metrics_->gauge("service.inflight").set(double(inflight_.size()));
    }
    fdr(FdrKind::kServiceAccept, 0, std::uint64_t(scheduler_.depth()));
    cv_.notify_all();  // wake the dispatcher
  }

  if (!req.wait) {
    const int depth = scheduler_.depth();
    lock.unlock();
    conn.send_line(make_accepted_response(job.id, depth).dump());
    return;
  }

  // Register as a waiter (keeps the entry alive until we read the result),
  // then block until the job reaches a terminal state (result arrives via
  // handle_result) or the drain finishes without it having started.
  if (const auto w = inflight_.find(job.id); w != inflight_.end())
    ++w->second.waiters;
  cv_.wait(lock, [&] {
    const auto w = inflight_.find(job.id);
    return w == inflight_.end() || w->second.terminal || drain_complete_;
  });
  bool have_result = false;
  JobResult r;
  if (const auto done = inflight_.find(job.id); done != inflight_.end()) {
    --done->second.waiters;
    if (done->second.terminal) {
      have_result = true;
      r = done->second.result;
      if (done->second.waiters == 0) {
        inflight_.erase(done);  // the ledger serves any later duplicate
        if (metrics_ != nullptr) {
          std::lock_guard<std::mutex> mlock(registry_mu_);
          metrics_->gauge("service.inflight").set(double(inflight_.size()));
        }
      }
    }
  }
  lock.unlock();
  if (have_result) {
    conn.send_line(
        make_result_response(r, fresh ? "fresh" : "coalesced").dump());
    return;
  }
  // Drained before the job ran: it is persisted, not lost — tell the client
  // to come back after the restart.
  conn.send_line(make_rejected_response(
                     job.id, "server draining; job persisted for restart", 5.0)
                     .dump());
}

// -- dispatcher ---------------------------------------------------------------

void ServiceServer::dispatch_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // A worker is free when the executor's queue holds fewer live jobs
    // than it has workers — only then does handing over the next job start
    // it immediately, keeping ordering decisions in the FairScheduler.
    auto free_workers = [&] {
      const auto c = executor_->queue_counts();
      return executor_->effective_workers() - (c.pending + c.running);
    };
    cv_.wait(lock, [&] {
      return draining_ || (scheduler_.depth() > 0 && free_workers() > 0);
    });
    if (draining_) return;
    auto next = scheduler_.next();
    if (!next) continue;
    fdr(FdrKind::kServiceDispatch);
    if (metrics_ != nullptr) {
      std::lock_guard<std::mutex> mlock(registry_mu_);
      metrics_->gauge("service.queue_depth").set(double(scheduler_.depth()));
    }
    executor_->submit(next->job, next->resume_step, next->resume_prefix);
  }
}

// Runs on the worker thread that finished the job (ExecutorConfig::
// on_result). Every terminal job both resolves its waiters and frees a
// worker slot, so one notify_all serves the session threads and the
// dispatcher alike.
void ServiceServer::handle_result(const JobResult& r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Inflight& inf = inflight_[r.id];
    inf.terminal = true;
    inf.result = r;
    const double latency = epoch_.seconds() - inf.accept_seconds;
    ewma_job_seconds_ = 0.8 * ewma_job_seconds_ + 0.2 * std::max(r.seconds, 1e-3);
    // The executor appended this record to the ledger before calling us, so
    // the entry only has to outlive its registered waiters: with none, drop
    // it now — inflight_ tracks actual in-flight work, not every id ever
    // seen, and the gauge below stays meaningful in a long-lived daemon.
    if (inf.waiters == 0) inflight_.erase(r.id);
    if (metrics_ != nullptr) {
      std::lock_guard<std::mutex> mlock(registry_mu_);
      metrics_->counter(r.status == "done" ? "service.completed"
                                           : "service.failed")
          .add(1.0);
      metrics_->histogram("service.latency.job", 0, 1, 1).add(latency);
      metrics_->gauge("service.inflight").set(double(inflight_.size()));
    }
    fdr(FdrKind::kServiceComplete, r.status == "done" ? 0 : 1);
  }
  cv_.notify_all();
}

// -- status / metrics ---------------------------------------------------------

telemetry::Json ServiceServer::status_json() {
  Json j = Json::object();
  j.set("type", Json::string("status"));
  const auto c = executor_->queue_counts();
  std::lock_guard<std::mutex> lock(mu_);
  j.set("queued", Json::number(std::int64_t{scheduler_.depth()}));
  j.set("dispatched_pending", Json::number(std::int64_t{c.pending}));
  j.set("running", Json::number(std::int64_t{c.running}));
  j.set("done", Json::number(std::int64_t{c.done}));
  j.set("failed", Json::number(std::int64_t{c.failed}));
  j.set("inflight", Json::number(std::int64_t(inflight_.size())));
  j.set("workers", Json::number(std::int64_t{executor_->effective_workers()}));
  j.set("draining", Json::boolean(draining_));
  return j;
}

telemetry::Json ServiceServer::metrics_json() {
  Json j = Json::object();
  j.set("type", Json::string("metrics"));
  Json vals = Json::object();
  if (metrics_ != nullptr) {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const telemetry::ScalarMetric& m : metrics_->scalars())
      vals.set(m.name, Json::number(m.value));
    for (const char* h : {"service.latency.cache", "service.latency.job"}) {
      if (const auto* hist = metrics_->find_histogram(h);
          hist != nullptr && hist->total_count() > 0) {
        vals.set(std::string(h) + ".p50", Json::number(hist->quantile(0.5)));
        vals.set(std::string(h) + ".p99", Json::number(hist->quantile(0.99)));
      }
    }
  }
  j.set("values", std::move(vals));
  return j;
}

// -- drain / persistence ------------------------------------------------------

void ServiceServer::drain() {
  if (!started_ || drained_) return;
  drained_ = true;
  MV_LOG_INFO << "service: draining";
  stopping_.store(true, std::memory_order_relaxed);
  listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();

  // Let in-flight attempts reach their natural end (checkpoint-sliced ones
  // land back as pending leases with resume state).
  std::vector<campaign::Lease> pending = executor_->stop();

  std::vector<QueuedJob> queued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ScheduledJob& sj : scheduler_.drain()) {
      QueuedJob q;
      q.job = std::move(sj.job);
      q.client = std::move(sj.client);
      q.priority = sj.priority;
      q.resume_step = sj.resume_step;
      q.resume_prefix = std::move(sj.resume_prefix);
      queued.push_back(std::move(q));
    }
    for (campaign::Lease& lease : pending) {
      QueuedJob q;
      q.job = std::move(lease.job);
      q.resume_step = lease.resume_step;
      q.resume_prefix = std::move(lease.resume_prefix);
      if (const auto it = inflight_.find(q.job.id); it != inflight_.end()) {
        q.client = it->second.client;
        q.priority = it->second.priority;
      }
      queued.push_back(std::move(q));
    }
    drain_complete_ = true;
  }
  cv_.notify_all();  // waiters for unfinished jobs give up with `rejected`

  persist_queue_state(queued);
  persisted_jobs_ = int(queued.size());
  // The freshly persisted file supersedes any backlog start() set aside:
  // every job in the marker either completed into the ledger or was just
  // re-persisted above, so the marker's crash-recovery duty is over.
  if (!config_.queue_state_path.empty())
    std::remove((config_.queue_state_path + ".consumed").c_str());

  std::vector<SessionSlot> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (SessionSlot& s : sessions)
    if (s.thread.joinable()) s.thread.join();
  MV_LOG_INFO << "service: drained (" << queued.size()
              << " pending jobs persisted)";
}

void ServiceServer::persist_queue_state(const std::vector<QueuedJob>& queued) {
  if (config_.queue_state_path.empty()) return;
  std::ofstream out(config_.queue_state_path, std::ios::trunc);
  MV_REQUIRE(out.good(),
             "cannot write queue state: " << config_.queue_state_path);
  for (const QueuedJob& q : queued) out << queued_job_to_json(q).dump() << "\n";
  out.flush();
  MV_REQUIRE(out.good(),
             "queue state write failed: " << config_.queue_state_path);
}

void ServiceServer::load_queue_state() {
  if (config_.queue_state_path.empty()) return;
  // Move the backlog aside to a consumed marker instead of truncating it:
  // truncation would make a crash (as opposed to a clean drain) after
  // restart silently lose every reloaded job. The marker stays on disk
  // until the next drain() re-persists whatever is still pending — and if
  // the daemon crashes before that, the next boot finds the marker (no
  // fresh queue-state file exists, so the rename below fails with ENOENT)
  // and reloads from it, skipping jobs the ledger already shows done.
  const std::string consumed = config_.queue_state_path + ".consumed";
  std::string src = consumed;
  if (std::rename(config_.queue_state_path.c_str(), consumed.c_str()) != 0 &&
      errno != ENOENT) {
    MV_LOG_WARN << "service: cannot set queue state aside ("
                << std::strerror(errno) << "); loading it in place";
    src = config_.queue_state_path;
  }
  std::ifstream in(src);
  if (!in.good()) return;  // first boot: nothing persisted yet
  std::string line;
  int loaded = 0, line_no = 0, already_done = 0;
  std::lock_guard<std::mutex> lock(mu_);
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    QueuedJob q;
    try {
      q = queued_job_from_json(Json::parse(line));
    } catch (const std::exception& e) {
      // A corrupt or partial record (e.g. a crash mid-persist) costs that
      // one job, not the whole backlog — and never the daemon's boot.
      MV_LOG_WARN << "service: skipping unparseable queue-state record at "
                  << src << ":" << line_no << ": " << e.what();
      continue;
    }
    // Crash-after-restart replay: a reloaded job may have completed before
    // the crash, in which case the ledger already serves it.
    if (const auto cached = results_->find(q.job.id);
        cached && cached->status == "done") {
      ++already_done;
      continue;
    }
    ScheduledJob sj;
    Inflight inf;
    inf.accept_seconds = epoch_.seconds();
    inf.client = q.client;
    inf.priority = q.priority;
    inflight_[q.job.id] = std::move(inf);
    sj.job = std::move(q.job);
    sj.client = std::move(q.client);
    sj.priority = q.priority;
    sj.resume_step = q.resume_step;
    sj.resume_prefix = std::move(q.resume_prefix);
    if (!scheduler_.enqueue(std::move(sj))) {
      // Cannot happen when max_queued matches the previous run's bound,
      // but a shrunk bound must not silently drop accepted work.
      MV_LOG_WARN << "service: queue state overflows max_queued; job "
                  << "dropped from restart backlog";
      continue;
    }
    ++loaded;
  }
  if (loaded > 0 || already_done > 0)
    MV_LOG_INFO << "service: reloaded " << loaded << " persisted jobs from "
                << src << " (" << already_done << " already in the ledger)";
}

}  // namespace minivpic::service
