// Wire protocol of the campaign service: line-delimited JSON, one request
// object per line, one response object per line, over a plain TCP stream.
// The full grammar lives in docs/SERVICE.md; this header is the parse /
// serialize layer shared by the server, the client library, and the tests —
// a malformed request throws minivpic::Error with a reason the server
// echoes back verbatim in its `error` response.
//
// Request types:   submit | status | metrics | ping
// Response types:  result | accepted | rejected | status | metrics | pong
//                  | error
//
// The queue-state records at the bottom are the drain/restart persistence
// format: one queued_job NDJSON line per job the daemon accepted but had
// not finished when SIGTERM arrived, carrying enough (deck text, overrides,
// steps, client, priority, resume checkpoint) to resubmit after restart.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/results.hpp"
#include "campaign/spec.hpp"
#include "sim/deck_io.hpp"
#include "telemetry/json.hpp"

namespace minivpic::service {

/// Parsed `submit` request fields.
struct SubmitRequest {
  std::string deck_text;  ///< empty = the server's base deck
  std::vector<sim::DeckOverride> overrides;
  int steps = -1;         ///< -1 = the server's default step count
  std::string client = "anon";
  double priority = 1.0;  ///< fair-share weight (> 0)
  bool wait = true;       ///< false: respond `accepted` instead of blocking
};

struct Request {
  enum class Type { kSubmit, kStatus, kMetrics, kPing };
  Type type = Type::kPing;
  SubmitRequest submit;  ///< valid when type == kSubmit
};

/// Parses one request line. Throws minivpic::Error (with a client-safe
/// message) on malformed JSON, an unknown type, or bad field shapes.
Request parse_request(const std::string& line);

// -- response builders (server side) ----------------------------------------

/// `result`: a terminal job record. `source` is "fresh" (this submission
/// ran the job), "cache" (served from the ledger), or "coalesced" (attached
/// to an already-running duplicate).
telemetry::Json make_result_response(const campaign::JobResult& r,
                                     const std::string& source);

/// `accepted`: submit with wait=false — the job is queued, poll the ledger.
telemetry::Json make_accepted_response(const std::string& id, int queue_depth);

/// `rejected`: admission control (429 analogue). `retry_after_seconds` is
/// the server's estimate of when capacity frees up.
telemetry::Json make_rejected_response(const std::string& id,
                                       const std::string& reason,
                                       double retry_after_seconds);

telemetry::Json make_error_response(const std::string& message);
telemetry::Json make_pong_response();

// -- queue-state persistence (drain/restart) ---------------------------------

/// One accepted-but-unfinished job as persisted at drain.
struct QueuedJob {
  campaign::Job job;
  std::string client = "anon";
  double priority = 1.0;
  std::int64_t resume_step = -1;   ///< checkpoint-sliced jobs resume here
  std::string resume_prefix;
};

telemetry::Json queued_job_to_json(const QueuedJob& q);
QueuedJob queued_job_from_json(const telemetry::Json& j);

}  // namespace minivpic::service
