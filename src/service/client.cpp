#include "service/client.hpp"

#include "util/error.hpp"

namespace minivpic::service {

using telemetry::Json;

ServiceClient::ServiceClient(int port, double timeout_seconds)
    : conn_(std::make_unique<TcpConn>(connect_fd(port, timeout_seconds))),
      timeout_(timeout_seconds) {}

Json ServiceClient::request(const Json& req) {
  MV_REQUIRE(conn_->send_line(req.dump()), "service connection lost on send");
  std::string line;
  const ReadStatus rs = conn_->read_line(&line, timeout_, 16u << 20);
  MV_REQUIRE(rs == ReadStatus::kLine,
             "service response: " << read_status_name(rs));
  return Json::parse(line);
}

Json ServiceClient::submit(const std::string& deck_text,
                           const std::vector<std::string>& override_specs,
                           int steps, const std::string& client_name,
                           double priority, bool wait) {
  Json req = Json::object();
  req.set("type", Json::string("submit"));
  if (!deck_text.empty()) req.set("deck", Json::string(deck_text));
  if (!override_specs.empty()) {
    Json ovs = Json::array();
    for (const std::string& spec : override_specs)
      ovs.push_back(Json::string(spec));
    req.set("overrides", std::move(ovs));
  }
  if (steps > 0) req.set("steps", Json::number(std::int64_t{steps}));
  req.set("client", Json::string(client_name));
  req.set("priority", Json::number(priority));
  req.set("wait", Json::boolean(wait));
  return request(req);
}

Json ServiceClient::status() {
  Json req = Json::object();
  req.set("type", Json::string("status"));
  return request(req);
}

Json ServiceClient::metrics() {
  Json req = Json::object();
  req.set("type", Json::string("metrics"));
  return request(req);
}

bool ServiceClient::ping() {
  Json req = Json::object();
  req.set("type", Json::string("ping"));
  return request(req).at("type").as_string() == "pong";
}

}  // namespace minivpic::service
