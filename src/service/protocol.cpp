#include "service/protocol.hpp"

#include "campaign/results.hpp"
#include "util/error.hpp"

namespace minivpic::service {

using telemetry::Json;

Request parse_request(const std::string& line) {
  const Json j = Json::parse(line);  // throws with a byte offset
  MV_REQUIRE(j.is_object(), "request must be a JSON object");
  const Json* type = j.find("type");
  MV_REQUIRE(type != nullptr && type->is_string(),
             "request needs a string 'type' field");
  Request req;
  const std::string& t = type->as_string();
  if (t == "ping") {
    req.type = Request::Type::kPing;
    return req;
  }
  if (t == "status") {
    req.type = Request::Type::kStatus;
    return req;
  }
  if (t == "metrics") {
    req.type = Request::Type::kMetrics;
    return req;
  }
  MV_REQUIRE(t == "submit", "unknown request type '" << t << "'");
  req.type = Request::Type::kSubmit;
  if (const Json* deck = j.find("deck")) {
    MV_REQUIRE(deck->is_string(), "submit 'deck' must be a string");
    req.submit.deck_text = deck->as_string();
  }
  if (const Json* ovs = j.find("overrides")) {
    MV_REQUIRE(ovs->is_array(), "submit 'overrides' must be an array");
    for (std::size_t i = 0; i < ovs->size(); ++i) {
      MV_REQUIRE(ovs->at(i).is_string(),
                 "submit override " << i << " must be a 'section.key=value' "
                                       "string");
      req.submit.overrides.push_back(
          sim::parse_override(ovs->at(i).as_string()));
    }
  }
  if (const Json* steps = j.find("steps")) {
    MV_REQUIRE(steps->is_number(), "submit 'steps' must be a number");
    req.submit.steps = int(steps->as_number());
    MV_REQUIRE(req.submit.steps > 0, "submit 'steps' must be positive");
  }
  if (const Json* client = j.find("client")) {
    MV_REQUIRE(client->is_string(), "submit 'client' must be a string");
    MV_REQUIRE(!client->as_string().empty(), "submit 'client' must be "
                                             "non-empty");
    req.submit.client = client->as_string();
  }
  if (const Json* prio = j.find("priority")) {
    MV_REQUIRE(prio->is_number(), "submit 'priority' must be a number");
    req.submit.priority = prio->as_number();
    // Bounded on both sides: a vanishingly small priority would make the
    // DRR scheduler spin ~cost/(quantum*priority) rounds before the flow
    // affords its head job — an unbounded loop under the server's lock.
    MV_REQUIRE(req.submit.priority >= 0.01 && req.submit.priority <= 100.0,
               "submit 'priority' must be in [0.01, 100]");
  }
  if (const Json* wait = j.find("wait")) req.submit.wait = wait->as_bool();
  return req;
}

Json make_result_response(const campaign::JobResult& r,
                          const std::string& source) {
  Json j = Json::object();
  j.set("type", Json::string("result"));
  j.set("id", Json::string(r.id));
  j.set("source", Json::string(source));
  j.set("result", campaign::result_to_json(r));
  return j;
}

Json make_accepted_response(const std::string& id, int queue_depth) {
  Json j = Json::object();
  j.set("type", Json::string("accepted"));
  j.set("id", Json::string(id));
  j.set("queue_depth", Json::number(std::int64_t{queue_depth}));
  return j;
}

Json make_rejected_response(const std::string& id, const std::string& reason,
                            double retry_after_seconds) {
  Json j = Json::object();
  j.set("type", Json::string("rejected"));
  if (!id.empty()) j.set("id", Json::string(id));
  j.set("reason", Json::string(reason));
  j.set("retry_after_seconds", Json::number(retry_after_seconds));
  return j;
}

Json make_error_response(const std::string& message) {
  Json j = Json::object();
  j.set("type", Json::string("error"));
  j.set("message", Json::string(message));
  return j;
}

Json make_pong_response() {
  Json j = Json::object();
  j.set("type", Json::string("pong"));
  return j;
}

Json queued_job_to_json(const QueuedJob& q) {
  Json j = Json::object();
  j.set("type", Json::string("queued_job"));
  j.set("id", Json::string(q.job.id));
  j.set("label", Json::string(q.job.label));
  if (!q.job.deck_text.empty()) j.set("deck", Json::string(q.job.deck_text));
  Json ovs = Json::array();
  for (const sim::DeckOverride& ov : q.job.overrides)
    ovs.push_back(Json::string(ov.spec()));
  j.set("overrides", std::move(ovs));
  j.set("steps", Json::number(std::int64_t{q.job.steps}));
  j.set("probe_plane", Json::number(std::int64_t{q.job.probe_plane}));
  j.set("warmup", Json::number(q.job.warmup));
  j.set("client", Json::string(q.client));
  j.set("priority", Json::number(q.priority));
  if (q.resume_step >= 0) {
    j.set("resume_step", Json::number(q.resume_step));
    j.set("resume_prefix", Json::string(q.resume_prefix));
  }
  return j;
}

QueuedJob queued_job_from_json(const Json& j) {
  MV_REQUIRE(j.is_object() && j.at("type").as_string() == "queued_job",
             "queue-state record: not a queued_job object");
  QueuedJob q;
  q.job.id = j.at("id").as_string();
  q.job.label = j.at("label").as_string();
  if (const Json* deck = j.find("deck")) q.job.deck_text = deck->as_string();
  const Json& ovs = j.at("overrides");
  for (std::size_t i = 0; i < ovs.size(); ++i)
    q.job.overrides.push_back(sim::parse_override(ovs.at(i).as_string()));
  q.job.steps = int(j.at("steps").as_number());
  q.job.probe_plane = int(j.at("probe_plane").as_number());
  q.job.warmup = j.at("warmup").as_number();
  q.client = j.at("client").as_string();
  q.priority = j.at("priority").as_number();
  if (const Json* rs = j.find("resume_step")) {
    q.resume_step = std::int64_t(rs->as_number());
    q.resume_prefix = j.at("resume_prefix").as_string();
  }
  return q;
}

}  // namespace minivpic::service
