// Minimal --key=value / --flag command-line parser for examples and benches.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace minivpic {

/// Parses `--key=value`, `--key value` and boolean `--flag` arguments.
/// Positional arguments are collected in order. Unknown keys are kept so the
/// caller can reject or ignore them. A repeated option keeps every
/// occurrence (get_all), with the single-value accessors returning the last
/// one — `--set a=1 --set b=2` style flags need the full list.
class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Every value given for `key`, in command-line order (empty when absent).
  std::vector<std::string> get_all(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::map<std::string, std::string>& options() const { return options_; }

  /// Throws minivpic::Error if any option key is not in `allowed`.
  void check_known(const std::vector<std::string>& allowed) const;

 private:
  std::map<std::string, std::string> options_;  ///< last occurrence per key
  std::vector<std::pair<std::string, std::string>> ordered_;  ///< all
  std::vector<std::string> positional_;
};

}  // namespace minivpic
