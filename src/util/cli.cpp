#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"

namespace minivpic {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    std::string key, value;
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      key = arg;
      value = argv[++i];
    } else {
      key = arg;
      value = "true";
    }
    options_[key] = value;
    ordered_.emplace_back(std::move(key), std::move(value));
  }
}

bool Args::has(const std::string& key) const { return options_.count(key) != 0; }

std::string Args::get(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

long long Args::get_int(const std::string& key, long long fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  MV_REQUIRE(end != nullptr && *end == '\0',
             "option --" << key << " is not an integer: " << it->second);
  return v;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  MV_REQUIRE(end != nullptr && *end == '\0',
             "option --" << key << " is not a number: " << it->second);
  return v;
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  MV_REQUIRE(false, "option --" << key << " is not a boolean: " << v);
  return fallback;
}

std::vector<std::string> Args::get_all(const std::string& key) const {
  std::vector<std::string> values;
  for (const auto& [k, v] : ordered_)
    if (k == key) values.push_back(v);
  return values;
}

void Args::check_known(const std::vector<std::string>& allowed) const {
  for (const auto& [key, value] : options_) {
    (void)value;
    MV_REQUIRE(std::find(allowed.begin(), allowed.end(), key) != allowed.end(),
               "unknown option --" << key);
  }
}

}  // namespace minivpic
