// Wall-clock timing for kernels and whole-step cost breakdowns.
#pragma once

#include <chrono>
#include <cstdint>

namespace minivpic {

/// Simple steady-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulating timer for repeated kernel invocations (cost breakdowns).
class Stopwatch {
 public:
  void start() { t_.reset(); running_ = true; }

  void stop() {
    if (!running_) return;
    total_ += t_.seconds();
    ++laps_;
    running_ = false;
  }

  double total_seconds() const { return total_; }
  std::uint64_t laps() const { return laps_; }
  double mean_seconds() const { return laps_ ? total_ / double(laps_) : 0.0; }

  void reset() {
    total_ = 0.0;
    laps_ = 0;
    running_ = false;
  }

 private:
  Timer t_;
  double total_ = 0.0;
  std::uint64_t laps_ = 0;
  bool running_ = false;
};

/// RAII lap guard: times a scope into a Stopwatch.
class ScopedLap {
 public:
  explicit ScopedLap(Stopwatch& sw) : sw_(sw) { sw_.start(); }
  ~ScopedLap() { sw_.stop(); }
  ScopedLap(const ScopedLap&) = delete;
  ScopedLap& operator=(const ScopedLap&) = delete;

 private:
  Stopwatch& sw_;
};

}  // namespace minivpic
