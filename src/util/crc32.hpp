// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for checkpoint integrity.
//
// Every checkpoint section is length-prefixed and closed by the CRC of its
// payload, so a truncated, bit-flipped, or partially written file is
// detected at restore time instead of silently poisoning a resumed run.
// Incremental interface so multi-gigabyte particle sections can be
// checksummed while streaming.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace minivpic {

/// Incremental CRC-32 accumulator.
class Crc32 {
 public:
  /// Feeds `bytes` more bytes into the running checksum.
  void update(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < bytes; ++i)
      c = table()[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    state_ = c;
  }

  /// Checksum of everything fed so far.
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  void reset() { state_ = 0xFFFFFFFFu; }

  /// One-shot convenience.
  static std::uint32_t of(const void* data, std::size_t bytes) {
    Crc32 c;
    c.update(data, bytes);
    return c.value();
  }

 private:
  static const std::array<std::uint32_t, 256>& table() {
    static const std::array<std::uint32_t, 256> t = [] {
      std::array<std::uint32_t, 256> out{};
      for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k)
          c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
        out[n] = c;
      }
      return out;
    }();
    return t;
  }

  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace minivpic
