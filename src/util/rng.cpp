#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace minivpic {

namespace {

constexpr std::uint64_t kWeyl = 0x9E3779B97F4A7C15ull;

constexpr std::uint64_t splitmix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t hash_mix(std::uint64_t x) noexcept { return splitmix(x + kWeyl); }

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return splitmix(a + kWeyl * (b + 1));
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept
    : base_(hash_combine(seed, stream)) {}

std::uint64_t Rng::next_u64() noexcept {
  return splitmix(base_ + kWeyl * ++counter_);
}

double Rng::uniform() noexcept {
  // 53 mantissa bits -> uniform double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  // Rejection-free multiply-shift (Lemire) is overkill for loading; a simple
  // 128-bit scaled multiply keeps bias < 2^-64 which is negligible here.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
}

double Rng::normal() noexcept {
  // Box–Muller; draw u1 away from zero so log() is finite.
  const double u1 = (static_cast<double>(next_u64() >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

double Rng::exponential() noexcept {
  const double u = (static_cast<double>(next_u64() >> 11) + 0.5) * 0x1.0p-53;
  return -std::log(u);
}

}  // namespace minivpic
