// Structured result tables: benches print the rows/series the paper's
// tables and figures report, aligned for the console and optionally dumped
// as CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace minivpic {

/// One table cell.
using Cell = std::variant<std::string, double, long long>;

/// Column-typed result table.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Appends one row; cell count must equal column count.
  void add_row(std::vector<Cell> cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Cell>& row(std::size_t i) const { return rows_.at(i); }

  /// Pretty-prints with aligned columns and a title banner.
  void print(std::ostream& os, const std::string& title = {}) const;

  /// Writes RFC-4180-ish CSV (quotes fields containing separators).
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

  /// Formats one cell as text (doubles use %.6g).
  static std::string format(const Cell& cell);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace minivpic
