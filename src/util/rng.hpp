// Counter-based pseudo-random number generation for particle loading.
//
// PIC initial conditions must be reproducible independent of domain
// decomposition: particle k must get the same random draws whether it is
// loaded by rank 0 of 1 or rank 7 of 8. A counter-based generator gives
// random access by (stream, counter) with no sequential state to split.
// The core permutation is SplitMix64, whose output is a bijective mix of a
// Weyl-sequence counter — well tested statistically and trivially seekable.
#pragma once

#include <array>
#include <cstdint>

namespace minivpic {

/// Counter-based RNG: independent streams, O(1) seek, 64-bit output.
class Rng {
 public:
  /// `seed` selects the experiment; `stream` the independent substream
  /// (e.g. one per species, or per global particle id).
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  /// Re-positions the generator at an absolute draw index.
  void seek(std::uint64_t counter) noexcept { counter_ = counter; }
  std::uint64_t counter() const noexcept { return counter_; }

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0,1).
  double uniform() noexcept;

  /// Uniform in [lo,hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0,n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Standard normal variate (Box–Muller on two fresh draws; no caching so
  /// the draw count per call is deterministic).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double sigma) noexcept;

  /// Maxwell–Jüttner-free non-relativistic Maxwellian momentum component:
  /// normal with thermal spread `uth` (= sqrt(T/mc^2) in code units).
  double maxwellian(double uth) noexcept { return normal(0.0, uth); }

  /// Exponential variate with unit mean.
  double exponential() noexcept;

  // Convenience for UniformRandomBitGenerator compatibility.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() noexcept { return next_u64(); }

 private:
  std::uint64_t base_;
  std::uint64_t counter_ = 0;
};

/// Deterministic 64-bit hash mix (the SplitMix64 finalizer). Used to derive
/// stream keys from (seed, ids) without correlation.
std::uint64_t hash_mix(std::uint64_t x) noexcept;

/// Combines values into one well-mixed key.
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace minivpic
