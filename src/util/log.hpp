// Leveled logging. Kept deliberately tiny: benches and simulations print
// structured tables through util/csv.hpp; the log is for diagnostics only.
#pragma once

#include <sstream>
#include <string>

namespace minivpic {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one line to stderr with a level prefix (thread-safe).
void log_message(LogLevel level, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace minivpic

#define MV_LOG_DEBUG ::minivpic::detail::LogLine(::minivpic::LogLevel::kDebug)
#define MV_LOG_INFO ::minivpic::detail::LogLine(::minivpic::LogLevel::kInfo)
#define MV_LOG_WARN ::minivpic::detail::LogLine(::minivpic::LogLevel::kWarn)
#define MV_LOG_ERROR ::minivpic::detail::LogLine(::minivpic::LogLevel::kError)
