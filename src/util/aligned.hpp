// Cache-line / SIMD aligned storage for hot arrays.
//
// VPIC keeps every per-cell and per-particle array aligned so the inner
// loops stream predictably (Core Guidelines Per.16/Per.19). AlignedBuffer is
// the single owner of such storage; views are handed out as raw pointers or
// std::span, never as owning pointers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <utility>

#include "util/error.hpp"

namespace minivpic {

/// Default alignment for hot arrays: one x86 cache line, also enough for
/// any SSE/AVX vector width we might compile to.
inline constexpr std::size_t kHotAlignment = 64;

/// Fixed-capacity, aligned, zero-initialised array of trivially copyable T.
///
/// Intentionally minimal: no push_back-style growth, because PIC arrays are
/// sized once per deck and growth in an inner loop would be a bug.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer is for POD-style hot data only");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n, std::size_t alignment = kHotAlignment)
      : size_(n), alignment_(alignment) {
    MV_ASSERT((alignment & (alignment - 1)) == 0);
    if (n == 0) return;
    const std::size_t bytes = round_up(n * sizeof(T), alignment);
    data_ = static_cast<T*>(std::aligned_alloc(alignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    std::fill_n(data_, n, T{});
  }

  AlignedBuffer(const AlignedBuffer& other)
      : AlignedBuffer(other.size_, other.alignment_) {
    if (size_ != 0) std::copy_n(other.data_, size_, data_);
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(alignment_, other.alignment_);
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  std::span<T> span() noexcept { return {data_, size_}; }
  std::span<const T> span() const noexcept { return {data_, size_}; }

  /// Sets every element back to T{}.
  void zero() noexcept {
    if (size_ != 0) std::fill_n(data_, size_, T{});
  }

 private:
  static std::size_t round_up(std::size_t v, std::size_t a) {
    return (v + a - 1) / a * a;
  }

  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t alignment_ = kHotAlignment;
};

}  // namespace minivpic
