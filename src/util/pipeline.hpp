// Intra-rank pipeline layer: a small persistent thread pool in the shape of
// VPIC's pipeline dispatcher.
//
// The paper's inner-loop rate comes from running the particle advance on
// many pipelines per node (one per SPE on Roadrunner), each depositing into
// a private accumulator block that is reduced once per step. This class is
// the portable substrate for that: N pipelines, dispatched with one job
// index each, joined with a barrier. Pipeline 0 always runs on the calling
// thread, so a 1-pipeline dispatch is exactly the serial reference path
// (no threads touched, no scheduling jitter in benchmarks).
//
// The pool is reusable across steps: workers park on a condition variable
// between dispatches instead of being re-spawned, so per-step dispatch
// overhead is a couple of microseconds, not a thread launch.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace minivpic {

class Pipeline {
 public:
  /// Creates a pool of `n_pipelines` (>= 1). One of them is the calling
  /// thread; n_pipelines - 1 workers are spawned and parked.
  explicit Pipeline(int n_pipelines = 1);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  int size() const { return n_; }

  /// Runs job(p) for every pipeline p in [0, size()) concurrently and
  /// blocks until all pipelines finish. job(0) runs on the calling thread.
  /// If any pipeline throws, the first exception is rethrown here after
  /// the barrier (the others are dropped).
  void dispatch(const std::function<void(int)>& job);

  /// Contiguous slice of `count` items owned by pipeline `p` of `n`. The
  /// partition is static and deterministic: slice sizes differ by at most
  /// one and earlier pipelines get the larger slices, so concatenating the
  /// slices in pipeline order reproduces the original item order exactly.
  struct Range {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t size() const { return end - begin; }
  };
  static Range partition(std::size_t count, int n_pipelines, int pipeline);

  /// Number of hardware threads (>= 1 even when the runtime reports 0).
  static int hardware_pipelines();

  /// Resolves a user-facing pipeline count: values >= 1 pass through,
  /// 0 or negative mean "one per hardware thread".
  static int resolve(int requested);

 private:
  void worker(int pipeline);
  void run_one(int pipeline, const std::function<void(int)>& job);

  int n_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace minivpic
