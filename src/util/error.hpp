// Error handling primitives shared by every minivpic module.
//
// Recoverable misuse (bad deck parameters, malformed files, protocol misuse
// of the vmpi runtime) throws minivpic::Error so tests can assert on it.
// Internal invariant violations use MV_ASSERT, which is kept enabled in all
// build types: a PIC step that silently corrupts a particle list is far more
// expensive to debug than the branch is to execute.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace minivpic {

/// Exception type for all recoverable minivpic errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const std::string& msg,
                              const std::source_location& loc) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << loc.file_name() << ':'
     << loc.line();
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace minivpic

/// Invariant check, enabled in every build type. Throws minivpic::Error.
#define MV_ASSERT(expr)                                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::minivpic::detail::fail("assertion", #expr, {},                     \
                               std::source_location::current());            \
  } while (0)

/// Invariant check with a formatted message streamed after the expression.
#define MV_ASSERT_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream mv_assert_os;                                      \
      mv_assert_os << msg;                                                  \
      ::minivpic::detail::fail("assertion", #expr, mv_assert_os.str(),      \
                               std::source_location::current());            \
    }                                                                       \
  } while (0)

/// Validates user-supplied input (deck parameters, CLI values, file data).
#define MV_REQUIRE(expr, msg)                                               \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream mv_require_os;                                     \
      mv_require_os << msg;                                                 \
      ::minivpic::detail::fail("requirement", #expr, mv_require_os.str(),   \
                               std::source_location::current());            \
    }                                                                       \
  } while (0)
