// A persistent single-task worker thread: the comm side of the overlap
// scheduler (docs/OVERLAP.md).
//
// The overlapped step loop hands the asynchronous migration exchange to one
// of these while the interior push runs on the Pipeline pool. The contract
// is deliberately minimal — submit() one task, wait() for it — because the
// scheduler needs a happens-before edge, not a queue: everything the task
// wrote is visible to the caller after wait() returns, and an exception the
// task threw (a CommError from a fault mid-exchange, say) is rethrown there,
// on the caller's thread, where the recovery machinery expects it.
//
// Like Pipeline, the thread is spawned once and parked between tasks, so a
// per-step submit costs a couple of microseconds, not a thread launch.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

namespace minivpic::util {

class Worker {
 public:
  Worker();
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Hands `task` to the worker thread. At most one task may be in flight:
  /// submitting while busy is a programming error.
  void submit(std::function<void()> task);

  /// Blocks until the in-flight task (if any) finishes; rethrows the
  /// exception it threw, if any. Establishes a happens-before edge with
  /// everything the task wrote. Idempotent when idle.
  void wait();

  /// True when no task is in flight (wait() would not block).
  bool idle() const;

 private:
  void run();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  std::function<void()> task_;
  bool busy_ = false;
  bool shutdown_ = false;
  std::exception_ptr error_;
};

}  // namespace minivpic::util
