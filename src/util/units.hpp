// Unit system and laser–plasma conversions.
//
// minivpic integrates in dimensionless "plasma units": time in 1/ω_pe,
// length in electron skin depths c/ω_pe, velocity in c, momentum u = γv/c,
// mass in m_e, charge in e, fields such that the electron equation of
// motion is du/dt = -(E + v × cB) and Maxwell uses c = ε₀ = μ₀ = 1.
// The helpers here translate the paper's experimental laser parameters
// (intensity in W/cm², wavelength in µm, Te in keV, density in units of
// critical) into those code units, so LPI decks can be written in the same
// terms the paper's parameter study uses.
#pragma once

namespace minivpic::units {

/// Electron rest energy in keV.
inline constexpr double kElectronRestKeV = 510.99895;

/// Normalized laser amplitude a0 = eE/(m_e c ω0) from intensity (W/cm²) and
/// wavelength (µm), for linear polarization: a0 ≈ 8.55e-10 √(I λ²).
double a0_from_intensity(double intensity_w_cm2, double lambda_um);

/// Inverse of a0_from_intensity.
double intensity_from_a0(double a0, double lambda_um);

/// Critical density in cm⁻³ for a laser of wavelength λ (µm):
/// n_c ≈ 1.115e21 / λ² cm⁻³.
double critical_density_cm3(double lambda_um);

/// Laser frequency in units of ω_pe given the plasma density as a fraction
/// of critical: ω0/ω_pe = 1/√(n/n_c).
double omega0_over_omegape(double n_over_nc);

/// Electron thermal momentum spread u_th = √(Te/m_e c²), Te in keV.
double uth_from_te_kev(double te_kev);

/// Electron Debye length in code units (skin depths): λ_De = u_th (for
/// non-relativistic temperatures, λ_De/(c/ω_pe) = v_th/c ≈ u_th).
double debye_length_code(double te_kev);

/// k λ_De for the SRS electron plasma wave. The backscatter EPW wavenumber
/// follows from the SRS matching conditions: k_epw ≈ k0 + k_s with
/// k0 = √(ω0² − 1) (code units, ω_pe = 1) and the scattered light
/// ω_s ≈ ω0 − ω_epw, ω_epw ≈ 1. Uses the common estimate
/// k_epw ≈ k0(1 + √(1 − 2/ω0)) ... evaluated exactly from the matching.
double srs_k_lambda_de(double n_over_nc, double te_kev);

}  // namespace minivpic::units
