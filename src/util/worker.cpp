#include "util/worker.hpp"

#include "util/error.hpp"

namespace minivpic::util {

Worker::Worker() { thread_ = std::thread([this] { run(); }); }

Worker::~Worker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Worker::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return shutdown_ || task_ != nullptr; });
    if (shutdown_) return;
    std::function<void()> task = std::move(task_);
    task_ = nullptr;
    lock.unlock();
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    error_ = error;
    busy_ = false;
    cv_.notify_all();
  }
}

void Worker::submit(std::function<void()> task) {
  MV_REQUIRE(task != nullptr, "submit of an empty task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    MV_REQUIRE(!busy_, "worker already has a task in flight");
    busy_ = true;
    task_ = std::move(task);
  }
  cv_.notify_all();
}

void Worker::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !busy_; });
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

bool Worker::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !busy_;
}

}  // namespace minivpic::util
