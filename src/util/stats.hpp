// Statistics helpers for diagnostics: running moments, histograms, and the
// log-linear fits used to extract instability growth rates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace minivpic {

/// Welford running mean/variance — numerically stable one-pass moments.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram on [lo, hi); out-of-range samples go to the edge bins
/// when `clamp_edges` is set, otherwise they are counted separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins, bool clamp_edges = false);

  void add(double x, double weight = 1.0);

  std::size_t num_bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_center(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }
  double total() const;

  const std::vector<double>& counts() const { return counts_; }

 private:
  double lo_, hi_;
  bool clamp_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

/// Least-squares line y = a + b*x over paired samples.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

LinearFit fit_line(std::span<const double> x, std::span<const double> y);

/// Fits ln(y) = a + b*x over the index window [first, last); used to measure
/// exponential growth rates from energy time series. Non-positive samples in
/// the window are skipped.
LinearFit fit_exponential_growth(std::span<const double> t,
                                 std::span<const double> y, std::size_t first,
                                 std::size_t last);

}  // namespace minivpic
