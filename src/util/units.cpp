#include "util/units.hpp"

#include <cmath>

#include "util/error.hpp"

namespace minivpic::units {

double a0_from_intensity(double intensity_w_cm2, double lambda_um) {
  MV_REQUIRE(intensity_w_cm2 >= 0.0, "intensity must be non-negative");
  MV_REQUIRE(lambda_um > 0.0, "wavelength must be positive");
  return 8.55e-10 * std::sqrt(intensity_w_cm2) * lambda_um;
}

double intensity_from_a0(double a0, double lambda_um) {
  MV_REQUIRE(a0 >= 0.0, "a0 must be non-negative");
  MV_REQUIRE(lambda_um > 0.0, "wavelength must be positive");
  const double s = a0 / (8.55e-10 * lambda_um);
  return s * s;
}

double critical_density_cm3(double lambda_um) {
  MV_REQUIRE(lambda_um > 0.0, "wavelength must be positive");
  return 1.115e21 / (lambda_um * lambda_um);
}

double omega0_over_omegape(double n_over_nc) {
  MV_REQUIRE(n_over_nc > 0.0 && n_over_nc <= 1.0,
             "density must be in (0, 1] of critical");
  return 1.0 / std::sqrt(n_over_nc);
}

double uth_from_te_kev(double te_kev) {
  MV_REQUIRE(te_kev >= 0.0, "temperature must be non-negative");
  return std::sqrt(te_kev / kElectronRestKeV);
}

double debye_length_code(double te_kev) { return uth_from_te_kev(te_kev); }

double srs_k_lambda_de(double n_over_nc, double te_kev) {
  const double w0 = omega0_over_omegape(n_over_nc);
  MV_REQUIRE(w0 > 2.0, "SRS requires n/n_c < 1/4 (omega0 > 2 omega_pe)");
  // Matching: omega_s = omega0 - omega_epw with omega_epw ~= omega_pe = 1
  // (Bohm-Gross correction is O((k lambda_De)^2) and ignored for the
  // estimate); k_s = sqrt(omega_s^2 - 1); backscatter: k_epw = k0 + k_s.
  const double k0 = std::sqrt(w0 * w0 - 1.0);
  const double ws = w0 - 1.0;
  const double ks = std::sqrt(ws * ws - 1.0);
  const double k_epw = k0 + ks;
  return k_epw * debye_length_code(te_kev);
}

}  // namespace minivpic::units
