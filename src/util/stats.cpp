#include "util/stats.hpp"

#include <cmath>

#include "util/error.hpp"

namespace minivpic {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins, bool clamp_edges)
    : lo_(lo), hi_(hi), clamp_(clamp_edges), counts_(bins, 0.0) {
  MV_REQUIRE(hi > lo, "histogram range must be non-empty");
  MV_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x, double weight) {
  const double f = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  long long bin = static_cast<long long>(std::floor(f));
  if (bin < 0) {
    if (!clamp_) {
      underflow_ += weight;
      return;
    }
    bin = 0;
  }
  if (bin >= static_cast<long long>(counts_.size())) {
    if (!clamp_) {
      overflow_ += weight;
      return;
    }
    bin = static_cast<long long>(counts_.size()) - 1;
  }
  counts_[static_cast<std::size_t>(bin)] += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / double(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::bin_center(std::size_t i) const {
  return 0.5 * (bin_lo(i) + bin_hi(i));
}

double Histogram::total() const {
  double sum = underflow_ + overflow_;
  for (double c : counts_) sum += c;
  return sum;
}

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  MV_REQUIRE(x.size() == y.size(), "fit_line needs equal-length spans");
  MV_REQUIRE(x.size() >= 2, "fit_line needs at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double sst = syy - sy * sy / n;
  if (sst > 0.0) {
    double ssr = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.intercept + fit.slope * x[i]);
      ssr += e * e;
    }
    fit.r2 = 1.0 - ssr / sst;
  } else {
    fit.r2 = 1.0;
  }
  return fit;
}

LinearFit fit_exponential_growth(std::span<const double> t,
                                 std::span<const double> y, std::size_t first,
                                 std::size_t last) {
  MV_REQUIRE(t.size() == y.size(), "mismatched series");
  MV_REQUIRE(first < last && last <= t.size(), "bad fit window");
  std::vector<double> xs, ys;
  xs.reserve(last - first);
  ys.reserve(last - first);
  for (std::size_t i = first; i < last; ++i) {
    if (y[i] > 0.0) {
      xs.push_back(t[i]);
      ys.push_back(std::log(y[i]));
    }
  }
  MV_REQUIRE(xs.size() >= 2, "fit window has fewer than two positive samples");
  return fit_line(xs, ys);
}

}  // namespace minivpic
