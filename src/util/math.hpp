// Small constexpr math helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <type_traits>

namespace minivpic {

/// Integer power with non-negative exponent.
template <typename T>
constexpr T ipow(T base, unsigned exp) {
  T result = 1;
  while (exp != 0) {
    if (exp & 1u) result *= base;
    base *= base;
    exp >>= 1u;
  }
  return result;
}

/// Rounds v up to the next multiple of m (m > 0).
template <typename T>
constexpr T round_up(T v, T m) {
  static_assert(std::is_integral_v<T>);
  return (v + m - 1) / m * m;
}

/// Ceiling integer division.
template <typename T>
constexpr T div_ceil(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return (a + b - 1) / b;
}

/// True if v is a power of two (v > 0).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// log2 of a power of two.
constexpr unsigned log2_pow2(std::uint64_t v) {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

/// Clamps x to [lo, hi].
template <typename T>
constexpr T clamp(T x, T lo, T hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Linear interpolation.
template <typename T>
constexpr T lerp(T a, T b, T t) {
  return a + t * (b - a);
}

/// Relativistic Lorentz factor from normalized momentum u = gamma*v/c.
inline double gamma_of_u(double ux, double uy, double uz) {
  return std::sqrt(1.0 + ux * ux + uy * uy + uz * uz);
}

/// Relative difference |a-b| / max(|a|,|b|,floor).
inline double rel_diff(double a, double b, double floor = 1e-300) {
  const double scale = std::max({std::abs(a), std::abs(b), floor});
  return std::abs(a - b) / scale;
}

}  // namespace minivpic
