#include "util/pipeline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace minivpic {

Pipeline::Pipeline(int n_pipelines) : n_(n_pipelines) {
  MV_REQUIRE(n_pipelines >= 1, "pipeline count must be >= 1, got "
                                   << n_pipelines);
  workers_.reserve(std::size_t(n_ - 1));
  for (int p = 1; p < n_; ++p) {
    workers_.emplace_back([this, p] { worker(p); });
  }
}

Pipeline::~Pipeline() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Pipeline::run_one(int pipeline, const std::function<void(int)>& job) {
  try {
    job(pipeline);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void Pipeline::worker(int pipeline) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    run_one(pipeline, *job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void Pipeline::dispatch(const std::function<void(int)>& job) {
  if (n_ == 1) {
    job(0);  // serial reference path: no locks, no threads
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    pending_ = n_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();
  run_one(0, job);
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

Pipeline::Range Pipeline::partition(std::size_t count, int n_pipelines,
                                    int pipeline) {
  MV_REQUIRE(n_pipelines >= 1 && pipeline >= 0 && pipeline < n_pipelines,
             "bad partition request: pipeline " << pipeline << " of "
                                                << n_pipelines);
  const std::size_t n = std::size_t(n_pipelines);
  const std::size_t p = std::size_t(pipeline);
  const std::size_t base = count / n;
  const std::size_t extra = count % n;  // first `extra` slices get +1
  Range r;
  r.begin = p * base + std::min(p, extra);
  r.end = r.begin + base + (p < extra ? 1 : 0);
  return r;
}

int Pipeline::hardware_pipelines() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : int(hw);
}

int Pipeline::resolve(int requested) {
  return requested >= 1 ? requested : hardware_pipelines();
}

}  // namespace minivpic
