// Portable width-templated SIMD layer for the hot kernels.
//
// `simd::pack<W>` is a W-wide single-precision vector with one native
// backend per ISA — SSE2 (W=4), AVX2 (W=8), AVX-512F (W=16), NEON (W=4 on
// AArch64) — and a scalar-array fallback for every width the build cannot
// map to hardware. `load_tr`/`store_tr` are the VPIC-style register
// transposes (load_4x4_tr / store_4x4_tr and friends in the original SPE
// kernels): they move N columns of W rows between memory and N packs, which
// is how the particle advance turns the 32-byte AoS particle and the
// 80-byte gathered interpolator into SoA registers.
//
// Determinism contract (docs/KERNELS.md): every operation here rounds
// exactly like its scalar counterpart — add/sub/mul/div/sqrt are the IEEE
// correctly-rounded instructions on every backend, there is deliberately NO
// fused-multiply-add, and negation flips the sign bit. A kernel written as
// the same operation sequence as its scalar reference therefore produces
// bit-identical lanes. Keep it that way: do not add rsqrt/rcp
// approximations or fma here without a new contract.
//
// ODR discipline: this header is compiled into translation units built with
// different -m flags (see particles/CMakeLists.txt). Everything lives in an
// arch-keyed inline namespace so that, e.g., the AVX2 TU's pack<8> and a
// baseline TU's fallback pack<8> are *different types* with different
// mangled names — never a silent ODR merge of incompatible codegen.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__SSE2__) || defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

// Highest ISA the current TU is compiled for; also names the inline
// namespace. One TU = one arch; runtime dispatch picks between TUs, never
// within one.
#if defined(__AVX512F__)
#define MV_SIMD_ARCH_NS arch_avx512
#elif defined(__AVX2__)
#define MV_SIMD_ARCH_NS arch_avx2
#elif defined(__SSE2__)
#define MV_SIMD_ARCH_NS arch_sse
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define MV_SIMD_ARCH_NS arch_neon
#else
#define MV_SIMD_ARCH_NS arch_scalar
#endif

namespace minivpic::simd {
inline namespace MV_SIMD_ARCH_NS {

// -- generic scalar-array fallback (any W) ----------------------------------

/// W-wide float vector. The primary template is the portable fallback: a
/// plain array the compiler may or may not auto-vectorize, semantically
/// identical to the native specializations lane for lane.
template <int W>
struct pack {
  float v[W];
  static constexpr int width = W;

  static pack load(const float* p) { return loadu(p); }
  static pack loadu(const float* p) {
    pack r;
    std::memcpy(r.v, p, sizeof r.v);
    return r;
  }
  static pack broadcast(float x) {
    pack r;
    for (int i = 0; i < W; ++i) r.v[i] = x;
    return r;
  }
  static pack zero() { return broadcast(0.0f); }
  void store(float* p) const { storeu(p); }
  void storeu(float* p) const { std::memcpy(p, v, sizeof v); }
  float lane(int i) const { return v[i]; }

  pack operator+(pack b) const {
    pack r;
    for (int i = 0; i < W; ++i) r.v[i] = v[i] + b.v[i];
    return r;
  }
  pack operator-(pack b) const {
    pack r;
    for (int i = 0; i < W; ++i) r.v[i] = v[i] - b.v[i];
    return r;
  }
  pack operator*(pack b) const {
    pack r;
    for (int i = 0; i < W; ++i) r.v[i] = v[i] * b.v[i];
    return r;
  }
  pack operator/(pack b) const {
    pack r;
    for (int i = 0; i < W; ++i) r.v[i] = v[i] / b.v[i];
    return r;
  }
  pack operator-() const {
    pack r;
    for (int i = 0; i < W; ++i) r.v[i] = -v[i];
    return r;
  }
};

/// Lane mask produced by comparisons. bits() packs lane i into bit i.
template <int W>
struct mask {
  std::uint32_t b;
  unsigned bits() const { return b; }
  mask operator&(mask o) const { return {b & o.b}; }
};

template <int W>
inline pack<W> sqrt(pack<W> a) {
  pack<W> r;
  for (int i = 0; i < W; ++i) r.v[i] = std::sqrt(a.v[i]);
  return r;
}

template <int W>
inline mask<W> cmp_le(pack<W> a, pack<W> b) {
  std::uint32_t m = 0;
  for (int i = 0; i < W; ++i) m |= std::uint32_t(a.v[i] <= b.v[i]) << i;
  return {m};
}

/// a where the mask lane is set, b elsewhere.
template <int W>
inline pack<W> select(mask<W> m, pack<W> a, pack<W> b) {
  pack<W> r;
  for (int i = 0; i < W; ++i) r.v[i] = (m.b >> i & 1u) ? a.v[i] : b.v[i];
  return r;
}

/// Full lane mask for width W (bits() of an all-true compare).
template <int W>
constexpr unsigned all_lanes() {
  return (W >= 32) ? ~0u : ((1u << W) - 1u);
}

// -- transposed gathers/scatters (the VPIC load_WxN_tr family) --------------

/// Transposed load: out[c].lane(w) = base[off[w] + c] for c in [0, n).
/// Row w must have at least n readable floats at base + off[w]. The generic
/// path goes through per-lane memcpy (bit-preserving — safe for the int32
/// voxel column of a Particle); native widths override with register
/// transposes or hardware gathers below.
template <int W>
inline void load_tr(const float* base, const std::int32_t* off, int n,
                    pack<W>* out) {
  float t[W];
  for (int c = 0; c < n; ++c) {
    for (int w = 0; w < W; ++w)
      std::memcpy(&t[w], base + off[w] + c, sizeof(float));
    out[c] = pack<W>::loadu(t);
  }
}

/// Transposed store: base[off[w] + c] = in[c].lane(w) for c in [0, n).
template <int W>
inline void store_tr(const pack<W>* in, int n, float* base,
                     const std::int32_t* off) {
  float t[W];
  for (int c = 0; c < n; ++c) {
    in[c].storeu(t);
    for (int w = 0; w < W; ++w)
      std::memcpy(base + off[w] + c, &t[w], sizeof(float));
  }
}

// -- SSE2: native pack<4> ---------------------------------------------------

#if defined(__SSE2__)

template <>
struct pack<4> {
  __m128 v;
  static constexpr int width = 4;

  static pack load(const float* p) { return {_mm_load_ps(p)}; }
  static pack loadu(const float* p) { return {_mm_loadu_ps(p)}; }
  static pack broadcast(float x) { return {_mm_set1_ps(x)}; }
  static pack zero() { return {_mm_setzero_ps()}; }
  void store(float* p) const { _mm_store_ps(p, v); }
  void storeu(float* p) const { _mm_storeu_ps(p, v); }
  float lane(int i) const {
    alignas(16) float t[4];
    store(t);
    return t[i];
  }

  pack operator+(pack b) const { return {_mm_add_ps(v, b.v)}; }
  pack operator-(pack b) const { return {_mm_sub_ps(v, b.v)}; }
  pack operator*(pack b) const { return {_mm_mul_ps(v, b.v)}; }
  pack operator/(pack b) const { return {_mm_div_ps(v, b.v)}; }
  pack operator-() const {
    return {_mm_xor_ps(v, _mm_set1_ps(-0.0f))};  // flip sign bit, like FNEG
  }
};

template <>
struct mask<4> {
  __m128 v;
  unsigned bits() const { return unsigned(_mm_movemask_ps(v)); }
  mask operator&(mask o) const { return {_mm_and_ps(v, o.v)}; }
};

inline pack<4> sqrt(pack<4> a) { return {_mm_sqrt_ps(a.v)}; }

inline mask<4> cmp_le(pack<4> a, pack<4> b) {
  return {_mm_cmple_ps(a.v, b.v)};
}

inline pack<4> select(mask<4> m, pack<4> a, pack<4> b) {
  return {_mm_or_ps(_mm_and_ps(m.v, a.v), _mm_andnot_ps(m.v, b.v))};
}

/// 4-row transpose in 4-column blocks (VPIC's load_4x4_tr). The block path
/// reads exactly cols [c, c+4) of each row, so rows only need n readable
/// floats; callers with padded rows (e.g. the 20-float Interpolator stride)
/// can pass the padded column count and keep every load a full block.
template <>
inline void load_tr<4>(const float* base, const std::int32_t* off, int n,
                       pack<4>* out) {
  int c = 0;
  for (; c + 4 <= n; c += 4) {
    __m128 r0 = _mm_loadu_ps(base + off[0] + c);
    __m128 r1 = _mm_loadu_ps(base + off[1] + c);
    __m128 r2 = _mm_loadu_ps(base + off[2] + c);
    __m128 r3 = _mm_loadu_ps(base + off[3] + c);
    _MM_TRANSPOSE4_PS(r0, r1, r2, r3);
    out[c].v = r0;
    out[c + 1].v = r1;
    out[c + 2].v = r2;
    out[c + 3].v = r3;
  }
  // Tail: the block loop leaves at most 3 columns (n & 3). Writing the
  // bound that way lets the compiler prove the loop never overruns.
  for (int r = 0; r < (n & 3); ++r, ++c) {
    float t[4];
    for (int w = 0; w < 4; ++w)
      std::memcpy(&t[w], base + off[w] + c, sizeof(float));
    out[c] = pack<4>::loadu(t);
  }
}

template <>
inline void store_tr<4>(const pack<4>* in, int n, float* base,
                        const std::int32_t* off) {
  int c = 0;
  for (; c + 4 <= n; c += 4) {
    __m128 r0 = in[c].v;
    __m128 r1 = in[c + 1].v;
    __m128 r2 = in[c + 2].v;
    __m128 r3 = in[c + 3].v;
    _MM_TRANSPOSE4_PS(r0, r1, r2, r3);
    _mm_storeu_ps(base + off[0] + c, r0);
    _mm_storeu_ps(base + off[1] + c, r1);
    _mm_storeu_ps(base + off[2] + c, r2);
    _mm_storeu_ps(base + off[3] + c, r3);
  }
  for (int r = 0; r < (n & 3); ++r, ++c) {
    float t[4];
    in[c].storeu(t);
    for (int w = 0; w < 4; ++w)
      std::memcpy(base + off[w] + c, &t[w], sizeof(float));
  }
}

#endif  // __SSE2__

// -- NEON (AArch64): native pack<4> -----------------------------------------

#if !defined(__SSE2__) && defined(__aarch64__) && defined(__ARM_NEON)

template <>
struct pack<4> {
  float32x4_t v;
  static constexpr int width = 4;

  static pack load(const float* p) { return {vld1q_f32(p)}; }
  static pack loadu(const float* p) { return {vld1q_f32(p)}; }
  static pack broadcast(float x) { return {vdupq_n_f32(x)}; }
  static pack zero() { return {vdupq_n_f32(0.0f)}; }
  void store(float* p) const { vst1q_f32(p, v); }
  void storeu(float* p) const { vst1q_f32(p, v); }
  float lane(int i) const {
    float t[4];
    storeu(t);
    return t[i];
  }

  pack operator+(pack b) const { return {vaddq_f32(v, b.v)}; }
  pack operator-(pack b) const { return {vsubq_f32(v, b.v)}; }
  pack operator*(pack b) const { return {vmulq_f32(v, b.v)}; }
  pack operator/(pack b) const { return {vdivq_f32(v, b.v)}; }
  pack operator-() const { return {vnegq_f32(v)}; }
};

template <>
struct mask<4> {
  uint32x4_t v;
  unsigned bits() const {
    const uint32x4_t powers = {1u, 2u, 4u, 8u};
    return vaddvq_u32(vandq_u32(v, powers));
  }
  mask operator&(mask o) const { return {vandq_u32(v, o.v)}; }
};

inline pack<4> sqrt(pack<4> a) { return {vsqrtq_f32(a.v)}; }

inline mask<4> cmp_le(pack<4> a, pack<4> b) { return {vcleq_f32(a.v, b.v)}; }

inline pack<4> select(mask<4> m, pack<4> a, pack<4> b) {
  return {vbslq_f32(m.v, a.v, b.v)};
}

#endif  // NEON

// -- AVX2: native pack<8> ---------------------------------------------------

#if defined(__AVX2__)

template <>
struct pack<8> {
  __m256 v;
  static constexpr int width = 8;

  static pack load(const float* p) { return {_mm256_load_ps(p)}; }
  static pack loadu(const float* p) { return {_mm256_loadu_ps(p)}; }
  static pack broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static pack zero() { return {_mm256_setzero_ps()}; }
  void store(float* p) const { _mm256_store_ps(p, v); }
  void storeu(float* p) const { _mm256_storeu_ps(p, v); }
  float lane(int i) const {
    alignas(32) float t[8];
    store(t);
    return t[i];
  }

  pack operator+(pack b) const { return {_mm256_add_ps(v, b.v)}; }
  pack operator-(pack b) const { return {_mm256_sub_ps(v, b.v)}; }
  pack operator*(pack b) const { return {_mm256_mul_ps(v, b.v)}; }
  pack operator/(pack b) const { return {_mm256_div_ps(v, b.v)}; }
  pack operator-() const {
    return {_mm256_xor_ps(v, _mm256_set1_ps(-0.0f))};
  }
};

template <>
struct mask<8> {
  __m256 v;
  unsigned bits() const { return unsigned(_mm256_movemask_ps(v)); }
  mask operator&(mask o) const { return {_mm256_and_ps(v, o.v)}; }
};

inline pack<8> sqrt(pack<8> a) { return {_mm256_sqrt_ps(a.v)}; }

inline mask<8> cmp_le(pack<8> a, pack<8> b) {
  return {_mm256_cmp_ps(a.v, b.v, _CMP_LE_OQ)};
}

inline pack<8> select(mask<8> m, pack<8> a, pack<8> b) {
  return {_mm256_blendv_ps(b.v, a.v, m.v)};
}

/// In-register 8x8 transpose (unpack/shuffle/permute ladder).
inline void transpose8(__m256 r[8]) {
  const __m256 t0 = _mm256_unpacklo_ps(r[0], r[1]);
  const __m256 t1 = _mm256_unpackhi_ps(r[0], r[1]);
  const __m256 t2 = _mm256_unpacklo_ps(r[2], r[3]);
  const __m256 t3 = _mm256_unpackhi_ps(r[2], r[3]);
  const __m256 t4 = _mm256_unpacklo_ps(r[4], r[5]);
  const __m256 t5 = _mm256_unpackhi_ps(r[4], r[5]);
  const __m256 t6 = _mm256_unpacklo_ps(r[6], r[7]);
  const __m256 t7 = _mm256_unpackhi_ps(r[6], r[7]);
  const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  r[0] = _mm256_permute2f128_ps(u0, u4, 0x20);
  r[1] = _mm256_permute2f128_ps(u1, u5, 0x20);
  r[2] = _mm256_permute2f128_ps(u2, u6, 0x20);
  r[3] = _mm256_permute2f128_ps(u3, u7, 0x20);
  r[4] = _mm256_permute2f128_ps(u0, u4, 0x31);
  r[5] = _mm256_permute2f128_ps(u1, u5, 0x31);
  r[6] = _mm256_permute2f128_ps(u2, u6, 0x31);
  r[7] = _mm256_permute2f128_ps(u3, u7, 0x31);
}

/// 8-row transposed load via hardware gathers: one gather per column reads
/// exactly the 8 lane floats, so rows never over-read past n columns.
template <>
inline void load_tr<8>(const float* base, const std::int32_t* off, int n,
                       pack<8>* out) {
  const __m256i offv =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(off));
  for (int c = 0; c < n; ++c) {
    const __m256i idx = _mm256_add_epi32(offv, _mm256_set1_epi32(c));
    out[c].v = _mm256_i32gather_ps(base, idx, 4);
  }
}

/// 8-row transposed store: register 8x8 transpose + row stores for full
/// blocks (AVX2 has gathers but no scatters), per-lane tail otherwise.
/// Full blocks write cols [c, c+8) of each row, within the n columns.
template <>
inline void store_tr<8>(const pack<8>* in, int n, float* base,
                        const std::int32_t* off) {
  int c = 0;
  for (; c + 8 <= n; c += 8) {
    __m256 r[8];
    for (int i = 0; i < 8; ++i) r[i] = in[c + i].v;
    transpose8(r);
    for (int w = 0; w < 8; ++w) _mm256_storeu_ps(base + off[w] + c, r[w]);
  }
  for (int r = 0; r < (n & 7); ++r, ++c) {
    float t[8];
    in[c].storeu(t);
    for (int w = 0; w < 8; ++w)
      std::memcpy(base + off[w] + c, &t[w], sizeof(float));
  }
}

#endif  // __AVX2__

// -- AVX-512F: native pack<16> ----------------------------------------------

#if defined(__AVX512F__)

template <>
struct pack<16> {
  __m512 v;
  static constexpr int width = 16;

  static pack load(const float* p) { return {_mm512_load_ps(p)}; }
  static pack loadu(const float* p) { return {_mm512_loadu_ps(p)}; }
  static pack broadcast(float x) { return {_mm512_set1_ps(x)}; }
  static pack zero() { return {_mm512_setzero_ps()}; }
  void store(float* p) const { _mm512_store_ps(p, v); }
  void storeu(float* p) const { _mm512_storeu_ps(p, v); }
  float lane(int i) const {
    alignas(64) float t[16];
    store(t);
    return t[i];
  }

  pack operator+(pack b) const { return {_mm512_add_ps(v, b.v)}; }
  pack operator-(pack b) const { return {_mm512_sub_ps(v, b.v)}; }
  pack operator*(pack b) const { return {_mm512_mul_ps(v, b.v)}; }
  pack operator/(pack b) const { return {_mm512_div_ps(v, b.v)}; }
  pack operator-() const {
    // _mm512_xor_ps needs AVX512DQ; the integer xor is plain AVX512F.
    return {_mm512_castsi512_ps(_mm512_xor_epi32(
        _mm512_castps_si512(v), _mm512_set1_epi32(0x80000000)))};
  }
};

template <>
struct mask<16> {
  __mmask16 v;
  unsigned bits() const { return unsigned(v); }
  mask operator&(mask o) const {
    return {static_cast<__mmask16>(v & o.v)};
  }
};

inline pack<16> sqrt(pack<16> a) { return {_mm512_sqrt_ps(a.v)}; }

inline mask<16> cmp_le(pack<16> a, pack<16> b) {
  return {_mm512_cmp_ps_mask(a.v, b.v, _CMP_LE_OQ)};
}

inline pack<16> select(mask<16> m, pack<16> a, pack<16> b) {
  return {_mm512_mask_blend_ps(m.v, b.v, a.v)};  // blend picks a where set
}

/// 16-row transposed load/store via hardware gather/scatter (AVX-512F has
/// both, so no shuffle ladder is needed at this width).
template <>
inline void load_tr<16>(const float* base, const std::int32_t* off, int n,
                        pack<16>* out) {
  const __m512i offv =
      _mm512_loadu_si512(reinterpret_cast<const void*>(off));
  for (int c = 0; c < n; ++c) {
    const __m512i idx = _mm512_add_epi32(offv, _mm512_set1_epi32(c));
    out[c].v = _mm512_i32gather_ps(idx, base, 4);
  }
}

template <>
inline void store_tr<16>(const pack<16>* in, int n, float* base,
                         const std::int32_t* off) {
  const __m512i offv =
      _mm512_loadu_si512(reinterpret_cast<const void*>(off));
  for (int c = 0; c < n; ++c) {
    const __m512i idx = _mm512_add_epi32(offv, _mm512_set1_epi32(c));
    _mm512_i32scatter_ps(base, idx, in[c].v, 4);
  }
}

#endif  // __AVX512F__

}  // inline namespace MV_SIMD_ARCH_NS
}  // namespace minivpic::simd
