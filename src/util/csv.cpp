#include "util/csv.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/error.hpp"

namespace minivpic {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  MV_REQUIRE(!columns_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  MV_REQUIRE(cells.size() == columns_.size(),
             "row has " << cells.size() << " cells, table has "
                        << columns_.size() << " columns");
  rows_.push_back(std::move(cells));
}

std::string Table::format(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* d = std::get_if<double>(&cell)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", *d);
    return buf;
  }
  return std::to_string(std::get<long long>(cell));
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();
  std::vector<std::vector<std::string>> text;
  text.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      line.push_back(format(row[c]));
      width[c] = std::max(width[c], line.back().size());
    }
    text.push_back(std::move(line));
  }

  if (!title.empty()) os << "== " << title << " ==\n";
  auto pad = [&](const std::string& s, std::size_t w) {
    os << s;
    for (std::size_t i = s.size(); i < w + 2; ++i) os << ' ';
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) pad(columns_[c], width[c]);
  os << '\n';
  for (std::size_t c = 0; c < columns_.size(); ++c)
    pad(std::string(width[c], '-'), width[c]);
  os << '\n';
  for (const auto& line : text) {
    for (std::size_t c = 0; c < line.size(); ++c) pad(line[c], width[c]);
    os << '\n';
  }
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(format(row[c]));
    }
    os << '\n';
  }
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream os(path);
  MV_REQUIRE(os.good(), "cannot open " << path << " for writing");
  write_csv(os);
}

}  // namespace minivpic
