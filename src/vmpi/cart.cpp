#include "vmpi/cart.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace minivpic::vmpi {

namespace {

std::vector<int> prime_factors(int n) {
  std::vector<int> factors;
  for (int p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

}  // namespace

std::array<int, 3> dims_create(int nranks, std::array<int, 3> hint) {
  MV_REQUIRE(nranks >= 1, "need at least one rank");
  std::array<int, 3> dims = hint;
  int remaining = nranks;
  int free_axes = 0;
  for (int a = 0; a < 3; ++a) {
    if (dims[a] == 0) {
      ++free_axes;
      dims[a] = 1;
    } else {
      MV_REQUIRE(dims[a] > 0, "dimension hints must be non-negative");
      MV_REQUIRE(remaining % dims[a] == 0,
                 "hinted dims do not divide rank count " << nranks);
      remaining /= dims[a];
    }
  }
  MV_REQUIRE(free_axes > 0 || remaining == 1,
             "hinted dims product != rank count");

  if (free_axes > 0) {
    // Distribute prime factors largest-first onto the currently smallest
    // free axis — yields near-cubic decompositions, which minimise ghost
    // surface area per rank.
    std::vector<int> factors = prime_factors(remaining);
    std::sort(factors.rbegin(), factors.rend());
    for (int f : factors) {
      int best = -1;
      for (int a = 0; a < 3; ++a) {
        if (hint[a] != 0) continue;  // fixed by caller
        if (best == -1 || dims[a] < dims[best]) best = a;
      }
      dims[best] *= f;
    }
  }
  MV_ASSERT(dims[0] * dims[1] * dims[2] == nranks);
  return dims;
}

CartTopology::CartTopology(std::array<int, 3> dims, std::array<bool, 3> periodic)
    : dims_(dims), periodic_(periodic) {
  for (int a = 0; a < 3; ++a)
    MV_REQUIRE(dims_[a] >= 1, "topology dims must be positive");
}

std::array<int, 3> CartTopology::coords_of(int rank) const {
  MV_REQUIRE(rank >= 0 && rank < nranks(), "rank out of range: " << rank);
  std::array<int, 3> c;
  c[0] = rank % dims_[0];
  c[1] = (rank / dims_[0]) % dims_[1];
  c[2] = rank / (dims_[0] * dims_[1]);
  return c;
}

int CartTopology::rank_of(std::array<int, 3> coords) const {
  for (int a = 0; a < 3; ++a) {
    if (coords[a] < 0 || coords[a] >= dims_[a]) {
      if (!periodic_[a]) return kNoRank;
      coords[a] = ((coords[a] % dims_[a]) + dims_[a]) % dims_[a];
    }
  }
  return (coords[2] * dims_[1] + coords[1]) * dims_[0] + coords[0];
}

int CartTopology::neighbor(int rank, int axis, int dir) const {
  MV_REQUIRE(axis >= 0 && axis < 3, "axis out of range");
  MV_REQUIRE(dir == -1 || dir == 1, "direction must be -1 or +1");
  std::array<int, 3> c = coords_of(rank);
  c[axis] += dir;
  return rank_of(c);
}

}  // namespace minivpic::vmpi
