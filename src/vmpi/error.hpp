// Typed communication failures for the vmpi fault-tolerance plane.
//
// Every detectable comm-layer failure — a deadline expiring, a CRC mismatch,
// a sequence gap, a dead peer, a revoked world — surfaces as a CommError
// carrying a Fault discriminator, so recovery code can distinguish "roll back
// and retry" faults from programming errors. CommError derives from
// minivpic::Error, so code that only knows the base type keeps working.
#pragma once

#include <string>

#include "util/error.hpp"

namespace minivpic::vmpi {

/// What kind of communication failure was detected.
enum class Fault {
  kTimeout,   ///< a blocking call exceeded its configured deadline
  kCorrupt,   ///< per-message CRC32 framing caught a payload mismatch
  kLost,      ///< a sequence gap: a message from this source never arrived
  kPeerDead,  ///< the awaited peer has been marked dead (liveness epoch)
  kKilled,    ///< this rank was killed by a scheduled FaultPlane kill
  kRevoked,   ///< the world was revoked: some rank is coordinating recovery
  kPoisoned,  ///< the world was poisoned: some rank threw a non-comm error
};

inline const char* fault_name(Fault f) {
  switch (f) {
    case Fault::kTimeout: return "timeout";
    case Fault::kCorrupt: return "corrupt";
    case Fault::kLost: return "lost";
    case Fault::kPeerDead: return "peer-dead";
    case Fault::kKilled: return "killed";
    case Fault::kRevoked: return "revoked";
    case Fault::kPoisoned: return "poisoned";
  }
  return "unknown";
}

/// A detected communication failure. Recoverable kinds (everything except
/// kPoisoned) are what sim::RecoveryCoordinator catches to trigger rollback.
class CommError : public Error {
 public:
  CommError(Fault fault, const std::string& what)
      : Error(std::string(fault_name(fault)) + ": " + what), fault_(fault) {}

  Fault fault() const { return fault_; }

 private:
  Fault fault_;
};

}  // namespace minivpic::vmpi
