// Internal shared state of a vmpi Runtime::run invocation: one mailbox per
// rank, a central barrier, and the fault-tolerance state (liveness epochs,
// revocation flag) they share. Not part of the public API.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "vmpi/config.hpp"

namespace minivpic::vmpi::detail {

using Clock = std::chrono::steady_clock;

/// Sentinel for "block forever" (the default when no timeout is configured).
inline constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

/// Tag reserved for the recovery agreement round. Traffic on this tag is
/// exempt from world revocation, so survivors can still agree on a rollback
/// step after every other plane of communication has been shut down.
inline constexpr int kAgreeTag = -3;

struct Message {
  int source = -1;
  int tag = -1;
  std::vector<std::byte> payload;
  // Optional integrity framing (WorldConfig::checksum / sequencing). Carried
  // beside the payload, never inside it, so enabling framing cannot perturb
  // delivered bytes.
  std::uint32_t crc = 0;
  bool has_crc = false;
  std::uint64_t seq = 0;
  bool has_seq = false;
  // Delay-fault hold: the message is invisible to pop/probe before this.
  Clock::time_point not_before{};
  bool delayed = false;
};

/// A posted (pre-registered) receive: push() fulfills it at delivery time by
/// moving the matching message straight into `msg`, so completion needs no
/// receiver-side polling. CRC verification, comm hooks, and fault typing
/// stay on the receiver thread (Comm observes completion via test()/wait());
/// the sender thread only copies bytes under the mailbox lock.
struct PostedRecv {
  int src = -1;          ///< kAnySource allowed
  int tag = -1;          ///< kAnyTag allowed
  Message msg;           ///< the fulfilled message (valid when complete)
  bool complete = false;
};

/// Thread-safe per-rank message queue with (source, tag) FIFO matching,
/// deadlines, duplicate/loss detection, and peer-liveness wakeups.
class Mailbox {
 public:
  Mailbox(int owner, int nranks, CommStats* stats);

  void push(Message msg);

  /// Blocks until a message matching (src, tag) is deliverable; removes and
  /// returns it. Wildcards: kAnySource / kAnyTag. Throws CommError on
  /// poison, revocation, deadline expiry, a lost predecessor from the
  /// matched source, or (for a specific src) a dead peer.
  Message pop(int src, int tag, Clock::time_point deadline = kNoDeadline);

  /// Waits for a match and reports metadata without consuming. Same failure
  /// modes as pop.
  void probe(int src, int tag, int* out_src, int* out_tag,
             std::size_t* out_bytes, Clock::time_point deadline = kNoDeadline);

  /// Non-blocking variant; returns false if nothing matches right now.
  bool iprobe(int src, int tag, int* out_src, int* out_tag,
              std::size_t* out_bytes);

  /// Registers a posted receive for (src, tag). If a matching message is
  /// already deliverable the entry completes immediately (the message is
  /// consumed from the queue); otherwise a later push() fulfills it directly
  /// — unless an earlier queued message matches the same pattern (FIFO) or
  /// the arriving message is delay-held, in which cases the message queues
  /// and the claim path picks it up. Returns the entry handle.
  std::shared_ptr<PostedRecv> post(int src, int tag);

  /// Non-blocking claim: moves the fulfilled message into *out and
  /// deregisters the entry when complete, also polling the queue (a
  /// delay-held match becomes claimable once its hold expires). Throws on
  /// poison, revocation, or a lost predecessor — but, like iprobe, not on
  /// peer death, so pollers can keep draining stragglers.
  bool try_claim(const std::shared_ptr<PostedRecv>& entry, Message* out);

  /// Blocking claim with the same failure modes as pop (including peer
  /// death and deadline expiry).
  Message claim(const std::shared_ptr<PostedRecv>& entry,
                Clock::time_point deadline = kNoDeadline);

  /// Deregisters an incomplete posted receive; a fulfilled-but-unclaimed
  /// entry's message is dropped (the caller abandoned it).
  void cancel(const std::shared_ptr<PostedRecv>& entry);

  /// Marks the mailbox dead; all blocked and future pops throw.
  void poison(const std::string& reason);

  /// Liveness epoch: records that `rank` died and wakes all waiters, so a
  /// pop blocked on that source throws immediately instead of timing out.
  void note_dead(int rank, const std::string& reason);

  /// Revocation: wakes all waiters; every blocked or future call on a tag
  /// other than kAgreeTag throws CommError(Fault::kRevoked).
  void note_revoked(const std::string& reason);

 private:
  bool matches(const Message& m, int src, int tag) const {
    return (src == -1 || m.source == src) && (tag == -1 || m.tag == tag);
  }

  Message* find(int src, int tag);

  /// True if any queued message (deliverable or delay-held) matches; a held
  /// match still blocks direct fulfillment of a posted receive, because FIFO
  /// order must hold across the hold window.
  bool queue_has_match(int src, int tag) const;

  /// Throws if the mailbox state forbids a (src, tag) wait; returns the
  /// wake-up bound (deadline, or an earlier delayed-match due time).
  Clock::time_point check_and_bound(int src, int tag,
                                    Clock::time_point deadline);

  /// Queue-side completion for a claim: consumes a deliverable queued match
  /// into *out. Call with mutex_ held. Throws kLost like find/pop.
  bool claim_from_queue_locked(const std::shared_ptr<PostedRecv>& entry,
                               Message* out);

  void erase_posted_locked(const std::shared_ptr<PostedRecv>& entry);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::vector<std::shared_ptr<PostedRecv>> posted_;  // in post order
  int owner_;
  bool poisoned_ = false;
  std::string poison_reason_;
  bool revoked_ = false;
  std::string revoke_reason_;
  std::vector<char> dead_;                 // per-rank death flags
  std::string dead_reason_;                // reason of the latest death
  std::vector<char> lost_;                 // per-source sequence-gap flags
  std::vector<std::uint64_t> next_seq_;    // per-source expected sequence
  CommStats* stats_;
};

/// Sense-reversing barrier shared by all ranks of a world. A dead rank makes
/// every later barrier incompletable, so arrivals throw instead of hanging.
class Barrier {
 public:
  explicit Barrier(int n, CommStats* stats = nullptr)
      : n_(n), stats_(stats) {}

  void arrive_and_wait(Clock::time_point deadline = kNoDeadline);
  void poison(const std::string& reason);
  void note_dead(int rank, const std::string& reason);
  void note_revoked(const std::string& reason);

 private:
  /// Throws if the barrier can no longer complete; call with mutex_ held.
  void check_failed();

  std::mutex mutex_;
  std::condition_variable cv_;
  int n_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  bool poisoned_ = false;
  std::string poison_reason_;
  bool any_dead_ = false;
  std::string dead_reason_;
  bool revoked_ = false;
  std::string revoke_reason_;
  CommStats* stats_;
};

class World {
 public:
  explicit World(int nranks, WorldConfig config = {});

  int size() const { return static_cast<int>(mailboxes_.size()); }
  Mailbox& mailbox(int rank) { return *mailboxes_[static_cast<std::size_t>(rank)]; }
  Barrier& barrier() { return barrier_; }
  const WorldConfig& config() const { return config_; }
  CommStats* stats() const { return config_.stats; }

  /// Poisons every mailbox and the barrier (called when a rank throws).
  void poison_all(const std::string& reason);

  /// Liveness epoch: marks `rank` dead and wakes every blocked call in the
  /// world so waiters on that rank fail fast. Idempotent.
  void mark_dead(int rank, const std::string& reason);

  /// Revokes the world: every blocked and future call outside the agreement
  /// plane throws CommError(Fault::kRevoked). The detecting rank calls this
  /// so all survivors converge on recovery within one blocking call, not one
  /// timeout each. Idempotent.
  void revoke(const std::string& reason);

  bool revoked() const;
  bool is_dead(int rank) const;
  std::vector<int> live_ranks() const;

  /// Monotone count of deaths observed (a cheap "did anything change" probe).
  std::uint64_t death_epoch() const;

 private:
  WorldConfig config_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  Barrier barrier_;
  mutable std::mutex mu_;
  std::vector<char> dead_;
  std::uint64_t death_epoch_ = 0;
  bool revoked_ = false;
};

}  // namespace minivpic::vmpi::detail
