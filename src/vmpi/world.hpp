// Internal shared state of a vmpi Runtime::run invocation: one mailbox per
// rank plus a central barrier. Not part of the public API.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace minivpic::vmpi::detail {

struct Message {
  int source = -1;
  int tag = -1;
  std::vector<std::byte> payload;
};

/// Thread-safe per-rank message queue with (source, tag) FIFO matching.
class Mailbox {
 public:
  void push(Message msg);

  /// Blocks until a message matching (src, tag) is queued; removes and
  /// returns it. Wildcards: kAnySource / kAnyTag. Throws if poisoned.
  Message pop(int src, int tag);

  /// Waits for a match and reports metadata without consuming.
  void probe(int src, int tag, int* out_src, int* out_tag,
             std::size_t* out_bytes);

  /// Non-blocking variant; returns false if nothing matches right now.
  bool iprobe(int src, int tag, int* out_src, int* out_tag,
              std::size_t* out_bytes);

  /// Marks the mailbox dead; all blocked and future pops throw.
  void poison(const std::string& reason);

 private:
  bool matches(const Message& m, int src, int tag) const {
    return (src == -1 || m.source == src) && (tag == -1 || m.tag == tag);
  }

  Message* find(int src, int tag);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
  std::string poison_reason_;
};

/// Sense-reversing barrier shared by all ranks of a world.
class Barrier {
 public:
  explicit Barrier(int n) : n_(n) {}

  void arrive_and_wait();
  void poison(const std::string& reason);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int n_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  bool poisoned_ = false;
  std::string poison_reason_;
};

class World {
 public:
  explicit World(int nranks);

  int size() const { return static_cast<int>(mailboxes_.size()); }
  Mailbox& mailbox(int rank) { return *mailboxes_[static_cast<std::size_t>(rank)]; }
  Barrier& barrier() { return barrier_; }

  /// Poisons every mailbox and the barrier (called when a rank throws).
  void poison_all(const std::string& reason);

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  Barrier barrier_;
};

}  // namespace minivpic::vmpi::detail
