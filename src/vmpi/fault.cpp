#include "vmpi/fault.hpp"

#include <cstdlib>

#include "util/error.hpp"
#include "vmpi/error.hpp"

namespace minivpic::vmpi {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKill: return "kill";
    case FaultKind::kCorrupt: return "flip";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kDelay: return "delay";
  }
  return "unknown";
}

FaultPlane::FaultPlane(std::uint64_t seed) : seed_(seed) {}

void FaultPlane::kill_rank(int rank, std::int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  scheduled_.push_back({FaultKind::kKill, rank, step});
}

void FaultPlane::corrupt_message(int rank, std::int64_t step, int bit) {
  MV_REQUIRE(bit >= 0, "corrupt_message bit index must be >= 0, got " << bit);
  std::lock_guard<std::mutex> lock(mu_);
  scheduled_.push_back({FaultKind::kCorrupt, rank, step, bit});
}

void FaultPlane::drop_message(int rank, std::int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  scheduled_.push_back({FaultKind::kDrop, rank, step});
}

void FaultPlane::duplicate_message(int rank, std::int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  scheduled_.push_back({FaultKind::kDuplicate, rank, step});
}

void FaultPlane::delay_message(int rank, std::int64_t step, double seconds) {
  MV_REQUIRE(seconds >= 0.0, "delay must be >= 0, got " << seconds);
  std::lock_guard<std::mutex> lock(mu_);
  scheduled_.push_back({FaultKind::kDelay, rank, step, 0, seconds});
}

void FaultPlane::schedule_from_spec(const std::string& spec) {
  const auto at = spec.rfind('@');
  MV_REQUIRE(at != std::string::npos && at + 1 < spec.size(),
             "fault spec '" << spec << "' missing '@step'");
  char* end = nullptr;
  const std::string step_text = spec.substr(at + 1);
  const long long step = std::strtoll(step_text.c_str(), &end, 10);
  MV_REQUIRE(end != nullptr && *end == '\0' && step >= 0,
             "fault spec '" << spec << "' has a bad step '" << step_text
                            << "'");

  std::string head = spec.substr(0, at);
  std::string kind = head;
  int rank = 1;
  double arg = -1.0;
  if (const auto c1 = head.find(':'); c1 != std::string::npos) {
    kind = head.substr(0, c1);
    std::string rest = head.substr(c1 + 1);
    std::string rank_text = rest;
    if (const auto c2 = rest.find(':'); c2 != std::string::npos) {
      rank_text = rest.substr(0, c2);
      const std::string arg_text = rest.substr(c2 + 1);
      arg = std::strtod(arg_text.c_str(), &end);
      MV_REQUIRE(end != nullptr && *end == '\0' && arg >= 0.0,
                 "fault spec '" << spec << "' has a bad argument '" << arg_text
                                << "'");
    }
    rank = static_cast<int>(std::strtol(rank_text.c_str(), &end, 10));
    MV_REQUIRE(end != nullptr && *end == '\0' && rank >= 0,
               "fault spec '" << spec << "' has a bad rank '" << rank_text
                              << "'");
  }

  if (kind == "kill") {
    kill_rank(rank, step);
  } else if (kind == "flip") {
    corrupt_message(rank, step, arg >= 0.0 ? static_cast<int>(arg) : 0);
  } else if (kind == "drop") {
    drop_message(rank, step);
  } else if (kind == "dup") {
    duplicate_message(rank, step);
  } else if (kind == "delay") {
    delay_message(rank, step, arg >= 0.0 ? arg : 0.05);
  } else {
    MV_REQUIRE(false, "fault spec '" << spec << "' has unknown kind '" << kind
                                     << "' (want kill|flip|drop|dup|delay)");
  }
}

void FaultPlane::set_noise(FaultKind kind, double probability) {
  MV_REQUIRE(kind != FaultKind::kKill, "kill noise is not supported");
  MV_REQUIRE(probability >= 0.0 && probability <= 1.0,
             "noise probability must be in [0,1], got " << probability);
  std::lock_guard<std::mutex> lock(mu_);
  noise_[static_cast<int>(kind)] = probability;
  any_noise_ = false;
  for (double p : noise_) any_noise_ = any_noise_ || p > 0.0;
}

void FaultPlane::set_delay_seconds(double seconds) {
  MV_REQUIRE(seconds >= 0.0, "delay must be >= 0, got " << seconds);
  std::lock_guard<std::mutex> lock(mu_);
  noise_delay_seconds_ = seconds;
}

FaultPlane::RankState& FaultPlane::rank_state(int rank) {
  if (static_cast<std::size_t>(rank) >= ranks_.size())
    ranks_.resize(static_cast<std::size_t>(rank) + 1);
  return ranks_[static_cast<std::size_t>(rank)];
}

void FaultPlane::on_step(int rank, std::int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : scheduled_) {
    if (s.fired || s.rank != rank || s.step > step) continue;
    if (s.kind == FaultKind::kKill) {
      s.fired = true;
      ++injected_.killed;
      throw CommError(Fault::kKilled, "rank " + std::to_string(rank) +
                                          " killed by fault schedule at step " +
                                          std::to_string(step));
    }
    s.fired = true;  // armed: the next qualifying send consumes it
    rank_state(rank).armed.push_back(s);
  }
}

FaultPlane::SendAction FaultPlane::consume_armed(RankState& rs,
                                                 std::size_t payload_bytes) {
  SendAction action;
  for (auto it = rs.armed.begin(); it != rs.armed.end();) {
    // A corruption needs payload bits to flip; hold it for a non-empty send.
    if (it->kind == FaultKind::kCorrupt && payload_bytes == 0) {
      ++it;
      continue;
    }
    switch (it->kind) {
      case FaultKind::kCorrupt:
        action.flip_bit = it->bit;
        ++injected_.corrupted;
        break;
      case FaultKind::kDrop:
        action.drop = true;
        ++injected_.dropped;
        break;
      case FaultKind::kDuplicate:
        action.duplicate = true;
        ++injected_.duplicated;
        break;
      case FaultKind::kDelay:
        action.delay_seconds = it->seconds;
        ++injected_.delayed;
        break;
      case FaultKind::kKill:
        break;  // unreachable: kills fire in on_step
    }
    it = rs.armed.erase(it);
  }
  return action;
}

FaultPlane::SendAction FaultPlane::on_send(int rank,
                                           std::size_t payload_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  RankState& rs = rank_state(rank);
  const std::uint64_t send_index = rs.sends++;
  SendAction action;
  if (!rs.armed.empty()) action = consume_armed(rs, payload_bytes);

  if (any_noise_) {
    Rng rng(seed_, hash_combine(static_cast<std::uint64_t>(rank), send_index));
    if (double p = noise_[static_cast<int>(FaultKind::kDrop)];
        p > 0.0 && rng.uniform() < p && !action.drop) {
      action.drop = true;
      ++injected_.dropped;
    }
    if (double p = noise_[static_cast<int>(FaultKind::kDuplicate)];
        p > 0.0 && rng.uniform() < p && !action.duplicate) {
      action.duplicate = true;
      ++injected_.duplicated;
    }
    if (double p = noise_[static_cast<int>(FaultKind::kCorrupt)];
        p > 0.0 && rng.uniform() < p && action.flip_bit < 0 &&
        payload_bytes > 0) {
      action.flip_bit =
          static_cast<int>(rng.uniform_u64(8 * payload_bytes));
      ++injected_.corrupted;
    }
    if (double p = noise_[static_cast<int>(FaultKind::kDelay)];
        p > 0.0 && rng.uniform() < p && action.delay_seconds <= 0.0) {
      action.delay_seconds = noise_delay_seconds_;
      ++injected_.delayed;
    }
  }
  return action;
}

FaultPlane::Counts FaultPlane::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

}  // namespace minivpic::vmpi
