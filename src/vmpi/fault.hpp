// Deterministic comm-layer fault injection — the vmpi sibling of
// sim::FaultInjector.
//
// A FaultPlane is installed on a world via vmpi::run(nranks, fn, WorldConfig)
// and drives two hooks:
//
//  * on_step(rank, step) — called by the application at every rank's
//    step-loop head. Scheduled message faults for (rank, step) are *armed*
//    (the next qualifying send by that rank fires them) and a scheduled kill
//    throws CommError(Fault::kKilled) out of the step loop.
//  * on_send(rank, bytes) — called by Comm on every outgoing message; returns
//    the action (drop / duplicate / delay / bit-flip) to apply.
//
// Every scheduled fault fires exactly once — unlike sim::FaultInjector, whose
// faults stay scheduled to test recurrence. The asymmetry is deliberate: a
// rollback replays the step that killed a rank, and a fault that re-fired on
// every replay would make recovery impossible. In machine terms, the failed
// node has been swapped out.
//
// Optional background noise draws per-send Bernoulli trials from per-rank
// counter-based RNG streams, so a given (seed, rank, send index) always
// produces the same fault regardless of thread interleaving.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace minivpic::vmpi {

/// Injectable fault kinds (kill is a step fault; the rest are message faults).
enum class FaultKind { kKill, kCorrupt, kDrop, kDuplicate, kDelay };

const char* fault_kind_name(FaultKind kind);

class FaultPlane {
 public:
  explicit FaultPlane(std::uint64_t seed = 0x5eedf417u);

  // -- deterministic scheduled faults (each fires exactly once) ------------

  /// Kills `rank` at the head of step `step`: on_step throws
  /// CommError(Fault::kKilled), which the rank's step loop is expected to
  /// catch, mark itself dead, and return.
  void kill_rank(int rank, std::int64_t step);

  /// Flips `bit` of the payload of the next non-empty message `rank` sends
  /// at or after step `step` (the bit index wraps within the payload).
  void corrupt_message(int rank, std::int64_t step, int bit = 0);

  /// Drops the next message `rank` sends at or after step `step`.
  void drop_message(int rank, std::int64_t step);

  /// Delivers the next message `rank` sends at or after step `step` twice.
  void duplicate_message(int rank, std::int64_t step);

  /// Holds the next message `rank` sends at or after step `step` for
  /// `seconds` before it becomes receivable.
  void delay_message(int rank, std::int64_t step, double seconds);

  /// Parses a run_deck-style spec — `kind[:rank[:arg]]@step` with kind one of
  /// kill|flip|drop|dup|delay — and schedules it. `arg` is the bit index for
  /// flip and the hold time in seconds for delay; rank defaults to 1.
  /// Throws minivpic::Error on a malformed spec.
  void schedule_from_spec(const std::string& spec);

  // -- background noise ----------------------------------------------------

  /// Per-send probability of `kind` (kKill is rejected). Draws are
  /// deterministic in (seed, rank, send index).
  void set_noise(FaultKind kind, double probability);

  /// Hold time used by delay noise (default 1 ms).
  void set_delay_seconds(double seconds);

  // -- hooks ---------------------------------------------------------------

  /// Arms message faults scheduled for (rank, step' <= step) and throws
  /// CommError(Fault::kKilled) if a kill is due. Call at every step-loop
  /// head. Thread-safe.
  void on_step(int rank, std::int64_t step);

  struct SendAction {
    bool drop = false;
    bool duplicate = false;
    int flip_bit = -1;          ///< >= 0: flip this payload bit
    double delay_seconds = 0.0; ///< > 0: hold delivery this long
    bool any() const {
      return drop || duplicate || flip_bit >= 0 || delay_seconds > 0.0;
    }
  };

  /// Returns the fault action for the next message `rank` sends
  /// (`payload_bytes` long). Armed corruption waits for a non-empty payload.
  /// Thread-safe; cheap when nothing is armed and no noise is configured.
  SendAction on_send(int rank, std::size_t payload_bytes);

  // -- accounting ----------------------------------------------------------

  struct Counts {
    std::int64_t killed = 0;
    std::int64_t corrupted = 0;
    std::int64_t dropped = 0;
    std::int64_t duplicated = 0;
    std::int64_t delayed = 0;
    std::int64_t total() const {
      return killed + corrupted + dropped + duplicated + delayed;
    }
  };

  /// Faults actually injected so far (fired schedule entries + noise hits).
  Counts injected() const;

 private:
  struct Scheduled {
    FaultKind kind;
    int rank;
    std::int64_t step;
    int bit = 0;
    double seconds = 0.0;
    bool fired = false;
  };

  struct RankState {
    std::vector<Scheduled> armed;  // message faults waiting for a send
    std::uint64_t sends = 0;       // per-rank send index for noise draws
  };

  SendAction consume_armed(RankState& rs, std::size_t payload_bytes);

  mutable std::mutex mu_;
  std::uint64_t seed_;
  std::vector<Scheduled> scheduled_;
  std::vector<RankState> ranks_;  // grown on demand
  double noise_[5] = {0, 0, 0, 0, 0};  // indexed by FaultKind
  bool any_noise_ = false;
  double noise_delay_seconds_ = 1e-3;
  Counts injected_;

  RankState& rank_state(int rank);
};

}  // namespace minivpic::vmpi
