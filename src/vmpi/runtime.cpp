#include "vmpi/runtime.hpp"

#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "vmpi/world.hpp"

namespace minivpic::vmpi {

void run(int nranks, const RankFn& fn, const WorldConfig& config) {
  MV_REQUIRE(nranks >= 1, "need at least one rank, got " << nranks);
  MV_REQUIRE(fn != nullptr, "rank function must be callable");

  detail::World world(nranks, config);

  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto rank_main = [&](int rank) {
    Comm comm(&world, rank, nranks);
    try {
      fn(comm);
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      // Carry the root cause into the poison reason, so ranks released by
      // the poison (and anything that ledgers their error) see what
      // actually failed rather than a generic "a rank failed".
      world.poison_all("rank " + std::to_string(rank) + " failed: " +
                       e.what());
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      world.poison_all("rank " + std::to_string(rank) + " failed");
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks - 1));
  for (int r = 1; r < nranks; ++r) threads.emplace_back(rank_main, r);
  rank_main(0);
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

void run(int nranks, const RankFn& fn) { run(nranks, fn, WorldConfig{}); }

}  // namespace minivpic::vmpi
