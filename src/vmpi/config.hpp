// Fault-tolerance configuration and counters for a vmpi world.
//
// A WorldConfig is passed to vmpi::run(nranks, fn, config); the default
// configuration (no deadline, no framing, no fault plane) preserves the
// pre-fault-tolerance semantics bit for bit — payloads are never touched and
// blocking calls wait forever.
#pragma once

#include <atomic>
#include <cstdint>

namespace minivpic::vmpi {

class FaultPlane;

/// Comm-event hook: a plain-C callback (no telemetry dependency — vmpi sits
/// below telemetry in the link graph) invoked from rank threads on every
/// send, every successful receive, and every CommError about to propagate.
/// `event` is one of kCommHook*; `peer` is the other rank (-1 unknown);
/// `detail` is the vmpi::Fault discriminant for kCommHookFault, else 0;
/// `bytes` is the payload size where meaningful. Must be noexcept-ish and
/// cheap — it runs on the message hot path.
using CommHook = void (*)(void* ctx, int rank, int event, int peer,
                          int detail, unsigned long long bytes);
inline constexpr int kCommHookSend = 0;
inline constexpr int kCommHookRecv = 1;
inline constexpr int kCommHookFault = 2;

/// Caller-owned fault-tolerance counters for one world. The world holds a
/// pointer, so the caller can read totals after vmpi::run returns (and
/// accumulate across the relaunches of a recovery sequence). All fields are
/// monotonic; mutated from rank threads, hence atomic.
struct CommStats {
  std::atomic<std::int64_t> faults_injected{0};   ///< FaultPlane actions applied
  std::atomic<std::int64_t> crc_failures{0};      ///< payload CRC mismatches
  std::atomic<std::int64_t> duplicates_dropped{0};///< stale seq, discarded
  std::atomic<std::int64_t> sequence_gaps{0};     ///< missing-message detections
  std::atomic<std::int64_t> timeouts{0};          ///< deadline expiries
  std::atomic<std::int64_t> peer_deaths{0};       ///< ranks marked dead
  std::atomic<std::int64_t> revokes{0};           ///< world revocations

  /// Faults detected by the receiver-side machinery (CRC + dedup + gaps).
  std::int64_t faults_detected() const {
    return crc_failures.load() + duplicates_dropped.load() +
           sequence_gaps.load();
  }

  struct Snapshot {
    std::int64_t faults_injected = 0;
    std::int64_t faults_detected = 0;
    std::int64_t crc_failures = 0;
    std::int64_t duplicates_dropped = 0;
    std::int64_t sequence_gaps = 0;
    std::int64_t timeouts = 0;
    std::int64_t peer_deaths = 0;
    std::int64_t revokes = 0;
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.faults_injected = faults_injected.load();
    s.crc_failures = crc_failures.load();
    s.duplicates_dropped = duplicates_dropped.load();
    s.sequence_gaps = sequence_gaps.load();
    s.faults_detected = s.crc_failures + s.duplicates_dropped +
                        s.sequence_gaps;
    s.timeouts = timeouts.load();
    s.peer_deaths = peer_deaths.load();
    s.revokes = revokes.load();
    return s;
  }
};

/// Per-world fault-tolerance knobs.
struct WorldConfig {
  /// Default deadline, in seconds, for every blocking call (recv, probe,
  /// wait, barrier, collectives). 0 means wait forever (the pre-FT default).
  double timeout_seconds = 0.0;

  /// CRC32-frame every message; the receiver verifies on delivery and throws
  /// CommError(Fault::kCorrupt) on mismatch. Payload bytes are untouched.
  bool checksum = false;

  /// Per-link sequence numbers: duplicated messages are discarded on arrival
  /// and a gap (a dropped message) surfaces as CommError(Fault::kLost) at
  /// the next receive from that source.
  bool sequencing = false;

  /// Optional fault-injection schedule (not owned; may be null).
  FaultPlane* fault_plane = nullptr;

  /// Optional counter sink (not owned; may be null). Must outlive the world.
  CommStats* stats = nullptr;

  /// Optional comm-event hook (e.g. the flight recorder's vmpi_comm_hook).
  /// Both may be null; ctx must outlive the world.
  CommHook comm_hook = nullptr;
  void* comm_hook_ctx = nullptr;
};

}  // namespace minivpic::vmpi
