// vmpi: an in-process message-passing runtime with MPI semantics.
//
// This is the substitution for Roadrunner's MPI layer (see DESIGN.md §2):
// ranks are threads inside one process, point-to-point messages are buffered
// byte payloads matched on (source, tag) in FIFO order, and collectives are
// built on top of point-to-point exactly as a simple MPI implementation
// would. Application code (ghost exchange, particle migration, reductions)
// is written against this interface exactly as it would be against MPI, so
// the algorithmic structure of the paper's code is preserved.
//
// Semantics:
//  * send() is buffered: it copies the payload and returns immediately, so a
//    matched send/recv pair can never deadlock (like MPI_Bsend).
//  * recv() blocks until a matching message arrives; matching is FIFO per
//    (source, tag) with kAnySource / kAnyTag wildcards.
//  * Collectives must be called by every rank in the same order (as in
//    MPI). They use a reserved internal tag, which combined with per-source
//    FIFO ordering makes successive collectives unambiguous.
//  * If any rank throws, the runtime poisons all mailboxes: blocked calls
//    throw minivpic::Error instead of hanging.
//
// Fault tolerance (see docs/FAULTS.md): a WorldConfig passed to vmpi::run can
// add per-call deadlines, CRC32 message framing, per-link sequence numbers,
// and a FaultPlane injection schedule. Detected failures throw the typed
// vmpi::CommError; the default configuration changes nothing.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/error.hpp"
#include "vmpi/config.hpp"
#include "vmpi/error.hpp"

namespace minivpic::vmpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Metadata for a received message (MPI_Status equivalent).
struct Status {
  int source = -1;
  int tag = -1;
  std::size_t bytes = 0;
};

/// Reduction operations for allreduce/reduce.
enum class Op { kSum, kMin, kMax };

namespace detail {
class World;       // shared state of one Runtime::run invocation
struct Message;    // a queued point-to-point message
struct PostedRecv; // a pre-registered receive fulfilled at delivery time
/// Tag reserved for collective traffic; user tags must be >= 0.
inline constexpr int kCollectiveTag = -2;
}  // namespace detail

/// Handle for a pending nonblocking receive.
///
/// Two flavors share this handle. A classic irecv (irecv_bytes) polls the
/// mailbox on test()/wait() and copies into a caller buffer. A posted
/// receive (ipost) is registered in the mailbox so a matching send completes
/// it at delivery time — genuinely asynchronous progress, no polling needed —
/// with the payload stored inside the request (retrieve with take<T>() or
/// bytes()). Both run the full FT pipeline (CRC verification, typed faults,
/// comm hooks) on the receiving rank's thread at the test()/wait() call that
/// first observes completion, never on the sender's thread.
class Request {
 public:
  Request() = default;
  bool valid() const { return impl_ != nullptr; }

  /// True once test()/wait() observed completion.
  bool done() const;

  /// Nonblocking completion check: if a matching message is queued (classic)
  /// or the posted receive was fulfilled, consumes it and returns true
  /// (filling `status` if given). Idempotent once complete, like wait().
  bool test(Status* status = nullptr);

  /// Payload of a completed posted receive (empty for classic requests).
  const std::vector<std::byte>& bytes() const;

  /// Moves the payload of a completed posted receive out as a vector<T>;
  /// the payload length must be a multiple of sizeof(T).
  template <typename T>
  std::vector<T> take() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte>& b = bytes();
    MV_REQUIRE(b.size() % sizeof(T) == 0,
               "posted payload length " << b.size()
                                        << " not a multiple of element size");
    std::vector<T> out(b.size() / sizeof(T));
    if (!b.empty()) std::memcpy(out.data(), b.data(), b.size());
    return out;
  }

 private:
  friend class Comm;
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Callback invoked exactly once when a posted receive's completion is first
/// observed (inside test()/wait(), after CRC verification) — on the thread
/// driving the request, never the sender's.
using RecvCallback = std::function<void(const Status&)>;

/// Per-rank communicator endpoint. Each rank's thread owns exactly one Comm;
/// Comm methods are not thread-safe within a rank (as in MPI).
class Comm {
 public:
  Comm(detail::World* world, int rank, int size);

  int rank() const { return rank_; }
  int size() const { return size_; }

  // -- point to point (raw bytes) ----------------------------------------

  /// Buffered send of `bytes` bytes to `dst` with non-negative `tag`.
  void send_bytes(int dst, int tag, const void* data, std::size_t bytes);

  /// Blocking receive matching (src, tag); payload must fit `capacity`.
  Status recv_bytes(int src, int tag, void* data, std::size_t capacity);

  /// Blocking probe: waits for a matching message and reports its size
  /// without consuming it.
  Status probe(int src, int tag);

  /// Nonblocking probe; returns true and fills `status` if a matching
  /// message is already queued.
  bool iprobe(int src, int tag, Status* status);

  // -- point to point (typed) ---------------------------------------------

  template <typename T>
  void send(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag, data.data(), data.size_bytes());
  }

  template <typename T>
  void send_value(int dst, int tag, const T& v) {
    send(dst, tag, std::span<const T>(&v, 1));
  }

  /// Receives into `out`; the message length must be exactly out.size().
  template <typename T>
  Status recv(int src, int tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    Status st = recv_bytes(src, tag, out.data(), out.size_bytes());
    MV_REQUIRE(st.bytes == out.size_bytes(),
               "recv size mismatch: got " << st.bytes << " bytes, expected "
                                          << out.size_bytes());
    return st;
  }

  template <typename T>
  T recv_value(int src, int tag) {
    T v{};
    recv(src, tag, std::span<T>(&v, 1));
    return v;
  }

  /// Receives a message of unknown length as a vector<T>; the payload length
  /// must be a multiple of sizeof(T).
  template <typename T>
  std::vector<T> recv_any(int src, int tag, Status* status = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    Status st = probe(src, tag);
    MV_REQUIRE(st.bytes % sizeof(T) == 0,
               "message length " << st.bytes
                                 << " not a multiple of element size");
    std::vector<T> out(st.bytes / sizeof(T));
    Status got = recv_bytes(st.source, st.tag, out.data(), st.bytes);
    MV_ASSERT(got.bytes == st.bytes);
    if (status != nullptr) *status = got;
    return out;
  }

  // -- nonblocking ----------------------------------------------------------

  /// Nonblocking receive; complete with wait(). (Sends are buffered, so an
  /// isend is just send().)
  template <typename T>
  Request irecv(int src, int tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return irecv_bytes(src, tag, out.data(), out.size_bytes());
  }

  Request irecv_bytes(int src, int tag, void* data, std::size_t capacity);

  /// Posted receive of unknown size: registers the receive in this rank's
  /// mailbox so a matching send completes it at delivery time (no receiver
  /// polling). The payload lives inside the request — retrieve it with
  /// Request::take<T>() / bytes() after wait() or a true test(). The
  /// optional `on_complete` runs exactly once, on the thread that first
  /// observes completion. FIFO matching, CRC framing, sequencing, deadlines,
  /// and fault typing are identical to the blocking recv path.
  Request ipost(int src, int tag, RecvCallback on_complete = {});

  /// Deregisters an unfinished posted receive (e.g. when a sibling receive
  /// failed and the exchange is being torn down) and invalidates the
  /// request (valid() turns false). Safe on classic or completed requests:
  /// they are just invalidated.
  void cancel(Request& request);

  /// Blocks until the request completes; returns its Status.
  Status wait(Request& request);

  /// Waits for every request in order; returns one Status per request. Each
  /// wait is bounded by the communicator deadline individually, so the worst
  /// case is requests.size() timeouts.
  std::vector<Status> waitall(std::span<Request> requests);

  // -- collectives ------------------------------------------------------------

  void barrier();

  /// In-place elementwise allreduce over all ranks (rank 0 reduces, then
  /// broadcasts — the latency-bound flat tree is fine at our rank counts).
  template <typename T>
  void allreduce(std::span<T> data, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size_ == 1) return;
    if (rank_ == 0) {
      std::vector<T> buf(data.size());
      for (int r = 1; r < size_; ++r) {
        recv_internal(r, buf.data(), buf.size() * sizeof(T));
        apply_op(op, data.data(), buf.data(), data.size());
      }
      for (int r = 1; r < size_; ++r)
        send_internal(r, data.data(), data.size_bytes());
    } else {
      send_internal(0, data.data(), data.size_bytes());
      recv_internal(0, data.data(), data.size_bytes());
    }
  }

  template <typename T>
  T allreduce_value(T v, Op op) {
    allreduce(std::span<T>(&v, 1), op);
    return v;
  }

  /// Broadcast from root, in place.
  template <typename T>
  void bcast(std::span<T> data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_bytes(data.data(), data.size_bytes(), root);
  }

  template <typename T>
  T bcast_value(T v, int root) {
    bcast(std::span<T>(&v, 1), root);
    return v;
  }

  /// Gathers one value per rank to root; non-roots get an empty vector.
  template <typename T>
  std::vector<T> gather(const T& v, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank_ == root) {
      std::vector<T> out(static_cast<std::size_t>(size_));
      out[static_cast<std::size_t>(root)] = v;
      for (int r = 0; r < size_; ++r) {
        if (r == root) continue;
        recv_internal(r, &out[static_cast<std::size_t>(r)], sizeof(T));
      }
      return out;
    }
    send_internal(root, &v, sizeof(T));
    return {};
  }

  // -- fault tolerance ----------------------------------------------------

  /// Per-communicator deadline (seconds) for every blocking call, initially
  /// WorldConfig::timeout_seconds. 0 restores "wait forever".
  void set_timeout(double seconds);
  double timeout() const { return timeout_seconds_; }

  bool is_alive(int rank) const;
  std::vector<int> live_ranks() const;

  /// Announces this rank's death (liveness epoch): peers blocked on it fail
  /// fast with CommError(Fault::kPeerDead). Called by a rank that catches a
  /// scheduled kill and is about to return from its rank function.
  void mark_self_dead(const std::string& reason);

  /// Revokes the world (ULFM-style): every blocked and future vmpi call on
  /// any rank — except agreement traffic — throws CommError(Fault::kRevoked).
  /// The first rank to detect a fault calls this so all survivors converge
  /// on recovery within one blocking call instead of one timeout each.
  void revoke(const std::string& reason);
  bool revoked() const;

  /// Recovery agreement round: returns the minimum of `value` over every
  /// live rank that responds within `timeout_seconds`. The lowest live rank
  /// collects and redistributes; non-responders are marked dead and
  /// excluded. A rank that cannot reach the collector falls back to its own
  /// value (callers feed values derived from shared state — the checkpoint
  /// manifest — so the fallback still converges). Runs on the kAgreeTag
  /// plane, which survives revocation. Every live rank must call this.
  std::int64_t agree_min(std::int64_t value, double timeout_seconds);

 private:
  /// Invokes WorldConfig::comm_hook if set (flight-recorder feed). One
  /// branch when unset, so the hookless hot path is unchanged.
  void notify(int event, int peer, int detail, std::size_t bytes) const;

  /// Common send path: framing (seq/CRC), fault-plane actions, delivery.
  void deliver(int dst, int tag, const void* data, std::size_t bytes);

  /// Verifies CRC framing of a received message; throws CommError(kCorrupt).
  void verify_frame(const detail::Message& msg) const;

  /// Deadline for a blocking call starting now (kNoDeadline if timeout 0).
  std::chrono::steady_clock::time_point call_deadline() const;

  /// Posted-receive progress (shared by Request::test and wait): claims a
  /// fulfilled/queued match and runs the observation-time FT pipeline.
  friend class Request;
  bool test_posted(Request::Impl& impl);
  Status wait_posted(Request::Impl& impl);
  void complete_posted(Request::Impl& impl, detail::Message msg);

  /// Collective-plane p2p (reserved tag; exact-size receive).
  void send_internal(int dst, const void* data, std::size_t bytes);
  void recv_internal(int src, void* data, std::size_t bytes);
  void bcast_bytes(void* data, std::size_t bytes, int root);

  template <typename T>
  static void apply_op(Op op, T* acc, const T* in, std::size_t n) {
    switch (op) {
      case Op::kSum:
        for (std::size_t i = 0; i < n; ++i) acc[i] += in[i];
        break;
      case Op::kMin:
        for (std::size_t i = 0; i < n; ++i) acc[i] = std::min(acc[i], in[i]);
        break;
      case Op::kMax:
        for (std::size_t i = 0; i < n; ++i) acc[i] = std::max(acc[i], in[i]);
        break;
    }
  }

  detail::World* world_;
  int rank_;
  int size_;
  double timeout_seconds_ = 0.0;
  std::vector<std::uint64_t> send_seq_;  // per-destination sequence counters
};

}  // namespace minivpic::vmpi
