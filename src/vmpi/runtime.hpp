// Launches a fixed-size group of vmpi ranks, one thread per rank, and runs a
// rank function on each — the in-process equivalent of `mpirun -np N`.
#pragma once

#include <functional>

#include "vmpi/comm.hpp"

namespace minivpic::vmpi {

/// Rank entry point: receives this rank's communicator.
using RankFn = std::function<void(Comm&)>;

/// Runs `fn` on `nranks` ranks. Rank 0 executes on the calling thread; ranks
/// 1..n-1 on fresh threads. Blocks until every rank returns. If any rank
/// throws, all mailboxes are poisoned (so no rank can hang on a recv or
/// barrier), every rank is joined, and the first exception is rethrown.
void run(int nranks, const RankFn& fn);

/// As above, with a fault-tolerance configuration for the world: per-call
/// deadlines, CRC/sequence message framing, a FaultPlane schedule, and a
/// caller-owned CommStats sink (see vmpi/config.hpp). `config.fault_plane`
/// and `config.stats` must outlive the call. The default WorldConfig makes
/// this identical to the two-argument overload.
void run(int nranks, const RankFn& fn, const WorldConfig& config);

}  // namespace minivpic::vmpi
