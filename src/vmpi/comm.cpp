#include "vmpi/comm.hpp"

#include <thread>

#include "util/crc32.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/world.hpp"

namespace minivpic::vmpi {

namespace detail {

namespace {

std::string wait_target(int src, int tag) {
  return "(src=" + (src == -1 ? std::string("any") : std::to_string(src)) +
         ", tag=" + (tag == -1 ? std::string("any") : std::to_string(tag)) +
         ")";
}

}  // namespace

Mailbox::Mailbox(int owner, int nranks, CommStats* stats)
    : owner_(owner),
      dead_(static_cast<std::size_t>(nranks), 0),
      lost_(static_cast<std::size_t>(nranks), 0),
      next_seq_(static_cast<std::size_t>(nranks), 0),
      stats_(stats) {}

void Mailbox::push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (msg.has_seq) {
      auto& expected = next_seq_[static_cast<std::size_t>(msg.source)];
      if (msg.seq < expected) {
        // A duplicate delivery (replayed or fault-injected): discard.
        if (stats_ != nullptr) ++stats_->duplicates_dropped;
        return;
      }
      if (msg.seq > expected) {
        // A predecessor never arrived; poison this link so the receiver
        // fails typed instead of consuming the wrong message.
        lost_[static_cast<std::size_t>(msg.source)] = 1;
        if (stats_ != nullptr) ++stats_->sequence_gaps;
      }
      expected = msg.seq + 1;
    }
    // Direct fulfillment of a posted receive. Only a clean, immediately
    // deliverable message may skip the queue: a delay-held message, a
    // message from a source with a lost predecessor, or a message whose
    // pattern already has a queued match must all go through the queue so
    // FIFO order and typed failures stay exactly those of the pop path.
    bool fulfilled = false;
    if (!msg.delayed && !lost_[static_cast<std::size_t>(msg.source)]) {
      for (auto& e : posted_) {
        if (e->complete) continue;
        if (!matches(msg, e->src, e->tag)) continue;
        if (queue_has_match(e->src, e->tag)) continue;  // FIFO: queue wins
        e->msg = std::move(msg);
        e->complete = true;
        fulfilled = true;
        break;
      }
    }
    if (!fulfilled) queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message* Mailbox::find(int src, int tag) {
  const auto now = Clock::now();
  for (auto& m : queue_) {
    if (!matches(m, src, tag)) continue;
    if (lost_[static_cast<std::size_t>(m.source)])
      throw CommError(Fault::kLost,
                      "a message from rank " + std::to_string(m.source) +
                          " was lost before " + wait_target(src, tag));
    // FIFO: never overtake the first match, even while a delay fault holds
    // it back.
    if (m.delayed && m.not_before > now) return nullptr;
    return &m;
  }
  return nullptr;
}

bool Mailbox::queue_has_match(int src, int tag) const {
  for (const auto& m : queue_)
    if (matches(m, src, tag)) return true;
  return false;
}

Clock::time_point Mailbox::check_and_bound(int src, int tag,
                                           Clock::time_point deadline) {
  // Call with mutex_ held, after find() returned nothing deliverable.
  const auto now = Clock::now();
  Clock::time_point bound = deadline;
  bool have_pending = false;
  for (const auto& m : queue_) {
    if (!matches(m, src, tag)) continue;
    have_pending = true;  // a delayed match is on its way
    if (m.delayed && m.not_before < bound) bound = m.not_before;
    break;
  }
  if (!have_pending) {
    if (src != -1 && lost_[static_cast<std::size_t>(src)])
      throw CommError(Fault::kLost, "a message from rank " +
                                        std::to_string(src) +
                                        " was lost before " +
                                        wait_target(src, tag));
    if (src != -1 && dead_[static_cast<std::size_t>(src)])
      throw CommError(Fault::kPeerDead,
                      "rank " + std::to_string(src) + " is dead (" +
                          dead_reason_ + "); nothing more will arrive at " +
                          wait_target(src, tag));
    if (src == -1) {
      int live_peers = 0;
      for (int r = 0; r < static_cast<int>(dead_.size()); ++r)
        if (r != owner_ && !dead_[static_cast<std::size_t>(r)]) ++live_peers;
      if (live_peers == 0)
        throw CommError(Fault::kPeerDead,
                        "every peer is dead (" + dead_reason_ +
                            "); nothing more will arrive at " +
                            wait_target(src, tag));
    }
  }
  if (now >= deadline) {
    if (stats_ != nullptr) ++stats_->timeouts;
    throw CommError(Fault::kTimeout,
                    "deadline expired waiting for " + wait_target(src, tag));
  }
  return bound;
}

Message Mailbox::pop(int src, int tag, Clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (poisoned_)
      throw CommError(Fault::kPoisoned, "vmpi recv aborted: " + poison_reason_);
    if (revoked_ && tag != kAgreeTag)
      throw CommError(Fault::kRevoked, "vmpi recv aborted: " + revoke_reason_);
    if (Message* m = find(src, tag)) {
      Message msg = std::move(*m);
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (&*it == m) {
          queue_.erase(it);
          break;
        }
      }
      return msg;
    }
    const Clock::time_point bound = check_and_bound(src, tag, deadline);
    if (bound == kNoDeadline)
      cv_.wait(lock);
    else
      cv_.wait_until(lock, bound);
  }
}

void Mailbox::probe(int src, int tag, int* out_src, int* out_tag,
                    std::size_t* out_bytes, Clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (poisoned_)
      throw CommError(Fault::kPoisoned,
                      "vmpi probe aborted: " + poison_reason_);
    if (revoked_ && tag != kAgreeTag)
      throw CommError(Fault::kRevoked, "vmpi probe aborted: " + revoke_reason_);
    if (Message* m = find(src, tag)) {
      *out_src = m->source;
      *out_tag = m->tag;
      *out_bytes = m->payload.size();
      return;
    }
    const Clock::time_point bound = check_and_bound(src, tag, deadline);
    if (bound == kNoDeadline)
      cv_.wait(lock);
    else
      cv_.wait_until(lock, bound);
  }
}

bool Mailbox::iprobe(int src, int tag, int* out_src, int* out_tag,
                     std::size_t* out_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_)
    throw CommError(Fault::kPoisoned, "vmpi iprobe aborted: " + poison_reason_);
  if (revoked_ && tag != kAgreeTag)
    throw CommError(Fault::kRevoked, "vmpi iprobe aborted: " + revoke_reason_);
  if (Message* m = find(src, tag)) {
    *out_src = m->source;
    *out_tag = m->tag;
    *out_bytes = m->payload.size();
    return true;
  }
  return false;
}

std::shared_ptr<PostedRecv> Mailbox::post(int src, int tag) {
  auto entry = std::make_shared<PostedRecv>();
  entry->src = src;
  entry->tag = tag;
  std::lock_guard<std::mutex> lock(mutex_);
  // Pure registration, never a throw: if a match is already queued (or the
  // link is lost), the claim path consumes it — with the same FIFO order and
  // typed failures as pop — so post() stays safe to call in bulk.
  posted_.push_back(entry);
  return entry;
}

void Mailbox::erase_posted_locked(const std::shared_ptr<PostedRecv>& entry) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (*it == entry) {
      posted_.erase(it);
      return;
    }
  }
}

bool Mailbox::claim_from_queue_locked(const std::shared_ptr<PostedRecv>& entry,
                                      Message* out) {
  if (Message* m = find(entry->src, entry->tag)) {
    *out = std::move(*m);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (&*it == m) {
        queue_.erase(it);
        break;
      }
    }
    erase_posted_locked(entry);
    return true;
  }
  return false;
}

bool Mailbox::try_claim(const std::shared_ptr<PostedRecv>& entry,
                        Message* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_)
    throw CommError(Fault::kPoisoned, "vmpi recv aborted: " + poison_reason_);
  if (revoked_ && entry->tag != kAgreeTag)
    throw CommError(Fault::kRevoked, "vmpi recv aborted: " + revoke_reason_);
  if (entry->complete) {
    *out = std::move(entry->msg);
    erase_posted_locked(entry);
    return true;
  }
  // Like iprobe, the non-blocking path reports lost predecessors (via find)
  // but not peer death, so pollers can keep draining stragglers.
  return claim_from_queue_locked(entry, out);
}

Message Mailbox::claim(const std::shared_ptr<PostedRecv>& entry,
                       Clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (poisoned_)
      throw CommError(Fault::kPoisoned, "vmpi recv aborted: " + poison_reason_);
    if (revoked_ && entry->tag != kAgreeTag)
      throw CommError(Fault::kRevoked, "vmpi recv aborted: " + revoke_reason_);
    if (entry->complete) {
      Message msg = std::move(entry->msg);
      erase_posted_locked(entry);
      return msg;
    }
    Message msg;
    if (claim_from_queue_locked(entry, &msg)) return msg;
    const Clock::time_point bound =
        check_and_bound(entry->src, entry->tag, deadline);
    if (bound == kNoDeadline)
      cv_.wait(lock);
    else
      cv_.wait_until(lock, bound);
  }
}

void Mailbox::cancel(const std::shared_ptr<PostedRecv>& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  erase_posted_locked(entry);
}

void Mailbox::poison(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    poisoned_ = true;
    poison_reason_ = reason;
  }
  cv_.notify_all();
}

void Mailbox::note_dead(int rank, const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dead_[static_cast<std::size_t>(rank)] = 1;
    dead_reason_ = reason;
  }
  cv_.notify_all();
}

void Mailbox::note_revoked(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    revoked_ = true;
    revoke_reason_ = reason;
  }
  cv_.notify_all();
}

void Barrier::check_failed() {
  if (poisoned_)
    throw CommError(Fault::kPoisoned, "vmpi barrier aborted: " + poison_reason_);
  if (revoked_)
    throw CommError(Fault::kRevoked, "vmpi barrier aborted: " + revoke_reason_);
  if (any_dead_)
    throw CommError(Fault::kPeerDead,
                    "vmpi barrier cannot complete: " + dead_reason_);
}

void Barrier::arrive_and_wait(Clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  check_failed();
  const std::uint64_t gen = generation_;
  if (++waiting_ == n_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  for (;;) {
    if (deadline == kNoDeadline)
      cv_.wait(lock);
    else
      cv_.wait_until(lock, deadline);
    if (generation_ != gen) return;
    try {
      check_failed();
    } catch (...) {
      --waiting_;
      throw;
    }
    if (Clock::now() >= deadline) {
      --waiting_;
      if (stats_ != nullptr) ++stats_->timeouts;
      throw CommError(Fault::kTimeout, "barrier deadline expired");
    }
  }
}

void Barrier::poison(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    poisoned_ = true;
    poison_reason_ = reason;
  }
  cv_.notify_all();
}

void Barrier::note_dead(int rank, const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    any_dead_ = true;
    dead_reason_ = "rank " + std::to_string(rank) + " died: " + reason;
  }
  cv_.notify_all();
}

void Barrier::note_revoked(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    revoked_ = true;
    revoke_reason_ = reason;
  }
  cv_.notify_all();
}

World::World(int nranks, WorldConfig config)
    : config_(config),
      barrier_(nranks, config.stats),
      dead_(static_cast<std::size_t>(nranks), 0) {
  MV_REQUIRE(nranks > 0, "world needs at least one rank");
  MV_REQUIRE(config_.timeout_seconds >= 0.0,
             "timeout must be >= 0, got " << config_.timeout_seconds);
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>(r, nranks, config.stats));
}

void World::poison_all(const std::string& reason) {
  for (auto& mb : mailboxes_) mb->poison(reason);
  barrier_.poison(reason);
}

void World::mark_dead(int rank, const std::string& reason) {
  MV_REQUIRE(rank >= 0 && rank < size(), "mark_dead of invalid rank " << rank);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_[static_cast<std::size_t>(rank)]) return;
    dead_[static_cast<std::size_t>(rank)] = 1;
    ++death_epoch_;
  }
  if (stats() != nullptr) ++stats()->peer_deaths;
  for (auto& mb : mailboxes_) mb->note_dead(rank, reason);
  barrier_.note_dead(rank, reason);
}

void World::revoke(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (revoked_) return;
    revoked_ = true;
  }
  if (stats() != nullptr) ++stats()->revokes;
  for (auto& mb : mailboxes_) mb->note_revoked(reason);
  barrier_.note_revoked(reason);
}

bool World::revoked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return revoked_;
}

bool World::is_dead(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_[static_cast<std::size_t>(rank)] != 0;
}

std::vector<int> World::live_ranks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  for (int r = 0; r < static_cast<int>(dead_.size()); ++r)
    if (!dead_[static_cast<std::size_t>(r)]) out.push_back(r);
  return out;
}

std::uint64_t World::death_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return death_epoch_;
}

}  // namespace detail

struct Request::Impl {
  Comm* comm = nullptr;
  int src = kAnySource;
  int tag = kAnyTag;
  void* data = nullptr;
  std::size_t capacity = 0;
  bool done = false;
  Status status;
  // Posted-receive state (ipost): the mailbox entry a send fulfills, the
  // delivered payload, and the one-shot completion callback.
  std::shared_ptr<detail::PostedRecv> entry;
  std::vector<std::byte> payload;
  RecvCallback on_complete;
};

bool Request::done() const {
  MV_REQUIRE(impl_ != nullptr, "done() on an empty request");
  return impl_->done;
}

const std::vector<std::byte>& Request::bytes() const {
  MV_REQUIRE(impl_ != nullptr, "bytes() on an empty request");
  MV_REQUIRE(impl_->done, "bytes() on an incomplete request");
  return impl_->payload;
}

bool Request::test(Status* status) {
  MV_REQUIRE(impl_ != nullptr, "test on an empty request");
  Impl& impl = *impl_;
  if (!impl.done) {
    if (impl.entry != nullptr) {
      if (!impl.comm->test_posted(impl)) return false;
    } else {
      if (!impl.comm->iprobe(impl.src, impl.tag, nullptr)) return false;
      impl.status =
          impl.comm->recv_bytes(impl.src, impl.tag, impl.data, impl.capacity);
      impl.done = true;
    }
  }
  if (status != nullptr) *status = impl.status;
  return true;
}

Comm::Comm(detail::World* world, int rank, int size)
    : world_(world),
      rank_(rank),
      size_(size),
      timeout_seconds_(world->config().timeout_seconds),
      send_seq_(static_cast<std::size_t>(size), 0) {}

void Comm::set_timeout(double seconds) {
  MV_REQUIRE(seconds >= 0.0, "timeout must be >= 0, got " << seconds);
  timeout_seconds_ = seconds;
}

namespace {

detail::Clock::time_point deadline_in(double seconds) {
  if (seconds <= 0.0) return detail::kNoDeadline;
  return detail::Clock::now() +
         std::chrono::duration_cast<detail::Clock::duration>(
             std::chrono::duration<double>(seconds));
}

}  // namespace

detail::Clock::time_point Comm::call_deadline() const {
  return deadline_in(timeout_seconds_);
}

void Comm::notify(int event, int peer, int detail, std::size_t bytes) const {
  const WorldConfig& cfg = world_->config();
  if (cfg.comm_hook != nullptr)
    cfg.comm_hook(cfg.comm_hook_ctx, rank_, event, peer, detail,
                  static_cast<unsigned long long>(bytes));
}

void Comm::deliver(int dst, int tag, const void* data, std::size_t bytes) {
  notify(kCommHookSend, dst, 0, bytes);
  detail::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.resize(bytes);
  if (bytes != 0) std::memcpy(msg.payload.data(), data, bytes);

  const WorldConfig& cfg = world_->config();
  if (cfg.sequencing) {
    msg.seq = send_seq_[static_cast<std::size_t>(dst)]++;
    msg.has_seq = true;
  }
  if (cfg.checksum) {
    msg.crc = Crc32::of(msg.payload.data(), bytes);
    msg.has_crc = true;
  }

  if (cfg.fault_plane != nullptr) {
    const FaultPlane::SendAction act = cfg.fault_plane->on_send(rank_, bytes);
    if (act.any() && world_->stats() != nullptr) {
      const int n = static_cast<int>(act.drop) + static_cast<int>(act.duplicate) +
                    static_cast<int>(act.flip_bit >= 0) +
                    static_cast<int>(act.delay_seconds > 0.0);
      world_->stats()->faults_injected += n;
    }
    if (act.flip_bit >= 0 && bytes != 0) {
      const std::size_t bit = static_cast<std::size_t>(act.flip_bit) %
                              (8 * bytes);
      msg.payload[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    }
    if (act.drop) return;  // the consumed sequence number becomes the gap
    if (act.delay_seconds > 0.0) {
      msg.delayed = true;
      msg.not_before = deadline_in(act.delay_seconds);
    }
    if (act.duplicate) {
      detail::Message copy = msg;
      world_->mailbox(dst).push(std::move(copy));
    }
  }
  world_->mailbox(dst).push(std::move(msg));
}

void Comm::verify_frame(const detail::Message& msg) const {
  if (!msg.has_crc) return;
  if (Crc32::of(msg.payload.data(), msg.payload.size()) == msg.crc) return;
  if (world_->stats() != nullptr) ++world_->stats()->crc_failures;
  throw CommError(Fault::kCorrupt,
                  "payload of message from rank " + std::to_string(msg.source) +
                      " (tag " + std::to_string(msg.tag) + ", " +
                      std::to_string(msg.payload.size()) +
                      " bytes) failed its CRC check");
}

void Comm::send_bytes(int dst, int tag, const void* data, std::size_t bytes) {
  MV_REQUIRE(dst >= 0 && dst < size_, "send to invalid rank " << dst);
  MV_REQUIRE(tag >= 0, "user message tags must be non-negative, got " << tag);
  deliver(dst, tag, data, bytes);
}

Status Comm::recv_bytes(int src, int tag, void* data, std::size_t capacity) {
  MV_REQUIRE(src == kAnySource || (src >= 0 && src < size_),
             "recv from invalid rank " << src);
  try {
    detail::Message msg = world_->mailbox(rank_).pop(src, tag, call_deadline());
    verify_frame(msg);
    MV_REQUIRE(msg.payload.size() <= capacity,
               "message of " << msg.payload.size()
                             << " bytes exceeds buffer of " << capacity);
    if (!msg.payload.empty())
      std::memcpy(data, msg.payload.data(), msg.payload.size());
    notify(kCommHookRecv, msg.source, 0, msg.payload.size());
    return Status{msg.source, msg.tag, msg.payload.size()};
  } catch (const CommError& e) {
    notify(kCommHookFault, src, static_cast<int>(e.fault()), 0);
    throw;
  }
}

Status Comm::probe(int src, int tag) {
  Status st;
  std::size_t bytes = 0;
  try {
    world_->mailbox(rank_).probe(src, tag, &st.source, &st.tag, &bytes,
                                 call_deadline());
  } catch (const CommError& e) {
    notify(kCommHookFault, src, static_cast<int>(e.fault()), 0);
    throw;
  }
  st.bytes = bytes;
  return st;
}

bool Comm::iprobe(int src, int tag, Status* status) {
  Status st;
  std::size_t bytes = 0;
  if (!world_->mailbox(rank_).iprobe(src, tag, &st.source, &st.tag, &bytes))
    return false;
  st.bytes = bytes;
  if (status != nullptr) *status = st;
  return true;
}

Request Comm::irecv_bytes(int src, int tag, void* data, std::size_t capacity) {
  Request req;
  req.impl_ = std::make_shared<Request::Impl>();
  req.impl_->comm = this;
  req.impl_->src = src;
  req.impl_->tag = tag;
  req.impl_->data = data;
  req.impl_->capacity = capacity;
  return req;
}

Request Comm::ipost(int src, int tag, RecvCallback on_complete) {
  MV_REQUIRE(src == kAnySource || (src >= 0 && src < size_),
             "posted recv from invalid rank " << src);
  Request req;
  req.impl_ = std::make_shared<Request::Impl>();
  req.impl_->comm = this;
  req.impl_->src = src;
  req.impl_->tag = tag;
  req.impl_->on_complete = std::move(on_complete);
  req.impl_->entry = world_->mailbox(rank_).post(src, tag);
  return req;
}

void Comm::cancel(Request& request) {
  if (request.impl_ == nullptr) return;
  Request::Impl& impl = *request.impl_;
  if (impl.entry != nullptr && !impl.done)
    world_->mailbox(rank_).cancel(impl.entry);
  // The request no longer represents anything: drop it entirely so
  // valid() turns false (a canceled request is inert, not "completed").
  request.impl_.reset();
}

void Comm::complete_posted(Request::Impl& impl, detail::Message msg) {
  // Observation-time half of a posted receive: everything that can fail or
  // that observers may see (CRC verification, the recv hook, the completion
  // callback) runs here, on the thread driving the request — bit-for-bit the
  // semantics of the blocking recv path, just with transport already done.
  verify_frame(msg);
  impl.payload = std::move(msg.payload);
  impl.status = Status{msg.source, msg.tag, impl.payload.size()};
  impl.done = true;
  notify(kCommHookRecv, msg.source, 0, impl.payload.size());
  if (impl.on_complete) {
    RecvCallback cb = std::move(impl.on_complete);
    impl.on_complete = nullptr;
    cb(impl.status);
  }
}

bool Comm::test_posted(Request::Impl& impl) {
  detail::Message msg;
  try {
    if (!world_->mailbox(rank_).try_claim(impl.entry, &msg)) return false;
    complete_posted(impl, std::move(msg));
  } catch (const CommError& e) {
    notify(kCommHookFault, impl.src, static_cast<int>(e.fault()), 0);
    throw;
  }
  return true;
}

Status Comm::wait_posted(Request::Impl& impl) {
  try {
    detail::Message msg =
        world_->mailbox(rank_).claim(impl.entry, call_deadline());
    complete_posted(impl, std::move(msg));
  } catch (const CommError& e) {
    notify(kCommHookFault, impl.src, static_cast<int>(e.fault()), 0);
    throw;
  }
  return impl.status;
}

Status Comm::wait(Request& request) {
  MV_REQUIRE(request.impl_ != nullptr, "wait on an empty request");
  Request::Impl& impl = *request.impl_;
  MV_REQUIRE(impl.comm == this, "request waited on a different communicator");
  if (!impl.done) {
    if (impl.entry != nullptr) return wait_posted(impl);
    impl.status = recv_bytes(impl.src, impl.tag, impl.data, impl.capacity);
    impl.done = true;
  }
  return impl.status;
}

std::vector<Status> Comm::waitall(std::span<Request> requests) {
  std::vector<Status> out;
  out.reserve(requests.size());
  for (Request& r : requests) out.push_back(wait(r));
  return out;
}

void Comm::barrier() {
  try {
    world_->barrier().arrive_and_wait(call_deadline());
  } catch (const CommError& e) {
    notify(kCommHookFault, -1, static_cast<int>(e.fault()), 0);
    throw;
  }
}

bool Comm::is_alive(int rank) const { return !world_->is_dead(rank); }

std::vector<int> Comm::live_ranks() const { return world_->live_ranks(); }

void Comm::mark_self_dead(const std::string& reason) {
  world_->mark_dead(rank_, reason);
}

void Comm::revoke(const std::string& reason) { world_->revoke(reason); }

bool Comm::revoked() const { return world_->revoked(); }

std::int64_t Comm::agree_min(std::int64_t value, double timeout_seconds) {
  const std::vector<int> live = world_->live_ranks();
  MV_REQUIRE(!live.empty(), "agreement round with no live ranks");
  const int root = live.front();
  const detail::Clock::time_point dl = deadline_in(timeout_seconds);

  if (rank_ != root) {
    deliver(root, detail::kAgreeTag, &value, sizeof(value));
    // The collector legitimately waits the full timeout for silent ranks
    // before redistributing; wait twice that window for its answer so a
    // live collector always beats this rank's local fallback.
    const detail::Clock::time_point reply_dl =
        deadline_in(timeout_seconds * 2);
    try {
      detail::Message msg =
          world_->mailbox(rank_).pop(root, detail::kAgreeTag, reply_dl);
      verify_frame(msg);
      MV_REQUIRE(msg.payload.size() == sizeof(value),
                 "agreement payload size mismatch");
      std::int64_t result = 0;
      std::memcpy(&result, msg.payload.data(), sizeof(result));
      return result;
    } catch (const CommError&) {
      // The collector died or went silent. Fall back to the local value:
      // callers derive it from shared state (the checkpoint manifest), so
      // survivors still converge.
      return value;
    }
  }

  struct Pending {
    int rank = -1;
    std::int64_t value = 0;
    Request req;
    bool done = false;
  };
  std::vector<Pending> pending(live.size() - 1);
  {
    std::size_t i = 0;
    for (int r : live) {
      if (r == rank_) continue;
      pending[i].rank = r;
      ++i;
    }
  }
  for (Pending& p : pending)
    p.req = irecv_bytes(p.rank, detail::kAgreeTag, &p.value, sizeof(p.value));

  std::int64_t result = value;
  std::size_t remaining = pending.size();
  while (remaining > 0) {
    for (Pending& p : pending) {
      if (p.done) continue;
      if (p.req.test()) {
        p.done = true;
        --remaining;
        result = std::min(result, p.value);
      } else if (world_->is_dead(p.rank)) {
        p.done = true;  // a dead rank is excluded from the agreement
        --remaining;
      }
    }
    if (remaining == 0) break;
    if (detail::Clock::now() >= dl) {
      for (Pending& p : pending) {
        if (p.done) continue;
        if (world_->stats() != nullptr) ++world_->stats()->timeouts;
        world_->mark_dead(p.rank, "no response in the agreement round");
        p.done = true;
        --remaining;
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  for (int r : world_->live_ranks())
    if (r != rank_) deliver(r, detail::kAgreeTag, &result, sizeof(result));
  return result;
}

void Comm::send_internal(int dst, const void* data, std::size_t bytes) {
  deliver(dst, detail::kCollectiveTag, data, bytes);
}

void Comm::recv_internal(int src, void* data, std::size_t bytes) {
  detail::Message msg;
  try {
    msg = world_->mailbox(rank_).pop(src, detail::kCollectiveTag,
                                     call_deadline());
    verify_frame(msg);
  } catch (const CommError& e) {
    notify(kCommHookFault, src, static_cast<int>(e.fault()), 0);
    throw;
  }
  notify(kCommHookRecv, msg.source, 0, msg.payload.size());
  MV_REQUIRE(msg.payload.size() == bytes,
             "collective size mismatch: got " << msg.payload.size()
                                              << ", expected " << bytes
                                              << " — collectives must be "
                                                 "called in the same order on "
                                                 "every rank");
  if (bytes != 0) std::memcpy(data, msg.payload.data(), bytes);
}

void Comm::bcast_bytes(void* data, std::size_t bytes, int root) {
  MV_REQUIRE(root >= 0 && root < size_, "bcast from invalid root " << root);
  if (size_ == 1) return;
  if (rank_ == root) {
    for (int r = 0; r < size_; ++r) {
      if (r != root) send_internal(r, data, bytes);
    }
  } else {
    recv_internal(root, data, bytes);
  }
}

}  // namespace minivpic::vmpi
