#include "vmpi/comm.hpp"

#include "vmpi/world.hpp"

namespace minivpic::vmpi {

namespace detail {

void Mailbox::push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message* Mailbox::find(int src, int tag) {
  for (auto& m : queue_) {
    if (matches(m, src, tag)) return &m;
  }
  return nullptr;
}

Message Mailbox::pop(int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (poisoned_) throw Error("vmpi recv aborted: " + poison_reason_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, src, tag)) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    cv_.wait(lock);
  }
}

void Mailbox::probe(int src, int tag, int* out_src, int* out_tag,
                    std::size_t* out_bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (poisoned_) throw Error("vmpi probe aborted: " + poison_reason_);
    if (Message* m = find(src, tag)) {
      *out_src = m->source;
      *out_tag = m->tag;
      *out_bytes = m->payload.size();
      return;
    }
    cv_.wait(lock);
  }
}

bool Mailbox::iprobe(int src, int tag, int* out_src, int* out_tag,
                     std::size_t* out_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_) throw Error("vmpi iprobe aborted: " + poison_reason_);
  if (Message* m = find(src, tag)) {
    *out_src = m->source;
    *out_tag = m->tag;
    *out_bytes = m->payload.size();
    return true;
  }
  return false;
}

void Mailbox::poison(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    poisoned_ = true;
    poison_reason_ = reason;
  }
  cv_.notify_all();
}

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (poisoned_) throw Error("vmpi barrier aborted: " + poison_reason_);
  const std::uint64_t gen = generation_;
  if (++waiting_ == n_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != gen || poisoned_; });
  if (poisoned_) throw Error("vmpi barrier aborted: " + poison_reason_);
}

void Barrier::poison(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    poisoned_ = true;
    poison_reason_ = reason;
  }
  cv_.notify_all();
}

World::World(int nranks) : barrier_(nranks) {
  MV_REQUIRE(nranks > 0, "world needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

void World::poison_all(const std::string& reason) {
  for (auto& mb : mailboxes_) mb->poison(reason);
  barrier_.poison(reason);
}

}  // namespace detail

struct Request::Impl {
  Comm* comm = nullptr;
  int src = kAnySource;
  int tag = kAnyTag;
  void* data = nullptr;
  std::size_t capacity = 0;
  bool done = false;
  Status status;
};

Comm::Comm(detail::World* world, int rank, int size)
    : world_(world), rank_(rank), size_(size) {}

void Comm::send_bytes(int dst, int tag, const void* data, std::size_t bytes) {
  MV_REQUIRE(dst >= 0 && dst < size_, "send to invalid rank " << dst);
  MV_REQUIRE(tag >= 0, "user message tags must be non-negative, got " << tag);
  detail::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.resize(bytes);
  if (bytes != 0) std::memcpy(msg.payload.data(), data, bytes);
  world_->mailbox(dst).push(std::move(msg));
}

Status Comm::recv_bytes(int src, int tag, void* data, std::size_t capacity) {
  MV_REQUIRE(src == kAnySource || (src >= 0 && src < size_),
             "recv from invalid rank " << src);
  detail::Message msg = world_->mailbox(rank_).pop(src, tag);
  MV_REQUIRE(msg.payload.size() <= capacity,
             "message of " << msg.payload.size() << " bytes exceeds buffer of "
                           << capacity);
  if (!msg.payload.empty())
    std::memcpy(data, msg.payload.data(), msg.payload.size());
  return Status{msg.source, msg.tag, msg.payload.size()};
}

Status Comm::probe(int src, int tag) {
  Status st;
  std::size_t bytes = 0;
  world_->mailbox(rank_).probe(src, tag, &st.source, &st.tag, &bytes);
  st.bytes = bytes;
  return st;
}

bool Comm::iprobe(int src, int tag, Status* status) {
  Status st;
  std::size_t bytes = 0;
  if (!world_->mailbox(rank_).iprobe(src, tag, &st.source, &st.tag, &bytes))
    return false;
  st.bytes = bytes;
  if (status != nullptr) *status = st;
  return true;
}

Request Comm::irecv_bytes(int src, int tag, void* data, std::size_t capacity) {
  Request req;
  req.impl_ = std::make_shared<Request::Impl>();
  req.impl_->comm = this;
  req.impl_->src = src;
  req.impl_->tag = tag;
  req.impl_->data = data;
  req.impl_->capacity = capacity;
  return req;
}

Status Comm::wait(Request& request) {
  MV_REQUIRE(request.impl_ != nullptr, "wait on an empty request");
  Request::Impl& impl = *request.impl_;
  MV_REQUIRE(impl.comm == this, "request waited on a different communicator");
  if (!impl.done) {
    impl.status = recv_bytes(impl.src, impl.tag, impl.data, impl.capacity);
    impl.done = true;
  }
  return impl.status;
}

void Comm::barrier() { world_->barrier().arrive_and_wait(); }

void Comm::send_internal(int dst, const void* data, std::size_t bytes) {
  detail::Message msg;
  msg.source = rank_;
  msg.tag = detail::kCollectiveTag;
  msg.payload.resize(bytes);
  if (bytes != 0) std::memcpy(msg.payload.data(), data, bytes);
  world_->mailbox(dst).push(std::move(msg));
}

void Comm::recv_internal(int src, void* data, std::size_t bytes) {
  detail::Message msg = world_->mailbox(rank_).pop(src, detail::kCollectiveTag);
  MV_REQUIRE(msg.payload.size() == bytes,
             "collective size mismatch: got " << msg.payload.size()
                                              << ", expected " << bytes
                                              << " — collectives must be "
                                                 "called in the same order on "
                                                 "every rank");
  if (bytes != 0) std::memcpy(data, msg.payload.data(), bytes);
}

void Comm::bcast_bytes(void* data, std::size_t bytes, int root) {
  MV_REQUIRE(root >= 0 && root < size_, "bcast from invalid root " << root);
  if (size_ == 1) return;
  if (rank_ == root) {
    for (int r = 0; r < size_; ++r) {
      if (r != root) send_internal(r, data, bytes);
    }
  } else {
    recv_internal(root, data, bytes);
  }
}

}  // namespace minivpic::vmpi
