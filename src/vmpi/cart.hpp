// 3-D Cartesian rank topology for domain decomposition (MPI_Cart analogue).
//
// Ranks are laid out x-fastest (as VPIC does): rank = (cz*ny + cy)*nx + cx.
#pragma once

#include <array>

namespace minivpic::vmpi {

/// Balanced factorization of `nranks` into 3 dimensions (MPI_Dims_create
/// analogue). A zero in `hint` means "choose freely"; nonzero entries are
/// fixed and must divide nranks appropriately. Throws on impossible hints.
std::array<int, 3> dims_create(int nranks, std::array<int, 3> hint = {0, 0, 0});

/// Immutable description of a 3-D Cartesian rank grid.
class CartTopology {
 public:
  CartTopology(std::array<int, 3> dims, std::array<bool, 3> periodic);

  const std::array<int, 3>& dims() const { return dims_; }
  const std::array<bool, 3>& periodic() const { return periodic_; }
  int nranks() const { return dims_[0] * dims_[1] * dims_[2]; }

  /// Cartesian coordinates of a rank.
  std::array<int, 3> coords_of(int rank) const;

  /// Rank at the given coordinates. Periodic axes wrap; off-grid coordinates
  /// on non-periodic axes return kNoRank.
  int rank_of(std::array<int, 3> coords) const;

  /// Neighbor of `rank` along `axis` (0..2) in direction `dir` (-1 or +1);
  /// kNoRank at a non-periodic edge.
  int neighbor(int rank, int axis, int dir) const;

  static constexpr int kNoRank = -1;

 private:
  std::array<int, 3> dims_;
  std::array<bool, 3> periodic_;
};

}  // namespace minivpic::vmpi
