// RankReducer: folds every scalar metric to min/mean/max/sum across the
// ranks of a vmpi communicator, so reported numbers match the paper's
// whole-machine accounting (a per-rank push rate is meaningless at scale;
// the sum is the machine rate and max/mean is the imbalance). With a null
// communicator (serial runs) the reduction is degenerate: min = mean =
// max = sum = the local value.
//
// reduce() is collective: every rank must call it with the same metric
// names in the same order (guaranteed when all ranks flatten the same
// StepSample schema). Three element-wise allreduces (min, max, sum) cover
// the whole metric vector regardless of its length.
#pragma once

#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "vmpi/comm.hpp"

namespace minivpic::telemetry {

/// Cross-rank statistics of one scalar metric.
struct Reduced {
  double min = 0;
  double mean = 0;
  double max = 0;
  double sum = 0;
};

struct ReducedMetric {
  std::string name;
  std::string unit;
  Reduced stats;
};

class RankReducer {
 public:
  /// `comm` may be null: single-rank (degenerate) reduction.
  explicit RankReducer(vmpi::Comm* comm) : comm_(comm) {}

  int ranks() const { return comm_ == nullptr ? 1 : comm_->size(); }
  /// True on the rank that should emit reduced records (rank 0 / serial).
  bool root() const { return comm_ == nullptr || comm_->rank() == 0; }

  /// Collective. All ranks receive the full reduced vector.
  std::vector<ReducedMetric> reduce(
      const std::vector<ScalarMetric>& local) const;

  /// Collective. Gathers one value per rank to the root, in rank order;
  /// non-root ranks get an empty vector. Serial: {value}. This is the
  /// per-rank (not reduced) view — the straggler detector and the NDJSON
  /// load record need to know WHICH rank is heavy, not just the max.
  std::vector<double> gather(double value) const;

 private:
  vmpi::Comm* comm_;
};

/// Appends a synthetic `load.imbalance` metric — max/mean of
/// `particles.local` across ranks (1 when balanced or absent) — to an
/// already-reduced sample. The ROADMAP dynamic-load-balancing item keys off
/// this ratio.
void append_load_imbalance(std::vector<ReducedMetric>* reduced);

}  // namespace minivpic::telemetry
