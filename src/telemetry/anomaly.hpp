// Online anomaly detection over the telemetry stream: EWMA + MAD robust
// baselines that watch the rank-reduced StepSampler output while the run is
// still going, so a straggling rank, a dying link, or a performance
// regression is flagged steps after it starts instead of being discovered
// in a wasted run's aggregate numbers.
//
// Three watchers (the ones that mattered at Roadrunner scale — PAPER.md):
//  * step-rate regression   — the machine-wide push rate (sum across ranks)
//                             drops below its smoothed baseline;
//  * comm-latency spike     — the slowest rank's migrate-phase seconds jump
//                             above baseline (a sick link or peer);
//  * straggler              — one rank's busy seconds or resident particle
//                             count is an outlier against the cross-rank
//                             median this sample (the load-imbalance feed
//                             the ROADMAP dynamic-load-balancing item needs).
//
// Detection is robust, not parametric: a value is anomalous when it
// deviates from the baseline by more than `k` times the median absolute
// deviation (MAD) of recent residuals AND by more than `min_relative` of
// the baseline — the second guard keeps quiet metrics with tiny MADs from
// alarming on noise. Baselines freeze while a metric is anomalous so a
// regression cannot talk the detector into accepting it as the new normal.
//
// Verdicts surface three ways (publish()): `anomaly.*` counters in the
// metrics registry, trace instants on the rank-0 timeline, and MV_LOG_WARN
// lines. Tuning guidance lives in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/reduce.hpp"
#include "telemetry/trace.hpp"

namespace minivpic::telemetry {

enum class AnomalyKind : std::uint16_t {
  kStepRateRegression = 0,
  kCommLatencySpike = 1,
  kStraggler = 2,
};

const char* anomaly_kind_name(AnomalyKind kind);

/// One flagged observation.
struct Anomaly {
  AnomalyKind kind = AnomalyKind::kStepRateRegression;
  std::int64_t step = 0;      ///< step_end of the offending sample
  int rank = -1;              ///< offending rank for kStraggler, else -1
  std::string metric;         ///< which series tripped
  double value = 0;           ///< observed value
  double baseline = 0;        ///< EWMA baseline (or cross-rank median)
  double deviation = 0;       ///< |value - baseline| in MAD units
};

struct AnomalyConfig {
  double alpha = 0.2;         ///< EWMA smoothing factor (higher = faster)
  int warmup = 5;             ///< samples before a series may flag
  int window = 32;            ///< residual window for the MAD estimate
  double rate_k = 4.0;        ///< MAD multiplier, step-rate regression
  double comm_k = 4.0;        ///< MAD multiplier, comm-latency spike
  double straggler_k = 4.0;   ///< MAD multiplier, cross-rank outliers
  double min_relative = 0.2;  ///< deviation must also exceed this fraction
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(AnomalyConfig config = {});

  /// Feeds one sample. `reduced` is the collective RankReducer output
  /// (the step-rate and comm-latency watchers read "push.rate" sum and
  /// "phase.migrate.s" max from it); `rank_particles` / `rank_busy` are the
  /// per-rank gauges gathered to root (may be empty on non-root ranks or
  /// serial runs — the straggler watcher then stays quiet). Returns the
  /// anomalies flagged by this sample.
  std::vector<Anomaly> observe(std::int64_t step,
                               const std::vector<ReducedMetric>& reduced,
                               const std::vector<double>& rank_particles = {},
                               const std::vector<double>& rank_busy = {});

  /// Surfaces verdicts: bumps `anomaly.total` and `anomaly.<kind>` counters
  /// in `metrics`, drops an instant per anomaly on `trace`, and logs one
  /// warning per anomaly. Either sink may be null.
  void publish(const std::vector<Anomaly>& anomalies, MetricsRegistry* metrics,
               TraceWriter* trace) const;

  std::int64_t total_flagged() const { return total_flagged_; }

 private:
  /// EWMA level + windowed MAD of residuals for one time series.
  struct Baseline {
    double ewma = 0;
    bool initialized = false;
    int samples = 0;
    std::deque<double> residuals;  ///< |value - ewma| history, capped

    /// Returns the deviation of `value` in MAD units (0 while warming up)
    /// and absorbs the value into the baseline unless `frozen`.
    double update(double value, const AnomalyConfig& cfg, bool freeze);
    double mad() const;
  };

  /// Checks one reduced series against its baseline in one direction
  /// (`sign` = -1 flags drops, +1 flags spikes).
  void check_series(Baseline* baseline, AnomalyKind kind, const char* metric,
                    double value, double k, int sign, std::int64_t step,
                    std::vector<Anomaly>* out);

  AnomalyConfig config_;
  Baseline rate_;      ///< push.rate (sum)
  Baseline comm_;      ///< phase.migrate.s (max)
  std::int64_t total_flagged_ = 0;
};

}  // namespace minivpic::telemetry
