// NDJSON metrics stream: one self-describing JSON record per line, the
// machine-readable counterpart of the console tables. The first record is a
// `meta` record carrying the schema version, run topology, and the metric
// catalogue (name -> unit); every subsequent record is a `step_sample`
// carrying min/mean/max/sum per metric (degenerate — all four equal — for
// single-rank runs). Records are flushed per line so a killed run keeps
// every sample written so far.
//
// Schema (version 1, see docs/OBSERVABILITY.md):
//   {"type":"meta","schema":1,"ranks":R,"pipelines":P,"kernel":"avx2",
//    "units":{"phase.push.s":"s", ...}, ...}
//   {"type":"step_sample","schema":1,"step":N,"step_begin":M,"t":...,
//    "metrics":{"phase.push.s":{"min":..,"mean":..,"max":..,"sum":..},...}}
//
// Multi-rank usage: reduce first (RankReducer), then write on the root
// rank only — the stream carries whole-machine numbers, never per-rank
// shards.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/reduce.hpp"
#include "telemetry/sampler.hpp"

namespace minivpic::telemetry {

inline constexpr int kNdjsonSchemaVersion = 1;

class NdjsonWriter {
 public:
  /// Opens (truncates) `path`; throws on failure.
  explicit NdjsonWriter(const std::string& path);

  /// Writes one record as a single line and flushes.
  void write(const Json& record);

  std::int64_t records_written() const { return records_; }

 private:
  std::ofstream os_;
  std::string path_;
  std::int64_t records_ = 0;
};

/// Builds the stream's leading meta record. `kernel` is the resolved
/// particle-advance kernel name (particles::kernel_name; the numeric shadow
/// push.lane_width rides in the samples). `extra` members (deck path, bench
/// name, ...) are appended verbatim. The unit catalogue is taken from
/// `sample_metrics` (one reduced sample's names/units).
Json meta_record(int ranks, int pipelines, const std::string& kernel,
                 const std::vector<ReducedMetric>& sample_metrics,
                 const Json& extra = Json());

/// Builds one step_sample record from a reduced sample. When the per-rank
/// load vectors (RankReducer::gather of particles.local / pipeline.busy.s,
/// rank order) are non-empty, the record carries them under
/// `"load":{"particles":[...],"busy_s":[...]}` — the only per-rank shards
/// in the stream, kept because load balancing needs to know which rank is
/// heavy, not just the spread.
Json sample_record(const StepSample& sample,
                   const std::vector<ReducedMetric>& reduced,
                   const std::vector<double>& rank_particles = {},
                   const std::vector<double>& rank_busy = {});

}  // namespace minivpic::telemetry
