#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace minivpic::telemetry {

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  return j;
}

Json Json::number(std::int64_t v) { return number(double(v)); }

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  MV_REQUIRE(kind_ == Kind::kBool, "json value is not a bool");
  return bool_;
}

double Json::as_number() const {
  MV_REQUIRE(kind_ == Kind::kNumber, "json value is not a number");
  return num_;
}

const std::string& Json::as_string() const {
  MV_REQUIRE(kind_ == Kind::kString, "json value is not a string");
  return str_;
}

void Json::push_back(Json v) {
  MV_REQUIRE(kind_ == Kind::kArray, "push_back on a non-array json value");
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  MV_REQUIRE(kind_ == Kind::kObject, "size() on a non-container json value");
  return obj_.size();
}

const Json& Json::at(std::size_t i) const {
  MV_REQUIRE(kind_ == Kind::kArray, "indexing a non-array json value");
  MV_REQUIRE(i < arr_.size(), "json array index " << i << " out of range");
  return arr_[i];
}

void Json::set(const std::string& key, Json v) {
  MV_REQUIRE(kind_ == Kind::kObject, "set on a non-object json value");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

const Json* Json::find(const std::string& key) const {
  MV_REQUIRE(kind_ == Kind::kObject, "find on a non-object json value");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  MV_REQUIRE(v != nullptr, "json object has no key '" << key << "'");
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  MV_REQUIRE(kind_ == Kind::kObject, "members on a non-object json value");
  return obj_;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += char(c);
        }
    }
  }
  return out;
}

namespace {

/// Shortest decimal form that parses back to the same double (try
/// increasing precision; 17 significant digits always round-trips).
std::string format_number(double v) {
  if (v == std::int64_t(v) && std::abs(v) < 9.0e15) {
    return std::to_string(std::int64_t(v));
  }
  char buf[32];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      MV_REQUIRE(std::isfinite(num_),
                 "cannot serialize non-finite number to json");
      out += format_number(num_);
      return;
    case Kind::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      return;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(k);
        out += "\":";
        v.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

// -- parser -------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    MV_REQUIRE(pos_ == s_.size(),
               "trailing garbage after json value at byte " << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    MV_REQUIRE(false, "json parse error at byte " << pos_ << ": " << what);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json::string(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json::boolean(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json::boolean(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json::null();
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += char(cp);
    } else if (cp < 0x800) {
      out += char(0xC0 | (cp >> 6));
      out += char(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += char(0xE0 | (cp >> 12));
      out += char(0x80 | ((cp >> 6) & 0x3F));
      out += char(0x80 | (cp & 0x3F));
    } else {
      out += char(0xF0 | (cp >> 18));
      out += char(0x80 | ((cp >> 12) & 0x3F));
      out += char(0x80 | ((cp >> 6) & 0x3F));
      out += char(0x80 | (cp & 0x3F));
    }
  }

  unsigned parse_hex4() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= unsigned(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= unsigned(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= unsigned(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return cp;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
            if (pos_ + 1 < s_.size() && s_[pos_] == '\\' &&
                s_[pos_ + 1] == 'u') {
              pos_ += 2;
              const unsigned lo = parse_hex4();
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-'))
      ++pos_;
    MV_REQUIRE(pos_ > start, "json parse error at byte " << pos_
                                                         << ": bad number");
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("bad number '" + tok + "'");
    }
    return Json::number(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace minivpic::telemetry
