#include "telemetry/sampler.hpp"

#include <algorithm>

#include "particles/kernel.hpp"
#include "perf/costs.hpp"

namespace minivpic::telemetry {

namespace {

/// StepTimings phase names, in struct order. This order is part of the
/// NDJSON schema (docs/OBSERVABILITY.md) — append, never reorder.
constexpr const char* kPhaseNames[9] = {
    "interpolate", "push",  "migrate", "sort",    "reduce",
    "sources",     "field", "clean",   "collide",
};

}  // namespace

std::vector<ScalarMetric> StepSample::scalars() const {
  std::vector<ScalarMetric> out;
  out.reserve(32);
  for (const auto& [name, seconds] : phase_seconds)
    out.push_back({"phase." + name + ".s", "s", seconds});
  out.push_back({"step.s", "s", step_seconds});
  out.push_back({"wall.s", "s", wall_seconds});
  out.push_back({"steps", "count", double(step_end - step_begin)});
  out.push_back({"particles.local", "count", double(particles_local)});
  out.push_back({"particles.pushed", "count", double(pushed)});
  out.push_back({"particles.crossings", "count", double(crossings)});
  out.push_back({"particles.migrated", "count", double(migrated)});
  out.push_back({"particles.absorbed", "count", double(absorbed)});
  out.push_back({"particles.refluxed", "count", double(refluxed)});
  out.push_back({"collisions.pairs", "count", double(collision_pairs)});
  out.push_back({"particles.sorted", "count", double(sorted)});
  out.push_back({"sort.rate", "1/s", sort_rate});
  out.push_back({"push.rate", "1/s", particles_per_sec});
  out.push_back({"push.gflops", "Gflop/s", push_gflops});
  out.push_back({"push.gbytes_per_s", "GB/s", push_gbytes_per_sec});
  out.push_back({"field.gflops", "Gflop/s", field_gflops});
  out.push_back({"step.gflops", "Gflop/s", step_gflops});
  out.push_back({"pipeline.count", "count", pipelines});
  out.push_back({"pipeline.imbalance", "ratio", pipeline_imbalance});
  out.push_back({"pipeline.occupancy", "ratio", pipeline_occupancy});
  // The kernel name itself is a string and rides in the meta record; the
  // lane width is the numeric shadow so reductions can flag heterogeneous
  // fleets (min != max across ranks).
  out.push_back({"push.lane_width", "count", lane_width});
  // Per-rank work done this interval: the reduced max/mean of this metric
  // (and of particles.local above) is the cross-rank load-imbalance feed.
  out.push_back({"pipeline.busy.s", "s", busy_seconds});
  // Appended rows (schema is append-only): migration balance and the
  // comm/compute overlap ledger (docs/OVERLAP.md). Across ranks,
  // sum(particles.migrated) == sum(particles.immigrated) every interval.
  out.push_back({"particles.immigrated", "count", double(immigrated)});
  out.push_back({"comm.overlap.enabled", "bool", overlap_enabled});
  out.push_back({"comm.overlap.comm.s", "s", overlap_comm_s});
  out.push_back({"comm.overlap.hidden.s", "s", overlap_hidden_s});
  out.push_back({"comm.overlap.exposed.s", "s", overlap_exposed_s});
  return out;
}

StepSampler::StepSampler(const sim::Simulation& sim)
    : sim_(&sim), prev_(capture(sim)) {}

StepSampler::Snapshot StepSampler::capture(const sim::Simulation& sim) {
  Snapshot s;
  s.step = sim.step_index();
  const sim::StepTimings& t = sim.timings();
  const Stopwatch* watches[9] = {&t.interpolate, &t.push,  &t.migrate,
                                 &t.sort,        &t.reduce, &t.sources,
                                 &t.field,       &t.clean,  &t.collide};
  for (int i = 0; i < 9; ++i) s.phases[i] = watches[i]->total_seconds();
  s.stats = sim.particle_stats();
  s.overlap = sim.overlap_stats();
  s.pipeline_busy = sim.pipeline_busy_seconds();
  return s;
}

double StepSampler::particles_per_second(std::int64_t pushed,
                                         double push_seconds) {
  return push_seconds > 0 ? double(pushed) / push_seconds : 0.0;
}

double StepSampler::push_gflops(std::int64_t pushed, double seconds) {
  if (seconds <= 0) return 0.0;
  return double(pushed) * perf::KernelCosts::push_flops_per_particle() /
         seconds / 1e9;
}

double StepSampler::push_gbytes_per_second(std::int64_t pushed,
                                           double particles_per_cell,
                                           double seconds) {
  if (seconds <= 0) return 0.0;
  return double(pushed) *
         perf::KernelCosts::push_bytes_per_particle(particles_per_cell) /
         seconds / 1e9;
}

StepSample StepSampler::derive(const sim::Simulation& sim,
                               const Snapshot& from, const Snapshot& to,
                               double wall_seconds) {
  StepSample s;
  s.step_begin = from.step;
  s.step_end = to.step;
  s.sim_time = sim.time();
  s.wall_seconds = wall_seconds;

  for (int i = 0; i < 9; ++i) {
    const double dt = std::max(0.0, to.phases[i] - from.phases[i]);
    s.phase_seconds.emplace_back(kPhaseNames[i], dt);
    s.step_seconds += dt;
  }

  std::int64_t particles = 0;
  for (std::size_t sp = 0; sp < sim.num_species(); ++sp)
    particles += std::int64_t(sim.species(sp).size());
  s.particles_local = particles;

  s.pushed = to.stats.pushed - from.stats.pushed;
  s.crossings = to.stats.crossings - from.stats.crossings;
  s.migrated = to.stats.migrated - from.stats.migrated;
  s.absorbed = to.stats.absorbed - from.stats.absorbed;
  s.refluxed = to.stats.refluxed - from.stats.refluxed;
  s.collision_pairs = to.stats.collision_pairs - from.stats.collision_pairs;
  s.sorted = to.stats.sorted - from.stats.sorted;
  s.immigrated = to.stats.immigrated - from.stats.immigrated;

  // Overlap ledger: interval deltas of the cumulative OverlapStats. The
  // enabled flag is a property of the run, not of the interval.
  s.overlap_enabled = to.overlap.enabled ? 1.0 : 0.0;
  s.overlap_comm_s =
      std::max(0.0, to.overlap.comm_seconds - from.overlap.comm_seconds);
  s.overlap_hidden_s =
      std::max(0.0, to.overlap.hidden_seconds - from.overlap.hidden_seconds);
  s.overlap_exposed_s =
      std::max(0.0, to.overlap.exposed_seconds - from.overlap.exposed_seconds);

  // Sort rate: particles bin-sorted per second of sort-phase time. Zero in
  // intervals where the periodic sort never fired (the common case between
  // sort_every boundaries), so time series show the sort's duty cycle.
  s.sort_seconds = s.phase_seconds[3].second;
  s.sort_rate = particles_per_second(s.sorted, s.sort_seconds);

  s.push_seconds = s.phase_seconds[1].second;
  s.particles_per_sec = particles_per_second(s.pushed, s.push_seconds);
  s.push_gflops = push_gflops(s.pushed, s.push_seconds);
  const double ncells = double(sim.local_grid().num_cells());
  const double ppc = ncells > 0 ? double(particles) / ncells : 0.0;
  s.push_gbytes_per_sec =
      push_gbytes_per_second(s.pushed, ppc, s.push_seconds);

  // Field solve: flops/voxel per full B/E/B update, once per step.
  const double field_seconds = s.phase_seconds[6].second;
  const double nsteps = double(s.step_end - s.step_begin);
  if (field_seconds > 0 && nsteps > 0) {
    s.field_gflops = nsteps * double(sim.local_grid().num_cells()) *
                     perf::KernelCosts::field_flops_per_voxel() /
                     field_seconds / 1e9;
  }
  s.step_gflops = push_gflops(s.pushed, s.step_seconds);

  // Pipeline load balance over the interval, from the per-pipeline busy
  // seconds the pusher records. A serial advance (1 pipeline) is balanced
  // by definition; an idle interval (no push time) reports 1 as well.
  s.pipelines = double(sim.pipelines());
  const std::size_t n = to.pipeline_busy.size();
  double busy_sum = 0, busy_max = 0;
  for (std::size_t p = 0; p < n; ++p) {
    const double prev = p < from.pipeline_busy.size()
                            ? from.pipeline_busy[p]
                            : 0.0;
    const double busy = std::max(0.0, to.pipeline_busy[p] - prev);
    busy_sum += busy;
    busy_max = std::max(busy_max, busy);
  }
  s.busy_seconds = busy_sum;
  if (n > 0 && busy_sum > 0) {
    const double busy_mean = busy_sum / double(n);
    s.pipeline_imbalance = busy_max / busy_mean;
    s.pipeline_occupancy = busy_mean / busy_max;
  }

  s.kernel = particles::kernel_name(sim.kernel());
  s.lane_width = double(particles::kernel_lane_width(sim.kernel()));
  return s;
}

StepSample StepSampler::sample(double wall_seconds) {
  Snapshot now = capture(*sim_);
  StepSample s = derive(*sim_, prev_, now, wall_seconds);
  prev_ = std::move(now);
  return s;
}

StepSample StepSampler::derive_total(const sim::Simulation& sim,
                                     double wall_seconds) {
  return derive(sim, Snapshot{}, capture(sim), wall_seconds);
}

}  // namespace minivpic::telemetry
