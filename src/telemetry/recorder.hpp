// Flight recorder: an always-on, fixed-size, allocation-free per-rank ring
// buffer of compact binary events — the black box a crashed or wedged run
// leaves behind. Producers (the step loop's phases, the vmpi comm layer,
// checkpointing, health sentinels, rollback recovery) record 32-byte events
// into preallocated storage with one relaxed fetch_add and a struct store;
// nothing on the record path allocates, locks, or does I/O, so the recorder
// can stay armed on every production run (measured overhead is within the
// telemetry layer's ≤1% budget; docs/OBSERVABILITY.md).
//
// The buffer is dumped to a per-rank `.fdr` file (header + raw events,
// oldest first) by dump(), which uses only async-signal-safe primitives
// (open/write/close on a precomputed path) so it can run from a SIGSEGV or
// SIGABRT handler. Every live Recorder self-registers in a global slot
// table; dump_registered() walks it from signal context, and
// install_crash_handlers() arms handlers that dump everything and then
// re-raise the signal's default disposition.
//
// The postmortem tool (examples/postmortem.cpp) merges per-rank dumps into
// a cross-rank Chrome trace and a stall/divergence report; all timestamps
// share one process-wide steady-clock epoch, so events from different ranks
// (threads of one process under vmpi) order correctly against each other.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace minivpic::telemetry {

/// Event kinds. Numeric values are part of the `.fdr` on-disk format
/// (docs/OBSERVABILITY.md "Flight recorder & postmortem") — append new
/// kinds, never renumber.
enum class FdrKind : std::uint16_t {
  kNone = 0,
  kPhaseBegin = 1,   ///< code = phase id (see fdr_phase_name)
  kPhaseEnd = 2,     ///< code = phase id
  kStep = 3,         ///< step boundary; arg = step index
  kCommSend = 4,     ///< peer = destination, arg = payload bytes
  kCommRecv = 5,     ///< peer = source, arg = payload bytes
  kCommFault = 6,    ///< code = vmpi::Fault discriminant, peer = rank if known
  kCheckpoint = 7,   ///< collective save; arg = step saved
  kRestore = 8,      ///< checkpoint restore; arg = step restored
  kHealth = 9,       ///< sentinel verdict; code = 0 ok / 1 fault
  kFault = 10,       ///< rank-level fault (kill, poison, abort); code = detail
  kRecovery = 11,    ///< rollback decision; arg = target step
  kAnomaly = 12,     ///< online detector verdict; code = AnomalyKind
  kDump = 13,        ///< dump marker; code = FdrDumpReason
  kExit = 14,        ///< normal end of run
  kServiceAccept = 15,    ///< service job accepted; arg = queue depth
  kServiceDispatch = 16,  ///< service job leased to a worker
  kServiceComplete = 17,  ///< service job terminal; code = 0 done / 1 failed
};

/// Why a dump was written (FdrHeader::reason and the kDump event code).
enum class FdrDumpReason : std::uint16_t {
  kManual = 0,
  kSignal = 1,      ///< crash handler (SIGSEGV/SIGABRT/SIGTERM)
  kCommFault = 2,   ///< unrecoverable communication fault
  kHealthAbort = 3, ///< health sentinel abort or other Error unwind
  kInterrupted = 4, ///< graceful stop (signal / walltime budget)
  kExit = 5,        ///< normal exit, dump requested
};

/// Phase ids for kPhaseBegin/kPhaseEnd, matching StepTimings order with 0
/// reserved for the whole step. Part of the on-disk format — append new
/// phases, never renumber. 10-12 are the overlap scheduler's sub-phases
/// (docs/OVERLAP.md): push.skin and push.interior nest inside kFdrPhasePush,
/// and kFdrPhaseMigrateAsync is recorded from the comm worker thread, so an
/// overlapped step shows it bracketing push.interior — the concurrency is
/// visible right in the black box.
enum FdrPhase : std::uint16_t {
  kFdrPhaseStep = 0,
  kFdrPhaseInterpolate = 1,
  kFdrPhasePush = 2,
  kFdrPhaseMigrate = 3,
  kFdrPhaseSort = 4,
  kFdrPhaseReduce = 5,
  kFdrPhaseSources = 6,
  kFdrPhaseField = 7,
  kFdrPhaseClean = 8,
  kFdrPhaseCollide = 9,
  kFdrPhasePushSkin = 10,
  kFdrPhasePushInterior = 11,
  kFdrPhaseMigrateAsync = 12,
};

const char* fdr_phase_name(std::uint16_t phase);  ///< "step", "push", ...
const char* fdr_kind_name(FdrKind kind);          ///< "phase_begin", ...
const char* fdr_dump_reason_name(FdrDumpReason reason);

/// One recorded event: 32 bytes, trivially copyable, written to disk as-is
/// (little-endian host layout; the dump and the postmortem tool run on the
/// same machine class).
struct FdrEvent {
  std::uint64_t ts_ns = 0;  ///< process-epoch steady-clock nanoseconds
  std::int64_t step = -1;   ///< simulation step at record time (-1 unknown)
  std::uint16_t kind = 0;   ///< FdrKind
  std::uint16_t code = 0;   ///< kind-specific discriminant
  std::int32_t peer = -1;   ///< peer rank for comm events, else -1
  std::uint64_t arg = 0;    ///< kind-specific payload (bytes, step, ...)
};
static_assert(sizeof(FdrEvent) == 32, "FdrEvent is part of the .fdr format");

/// `.fdr` file header (followed by `stored` raw FdrEvents, oldest first).
struct FdrHeader {
  char magic[8];             ///< "MVFDR1\0\0"
  std::uint32_t version;     ///< 1
  std::int32_t rank;         ///< owning rank
  std::uint64_t capacity;    ///< ring capacity in events
  std::uint64_t total;       ///< events recorded since construction
  std::uint64_t stored;      ///< events present in this file
  std::uint32_t event_size;  ///< sizeof(FdrEvent)
  std::uint32_t reason;      ///< FdrDumpReason of this dump
};
static_assert(sizeof(FdrHeader) == 48, "FdrHeader is part of the .fdr format");

class Recorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// `path` is where dump() writes (precomputed so the signal path never
  /// builds strings). `capacity` is rounded up to a power of two. The
  /// recorder self-registers for crash dumps (see dump_registered) and
  /// unregisters on destruction.
  explicit Recorder(std::string path, int rank = 0,
                    std::size_t capacity = kDefaultCapacity);
  ~Recorder();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Records one event. Allocation-free, lock-free, safe from any thread:
  /// one relaxed fetch_add reserves a slot, one struct store fills it. A
  /// writer lapped by `capacity` newer events overwrites the oldest slot —
  /// by design: the black box keeps the *last* moments.
  void record(FdrKind kind, std::uint16_t code = 0, int peer = -1,
              std::uint64_t arg = 0) noexcept;

  /// Step index stamped into subsequently recorded events (relaxed atomic;
  /// the step loop updates it once per step).
  void set_step(std::int64_t step) noexcept {
    step_.store(step, std::memory_order_relaxed);
  }

  int rank() const { return rank_; }
  const std::string& path() const { return path_; }
  std::size_t capacity() const { return capacity_; }
  /// Events recorded since construction (>= capacity() means wrapped).
  std::uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Writes header + events (oldest first) to path() using only
  /// async-signal-safe primitives; records a kDump marker first. Returns
  /// false on I/O failure instead of throwing (a dying process can't
  /// handle exceptions). Idempotent — later dumps overwrite. Concurrent
  /// recorders may tear at most the in-flight events of other threads.
  bool dump(FdrDumpReason reason = FdrDumpReason::kManual) const noexcept;

  // -- decode side (postmortem, tests; not signal-safe) --------------------
  struct Dump {
    FdrHeader header{};
    std::vector<FdrEvent> events;  ///< oldest first
  };
  /// Parses a `.fdr` file; throws minivpic::Error on bad magic/size.
  static Dump read(const std::string& path);

 private:
  std::string path_;
  int rank_;
  std::size_t capacity_;  ///< power of two
  std::size_t mask_;
  std::unique_ptr<FdrEvent[]> events_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::int64_t> step_{-1};
  int crash_slot_ = -1;  ///< index in the global registry, -1 = none
};

/// RAII phase marker: records kPhaseBegin/kPhaseEnd around a scope. A null
/// recorder makes both ends no-ops (the disabled fast path, one pointer
/// test like ScopedSpan).
class RecordedPhase {
 public:
  RecordedPhase(Recorder* recorder, std::uint16_t phase) noexcept
      : recorder_(recorder), phase_(phase) {
    if (recorder_ != nullptr)
      recorder_->record(FdrKind::kPhaseBegin, phase_);
  }
  ~RecordedPhase() {
    if (recorder_ != nullptr) recorder_->record(FdrKind::kPhaseEnd, phase_);
  }
  RecordedPhase(const RecordedPhase&) = delete;
  RecordedPhase& operator=(const RecordedPhase&) = delete;

 private:
  Recorder* recorder_;
  std::uint16_t phase_;
};

// -- crash-dump registry (async-signal-safe) --------------------------------

/// Dumps every live recorder (all ranks, all campaign jobs) with `reason`.
/// Async-signal-safe; returns the number of successful dumps.
int dump_registered(FdrDumpReason reason) noexcept;

/// Installs SIGSEGV/SIGABRT/SIGTERM handlers that dump every registered
/// recorder and then re-raise with the default disposition (so exit codes
/// and cores behave as without the recorder). Idempotent. A caller that
/// wants graceful SIGTERM handling (run_deck's checkpoint-and-exit-3 path)
/// installs its own SIGTERM handler afterwards, which takes precedence.
void install_crash_handlers();

/// vmpi comm-event hook (matches vmpi::WorldConfig::comm_hook): routes
/// send/recv/fault events into per-rank recorders. `ctx` must point to a
/// RecorderSet whose `recorders[rank]` entries may be null.
struct RecorderSet {
  Recorder* const* recorders = nullptr;
  int count = 0;
};
void vmpi_comm_hook(void* ctx, int rank, int event, int peer, int detail,
                    unsigned long long bytes) noexcept;

}  // namespace minivpic::telemetry
