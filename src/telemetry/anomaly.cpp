#include "telemetry/anomaly.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"

namespace minivpic::telemetry {

namespace {

const ReducedMetric* find_metric(const std::vector<ReducedMetric>& reduced,
                                 const char* name) {
  for (const auto& m : reduced)
    if (m.name == name) return &m;
  return nullptr;
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

/// Flags ranks whose value is an outlier above the cross-rank median.
void check_cross_rank(const std::vector<double>& values, const char* metric,
                      const AnomalyConfig& cfg, std::int64_t step,
                      std::vector<Anomaly>* out) {
  if (values.size() < 3) return;  // no meaningful median with <3 ranks
  const double med = median_of(values);
  std::vector<double> abs_dev(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    abs_dev[i] = std::abs(values[i] - med);
  double mad = median_of(abs_dev);
  // Floor the spread so a perfectly balanced fleet (MAD 0) doesn't flag on
  // the first bit of noise; min_relative is the real gate there.
  mad = std::max(mad, 1e-12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double excess = values[i] - med;
    if (excess <= 0) continue;  // stragglers are the high side only
    const bool robust = excess > cfg.straggler_k * mad;
    const bool relative =
        med > 0 ? excess > cfg.min_relative * med : values[i] > 0;
    if (robust && relative) {
      Anomaly a;
      a.kind = AnomalyKind::kStraggler;
      a.step = step;
      a.rank = static_cast<int>(i);
      a.metric = metric;
      a.value = values[i];
      a.baseline = med;
      a.deviation = excess / mad;
      out->push_back(a);
    }
  }
}

}  // namespace

const char* anomaly_kind_name(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kStepRateRegression: return "step_rate_regression";
    case AnomalyKind::kCommLatencySpike: return "comm_latency_spike";
    case AnomalyKind::kStraggler: return "straggler";
  }
  return "anomaly?";
}

double AnomalyDetector::Baseline::mad() const {
  if (residuals.empty()) return 0;
  return median_of(std::vector<double>(residuals.begin(), residuals.end()));
}

double AnomalyDetector::Baseline::update(double value,
                                         const AnomalyConfig& cfg,
                                         bool freeze) {
  if (!initialized) {
    ewma = value;
    initialized = true;
    samples = 1;
    return 0;
  }
  const double residual = std::abs(value - ewma);
  const double m = mad();
  const double deviation = m > 0 ? residual / m : 0;
  if (!freeze) {
    ewma += cfg.alpha * (value - ewma);
    residuals.push_back(residual);
    while (residuals.size() > static_cast<std::size_t>(cfg.window))
      residuals.pop_front();
    ++samples;
  }
  return deviation;
}

AnomalyDetector::AnomalyDetector(AnomalyConfig config) : config_(config) {}

void AnomalyDetector::check_series(Baseline* baseline, AnomalyKind kind,
                                   const char* metric, double value, double k,
                                   int sign, std::int64_t step,
                                   std::vector<Anomaly>* out) {
  const double prior = baseline->ewma;
  const bool warm = baseline->samples >= config_.warmup;
  // Peek at the deviation first, then decide whether the baseline may
  // absorb this value: anomalous values are held out so a sustained
  // regression keeps flagging instead of becoming the new normal.
  const double residual = baseline->initialized ? std::abs(value - prior) : 0;
  const double m = baseline->mad();
  const bool harmful = sign < 0 ? value < prior : value > prior;
  const bool robust = warm && m > 0 && residual > k * m;
  const bool relative =
      prior != 0 && residual > config_.min_relative * std::abs(prior);
  const bool flagged = harmful && robust && relative;
  baseline->update(value, config_, /*freeze=*/flagged);
  if (!flagged) return;
  Anomaly a;
  a.kind = kind;
  a.step = step;
  a.metric = metric;
  a.value = value;
  a.baseline = prior;
  a.deviation = residual / m;
  out->push_back(a);
}

std::vector<Anomaly> AnomalyDetector::observe(
    std::int64_t step, const std::vector<ReducedMetric>& reduced,
    const std::vector<double>& rank_particles,
    const std::vector<double>& rank_busy) {
  std::vector<Anomaly> out;

  if (const ReducedMetric* rate = find_metric(reduced, "push.rate"))
    check_series(&rate_, AnomalyKind::kStepRateRegression, "push.rate",
                 rate->stats.sum, config_.rate_k, /*sign=*/-1, step, &out);

  if (const ReducedMetric* migrate = find_metric(reduced, "phase.migrate.s"))
    check_series(&comm_, AnomalyKind::kCommLatencySpike, "phase.migrate.s",
                 migrate->stats.max, config_.comm_k, /*sign=*/+1, step, &out);

  check_cross_rank(rank_busy, "pipeline.busy.s", config_, step, &out);
  check_cross_rank(rank_particles, "particles.local", config_, step, &out);

  total_flagged_ += static_cast<std::int64_t>(out.size());
  return out;
}

void AnomalyDetector::publish(const std::vector<Anomaly>& anomalies,
                              MetricsRegistry* metrics,
                              TraceWriter* trace) const {
  for (const Anomaly& a : anomalies) {
    const char* kind = anomaly_kind_name(a.kind);
    if (metrics != nullptr) {
      metrics->counter("anomaly.total", "count").add(1);
      metrics->counter(std::string("anomaly.") + kind, "count").add(1);
    }
    if (trace != nullptr) {
      Json args = Json::object();
      args.set("metric", Json::string(a.metric));
      args.set("value", Json::number(a.value));
      args.set("baseline", Json::number(a.baseline));
      args.set("deviation", Json::number(a.deviation));
      if (a.rank >= 0)
        args.set("rank", Json::number(static_cast<std::int64_t>(a.rank)));
      trace->instant(kind, "anomaly", std::move(args));
    }
    if (a.rank >= 0) {
      MV_LOG_WARN << "anomaly: " << kind << " at step " << a.step << " rank "
                  << a.rank << ": " << a.metric << "=" << a.value
                  << " vs median " << a.baseline << " (" << a.deviation
                  << " MADs)";
    } else {
      MV_LOG_WARN << "anomaly: " << kind << " at step " << a.step << ": "
                  << a.metric << "=" << a.value << " vs baseline "
                  << a.baseline << " (" << a.deviation << " MADs)";
    }
  }
}

}  // namespace minivpic::telemetry
