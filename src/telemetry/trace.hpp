// Chrome trace-event sink: records begin/end duration spans and instant
// events in the Trace Event Format understood by Perfetto and
// chrome://tracing. Events are buffered in memory (a span is two small
// structs, no I/O on the hot path) and serialized as one JSON document on
// close().
//
// Threading: begin/end/instant are safe to call from any thread; each
// thread's events carry a stable small integer tid (assigned on first use),
// so B/E pairs nest per thread as the format requires. `pid` is the vmpi
// rank, which groups each rank's spans into its own track group in the
// viewer.
//
// ScopedSpan is the RAII form and tolerates a null writer, which is the
// disabled-sink fast path: one pointer test, no clock read. PhaseSpan
// couples a span with the Stopwatch lap the step loop already keeps, so
// phase wall-clock totals and trace spans can never disagree.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/recorder.hpp"
#include "util/timer.hpp"

namespace minivpic::telemetry {

class TraceWriter {
 public:
  /// Events are written to `path` on close() (or destruction). `pid`
  /// labels this writer's process track — pass the vmpi rank.
  explicit TraceWriter(std::string path, int pid = 0);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Opens a duration span on the calling thread.
  void begin(const char* name, const char* category = "step");
  /// Closes the most recent open span on the calling thread.
  void end();
  /// Thread-scoped instant event with optional structured args.
  void instant(const char* name, const char* category = "event",
               Json args = Json());

  std::size_t num_events() const;

  /// Serializes `{"traceEvents": [...]}` to the path. Idempotent; called
  /// by the destructor if not called explicitly. Throws on I/O failure.
  void close();

 private:
  struct Event {
    char phase;  // 'B', 'E', 'i'
    double ts_us;
    int tid;
    std::string name;      // empty for 'E'
    std::string category;  // empty for 'E'
    std::string args;      // pre-rendered JSON object, may be empty
  };

  int tid_for_current_thread();

  std::string path_;
  int pid_;
  Timer clock_;  ///< common epoch for all threads
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::vector<std::thread::id> tids_;
  bool closed_ = false;
};

/// RAII duration span; a null writer makes every operation a no-op.
class ScopedSpan {
 public:
  ScopedSpan(TraceWriter* writer, const char* name,
             const char* category = "step")
      : writer_(writer) {
    if (writer_ != nullptr) writer_->begin(name, category);
  }
  ~ScopedSpan() {
    if (writer_ != nullptr) writer_->end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceWriter* writer_;
};

/// Times a scope into a Stopwatch (exactly like ScopedLap) and mirrors it
/// as a trace span when a writer is attached. This is the step loop's
/// instrumentation primitive: the Stopwatch total the benches/sampler read
/// and the span the trace shows cover the same interval by construction.
/// With a recorder attached the same scope also lands in the flight
/// recorder as a phase begin/end event pair (the black box's timeline).
class PhaseSpan {
 public:
  PhaseSpan(Stopwatch& sw, TraceWriter* writer, const char* name,
            Recorder* recorder = nullptr, std::uint16_t phase = 0)
      : lap_(sw), span_(writer, name), recorded_(recorder, phase) {}

 private:
  ScopedLap lap_;
  ScopedSpan span_;
  RecordedPhase recorded_;
};

}  // namespace minivpic::telemetry
