#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace minivpic::telemetry {

MetricHistogram::MetricHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / double(bins)), counts_(bins, 0.0) {
  MV_REQUIRE(bins >= 1, "histogram needs at least one bin");
  MV_REQUIRE(hi > lo, "histogram range [" << lo << ", " << hi
                                          << ") is empty");
}

void MetricHistogram::add(double x, double weight) {
  MV_REQUIRE(std::isfinite(x), "histogram sample is not finite");
  if (x < lo_) {
    underflow_ += weight;
  } else if (x >= hi_) {
    overflow_ += weight;
  } else {
    auto i = std::size_t((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // x just below hi
    counts_[i] += weight;
  }
  total_count_ += weight;
  sum_ += weight * x;
  if (empty_) {
    min_ = max_ = x;
    empty_ = false;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void MetricHistogram::merge(const MetricHistogram& other) {
  MV_REQUIRE(other.lo_ == lo_ && other.hi_ == hi_ &&
                 other.counts_.size() == counts_.size(),
             "merging histograms with different shapes: ["
                 << lo_ << ", " << hi_ << ")x" << counts_.size() << " vs ["
                 << other.lo_ << ", " << other.hi_ << ")x"
                 << other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_count_ += other.total_count_;
  sum_ += other.sum_;
  if (!other.empty_) {
    if (empty_) {
      min_ = other.min_;
      max_ = other.max_;
      empty_ = false;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
}

double MetricHistogram::bin_lo(std::size_t i) const {
  return lo_ + double(i) * width_;
}

double MetricHistogram::bin_hi(std::size_t i) const {
  return i + 1 == counts_.size() ? hi_ : lo_ + double(i + 1) * width_;
}

double MetricHistogram::quantile(double q) const {
  MV_REQUIRE(q >= 0.0 && q <= 1.0, "quantile " << q << " outside [0, 1]");
  if (total_count_ <= 0) return lo_;
  const double target = q * total_count_;
  double seen = underflow_;
  if (target <= seen) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (seen + counts_[i] >= target && counts_[i] > 0) {
      const double frac = (target - seen) / counts_[i];
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    seen += counts_[i];
  }
  return hi_;
}

MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name) {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& unit) {
  if (Entry* e = find(name)) {
    MV_REQUIRE(e->kind == Kind::kCounter,
               "metric '" << name << "' already registered with another kind");
    return *e->counter;
  }
  Entry e;
  e.name = name;
  e.unit = unit;
  e.kind = Kind::kCounter;
  e.counter = std::make_unique<Counter>();
  entries_.push_back(std::move(e));
  return *entries_.back().counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& unit) {
  if (Entry* e = find(name)) {
    MV_REQUIRE(e->kind == Kind::kGauge,
               "metric '" << name << "' already registered with another kind");
    return *e->gauge;
  }
  Entry e;
  e.name = name;
  e.unit = unit;
  e.kind = Kind::kGauge;
  e.gauge = std::make_unique<Gauge>();
  entries_.push_back(std::move(e));
  return *entries_.back().gauge;
}

MetricHistogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t bins,
                                            const std::string& unit) {
  if (Entry* e = find(name)) {
    MV_REQUIRE(e->kind == Kind::kHistogram,
               "metric '" << name << "' already registered with another kind");
    return *e->histogram;
  }
  Entry e;
  e.name = name;
  e.unit = unit;
  e.kind = Kind::kHistogram;
  e.histogram = std::make_unique<MetricHistogram>(lo, hi, bins);
  entries_.push_back(std::move(e));
  return *entries_.back().histogram;
}

std::vector<ScalarMetric> MetricsRegistry::scalars() const {
  std::vector<ScalarMetric> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out.push_back({e.name, e.unit, e.counter->value()});
        break;
      case Kind::kGauge:
        out.push_back({e.name, e.unit, e.gauge->value()});
        break;
      case Kind::kHistogram:
        out.push_back({e.name + ".count", "count",
                       e.histogram->total_count()});
        out.push_back({e.name + ".sum", e.unit, e.histogram->sum()});
        out.push_back({e.name + ".min", e.unit, e.histogram->min()});
        out.push_back({e.name + ".max", e.unit, e.histogram->max()});
        break;
    }
  }
  return out;
}

const MetricHistogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name && e.kind == Kind::kHistogram) return e.histogram.get();
  }
  return nullptr;
}

}  // namespace minivpic::telemetry
