// Metrics substrate for the telemetry layer: named counters, gauges, and
// fixed-bucket mergeable histograms held in a registry that preserves
// registration order. The registry is the hand-off point between producers
// (StepSampler, benches) and sinks (NDJSON stream, rank reduction, summary
// tables): every scalar metric can be flattened — in a deterministic order,
// identical on every rank — into a {name, unit, value} list that
// RankReducer can allreduce element-wise.
//
// Histograms use fixed bins on [lo, hi) plus underflow/overflow, and merge
// associatively and commutatively (bin-wise sums), so per-rank or per-shard
// histograms can be folded in any grouping without changing the result —
// the property test_metrics.cpp pins down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace minivpic::telemetry {

/// Monotonically accumulating value (totals: particles pushed, bytes out).
class Counter {
 public:
  void add(double d) { value_ += d; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Point-in-time value (rates, ratios, occupancy).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram on [lo, hi): `bins` equal-width buckets plus
/// underflow/overflow, tracking count, sum, min, max. merge() is bin-wise
/// addition — associative and commutative, so distributed merges are
/// order-independent.
class MetricHistogram {
 public:
  MetricHistogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  /// Folds `other` (same lo/hi/bins required) into this histogram.
  void merge(const MetricHistogram& other);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t num_bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }

  double total_count() const { return total_count_; }
  double sum() const { return sum_; }
  double mean() const { return total_count_ > 0 ? sum_ / total_count_ : 0.0; }
  double min() const { return min_; }  ///< 0 when empty
  double max() const { return max_; }  ///< 0 when empty

  /// Value below which fraction `q` in [0, 1] of the weight falls, linearly
  /// interpolated within the containing bin (under/overflow clamp to edges).
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  double total_count_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool empty_ = true;
};

/// One flattened scalar metric (the unit of NDJSON emission and rank
/// reduction). Units are plain strings from the catalogue in
/// docs/OBSERVABILITY.md ("s", "1/s", "Gflop/s", "GB/s", "count", "ratio").
struct ScalarMetric {
  std::string name;
  std::string unit;
  double value = 0.0;
};

/// Insertion-ordered registry of named metrics. Re-registering a name of
/// the same kind returns the existing instance; a kind clash throws.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& unit = "");
  Gauge& gauge(const std::string& name, const std::string& unit = "");
  MetricHistogram& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins, const std::string& unit = "");

  /// Flattens every metric to scalars in registration order. A histogram
  /// contributes `<name>.count`, `<name>.sum`, `<name>.min`, `<name>.max`.
  std::vector<ScalarMetric> scalars() const;

  const MetricHistogram* find_histogram(const std::string& name) const;
  std::size_t size() const { return entries_.size(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string unit;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<MetricHistogram> histogram;
  };
  Entry* find(const std::string& name);

  std::vector<Entry> entries_;
};

}  // namespace minivpic::telemetry
