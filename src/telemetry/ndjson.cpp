#include "telemetry/ndjson.hpp"

#include "util/error.hpp"

namespace minivpic::telemetry {

NdjsonWriter::NdjsonWriter(const std::string& path)
    : os_(path, std::ios::trunc), path_(path) {
  MV_REQUIRE(os_.good(), "cannot open metrics output file: " << path);
}

void NdjsonWriter::write(const Json& record) {
  os_ << record.dump() << '\n';
  os_.flush();
  MV_REQUIRE(os_.good(), "failed writing metrics record to " << path_);
  ++records_;
}

Json meta_record(int ranks, int pipelines, const std::string& kernel,
                 const std::vector<ReducedMetric>& sample_metrics,
                 const Json& extra) {
  Json meta = Json::object();
  meta.set("type", Json::string("meta"));
  meta.set("schema", Json::number(std::int64_t{kNdjsonSchemaVersion}));
  meta.set("ranks", Json::number(std::int64_t{ranks}));
  meta.set("pipelines", Json::number(std::int64_t{pipelines}));
  meta.set("kernel", Json::string(kernel));
  Json units = Json::object();
  for (const ReducedMetric& m : sample_metrics)
    units.set(m.name, Json::string(m.unit));
  meta.set("units", std::move(units));
  if (extra.is_object()) {
    for (const auto& [k, v] : extra.members()) meta.set(k, v);
  }
  return meta;
}

Json sample_record(const StepSample& sample,
                   const std::vector<ReducedMetric>& reduced,
                   const std::vector<double>& rank_particles,
                   const std::vector<double>& rank_busy) {
  Json rec = Json::object();
  rec.set("type", Json::string("step_sample"));
  rec.set("schema", Json::number(std::int64_t{kNdjsonSchemaVersion}));
  rec.set("step", Json::number(sample.step_end));
  rec.set("step_begin", Json::number(sample.step_begin));
  rec.set("t", Json::number(sample.sim_time));
  Json metrics = Json::object();
  for (const ReducedMetric& m : reduced) {
    Json stats = Json::object();
    stats.set("min", Json::number(m.stats.min));
    stats.set("mean", Json::number(m.stats.mean));
    stats.set("max", Json::number(m.stats.max));
    stats.set("sum", Json::number(m.stats.sum));
    metrics.set(m.name, std::move(stats));
  }
  rec.set("metrics", std::move(metrics));
  if (!rank_particles.empty() || !rank_busy.empty()) {
    Json load = Json::object();
    Json particles = Json::array();
    for (double v : rank_particles) particles.push_back(Json::number(v));
    Json busy = Json::array();
    for (double v : rank_busy) busy.push_back(Json::number(v));
    load.set("particles", std::move(particles));
    load.set("busy_s", std::move(busy));
    rec.set("load", std::move(load));
  }
  return rec;
}

}  // namespace minivpic::telemetry
