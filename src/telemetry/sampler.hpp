// StepSampler: turns the step loop's raw observables — Simulation's
// cumulative StepTimings, ParticleStats, per-pipeline busy seconds — and
// perf::KernelCosts' counted flop/byte costs into the derived metrics the
// paper reports: per-phase seconds, achieved Gflop/s and GB/s, particles
// advanced per second, migration counts, and the per-pipeline load-imbalance
// ratio. Each sample() covers the interval since the previous sample()
// (cumulative counters are differenced internally), so a periodic cadence
// yields a time series and derive_total() yields the whole-run summary.
//
// Every front end must derive rates through this class (see
// particles_per_second): the CLI print, the benches' JSON, and the NDJSON
// stream share one formula by construction.
//
// The sampler reads only local (per-rank) state and performs no
// communication; cross-rank min/mean/max/sum happens in RankReducer.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "telemetry/metrics.hpp"

namespace minivpic::telemetry {

/// Derived metrics for one sample interval (or a whole run). All values are
/// local to this rank; scalars() flattens them under the documented metric
/// catalogue (docs/OBSERVABILITY.md) for sinks and reduction.
struct StepSample {
  std::int64_t step_begin = 0;  ///< first step of the interval (exclusive)
  std::int64_t step_end = 0;    ///< last step of the interval (inclusive)
  double sim_time = 0;          ///< simulation time at step_end
  double wall_seconds = 0;      ///< caller-supplied wall clock of interval

  /// Per-phase seconds in StepTimings order:
  /// interpolate, push, migrate, sort, reduce, sources, field, clean,
  /// collide.
  std::vector<std::pair<std::string, double>> phase_seconds;
  double step_seconds = 0;  ///< sum of phase seconds

  std::int64_t particles_local = 0;  ///< resident particles at step_end
  std::int64_t pushed = 0;           ///< particle advances in interval
  std::int64_t crossings = 0;
  std::int64_t migrated = 0;
  std::int64_t absorbed = 0;
  std::int64_t refluxed = 0;
  std::int64_t collision_pairs = 0;
  std::int64_t sorted = 0;          ///< particles bin-sorted in interval

  double push_seconds = 0;
  double particles_per_sec = 0;     ///< pushed / push_seconds
  double push_gflops = 0;           ///< achieved, from counted flops/particle
  double push_gbytes_per_sec = 0;   ///< algorithmic bytes at the sampled ppc
  double field_gflops = 0;          ///< field solve achieved rate
  double step_gflops = 0;           ///< push flops over whole-step seconds

  double sort_seconds = 0;          ///< sort-phase seconds (= phase.sort.s)
  double sort_rate = 0;             ///< sorted / sort_seconds

  double pipelines = 1;             ///< resolved pipeline count
  double pipeline_imbalance = 1;    ///< max/mean per-pipeline busy seconds
  double pipeline_occupancy = 1;    ///< mean busy / max busy (1 = balanced)
  double busy_seconds = 0;          ///< summed per-pipeline busy seconds

  std::string kernel = "scalar";    ///< resolved advance kernel name
  double lane_width = 1;            ///< SIMD lanes of that kernel (1|4|8|16)

  std::int64_t immigrated = 0;      ///< immigrants settled in interval

  // Comm/compute overlap (docs/OVERLAP.md). Zero when the barriered loop
  // runs; in overlapped runs hidden + exposed == comm within clock jitter.
  double overlap_enabled = 0;       ///< 1 when the overlapped loop ran
  double overlap_comm_s = 0;        ///< async-exchange worker wall seconds
  double overlap_hidden_s = 0;      ///< comm seconds covered by interior push
  double overlap_exposed_s = 0;     ///< join-wait seconds (= phase.migrate
                                    ///< share attributable to the exchange)

  std::vector<ScalarMetric> scalars() const;
};

class StepSampler {
 public:
  /// Captures the baseline at the current simulation state; the first
  /// sample() covers everything after this point.
  explicit StepSampler(const sim::Simulation& sim);

  /// Derives the metrics accumulated since the previous sample() (or
  /// construction). `wall_seconds` is the caller-measured wall clock of
  /// the interval (the step loop owns the clock; the sampler owns the
  /// arithmetic).
  StepSample sample(double wall_seconds);

  /// Whole-run totals from step 0, independent of sample() history.
  static StepSample derive_total(const sim::Simulation& sim,
                                 double wall_seconds);

  // -- the shared derivations (single source of truth) ---------------------

  /// Particles advanced per second of push-phase time; 0 when no time has
  /// been accumulated. The ONLY particles/s formula in the tree.
  static double particles_per_second(std::int64_t pushed,
                                     double push_seconds);

  /// Achieved Gflop/s of the particle advance from the counted
  /// flops/particle (perf::KernelCosts::push_flops_per_particle).
  static double push_gflops(std::int64_t pushed, double seconds);

  /// Achieved GB/s of the particle advance from the algorithmic
  /// bytes/particle at `particles_per_cell` occupancy.
  static double push_gbytes_per_second(std::int64_t pushed,
                                       double particles_per_cell,
                                       double seconds);

 private:
  /// Cumulative observables read from the simulation (all inline accessors;
  /// no collectives).
  struct Snapshot {
    std::int64_t step = 0;
    double phases[9] = {};  // StepTimings order
    sim::ParticleStats stats;
    sim::OverlapStats overlap;
    std::vector<double> pipeline_busy;
  };
  static Snapshot capture(const sim::Simulation& sim);
  static StepSample derive(const sim::Simulation& sim, const Snapshot& from,
                           const Snapshot& to, double wall_seconds);

  const sim::Simulation* sim_;
  Snapshot prev_;
};

}  // namespace minivpic::telemetry
