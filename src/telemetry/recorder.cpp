#include "telemetry/recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"

namespace minivpic::telemetry {

namespace {

// One steady-clock epoch shared by every recorder in the process. Under
// vmpi ranks are threads of this process, so a single epoch makes per-rank
// timestamps directly comparable in the merged postmortem timeline.
std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr char kMagic[8] = {'M', 'V', 'F', 'D', 'R', '1', '\0', '\0'};

// Global registry of live recorders, walked from signal context. Fixed
// size, lock-free: registration CASes a null slot, deregistration stores
// null back. Large enough for every rank of every concurrent campaign job.
constexpr int kMaxRegistered = 1024;
std::atomic<Recorder*> g_registered[kMaxRegistered];

// write() the whole buffer, retrying on short writes/EINTR. Signal-safe.
bool write_all(int fd, const void* data, std::size_t size) noexcept {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void crash_handler(int sig) {
  dump_registered(FdrDumpReason::kSignal);
  // Restore the default disposition and re-raise so the exit status (and
  // core, if enabled) looks exactly as it would without the recorder.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

const char* fdr_phase_name(std::uint16_t phase) {
  switch (phase) {
    case kFdrPhaseStep: return "step";
    case kFdrPhaseInterpolate: return "interpolate";
    case kFdrPhasePush: return "push";
    case kFdrPhaseMigrate: return "migrate";
    case kFdrPhaseSort: return "sort";
    case kFdrPhaseReduce: return "reduce";
    case kFdrPhaseSources: return "sources";
    case kFdrPhaseField: return "field";
    case kFdrPhaseClean: return "clean";
    case kFdrPhaseCollide: return "collide";
    case kFdrPhasePushSkin: return "push.skin";
    case kFdrPhasePushInterior: return "push.interior";
    case kFdrPhaseMigrateAsync: return "migrate.async";
    default: return "phase?";
  }
}

const char* fdr_kind_name(FdrKind kind) {
  switch (kind) {
    case FdrKind::kNone: return "none";
    case FdrKind::kPhaseBegin: return "phase_begin";
    case FdrKind::kPhaseEnd: return "phase_end";
    case FdrKind::kStep: return "step";
    case FdrKind::kCommSend: return "comm_send";
    case FdrKind::kCommRecv: return "comm_recv";
    case FdrKind::kCommFault: return "comm_fault";
    case FdrKind::kCheckpoint: return "checkpoint";
    case FdrKind::kRestore: return "restore";
    case FdrKind::kHealth: return "health";
    case FdrKind::kFault: return "fault";
    case FdrKind::kRecovery: return "recovery";
    case FdrKind::kAnomaly: return "anomaly";
    case FdrKind::kDump: return "dump";
    case FdrKind::kExit: return "exit";
    case FdrKind::kServiceAccept: return "service_accept";
    case FdrKind::kServiceDispatch: return "service_dispatch";
    case FdrKind::kServiceComplete: return "service_complete";
  }
  return "kind?";
}

const char* fdr_dump_reason_name(FdrDumpReason reason) {
  switch (reason) {
    case FdrDumpReason::kManual: return "manual";
    case FdrDumpReason::kSignal: return "signal";
    case FdrDumpReason::kCommFault: return "comm_fault";
    case FdrDumpReason::kHealthAbort: return "health_abort";
    case FdrDumpReason::kInterrupted: return "interrupted";
    case FdrDumpReason::kExit: return "exit";
  }
  return "reason?";
}

Recorder::Recorder(std::string path, int rank, std::size_t capacity)
    : path_(std::move(path)),
      rank_(rank),
      capacity_(round_up_pow2(capacity < 2 ? 2 : capacity)),
      mask_(capacity_ - 1),
      events_(new FdrEvent[capacity_]) {
  process_epoch();  // pin the shared epoch before the first record()
  for (int i = 0; i < kMaxRegistered; ++i) {
    Recorder* expected = nullptr;
    if (g_registered[i].compare_exchange_strong(expected, this,
                                                std::memory_order_acq_rel)) {
      crash_slot_ = i;
      break;
    }
  }
}

Recorder::~Recorder() {
  if (crash_slot_ >= 0)
    g_registered[crash_slot_].store(nullptr, std::memory_order_release);
}

void Recorder::record(FdrKind kind, std::uint16_t code, int peer,
                      std::uint64_t arg) noexcept {
  const std::uint64_t slot = head_.fetch_add(1, std::memory_order_relaxed);
  FdrEvent& e = events_[slot & mask_];
  e.ts_ns = now_ns();
  e.step = step_.load(std::memory_order_relaxed);
  e.kind = static_cast<std::uint16_t>(kind);
  e.code = code;
  e.peer = peer;
  e.arg = arg;
}

bool Recorder::dump(FdrDumpReason reason) const noexcept {
  // The marker makes the dump self-describing even if the header is the
  // only context that survives truncation.
  const_cast<Recorder*>(this)->record(FdrKind::kDump,
                                      static_cast<std::uint16_t>(reason));

  const std::uint64_t total = head_.load(std::memory_order_relaxed);
  const std::uint64_t stored = total < capacity_ ? total : capacity_;

  FdrHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = 1;
  header.rank = rank_;
  header.capacity = capacity_;
  header.total = total;
  header.stored = stored;
  header.event_size = sizeof(FdrEvent);
  header.reason = static_cast<std::uint32_t>(reason);

  int fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  bool ok = write_all(fd, &header, sizeof(header));
  // Oldest event first: when wrapped the oldest lives at head & mask.
  const std::uint64_t first = total - stored;
  for (std::uint64_t i = 0; ok && i < stored; ++i)
    ok = write_all(fd, &events_[(first + i) & mask_], sizeof(FdrEvent));
  if (::close(fd) != 0) ok = false;
  return ok;
}

Recorder::Dump Recorder::read(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  MV_REQUIRE(f != nullptr, "cannot open flight record: " + path);
  Dump dump;
  bool header_ok =
      std::fread(&dump.header, sizeof(dump.header), 1, f) == 1 &&
      std::memcmp(dump.header.magic, kMagic, sizeof(kMagic)) == 0 &&
      dump.header.version == 1 && dump.header.event_size == sizeof(FdrEvent);
  if (!header_ok) {
    std::fclose(f);
    MV_REQUIRE(false, "not a v1 .fdr file: " + path);
  }
  dump.events.resize(dump.header.stored);
  const std::size_t got =
      dump.events.empty()
          ? 0
          : std::fread(dump.events.data(), sizeof(FdrEvent),
                       dump.events.size(), f);
  std::fclose(f);
  // A dump from a dying process may be truncated; keep what we got.
  dump.events.resize(got);
  return dump;
}

int dump_registered(FdrDumpReason reason) noexcept {
  int dumped = 0;
  for (int i = 0; i < kMaxRegistered; ++i) {
    Recorder* r = g_registered[i].load(std::memory_order_acquire);
    if (r != nullptr && r->dump(reason)) ++dumped;
  }
  return dumped;
}

void install_crash_handlers() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  struct sigaction sa{};
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

void vmpi_comm_hook(void* ctx, int rank, int event, int peer, int detail,
                    unsigned long long bytes) noexcept {
  const auto* set = static_cast<const RecorderSet*>(ctx);
  if (set == nullptr || rank < 0 || rank >= set->count) return;
  Recorder* r = set->recorders[rank];
  if (r == nullptr) return;
  // Event codes match vmpi::kCommHook{Send,Recv,Fault} in vmpi/config.hpp.
  switch (event) {
    case 0:
      r->record(FdrKind::kCommSend, 0, peer, bytes);
      break;
    case 1:
      r->record(FdrKind::kCommRecv, 0, peer, bytes);
      break;
    case 2:
      r->record(FdrKind::kCommFault, static_cast<std::uint16_t>(detail), peer,
                bytes);
      break;
    default:
      break;
  }
}

}  // namespace minivpic::telemetry
