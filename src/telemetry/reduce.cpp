#include "telemetry/reduce.hpp"

#include <span>

namespace minivpic::telemetry {

std::vector<ReducedMetric> RankReducer::reduce(
    const std::vector<ScalarMetric>& local) const {
  std::vector<ReducedMetric> out;
  out.reserve(local.size());
  if (comm_ == nullptr || comm_->size() == 1) {
    for (const ScalarMetric& m : local)
      out.push_back({m.name, m.unit, {m.value, m.value, m.value, m.value}});
    return out;
  }

  std::vector<double> mins, maxs, sums;
  mins.reserve(local.size());
  for (const ScalarMetric& m : local) mins.push_back(m.value);
  maxs = mins;
  sums = mins;
  comm_->allreduce(std::span<double>(mins), vmpi::Op::kMin);
  comm_->allreduce(std::span<double>(maxs), vmpi::Op::kMax);
  comm_->allreduce(std::span<double>(sums), vmpi::Op::kSum);

  const double n = double(comm_->size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    out.push_back({local[i].name,
                   local[i].unit,
                   {mins[i], sums[i] / n, maxs[i], sums[i]}});
  }
  return out;
}

std::vector<double> RankReducer::gather(double value) const {
  if (comm_ == nullptr || comm_->size() == 1) return {value};
  return comm_->gather(value, 0);
}

void append_load_imbalance(std::vector<ReducedMetric>* reduced) {
  double ratio = 1.0;
  for (const ReducedMetric& m : *reduced) {
    if (m.name == "particles.local" && m.stats.mean > 0) {
      ratio = m.stats.max / m.stats.mean;
      break;
    }
  }
  reduced->push_back({"load.imbalance", "ratio", {ratio, ratio, ratio, ratio}});
}

}  // namespace minivpic::telemetry
