#include "telemetry/trace.hpp"

#include <cstdio>
#include <fstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace minivpic::telemetry {

TraceWriter::TraceWriter(std::string path, int pid)
    : path_(std::move(path)), pid_(pid) {}

TraceWriter::~TraceWriter() {
  // Destructors must not throw; an explicit close() reports I/O errors.
  try {
    close();
  } catch (const std::exception& e) {
    MV_LOG_ERROR << "trace writer: dropping trace on close failure: "
                 << e.what();
  }
}

int TraceWriter::tid_for_current_thread() {
  // Callers hold mu_. Linear scan: a handful of threads at most.
  const std::thread::id self = std::this_thread::get_id();
  for (std::size_t i = 0; i < tids_.size(); ++i) {
    if (tids_[i] == self) return int(i);
  }
  tids_.push_back(self);
  return int(tids_.size() - 1);
}

void TraceWriter::begin(const char* name, const char* category) {
  const double ts = clock_.seconds() * 1e6;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({'B', ts, tid_for_current_thread(), name, category, {}});
}

void TraceWriter::end() {
  const double ts = clock_.seconds() * 1e6;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({'E', ts, tid_for_current_thread(), {}, {}, {}});
}

void TraceWriter::instant(const char* name, const char* category, Json args) {
  const double ts = clock_.seconds() * 1e6;
  std::string rendered;
  if (!args.is_null()) rendered = args.dump();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({'i', ts, tid_for_current_thread(), name, category,
                     std::move(rendered)});
}

std::size_t TraceWriter::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceWriter::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  closed_ = true;

  std::ofstream os(path_, std::ios::trunc);
  MV_REQUIRE(os.good(), "cannot open trace output file: " << path_);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  char num[48];
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    os << "{\"ph\":\"" << e.phase << '"';
    if (!e.name.empty()) os << ",\"name\":\"" << Json::escape(e.name) << '"';
    if (!e.category.empty())
      os << ",\"cat\":\"" << Json::escape(e.category) << '"';
    std::snprintf(num, sizeof num, "%.3f", e.ts_us);
    os << ",\"ts\":" << num << ",\"pid\":" << pid_ << ",\"tid\":" << e.tid;
    if (e.phase == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
    if (!e.args.empty()) os << ",\"args\":" << e.args;
    os << '}';
    if (i + 1 < events_.size()) os << ',';
    os << '\n';
  }
  os << "]}\n";
  os.flush();
  MV_REQUIRE(os.good(), "failed writing trace output file: " << path_);
}

}  // namespace minivpic::telemetry
