// Minimal JSON value: enough to emit the telemetry sinks (NDJSON records,
// Chrome trace events) and to parse them back in tests and the smoke-check
// tool. Objects preserve insertion order so emitted records have a stable,
// diffable key order. Not a general-purpose JSON library: no comments, no
// NaN/Inf (rejected on emit — the trace/NDJSON consumers are strict JSON).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace minivpic::telemetry {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}

  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(double v);
  static Json number(std::int64_t v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors throw minivpic::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  // -- array ---------------------------------------------------------------
  void push_back(Json v);
  std::size_t size() const;  ///< array elements or object members
  const Json& at(std::size_t i) const;

  // -- object (insertion-ordered) ------------------------------------------
  /// Sets `key` (replacing an existing member in place).
  void set(const std::string& key, Json v);
  /// nullptr when absent.
  const Json* find(const std::string& key) const;
  /// Throws minivpic::Error when absent.
  const Json& at(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Compact single-line serialization. Numbers round-trip (shortest form
  /// that parses back to the same double); non-finite numbers throw.
  std::string dump() const;

  /// Strict parser; throws minivpic::Error with a byte offset on malformed
  /// input or trailing garbage.
  static Json parse(const std::string& text);

  /// Escapes one string body (no surrounding quotes) per RFC 8259.
  static std::string escape(const std::string& s);

 private:
  void dump_to(std::string& out) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace minivpic::telemetry
