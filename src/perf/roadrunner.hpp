// Analytic performance model of the LANL Roadrunner machine running VPIC —
// the substitution for the hardware we cannot have (DESIGN.md §2, F3).
//
// Machine facts (public): 17 connected units x 180 triblades; each triblade
// carries 4 PowerXCell 8i chips (2 QS22 blades) plus one dual-socket
// dual-core Opteron LS21; 12,240 Cells / 97,920 SPEs total; 3.2 GHz SPEs at
// 8 SP flops/clock (25.6 Gflop/s each, 204.8 Gflop/s per chip) giving a
// 2.51 Pflop/s single-precision Cell-side peak; ~25.6 GB/s memory bandwidth
// per Cell; 4x DDR InfiniBand fat-tree (~2 GB/s per triblade link).
//
// The model is a roofline plus overheads:
//   t_push   = max(flops/particle / compute-rate, bytes/particle / mem-bw)
//              where bytes/particle blends sorted-stream and random-gather
//              traffic by the mean disorder over one sort period — the
//              sorted-gather discount that makes sort_every a modeled
//              tradeoff instead of a guess (docs/SORTING.md)
//   t_sort   = streaming read+write of the particle array / sort period
//   t_reduce = per-pipeline accumulator blocks folded once per step / mem-bw
//   t_field  = field-update traffic / mem-bw
//   t_comm   = ghost surface + migration bytes / IB bandwidth (+ latency)
//   t_host   = DaCS/PCIe staging, a calibrated fraction of t_push
// The particle advance runs on `pipelines_per_chip` concurrent pipelines
// (VPIC on Roadrunner: one per SPE), each with a private accumulator block;
// the compute side of the push roofline scales with the pipelines actually
// running, and the block reduction is the serial tax the pipeline layer
// pays per step.
// Key insight it encodes (and the paper's own point): at the paper's scale
// the particle advance sits on the *memory* side of the roofline — PIC
// moves more bytes per flop than the usual supercomputer demo kernels, so
// 0.488 Pflop/s in the inner loop means the DMA engines are saturated.
#pragma once

#include <cstdint>

namespace minivpic::perf {

struct RoadrunnerConfig {
  int connected_units = 17;
  int triblades_per_cu = 180;
  int cells_per_triblade = 4;
  int spes_per_cell = 8;
  double clock_hz = 3.2e9;
  /// SPE SIMD width in SP lanes (Cell: 128-bit = 4 floats). Our host
  /// kernels map onto the same axis: scalar 1, sse 4, avx2 8, avx512 16
  /// (particles::kernel_lane_width); swap this in to model other ISAs.
  int simd_lane_width = 4;
  /// SP flops each lane retires per clock (Cell SPE: one fused
  /// multiply-add pipe = 2 flops/lane/clock, giving the quoted 8
  /// flops/clock per SPE).
  double flops_per_lane_per_clock = 2.0;
  double mem_bw_per_cell = 25.6e9;     ///< bytes/s
  double ib_bw_per_triblade = 2.0e9;   ///< bytes/s per direction
  double ib_latency = 2e-6;            ///< seconds per exchange phase

  /// Concurrent particle pipelines per chip (VPIC: one per SPE). Fewer
  /// pipelines than SPEs idles compute; the accumulator reduction cost
  /// grows with the pipeline count.
  int pipelines_per_chip = 8;
  /// Bytes per voxel per pipeline block touched by the accumulator
  /// reduction (one 64-byte CellAccum cache line).
  double reduce_bytes_per_voxel = 64.0;

  // Workload cost parameters (paper flop-counting convention — slightly
  // richer than our portable kernel's 182-flop arithmetic core because it
  // includes the mover/boundary handling work; see EXPERIMENTS.md):
  double flops_per_particle = 250.0;
  double bytes_per_particle = 160.0;   ///< sorted-stream traffic (costs.hpp)
  /// Traffic per particle when the list has decayed to random cell order:
  /// every 80 B interpolator gather and 48 B accumulator RMW lands on a
  /// cold cache line instead of streaming, so the memory side of the push
  /// roofline roughly doubles (docs/SORTING.md measures this on the host
  /// kernels; bench_sort_ablation is the experiment).
  double bytes_per_particle_unsorted = 320.0;
  /// Fraction of particles that cross a cell face per step (~ u_th dt/dx);
  /// the disorder the periodic sort exists to undo accumulates at this
  /// rate, so the mean gather penalty grows with sort_period. 0 models a
  /// perfectly cold plasma (sorted order never decays).
  double disorder_per_step = 0.005;
  double field_flops_per_voxel = 66.0;
  double field_bytes_per_voxel = 60.0;

  // Calibrated efficiencies:
  double spe_push_efficiency = 0.30;   ///< compute-side ceiling, frac of peak
  double host_overhead_fraction = 0.18;  ///< DaCS/PCIe staging vs t_push
  int sort_period = 20;  ///< steps between bin sorts ([control] sort_every)

  /// Comm/compute overlap effectiveness, in [0, 1]: the fraction of the
  /// exchange the overlapped step loop (docs/OVERLAP.md, [control]
  /// `overlap`) hides behind the interior push. 0 models the barriered
  /// schedule (every t_comm second exposed — the legacy t_step, exactly);
  /// 1 models a perfect scheduler that hides comm up to the interior-push
  /// budget. The hideable budget itself is bounded by the skin fraction:
  /// only the interior pass (1 - f_skin of t_push) runs concurrently with
  /// the exchange, so a chip with a thin interior cannot hide much comm no
  /// matter how good the scheduler is.
  double comm_overlap = 0.0;

  /// Mean fraction of the particle list out of streaming order, averaged
  /// over one sort period: disorder grows ~linearly from 0 right after a
  /// sort to (P-1) * disorder_per_step just before the next, clamped to 1.
  /// This is the knob coupling: larger sort_period shrinks t_sort but
  /// inflates t_push through the gather penalty — the tradeoff the
  /// [control] sort_every deck key tunes (docs/SORTING.md).
  double mean_disorder() const {
    const double d = 0.5 * double(sort_period - 1) * disorder_per_step;
    return d < 1.0 ? d : 1.0;
  }

  /// Effective push traffic: sorted-stream bytes blended with the
  /// random-gather penalty by the mean disorder fraction.
  double effective_bytes_per_particle() const {
    const double f = mean_disorder();
    return (1.0 - f) * bytes_per_particle + f * bytes_per_particle_unsorted;
  }

  /// SP flops per SPE per clock: lanes x flops/lane (Cell: 4 x 2 = the
  /// public 8 flops/clock figure).
  double sp_flops_per_spe_clock() const {
    return double(simd_lane_width) * flops_per_lane_per_clock;
  }
};

struct RoadrunnerPrediction {
  double peak_sp_flops = 0;        ///< machine SP peak (Cell side)
  double t_push = 0;               ///< seconds/step in the particle advance
  double t_reduce = 0;             ///< pipeline accumulator-block reduction
  double t_sort = 0;               ///< amortized bin-sort cost per step
  double gather_disorder = 0;      ///< mean out-of-order fraction modeled
  double bytes_per_particle_eff = 0;  ///< disorder-blended push traffic
  double t_field = 0;
  double t_comm = 0;               ///< total exchange time (wire + latency)
  double skin_fraction = 0;        ///< modeled skin share of the push
  double t_comm_hidden = 0;        ///< comm overlapped behind interior push
  double t_comm_exposed = 0;       ///< comm left on the critical path
  double t_host = 0;
  double t_step = 0;               ///< uses t_comm_exposed, not t_comm
  double inner_loop_flops = 0;     ///< sustained Pflop/s of the inner loop
  double sustained_flops = 0;      ///< sustained Pflop/s whole code
  double particles_per_second = 0;
  bool memory_bound = false;       ///< inner loop limited by memory, not SPEs
};

class RoadrunnerModel {
 public:
  explicit RoadrunnerModel(const RoadrunnerConfig& cfg = {});

  const RoadrunnerConfig& config() const { return cfg_; }

  int total_cells() const;
  int total_spes() const;
  double peak_sp_flops() const;

  /// Predicts one step of a run with `particles` macroparticles on `voxels`
  /// cells, spread over `cells_used` Cell chips (default: whole machine).
  RoadrunnerPrediction predict(double particles, double voxels,
                               int cells_used = -1) const;

 private:
  RoadrunnerConfig cfg_;
};

}  // namespace minivpic::perf
