// Measured microkernels for the data-motion comparison (DESIGN.md F6): the
// abstract's claim is that PIC requires more data motion per flop than the
// kernels usually used to demonstrate supercomputer performance — dense
// matrix multiply, MD N-body, and Monte Carlo. Each kernel reports its
// measured time together with its analytic flop and byte counts, so the
// bench can print arithmetic intensities side by side.
#pragma once

#include <cstdint>
#include <string>

namespace minivpic::perf {

struct KernelReport {
  std::string name;
  double seconds = 0;
  double flops = 0;       ///< analytic flop count of the work performed
  double bytes = 0;       ///< analytic algorithmic memory traffic
  double checksum = 0;    ///< defeats dead-code elimination; value arbitrary

  double gflops() const { return flops / seconds / 1e9; }
  double flops_per_byte() const { return bytes > 0 ? flops / bytes : 1e9; }
};

/// Naive-blocked single-precision n x n matrix multiply.
KernelReport run_sgemm(std::int64_t n);

/// All-pairs gravitational N-body acceleration pass (single precision).
KernelReport run_nbody(std::int64_t n);

/// Monte-Carlo pi estimation over `samples` draws.
KernelReport run_montecarlo(std::int64_t samples);

/// The VPIC particle advance on a sorted uniform plasma of `particles`
/// macroparticles (ppc controls interpolator amortization).
KernelReport run_pic_push(std::int64_t particles, int ppc);

}  // namespace minivpic::perf
