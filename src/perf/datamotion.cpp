#include "perf/datamotion.hpp"

#include <cmath>
#include <vector>

#include "particles/loader.hpp"
#include "particles/push.hpp"
#include "perf/costs.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace minivpic::perf {

KernelReport run_sgemm(std::int64_t n) {
  MV_REQUIRE(n >= 8, "matrix too small to time");
  const std::size_t nn = std::size_t(n);
  std::vector<float> a(nn * nn), b(nn * nn), c(nn * nn, 0.0f);
  Rng rng(1);
  for (auto& v : a) v = float(rng.uniform(-1, 1));
  for (auto& v : b) v = float(rng.uniform(-1, 1));

  Timer t;
  constexpr std::size_t kBlock = 32;
  for (std::size_t i0 = 0; i0 < nn; i0 += kBlock) {
    for (std::size_t k0 = 0; k0 < nn; k0 += kBlock) {
      for (std::size_t j0 = 0; j0 < nn; j0 += kBlock) {
        const std::size_t i1 = std::min(i0 + kBlock, nn);
        const std::size_t k1 = std::min(k0 + kBlock, nn);
        const std::size_t j1 = std::min(j0 + kBlock, nn);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t k = k0; k < k1; ++k) {
            const float aik = a[i * nn + k];
            for (std::size_t j = j0; j < j1; ++j) {
              c[i * nn + j] += aik * b[k * nn + j];
            }
          }
        }
      }
    }
  }
  KernelReport rep;
  rep.name = "dense matrix (SGEMM)";
  rep.seconds = t.seconds();
  rep.flops = KernelCosts::sgemm_flops(n);
  rep.bytes = KernelCosts::sgemm_bytes(n);
  rep.checksum = c[nn / 2];
  return rep;
}

KernelReport run_nbody(std::int64_t n) {
  MV_REQUIRE(n >= 8, "too few bodies to time");
  const std::size_t nn = std::size_t(n);
  std::vector<float> x(nn), y(nn), z(nn), m(nn), ax(nn, 0), ay(nn, 0),
      az(nn, 0);
  Rng rng(2);
  for (std::size_t i = 0; i < nn; ++i) {
    x[i] = float(rng.uniform(-1, 1));
    y[i] = float(rng.uniform(-1, 1));
    z[i] = float(rng.uniform(-1, 1));
    m[i] = float(rng.uniform(0.5, 1.5));
  }
  constexpr float eps2 = 1e-4f;
  Timer t;
  for (std::size_t i = 0; i < nn; ++i) {
    float axi = 0, ayi = 0, azi = 0;
    const float xi = x[i], yi = y[i], zi = z[i];
    for (std::size_t j = 0; j < nn; ++j) {
      const float dx = x[j] - xi, dy = y[j] - yi, dz = z[j] - zi;
      const float r2 = dx * dx + dy * dy + dz * dz + eps2;
      const float inv_r = 1.0f / std::sqrt(r2);
      const float s = m[j] * inv_r * inv_r * inv_r;
      axi += s * dx;
      ayi += s * dy;
      azi += s * dz;
    }
    ax[i] = axi;
    ay[i] = ayi;
    az[i] = azi;
  }
  KernelReport rep;
  rep.name = "MD N-body";
  rep.seconds = t.seconds();
  rep.flops = KernelCosts::nbody_flops(n);
  rep.bytes = KernelCosts::nbody_bytes(n);
  rep.checksum = ax[nn / 2];
  return rep;
}

KernelReport run_montecarlo(std::int64_t samples) {
  MV_REQUIRE(samples >= 1000, "too few samples to time");
  Rng rng(3);
  std::int64_t inside = 0;
  Timer t;
  for (std::int64_t s = 0; s < samples; ++s) {
    const double x = rng.uniform();
    const double y = rng.uniform();
    if (x * x + y * y < 1.0) ++inside;
  }
  KernelReport rep;
  rep.name = "Monte Carlo";
  rep.seconds = t.seconds();
  rep.flops = KernelCosts::montecarlo_flops_per_sample() * double(samples);
  rep.bytes = KernelCosts::montecarlo_bytes_per_sample() * double(samples);
  rep.checksum = 4.0 * double(inside) / double(samples);
  return rep;
}

KernelReport run_pic_push(std::int64_t particles, int ppc) {
  MV_REQUIRE(ppc >= 1, "ppc must be positive");
  using namespace minivpic::particles;
  // Cube sized to hold `particles` at the requested ppc.
  const int n = std::max(
      4, int(std::round(std::cbrt(double(particles) / double(ppc)))));
  grid::GlobalGrid gg;
  gg.nx = gg.ny = gg.nz = n;
  gg.dx = gg.dy = gg.dz = 0.5;
  const grid::LocalGrid g(gg);
  grid::FieldArray f(g);
  // Mild smooth fields so the push does representative work.
  for (int k = 0; k <= n + 1; ++k)
    for (int j = 0; j <= n + 1; ++j)
      for (int i = 0; i <= n + 1; ++i) {
        f.ey(i, j, k) = 0.01f * float(std::sin(0.3 * i));
        f.cbz(i, j, k) = 0.02f * float(std::cos(0.2 * j));
      }
  InterpolatorArray interp(g);
  interp.load(f);
  AccumulatorArray acc(g);
  Pusher pusher(g, periodic_particles());
  Species sp("e", -1.0, 1.0);
  LoadConfig cfg;
  cfg.ppc = ppc;
  cfg.uth = 0.05;
  load_uniform(sp, g, cfg);
  sp.sort(g);

  Timer t;
  const auto res = pusher.advance(sp, interp, acc);
  KernelReport rep;
  rep.name = "PIC particle advance";
  rep.seconds = t.seconds();
  rep.flops = KernelCosts::push_flops_per_particle() * double(res.pushed);
  rep.bytes =
      KernelCosts::push_bytes_per_particle(double(ppc)) * double(res.pushed);
  rep.checksum = sp.kinetic_energy();
  return rep;
}

}  // namespace minivpic::perf
