// Central flop and byte accounting for every hot kernel — the numbers the
// performance model and the data-motion analysis are built on. Flop counts
// are static (counted from the kernel source); byte counts are the
// algorithmic memory traffic per unit of work.
#pragma once

#include <cstdint>

#include "particles/kernel.hpp"

namespace minivpic::perf {

struct KernelCosts {
  // -- particle advance (the paper's inner loop) ---------------------------
  /// Flops per particle per step, common in-cell case (see push.cpp).
  /// Identical for every kernel: the SIMD kernels execute the same
  /// arithmetic, W particles at a time.
  static double push_flops_per_particle();

  /// SIMD lanes the given advance kernel retires per operation (scalar 1,
  /// sse 4, avx2 8, avx512 16) — the flops/clock axis of the roofline
  /// (RoadrunnerConfig::simd_lane_width).
  static int push_lane_width(particles::Kernel k);

  /// Algorithmic bytes moved per particle per step when particles are
  /// sorted (VPIC's operating point): the 32 B particle is read and written,
  /// the 12 accumulator floats are read-modify-written, and the 80 B
  /// interpolator load is amortized over the particles sharing a cell.
  static double push_bytes_per_particle(double particles_per_cell);

  // -- field solve ---------------------------------------------------------
  /// Flops per voxel for one full B/E/B field update.
  static double field_flops_per_voxel();

  /// Bytes per voxel for the field update: E, B, J read; E, B written.
  static double field_bytes_per_voxel();

  // -- interpolator / accumulator maintenance ------------------------------
  /// Flops per voxel to rebuild the interpolator.
  static double interp_flops_per_voxel();

  /// Flops per voxel to unload the accumulator.
  static double unload_flops_per_voxel();

  // -- comparison microkernels (data-motion study, DESIGN.md F6) -----------
  /// Dense single-precision matrix multiply: flops and minimum algorithmic
  /// traffic for an n x n problem.
  static double sgemm_flops(std::int64_t n);
  static double sgemm_bytes(std::int64_t n);

  /// All-pairs MD-style N-body step.
  static double nbody_flops(std::int64_t n);
  static double nbody_bytes(std::int64_t n);

  /// Monte-Carlo sampling (per sample).
  static double montecarlo_flops_per_sample();
  static double montecarlo_bytes_per_sample();
};

}  // namespace minivpic::perf
