#include "perf/costs.hpp"

#include "field/solver.hpp"
#include "particles/push.hpp"

namespace minivpic::perf {

double KernelCosts::push_flops_per_particle() {
  return particles::Pusher::flops_per_particle();
}

int KernelCosts::push_lane_width(particles::Kernel k) {
  return particles::kernel_lane_width(k);
}

double KernelCosts::push_bytes_per_particle(double particles_per_cell) {
  // Particle read + write (32 B each), accumulator 12 floats RMW (96 B),
  // interpolator 80 B read amortized across the cell's particles.
  const double amortized = particles_per_cell > 0
                               ? (80.0 + 64.0) / particles_per_cell
                               : 80.0 + 64.0;
  return 32.0 + 32.0 + 96.0 + amortized;
}

double KernelCosts::field_flops_per_voxel() {
  return field::FieldSolver::flops_per_voxel();
}

double KernelCosts::field_bytes_per_voxel() {
  // Read E, cB, J (9 floats), write E, cB (6 floats), plus stencil
  // neighbor reuse assumed cached: ~15 floats of unique traffic.
  return 15.0 * 4.0;
}

double KernelCosts::interp_flops_per_voxel() {
  // 3 E components x ~10 ops + 3 B components x 3 ops (see
  // interpolator.cpp).
  return 3 * 10 + 3 * 3;
}

double KernelCosts::unload_flops_per_voxel() {
  // 12 scaled adds (see accumulator.cpp).
  return 12 * 2;
}

double KernelCosts::sgemm_flops(std::int64_t n) {
  return 2.0 * double(n) * double(n) * double(n);
}

double KernelCosts::sgemm_bytes(std::int64_t n) {
  // Minimum traffic: read A, B once, write C once (cache-blocked ideal).
  return 3.0 * double(n) * double(n) * 4.0;
}

double KernelCosts::nbody_flops(std::int64_t n) {
  // ~20 flops per pair interaction (dx, r2, rsqrt, force, accumulate).
  return 20.0 * double(n) * double(n);
}

double KernelCosts::nbody_bytes(std::int64_t n) {
  // Positions read once, forces written once (inner loop cache-resident).
  return double(n) * (16.0 + 16.0);
}

double KernelCosts::montecarlo_flops_per_sample() { return 7.0; }

double KernelCosts::montecarlo_bytes_per_sample() { return 0.0; }

}  // namespace minivpic::perf
