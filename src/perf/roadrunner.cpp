#include "perf/roadrunner.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace minivpic::perf {

RoadrunnerModel::RoadrunnerModel(const RoadrunnerConfig& cfg) : cfg_(cfg) {
  MV_REQUIRE(cfg.connected_units > 0 && cfg.triblades_per_cu > 0 &&
                 cfg.cells_per_triblade > 0,
             "machine must have at least one Cell");
  MV_REQUIRE(cfg.spe_push_efficiency > 0 && cfg.spe_push_efficiency <= 1,
             "efficiency must be in (0,1]");
  MV_REQUIRE(cfg.flops_per_particle > 0 && cfg.bytes_per_particle > 0,
             "workload costs must be positive");
  MV_REQUIRE(cfg.sort_period >= 1, "sort period must be >= 1");
  MV_REQUIRE(cfg.bytes_per_particle_unsorted >= cfg.bytes_per_particle,
             "unsorted gather traffic cannot be below the sorted stream");
  MV_REQUIRE(cfg.disorder_per_step >= 0 && cfg.disorder_per_step <= 1,
             "disorder per step is a fraction");
  MV_REQUIRE(cfg.pipelines_per_chip >= 1 &&
                 cfg.pipelines_per_chip <= cfg.spes_per_cell,
             "pipelines per chip must be in [1, SPEs per chip], got "
                 << cfg.pipelines_per_chip);
  MV_REQUIRE(cfg.reduce_bytes_per_voxel >= 0,
             "reduction traffic must be non-negative");
  MV_REQUIRE(cfg.comm_overlap >= 0 && cfg.comm_overlap <= 1,
             "comm_overlap must be in [0, 1], got " << cfg.comm_overlap);
}

int RoadrunnerModel::total_cells() const {
  return cfg_.connected_units * cfg_.triblades_per_cu *
         cfg_.cells_per_triblade;
}

int RoadrunnerModel::total_spes() const {
  return total_cells() * cfg_.spes_per_cell;
}

double RoadrunnerModel::peak_sp_flops() const {
  return double(total_spes()) * cfg_.clock_hz * cfg_.sp_flops_per_spe_clock();
}

RoadrunnerPrediction RoadrunnerModel::predict(double particles, double voxels,
                                              int cells_used) const {
  MV_REQUIRE(particles > 0 && voxels > 0, "workload must be non-empty");
  const int chips = cells_used < 0 ? total_cells() : cells_used;
  MV_REQUIRE(chips >= 1 && chips <= total_cells(),
             "cells_used out of range: " << cells_used);

  RoadrunnerPrediction out;
  const double chip_flops =
      cfg_.spes_per_cell * cfg_.clock_hz * cfg_.sp_flops_per_spe_clock();
  out.peak_sp_flops = double(chips) * chip_flops;

  const double np = particles / chips;  // particles per Cell chip
  const double nv = voxels / chips;     // voxels per Cell chip

  // Particle advance roofline. The compute side only counts the SPEs that
  // actually run pipelines: fewer pipelines than SPEs idles compute.
  const double pipeline_flops = cfg_.pipelines_per_chip * cfg_.clock_hz *
                                cfg_.sp_flops_per_spe_clock();
  const double t_compute = np * cfg_.flops_per_particle /
                           (pipeline_flops * cfg_.spe_push_efficiency);
  // Memory side pays the sorted-gather discount: traffic is the sorted
  // stream blended with the random-gather penalty by the mean disorder
  // accumulated over one sort period (RoadrunnerConfig::mean_disorder).
  out.gather_disorder = cfg_.mean_disorder();
  out.bytes_per_particle_eff = cfg_.effective_bytes_per_particle();
  const double t_memory =
      np * out.bytes_per_particle_eff / cfg_.mem_bw_per_cell;
  out.t_push = std::max(t_compute, t_memory);
  out.memory_bound = t_memory >= t_compute;

  // Per-pipeline accumulator blocks folded once per step: stream every
  // private block in, read-modify-write the base block.
  out.t_reduce = nv * cfg_.reduce_bytes_per_voxel *
                 double(cfg_.pipelines_per_chip + 1) / cfg_.mem_bw_per_cell;

  // Periodic in-place bin sort, amortized over its period: a streaming
  // histogram read plus the cycle-chasing permutation's random
  // read-modify-write of each misplaced particle — calibrated at ~4x the
  // 32 B particle record (Species::sort; docs/SORTING.md).
  out.t_sort = np * (32.0 * 2 * 2) / cfg_.mem_bw_per_cell /
               double(cfg_.sort_period);

  // Field update: bandwidth-bound over the mesh (plus its modest flops).
  out.t_field = std::max(
      nv * cfg_.field_bytes_per_voxel / cfg_.mem_bw_per_cell,
      nv * cfg_.field_flops_per_voxel / (chip_flops * 0.05));

  // Inter-node exchange: ghost planes of ~6 components on the 6 faces of a
  // near-cubic per-chip block, plus migrating particles (~ the surface
  // layer's worth each step at thermal speeds), over the triblade IB link
  // shared by its 4 Cells.
  const double side = std::cbrt(std::max(nv, 1.0));
  const double ghost_bytes = 6.0 * side * side * 6.0 * 4.0;  // 6 faces x 6 comps x 4 B
  // ~1.5% of the particles in the one-cell surface shell cross a rank face
  // per step at hohlraum thermal speeds (u_th dt/dx ~ a few percent).
  const double surface_fraction = std::min(1.0, 6.0 * side * side / nv * 0.015);
  const double migrate_bytes = np * surface_fraction * 56.0;
  const double link_bw = cfg_.ib_bw_per_triblade / cfg_.cells_per_triblade;
  out.t_comm = (ghost_bytes + migrate_bytes) / link_bw + 6.0 * cfg_.ib_latency;

  // Comm/compute overlap (docs/OVERLAP.md): the overlapped step loop hides
  // the exchange behind the interior pass of the push. Only the interior
  // share of t_push is available as cover — the skin pass (the one-cell
  // shell of the near-cubic per-chip block) must finish before the exchange
  // can start, so f_skin = 1 - ((s-2)/s)^3 of the push is sequential with
  // it. comm_overlap scales the hidden fraction from 0 (barriered; t_step
  // reduces exactly to the legacy sum) to 1 (perfect scheduler).
  const double inner = std::max(0.0, side - 2.0) / side;
  out.skin_fraction = 1.0 - inner * inner * inner;
  const double cover = out.t_push * (1.0 - out.skin_fraction);
  out.t_comm_hidden = cfg_.comm_overlap * std::min(out.t_comm, cover);
  out.t_comm_exposed = out.t_comm - out.t_comm_hidden;

  // Host (Opteron) staging over PCIe/DaCS — the hybrid-architecture tax the
  // paper engineered around; calibrated residual fraction.
  out.t_host = cfg_.host_overhead_fraction * out.t_push;

  out.t_step = out.t_push + out.t_reduce + out.t_sort + out.t_field +
               out.t_comm_exposed + out.t_host;
  out.inner_loop_flops = particles * cfg_.flops_per_particle / out.t_push;
  out.sustained_flops = particles * cfg_.flops_per_particle / out.t_step;
  out.particles_per_second = particles / out.t_step;
  return out;
}

}  // namespace minivpic::perf
