# Runs the command given after `--` and fails unless its exit status is
# exactly EXPECT. CTest's WILL_FAIL only distinguishes zero from nonzero;
# the chaos-soak fixture uses this to pin run_deck's documented exit-code
# table (README, docs/FAULTS.md) — 3 must stay "resumable" and 4
# "unrecoverable", not just "some failure".
#
#   cmake -DEXPECT=<code> -P expect_exit.cmake -- <cmd> [args...]
if(NOT DEFINED EXPECT)
  message(FATAL_ERROR "expect_exit.cmake: pass -DEXPECT=<code>")
endif()

set(cmd)
set(past_separator FALSE)
# CMAKE_ARGV0..N hold the full script command line including cmake's own
# arguments; everything after the first `--` is the command to run.
math(EXPR last "${CMAKE_ARGC} - 1")
foreach(i RANGE 0 ${last})
  if(past_separator)
    list(APPEND cmd "${CMAKE_ARGV${i}}")
  elseif(CMAKE_ARGV${i} STREQUAL "--")
    set(past_separator TRUE)
  endif()
endforeach()
if(NOT cmd)
  message(FATAL_ERROR "expect_exit.cmake: no command after `--`")
endif()

execute_process(COMMAND ${cmd} RESULT_VARIABLE rc)
if(NOT rc STREQUAL "${EXPECT}")
  message(FATAL_ERROR "expected exit code ${EXPECT}, got '${rc}' from: ${cmd}")
endif()
