// Service subsystem proof: deficit-weighted fair queuing (per-flow share
// converges to priority regardless of job sizing), protocol parse/serialize
// round-trips, the O(1) ledger index, and the daemon end to end — a fresh
// submission bit-identical to the batch executor's run of the same content
// hash, duplicates answered from cache or coalesced without a second
// simulation, queue overflow yielding typed rejections, protocol abuse
// (oversized lines, truncated JSON, slow loris, mid-submission disconnect)
// never wedging a worker, and a drain/restart cycle losing no accepted job.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/results.hpp"
#include "campaign/spec.hpp"
#include "service/client.hpp"
#include "service/net.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"
#include "service/server.hpp"
#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace minivpic::service {
namespace {

using telemetry::Json;

// A deliberately tiny base deck so end-to-end tests run in milliseconds.
const char* kBaseDeck = R"(
[grid]
nx = 12  ny = 2  nz = 2  dx = 0.5

[species electron]
q = -1  m = 1  ppc = 4  uth = 0.05  seed = 7

[species ion]
q = 1  m = 1836  ppc = 4  uth = 0.001  mobile = false
)";

constexpr int kSteps = 4;
const char* kAxis = "species electron.uth";

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "/minivpic_service_" + tag;
}

campaign::CampaignSpec base_spec() {
  campaign::CampaignSpec spec = campaign::CampaignSpec::from_deck_source(
      sim::DeckSource::from_text(kBaseDeck));
  spec.set_steps(kSteps);
  return spec;
}

/// Quiet expected warnings (injected faults, drain notices).
struct LogSilencer {
  LogLevel prev = log_level();
  LogSilencer() { set_log_level(LogLevel::kError); }
  ~LogSilencer() { set_log_level(prev); }
};

ScheduledJob make_sched(const std::string& client, double priority, int steps,
                        const std::string& id) {
  ScheduledJob j;
  j.job.id = id;
  j.job.steps = steps;
  j.client = client;
  j.priority = priority;
  return j;
}

// -- FairScheduler -----------------------------------------------------------

TEST(FairScheduler, AdmissionBoundRefusesBeyondCapacity) {
  FairScheduler s(2);
  EXPECT_TRUE(s.enqueue(make_sched("a", 1, 10, "j1")));
  EXPECT_TRUE(s.enqueue(make_sched("b", 1, 10, "j2")));
  EXPECT_FALSE(s.enqueue(make_sched("a", 1, 10, "j3")));
  EXPECT_EQ(s.depth(), 2);
  ASSERT_TRUE(s.next().has_value());
  EXPECT_TRUE(s.enqueue(make_sched("a", 1, 10, "j3")));  // slot freed
}

TEST(FairScheduler, EqualPrioritiesInterleaveClients) {
  FairScheduler s(100, /*quantum=*/10);
  for (int i = 0; i < 4; ++i) {
    const std::string n = std::to_string(i);
    s.enqueue(make_sched("a", 1, 10, "a" + n));
    s.enqueue(make_sched("b", 1, 10, "b" + n));
  }
  std::string order;
  while (auto j = s.next()) order += j->client;
  EXPECT_EQ(order, "abababab");
}

TEST(FairScheduler, PriorityWeightsServedShare) {
  // Equal job sizes, b at priority 3: each arrival at b banks 3x the
  // credit, so b serves 3 jobs per pass to a's 1 — a 3:1 served share.
  FairScheduler s(100, /*quantum=*/10);
  for (int i = 0; i < 12; ++i) {
    const std::string n = std::to_string(i);
    s.enqueue(make_sched("a", 1, 10, "a" + n));
    s.enqueue(make_sched("b", 3, 10, "b" + n));
  }
  std::string first8;
  for (int i = 0; i < 8; ++i) first8 += s.next()->client;
  EXPECT_EQ(first8, "abbbabbb");
}

TEST(FairScheduler, LargeJobsServedInverselyToTheirCost) {
  // a's jobs cost 30 steps, b's cost 10, equal priority: DRR serves b three
  // times as often, so both flows get equal worker-steps — a client cannot
  // buy extra compute by batching bigger jobs.
  FairScheduler s(100, /*quantum=*/10);
  for (int i = 0; i < 3; ++i) {
    const std::string n = std::to_string(i);
    s.enqueue(make_sched("a", 1, 30, "a" + n));
  }
  for (int i = 0; i < 9; ++i) {
    const std::string n = std::to_string(i);
    s.enqueue(make_sched("b", 1, 10, "b" + n));
  }
  int a_steps = 0, b_steps = 0;
  for (int i = 0; i < 8; ++i) {
    const auto j = s.next();
    (j->client == "a" ? a_steps : b_steps) += j->job.steps;
  }
  EXPECT_NEAR(double(a_steps) / double(b_steps), 1.0, 0.5);
}

TEST(FairScheduler, EmptiedFlowsAreForgotten) {
  // A long-lived daemon must not keep one flow per client name ever seen:
  // once a client's queue empties, its flow is erased.
  FairScheduler s(100, /*quantum=*/10);
  for (int i = 0; i < 50; ++i) {
    const std::string n = std::to_string(i);
    ASSERT_TRUE(s.enqueue(make_sched("client" + n, 1, 10, "j" + n)));
  }
  EXPECT_EQ(s.flows(), 50);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(s.next().has_value());
  EXPECT_EQ(s.flows(), 0);
  // Interleaving still holds after flows come and go.
  s.enqueue(make_sched("a", 1, 10, "a0"));
  s.enqueue(make_sched("b", 1, 10, "b0"));
  s.enqueue(make_sched("a", 1, 10, "a1"));
  s.enqueue(make_sched("b", 1, 10, "b1"));
  std::string order;
  while (auto j = s.next()) order += j->client;
  EXPECT_EQ(order, "abab");
  EXPECT_EQ(s.flows(), 0);
}

TEST(FairScheduler, DrainReturnsEverythingAndEmpties) {
  FairScheduler s(100);
  s.enqueue(make_sched("a", 1, 10, "a0"));
  s.enqueue(make_sched("b", 1, 10, "b0"));
  s.enqueue(make_sched("a", 1, 10, "a1"));
  const auto all = s.drain();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(s.depth(), 0);
  EXPECT_FALSE(s.next().has_value());
  // Client arrival order, FIFO within a client.
  EXPECT_EQ(all[0].job.id, "a0");
  EXPECT_EQ(all[1].job.id, "a1");
  EXPECT_EQ(all[2].job.id, "b0");
}

// -- protocol ----------------------------------------------------------------

TEST(Protocol, ParsesEveryRequestType) {
  EXPECT_EQ(parse_request(R"({"type":"ping"})").type, Request::Type::kPing);
  EXPECT_EQ(parse_request(R"({"type":"status"})").type,
            Request::Type::kStatus);
  EXPECT_EQ(parse_request(R"({"type":"metrics"})").type,
            Request::Type::kMetrics);
  const Request r = parse_request(
      R"({"type":"submit","overrides":["grid.nx=16"],"steps":8,)"
      R"("client":"c1","priority":2.5,"wait":false})");
  EXPECT_EQ(r.type, Request::Type::kSubmit);
  ASSERT_EQ(r.submit.overrides.size(), 1u);
  EXPECT_EQ(r.submit.overrides[0].spec(), "grid.nx=16");
  EXPECT_EQ(r.submit.steps, 8);
  EXPECT_EQ(r.submit.client, "c1");
  EXPECT_EQ(r.submit.priority, 2.5);
  EXPECT_FALSE(r.submit.wait);
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request("not json"), Error);
  EXPECT_THROW(parse_request(R"({"type":"submit")"), Error);  // truncated
  EXPECT_THROW(parse_request(R"({"no":"type"})"), Error);
  EXPECT_THROW(parse_request(R"({"type":"launch_missiles"})"), Error);
  EXPECT_THROW(parse_request(R"({"type":"submit","steps":-1})"), Error);
  EXPECT_THROW(parse_request(R"({"type":"submit","priority":0})"), Error);
  // Out-of-range weights are refused at parse time: a near-zero priority
  // would otherwise spin the DRR scheduler for ~cost/(quantum*priority)
  // rounds under the server lock.
  EXPECT_THROW(parse_request(R"({"type":"submit","priority":1e-12})"), Error);
  EXPECT_THROW(parse_request(R"({"type":"submit","priority":1000})"), Error);
  EXPECT_THROW(parse_request(R"({"type":"submit","overrides":"x"})"), Error);
}

TEST(Protocol, QueuedJobRoundTripsThroughJson) {
  QueuedJob q;
  q.job.id = "00deadbeef001234";
  q.job.label = "grid.nx=16";
  q.job.overrides = {sim::parse_override("grid.nx=16")};
  q.job.steps = 8;
  q.job.probe_plane = 4;
  q.job.warmup = 1.5;
  q.job.deck_text = "[grid]\nnx = 12\n";
  q.client = "c1";
  q.priority = 2.0;
  q.resume_step = 5;
  q.resume_prefix = "/tmp/ckpt";
  const QueuedJob r = queued_job_from_json(
      Json::parse(queued_job_to_json(q).dump()));
  EXPECT_EQ(r.job.id, q.job.id);
  EXPECT_EQ(r.job.label, q.job.label);
  ASSERT_EQ(r.job.overrides.size(), 1u);
  EXPECT_EQ(r.job.overrides[0].spec(), "grid.nx=16");
  EXPECT_EQ(r.job.steps, q.job.steps);
  EXPECT_EQ(r.job.probe_plane, q.job.probe_plane);
  EXPECT_EQ(r.job.warmup, q.job.warmup);
  EXPECT_EQ(r.job.deck_text, q.job.deck_text);
  EXPECT_EQ(r.client, q.client);
  EXPECT_EQ(r.priority, q.priority);
  EXPECT_EQ(r.resume_step, q.resume_step);
  EXPECT_EQ(r.resume_prefix, q.resume_prefix);
}

// -- ResultStore::find -------------------------------------------------------

TEST(ResultStoreIndex, FindIsBuiltAtOpenAndMaintainedByAppend) {
  const std::string path = temp_path("find.ndjson");
  {
    campaign::ResultStore store(path, /*resume=*/false);
    campaign::JobResult r;
    r.id = "aaaa000000000001";
    r.status = "failed";
    r.error = "first try";
    store.append(r);
    EXPECT_EQ(store.find("aaaa000000000001")->status, "failed");
    r.status = "done";
    r.error.clear();
    store.append(r);  // latest record wins
    EXPECT_EQ(store.find("aaaa000000000001")->status, "done");
    EXPECT_FALSE(store.find("bbbb000000000002").has_value());
  }
  campaign::ResultStore reopened(path, /*resume=*/true);
  ASSERT_TRUE(reopened.find("aaaa000000000001").has_value());
  EXPECT_EQ(reopened.find("aaaa000000000001")->status, "done");
}

// -- end to end --------------------------------------------------------------

struct Daemon {
  campaign::CampaignSpec spec;
  campaign::ResultStore store;
  std::unique_ptr<ServiceServer> server;

  explicit Daemon(const char* tag, campaign::ExecutorConfig exec = {},
                  ServerConfig config = {})
      : spec(base_spec()), store(temp_path(tag), /*resume=*/false) {
    exec.scratch_dir = ::testing::TempDir();
    server = std::make_unique<ServiceServer>(spec, store, exec, config);
    server->start();
  }
  int port() const { return server->port(); }
};

TEST(ServiceEndToEnd, FreshResultBitIdenticalToBatchExecutor) {
  LogSilencer quiet;
  // Batch path: a one-axis one-value campaign through CampaignExecutor.
  campaign::CampaignSpec spec = base_spec();
  spec.add_axis(kAxis, {"0.06"});
  const std::vector<campaign::Job> jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 1u);
  campaign::ResultStore direct(temp_path("direct.ndjson"), false);
  campaign::ExecutorConfig exec;
  exec.scratch_dir = ::testing::TempDir();
  campaign::CampaignExecutor batch(spec, exec);
  ASSERT_TRUE(batch.run(direct).all_done());
  const auto batch_result = direct.find(jobs[0].id);
  ASSERT_TRUE(batch_result.has_value());

  // Service path: the same point submitted over the wire must hash to the
  // same id and produce bit-identical physics.
  Daemon d("e2e_fresh.ndjson");
  ServiceClient client(d.port());
  const Json resp =
      client.submit("", {std::string(kAxis) + "=0.06"}, kSteps, "t");
  ASSERT_EQ(resp.at("type").as_string(), "result");
  EXPECT_EQ(resp.at("source").as_string(), "fresh");
  EXPECT_EQ(resp.at("id").as_string(), jobs[0].id);
  const auto served = d.store.find(jobs[0].id);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->status, "done");
  EXPECT_EQ(served->energy_total, batch_result->energy_total);
  EXPECT_EQ(served->kinetic_total, batch_result->kinetic_total);
  EXPECT_EQ(served->particles, batch_result->particles);
  EXPECT_EQ(served->steps, batch_result->steps);
}

TEST(ServiceEndToEnd, DuplicatesServedFromCacheWithoutSecondSimulation) {
  LogSilencer quiet;
  telemetry::MetricsRegistry registry;
  campaign::ExecutorConfig exec;
  exec.metrics = &registry;
  Daemon d("e2e_cache.ndjson", exec);
  ServiceClient client(d.port());
  const std::vector<std::string> ov = {std::string(kAxis) + "=0.055"};
  const Json first = client.submit("", ov, kSteps, "t");
  ASSERT_EQ(first.at("type").as_string(), "result");
  EXPECT_EQ(first.at("source").as_string(), "fresh");
  const Json second = client.submit("", ov, kSteps, "t");
  ASSERT_EQ(second.at("type").as_string(), "result");
  EXPECT_EQ(second.at("source").as_string(), "cache");
  // Identical payloads, exactly one simulation, counters agree.
  EXPECT_EQ(first.at("result").dump(), second.at("result").dump());
  EXPECT_EQ(d.store.records_written(), 1);
  const Json metrics = client.metrics().at("values");
  EXPECT_EQ(metrics.at("service.submissions").as_number(), 2.0);
  EXPECT_EQ(metrics.at("service.cache_hits").as_number(), 1.0);
  EXPECT_EQ(metrics.at("campaign.jobs.done").as_number(), 1.0);
}

TEST(ServiceEndToEnd, ConcurrentDuplicatesCoalesceOntoOneJob) {
  LogSilencer quiet;
  telemetry::MetricsRegistry registry;
  campaign::ExecutorConfig exec;
  exec.metrics = &registry;
  // Slow the job down so the duplicates provably arrive while it runs.
  exec.per_step_hook = [](sim::Simulation&, const campaign::Job&, int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  Daemon d("e2e_coalesce.ndjson", exec);
  const std::vector<std::string> ov = {std::string(kAxis) + "=0.052"};
  std::atomic<int> fresh{0}, coalesced{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&] {
      ServiceClient c(d.port());
      const Json resp = c.submit("", ov, kSteps, "t");
      EXPECT_EQ(resp.at("type").as_string(), "result");
      if (resp.at("source").as_string() == "fresh") ++fresh;
      else if (resp.at("source").as_string() == "coalesced") ++coalesced;
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(fresh.load(), 1);
  // Late arrivals may hit the ledger cache instead; what must hold is that
  // the simulation ran exactly once.
  EXPECT_EQ(d.store.records_written(), 1);
  ServiceClient c(d.port());
  EXPECT_EQ(c.metrics().at("values").at("campaign.jobs.done").as_number(),
            1.0);
}

TEST(ServiceEndToEnd, QueueOverflowYieldsTypedRejectionNotHang) {
  LogSilencer quiet;
  telemetry::MetricsRegistry registry;
  campaign::ExecutorConfig exec;
  exec.metrics = &registry;
  exec.workers = 1;
  exec.max_threads = 1;
  exec.per_step_hook = [](sim::Simulation&, const campaign::Job&, int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  ServerConfig config;
  config.max_queued = 1;
  Daemon d("e2e_overflow.ndjson", exec, config);
  ServiceClient client(d.port());
  // First job occupies the single worker...
  const Json a = client.submit("", {std::string(kAxis) + "=0.061"}, kSteps,
                               "t", 1.0, /*wait=*/false);
  ASSERT_EQ(a.at("type").as_string(), "accepted");
  // ...wait until it has been dispatched out of the scheduler...
  for (int i = 0; i < 200; ++i) {
    if (client.status().at("queued").as_number() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // ...so the second fills the admission queue and the third must bounce.
  const Json b = client.submit("", {std::string(kAxis) + "=0.062"}, kSteps,
                               "t", 1.0, /*wait=*/false);
  ASSERT_EQ(b.at("type").as_string(), "accepted");
  const Json c = client.submit("", {std::string(kAxis) + "=0.063"}, kSteps,
                               "t", 1.0, /*wait=*/false);
  ASSERT_EQ(c.at("type").as_string(), "rejected");
  EXPECT_EQ(c.at("reason").as_string(), "queue full");
  EXPECT_GT(c.at("retry_after_seconds").as_number(), 0.0);
  EXPECT_EQ(client.metrics().at("values").at("service.rejections")
                .as_number(),
            1.0);
}

TEST(ServiceEndToEnd, InvalidSubmissionsGetTypedErrors) {
  LogSilencer quiet;
  Daemon d("e2e_invalid.ndjson");
  ServiceClient client(d.port());
  // Unknown section.key fails deck validation before any queueing.
  Json bad_key = client.submit("", {"grid.bogus=1"}, kSteps, "t");
  EXPECT_EQ(bad_key.at("type").as_string(), "error");
  // Non-numeric value for a numeric key fails the deck build.
  Json bad_value =
      client.submit("", {std::string(kAxis) + "=fast"}, kSteps, "t");
  EXPECT_EQ(bad_value.at("type").as_string(), "error");
  // The connection survives protocol errors: a good request still works.
  EXPECT_TRUE(client.ping());
}

// -- protocol robustness -----------------------------------------------------

TEST(ServiceRobustness, OversizedLineIsRefusedWithReason) {
  LogSilencer quiet;
  ServerConfig config;
  config.max_line_bytes = 1024;
  Daemon d("robust_oversize.ndjson", {}, config);
  TcpConn conn(connect_fd(d.port(), 5.0));
  std::string huge(4096, 'x');
  ASSERT_TRUE(conn.send_line(huge));
  std::string reply;
  ASSERT_EQ(conn.read_line(&reply, 5.0, 1 << 20), ReadStatus::kLine);
  const Json resp = Json::parse(reply);
  EXPECT_EQ(resp.at("type").as_string(), "error");
  EXPECT_NE(resp.at("message").as_string().find("exceeds"),
            std::string::npos);
}

TEST(ServiceRobustness, TruncatedJsonGetsErrorAndConnectionSurvives) {
  LogSilencer quiet;
  Daemon d("robust_truncated.ndjson");
  ServiceClient client(d.port());
  ASSERT_TRUE(client.conn().send_line(R"({"type":"submit","steps":)"));
  std::string reply;
  ASSERT_EQ(client.conn().read_line(&reply, 5.0, 1 << 20),
            ReadStatus::kLine);
  EXPECT_EQ(Json::parse(reply).at("type").as_string(), "error");
  EXPECT_TRUE(client.ping());  // same connection still serves
}

TEST(ServiceRobustness, SlowLorisHitsTheReadDeadline) {
  LogSilencer quiet;
  ServerConfig config;
  config.read_deadline_seconds = 0.3;
  Daemon d("robust_loris.ndjson", {}, config);
  TcpConn conn(connect_fd(d.port(), 5.0));
  // A partial request and then silence: the server must cut us off with a
  // deadline error rather than holding the session thread forever.
  const std::string partial = R"({"type":"ping)";
  ASSERT_EQ(::send(conn.fd(), partial.data(), partial.size(), 0),
            ssize_t(partial.size()));
  std::string reply;
  ASSERT_EQ(conn.read_line(&reply, 5.0, 1 << 20), ReadStatus::kLine);
  const Json resp = Json::parse(reply);
  EXPECT_EQ(resp.at("type").as_string(), "error");
  EXPECT_NE(resp.at("message").as_string().find("deadline"),
            std::string::npos);
  // And the server then closes: the next read sees EOF.
  EXPECT_EQ(conn.read_line(&reply, 5.0, 1 << 20), ReadStatus::kEof);
}

TEST(ServiceRobustness, MidSubmissionDisconnectStillCompletesTheJob) {
  LogSilencer quiet;
  Daemon d("robust_disconnect.ndjson");
  const std::string id = campaign::job_id(
      d.spec.fingerprint(),
      {sim::parse_override(std::string(kAxis) + "=0.057")}, kSteps);
  {
    ServiceClient client(d.port());
    Json req = Json::object();
    req.set("type", Json::string("submit"));
    Json ovs = Json::array();
    ovs.push_back(Json::string(std::string(kAxis) + "=0.057"));
    req.set("overrides", std::move(ovs));
    req.set("steps", Json::number(std::int64_t{kSteps}));
    ASSERT_TRUE(client.conn().send_line(req.dump()));
  }  // client vanishes without reading its response
  // The accepted job must still run to a terminal state and be ledgered.
  bool done = false;
  for (int i = 0; i < 500 && !done; ++i) {
    if (const auto r = d.store.find(id); r && r->status == "done") done = true;
    else std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(done) << "job " << id << " never reached the ledger";
}

// -- drain / restart ---------------------------------------------------------

TEST(ServiceDrain, PersistsPendingJobsAndRestartFinishesThem) {
  LogSilencer quiet;
  const std::string ledger = temp_path("drain.ndjson");
  const std::string queue_state = temp_path("drain.queue.ndjson");
  const std::vector<std::string> values = {"0.071", "0.072", "0.073"};
  std::vector<std::string> ids;
  campaign::CampaignSpec spec = base_spec();
  for (const std::string& v : values) {
    ids.push_back(campaign::job_id(
        spec.fingerprint(), {sim::parse_override(std::string(kAxis) + "=" + v)},
        kSteps));
  }
  {
    campaign::ResultStore store(ledger, /*resume=*/false);
    campaign::ExecutorConfig exec;
    exec.workers = 1;
    exec.max_threads = 1;
    exec.scratch_dir = ::testing::TempDir();
    exec.per_step_hook = [](sim::Simulation&, const campaign::Job&, int) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    };
    ServerConfig config;
    config.queue_state_path = queue_state;
    ServiceServer server(spec, store, exec, config);
    server.start();
    ServiceClient client(server.port());
    for (const std::string& v : values) {
      const Json resp = client.submit("", {std::string(kAxis) + "=" + v},
                                      kSteps, "t", 1.0, /*wait=*/false);
      ASSERT_EQ(resp.at("type").as_string(), "accepted");
    }
    server.drain();  // finishes the running job, persists the backlog
    EXPECT_EQ(server.persisted_jobs(), 3 - int(store.records_written()));
    EXPECT_GT(server.persisted_jobs(), 0);
  }
  // Restart against the same ledger and queue state: the backlog reloads
  // and every accepted job reaches the ledger — nothing was lost.
  {
    campaign::ResultStore store(ledger, /*resume=*/true);
    campaign::ExecutorConfig exec;
    exec.scratch_dir = ::testing::TempDir();
    ServerConfig config;
    config.queue_state_path = queue_state;
    ServiceServer server(spec, store, exec, config);
    server.start();
    bool all_done = false;
    for (int i = 0; i < 1000 && !all_done; ++i) {
      all_done = true;
      for (const std::string& id : ids) {
        const auto r = store.find(id);
        if (!r || r->status != "done") all_done = false;
      }
      if (!all_done)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(all_done) << "restart did not finish the persisted backlog";
    server.drain();
    EXPECT_EQ(server.persisted_jobs(), 0);
  }
}

TEST(ServiceDrain, CorruptQueueStateRecordIsSkippedNotFatal) {
  LogSilencer quiet;
  const std::string ledger = temp_path("corrupt.ndjson");
  const std::string queue_state = temp_path("corrupt.queue.ndjson");
  campaign::CampaignSpec spec = base_spec();
  const std::string id = campaign::job_id(
      spec.fingerprint(),
      {sim::parse_override(std::string(kAxis) + "=0.081")}, kSteps);
  {
    // One garbage line, one good job, one truncated record: the daemon must
    // boot, warn, and run the one good job.
    QueuedJob q;
    q.job.id = id;
    q.job.label = std::string(kAxis) + "=0.081";
    q.job.overrides = {sim::parse_override(std::string(kAxis) + "=0.081")};
    q.job.steps = kSteps;
    q.job.probe_plane = spec.probe_plane();
    q.job.warmup = spec.warmup();
    std::ofstream out(queue_state);
    out << "this is not json\n";
    out << queued_job_to_json(q).dump() << "\n";
    out << R"({"type":"queued_job","id":"truncated)" << "\n";
  }
  campaign::ResultStore store(ledger, /*resume=*/false);
  campaign::ExecutorConfig exec;
  exec.scratch_dir = ::testing::TempDir();
  ServerConfig config;
  config.queue_state_path = queue_state;
  ServiceServer server(spec, store, exec, config);
  server.start();  // must not throw on the corrupt records
  // The backlog was moved aside, not truncated: a crash between here and
  // drain() would still find the jobs on disk.
  EXPECT_TRUE(std::ifstream(queue_state + ".consumed").good());
  EXPECT_FALSE(std::ifstream(queue_state).good());
  bool done = false;
  for (int i = 0; i < 500 && !done; ++i) {
    if (const auto r = store.find(id); r && r->status == "done") done = true;
    else std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(done) << "good job " << id << " from corrupt backlog never ran";
  server.drain();
  EXPECT_EQ(server.persisted_jobs(), 0);
  // A clean drain re-persisted the (now empty) backlog and retired the
  // consumed marker.
  EXPECT_FALSE(std::ifstream(queue_state + ".consumed").good());
}

}  // namespace
}  // namespace minivpic::service
