#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "util/error.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::vmpi {
namespace {

TEST(Runtime, RunsEveryRankOnce) {
  std::mutex m;
  std::set<int> ranks;
  run(5, [&](Comm& comm) {
    std::lock_guard<std::mutex> lock(m);
    EXPECT_TRUE(ranks.insert(comm.rank()).second);
    EXPECT_EQ(comm.size(), 5);
  });
  EXPECT_EQ(ranks.size(), 5u);
}

TEST(Runtime, SingleRank) {
  int calls = 0;
  run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Runtime, RejectsZeroRanks) {
  EXPECT_THROW(run(0, [](Comm&) {}), Error);
}

TEST(Runtime, RejectsNullFunction) { EXPECT_THROW(run(1, nullptr), Error); }

TEST(Runtime, PropagatesException) {
  EXPECT_THROW(run(3,
                   [](Comm& comm) {
                     if (comm.rank() == 1) throw Error("rank 1 failed");
                     // Other ranks block; poisoning must release them.
                     comm.barrier();
                   }),
               Error);
}

TEST(Runtime, FailureReleasesBlockedRecv) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) throw Error("boom");
                     int v;
                     comm.recv(0, 0, std::span<int>(&v, 1));  // would hang
                   }),
               Error);
}

TEST(Runtime, FailureReleasesBlockedProbe) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) throw Error("boom");
                     comm.probe(0, 0);
                   }),
               Error);
}

TEST(Runtime, NonErrorExceptionAlsoPropagates) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) throw std::bad_alloc();
                     comm.barrier();
                   }),
               std::bad_alloc);
}

TEST(Runtime, SequentialRunsAreIndependent) {
  for (int i = 0; i < 3; ++i) {
    std::atomic<int> count{0};
    run(4, [&](Comm& comm) {
      comm.barrier();
      count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), 4);
  }
}

TEST(Runtime, Rank0RunsOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

}  // namespace
}  // namespace minivpic::vmpi
