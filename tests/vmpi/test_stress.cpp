// Randomized traffic stress: many ranks exchanging unpredictable message
// patterns must neither deadlock, drop, nor cross-deliver. Every payload is
// self-describing so corruption is detectable. Also the concurrency audit
// behind the campaign executor: several vmpi worlds driven from separate
// host threads at once must stay fully isolated (runtime.cpp keeps all
// world state — mailboxes, barrier, error flag — inside each run() call;
// there are no mutable globals in vmpi).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "vmpi/error.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::vmpi {
namespace {

constexpr int kRanks = 5;
constexpr int kRounds = 30;

TEST(VmpiStress, RandomizedAllToAllTraffic) {
  run(kRanks, [](Comm& comm) {
    Rng rng(99, std::uint64_t(comm.rank()));
    for (int round = 0; round < kRounds; ++round) {
      // Everyone sends a random-length message to every rank (self incl.);
      // payload encodes (sender, round, index).
      std::vector<std::vector<std::int64_t>> outbox(kRanks);
      for (int dst = 0; dst < kRanks; ++dst) {
        const auto len = std::size_t(rng.uniform_u64(64));
        auto& msg = outbox[std::size_t(dst)];
        msg.resize(len + 1);
        msg[0] = comm.rank() * 1000000 + round;
        for (std::size_t i = 1; i <= len; ++i)
          msg[i] = msg[0] + std::int64_t(i);
        comm.send(dst, 100 + round, std::span<const std::int64_t>(msg));
      }
      for (int src = 0; src < kRanks; ++src) {
        Status st;
        const auto got = comm.recv_any<std::int64_t>(src, 100 + round, &st);
        ASSERT_GE(got.size(), 1u);
        ASSERT_EQ(got[0], src * 1000000 + round)
            << "round " << round << " from " << src;
        for (std::size_t i = 1; i < got.size(); ++i)
          ASSERT_EQ(got[i], got[0] + std::int64_t(i));
      }
      // Interleave collectives to shake tag separation.
      const long long sum = comm.allreduce_value<long long>(1, Op::kSum);
      ASSERT_EQ(sum, kRanks);
    }
  });
}

TEST(VmpiStress, ManyShortLivedWorlds) {
  // Runtime setup/teardown churn must stay leak- and deadlock-free.
  for (int i = 0; i < 25; ++i) {
    run(3, [&](Comm& comm) {
      const int v = comm.allreduce_value(comm.rank() + i, Op::kMax);
      ASSERT_EQ(v, 2 + i);
    });
  }
}

TEST(VmpiStress, ConcurrentWorlds) {
  // Four host threads each drive their own 3-rank world through p2p +
  // collective traffic, concurrently — the shape of a 4-worker campaign.
  // Payloads are world-tagged so any cross-world delivery is detected.
  constexpr int kWorlds = 4;
  constexpr int kWorldRanks = 3;
  std::atomic<int> worlds_ok{0};
  std::vector<std::thread> hosts;
  hosts.reserve(kWorlds);
  for (int w = 0; w < kWorlds; ++w) {
    hosts.emplace_back([w, &worlds_ok] {
      run(kWorldRanks, [w](Comm& comm) {
        for (int round = 0; round < 20; ++round) {
          const int dst = (comm.rank() + 1) % kWorldRanks;
          const int src = (comm.rank() + kWorldRanks - 1) % kWorldRanks;
          const std::int64_t payload =
              w * 1000000 + comm.rank() * 1000 + round;
          comm.send(dst, 40 + round, std::span<const std::int64_t>(&payload, 1));
          const auto got = comm.recv_any<std::int64_t>(src, 40 + round);
          ASSERT_EQ(got.size(), 1u);
          ASSERT_EQ(got[0], w * 1000000 + src * 1000 + round)
              << "world " << w << " round " << round;
          const long long sum =
              comm.allreduce_value<long long>(comm.rank(), Op::kSum);
          ASSERT_EQ(sum, kWorldRanks * (kWorldRanks - 1) / 2);
        }
      });
      worlds_ok.fetch_add(1);
    });
  }
  for (std::thread& t : hosts) t.join();
  EXPECT_EQ(worlds_ok.load(), kWorlds);
}

TEST(VmpiStress, ConcurrentWorldsSurviveAThrowingNeighbor) {
  // A rank throwing in one world must poison only its own world; sibling
  // worlds running concurrently finish untouched.
  std::atomic<int> clean_ok{0};
  std::atomic<int> poisoned_ok{0};
  std::vector<std::thread> hosts;
  for (int w = 0; w < 3; ++w) {
    hosts.emplace_back([w, &clean_ok, &poisoned_ok] {
      if (w == 1) {
        EXPECT_THROW(run(3,
                         [](Comm& comm) {
                           if (comm.rank() == 2) throw std::runtime_error("boom");
                           // Blocked peers must be released, not hung.
                           comm.barrier();
                         }),
                     std::exception);
        poisoned_ok.fetch_add(1);
        return;
      }
      run(3, [](Comm& comm) {
        for (int round = 0; round < 50; ++round) {
          const long long sum = comm.allreduce_value<long long>(1, Op::kSum);
          ASSERT_EQ(sum, 3);
        }
      });
      clean_ok.fetch_add(1);
    });
  }
  for (std::thread& t : hosts) t.join();
  EXPECT_EQ(clean_ok.load(), 2);
  EXPECT_EQ(poisoned_ok.load(), 1);
}

TEST(VmpiStress, PoisonReleasesEveryBlockedCallPromptly) {
  // One rank throws while its peers sit in the three blocking shapes the
  // runtime must release: a source-specific recv, a wildcard recv, and a
  // collective (barrier). Each must surface CommError(kPoisoned) — carrying
  // the thrower's root cause — rather than hang; no deadline is configured,
  // so a timeout can't be what released them.
  std::atomic<int> poisoned{0};
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(
      run(4,
          [&](Comm& comm) {
            if (comm.rank() == 3) {
              std::this_thread::sleep_for(std::chrono::milliseconds(50));
              throw std::runtime_error("stress root cause");
            }
            try {
              int v = 0;
              if (comm.rank() == 0) {
                comm.recv_bytes(1, 9, &v, sizeof v);  // never sent
              } else if (comm.rank() == 1) {
                comm.recv_bytes(kAnySource, kAnyTag, &v, sizeof v);
              } else {
                comm.barrier();  // rank 3 never arrives
              }
              ADD_FAILURE() << "blocked call returned on rank "
                            << comm.rank();
            } catch (const CommError& e) {
              EXPECT_EQ(e.fault(), Fault::kPoisoned);
              EXPECT_NE(std::string(e.what()).find("stress root cause"),
                        std::string::npos)
                  << e.what();
              poisoned.fetch_add(1);
            }
          }),
      std::runtime_error);
  EXPECT_EQ(poisoned.load(), 3);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed.count(), 20.0) << "poison release was not prompt";
}

TEST(VmpiStress, PoisonReasonCarriesFailingRankContext) {
  // The poison reason names the failing rank and its exception message, so
  // ledgers (campaign) and logs see the root cause, not a generic failure.
  std::atomic<int> checked{0};
  EXPECT_THROW(run(2,
                   [&](Comm& comm) {
                     if (comm.rank() == 1)
                       throw std::runtime_error("disk on fire");
                     try {
                       comm.barrier();
                     } catch (const CommError& e) {
                       const std::string what = e.what();
                       EXPECT_NE(what.find("rank 1 failed"),
                                 std::string::npos) << what;
                       EXPECT_NE(what.find("disk on fire"),
                                 std::string::npos) << what;
                       checked.fetch_add(1);
                     }
                   }),
               std::runtime_error);
  EXPECT_EQ(checked.load(), 1);
}

TEST(VmpiStress, LargeMessages) {
  run(2, [](Comm& comm) {
    const std::size_t n = 1 << 20;  // 8 MB of doubles
    if (comm.rank() == 0) {
      std::vector<double> big(n);
      for (std::size_t i = 0; i < n; ++i) big[i] = double(i);
      comm.send(1, 7, std::span<const double>(big));
    } else {
      const auto got = comm.recv_any<double>(0, 7);
      ASSERT_EQ(got.size(), n);
      EXPECT_EQ(got[n - 1], double(n - 1));
      EXPECT_EQ(got[n / 2], double(n / 2));
    }
  });
}

}  // namespace
}  // namespace minivpic::vmpi
