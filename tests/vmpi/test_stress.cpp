// Randomized traffic stress: many ranks exchanging unpredictable message
// patterns must neither deadlock, drop, nor cross-deliver. Every payload is
// self-describing so corruption is detectable.
#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::vmpi {
namespace {

constexpr int kRanks = 5;
constexpr int kRounds = 30;

TEST(VmpiStress, RandomizedAllToAllTraffic) {
  run(kRanks, [](Comm& comm) {
    Rng rng(99, std::uint64_t(comm.rank()));
    for (int round = 0; round < kRounds; ++round) {
      // Everyone sends a random-length message to every rank (self incl.);
      // payload encodes (sender, round, index).
      std::vector<std::vector<std::int64_t>> outbox(kRanks);
      for (int dst = 0; dst < kRanks; ++dst) {
        const auto len = std::size_t(rng.uniform_u64(64));
        auto& msg = outbox[std::size_t(dst)];
        msg.resize(len + 1);
        msg[0] = comm.rank() * 1000000 + round;
        for (std::size_t i = 1; i <= len; ++i)
          msg[i] = msg[0] + std::int64_t(i);
        comm.send(dst, 100 + round, std::span<const std::int64_t>(msg));
      }
      for (int src = 0; src < kRanks; ++src) {
        Status st;
        const auto got = comm.recv_any<std::int64_t>(src, 100 + round, &st);
        ASSERT_GE(got.size(), 1u);
        ASSERT_EQ(got[0], src * 1000000 + round)
            << "round " << round << " from " << src;
        for (std::size_t i = 1; i < got.size(); ++i)
          ASSERT_EQ(got[i], got[0] + std::int64_t(i));
      }
      // Interleave collectives to shake tag separation.
      const long long sum = comm.allreduce_value<long long>(1, Op::kSum);
      ASSERT_EQ(sum, kRanks);
    }
  });
}

TEST(VmpiStress, ManyShortLivedWorlds) {
  // Runtime setup/teardown churn must stay leak- and deadlock-free.
  for (int i = 0; i < 25; ++i) {
    run(3, [&](Comm& comm) {
      const int v = comm.allreduce_value(comm.rank() + i, Op::kMax);
      ASSERT_EQ(v, 2 + i);
    });
  }
}

TEST(VmpiStress, LargeMessages) {
  run(2, [](Comm& comm) {
    const std::size_t n = 1 << 20;  // 8 MB of doubles
    if (comm.rank() == 0) {
      std::vector<double> big(n);
      for (std::size_t i = 0; i < n; ++i) big[i] = double(i);
      comm.send(1, 7, std::span<const double>(big));
    } else {
      const auto got = comm.recv_any<double>(0, 7);
      ASSERT_EQ(got.size(), n);
      EXPECT_EQ(got[n - 1], double(n - 1));
      EXPECT_EQ(got[n / 2], double(n / 2));
    }
  });
}

}  // namespace
}  // namespace minivpic::vmpi
