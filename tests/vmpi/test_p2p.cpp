#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::vmpi {
namespace {

TEST(P2P, SendRecvValue) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 5, 42);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 5), 42);
    }
  });
}

TEST(P2P, SendRecvSpan) {
  run(2, [](Comm& comm) {
    std::vector<double> data(100);
    if (comm.rank() == 0) {
      std::iota(data.begin(), data.end(), 0.0);
      comm.send(1, 0, std::span<const double>(data));
    } else {
      comm.recv(0, 0, std::span<double>(data));
      for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_DOUBLE_EQ(data[i], static_cast<double>(i));
    }
  });
}

TEST(P2P, EmptyMessage) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_bytes(1, 1, nullptr, 0);
    } else {
      const Status st = comm.recv_bytes(0, 1, nullptr, 0);
      EXPECT_EQ(st.bytes, 0u);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 1);
    }
  });
}

TEST(P2P, TagsMatchedIndependently) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 10, 100);
      comm.send_value(1, 20, 200);
    } else {
      // Receive in reverse tag order — matching is per (src, tag).
      EXPECT_EQ(comm.recv_value<int>(0, 20), 200);
      EXPECT_EQ(comm.recv_value<int>(0, 10), 100);
    }
  });
}

TEST(P2P, FifoPerSourceAndTag) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send_value(1, 3, i);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(comm.recv_value<int>(0, 3), i);
    }
  });
}

TEST(P2P, AnySource) {
  run(3, [](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send_value(0, 7, comm.rank());
    } else {
      int mask = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        Status st = comm.recv(kAnySource, 7, std::span<int>(&v, 1));
        EXPECT_EQ(st.source, v);
        mask |= 1 << v;
      }
      EXPECT_EQ(mask, 0b110);
    }
  });
}

TEST(P2P, AnyTag) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 99, 1.5);
    } else {
      double v = 0;
      const Status st = comm.recv_bytes(0, kAnyTag, &v, sizeof v);
      EXPECT_EQ(st.tag, 99);
      EXPECT_DOUBLE_EQ(v, 1.5);
    }
  });
}

TEST(P2P, ProbeReportsSize) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> v(17, 1.0f);
      comm.send(1, 4, std::span<const float>(v));
    } else {
      const Status st = comm.probe(0, 4);
      EXPECT_EQ(st.bytes, 17 * sizeof(float));
      // Probe does not consume.
      std::vector<float> v(17);
      comm.recv(0, 4, std::span<float>(v));
      EXPECT_EQ(v[16], 1.0f);
    }
  });
}

TEST(P2P, IprobeNonBlocking) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Status st;
      EXPECT_FALSE(comm.iprobe(1, 0, &st));  // nothing sent to rank 0
      comm.send_value(1, 0, 1);
    } else {
      comm.probe(0, 0);
      Status st;
      EXPECT_TRUE(comm.iprobe(0, 0, &st));
      EXPECT_EQ(st.bytes, sizeof(int));
      int v;
      comm.recv(0, 0, std::span<int>(&v, 1));
    }
  });
}

TEST(P2P, RecvAnyUnknownLength) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> payload{1, 2, 3, 4, 5};
      comm.send(1, 8, std::span<const int>(payload));
    } else {
      Status st;
      const auto got = comm.recv_any<int>(0, 8, &st);
      ASSERT_EQ(got.size(), 5u);
      EXPECT_EQ(got[4], 5);
      EXPECT_EQ(st.source, 0);
    }
  });
}

TEST(P2P, SelfSend) {
  run(1, [](Comm& comm) {
    comm.send_value(0, 0, 3.25);
    EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 0), 3.25);
  });
}

TEST(P2P, OversizeMessageRejected) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> big(10, 1);
      comm.send(1, 0, std::span<const int>(big));
    } else {
      int small[2];
      EXPECT_THROW(comm.recv_bytes(0, 0, small, sizeof small), Error);
    }
  });
}

TEST(P2P, InvalidDestinationRejected) {
  EXPECT_THROW(run(1,
                   [](Comm& comm) {
                     int v = 0;
                     comm.send_bytes(5, 0, &v, sizeof v);
                   }),
               Error);
}

TEST(P2P, NegativeUserTagRejected) {
  EXPECT_THROW(run(1,
                   [](Comm& comm) {
                     int v = 0;
                     comm.send_bytes(0, -3, &v, sizeof v);
                   }),
               Error);
}

TEST(P2P, IrecvWait) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 2, 77);
    } else {
      int v = 0;
      Request req = comm.irecv(0, 2, std::span<int>(&v, 1));
      const Status st = comm.wait(req);
      EXPECT_EQ(st.bytes, sizeof(int));
      EXPECT_EQ(v, 77);
      // wait() is idempotent.
      EXPECT_EQ(comm.wait(req).bytes, sizeof(int));
    }
  });
}

TEST(P2P, RequestTestCompletesWithoutBlocking) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      // The peer signals that its irecv is posted *before* we send, so the
      // pre-send test() below genuinely races nothing.
      (void)comm.recv_value<int>(1, 1);
      comm.send_value(1, 2, 77);
    } else {
      int v = 0;
      Request req = comm.irecv(0, 2, std::span<int>(&v, 1));
      EXPECT_FALSE(req.test());  // nothing sent yet — must not block
      comm.send_value(0, 1, 0);  // release the sender
      Status st;
      while (!req.test(&st)) std::this_thread::yield();
      EXPECT_EQ(st.bytes, sizeof(int));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(v, 77);
      // test() is idempotent once complete, like wait().
      EXPECT_TRUE(req.test());
      EXPECT_EQ(comm.wait(req).bytes, sizeof(int));
    }
  });
}

TEST(P2P, WaitallCompletesEveryRequestInOrder) {
  run(2, [](Comm& comm) {
    constexpr int kMsgs = 3;
    if (comm.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) comm.send_value(1, 10 + i, 100 + i);
    } else {
      std::vector<int> got(kMsgs, 0);
      std::vector<Request> reqs;
      for (int i = 0; i < kMsgs; ++i)
        reqs.push_back(comm.irecv(0, 10 + i, std::span<int>(&got[i], 1)));
      const std::vector<Status> statuses =
          comm.waitall(std::span<Request>(reqs));
      ASSERT_EQ(statuses.size(), std::size_t(kMsgs));
      for (int i = 0; i < kMsgs; ++i) {
        EXPECT_EQ(statuses[std::size_t(i)].tag, 10 + i);
        EXPECT_EQ(statuses[std::size_t(i)].bytes, sizeof(int));
        EXPECT_EQ(got[std::size_t(i)], 100 + i);
      }
    }
  });
}

TEST(P2P, WaitOnEmptyRequestThrows) {
  run(1, [](Comm& comm) {
    Request req;
    EXPECT_FALSE(req.valid());
    EXPECT_THROW(comm.wait(req), Error);
  });
}

TEST(P2P, ManyToOneStress) {
  constexpr int kRanks = 6;
  constexpr int kMsgs = 200;
  run(kRanks, [](Comm& comm) {
    if (comm.rank() == 0) {
      long long total = 0;
      for (int i = 0; i < (kRanks - 1) * kMsgs; ++i)
        total += comm.recv_value<int>(kAnySource, 1);
      // Each rank r sends kMsgs values of r.
      long long expect = 0;
      for (int r = 1; r < kRanks; ++r) expect += (long long)r * kMsgs;
      EXPECT_EQ(total, expect);
    } else {
      for (int i = 0; i < kMsgs; ++i) comm.send_value(0, 1, comm.rank());
    }
  });
}

// -- posted receives (ipost): the async path the overlapped step loop's
// migration exchange rides (docs/OVERLAP.md "Async p2p progress model").
// A posted receive registers (src, tag) before the message exists; delivery
// fulfills it directly, test()/wait() observe completion, and the optional
// callback fires exactly once at observation time on the receiving thread.

TEST(PostedRecv, CompletesOnDelivery) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      (void)comm.recv_value<int>(1, 1);  // wait until the post exists
      comm.send_value(1, 2, 55);
    } else {
      Request req = comm.ipost(0, 2);
      EXPECT_FALSE(req.test());  // nothing sent yet — must not block
      comm.send_value(0, 1, 0);  // release the sender
      Status st;
      while (!req.test(&st)) std::this_thread::yield();
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 2);
      EXPECT_EQ(st.bytes, sizeof(int));
      ASSERT_TRUE(req.done());
      const std::vector<int> got = req.take<int>();
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], 55);
    }
  });
}

TEST(PostedRecv, ClaimsAlreadyQueuedMessage) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 4, 7);
      comm.send_value(1, 1, 0);  // handshake: payload is en route/queued
    } else {
      (void)comm.recv_value<int>(0, 1);  // tag-4 message is now queued
      Request req = comm.ipost(0, 4);
      EXPECT_EQ(comm.wait(req).bytes, sizeof(int));
      EXPECT_EQ(req.take<int>().at(0), 7);
    }
  });
}

TEST(PostedRecv, FifoWithQueuedPredecessor) {
  // Two same-(src, tag) messages, the first already queued when the post
  // goes up: the post must receive the FIRST (queue wins — a posted entry
  // may never overtake the FIFO order a blocking recv would see).
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 9, 111);
      comm.send_value(1, 1, 0);  // handshake
      (void)comm.recv_value<int>(1, 1);
      comm.send_value(1, 9, 222);
    } else {
      (void)comm.recv_value<int>(0, 1);  // first tag-9 message is queued
      Request req = comm.ipost(0, 9);
      comm.send_value(0, 1, 0);  // release the second send
      EXPECT_EQ(comm.wait(req).bytes, sizeof(int));
      EXPECT_EQ(req.take<int>().at(0), 111);
      // The later message is still there for a plain recv.
      EXPECT_EQ(comm.recv_value<int>(0, 9), 222);
    }
  });
}

TEST(PostedRecv, CallbackFiresExactlyOnceAtObservation) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 6, 99);
    } else {
      int calls = 0;
      Status seen;
      Request req = comm.ipost(0, 6, [&](const Status& st) {
        ++calls;
        seen = st;
      });
      const Status st = comm.wait(req);
      EXPECT_EQ(calls, 1);
      EXPECT_EQ(seen.bytes, st.bytes);
      EXPECT_EQ(seen.source, 0);
      // Re-observation (test/wait after completion) must not re-fire.
      EXPECT_TRUE(req.test());
      (void)comm.wait(req);
      EXPECT_EQ(calls, 1);
    }
  });
}

TEST(PostedRecv, TakeValidatesElementSize) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::array<std::byte, 3> odd{};  // not a whole number of ints
      comm.send_bytes(1, 2, odd.data(), odd.size());
    } else {
      Request req = comm.ipost(0, 2);
      EXPECT_EQ(comm.wait(req).bytes, 3u);
      EXPECT_THROW((void)req.take<int>(), Error);
    }
  });
}

TEST(PostedRecv, WildcardSourceAndTag) {
  run(3, [](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send_value(0, 40 + comm.rank(), comm.rank());
    } else {
      int mask = 0;
      for (int i = 0; i < 2; ++i) {
        Request req = comm.ipost(kAnySource, kAnyTag);
        const Status st = comm.wait(req);
        EXPECT_EQ(st.tag, 40 + st.source);
        mask |= 1 << req.take<int>().at(0);
      }
      EXPECT_EQ(mask, 0b110);
    }
  });
}

TEST(PostedRecv, CancelReleasesTheEntry) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      Request req = comm.ipost(0, 3);
      comm.cancel(req);
      EXPECT_FALSE(req.valid());
      // A message sent after the cancel goes to the queue, not the dead
      // entry; a plain recv still sees it.
      comm.send_value(0, 1, 0);
      EXPECT_EQ(comm.recv_value<int>(0, 3), 13);
    } else {
      (void)comm.recv_value<int>(1, 1);  // wait for the cancel
      comm.send_value(1, 3, 13);
    }
  });
}

TEST(PostedRecv, BytesBeforeCompletionThrows) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      Request req = comm.ipost(0, 8);
      EXPECT_THROW((void)req.take<int>(), Error);  // not complete yet
      comm.send_value(0, 1, 0);
      (void)comm.wait(req);
      EXPECT_EQ(req.take<int>().at(0), 5);
    } else {
      (void)comm.recv_value<int>(1, 1);
      comm.send_value(1, 8, 5);
    }
  });
}

TEST(PostedRecv, InvalidSourceRejected) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW((void)comm.ipost(7, 0), Error);
      EXPECT_THROW((void)comm.ipost(-3, 0), Error);
    }
  });
}

}  // namespace
}  // namespace minivpic::vmpi
