#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::vmpi {
namespace {

TEST(P2P, SendRecvValue) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 5, 42);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 5), 42);
    }
  });
}

TEST(P2P, SendRecvSpan) {
  run(2, [](Comm& comm) {
    std::vector<double> data(100);
    if (comm.rank() == 0) {
      std::iota(data.begin(), data.end(), 0.0);
      comm.send(1, 0, std::span<const double>(data));
    } else {
      comm.recv(0, 0, std::span<double>(data));
      for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_DOUBLE_EQ(data[i], static_cast<double>(i));
    }
  });
}

TEST(P2P, EmptyMessage) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_bytes(1, 1, nullptr, 0);
    } else {
      const Status st = comm.recv_bytes(0, 1, nullptr, 0);
      EXPECT_EQ(st.bytes, 0u);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 1);
    }
  });
}

TEST(P2P, TagsMatchedIndependently) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 10, 100);
      comm.send_value(1, 20, 200);
    } else {
      // Receive in reverse tag order — matching is per (src, tag).
      EXPECT_EQ(comm.recv_value<int>(0, 20), 200);
      EXPECT_EQ(comm.recv_value<int>(0, 10), 100);
    }
  });
}

TEST(P2P, FifoPerSourceAndTag) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send_value(1, 3, i);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(comm.recv_value<int>(0, 3), i);
    }
  });
}

TEST(P2P, AnySource) {
  run(3, [](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send_value(0, 7, comm.rank());
    } else {
      int mask = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        Status st = comm.recv(kAnySource, 7, std::span<int>(&v, 1));
        EXPECT_EQ(st.source, v);
        mask |= 1 << v;
      }
      EXPECT_EQ(mask, 0b110);
    }
  });
}

TEST(P2P, AnyTag) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 99, 1.5);
    } else {
      double v = 0;
      const Status st = comm.recv_bytes(0, kAnyTag, &v, sizeof v);
      EXPECT_EQ(st.tag, 99);
      EXPECT_DOUBLE_EQ(v, 1.5);
    }
  });
}

TEST(P2P, ProbeReportsSize) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> v(17, 1.0f);
      comm.send(1, 4, std::span<const float>(v));
    } else {
      const Status st = comm.probe(0, 4);
      EXPECT_EQ(st.bytes, 17 * sizeof(float));
      // Probe does not consume.
      std::vector<float> v(17);
      comm.recv(0, 4, std::span<float>(v));
      EXPECT_EQ(v[16], 1.0f);
    }
  });
}

TEST(P2P, IprobeNonBlocking) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Status st;
      EXPECT_FALSE(comm.iprobe(1, 0, &st));  // nothing sent to rank 0
      comm.send_value(1, 0, 1);
    } else {
      comm.probe(0, 0);
      Status st;
      EXPECT_TRUE(comm.iprobe(0, 0, &st));
      EXPECT_EQ(st.bytes, sizeof(int));
      int v;
      comm.recv(0, 0, std::span<int>(&v, 1));
    }
  });
}

TEST(P2P, RecvAnyUnknownLength) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> payload{1, 2, 3, 4, 5};
      comm.send(1, 8, std::span<const int>(payload));
    } else {
      Status st;
      const auto got = comm.recv_any<int>(0, 8, &st);
      ASSERT_EQ(got.size(), 5u);
      EXPECT_EQ(got[4], 5);
      EXPECT_EQ(st.source, 0);
    }
  });
}

TEST(P2P, SelfSend) {
  run(1, [](Comm& comm) {
    comm.send_value(0, 0, 3.25);
    EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 0), 3.25);
  });
}

TEST(P2P, OversizeMessageRejected) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> big(10, 1);
      comm.send(1, 0, std::span<const int>(big));
    } else {
      int small[2];
      EXPECT_THROW(comm.recv_bytes(0, 0, small, sizeof small), Error);
    }
  });
}

TEST(P2P, InvalidDestinationRejected) {
  EXPECT_THROW(run(1,
                   [](Comm& comm) {
                     int v = 0;
                     comm.send_bytes(5, 0, &v, sizeof v);
                   }),
               Error);
}

TEST(P2P, NegativeUserTagRejected) {
  EXPECT_THROW(run(1,
                   [](Comm& comm) {
                     int v = 0;
                     comm.send_bytes(0, -3, &v, sizeof v);
                   }),
               Error);
}

TEST(P2P, IrecvWait) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 2, 77);
    } else {
      int v = 0;
      Request req = comm.irecv(0, 2, std::span<int>(&v, 1));
      const Status st = comm.wait(req);
      EXPECT_EQ(st.bytes, sizeof(int));
      EXPECT_EQ(v, 77);
      // wait() is idempotent.
      EXPECT_EQ(comm.wait(req).bytes, sizeof(int));
    }
  });
}

TEST(P2P, RequestTestCompletesWithoutBlocking) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      // The peer signals that its irecv is posted *before* we send, so the
      // pre-send test() below genuinely races nothing.
      (void)comm.recv_value<int>(1, 1);
      comm.send_value(1, 2, 77);
    } else {
      int v = 0;
      Request req = comm.irecv(0, 2, std::span<int>(&v, 1));
      EXPECT_FALSE(req.test());  // nothing sent yet — must not block
      comm.send_value(0, 1, 0);  // release the sender
      Status st;
      while (!req.test(&st)) std::this_thread::yield();
      EXPECT_EQ(st.bytes, sizeof(int));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(v, 77);
      // test() is idempotent once complete, like wait().
      EXPECT_TRUE(req.test());
      EXPECT_EQ(comm.wait(req).bytes, sizeof(int));
    }
  });
}

TEST(P2P, WaitallCompletesEveryRequestInOrder) {
  run(2, [](Comm& comm) {
    constexpr int kMsgs = 3;
    if (comm.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) comm.send_value(1, 10 + i, 100 + i);
    } else {
      std::vector<int> got(kMsgs, 0);
      std::vector<Request> reqs;
      for (int i = 0; i < kMsgs; ++i)
        reqs.push_back(comm.irecv(0, 10 + i, std::span<int>(&got[i], 1)));
      const std::vector<Status> statuses =
          comm.waitall(std::span<Request>(reqs));
      ASSERT_EQ(statuses.size(), std::size_t(kMsgs));
      for (int i = 0; i < kMsgs; ++i) {
        EXPECT_EQ(statuses[std::size_t(i)].tag, 10 + i);
        EXPECT_EQ(statuses[std::size_t(i)].bytes, sizeof(int));
        EXPECT_EQ(got[std::size_t(i)], 100 + i);
      }
    }
  });
}

TEST(P2P, WaitOnEmptyRequestThrows) {
  run(1, [](Comm& comm) {
    Request req;
    EXPECT_FALSE(req.valid());
    EXPECT_THROW(comm.wait(req), Error);
  });
}

TEST(P2P, ManyToOneStress) {
  constexpr int kRanks = 6;
  constexpr int kMsgs = 200;
  run(kRanks, [](Comm& comm) {
    if (comm.rank() == 0) {
      long long total = 0;
      for (int i = 0; i < (kRanks - 1) * kMsgs; ++i)
        total += comm.recv_value<int>(kAnySource, 1);
      // Each rank r sends kMsgs values of r.
      long long expect = 0;
      for (int r = 1; r < kRanks; ++r) expect += (long long)r * kMsgs;
      EXPECT_EQ(total, expect);
    } else {
      for (int i = 0; i < kMsgs; ++i) comm.send_value(0, 1, comm.rank());
    }
  });
}

}  // namespace
}  // namespace minivpic::vmpi
