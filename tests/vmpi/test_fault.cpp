// Fault-tolerance proof for the vmpi comm layer (docs/FAULTS.md): injected
// faults are detected by the configured machinery (deadlines, CRC framing,
// sequence numbers, liveness epochs), every detection throws the right typed
// CommError within its bound, and the agreement plane survives revocation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "util/error.hpp"
#include "vmpi/error.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/runtime.hpp"

namespace minivpic::vmpi {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// -- bounded-time failure detection ------------------------------------------

TEST(VmpiFault, RecvDeadlineFiresWithinBound) {
  WorldConfig cfg;
  cfg.timeout_seconds = 0.2;
  CommStats stats;
  cfg.stats = &stats;
  run(2, [](Comm& comm) {
    if (comm.rank() != 0) return;  // rank 1 sends nothing and leaves
    const auto t0 = std::chrono::steady_clock::now();
    int v = 0;
    try {
      comm.recv_bytes(1, 5, &v, sizeof v);
      ADD_FAILURE() << "recv of a never-sent message returned";
    } catch (const CommError& e) {
      EXPECT_EQ(e.fault(), Fault::kTimeout);
    }
    const double waited = seconds_since(t0);
    EXPECT_GE(waited, 0.19);
    EXPECT_LT(waited, 30.0) << "deadline did not bound the wait";
  }, cfg);
  EXPECT_EQ(stats.timeouts.load(), 1);
}

TEST(VmpiFault, BarrierAndCollectiveHonorDeadline) {
  WorldConfig cfg;
  cfg.timeout_seconds = 0.2;
  CommStats stats;
  cfg.stats = &stats;
  run(3, [](Comm& comm) {
    // Rank 2 never joins either call; the others must not wait forever.
    if (comm.rank() == 2) return;
    try {
      comm.barrier();
      ADD_FAILURE() << "barrier without rank 2 returned";
    } catch (const CommError& e) {
      EXPECT_EQ(e.fault(), Fault::kTimeout);
    }
    if (comm.rank() == 0) {
      long long v = 1;
      try {
        comm.allreduce(std::span<long long>(&v, 1), Op::kSum);
        ADD_FAILURE() << "allreduce without rank 2 returned";
      } catch (const CommError& e) {
        EXPECT_EQ(e.fault(), Fault::kTimeout);
      }
    }
  }, cfg);
  EXPECT_GE(stats.timeouts.load(), 2);
}

TEST(VmpiFault, SetTimeoutOverridesWorldDefault) {
  WorldConfig cfg;
  cfg.timeout_seconds = 60.0;  // world default would stall the test
  run(2, [](Comm& comm) {
    if (comm.rank() != 0) return;
    comm.set_timeout(0.1);
    EXPECT_EQ(comm.timeout(), 0.1);
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(comm.probe(1, 5), CommError);
    EXPECT_LT(seconds_since(t0), 30.0);
  }, cfg);
}

// -- integrity framing -------------------------------------------------------

TEST(VmpiFault, CrcDetectsInjectedBitFlip) {
  FaultPlane plane;
  plane.corrupt_message(/*rank=*/0, /*step=*/0, /*bit=*/3);
  WorldConfig cfg;
  cfg.checksum = true;
  cfg.fault_plane = &plane;
  CommStats stats;
  cfg.stats = &stats;
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      plane.on_step(0, 0);  // arms the corruption for the next send
      comm.send_value(1, 7, 12345);
    } else {
      int v = 0;
      try {
        comm.recv_bytes(0, 7, &v, sizeof v);
        ADD_FAILURE() << "corrupted payload passed the CRC";
      } catch (const CommError& e) {
        EXPECT_EQ(e.fault(), Fault::kCorrupt);
      }
    }
  }, cfg);
  EXPECT_EQ(stats.crc_failures.load(), 1);
  EXPECT_EQ(stats.faults_injected.load(), 1);
  EXPECT_EQ(stats.faults_detected(), 1);
  EXPECT_EQ(plane.injected().corrupted, 1);
}

TEST(VmpiFault, DuplicateIsDroppedSilently) {
  FaultPlane plane;
  plane.duplicate_message(0, 0);
  WorldConfig cfg;
  cfg.sequencing = true;
  cfg.fault_plane = &plane;
  CommStats stats;
  cfg.stats = &stats;
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      plane.on_step(0, 0);
      comm.send_value(1, 7, 111);  // delivered twice by the fault plane
      comm.send_value(1, 7, 222);
    } else {
      // The receiver sees each payload exactly once, in order.
      EXPECT_EQ(comm.recv_value<int>(0, 7), 111);
      EXPECT_EQ(comm.recv_value<int>(0, 7), 222);
    }
  }, cfg);
  EXPECT_EQ(stats.duplicates_dropped.load(), 1);
  EXPECT_EQ(plane.injected().duplicated, 1);
}

TEST(VmpiFault, DroppedMessageSurfacesAsLostViaSequenceGap) {
  FaultPlane plane;
  plane.drop_message(0, 0);
  WorldConfig cfg;
  cfg.sequencing = true;
  cfg.fault_plane = &plane;
  CommStats stats;
  cfg.stats = &stats;
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      plane.on_step(0, 0);
      comm.send_value(1, 7, 111);  // eaten by the fault plane
      comm.send_value(1, 7, 222);  // arrives with a sequence gap
    } else {
      try {
        (void)comm.recv_value<int>(0, 7);
        ADD_FAILURE() << "loss went undetected";
      } catch (const CommError& e) {
        EXPECT_EQ(e.fault(), Fault::kLost);
      }
    }
  }, cfg);
  EXPECT_EQ(stats.sequence_gaps.load(), 1);
  EXPECT_EQ(plane.injected().dropped, 1);
}

TEST(VmpiFault, DelayedMessageArrivesLateAndInOrder) {
  FaultPlane plane;
  const double kDelay = 0.15;
  plane.delay_message(0, 0, kDelay);
  WorldConfig cfg;
  cfg.fault_plane = &plane;
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      plane.on_step(0, 0);
      comm.send_value(1, 7, 111);  // held back kDelay seconds
      comm.send_value(1, 7, 222);  // queued behind it immediately
    } else {
      // FIFO must not let the prompt message overtake the delayed one.
      const auto t0 = std::chrono::steady_clock::now();
      EXPECT_EQ(comm.recv_value<int>(0, 7), 111);
      EXPECT_GE(seconds_since(t0), kDelay * 0.6);
      EXPECT_EQ(comm.recv_value<int>(0, 7), 222);
    }
  }, cfg);
  EXPECT_EQ(plane.injected().delayed, 1);
}

// -- liveness ----------------------------------------------------------------

TEST(VmpiFault, PeerDeathWakesBlockedReceiverWithoutDeadline) {
  // No timeout configured: the wake must come from the liveness epoch, not
  // a deadline expiry.
  CommStats stats;
  WorldConfig cfg;
  cfg.stats = &stats;
  const auto t0 = std::chrono::steady_clock::now();
  run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      comm.mark_self_dead("simulated node failure");
      return;
    }
    int v = 0;
    try {
      comm.recv_bytes(1, 5, &v, sizeof v);
      ADD_FAILURE() << "recv from a dead rank returned";
    } catch (const CommError& e) {
      EXPECT_EQ(e.fault(), Fault::kPeerDead);
      EXPECT_NE(std::string(e.what()).find("simulated node failure"),
                std::string::npos) << e.what();
    }
    EXPECT_FALSE(comm.is_alive(1));
  }, cfg);
  EXPECT_LT(seconds_since(t0), 20.0);
  EXPECT_GE(stats.peer_deaths.load(), 1);
}

// -- posted receives under fault injection -----------------------------------
//
// The overlap scheduler (docs/OVERLAP.md) drives particle migration through
// posted receives on a comm worker thread, so every detection path proven
// above for blocking recv must also fire at the test()/wait() observation
// point of an ipost entry.

TEST(VmpiFault, PostedRecvSurfacesCrcCorruptionAtWait) {
  FaultPlane plane;
  plane.corrupt_message(/*rank=*/0, /*step=*/0, /*bit=*/5);
  WorldConfig cfg;
  cfg.checksum = true;
  cfg.fault_plane = &plane;
  CommStats stats;
  cfg.stats = &stats;
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      plane.on_step(0, 0);
      comm.send_value(1, 7, 12345);
    } else {
      Request req = comm.ipost(0, 7);
      try {
        comm.wait(req);
        ADD_FAILURE() << "corrupted payload passed the CRC on the posted path";
      } catch (const CommError& e) {
        EXPECT_EQ(e.fault(), Fault::kCorrupt);
      }
    }
  }, cfg);
  EXPECT_EQ(stats.crc_failures.load(), 1);
  EXPECT_EQ(stats.faults_injected.load(), 1);
  EXPECT_EQ(plane.injected().corrupted, 1);
}

TEST(VmpiFault, PostedRecvDoesNotOvertakeDelayedPredecessor) {
  FaultPlane plane;
  const double kDelay = 0.15;
  plane.delay_message(0, 0, kDelay);
  WorldConfig cfg;
  cfg.fault_plane = &plane;
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      plane.on_step(0, 0);
      comm.send_value(1, 7, 111);  // held back kDelay seconds
      comm.send_value(1, 7, 222);  // queued behind it immediately
    } else {
      // The prompt message must not fulfill the posted entry while the
      // delayed one is still in flight: FIFO holds on the async path too.
      Request req = comm.ipost(0, 7);
      const Status st = comm.wait(req);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(req.take<int>().at(0), 111)
          << "prompt message overtook the delayed one via the posted entry";
      EXPECT_EQ(comm.recv_value<int>(0, 7), 222);
    }
  }, cfg);
  EXPECT_EQ(plane.injected().delayed, 1);
}

TEST(VmpiFault, PostedRecvSurfacesSequenceGapAsLost) {
  FaultPlane plane;
  plane.drop_message(0, 0);
  WorldConfig cfg;
  cfg.sequencing = true;
  cfg.fault_plane = &plane;
  CommStats stats;
  cfg.stats = &stats;
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      plane.on_step(0, 0);
      comm.send_value(1, 7, 111);  // eaten by the fault plane
      comm.send_value(1, 7, 222);  // arrives with a sequence gap
    } else {
      Request req = comm.ipost(0, 7);
      try {
        comm.wait(req);
        ADD_FAILURE() << "loss went undetected on the posted path";
      } catch (const CommError& e) {
        EXPECT_EQ(e.fault(), Fault::kLost);
      }
    }
  }, cfg);
  EXPECT_EQ(stats.sequence_gaps.load(), 1);
  EXPECT_EQ(plane.injected().dropped, 1);
}

TEST(VmpiFault, PeerDeathWakesBlockedPostedRecv) {
  // No timeout configured: like the blocking-recv twin above, the wake must
  // come from the liveness epoch while wait() blocks on the posted entry.
  CommStats stats;
  WorldConfig cfg;
  cfg.stats = &stats;
  const auto t0 = std::chrono::steady_clock::now();
  run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      comm.mark_self_dead("simulated node failure");
      return;
    }
    Request req = comm.ipost(1, 5);
    try {
      comm.wait(req);
      ADD_FAILURE() << "posted wait on a dead rank returned";
    } catch (const CommError& e) {
      EXPECT_EQ(e.fault(), Fault::kPeerDead);
    }
    EXPECT_FALSE(comm.is_alive(1));
  }, cfg);
  EXPECT_LT(seconds_since(t0), 20.0);
  EXPECT_GE(stats.peer_deaths.load(), 1);
}

// -- kill schedule ------------------------------------------------------------

TEST(VmpiFault, ScheduledKillFiresExactlyOnce) {
  FaultPlane plane;
  plane.kill_rank(1, 10);
  plane.on_step(1, 9);  // not yet due
  try {
    plane.on_step(1, 10);
    FAIL() << "scheduled kill did not fire";
  } catch (const CommError& e) {
    EXPECT_EQ(e.fault(), Fault::kKilled);
  }
  // The replay after a rollback reaches the same step again; the fault has
  // fired and the swapped-in rank must survive.
  plane.on_step(1, 10);
  plane.on_step(1, 11);
  EXPECT_EQ(plane.injected().killed, 1);
}

TEST(VmpiFault, SpecParserRoundTripsAndRejectsGarbage) {
  FaultPlane plane;
  plane.schedule_from_spec("kill:2@15");
  plane.schedule_from_spec("flip:1:3@8");
  plane.schedule_from_spec("drop@4");       // rank defaults to 1
  plane.schedule_from_spec("dup:0@2");
  plane.schedule_from_spec("delay:1:0.05@6");
  EXPECT_THROW(plane.schedule_from_spec("explode:1@3"), Error);
  EXPECT_THROW(plane.schedule_from_spec("kill:2"), Error);      // no step
  EXPECT_THROW(plane.schedule_from_spec("kill:2@abc"), Error);
  EXPECT_THROW(plane.schedule_from_spec(""), Error);
  EXPECT_THROW(plane.set_noise(FaultKind::kKill, 0.5), Error);
}

// -- revocation and agreement -------------------------------------------------

TEST(VmpiFault, RevokeReleasesBlockedRanksButSparesAgreementPlane) {
  CommStats stats;
  WorldConfig cfg;
  cfg.stats = &stats;
  std::atomic<int> revoked_seen{0};
  run(3, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      comm.revoke("drill: world revoked");
    } else {
      try {
        if (comm.rank() == 1) {
          int v = 0;
          comm.recv_bytes(0, 5, &v, sizeof v);  // never sent
        } else {
          comm.barrier();  // rank 0 never arrives
        }
        ADD_FAILURE() << "blocked call survived revocation on rank "
                      << comm.rank();
      } catch (const CommError& e) {
        EXPECT_EQ(e.fault(), Fault::kRevoked);
        revoked_seen.fetch_add(1);
      }
    }
    EXPECT_TRUE(comm.revoked());
    // The agreement plane still works after revocation — that is the whole
    // point of exempting it.
    EXPECT_EQ(comm.agree_min(10 + comm.rank(), 5.0), 10);
  }, cfg);
  EXPECT_EQ(revoked_seen.load(), 2);
  EXPECT_GE(stats.revokes.load(), 1);
}

TEST(VmpiFault, AgreeMinExcludesSilentRanks) {
  run(3, [](Comm& comm) {
    if (comm.rank() == 2) return;  // completed early; never joins the round
    const auto t0 = std::chrono::steady_clock::now();
    const std::int64_t got = comm.agree_min(10 + comm.rank(), 0.5);
    EXPECT_EQ(got, 10);
    EXPECT_LT(seconds_since(t0), 20.0) << "agreement did not converge";
  });
}

TEST(VmpiFault, AgreeMinRunsOverLiveRanksOnly) {
  run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      // The would-be collector dies; the next-lowest live rank takes over.
      comm.mark_self_dead("collector killed");
      return;
    }
    while (comm.is_alive(0)) std::this_thread::yield();
    EXPECT_EQ(comm.agree_min(20 + comm.rank(), 2.0), 21);
  });
}

}  // namespace
}  // namespace minivpic::vmpi
