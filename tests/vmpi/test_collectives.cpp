#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "vmpi/runtime.hpp"

namespace minivpic::vmpi {
namespace {

class Collectives : public ::testing::TestWithParam<int> {};

TEST_P(Collectives, Barrier) {
  const int n = GetParam();
  std::atomic<int> arrived{0};
  run(n, [&](Comm& comm) {
    arrived.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must have arrived.
    EXPECT_EQ(arrived.load(), n);
  });
}

TEST_P(Collectives, AllreduceSum) {
  const int n = GetParam();
  run(n, [&](Comm& comm) {
    const int v = comm.allreduce_value(comm.rank() + 1, Op::kSum);
    EXPECT_EQ(v, n * (n + 1) / 2);
  });
}

TEST_P(Collectives, AllreduceMinMax) {
  const int n = GetParam();
  run(n, [&](Comm& comm) {
    EXPECT_EQ(comm.allreduce_value(comm.rank(), Op::kMin), 0);
    EXPECT_EQ(comm.allreduce_value(comm.rank(), Op::kMax), n - 1);
  });
}

TEST_P(Collectives, AllreduceVector) {
  const int n = GetParam();
  run(n, [&](Comm& comm) {
    std::vector<double> v{double(comm.rank()), 1.0, -double(comm.rank())};
    comm.allreduce(std::span<double>(v), Op::kSum);
    const double ranks_sum = double(n) * (n - 1) / 2.0;
    EXPECT_DOUBLE_EQ(v[0], ranks_sum);
    EXPECT_DOUBLE_EQ(v[1], double(n));
    EXPECT_DOUBLE_EQ(v[2], -ranks_sum);
  });
}

TEST_P(Collectives, Bcast) {
  const int n = GetParam();
  run(n, [&](Comm& comm) {
    const int root = n - 1;
    std::vector<int> v(4, comm.rank() == root ? 9 : 0);
    comm.bcast(std::span<int>(v), root);
    for (int x : v) EXPECT_EQ(x, 9);
  });
}

TEST_P(Collectives, BcastValue) {
  const int n = GetParam();
  run(n, [&](Comm& comm) {
    const double v = comm.bcast_value(comm.rank() == 0 ? 2.5 : 0.0, 0);
    EXPECT_DOUBLE_EQ(v, 2.5);
  });
}

TEST_P(Collectives, Gather) {
  const int n = GetParam();
  run(n, [&](Comm& comm) {
    const auto all = comm.gather(comm.rank() * 10, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 10);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(Collectives, BackToBackCollectivesDoNotCross) {
  const int n = GetParam();
  run(n, [&](Comm& comm) {
    for (int iter = 0; iter < 20; ++iter) {
      const long long s =
          comm.allreduce_value<long long>(iter * n + comm.rank(), Op::kSum);
      const long long expect =
          (long long)iter * n * n + (long long)n * (n - 1) / 2;
      ASSERT_EQ(s, expect) << "iter " << iter;
      comm.barrier();
    }
  });
}

TEST_P(Collectives, MixedTrafficDoesNotDisturbCollectives) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  run(n, [&](Comm& comm) {
    // User p2p interleaved with collectives on every rank.
    const int right = (comm.rank() + 1) % n;
    const int left = (comm.rank() + n - 1) % n;
    for (int iter = 0; iter < 10; ++iter) {
      comm.send_value(right, 0, comm.rank());
      const int sum = comm.allreduce_value(1, Op::kSum);
      ASSERT_EQ(sum, n);
      EXPECT_EQ(comm.recv_value<int>(left, 0), left);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, Collectives, ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace minivpic::vmpi
